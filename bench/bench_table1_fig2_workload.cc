// Regenerates Table 1 (multicast share of inter-DC traffic per application)
// and Figure 2 (destination-fraction CDF, transfer-size CDF) from the
// synthetic 7-day trace calibrated to the paper's published aggregates.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/workload/trace_generator.h"

namespace bds {
namespace {

void Run() {
  TraceGeneratorOptions options;
  options.num_dcs = 30;
  options.num_transfers = 1265;  // The paper's measurement window.
  TraceGenerator generator(options);
  auto trace = generator.Generate();
  BDS_CHECK(trace.ok());
  TraceStats stats = trace->ComputeStats(options.num_dcs);

  bench::PrintHeader("Table 1", "inter-DC multicast share of inter-DC traffic",
                     "synthetic 7-day trace, 30 DCs, 1265 multicast transfers "
                     "(paper: same window; traffic shares calibrated to Table 1)");
  AsciiTable table1({"type of application", "% of multicast traffic (measured)", "paper"});
  table1.AddRow({"all applications", AsciiTable::Num(stats.multicast_byte_share * 100.0, 2) + "%",
                 "91.13%"});
  auto paper_share = [](const std::string& app) {
    for (const AppProfile& p : BaiduAppMix()) {
      if (p.name == app) {
        return p.multicast_share * 100.0;
      }
    }
    return 0.0;
  };
  for (const auto& [app, share] : stats.per_app_multicast_share) {
    table1.AddRow({app, AsciiTable::Num(share * 100.0, 2) + "%",
                   AsciiTable::Num(paper_share(app), 2) + "%"});
  }
  table1.Print();

  bench::PrintHeader("Figure 2a", "proportion of multicast transfers destined to % of DCs",
                     "paper anchors: 90% of transfers reach >= 60% of DCs, 70% reach >= 80%");
  EmpiricalDistribution dest;
  dest.AddAll(stats.dest_fraction);
  bench::PrintCdf("fraction of DCs", dest, 10);
  std::printf("check: P(fraction >= 0.6) = %.2f (paper 0.90), P(>= 0.8) = %.2f (paper 0.70)\n",
              1.0 - dest.CdfAt(0.6 - 1e-9), 1.0 - dest.CdfAt(0.8 - 1e-9));

  bench::PrintHeader("Figure 2b", "proportion of multicast transfers larger than threshold",
                     "paper anchors: 60% of transfers > 1 TB, 90% > 50 GB");
  EmpiricalDistribution sizes;
  for (double s : stats.multicast_sizes) {
    sizes.Add(s / 1e12);  // TB
  }
  bench::PrintCdf("size (TB)", sizes, 10);
  std::printf("check: P(size > 1 TB) = %.2f (paper 0.60), P(size > 50 GB) = %.2f (paper 0.90)\n",
              1.0 - sizes.CdfAt(1.0), 1.0 - sizes.CdfAt(0.05));
}

}  // namespace
}  // namespace bds

int main() {
  bds::Run();
  return 0;
}
