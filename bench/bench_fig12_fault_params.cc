// Regenerates Figure 12:
//  12a — blocks delivered per cycle under an agent failure (cycle 10) and a
//        full controller outage (cycles 20-30, decentralized fallback);
//  12b — per-DC completion time with 2 MB vs 64 MB blocks (paper: 2 MB is
//        1.5-2x faster);
//  12c — completion time vs update-cycle length 0.5-95 s (paper: knee at 3 s).
//
// Extended with the injected-fault subsystem (src/fault):
//  link faults — a WAN link hard-down mid-run: crossing transfers are killed,
//        fully-arrived blocks credited, and the next cycles re-plan the rest
//        over surviving paths;
//  chaos soak — one row per seed of randomized combined faults, asserting the
//        run completes, credits exactly once, and reproduces its fingerprint.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/service.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

std::unique_ptr<BdsService> MakeService(BdsOptions options, int dcs = 4, int servers = 4,
                                        Rate nic = MBps(20.0)) {
  GeoTopologyOptions topo_options;
  topo_options.num_dcs = dcs;
  topo_options.servers_per_dc = servers;
  topo_options.server_up = nic;
  topo_options.server_down = nic;
  topo_options.wan_capacity = Gbps(8.0);
  Topology topo = BuildGeoTopology(topo_options).value();
  return BdsService::Create(std::move(topo), options).value();
}

void Fig12a() {
  bench::PrintHeader("Figure 12a", "blocks delivered per cycle under failures",
                     "agent fails at cycle 10; controller down cycles 20-30 "
                     "(paper: same script; fallback = decentralized protocol)");
  BdsOptions options;
  options.cycle_length = 1.0;
  auto service = MakeService(options);
  BDS_CHECK(service->CreateJob(0, {1, 2, 3}, GB(1.6)).ok());
  // Failure script in cycle units (1 s cycles).
  ServerId victim = service->topology().ServersIn(1)[0];
  BDS_CHECK(service->InjectServerFailure(victim, 10.0).ok());
  BDS_CHECK(service->InjectControllerOutage(20.0, 30.0).ok());
  auto report = service->Run(Hours(1.0));
  BDS_CHECK(report.ok());

  AsciiTable table({"cycle", "mode", "blocks delivered"});
  for (const CycleStats& c : report->cycles) {
    if (c.cycle > 45) {
      break;
    }
    std::string note = c.controller_up ? "centralized" : "fallback";
    if (c.cycle == 10) {
      note += " (agent fails)";
    }
    if (c.cycle == 20) {
      note += " (controller fails)";
    }
    if (c.cycle == 30) {
      note += " (controller back)";
    }
    table.AddRow({std::to_string(c.cycle), note, std::to_string(c.blocks_delivered)});
  }
  table.Print();

  auto mean_delivered = [&](int64_t from, int64_t to) {
    int64_t sum = 0;
    int64_t n = 0;
    for (const CycleStats& c : report->cycles) {
      if (c.cycle >= from && c.cycle < to) {
        sum += c.blocks_delivered;
        ++n;
      }
    }
    return n > 0 ? static_cast<double>(sum) / static_cast<double>(n) : 0.0;
  };
  std::printf("mean deliveries/cycle: normal %.1f | after agent failure %.1f | "
              "fallback %.1f | recovered %.1f\n",
              mean_delivered(0, 10), mean_delivered(11, 20), mean_delivered(20, 30),
              mean_delivered(30, 45));
  std::printf("shape check: fallback degrades gracefully (> 0) and recovery restores "
              "centralized throughput (paper Fig 12a)\n");
}

void Fig12b() {
  bench::PrintHeader("Figure 12b", "per-DC completion time: 2 MB vs 64 MB blocks",
                     "1.6 GB to 9 destination DCs (paper: 2 MB blocks 1.5-2x faster)");
  AsciiTable table({"destination DC", "2 MB/blk (m)", "64 MB/blk (m)", "ratio"});
  std::vector<double> small_times;
  std::vector<double> big_times;
  for (Bytes block : {MB(2.0), MB(64.0)}) {
    BdsOptions options;
    options.block_size = block;
    options.cycle_length = 3.0;
    auto service = MakeService(options, /*dcs=*/10, /*servers=*/4);
    std::vector<DcId> dests;
    for (DcId d = 1; d < 10; ++d) {
      dests.push_back(d);
    }
    BDS_CHECK(service->CreateJob(0, dests, GB(1.6)).ok());
    auto report = service->Run(Hours(4.0));
    BDS_CHECK(report.ok() && report->completed);
    auto& out = block == MB(2.0) ? small_times : big_times;
    for (DcId d = 1; d < 10; ++d) {
      out.push_back(ToMinutes(report->dc_completion.at(d)));
    }
  }
  for (size_t i = 0; i < small_times.size(); ++i) {
    table.AddRow({"dc" + std::to_string(i + 1), AsciiTable::Num(small_times[i], 1),
                  AsciiTable::Num(big_times[i], 1),
                  AsciiTable::Num(big_times[i] / small_times[i], 2) + "x"});
  }
  table.Print();
}

void Fig12c() {
  bench::PrintHeader("Figure 12c", "completion time vs update-cycle length",
                     "one 1.6 GB fan-out per cycle length, control-plane latency charged "
                     "(paper: 0.5-95 s sweep; benefit flattens below ~3 s)");
  AsciiTable table({"cycle length (s)", "completion (m)"});
  for (double cycle : {0.5, 1.0, 3.0, 10.0, 30.0, 60.0, 95.0}) {
    BdsOptions options;
    options.cycle_length = cycle;
    options.model_decision_latency = true;  // Updating too often costs overhead.
    auto service = MakeService(options);
    BDS_CHECK(service->CreateJob(0, {1, 2, 3}, GB(1.6)).ok());
    auto report = service->Run(Hours(12.0));
    BDS_CHECK(report.ok() && report->completed);
    table.AddRow({AsciiTable::Num(cycle, 1), AsciiTable::Num(ToMinutes(report->completion_time), 2)});
  }
  table.Print();
  std::printf("shape check: completion grows with cycle length; gains diminish below ~3 s\n");
}

void LinkFaultReplan() {
  bench::PrintHeader("Link faults", "hard WAN link-down mid-run, re-plan over surviving paths",
                     "one WAN link dies for 20 s; crossing transfers are killed and their "
                     "remaining blocks rescheduled (§5.3 extended to the network)");
  BdsOptions options;
  options.cycle_length = 1.0;
  options.validate_invariants = true;
  auto service = MakeService(options);
  BDS_CHECK(service->CreateJob(0, {1, 2, 3}, GB(1.6)).ok());
  // Pick the first WAN link out of the source DC: the busiest one.
  LinkId wan = kInvalidLink;
  for (const Link& l : service->topology().links()) {
    if (l.type == LinkType::kWan && l.src_dc == 0) {
      wan = l.id;
      break;
    }
  }
  BDS_CHECK(wan != kInvalidLink);
  FaultInjector* fault = service->mutable_fault_injector();
  BDS_CHECK(fault->AddLinkDown(service->topology(), wan, 10.0, 30.0).ok());
  auto report = service->Run(Hours(1.0));
  BDS_CHECK(report.ok() && report->completed);

  AsciiTable table({"cycle", "link state", "transfers started", "blocks delivered"});
  for (const CycleStats& c : report->cycles) {
    if (c.cycle > 40) {
      break;
    }
    std::string state = c.start_time >= 10.0 && c.start_time < 30.0 ? "DOWN" : "up";
    table.AddRow({std::to_string(c.cycle), state, std::to_string(c.transfers_started),
                  std::to_string(c.blocks_delivered)});
  }
  table.Print();
  std::printf("transfers killed by the link-down: %lld; worst link overshoot: %.2e\n",
              static_cast<long long>(report->faults.flows_killed),
              report->max_link_overshoot.value_or(-1.0));
  std::printf("shape check: deliveries continue through the outage (surviving paths carry "
              "the re-planned transfers) and no link ever exceeds its faulted capacity\n");
}

void ChaosSoak() {
  bench::PrintHeader("Chaos soak", "randomized combined faults, one row per seed",
                     "link downs/degradations/flaps + lossy control plane + block "
                     "corruption + a controller outage; every run must complete, credit "
                     "exactly once, and reproduce its fingerprint");
  AsciiTable table({"seed", "chaos drawn", "done", "completion (m)", "killed", "corrupt",
                    "redundant", "fingerprint"});
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    BdsOptions options;
    options.cycle_length = 1.0;
    options.validate_invariants = true;
    options.seed = seed;
    auto service = MakeService(options);
    BDS_CHECK(service->CreateJob(0, {1, 2, 3}, MB(400.0)).ok());
    auto plan = service->InstallChaos(seed);
    BDS_CHECK(plan.ok());
    auto report = service->Run(Hours(2.0));
    BDS_CHECK(report.ok());
    BDS_CHECK(report->completed);
    BDS_CHECK(report->max_link_overshoot.has_value());
    BDS_CHECK(*report->max_link_overshoot <= 1e-4);
    const ReplicaState& state = service->mutable_controller()->state();
    BDS_CHECK(state.total_credited() == 200 * 3);  // 400 MB / 2 MB x 3 dest DCs.
    char fp[20];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(report->Fingerprint()));
    table.AddRow({std::to_string(seed), plan->description,
                  report->completed ? "yes" : "NO",
                  AsciiTable::Num(ToMinutes(report->completion_time), 2),
                  std::to_string(report->faults.flows_killed),
                  std::to_string(report->faults.blocks_corrupted),
                  std::to_string(state.redundant_deliveries()), fp});
  }
  table.Print();
  std::printf("shape check: every seed completes with exactly-once crediting; rerun the "
              "binary and the fingerprints must not change\n");
}

void Run() {
  Fig12a();
  Fig12b();
  Fig12c();
  LinkFaultReplan();
  ChaosSoak();
}

}  // namespace
}  // namespace bds

int main() {
  bds::Run();
  return 0;
}
