// Regenerates Figure 13 (in-depth analysis):
//  13a — algorithm running time: BDS (merging + FPTAS) vs the standard LP
//        (per-delivery commodities + exact simplex) as blocks grow
//        (paper: BDS < 25 ms while standard LP reaches ~4 s at 4000 blocks);
//  13b — near-optimality: completion time of both on the small setup
//        (2 DCs, 4 servers, 20 MB/s);
//  13c — proportion of blocks downloaded from the origin DC
//        (paper: < 20 % for ~90 % of servers).

#include <chrono>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/service.h"
#include "src/scheduler/controller_algorithm.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

double DecideSeconds(ControllerAlgorithm& algorithm, const ReplicaState& state,
                     const std::vector<Rate>& residual) {
  auto start = std::chrono::steady_clock::now();
  CycleDecision d = algorithm.Decide(0, state, residual, {});
  (void)d;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

void Fig13a() {
  bench::PrintHeader("Figure 13a", "algorithm running time: BDS vs standard LP",
                     "2 DCs x 16 servers; one decision cycle per block count. Standard LP = "
                     "undecoupled joint formulation + exact simplex (the paper used MATLAB "
                     "linprog; absolute times differ, the super-linear growth is the point)");
  auto topo = BuildFullMesh(2, 16, Gbps(10.0), MBps(20.0), MBps(20.0)).value();
  auto routing = WanRoutingTable::Build(topo, 3).value();
  std::vector<Rate> residual;
  for (const Link& l : topo.links()) {
    residual.push_back(l.capacity);
  }

  AsciiTable table({"# blocks", "BDS (ms)", "standard LP (ms)"});
  for (int64_t blocks : {200, 400, 800, 1200, 1600}) {
    ReplicaState state(&topo);
    MulticastJob job =
        MakeJob(0, 0, {1}, MB(2.0) * static_cast<double>(blocks), MB(2.0)).value();
    BDS_CHECK(state.AddJob(job).ok());

    ControllerAlgorithmOptions fast_options;
    ControllerAlgorithm fast(&topo, &routing, fast_options);
    double fast_ms = DecideSeconds(fast, state, residual) * 1e3;

    ControllerAlgorithmOptions lp_options;
    lp_options.merge_subtasks = false;  // The undecoupled formulation.
    lp_options.use_exact_lp = true;
    lp_options.schedule_all = true;
    ControllerAlgorithm slow(&topo, &routing, lp_options);
    double slow_ms = DecideSeconds(slow, state, residual) * 1e3;

    table.AddRow({std::to_string(blocks), AsciiTable::Num(fast_ms, 2),
                  AsciiTable::Num(slow_ms, 1)});
  }
  table.Print();
  std::printf("shape check: BDS stays ~flat in the tens of ms; the standard LP grows "
              "super-linearly (paper: 25 ms vs 4000 ms at 4000 blocks)\n");
}

void Fig13b() {
  bench::PrintHeader("Figure 13b", "near-optimality of BDS vs standard LP",
                     "2 DCs, 4 servers, 20 MB/s (the paper's exact micro setup)");
  AsciiTable table({"# blocks", "BDS completion (m)", "standard LP completion (m)", "gap"});
  for (int64_t blocks : {200, 800, 1600, 3200}) {
    Bytes size = MB(2.0) * static_cast<double>(blocks);
    auto run = [&](bool exact) {
      Topology topo = BuildTwoDcMicro().value();
      auto routing = WanRoutingTable::Build(topo, 3).value();
      BdsOptions options;
      options.use_exact_lp = exact;
      options.merge_subtasks = !exact;
      BdsStrategy strategy(options);
      MulticastJob job = MakeJob(0, 0, {1}, size, MB(2.0)).value();
      auto r = strategy.Run(topo, routing, job, 1, Hours(12.0));
      BDS_CHECK(r.ok() && r->completed);
      return ToMinutes(r->completion_time);
    };
    double bds_m = run(false);
    double lp_m = run(true);
    table.AddRow({std::to_string(blocks), AsciiTable::Num(bds_m, 2), AsciiTable::Num(lp_m, 2),
                  AsciiTable::Num(100.0 * (bds_m - lp_m) / lp_m, 1) + "%"});
  }
  table.Print();
  std::printf("shape check: BDS within a few %% of the exact LP (paper: curves overlap)\n");
}

void Fig13c() {
  bench::PrintHeader("Figure 13c", "proportion of blocks fetched from the origin DC",
                     "3.2 GB to 9 destination DCs x 8 servers "
                     "(paper: < 20% origin for ~90% of servers)");
  GeoTopologyOptions topo_options;
  topo_options.num_dcs = 10;
  topo_options.servers_per_dc = 8;
  topo_options.server_up = MBps(20.0);
  topo_options.server_down = MBps(20.0);
  Topology topo = BuildGeoTopology(topo_options).value();
  BdsOptions options;
  auto service = BdsService::Create(std::move(topo), options).value();
  std::vector<DcId> dests;
  for (DcId d = 1; d < 10; ++d) {
    dests.push_back(d);
  }
  BDS_CHECK(service->CreateJob(0, dests, GB(3.2)).ok());
  auto report = service->Run(Hours(12.0));
  BDS_CHECK(report.ok() && report->completed);

  EmpiricalDistribution proportion;
  for (const auto& [server, stats] : report->origin_stats) {
    if (stats.total > 0) {
      proportion.Add(static_cast<double>(stats.from_origin) /
                     static_cast<double>(stats.total));
    }
  }
  bench::PrintCdf("origin proportion", proportion, 10);
  std::printf("P(origin proportion < 0.2) = %.2f (paper: ~0.90); overlay paths carry "
              "%.0f%% of deliveries\n",
              proportion.CdfAt(0.2), 100.0 * (1.0 - proportion.Mean()));
}

void Run() {
  Fig13a();
  Fig13b();
  Fig13c();
}

}  // namespace
}  // namespace bds

int main() {
  bds::Run();
  return 0;
}
