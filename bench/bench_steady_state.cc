// Steady-state service-mode bench: sweeps the open-loop arrival rate across
// the overload knee and reports the service-level outcome at each load
// factor — admission counts, completion-time percentiles, watchdog overruns,
// and degradation-ladder occupancy.
//
// Below the knee (load 0.5x) admission stays idle and the ladder never
// engages; past it (1.5x, 2x) the backlog saturates at the admission bound,
// the stressed cycle-cost model pushes cycles over budget, and the ladder
// sheds work — the graceful-degradation story of the overload PR in one
// table.
//
//   bench_steady_state --json=BENCH_steady.json     # full sweep
//   bench_steady_state --smoke --json=out.json      # same points (cheap)
//
// Every number in the JSON is simulation-deterministic (fixed seeds, modeled
// cycle costs), so tools/check_bench_regression.py gates the committed
// baseline with tight tolerances rather than timing ratios.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/service.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/metrics.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

// Arrival rate at which offered deliveries roughly match what the thin mesh
// drains (measured with the load-0.5/1.0 points: service sits near a dozen
// deliveries per 3 s cycle).
constexpr double kKneeJobsPerHour = 1200.0;
constexpr double kLoadFactors[] = {0.5, 1.0, 1.5, 2.0};
constexpr double kDurationHours = 2.0;

struct SweepPoint {
  double load_factor = 0.0;
  double jobs_per_hour = 0.0;
  int64_t generated = 0;
  int64_t accepted = 0;
  int64_t rejected = 0;
  int64_t completed = 0;
  double p50_minutes = 0.0;
  double p99_minutes = 0.0;
  int64_t overrun_cycles = 0;
  int max_rung = 0;  // Highest ladder rung with non-zero occupancy.
  int64_t transitions = 0;
  int64_t peak_live_pending = 0;
  int64_t retired_jobs = 0;
  uint64_t fingerprint = 0;
  const char* stop_reason = "";
};

SweepPoint RunPoint(double load_factor) {
  // Same laptop-scale overload rig as tests/steady_state_test.cc: thin WAN
  // pipes put the knee at a friendly arrival rate, and the stressed cost
  // model makes the admission-capped backlog price past the cycle budget.
  BdsOptions options;
  options.block_size = MB(2.0);
  options.cycle_length = 3.0;
  options.validate_invariants = true;
  options.seed = 7;
  Topology topo = BuildFullMesh(4, 1, MBps(1.0), MBps(4.0), MBps(4.0)).value();
  auto service = BdsService::Create(std::move(topo), options).value();

  SteadyStateOptions steady;
  steady.duration = kDurationHours * 3600.0;
  steady.drain = true;
  steady.drain_limit = Hours(1.0);
  // Poisson, not bursty: the sweep should map load factor cleanly onto the
  // long-run rate (a 4x burst would put even the half-load point past the
  // knee instantaneously; the soak test covers bursty arrivals).
  steady.arrivals.pattern = ArrivalPattern::kPoisson;
  steady.arrivals.jobs_per_hour = kKneeJobsPerHour * load_factor;
  steady.arrivals.size_scale = 2e-6;
  steady.arrivals.seed = 99;
  steady.admission.enabled = true;
  steady.admission.policy = AdmissionPolicy::kReject;
  steady.admission.max_backlog_cycles = 30.0;
  steady.admission.bootstrap_cycles = 8;
  steady.overload.enabled = true;
  steady.overload.cost.base_seconds = 1e-4;
  steady.overload.cost.per_pending_seconds = 1.2e-2;
  steady.overload.recover_cycles = 5;

  auto report = service->RunSteadyState(steady);
  BDS_CHECK_MSG(report.ok(), report.status().ToString().c_str());

  SweepPoint p;
  p.load_factor = load_factor;
  p.jobs_per_hour = steady.arrivals.jobs_per_hour;
  p.generated = report->jobs_generated;
  p.accepted = report->admission.accepted;
  p.rejected = report->admission.rejected;
  p.completed = report->jobs_completed;
  p.p50_minutes = report->completion_p50_minutes;
  p.p99_minutes = report->completion_p99_minutes;
  p.overrun_cycles = report->cycle_overruns;
  for (size_t rung = 0; rung < report->rung_cycles.size(); ++rung) {
    if (report->rung_cycles[rung] > 0) {
      p.max_rung = static_cast<int>(rung);
    }
  }
  p.transitions = static_cast<int64_t>(report->transitions.size());
  p.peak_live_pending = report->peak_live_pending;
  p.retired_jobs = report->retired_jobs;
  p.fingerprint = report->Fingerprint();
  p.stop_reason = StopReasonName(report->run.stop_reason);
  return p;
}

std::vector<SweepPoint> RunSweep() {
  bench::PrintHeader(
      "Steady-state service", "open-loop arrival sweep across the overload knee",
      "4-DC thin mesh, 2 h simulated per point, Poisson arrivals, stressed "
      "cycle-cost model; all columns simulation-deterministic");
  std::printf("%6s %9s %9s %9s %9s %9s %8s %8s %9s %5s %7s %9s\n", "load", "jobs/h",
              "generated", "accepted", "rejected", "completed", "p50 min", "p99 min",
              "overruns", "rung", "transit", "peak pend");
  std::vector<SweepPoint> points;
  for (double load : kLoadFactors) {
    SweepPoint p = RunPoint(load);
    std::printf("%6.2f %9.0f %9lld %9lld %9lld %9lld %8.2f %8.2f %9lld %5d %7lld %9lld\n",
                p.load_factor, p.jobs_per_hour, static_cast<long long>(p.generated),
                static_cast<long long>(p.accepted), static_cast<long long>(p.rejected),
                static_cast<long long>(p.completed), p.p50_minutes, p.p99_minutes,
                static_cast<long long>(p.overrun_cycles), p.max_rung,
                static_cast<long long>(p.transitions),
                static_cast<long long>(p.peak_live_pending));
    points.push_back(p);
  }
  return points;
}

void WriteSweepJson(const std::vector<SweepPoint>& points, bool smoke,
                    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  BDS_CHECK_MSG(f != nullptr, "cannot open --json output path");
  std::fprintf(f, "{\n  \"benchmark\": \"steady_state\",\n");
  std::fprintf(f, "  \"mode\": \"steady\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f, "  \"telemetry_enabled\": %s,\n",
               bds::telemetry::Enabled() ? "true" : "false");
  std::fprintf(f, "  \"flight_recorder_enabled\": %s,\n",
               bds::telemetry::FlightRecorder::Global().active() ? "true" : "false");
  // This bench never exercises the controller's cross-cycle warm start;
  // the stamp lets the regression gate assert the header matches its
  // committed baseline.
  std::fprintf(f, "  \"warm_start\": false,\n");
  std::fprintf(f, "  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    const SweepPoint& p = points[i];
    std::fprintf(
        f,
        "    {\"load_factor\": %.2f, \"jobs_per_hour\": %.1f, \"generated\": %lld, "
        "\"accepted\": %lld, \"rejected\": %lld, \"completed\": %lld, "
        "\"p50_minutes\": %.4f, \"p99_minutes\": %.4f, \"overrun_cycles\": %lld, "
        "\"max_rung\": %d, \"transitions\": %lld, \"peak_live_pending\": %lld, "
        "\"retired_jobs\": %lld, \"stop_reason\": \"%s\", "
        "\"fingerprint\": \"%016llx\"}%s\n",
        p.load_factor, p.jobs_per_hour, static_cast<long long>(p.generated),
        static_cast<long long>(p.accepted), static_cast<long long>(p.rejected),
        static_cast<long long>(p.completed), p.p50_minutes, p.p99_minutes,
        static_cast<long long>(p.overrun_cycles), p.max_rung,
        static_cast<long long>(p.transitions), static_cast<long long>(p.peak_live_pending),
        static_cast<long long>(p.retired_jobs), p.stop_reason,
        static_cast<unsigned long long>(p.fingerprint), i + 1 == points.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace bds

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--sweep-only") == 0) {
      // Accepted for regression-tool symmetry; the deterministic sweep is
      // the whole binary, so smoke and full run identical points.
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  std::vector<bds::SweepPoint> points = bds::RunSweep();
  if (!json_path.empty()) {
    bds::WriteSweepJson(points, smoke, json_path);
  }
  return 0;
}
