// Flow-level simulator hot-path benchmark: drain time of N concurrent flows
// under the incremental event loop vs the full-reallocation reference.
//
// The workload models many independent replication jobs in flight at once —
// the regime the controller simulates at Baidu scale: M disjoint DC-pair
// clusters (2 DCs, 2 servers each, one WAN link), with flows spread evenly
// across clusters. Under full reallocation, every flow completion re-solves
// every cluster; incrementally, only the finished flow's cluster is
// re-solved and only its flows are touched — the two must stay bit
// identical, which the benchmark asserts via a completion-record
// fingerprint before reporting any timing.
//
//   bench_sim_hotpath --json=BENCH_simulator.json   # full sweep
//   bench_sim_hotpath --smoke --json=out.json       # reduced scale
//   bench_sim_hotpath --large-only --json=out.json  # only the large points
//
// Two point families are produced:
//   * gated sweep points (reference vs incremental, bit-identical): the
//     config-relative regression gate runs on these;
//   * large incremental-only points (the reference's O(F) event cost cannot
//     reach them): 1e5 and 1e6 concurrent flows, recorded under
//     "large_points" and gated on absolute CPU seconds.
// --smoke keeps the small flow counts and scales the large family down to
// 1e5, so it finishes in seconds (`bench-smoke` ctest label); the full sweep
// runs the 1e6 drain.

#include <time.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iterator>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"
#include "src/simulator/network_simulator.h"
#include "src/topology/topology.h"

namespace bds {
namespace {

struct SweepConfig {
  const char* name;
  bool full_reallocation;
};

// "reference" is the pre-optimization per-event full reallocation; the
// regression gate normalizes "incremental" by it.
constexpr SweepConfig kSweepConfigs[] = {
    {"reference", true},
    {"incremental", false},
};

struct SweepPoint {
  int64_t flows = 0;
  // Wall / process-CPU seconds for the full drain, min over repetitions.
  // The gate compares the CPU column (stable on contended runners).
  double seconds[std::size(kSweepConfigs)] = {};
  double cpu_seconds[std::size(kSweepConfigs)] = {};
};

// Incremental-only scale point (the reference config cannot reach these).
struct LargePoint {
  int64_t flows = 0;
  double seconds = 0.0;
  double cpu_seconds = 0.0;
  int64_t events = 0;
};

double ProcessCpuSeconds() {
  timespec ts;
  BDS_CHECK(clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

uint64_t Mix64(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdull;
  return h ^ (h >> 33);
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return bits;
}

// M disjoint DC-pair clusters; cluster c's flows go A-server -> WAN -> B-server.
struct ClusterNet {
  Topology topo;
  std::vector<std::vector<LinkId>> paths;  // [cluster][src_server*2 + dst_server]
};

ClusterNet BuildClusters(int num_clusters) {
  ClusterNet net;
  for (int c = 0; c < num_clusters; ++c) {
    std::string suffix = std::to_string(c);
    DcId a = net.topo.AddDatacenter("a" + suffix);
    DcId b = net.topo.AddDatacenter("b" + suffix);
    ServerId src[2];
    ServerId dst[2];
    for (int s = 0; s < 2; ++s) {
      src[s] = net.topo.AddServer(a, MBps(60.0), MBps(60.0)).value();
      dst[s] = net.topo.AddServer(b, MBps(60.0), MBps(60.0)).value();
    }
    LinkId wan = net.topo.AddWanLink(a, b, MBps(100.0)).value();
    for (int i = 0; i < 2; ++i) {
      for (int j = 0; j < 2; ++j) {
        net.paths.push_back({net.topo.server(src[i]).uplink, wan,
                             net.topo.server(dst[j]).downlink});
      }
    }
  }
  return net;
}

struct FlowSpec {
  size_t path;  // Index into ClusterNet::paths.
  Bytes bytes;
  Rate pinned;
};

std::vector<FlowSpec> MakeWorkload(int64_t num_flows, int num_clusters) {
  uint64_t s = 0x5DEECE66Dull + static_cast<uint64_t>(num_flows);
  auto next = [&]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  std::vector<FlowSpec> specs;
  specs.reserve(static_cast<size_t>(num_flows));
  for (int64_t i = 0; i < num_flows; ++i) {
    FlowSpec spec;
    size_t cluster = static_cast<size_t>(i) % static_cast<size_t>(num_clusters);
    spec.path = cluster * 4 + next() % 4;
    spec.bytes = MB(1.0 + static_cast<double>(next() % 64));
    spec.pinned = next() % 5 == 0 ? MBps(0.5 + 0.25 * static_cast<double>(next() % 4)) : 0.0;
    specs.push_back(spec);
  }
  return specs;
}

struct DrainResult {
  double wall = 0.0;
  double cpu = 0.0;
  uint64_t fingerprint = 0;
  int64_t events = 0;
  int64_t reallocations = 0;
};

DrainResult DrainOnce(const ClusterNet& net, const std::vector<FlowSpec>& specs,
                      bool full_reallocation) {
  NetworkSimulator sim(&net.topo);
  sim.set_full_reallocation(full_reallocation);
  // Batched submission: the realistic controller-cycle path, and it lets the
  // simulator reorder the pool for locality at commit (bit-identical results
  // either way — tests/simulator_batch_test.cc holds the fingerprint parity).
  sim.BeginBatch();
  for (const FlowSpec& spec : specs) {
    BDS_CHECK(sim.StartFlow(net.paths[spec.path], spec.bytes, spec.pinned).ok());
  }
  sim.CommitBatch();
  DrainResult result;
  double cpu_start = ProcessCpuSeconds();
  auto start = std::chrono::steady_clock::now();
  auto end = sim.RunUntilIdle();
  auto stop = std::chrono::steady_clock::now();
  result.cpu = ProcessCpuSeconds() - cpu_start;
  result.wall = std::chrono::duration<double>(stop - start).count();
  BDS_CHECK(end.ok());
  BDS_CHECK(sim.completed_flows().size() == specs.size());
  uint64_t fp = 0;
  for (const FlowRecord& r : sim.completed_flows()) {
    fp = Mix64(fp, static_cast<uint64_t>(r.id));
    fp = Mix64(fp, DoubleBits(r.end_time));
    fp = Mix64(fp, DoubleBits(r.bytes));
  }
  result.fingerprint = fp;
  result.events = sim.num_completion_events();
  result.reallocations = sim.num_reallocations();
  return result;
}

int ClustersFor(int64_t num_flows) {
  // Keep ~100 flows per cluster so the per-event component stays job-sized
  // as N grows, mirroring many concurrent inter-DC jobs.
  int clusters = static_cast<int>(num_flows / 100);
  return clusters < 8 ? 8 : clusters;
}

// Telemetry tax on the hot path: the 1e5-flow incremental drain with
// everything observing (metrics registry, trace ring, flight recorder with a
// controller-style rate observer) vs all-off. Gated at ratio <= 1.03 by
// tools/check_bench_regression.py — the PR-5 cost contract, extended to the
// flight recorder.
struct OverheadPoint {
  int64_t flows = 0;
  double off_cpu_seconds = 0.0;
  double on_cpu_seconds = 0.0;
  double ratio = 1.0;
};

struct SweepResult {
  std::vector<SweepPoint> points;
  std::vector<LargePoint> large;
  OverheadPoint overhead;
};

OverheadPoint MeasureTelemetryOverhead(bool smoke) {
  const int64_t num_flows = 100'000;
  const int clusters = ClustersFor(num_flows);
  ClusterNet net = BuildClusters(clusters);
  std::vector<FlowSpec> specs = MakeWorkload(num_flows, clusters);
  const int reps = smoke ? 9 : 11;

  // Mirrors the controller's Run()-entry wiring: tagged flows, an observer
  // that filters on tag2, resolves the owning transfer, and journals the
  // changepoint — 512 concurrent transfers, ~200 flows each, every flow
  // tagged with its transfer as the controller tags its block flows.
  auto drain = [&](bool instrumented) {
    NetworkSimulator sim(&net.topo);
    sim.set_full_reallocation(false);
    std::unordered_map<int64_t, JobId> jobs;
    if (instrumented) {
      telemetry::MetricsRegistry::Global().Reset();
      telemetry::TraceRecorder::Global().Start();
      auto& fr = telemetry::FlightRecorder::Global();
      fr.Start();
      // One map entry per *transfer*, as in the controller: flows of the
      // same transfer share its tag (see StartFlow below), so the observer
      // resolves against a transfers-sized map, not a flows-sized one.
      jobs.reserve(512);
      for (int64_t t = 0; t < 512; ++t) {
        jobs.emplace(t, static_cast<JobId>(t));
      }
      for (JobId j = 0; j < 512; ++j) {
        fr.Arrival(j, 0.0, 0, 1, 4, MB(16.0));
      }
      sim.SetRateObserver(
          [&jobs](int64_t tag, int64_t tag2, SimTime t, Rate old_rate, Rate new_rate) {
            if (!telemetry::FlightRecorder::Global().WantsRateEvents()) {
              return false;  // Budget spent: the simulator drops the observer.
            }
            if (tag2 != 0) {
              return true;
            }
            auto it = jobs.find(tag);
            if (it == jobs.end()) {
              return true;
            }
            telemetry::FlightRecorder::Global().RateChange(it->second, t, old_rate, new_rate);
            return true;
          },
          fr.options().min_relative_rate_change);
    }
    sim.BeginBatch();
    for (size_t i = 0; i < specs.size(); ++i) {
      BDS_CHECK(sim.StartFlow(net.paths[specs[i].path], specs[i].bytes, specs[i].pinned,
                              /*tag=*/static_cast<int64_t>(i) % 512, /*tag2=*/0)
                    .ok());
    }
    sim.CommitBatch();
    double cpu_start = ProcessCpuSeconds();
    auto end = sim.RunUntilIdle();
    double cpu = ProcessCpuSeconds() - cpu_start;
    BDS_CHECK(end.ok());
    if (instrumented) {
      telemetry::TraceRecorder::Global().Stop();
      telemetry::FlightRecorder::Global().Stop();
      telemetry::SetEnabled(false);
    }
    return cpu;
  };

  OverheadPoint p;
  p.flows = num_flows;
  (void)drain(false);  // Warmup.
  // Interleave off/on reps and take the MEDIAN of per-pair ratios: machine
  // load on a shared box drifts by far more than the overhead under
  // measurement, but the two drains of one pair run back to back and share a
  // load window, so their ratio mostly cancels the drift; the median then
  // discards pairs where a spike landed inside one drain. min(on)/min(off)
  // across independent reps does not have this property — the two minima can
  // sample different quiet windows and swing the ratio by several percent.
  std::vector<double> ratios;
  ratios.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    // Alternate which mode runs first so a linear load ramp biases half the
    // pairs up and half down instead of all one way.
    double off, on;
    if (r % 2 == 0) {
      off = drain(false);
      on = drain(true);
    } else {
      on = drain(true);
      off = drain(false);
    }
    if (off > 0.0) {
      ratios.push_back(on / off);
    }
    if (r == 0 || off < p.off_cpu_seconds) {
      p.off_cpu_seconds = off;
    }
    if (r == 0 || on < p.on_cpu_seconds) {
      p.on_cpu_seconds = on;
    }
  }
  std::sort(ratios.begin(), ratios.end());
  // Gate statistic: the first-quartile pair ratio. A real (systematic)
  // overhead shifts every pair up, Q1 included; a neighbor's load burst only
  // inflates the pairs it lands on, so Q1 discards it without the full
  // optimism of the minimum (which a single inverse-noise pair can fake).
  p.ratio = ratios.empty() ? 1.0 : ratios[ratios.size() / 4];
  std::printf("\n  overhead pair ratios:");
  for (double r : ratios) {
    std::printf(" %.3f", r);
  }
  std::printf("\n");
  std::printf("\ntelemetry overhead (%lld flows, incremental): off %.1f ms, "
              "all-on %.1f ms, ratio %.3fx (%lld journal events, %lld rate "
              "changepoints past budget)\n",
              static_cast<long long>(p.flows), p.off_cpu_seconds * 1e3,
              p.on_cpu_seconds * 1e3, p.ratio,
              static_cast<long long>(telemetry::FlightRecorder::Global().num_events()),
              static_cast<long long>(
                  telemetry::FlightRecorder::Global().rate_events_dropped()));
  return p;
}

SweepResult RunSweep(bool smoke, bool large_only) {
  SweepResult result;
  std::vector<int64_t> flow_counts =
      smoke ? std::vector<int64_t>{1'000, 3'000}
            : std::vector<int64_t>{1'000, 3'000, 10'000};

  bench::PrintHeader("Simulator hot path", "drain time of N concurrent flows",
                     "disjoint DC-pair clusters, ~100 flows each, mixed pinned/fair; "
                     "full per-event reallocation vs incremental (bit-identical, "
                     "min over repetitions)");
  std::printf("%10s  %10s  %12s  %12s  %9s  %10s  %12s\n", "flows", "clusters",
              "reference", "incremental", "speedup", "events", "comp solves");
  if (large_only) {
    flow_counts.clear();  // Only the large incremental-only family below.
  }

  std::vector<SweepPoint>& points = result.points;
  for (int64_t num_flows : flow_counts) {
    int clusters = ClustersFor(num_flows);
    ClusterNet net = BuildClusters(clusters);
    std::vector<FlowSpec> specs = MakeWorkload(num_flows, clusters);
    (void)DrainOnce(net, specs, /*full_reallocation=*/false);  // Warmup.

    const int reps = num_flows >= 10'000 ? 2 : 3;
    SweepPoint point;
    point.flows = num_flows;
    uint64_t fingerprints[std::size(kSweepConfigs)] = {};
    DrainResult last;
    for (size_t ci = 0; ci < std::size(kSweepConfigs); ++ci) {
      double best_wall = 0.0;
      double best_cpu = 0.0;
      for (int r = 0; r < reps; ++r) {
        DrainResult res = DrainOnce(net, specs, kSweepConfigs[ci].full_reallocation);
        if (r == 0 || res.wall < best_wall) {
          best_wall = res.wall;
        }
        if (r == 0 || res.cpu < best_cpu) {
          best_cpu = res.cpu;
        }
        fingerprints[ci] = res.fingerprint;
        last = res;
      }
      point.seconds[ci] = best_wall;
      point.cpu_seconds[ci] = best_cpu;
    }
    BDS_CHECK_MSG(fingerprints[0] == fingerprints[1],
                  "incremental simulation diverged from full reallocation");
    std::printf("%10lld  %10d  %9.1f ms  %9.1f ms  %8.2fx  %10lld  %12lld\n",
                static_cast<long long>(num_flows), clusters, point.seconds[0] * 1e3,
                point.seconds[1] * 1e3, point.seconds[0] / point.seconds[1],
                static_cast<long long>(last.events),
                static_cast<long long>(last.reallocations));
    points.push_back(point);
  }

  // Large incremental-only family: scales the per-event-O(F) reference
  // cannot reach. Gated separately on absolute CPU seconds (no reference
  // column to normalize by). Smoke scales 10^6 down to 10^5.
  std::vector<int64_t> large_counts =
      smoke ? std::vector<int64_t>{100'000} : std::vector<int64_t>{100'000, 1'000'000};
  std::printf("\n%10s  %10s  %12s  %12s  %10s  %12s   (incremental only)\n", "flows",
              "clusters", "wall", "cpu", "events", "comp solves");
  for (int64_t num_flows : large_counts) {
    int clusters = ClustersFor(num_flows);
    ClusterNet net = BuildClusters(clusters);
    std::vector<FlowSpec> specs = MakeWorkload(num_flows, clusters);
    LargePoint point;
    point.flows = num_flows;
    DrainResult res;
    const int reps = 2;  // First rep doubles as warmup; gate takes the min.
    for (int r = 0; r < reps; ++r) {
      res = DrainOnce(net, specs, /*full_reallocation=*/false);
      if (r == 0 || res.wall < point.seconds) {
        point.seconds = res.wall;
      }
      if (r == 0 || res.cpu < point.cpu_seconds) {
        point.cpu_seconds = res.cpu;
      }
    }
    point.events = res.events;
    std::printf("%10lld  %10d  %9.1f ms  %9.1f ms  %10lld  %12lld\n",
                static_cast<long long>(num_flows), clusters, point.seconds * 1e3,
                point.cpu_seconds * 1e3, static_cast<long long>(res.events),
                static_cast<long long>(res.reallocations));
    result.large.push_back(point);
  }
  result.overhead = MeasureTelemetryOverhead(smoke);
  return result;
}

void WriteSweepJson(const SweepResult& result, bool smoke, const std::string& path) {
  const std::vector<SweepPoint>& points = result.points;
  std::FILE* f = std::fopen(path.c_str(), "w");
  BDS_CHECK_MSG(f != nullptr, "cannot open --json output path");
  std::fprintf(f, "{\n  \"benchmark\": \"sim_hotpath\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  // The bench must time the telemetry-off fast path; the regression check
  // fails any JSON stamped with telemetry on. Same contract for the flight
  // recorder (the telemetry_overhead section measures the instrumented path
  // explicitly — the gated points never do).
  std::fprintf(f, "  \"telemetry_enabled\": %s,\n",
               bds::telemetry::Enabled() ? "true" : "false");
  std::fprintf(f, "  \"flight_recorder_enabled\": %s,\n",
               bds::telemetry::FlightRecorder::Global().active() ? "true" : "false");
  // This bench never exercises the controller's cross-cycle warm start;
  // the stamp lets the regression gate assert the header matches its
  // committed baseline.
  std::fprintf(f, "  \"warm_start\": false,\n");
  std::fprintf(f, "  \"reference_config\": \"reference\",\n");
  std::fprintf(f, "  \"configs\": [");
  for (size_t ci = 0; ci < std::size(kSweepConfigs); ++ci) {
    std::fprintf(f, "%s\"%s\"", ci == 0 ? "" : ", ", kSweepConfigs[ci].name);
  }
  std::fprintf(f, "],\n  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    std::fprintf(f, "    {\"flows\": %lld, \"seconds\": {",
                 static_cast<long long>(points[i].flows));
    for (size_t ci = 0; ci < std::size(kSweepConfigs); ++ci) {
      std::fprintf(f, "%s\"%s\": %.6f", ci == 0 ? "" : ", ", kSweepConfigs[ci].name,
                   points[i].seconds[ci]);
    }
    std::fprintf(f, "}, \"cpu_seconds\": {");
    for (size_t ci = 0; ci < std::size(kSweepConfigs); ++ci) {
      std::fprintf(f, "%s\"%s\": %.6f", ci == 0 ? "" : ", ", kSweepConfigs[ci].name,
                   points[i].cpu_seconds[ci]);
    }
    std::fprintf(f, "}}%s\n", i + 1 == points.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n  \"large_points\": [\n");
  for (size_t i = 0; i < result.large.size(); ++i) {
    const LargePoint& p = result.large[i];
    std::fprintf(f,
                 "    {\"flows\": %lld, \"seconds\": %.6f, \"cpu_seconds\": %.6f, "
                 "\"events\": %lld}%s\n",
                 static_cast<long long>(p.flows), p.seconds, p.cpu_seconds,
                 static_cast<long long>(p.events), i + 1 == result.large.size() ? "" : ",");
  }
  std::fprintf(f,
               "  ],\n  \"telemetry_overhead\": {\"flows\": %lld, "
               "\"off_cpu_seconds\": %.6f, \"on_cpu_seconds\": %.6f, \"ratio\": %.6f}\n}\n",
               static_cast<long long>(result.overhead.flows), result.overhead.off_cpu_seconds,
               result.overhead.on_cpu_seconds, result.overhead.ratio);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace bds

int main(int argc, char** argv) {
  bool smoke = false;
  bool large_only = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--large-only") == 0) {
      large_only = true;
    } else if (std::strcmp(argv[i], "--sweep-only") == 0) {
      // Accepted for regression-tool symmetry; both families are part of the
      // sweep, so this is a no-op.
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  bds::SweepResult result = bds::RunSweep(smoke, large_only);
  if (!json_path.empty()) {
    bds::WriteSweepJson(result, smoke, json_path);
  }
  return 0;
}
