// Regenerates Figure 9 (the pilot-deployment comparison of BDS vs Gingko):
//  9a — CDF of per-server completion time for one large replication
//       (paper: 70 TB to 10 DCs; BDS median 35 m vs Gingko ~190 m, ~5x).
//  9b — mean +/- stddev completion by application size class (L/M/S).
//  9c — per-day mean completion across a week of transfers (~4x gap).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/gingko.h"
#include "src/core/service.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

struct Setup {
  Topology topo;
  WanRoutingTable routing;
};

Setup MakeSetup(int num_dcs, int servers_per_dc) {
  GeoTopologyOptions options;
  options.num_dcs = num_dcs;
  options.servers_per_dc = servers_per_dc;
  options.server_up = MBps(20.0);
  options.server_down = MBps(20.0);
  options.wan_capacity = Gbps(8.0);
  options.wan_capacity_jitter = 0.4;
  options.seed = 2018;
  Topology topo = BuildGeoTopology(options).value();
  WanRoutingTable routing = WanRoutingTable::Build(topo, 3).value();
  return Setup{std::move(topo), std::move(routing)};
}

MulticastJob MakeFanoutJob(const Setup& setup, Bytes size, JobId id = 0) {
  std::vector<DcId> dests;
  for (DcId d = 1; d < setup.topo.num_dcs(); ++d) {
    dests.push_back(d);
  }
  return MakeJob(id, 0, dests, size, MB(2.0)).value();
}

void Fig9a(const Setup& setup) {
  // 70 TB : 10^4 servers in the paper -> 3 GB : 32-server DCs here keeps
  // bytes-per-server-NIC comparable.
  MulticastJob job = MakeFanoutJob(setup, GB(3.0));

  BdsStrategy bds;
  auto b = bds.Run(setup.topo, setup.routing, job, 1, Hours(24.0));
  BDS_CHECK(b.ok() && b->completed);
  GingkoStrategy gingko;
  auto g = gingko.Run(setup.topo, setup.routing, job, 1, Hours(24.0));
  BDS_CHECK(g.ok() && g->completed);

  bench::PrintHeader("Figure 9a", "per-server completion CDF: BDS vs Gingko",
                     "3 GB to 10 DCs x 32 servers @ 20 MB/s "
                     "(paper: 70 TB to 10 DCs; byte/NIC ratio preserved)");
  EmpiricalDistribution bd;
  bd.AddAll(b->ServerCompletionMinutes());
  EmpiricalDistribution gd;
  gd.AddAll(g->ServerCompletionMinutes());
  AsciiTable table({"percentile", "BDS (m)", "Gingko (m)"});
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    table.AddRow({AsciiTable::Num(q, 2), AsciiTable::Num(bd.Quantile(q), 1),
                  AsciiTable::Num(gd.Quantile(q), 1)});
  }
  table.Print();
  std::printf("median speedup: %.1fx (paper: ~5x)\n", gd.Median() / bd.Median());
}

void Fig9b(const Setup& setup) {
  bench::PrintHeader("Figure 9b", "completion by application size class (mean ± stddev)",
                     "large/medium/small = 3/1/0.3 GB (paper: TB-scale classes)");
  struct Class {
    const char* name;
    Bytes size;
  };
  AsciiTable table({"application", "BDS mean (m)", "BDS sd", "Gingko mean (m)", "Gingko sd",
                    "speedup"});
  for (const Class& c : {Class{"large", GB(3.0)}, Class{"medium", GB(1.0)},
                         Class{"small", GB(0.3)}}) {
    RunningStats bds_stats;
    RunningStats gingko_stats;
    for (uint64_t seed = 1; seed <= 2; ++seed) {
      MulticastJob job = MakeFanoutJob(setup, c.size);
      BdsStrategy bds;
      GingkoStrategy gingko;
      double bm = bench::RunStrategyMinutes(bds, setup.topo, setup.routing, job, seed,
                                            Hours(24.0));
      double gm = bench::RunStrategyMinutes(gingko, setup.topo, setup.routing, job, seed,
                                            Hours(24.0));
      if (bm > 0.0 && gm > 0.0) {
        bds_stats.Add(bm);
        gingko_stats.Add(gm);
      }
    }
    table.AddRow({c.name, AsciiTable::Num(bds_stats.mean(), 1),
                  AsciiTable::Num(bds_stats.stddev(), 1), AsciiTable::Num(gingko_stats.mean(), 1),
                  AsciiTable::Num(gingko_stats.stddev(), 1),
                  AsciiTable::Num(gingko_stats.mean() / bds_stats.mean(), 1) + "x"});
  }
  table.Print();
  std::printf("note: the paper reports larger gains for larger applications; our fluid\n"
              "TCP model gives the decentralized baseline perfect work conservation, so\n"
              "the speedup here is roughly size-independent (see EXPERIMENTS.md)\n");
}

void Fig9c(const Setup& setup) {
  bench::PrintHeader("Figure 9c", "daily mean completion over one week",
                     "one 1.5 GB fan-out per day, varying seed per day (paper: 7-day pilot, ~4x)");
  AsciiTable table({"day", "BDS (m)", "Gingko (m)", "speedup"});
  double total_speedup = 0.0;
  int days = 0;
  for (uint64_t day = 1; day <= 7; ++day) {
    MulticastJob job = MakeFanoutJob(setup, GB(1.5));
    BdsStrategy bds;
    GingkoStrategy gingko;
    double bm = bench::RunStrategyMinutes(bds, setup.topo, setup.routing, job, day, Hours(24.0));
    double gm =
        bench::RunStrategyMinutes(gingko, setup.topo, setup.routing, job, day, Hours(24.0));
    if (bm <= 0.0 || gm <= 0.0) {
      continue;
    }
    total_speedup += gm / bm;
    ++days;
    table.AddRow({std::to_string(day), AsciiTable::Num(bm, 1), AsciiTable::Num(gm, 1),
                  AsciiTable::Num(gm / bm, 1) + "x"});
  }
  table.Print();
  if (days > 0) {
    std::printf("mean daily speedup: %.1fx (paper: ~4x)\n", total_speedup / days);
  }
}

void Run() {
  Setup setup = MakeSetup(/*num_dcs=*/10, /*servers_per_dc=*/32);
  Fig9a(setup);
  Fig9b(setup);
  Fig9c(setup);
}

}  // namespace
}  // namespace bds

int main() {
  bds::Run();
  return 0;
}
