// Regenerates Figure 6: the two-day utilization timeseries of an inter-DC
// link carrying diurnal latency-sensitive traffic, where an uncontrolled
// 6-hour bulk transfer on day 2 pushes utilization past the 80 % safety
// threshold and inflates online latency ~30x. The same transfer run through
// BDS's bandwidth separation stays below the threshold.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/table.h"
#include "src/simulator/network_simulator.h"
#include "src/topology/builders.h"
#include "src/topology/path.h"
#include "src/workload/background_traffic.h"

namespace bds {
namespace {

constexpr double kThreshold = 0.8;

// Simulates two days of one WAN link: online diurnal traffic, plus a bulk
// flow from hour 35 to 41. `managed` caps the bulk rate at the residual
// below the threshold (what BDS's separator enforces); unmanaged grabs
// whatever the link has left.
void RunDay(bool managed, TimeSeries& util_series, double& worst_inflation) {
  auto topo = BuildFullMesh(2, 2, Gbps(10.0), GBps(2.0), GBps(2.0)).value();
  LinkId wan = kInvalidLink;
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    if (topo.link(l).type == LinkType::kWan) {
      wan = l;
      break;
    }
  }
  BackgroundTrafficModel::Options bg_options;
  bg_options.mean_utilization = 0.45;
  bg_options.diurnal_amplitude = 0.25;
  bg_options.noise = 0.02;
  BackgroundTrafficModel bg(&topo, bg_options);

  const double kStep = 600.0;  // 10-minute samples.
  worst_inflation = 1.0;
  for (double t = 0.0; t < 2.0 * 86400.0; t += kStep) {
    double online = bg.RateAt(wan, t) / topo.link(wan).capacity;
    double bulk = 0.0;
    bool bulk_active = t >= 35.0 * 3600.0 && t < 41.0 * 3600.0;
    if (bulk_active) {
      if (managed) {
        bulk = std::max(0.0, kThreshold - online);
      } else {
        // Unmanaged bulk: consumes nearly all remaining capacity (greedy
        // many-connection TCP fan-in, as in the paper's incident).
        bulk = std::max(0.0, 0.993 - online);
      }
    }
    double total = online + bulk;
    util_series.Add(t / 3600.0, total);
    worst_inflation = std::max(worst_inflation,
                               BackgroundTrafficModel::LatencyInflation(total, kThreshold));
  }
}

void Run() {
  bench::PrintHeader("Figure 6", "inter-DC link utilization over two days",
                     "diurnal online traffic + 6 h bulk transfer starting hour 35 "
                     "(paper: production incident, 30x latency inflation)");

  TimeSeries unmanaged("unmanaged");
  double unmanaged_inflation = 0.0;
  RunDay(/*managed=*/false, unmanaged, unmanaged_inflation);

  TimeSeries managed("bds");
  double managed_inflation = 0.0;
  RunDay(/*managed=*/true, managed, managed_inflation);

  AsciiTable table({"hour", "util (no control)", "util (BDS separation)", "threshold"});
  for (double hour = 30.0; hour <= 44.0; hour += 2.0) {
    auto pick = [&](const TimeSeries& ts) {
      auto points = ts.Resample(hour, hour, 1.0);
      return points.empty() ? 0.0 : points[0].value;
    };
    table.AddRow({AsciiTable::Num(hour, 0), AsciiTable::Num(pick(unmanaged), 2),
                  AsciiTable::Num(pick(managed), 2), AsciiTable::Num(kThreshold, 2)});
  }
  table.Print();
  std::printf("worst online-latency inflation without control: %.0fx (paper: 30x)\n",
              unmanaged_inflation);
  std::printf("worst online-latency inflation with BDS:        %.1fx (target: ~1x)\n",
              managed_inflation);
  std::printf("peak utilization: unmanaged %.2f vs BDS %.2f (threshold %.2f)\n",
              unmanaged.MaxValue(), managed.MaxValue(), kThreshold);
}

}  // namespace
}  // namespace bds

int main() {
  bds::Run();
  return 0;
}
