// Regenerates Figure 3 / §2.2's illustrative example: replicating 36 GB from
// DC A to DCs B and C over the topology with a 2 GB/s direct IP route and a
// 6 GB/s -> 3 GB/s relay route through server b.
//
// Paper numbers: direct replication 18 s, simple chain replication 13 s,
// intelligent multicast overlay (BDS) 9 s.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/chain.h"
#include "src/baselines/gingko.h"
#include "src/core/service.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

void Run() {
  Figure3Topology fig = BuildFigure3Example();
  auto routing = WanRoutingTable::Build(fig.topo, 3).value();
  MulticastJob job =
      MakeJob(0, fig.dc_a, {fig.dc_b, fig.dc_c}, GB(36.0), /*block_size=*/GB(6.0)).value();

  bench::PrintHeader("Figure 3", "why intelligent overlays win: 36 GB, A -> {B, C}",
                     "exact topology of §2.2 — no scaling");

  AsciiTable table({"strategy", "completion (s)", "paper (s)"});

  DirectStrategy direct;
  auto rd = direct.Run(fig.topo, routing, job, 1, Hours(1.0));
  BDS_CHECK(rd.ok() && rd->completed);
  table.AddRow({"direct replication (b)", AsciiTable::Num(rd->completion_time, 1), "18"});

  ChainStrategy chain;
  auto rc = chain.Run(fig.topo, routing, job, 1, Hours(1.0));
  BDS_CHECK(rc.ok() && rc->completed);
  table.AddRow({"simple chain replication (c)", AsciiTable::Num(rc->completion_time, 1), "13"});

  // The intelligent overlay splits the same 36 GB into fine-grained blocks
  // and uses the direct and relay routes simultaneously (the whole point of
  // BDS, §2.2 example (d)).
  MulticastJob bds_job =
      MakeJob(0, fig.dc_a, {fig.dc_b, fig.dc_c}, GB(36.0), /*block_size=*/MB(512.0)).value();
  BdsOptions options;
  options.block_size = MB(512.0);
  options.cycle_length = 0.5;
  options.safety_threshold = 1.0;  // The example has no online traffic.
  BdsStrategy bds(options);
  auto rb = bds.Run(fig.topo, routing, bds_job, 1, Hours(1.0));
  BDS_CHECK(rb.ok() && rb->completed);
  table.AddRow({"intelligent multicast overlay (d)", AsciiTable::Num(rb->completion_time, 1),
                "9"});

  table.Print();
  std::printf("shape check: overlay < chain < direct  ->  %.1f < %.1f < %.1f  (%s)\n",
              rb->completion_time, rc->completion_time, rd->completion_time,
              (rb->completion_time < rc->completion_time &&
               rc->completion_time < rd->completion_time)
                  ? "holds"
                  : "VIOLATED");
}

}  // namespace
}  // namespace bds

int main() {
  bds::Run();
  return 0;
}
