// Regenerates Figure 10: with a hard 10 GB/s cap configured for bulk data,
// BDS's actual bulk usage on an inter-DC link stays below the cap for the
// whole transfer while still using most of it.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/service.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

void Run() {
  // A WAN link fat enough that the 10 GB/s cap (not the link) binds, with
  // servers that could collectively exceed the cap.
  const Rate kCap = GBps(10.0);
  Topology topo = BuildFullMesh(/*num_dcs=*/3, /*servers_per_dc=*/8, GBps(40.0), GBps(4.0),
                                GBps(4.0))
                      .value();

  BdsOptions options;
  options.bulk_rate_cap = kCap;
  options.cycle_length = 1.0;
  options.block_size = MB(64.0);
  auto service = BdsService::Create(std::move(topo), options).value();

  // Track every WAN link leaving the source DC.
  std::vector<LinkId> tracked;
  for (LinkId l = 0; l < service->topology().num_links(); ++l) {
    const Link& link = service->topology().link(l);
    if (link.type == LinkType::kWan && link.src_dc == 0) {
      service->mutable_controller()->mutable_simulator()->TrackLinkUtilization(l);
      tracked.push_back(l);
    }
  }

  BDS_CHECK(service->CreateJob(0, {1, 2}, GB(600.0)).ok());
  auto report = service->Run(Hours(1.0));
  BDS_CHECK(report.ok());

  bench::PrintHeader("Figure 10", "bulk bandwidth usage vs the 10 GB/s upper limit",
                     "600 GB to 2 DCs over 40 GB/s WAN links; 10 GB/s bulk cap "
                     "(paper: production link, 30-minute window)");

  AsciiTable table({"time (m)", "bulk usage (GB/s)", "upper limit (GB/s)"});
  const NetworkSimulator& sim = service->mutable_controller()->simulator();
  double peak = 0.0;
  const TimeSeries* series = sim.LinkUtilizationSeries(tracked[0]);
  BDS_CHECK(series != nullptr);
  const Link& link = service->topology().link(tracked[0]);
  double horizon = report->completion_time;
  for (double t = 0.0; t <= horizon + 1.0; t += std::max(1.0, horizon / 10.0)) {
    auto points = series->Resample(t, t, 1.0);
    double usage_gbps = points.empty() ? 0.0 : points[0].value * link.capacity / 1e9;
    peak = std::max(peak, usage_gbps);
    table.AddRow({AsciiTable::Num(ToMinutes(t), 1), AsciiTable::Num(usage_gbps, 2),
                  AsciiTable::Num(kCap / 1e9, 1)});
  }
  table.Print();
  std::printf("completion: %.1f m; peak bulk usage %.2f GB/s vs cap %.1f GB/s -> %s\n",
              ToMinutes(report->completion_time), peak, kCap / 1e9,
              peak <= kCap / 1e9 + 0.05 ? "respected (paper: always below)" : "VIOLATED");
}

}  // namespace
}  // namespace bds

int main() {
  bds::Run();
  return 0;
}
