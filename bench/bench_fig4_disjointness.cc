// Regenerates Figure 4: the distribution of BW(A->C) / BW(A->b->C) across
// all (A, b, C) combinations. A ratio different from 1 means the two overlay
// paths are bottleneck-disjoint; the paper finds > 95 % of pairs disjoint.
//
// We measure end-to-end throughput of both paths concurrently on the
// simulator (as the paper does with production probes) for every DC triple
// in a jittered geo topology.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/simulator/network_simulator.h"
#include "src/topology/builders.h"
#include "src/topology/path.h"

namespace bds {
namespace {

void Run() {
  GeoTopologyOptions options;
  options.num_dcs = 10;
  options.servers_per_dc = 4;
  options.wan_capacity_jitter = 0.4;
  // Probe servers must not be the bottleneck: the figure is about WAN-path
  // diversity.
  options.server_up = GBps(50.0);
  options.server_down = GBps(50.0);
  auto topo = BuildGeoTopology(options).value();
  auto routing = WanRoutingTable::Build(topo, 3).value();

  EmpiricalDistribution ratios;
  int disjoint = 0;
  int total = 0;
  for (DcId a = 0; a < topo.num_dcs(); ++a) {
    for (DcId b = 0; b < topo.num_dcs(); ++b) {
      for (DcId c = 0; c < topo.num_dcs(); ++c) {
        if (a == b || b == c || a == c) {
          continue;
        }
        ServerId sa = topo.ServersIn(a)[0];
        ServerId sb = topo.ServersIn(b)[0];
        ServerId sc = topo.ServersIn(c)[1];
        ServerId sc2 = topo.ServersIn(c)[2];

        // Probe each path in isolation (the paper compares each path's
        // end-to-end throughput; a shared source NIC would couple them).
        auto direct = MakeServerPath(topo, routing, sa, sc, 0);
        auto leg1 = MakeServerPath(topo, routing, sa, sb, 0);
        auto leg2 = MakeServerPath(topo, routing, sb, sc2, 0);
        if (!direct.ok() || !leg1.ok() || !leg2.ok()) {
          continue;
        }
        double bw_direct = 0.0;
        double bw_relay = 0.0;
        {
          NetworkSimulator sim(&topo);
          FlowId f = sim.StartFlow(direct->links, GB(100.0)).value();
          BDS_CHECK(sim.AdvanceTo(0.1).ok());
          bw_direct = sim.FindFlow(f)->current_rate;
        }
        {
          NetworkSimulator sim(&topo);
          FlowId f1 = sim.StartFlow(leg1->links, GB(100.0)).value();
          FlowId f2 = sim.StartFlow(leg2->links, GB(100.0)).value();
          BDS_CHECK(sim.AdvanceTo(0.1).ok());
          bw_relay = std::min(sim.FindFlow(f1)->current_rate, sim.FindFlow(f2)->current_rate);
        }
        if (bw_relay <= 0.0) {
          continue;
        }
        double ratio = bw_direct / bw_relay;
        ratios.Add(ratio);
        ++total;
        if (ratio < 0.99 || ratio > 1.01) {
          ++disjoint;
        }
      }
    }
  }

  bench::PrintHeader("Figure 4", "BW(A->C) / BW(A->b->C) across all DC triples",
                     "10 jittered DCs (paper: production probes across 30+ DCs); "
                     "paper finds > 95% of pairs bottleneck-disjoint");
  bench::PrintCdf("throughput ratio", ratios, 12);
  std::printf("bottleneck-disjoint pairs (ratio != 1): %.1f%% of %d (paper: > 95%%)\n",
              100.0 * static_cast<double>(disjoint) / static_cast<double>(total), total);
}

}  // namespace
}  // namespace bds

int main() {
  bds::Run();
  return 0;
}
