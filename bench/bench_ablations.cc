// Ablations of BDS's design choices (DESIGN.md §6) — not paper figures, but
// the measurements backing the paper's design arguments:
//
//  A1 — scheduling policy: generalized rarest-first vs random vs sequential
//       (§4.3 + the appendix availability theorem).
//  A2 — block merging on/off: controller running time and subtask count
//       (§5.1 "blocks merging").
//  A3 — FPTAS epsilon: decision time vs allocated throughput (§4.4).
//  A4 — scheduling budget headroom: completion time vs budget_fraction.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/service.h"
#include "src/scheduler/controller_algorithm.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

Topology MakeTopo(int dcs = 6, int servers = 8) {
  GeoTopologyOptions options;
  options.num_dcs = dcs;
  options.servers_per_dc = servers;
  options.server_up = MBps(20.0);
  options.server_down = MBps(20.0);
  options.seed = 7;
  return BuildGeoTopology(options).value();
}

MulticastJob FanoutJob(const Topology& topo, Bytes size) {
  std::vector<DcId> dests;
  for (DcId d = 1; d < topo.num_dcs(); ++d) {
    dests.push_back(d);
  }
  return MakeJob(0, 0, dests, size, MB(2.0)).value();
}

double RunPolicy(SchedulingPolicy policy) {
  Topology topo = MakeTopo();
  auto routing = WanRoutingTable::Build(topo, 3).value();
  ControllerOptions options = ToControllerOptions(BdsOptions{});
  options.algorithm.policy = policy;
  options.algorithm.cycle_length = 1.0;
  BdsController controller(&topo, &routing, options);
  BDS_CHECK(controller.SubmitJob(FanoutJob(topo, GB(1.0))).ok());
  auto report = controller.Run(Hours(12.0));
  BDS_CHECK(report.ok() && report->completed);
  return ToMinutes(report->completion_time);
}

void A1_SchedulingPolicy() {
  bench::PrintHeader("Ablation A1", "scheduling policy: rarest-first vs random vs sequential",
                     "1 GB to 5 DCs x 8 servers; everything else identical");
  AsciiTable table({"policy", "completion (m)"});
  double rarest = RunPolicy(SchedulingPolicy::kRarestFirst);
  double random = RunPolicy(SchedulingPolicy::kRandom);
  double sequential = RunPolicy(SchedulingPolicy::kSequential);
  table.AddRow({"rarest-first (BDS)", AsciiTable::Num(rarest, 2)});
  table.AddRow({"random", AsciiTable::Num(random, 2)});
  table.AddRow({"sequential", AsciiTable::Num(sequential, 2)});
  table.Print();
  std::printf("rarest-first balances availability (appendix theorem): %s\n",
              rarest <= random * 1.05 && rarest <= sequential * 1.05
                  ? "never worse than the alternatives (ties random on uniform "
                    "availability; sequential pays for ignoring it)"
                  : "NOT fastest here — inspect");
}

void A2_Merging() {
  bench::PrintHeader("Ablation A2", "block merging: decision cost and subtask count",
                     "one decision over 20k pending deliveries (2 DCs x 8 servers)");
  Topology topo = BuildFullMesh(3, 8, Gbps(10.0), MBps(20.0), MBps(20.0)).value();
  auto routing = WanRoutingTable::Build(topo, 3).value();
  ReplicaState state(&topo);
  BDS_CHECK(state.AddJob(FanoutJob(topo, GB(20.0))).ok());
  std::vector<Rate> residual;
  for (const Link& l : topo.links()) {
    residual.push_back(l.capacity);
  }
  AsciiTable table({"merging", "subtasks", "routing time (ms)"});
  for (bool merge : {true, false}) {
    ControllerAlgorithmOptions options;
    options.merge_subtasks = merge;
    ControllerAlgorithm algorithm(&topo, &routing, options);
    CycleDecision d = algorithm.Decide(0, state, residual, {});
    table.AddRow({merge ? "on (BDS)" : "off", std::to_string(d.merged_subtasks),
                  AsciiTable::Num(d.routing_seconds * 1e3, 2)});
  }
  table.Print();
}

void A3_Epsilon() {
  bench::PrintHeader("Ablation A3", "FPTAS epsilon: decision time vs allocated throughput",
                     "same cycle decision at eps = 0.05 / 0.1 / 0.25 / 0.5");
  Topology topo = MakeTopo();
  auto routing = WanRoutingTable::Build(topo, 3).value();
  ReplicaState state(&topo);
  BDS_CHECK(state.AddJob(FanoutJob(topo, GB(4.0))).ok());
  std::vector<Rate> residual;
  for (const Link& l : topo.links()) {
    residual.push_back(l.capacity);
  }
  AsciiTable table({"epsilon", "routing time (ms)", "allocated rate (MB/s)"});
  for (double eps : {0.05, 0.1, 0.25, 0.5}) {
    ControllerAlgorithmOptions options;
    options.fptas_epsilon = eps;
    ControllerAlgorithm algorithm(&topo, &routing, options);
    CycleDecision d = algorithm.Decide(0, state, residual, {});
    double rate = 0.0;
    for (const TransferAssignment& t : d.transfers) {
      rate += t.rate;
    }
    table.AddRow({AsciiTable::Num(eps, 2), AsciiTable::Num(d.routing_seconds * 1e3, 2),
                  AsciiTable::Num(rate / 1e6, 1)});
  }
  table.Print();
}

void A4_BudgetFraction() {
  bench::PrintHeader("Ablation A4", "scheduling budget headroom (budget_fraction)",
                     "1 GB fan-out; too little headroom makes transfers straggle past "
                     "cycle boundaries, too much wastes capacity");
  AsciiTable table({"budget fraction", "completion (m)"});
  for (double fraction : {0.5, 0.7, 0.9, 1.0}) {
    Topology topo = MakeTopo();
    auto routing = WanRoutingTable::Build(topo, 3).value();
    ControllerOptions options = ToControllerOptions(BdsOptions{});
    options.algorithm.budget_fraction = fraction;
    options.algorithm.cycle_length = 1.0;
    BdsController controller(&topo, &routing, options);
    BDS_CHECK(controller.SubmitJob(FanoutJob(topo, GB(1.0))).ok());
    auto report = controller.Run(Hours(12.0));
    BDS_CHECK(report.ok() && report->completed);
    table.AddRow({AsciiTable::Num(fraction, 1),
                  AsciiTable::Num(ToMinutes(report->completion_time), 2)});
  }
  table.Print();
}

void Run() {
  A1_SchedulingPolicy();
  A2_Merging();
  A3_Epsilon();
  A4_BudgetFraction();
}

}  // namespace
}  // namespace bds

int main() {
  bds::Run();
  return 0;
}
