// Regenerates Figure 5: the CDF of per-server completion times under the
// decentralized receiver-driven protocol (Gingko) versus the ideal solution,
// for the §2.3 experiment — a 30 GB file from one DC to two destination DCs
// of 640 servers at 20 Mbps each.
//
// Paper: ideal 41 minutes; decentralized average 195 minutes (4.75x);
// 5 % of servers beyond 250 minutes.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/gingko.h"
#include "src/baselines/ideal.h"
#include "src/core/service.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

void Run() {
  // Scaled 5x: 128 servers per DC and 6 GB keep the per-server shard and
  // NIC ratio identical to the paper (48 MB per server at 20 Mbps).
  const int kServers = 128;
  const Bytes kSize = GB(6.0);
  auto topo = BuildGingkoExperiment(/*num_dest_dcs=*/2, kServers, Mbps(20.0), Gbps(10.0)).value();
  auto routing = WanRoutingTable::Build(topo, 3).value();
  MulticastJob job = MakeJob(0, 0, {1, 2}, kSize, MB(2.0)).value();

  double ideal_minutes = ToMinutes(IdealCompletionBound(topo, job));

  GingkoStrategy gingko;
  auto result = gingko.Run(topo, routing, job, /*seed=*/2018, Hours(24.0));
  BDS_CHECK(result.ok());

  EmpiricalDistribution dist;
  dist.AddAll(result->ServerCompletionMinutes());

  bench::PrintHeader("Figure 5", "per-server completion: decentralized vs ideal",
                     "2 dest DCs x 128 servers @ 20 Mbps, 6 GB (paper: 640 servers, 30 GB; "
                     "per-server shard and NIC ratios preserved)");
  bench::PrintCdf("completion time (m)", dist, 12);

  double mean = dist.Mean();
  std::printf("ideal solution:        %.1f m\n", ideal_minutes);
  std::printf("decentralized mean:    %.1f m  (%.2fx ideal; paper: 4.75x)\n", mean,
              mean / ideal_minutes);
  std::printf("decentralized p95:     %.1f m  (paper tail: 5%% beyond 250 m = 6.1x ideal)\n",
              dist.Quantile(0.95));
  std::printf("shape check: decentralized mean >> ideal -> %s\n",
              mean > 1.5 * ideal_minutes ? "holds" : "VIOLATED");

  // For contrast (not in the figure): BDS on the identical setup.
  BdsOptions options;
  BdsStrategy bds(options);
  auto bds_result = bds.Run(topo, routing, job, 2018, Hours(24.0));
  if (bds_result.ok() && bds_result->completed) {
    EmpiricalDistribution bdist;
    bdist.AddAll(bds_result->ServerCompletionMinutes());
    std::printf("(BDS on the same setup: mean %.1f m = %.2fx ideal)\n", bdist.Mean(),
                bdist.Mean() / ideal_minutes);
  }
}

}  // namespace
}  // namespace bds

int main() {
  bds::Run();
  return 0;
}
