// Shared helpers for the per-figure/table benchmark binaries.
//
// Every bench prints: a header naming the paper artifact it regenerates, a
// scale note describing how the scenario was shrunk from the paper's
// deployment (ratios preserved), and the same rows/series the paper reports.

#ifndef BDS_BENCH_BENCH_UTIL_H_
#define BDS_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/strategy.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/topology/routing.h"
#include "src/topology/topology.h"
#include "src/workload/job.h"

namespace bds {
namespace bench {

inline void PrintHeader(const std::string& artifact, const std::string& title,
                        const std::string& scale_note) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), title.c_str());
  if (!scale_note.empty()) {
    std::printf("scale: %s\n", scale_note.c_str());
  }
  std::printf("==============================================================\n");
}

// Prints a CDF as "value  F(value)" rows, matching the paper's CDF figures.
inline void PrintCdf(const std::string& x_label, const EmpiricalDistribution& dist,
                     int points = 10) {
  AsciiTable table({x_label, "CDF"});
  for (const auto& p : dist.CdfSeries(points)) {
    table.AddRow({AsciiTable::Num(p.x, 2), AsciiTable::Num(p.cdf, 2)});
  }
  table.Print();
}

// Runs `strategy` on (topo, routing, job); returns minutes or a negative
// value on failure. Appends a row to `table` when non-null.
inline double RunStrategyMinutes(MulticastStrategy& strategy, const Topology& topo,
                                 const WanRoutingTable& routing, const MulticastJob& job,
                                 uint64_t seed, SimTime deadline) {
  auto result = strategy.Run(topo, routing, job, seed, deadline);
  if (!result.ok() || !result->completed) {
    return -1.0;
  }
  return ToMinutes(result->completion_time);
}

}  // namespace bench
}  // namespace bds

#endif  // BDS_BENCH_BENCH_UTIL_H_
