// Regenerates the paper's appendix analysis: with N blocks and m destination
// DCs, a *balanced* replica distribution (every block at k copies) always
// completes faster than an imbalanced one (half at k1, half at k2,
// (k1 + k2) / 2 = k) — the theorem motivating the rarest-first scheduling
// step (§4.3). Verified both analytically and by simulation: the same
// pre-seeded states driven through the actual BDS controller algorithm.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/ideal.h"
#include "src/core/service.h"
#include "src/scheduler/controller_algorithm.h"
#include "src/simulator/network_simulator.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

// Runs the controller algorithm cycle loop on a pre-seeded replica state
// until completion; returns the completion time.
SimTime RunSeeded(const Topology& topo, const WanRoutingTable& routing, ReplicaState& state) {
  NetworkSimulator sim(&topo);
  ControllerAlgorithmOptions options;
  options.cycle_length = 1.0;
  ControllerAlgorithm algorithm(&topo, &routing, options);
  std::vector<Rate> base_residual;
  for (const Link& l : topo.links()) {
    base_residual.push_back(l.capacity);
  }

  struct Pending {
    JobId job;
    int64_t block;
    ServerId src;
    ServerId dst;
  };
  std::unordered_map<int64_t, Pending> live;
  int64_t next_tag = 0;
  sim.SetCompletionCallback([&](const FlowRecord& rec) {
    auto it = live.find(rec.tag);
    if (it == live.end()) {
      return;
    }
    (void)state.NoteDelivery(it->second.job, it->second.block, it->second.src, it->second.dst);
    live.erase(it);
  });

  DeliveryKeySet in_flight;  // Deliveries stay in flight < 1 cycle here.
  for (int cycle = 0; cycle < 100000 && !state.AllComplete(); ++cycle) {
    CycleDecision decision = algorithm.Decide(cycle, state, base_residual, in_flight);
    if (decision.transfers.empty() && sim.num_active_flows() == 0) {
      break;  // Wedged (should not happen).
    }
    for (const TransferAssignment& t : decision.transfers) {
      // One flow per block keeps the bookkeeping simple at this scale.
      Bytes per_block = t.bytes / static_cast<double>(t.blocks.size());
      for (int64_t b : t.blocks) {
        int64_t tag = next_tag++;
        auto flow = sim.StartFlow(t.path.links, per_block,
                                  t.rate / static_cast<double>(t.blocks.size()), tag, 1);
        if (flow.ok()) {
          live[tag] = Pending{t.job, b, t.src_server, t.dst_server};
        }
      }
    }
    BDS_CHECK(sim.AdvanceBy(1.0).ok());
  }
  return sim.now();
}

void Run() {
  const int kM = 6;           // Destination DCs.
  const int64_t kBlocks = 600;
  const Bytes kRho = MB(2.0);
  const Rate kR = MBps(20.0);

  bench::PrintHeader("Appendix", "balanced vs imbalanced replica availability",
                     "N=600 blocks, m=6 destination DCs, R=20 MB/s "
                     "(paper: t_A < t_B for every k1 < k < k2)");

  AsciiTable analytic({"k (balanced)", "k1/k2 (imbalanced)", "t_A (s)", "t_B (s)", "t_A < t_B"});
  for (int k = 2; k < kM; ++k) {
    for (int k1 = 1; k1 < k; ++k1) {
      int k2 = 2 * k - k1;
      if (k2 <= k1 || k2 >= kM) {
        continue;
      }
      double ta = AppendixBalancedTime(kBlocks, kM, k, kRho, kR);
      double tb = AppendixImbalancedTime(kBlocks, kM, k1, k2, kRho, kR);
      analytic.AddRow({std::to_string(k), std::to_string(k1) + "/" + std::to_string(k2),
                       AsciiTable::Num(ta, 1), AsciiTable::Num(tb, 1),
                       ta < tb ? "yes" : "NO"});
    }
  }
  analytic.Print();

  // Simulation cross-check: pre-seed a 7-DC deployment (1 origin + 6 dests)
  // with balanced (k=2) vs imbalanced (k1=1, k2=3) replica placement and
  // finish the job with the real controller algorithm.
  Topology topo = BuildFullMesh(kM + 1, 4, Gbps(10.0), kR, kR).value();
  auto routing = WanRoutingTable::Build(topo, 3).value();
  auto seeded_state = [&](bool balanced) {
    auto state = std::make_unique<ReplicaState>(&topo);
    std::vector<DcId> dests;
    for (DcId d = 1; d <= kM; ++d) {
      dests.push_back(d);
    }
    MulticastJob job = MakeJob(0, 0, dests, kRho * static_cast<double>(kBlocks), kRho).value();
    BDS_CHECK(state->AddJob(job).ok());
    for (int64_t b = 0; b < kBlocks; ++b) {
      // Every block already has replicas in `extra` destination DCs
      // (beyond the origin copy AddJob seeds).
      int extra = balanced ? 1 : (b < kBlocks / 2 ? 0 : 2);
      for (int e = 0; e < extra; ++e) {
        DcId dc = static_cast<DcId>(1 + (b + e) % kM);
        BDS_CHECK(state->AddReplica(0, b, state->AssignedServer(0, b, dc)).ok());
      }
    }
    return state;
  };

  auto balanced = seeded_state(true);
  SimTime t_balanced = RunSeeded(topo, routing, *balanced);
  auto imbalanced = seeded_state(false);
  SimTime t_imbalanced = RunSeeded(topo, routing, *imbalanced);

  std::printf("simulated completion: balanced availability %.1f s, imbalanced %.1f s -> %s\n",
              t_balanced, t_imbalanced,
              t_balanced <= t_imbalanced ? "balanced wins (matches the theorem)" : "VIOLATED");
  std::printf("this is why the scheduling step equalizes duplicate counts (rarest-first, §4.3)\n");
}

}  // namespace
}  // namespace bds

int main() {
  bds::Run();
  return 0;
}
