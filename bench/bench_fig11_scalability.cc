// Regenerates Figure 11 (control-plane scalability):
//  11a — controller running time vs number of outstanding blocks
//        (paper: <= ~300 ms at Baidu's peak of 3x10^5 blocks, <= ~800 ms at 10^6);
//  11b — CDF of control-message network delay over 5000 requests
//        (paper: 90 % below 50 ms, mean ~25 ms);
//  11c — CDF of the full feedback-loop delay (paper: 80 % below 200 ms).
//
// 11a runs under google-benchmark for stable timing. In addition, an
// optimization-ablation sweep times the controller decision across
// 10^4..10^6 blocks with each hot-path optimization toggled independently
// (baseline / incremental FPTAS / path cache / thread pool / all) and can
// emit the results as machine-readable JSON for the perf-regression check:
//
//   bench_fig11_scalability --json=BENCH_controller.json   # full sweep
//   bench_fig11_scalability --smoke --json=out.json        # reduced scale
//
// --smoke keeps only the small block counts and skips the google-benchmark
// section and the delay CDFs, so it finishes in seconds (used by the
// `bench-smoke` ctest label).

#include <benchmark/benchmark.h>

#include <time.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/telemetry/metrics.h"
#include "src/control/monitors.h"
#include "src/core/service.h"
#include "src/scheduler/controller_algorithm.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

// Shared fixture: a 10-DC deployment with one job of state.range(0) blocks.
void BM_ControllerDecision(benchmark::State& state) {
  int64_t num_blocks = state.range(0);
  GeoTopologyOptions topo_options;
  topo_options.num_dcs = 10;
  topo_options.servers_per_dc = 100;
  topo_options.server_up = MBps(20.0);
  topo_options.server_down = MBps(20.0);
  auto topo = BuildGeoTopology(topo_options).value();
  auto routing = WanRoutingTable::Build(topo, 3).value();

  ReplicaState replica_state(&topo);
  MulticastJob job =
      MakeJob(0, 0, {1, 2}, MB(2.0) * static_cast<double>(num_blocks), MB(2.0)).value();
  BDS_CHECK(replica_state.AddJob(job).ok());

  ControllerAlgorithmOptions options;
  ControllerAlgorithm algorithm(&topo, &routing, options);
  std::vector<Rate> residual;
  residual.reserve(static_cast<size_t>(topo.num_links()));
  for (const Link& l : topo.links()) {
    residual.push_back(l.capacity);
  }

  int64_t scheduled = 0;
  for (auto _ : state) {
    CycleDecision decision = algorithm.Decide(0, replica_state, residual, {});
    scheduled = decision.scheduled_blocks;
    benchmark::DoNotOptimize(decision);
  }
  state.counters["blocks"] = static_cast<double>(num_blocks);
  state.counters["scheduled/cycle"] = static_cast<double>(scheduled);
}

BENCHMARK(BM_ControllerDecision)
    ->Unit(benchmark::kMillisecond)
    ->Arg(50'000)
    ->Arg(100'000)
    ->Arg(300'000)
    ->Arg(600'000)
    ->Arg(1'000'000);

// ---------------------------------------------------------------------------
// Optimization-ablation sweep.

struct SweepConfig {
  const char* name;
  bool incremental_fptas;
  bool path_cache;
  bool sched_early_exit;
  int num_threads;
};

// "baseline" turns every knob off, reproducing the pre-optimization
// controller; "all" is the shipping default plus the thread pool.
constexpr SweepConfig kSweepConfigs[] = {
    {"baseline", false, false, false, 1},
    {"incremental_fptas", true, false, false, 1},
    {"path_cache", false, true, false, 1},
    {"sched_early_exit", false, false, true, 1},
    {"threads4", false, false, false, 4},
    {"all", true, true, true, 4},
};

struct SweepPoint {
  int64_t blocks = 0;
  // Wall / process-CPU seconds per Decide(), min over repetitions, keyed
  // like kSweepConfigs. The regression gate compares the CPU column: the
  // decision is deterministic, so its CPU time is stable run-to-run, while
  // wall time on a shared runner swings with whatever else is scheduled.
  double seconds[std::size(kSweepConfigs)] = {};
  double cpu_seconds[std::size(kSweepConfigs)] = {};
};

double ProcessCpuSeconds() {
  timespec ts;
  BDS_CHECK(clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

void TimeDecide(ControllerAlgorithm& algorithm, const ReplicaState& state,
                const std::vector<Rate>& residual, int reps, uint64_t* fingerprint,
                double* wall_out, double* cpu_out) {
  double best_wall = 0.0;
  double best_cpu = 0.0;
  for (int r = 0; r < reps; ++r) {
    double cpu_start = ProcessCpuSeconds();
    auto start = std::chrono::steady_clock::now();
    CycleDecision decision = algorithm.Decide(0, state, residual, {});
    auto stop = std::chrono::steady_clock::now();
    double cpu = ProcessCpuSeconds() - cpu_start;
    double seconds = std::chrono::duration<double>(stop - start).count();
    if (r == 0 || seconds < best_wall) {
      best_wall = seconds;
    }
    if (r == 0 || cpu < best_cpu) {
      best_cpu = cpu;
    }
    *fingerprint = decision.Fingerprint();
  }
  *wall_out = best_wall;
  *cpu_out = best_cpu;
}

std::vector<SweepPoint> RunConfigSweep(bool smoke) {
  // Smoke skips the smallest point, not the largest of its pair: the very
  // first decisions of a fresh process run cold (allocator, page cache) and
  // their sub-100 ms timings are the noisiest in the sweep.
  std::vector<int64_t> block_counts =
      smoke ? std::vector<int64_t>{30'000, 100'000}
            : std::vector<int64_t>{10'000, 30'000, 100'000, 300'000, 1'000'000};
  // Min-of-5 in both modes: the regression gate compares min-of-reps
  // ratios, and fewer reps leaves too much scheduling noise in the min.
  const int reps = 5;

  GeoTopologyOptions topo_options;
  topo_options.num_dcs = 10;
  topo_options.servers_per_dc = 100;
  topo_options.server_up = MBps(20.0);
  topo_options.server_down = MBps(20.0);
  auto topo = BuildGeoTopology(topo_options).value();
  auto routing = WanRoutingTable::Build(topo, 3).value();
  std::vector<Rate> residual;
  residual.reserve(static_cast<size_t>(topo.num_links()));
  for (const Link& l : topo.links()) {
    residual.push_back(l.capacity);
  }

  bench::PrintHeader("Figure 11a (ablation)", "decision time per optimization config",
                     "same deployment; each hot-path optimization toggled independently "
                     "(times are min over repetitions; decisions must be bit-identical)");
  std::printf("%10s", "blocks");
  for (const SweepConfig& c : kSweepConfigs) {
    std::printf("  %18s", c.name);
  }
  std::printf("  %9s\n", "speedup");

  std::vector<SweepPoint> points;
  for (int64_t num_blocks : block_counts) {
    ReplicaState replica_state(&topo);
    MulticastJob job =
        MakeJob(0, 0, {1, 2}, MB(2.0) * static_cast<double>(num_blocks), MB(2.0)).value();
    BDS_CHECK(replica_state.AddJob(job).ok());

    {
      // One untimed warmup decision per point so the first timed config
      // doesn't pay the process/point cold-start (page faults, allocator).
      ControllerAlgorithm warmup(&topo, &routing, ControllerAlgorithmOptions{});
      CycleDecision d = warmup.Decide(0, replica_state, residual, {});
      BDS_CHECK(d.scheduled_blocks > 0);
    }

    SweepPoint point;
    point.blocks = num_blocks;
    uint64_t baseline_fp = 0;
    for (size_t ci = 0; ci < std::size(kSweepConfigs); ++ci) {
      const SweepConfig& c = kSweepConfigs[ci];
      ControllerAlgorithmOptions options;
      options.use_incremental_fptas = c.incremental_fptas;
      options.use_path_cache = c.path_cache;
      options.use_sched_early_exit = c.sched_early_exit;
      options.num_threads = c.num_threads;
      ControllerAlgorithm algorithm(&topo, &routing, options);
      uint64_t fp = 0;
      TimeDecide(algorithm, replica_state, residual, reps, &fp, &point.seconds[ci],
                 &point.cpu_seconds[ci]);
      if (ci == 0) {
        baseline_fp = fp;
      } else {
        BDS_CHECK_MSG(fp == baseline_fp,
                      "optimization config changed the cycle decision");
      }
    }
    std::printf("%10lld", static_cast<long long>(num_blocks));
    for (size_t ci = 0; ci < std::size(kSweepConfigs); ++ci) {
      std::printf("  %15.1f ms", point.seconds[ci] * 1e3);
    }
    std::printf("  %8.2fx\n", point.seconds[0] / point.seconds[std::size(kSweepConfigs) - 1]);
    points.push_back(point);
  }
  return points;
}

void WriteSweepJson(const std::vector<SweepPoint>& points, bool smoke,
                    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  BDS_CHECK_MSG(f != nullptr, "cannot open --json output path");
  std::fprintf(f, "{\n  \"benchmark\": \"controller_decision\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  // The bench must time the telemetry-off fast path; the regression check
  // fails any JSON stamped with telemetry on.
  std::fprintf(f, "  \"telemetry_enabled\": %s,\n",
               bds::telemetry::Enabled() ? "true" : "false");
  std::fprintf(f, "  \"configs\": [");
  for (size_t ci = 0; ci < std::size(kSweepConfigs); ++ci) {
    std::fprintf(f, "%s\"%s\"", ci == 0 ? "" : ", ", kSweepConfigs[ci].name);
  }
  std::fprintf(f, "],\n  \"points\": [\n");
  for (size_t i = 0; i < points.size(); ++i) {
    std::fprintf(f, "    {\"blocks\": %lld, \"seconds\": {",
                 static_cast<long long>(points[i].blocks));
    for (size_t ci = 0; ci < std::size(kSweepConfigs); ++ci) {
      std::fprintf(f, "%s\"%s\": %.6f", ci == 0 ? "" : ", ", kSweepConfigs[ci].name,
                   points[i].seconds[ci]);
    }
    std::fprintf(f, "}, \"cpu_seconds\": {");
    for (size_t ci = 0; ci < std::size(kSweepConfigs); ++ci) {
      std::fprintf(f, "%s\"%s\": %.6f", ci == 0 ? "" : ", ", kSweepConfigs[ci].name,
                   points[i].cpu_seconds[ci]);
    }
    std::fprintf(f, "}}%s\n", i + 1 == points.size() ? "" : ",");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

void PrintDelayCdfs() {
  GeoTopologyOptions topo_options;
  topo_options.num_dcs = 10;
  topo_options.servers_per_dc = 2;
  // The paper's deployment spans mainland-China DCs: base one-way delays of
  // 5-35 ms with mild jitter reproduce Fig 11b's 25 ms mean.
  topo_options.min_latency = 0.005;
  topo_options.max_latency = 0.035;
  auto topo = BuildGeoTopology(topo_options).value();

  bench::PrintHeader("Figure 11b", "control-message network delay CDF",
                     "5000 one-way agent<->controller messages over a 5-35 ms WAN "
                     "(paper: 90% < 50 ms, mean ~25 ms)");
  AgentMonitor monitor(&topo, 0, LatencyModel::Options{});
  for (int i = 0; i < 5000; ++i) {
    monitor.SampleStatusDelay(static_cast<DcId>(i % topo.num_dcs()));
  }
  EmpiricalDistribution one_way_ms;
  for (double d : monitor.one_way_delays().samples()) {
    one_way_ms.Add(d * 1e3);
  }
  bench::PrintCdf("delay (ms)", one_way_ms, 10);
  std::printf("mean %.1f ms (paper ~25 ms); P(< 50 ms) = %.2f (paper 0.90)\n",
              one_way_ms.Mean(), one_way_ms.CdfAt(50.0));

  bench::PrintHeader("Figure 11c", "feedback-loop delay CDF",
                     "status in + algorithm + push out, 1000 cycles "
                     "(paper: 80% < 200 ms)");
  AgentMonitor loop_monitor(&topo, 0, LatencyModel::Options{});
  std::vector<DcId> agent_dcs;
  for (DcId d = 0; d < topo.num_dcs(); ++d) {
    agent_dcs.push_back(d);
  }
  for (int i = 0; i < 1000; ++i) {
    // Algorithm time drawn from the measured per-cycle range (Fig 11a):
    // typically 10-60 ms, with ~15% of cycles near the 3x10^5-block peak
    // where decisions reach 150-300 ms.
    double algorithm_seconds = (i % 7 == 6) ? 0.15 + 0.05 * (i % 4)
                                            : 0.01 + 0.05 * (i % 6) / 6.0;
    loop_monitor.SampleFeedbackLoop(agent_dcs, algorithm_seconds);
  }
  EmpiricalDistribution loop_ms;
  for (double d : loop_monitor.feedback_delays().samples()) {
    loop_ms.Add(d * 1e3);
  }
  bench::PrintCdf("feedback delay (ms)", loop_ms, 10);
  std::printf("P(< 200 ms) = %.2f (paper 0.80)\n", loop_ms.CdfAt(200.0));
}

}  // namespace
}  // namespace bds

int main(int argc, char** argv) {
  // Strip our own flags before google-benchmark sees argv.
  bool smoke = false;
  bool sweep_only = false;
  std::string json_path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--sweep-only") == 0) {
      // Full point set, but skip the google-benchmark section and the delay
      // CDFs. Used when regenerating the regression baseline so it is timed
      // under the same process conditions as the smoke runs it gates.
      sweep_only = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  if (!smoke && !sweep_only) {
    bds::bench::PrintHeader("Figure 11a", "controller running time vs number of blocks",
                            "10 DCs x 100 servers, 2 destination DCs per job "
                            "(paper: <= 300 ms at 3x10^5 blocks, <= 800 ms at 10^6)");
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
  }
  std::vector<bds::SweepPoint> points = bds::RunConfigSweep(smoke);
  if (!json_path.empty()) {
    bds::WriteSweepJson(points, smoke, json_path);
  }
  if (!smoke && !sweep_only) {
    bds::PrintDelayCdfs();
  }
  return 0;
}
