// Regenerates Figure 11 (control-plane scalability):
//  11a — controller running time vs number of outstanding blocks
//        (paper: <= ~300 ms at Baidu's peak of 3x10^5 blocks, <= ~800 ms at 10^6);
//  11b — CDF of control-message network delay over 5000 requests
//        (paper: 90 % below 50 ms, mean ~25 ms);
//  11c — CDF of the full feedback-loop delay (paper: 80 % below 200 ms).
//
// 11a runs under google-benchmark for stable timing. In addition, an
// optimization-ablation sweep times the controller decision across
// 10^4..10^6 blocks with each hot-path optimization toggled independently
// (baseline / incremental FPTAS / path cache / thread pool / all) and can
// emit the results as machine-readable JSON for the perf-regression check:
//
//   bench_fig11_scalability --json=BENCH_controller.json   # full sweep
//   bench_fig11_scalability --smoke --json=out.json        # reduced scale
//
// --smoke keeps only the small block counts and skips the google-benchmark
// section and the delay CDFs, so it finishes in seconds (used by the
// `bench-smoke` ctest label).
//
// A steady-cycles section always runs after the sweeps: N consecutive
// decision cycles on one long-lived controller with ~5% job churn between
// cycles and every cross-cycle cache on (incremental candidates, FPTAS warm
// start, contended-group splitting — DESIGN.md §9.7). Its cold/warm CPU and
// candidate reuse rate land in the JSON's "steady_cycles" section, gated by
// tools/check_bench_regression.py's amortized mode. --steady-cycles runs
// only that section.

#include <benchmark/benchmark.h>

#include <time.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/metrics.h"
#include "src/control/monitors.h"
#include "src/core/service.h"
#include "src/scheduler/controller_algorithm.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

// Shared fixture: a 10-DC deployment with one job of state.range(0) blocks.
void BM_ControllerDecision(benchmark::State& state) {
  int64_t num_blocks = state.range(0);
  GeoTopologyOptions topo_options;
  topo_options.num_dcs = 10;
  topo_options.servers_per_dc = 100;
  topo_options.server_up = MBps(20.0);
  topo_options.server_down = MBps(20.0);
  auto topo = BuildGeoTopology(topo_options).value();
  auto routing = WanRoutingTable::Build(topo, 3).value();

  ReplicaState replica_state(&topo);
  MulticastJob job =
      MakeJob(0, 0, {1, 2}, MB(2.0) * static_cast<double>(num_blocks), MB(2.0)).value();
  BDS_CHECK(replica_state.AddJob(job).ok());

  ControllerAlgorithmOptions options;
  ControllerAlgorithm algorithm(&topo, &routing, options);
  std::vector<Rate> residual;
  residual.reserve(static_cast<size_t>(topo.num_links()));
  for (const Link& l : topo.links()) {
    residual.push_back(l.capacity);
  }

  int64_t scheduled = 0;
  for (auto _ : state) {
    CycleDecision decision = algorithm.Decide(0, replica_state, residual, {});
    scheduled = decision.scheduled_blocks;
    benchmark::DoNotOptimize(decision);
  }
  state.counters["blocks"] = static_cast<double>(num_blocks);
  state.counters["scheduled/cycle"] = static_cast<double>(scheduled);
}

BENCHMARK(BM_ControllerDecision)
    ->Unit(benchmark::kMillisecond)
    ->Arg(50'000)
    ->Arg(100'000)
    ->Arg(300'000)
    ->Arg(600'000)
    ->Arg(1'000'000);

// ---------------------------------------------------------------------------
// Optimization-ablation sweep.

struct SweepConfig {
  const char* name;
  bool incremental_fptas;
  bool path_cache;
  bool sched_early_exit;
  int num_threads;
  int num_shards;
  // Relaxed-parity knob (DESIGN.md §9.7): a config with it set is excluded
  // from the bit-identical cross-check against "baseline" and asserted
  // repetition-stable instead.
  bool split_contended;
};

// "baseline" turns every knob off, reproducing the pre-optimization
// controller; "all" is the shipping default plus the thread pool; the
// "shards*" rows add the fleet-scale sharded controller on top (decisions
// must still be bit-identical — the sweep checks the fingerprints).
// "all_shards4" additionally splits contended FPTAS commodity groups across
// shards (relaxed parity: still deterministic, no longer bitwise-equal).
constexpr SweepConfig kSweepConfigs[] = {
    {"baseline", false, false, false, 1, 1, false},
    {"incremental_fptas", true, false, false, 1, 1, false},
    {"path_cache", false, true, false, 1, 1, false},
    {"sched_early_exit", false, false, true, 1, 1, false},
    {"threads4", false, false, false, 4, 1, false},
    {"all", true, true, true, 4, 1, false},
    {"shards4", true, true, true, 1, 4, false},
    {"all_shards4", true, true, true, 4, 4, true},
};

struct SweepPoint {
  int64_t blocks = 0;
  // Wall / process-CPU seconds per Decide(), min over repetitions, keyed
  // like kSweepConfigs. The regression gate compares the CPU column: the
  // decision is deterministic, so its CPU time is stable run-to-run, while
  // wall time on a shared runner swings with whatever else is scheduled.
  double seconds[std::size(kSweepConfigs)] = {};
  double cpu_seconds[std::size(kSweepConfigs)] = {};
};

double ProcessCpuSeconds() {
  timespec ts;
  BDS_CHECK(clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

void TimeDecide(ControllerAlgorithm& algorithm, const ReplicaState& state,
                const std::vector<Rate>& residual, int reps, uint64_t* fingerprint,
                double* wall_out, double* cpu_out) {
  double best_wall = 0.0;
  double best_cpu = 0.0;
  for (int r = 0; r < reps; ++r) {
    double cpu_start = ProcessCpuSeconds();
    auto start = std::chrono::steady_clock::now();
    CycleDecision decision = algorithm.Decide(0, state, residual, {});
    auto stop = std::chrono::steady_clock::now();
    double cpu = ProcessCpuSeconds() - cpu_start;
    double seconds = std::chrono::duration<double>(stop - start).count();
    if (r == 0 || seconds < best_wall) {
      best_wall = seconds;
    }
    if (r == 0 || cpu < best_cpu) {
      best_cpu = cpu;
    }
    // Every config — including the relaxed-parity ones — must be
    // repetition-stable: same state, same cycle, same decision bits.
    const uint64_t fp = decision.Fingerprint();
    if (r == 0) {
      *fingerprint = fp;
    } else {
      BDS_CHECK_MSG(fp == *fingerprint, "decision not repetition-stable");
    }
  }
  *wall_out = best_wall;
  *cpu_out = best_cpu;
}

std::vector<SweepPoint> RunConfigSweep(bool smoke) {
  // Smoke skips the smallest point, not the largest of its pair: the very
  // first decisions of a fresh process run cold (allocator, page cache) and
  // their sub-100 ms timings are the noisiest in the sweep.
  std::vector<int64_t> block_counts =
      smoke ? std::vector<int64_t>{30'000, 100'000}
            : std::vector<int64_t>{10'000, 30'000, 100'000, 300'000, 1'000'000};
  // Min-of-5 in both modes: the regression gate compares min-of-reps
  // ratios, and fewer reps leaves too much scheduling noise in the min.
  const int reps = 5;

  GeoTopologyOptions topo_options;
  topo_options.num_dcs = 10;
  topo_options.servers_per_dc = 100;
  topo_options.server_up = MBps(20.0);
  topo_options.server_down = MBps(20.0);
  auto topo = BuildGeoTopology(topo_options).value();
  auto routing = WanRoutingTable::Build(topo, 3).value();
  std::vector<Rate> residual;
  residual.reserve(static_cast<size_t>(topo.num_links()));
  for (const Link& l : topo.links()) {
    residual.push_back(l.capacity);
  }

  bench::PrintHeader("Figure 11a (ablation)", "decision time per optimization config",
                     "same deployment; each hot-path optimization toggled independently "
                     "(times are min over repetitions; decisions must be bit-identical)");
  std::printf("%10s", "blocks");
  for (const SweepConfig& c : kSweepConfigs) {
    std::printf("  %18s", c.name);
  }
  std::printf("  %9s\n", "speedup");

  std::vector<SweepPoint> points;
  for (int64_t num_blocks : block_counts) {
    ReplicaState replica_state(&topo);
    MulticastJob job =
        MakeJob(0, 0, {1, 2}, MB(2.0) * static_cast<double>(num_blocks), MB(2.0)).value();
    BDS_CHECK(replica_state.AddJob(job).ok());

    {
      // One untimed warmup decision per point so the first timed config
      // doesn't pay the process/point cold-start (page faults, allocator).
      ControllerAlgorithm warmup(&topo, &routing, ControllerAlgorithmOptions{});
      CycleDecision d = warmup.Decide(0, replica_state, residual, {});
      BDS_CHECK(d.scheduled_blocks > 0);
    }

    SweepPoint point;
    point.blocks = num_blocks;
    uint64_t baseline_fp = 0;
    for (size_t ci = 0; ci < std::size(kSweepConfigs); ++ci) {
      const SweepConfig& c = kSweepConfigs[ci];
      ControllerAlgorithmOptions options;
      options.use_incremental_fptas = c.incremental_fptas;
      options.use_path_cache = c.path_cache;
      options.use_sched_early_exit = c.sched_early_exit;
      options.num_threads = c.num_threads;
      options.num_shards = c.num_shards;
      options.split_contended = c.split_contended;
      ControllerAlgorithm algorithm(&topo, &routing, options);
      uint64_t fp = 0;
      TimeDecide(algorithm, replica_state, residual, reps, &fp, &point.seconds[ci],
                 &point.cpu_seconds[ci]);
      if (ci == 0) {
        baseline_fp = fp;
      } else if (!c.split_contended) {
        BDS_CHECK_MSG(fp == baseline_fp,
                      "optimization config changed the cycle decision");
      }
    }
    std::printf("%10lld", static_cast<long long>(num_blocks));
    for (size_t ci = 0; ci < std::size(kSweepConfigs); ++ci) {
      std::printf("  %15.1f ms", point.seconds[ci] * 1e3);
    }
    std::printf("  %8.2fx\n", point.seconds[0] / point.seconds[std::size(kSweepConfigs) - 1]);
    points.push_back(point);
  }
  return points;
}

// ---------------------------------------------------------------------------
// Fleet-scale shard sweep: many concurrent jobs (one commodity-rich cycle)
// instead of one huge job. 10^4 jobs x 10^3 blocks = 10^7 outstanding blocks
// with 10^4+ concurrent transfers in a single all-on sharded cycle — the
// fleet acceptance target is that cycle staying under the paper's 3 s cycle
// length in CPU time (min over repetitions).

struct FleetConfig {
  const char* name;
  int num_shards;
  bool split_contended;  // Relaxed parity — see SweepConfig.
};

// Every fleet config runs all-on (incremental FPTAS + path cache + early
// exit + 4 threads); only the shard count varies. "baseline" is the point's
// reference config for the regression gate (config-relative ratios), here
// meaning "all-on, unsharded". The sharded fleet configs split contended
// commodity groups by default (DESIGN.md §9.7): repetition-stable but no
// longer bitwise-equal to the unsharded cycle.
constexpr FleetConfig kFleetConfigs[] = {
    {"baseline", 1, false},
    {"fleet_shards4", 4, true},
    {"fleet_shards8", 8, true},
};

struct FleetPoint {
  int64_t jobs = 0;
  int64_t blocks_per_job = 0;
  int64_t blocks = 0;  // jobs * blocks_per_job, the sweep axis.
  int64_t transfers = 0;
  double seconds[std::size(kFleetConfigs)] = {};
  double cpu_seconds[std::size(kFleetConfigs)] = {};
  // Per-phase CPU split of the decision (select / MCF solve / merge +
  // assembly), per config, from the best-CPU repetition's decision fields.
  double select_cpu[std::size(kFleetConfigs)] = {};
  double solve_cpu[std::size(kFleetConfigs)] = {};
  double merge_cpu[std::size(kFleetConfigs)] = {};
  int shard_groups[std::size(kFleetConfigs)] = {};
};

std::vector<FleetPoint> RunFleetSweep(bool smoke) {
  struct Size {
    int64_t jobs;
    int64_t blocks_per_job;
  };
  // Smoke shares its size with the full sweep so the regression gate always
  // has a common (size, config) key; the full sweep adds the 10^7-block
  // fleet point the acceptance bound is stated on.
  std::vector<Size> sizes = smoke ? std::vector<Size>{{2'000, 50}}
                                  : std::vector<Size>{{2'000, 50}, {10'000, 1'000}};
  const int reps = 3;

  GeoTopologyOptions topo_options;
  topo_options.num_dcs = 10;
  topo_options.servers_per_dc = 100;
  topo_options.server_up = MBps(20.0);
  topo_options.server_down = MBps(20.0);
  auto topo = BuildGeoTopology(topo_options).value();
  auto routing = WanRoutingTable::Build(topo, 3).value();
  std::vector<Rate> residual;
  residual.reserve(static_cast<size_t>(topo.num_links()));
  for (const Link& l : topo.links()) {
    residual.push_back(l.capacity);
  }

  bench::PrintHeader("Fleet-scale shard sweep", "one all-on cycle, shard count varied",
                     "many concurrent jobs; sharded configs split contended groups "
                     "(relaxed parity, repetition-stable); "
                     "acceptance: the sharded 10^7-block cycle under 3 s CPU");
  std::printf("%12s %8s", "blocks", "jobs");
  for (const FleetConfig& c : kFleetConfigs) {
    std::printf("  %18s", c.name);
  }
  std::printf("  %9s\n", "groups");

  std::vector<FleetPoint> points;
  for (const Size& size : sizes) {
    ReplicaState replica_state(&topo);
    for (int64_t j = 0; j < size.jobs; ++j) {
      // Sources and single destinations rotate across DCs so the cycle
      // carries commodities on every WAN direction.
      const DcId src = static_cast<DcId>(j % topo.num_dcs());
      const DcId dst = static_cast<DcId>((j + 1 + j / topo.num_dcs()) % topo.num_dcs());
      MulticastJob job = MakeJob(static_cast<JobId>(j), src, {dst == src ? (src + 1) % topo.num_dcs() : dst},
                                 MB(2.0) * static_cast<double>(size.blocks_per_job), MB(2.0))
                             .value();
      BDS_CHECK(replica_state.AddJob(job).ok());
    }

    FleetPoint point;
    point.jobs = size.jobs;
    point.blocks_per_job = size.blocks_per_job;
    point.blocks = size.jobs * size.blocks_per_job;
    uint64_t baseline_fp = 0;
    int last_groups = 0;
    for (size_t ci = 0; ci < std::size(kFleetConfigs); ++ci) {
      ControllerAlgorithmOptions options;
      options.num_threads = 4;
      options.num_shards = kFleetConfigs[ci].num_shards;
      options.split_contended = kFleetConfigs[ci].split_contended;
      ControllerAlgorithm algorithm(&topo, &routing, options);
      uint64_t fp = 0;
      for (int r = 0; r < reps; ++r) {
        const double cpu_start = ProcessCpuSeconds();
        const auto start = std::chrono::steady_clock::now();
        CycleDecision decision = algorithm.Decide(0, replica_state, residual, {});
        const auto stop = std::chrono::steady_clock::now();
        const double cpu = ProcessCpuSeconds() - cpu_start;
        const double wall = std::chrono::duration<double>(stop - start).count();
        if (r == 0 || wall < point.seconds[ci]) {
          point.seconds[ci] = wall;
        }
        if (r == 0 || cpu < point.cpu_seconds[ci]) {
          point.cpu_seconds[ci] = cpu;
          point.select_cpu[ci] = decision.select_cpu_seconds;
          point.solve_cpu[ci] = decision.solve_cpu_seconds;
          point.merge_cpu[ci] = decision.merge_cpu_seconds;
          point.shard_groups[ci] = decision.num_shard_groups;
        }
        const uint64_t rep_fp = decision.Fingerprint();
        if (r == 0) {
          fp = rep_fp;
        } else {
          BDS_CHECK_MSG(rep_fp == fp, "fleet decision not repetition-stable");
        }
        point.transfers = static_cast<int64_t>(decision.transfers.size());
      }
      if (ci == 0) {
        baseline_fp = fp;
      } else if (!kFleetConfigs[ci].split_contended) {
        BDS_CHECK_MSG(fp == baseline_fp, "shard count changed the cycle decision");
      }
      last_groups = point.shard_groups[ci];
    }
    std::printf("%12lld %8lld", static_cast<long long>(point.blocks),
                static_cast<long long>(point.jobs));
    for (size_t ci = 0; ci < std::size(kFleetConfigs); ++ci) {
      std::printf("  %15.1f ms", point.cpu_seconds[ci] * 1e3);
    }
    std::printf("  %9d\n", last_groups);
    points.push_back(point);
  }
  return points;
}

// ---------------------------------------------------------------------------
// Steady-cycles mode: N consecutive Decide() cycles on one long-lived
// controller + replica state with ~5% job churn between cycles, everything
// on (4 threads, 4 shards, incremental candidates, FPTAS warm start,
// contended-group splitting). This is the workload the cross-cycle caches
// (DESIGN.md §9.7) exist for: the first cycle runs cold, every later cycle
// re-prices only the churned slice of the candidate array and warm-starts
// the routing FPTAS. The acceptance target is the amortized warm-cycle CPU
// at the 10^7-block fleet point staying well under the cold cycle.

struct SteadyCyclesStats {
  int64_t jobs = 0;
  int64_t blocks_per_job = 0;
  int64_t blocks = 0;
  int cycles = 0;
  int64_t churn_jobs = 0;  // Jobs retired and admitted between cycles.
  int num_threads = 0;
  int num_shards = 0;
  double cold_cpu = 0.0;       // Cycle 0 (no cache to reuse).
  double warm_cpu_mean = 0.0;  // Amortized over cycles 1..N-1.
  double warm_cpu_max = 0.0;
  double reuse_rate = 0.0;  // Mean candidate-slot reuse over warm cycles.
  int64_t phases_skipped = 0;
  int warm_solves = 0;
};

SteadyCyclesStats RunSteadyCycles(bool smoke) {
  const int64_t jobs = smoke ? 2'000 : 10'000;
  const int64_t blocks_per_job = smoke ? 50 : 1'000;
  const int cycles = smoke ? 4 : 6;
  // ~5% of the fleet retires and ~5% arrives between consecutive cycles.
  const int64_t churn = jobs / 20;

  GeoTopologyOptions topo_options;
  topo_options.num_dcs = 10;
  topo_options.servers_per_dc = 100;
  topo_options.server_up = MBps(20.0);
  topo_options.server_down = MBps(20.0);
  auto topo = BuildGeoTopology(topo_options).value();
  auto routing = WanRoutingTable::Build(topo, 3).value();
  std::vector<Rate> residual;
  residual.reserve(static_cast<size_t>(topo.num_links()));
  for (const Link& l : topo.links()) {
    residual.push_back(l.capacity);
  }

  ReplicaState replica_state(&topo);
  int64_t next_job = 0;
  // Same source/destination rotation as the fleet sweep so every WAN
  // direction stays loaded as the fleet turns over.
  auto admit_job = [&](int64_t seq) {
    const DcId src = static_cast<DcId>(seq % topo.num_dcs());
    const DcId dst = static_cast<DcId>((seq + 1 + seq / topo.num_dcs()) % topo.num_dcs());
    MulticastJob job =
        MakeJob(static_cast<JobId>(seq), src, {dst == src ? (src + 1) % topo.num_dcs() : dst},
                MB(2.0) * static_cast<double>(blocks_per_job), MB(2.0))
            .value();
    BDS_CHECK(replica_state.AddJob(job).ok());
  };
  for (int64_t j = 0; j < jobs; ++j) {
    admit_job(next_job++);
  }

  ControllerAlgorithmOptions options;
  options.num_threads = 4;
  options.num_shards = 4;
  options.warm_start = true;
  options.split_contended = true;
  ControllerAlgorithm algorithm(&topo, &routing, options);

  SteadyCyclesStats stats;
  stats.jobs = jobs;
  stats.blocks_per_job = blocks_per_job;
  stats.blocks = jobs * blocks_per_job;
  stats.cycles = cycles;
  stats.churn_jobs = churn;
  stats.num_threads = options.num_threads;
  stats.num_shards = options.num_shards;

  bench::PrintHeader("Steady cycles", "consecutive cycles with ~5% churn, all caches on",
                     "one long-lived controller; warm cycles re-price only churned "
                     "candidates and warm-start the FPTAS (DESIGN.md §9.7)");
  std::printf("%6s %10s %10s %10s %10s %10s %8s %8s %6s %7s\n", "cycle", "cpu (ms)",
              "select", "solve", "scheduled", "transfers", "reuse", "phases", "warm", "groups");

  double warm_total = 0.0;
  double reuse_total = 0.0;
  int warm_cycles = 0;
  for (int cyc = 0; cyc < cycles; ++cyc) {
    const double cpu_start = ProcessCpuSeconds();
    CycleDecision decision = algorithm.Decide(cyc, replica_state, residual, {});
    const double cpu = ProcessCpuSeconds() - cpu_start;
    const int64_t slots = decision.cand_slots_reused + decision.cand_slots_repriced;
    const double reuse =
        slots > 0 ? static_cast<double>(decision.cand_slots_reused) / static_cast<double>(slots)
                  : 0.0;
    std::printf("%6d %10.1f %10.1f %10.1f %10lld %10zu %7.1f%% %8lld %6s %7d\n", cyc, cpu * 1e3,
                decision.select_cpu_seconds * 1e3, decision.solve_cpu_seconds * 1e3,
                static_cast<long long>(decision.scheduled_blocks), decision.transfers.size(),
                reuse * 1e2, static_cast<long long>(decision.fptas_phases_skipped),
                decision.warm_solve ? "yes" : "no", decision.num_shard_groups);
    if (cyc == 0) {
      stats.cold_cpu = cpu;
      BDS_CHECK_MSG(decision.cand_slots_reused == 0, "first cycle cannot reuse candidates");
    } else {
      warm_total += cpu;
      warm_cycles++;
      stats.warm_cpu_max = std::max(stats.warm_cpu_max, cpu);
      reuse_total += reuse;
      stats.phases_skipped += decision.fptas_phases_skipped;
      stats.warm_solves += decision.warm_solve ? 1 : 0;
    }

    // Untimed churn: this cycle's transfers land, the oldest jobs finish
    // and retire, and fresh jobs arrive.
    for (const TransferAssignment& t : decision.transfers) {
      for (int64_t b : t.blocks) {
        BDS_CHECK(replica_state.NoteDelivery(t.job, b, t.src_server, t.dst_server).ok());
      }
    }
    for (int64_t k = 0; k < churn && replica_state.num_live_jobs() > 0; ++k) {
      const JobId id = replica_state.job_ids().front();
      const MulticastJob job = *replica_state.FindJob(id);
      for (int64_t b = 0; b < job.num_blocks(); ++b) {
        for (DcId dc : job.dest_dcs) {
          BDS_CHECK(replica_state.AddReplica(id, b, replica_state.AssignedServer(id, b, dc)).ok());
        }
      }
      BDS_CHECK(replica_state.RetireJob(id).ok());
    }
    for (int64_t k = 0; k < churn; ++k) {
      admit_job(next_job++);
    }
  }
  stats.warm_cpu_mean = warm_cycles > 0 ? warm_total / warm_cycles : 0.0;
  stats.reuse_rate = warm_cycles > 0 ? reuse_total / warm_cycles : 0.0;
  std::printf("cold %.1f ms; amortized warm %.1f ms (max %.1f ms); reuse %.1f%%\n",
              stats.cold_cpu * 1e3, stats.warm_cpu_mean * 1e3, stats.warm_cpu_max * 1e3,
              stats.reuse_rate * 1e2);
  return stats;
}

void WriteSweepJson(const std::vector<SweepPoint>& points,
                    const std::vector<FleetPoint>& fleet_points,
                    const SteadyCyclesStats& steady, bool smoke,
                    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  BDS_CHECK_MSG(f != nullptr, "cannot open --json output path");
  std::fprintf(f, "{\n  \"benchmark\": \"controller_decision\",\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  // The bench must time the telemetry-off fast path; the regression check
  // fails any JSON stamped with telemetry on.
  std::fprintf(f, "  \"telemetry_enabled\": %s,\n",
               bds::telemetry::Enabled() ? "true" : "false");
  std::fprintf(f, "  \"flight_recorder_enabled\": %s,\n",
               bds::telemetry::FlightRecorder::Global().active() ? "true" : "false");
  // The ablation and fleet sweeps time cold single-cycle decisions; warm
  // start only applies in the steady_cycles section, which carries its own
  // stamp. Regression checks require this header stamp to match between
  // baseline and fresh runs.
  std::fprintf(f, "  \"warm_start\": false,\n");
  std::fprintf(f, "  \"configs\": [");
  for (size_t ci = 0; ci < std::size(kSweepConfigs); ++ci) {
    std::fprintf(f, "%s\"%s\"", ci == 0 ? "" : ", ", kSweepConfigs[ci].name);
  }
  // Shard-count stamp per config name (fleet configs included), so readers
  // of the JSON never have to parse shard counts out of config names.
  std::fprintf(f, "],\n  \"config_shards\": {");
  for (size_t ci = 0; ci < std::size(kSweepConfigs); ++ci) {
    std::fprintf(f, "%s\"%s\": %d", ci == 0 ? "" : ", ", kSweepConfigs[ci].name,
                 kSweepConfigs[ci].num_shards);
  }
  for (size_t ci = 1; ci < std::size(kFleetConfigs); ++ci) {
    std::fprintf(f, ", \"%s\": %d", kFleetConfigs[ci].name, kFleetConfigs[ci].num_shards);
  }
  std::fprintf(f, "},\n  \"points\": [\n");
  const bool more_after_points = !fleet_points.empty();
  for (size_t i = 0; i < points.size(); ++i) {
    std::fprintf(f, "    {\"blocks\": %lld, \"seconds\": {",
                 static_cast<long long>(points[i].blocks));
    for (size_t ci = 0; ci < std::size(kSweepConfigs); ++ci) {
      std::fprintf(f, "%s\"%s\": %.6f", ci == 0 ? "" : ", ", kSweepConfigs[ci].name,
                   points[i].seconds[ci]);
    }
    std::fprintf(f, "}, \"cpu_seconds\": {");
    for (size_t ci = 0; ci < std::size(kSweepConfigs); ++ci) {
      std::fprintf(f, "%s\"%s\": %.6f", ci == 0 ? "" : ", ", kSweepConfigs[ci].name,
                   points[i].cpu_seconds[ci]);
    }
    std::fprintf(f, "}}%s\n",
                 i + 1 == points.size() && !more_after_points ? "" : ",");
  }
  // Fleet points share the array (the gate is per-(size, config); the fleet
  // config names are distinct, so medians never mix the two sections). Each
  // carries the workload shape, the shard stamp, and the per-phase CPU
  // split per config.
  for (size_t i = 0; i < fleet_points.size(); ++i) {
    const FleetPoint& p = fleet_points[i];
    std::fprintf(f,
                 "    {\"blocks\": %lld, \"jobs\": %lld, \"blocks_per_job\": %lld, "
                 "\"transfers\": %lld, \"seconds\": {",
                 static_cast<long long>(p.blocks), static_cast<long long>(p.jobs),
                 static_cast<long long>(p.blocks_per_job), static_cast<long long>(p.transfers));
    for (size_t ci = 0; ci < std::size(kFleetConfigs); ++ci) {
      std::fprintf(f, "%s\"%s\": %.6f", ci == 0 ? "" : ", ", kFleetConfigs[ci].name,
                   p.seconds[ci]);
    }
    std::fprintf(f, "}, \"cpu_seconds\": {");
    for (size_t ci = 0; ci < std::size(kFleetConfigs); ++ci) {
      std::fprintf(f, "%s\"%s\": %.6f", ci == 0 ? "" : ", ", kFleetConfigs[ci].name,
                   p.cpu_seconds[ci]);
    }
    std::fprintf(f, "}, \"phases\": {");
    for (size_t ci = 0; ci < std::size(kFleetConfigs); ++ci) {
      std::fprintf(f,
                   "%s\"%s\": {\"num_shards\": %d, \"shard_groups\": %d, \"select\": %.6f, "
                   "\"solve\": %.6f, \"merge\": %.6f}",
                   ci == 0 ? "" : ", ", kFleetConfigs[ci].name, kFleetConfigs[ci].num_shards,
                   p.shard_groups[ci], p.select_cpu[ci], p.solve_cpu[ci], p.merge_cpu[ci]);
    }
    std::fprintf(f, "}}%s\n", i + 1 == fleet_points.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n");
  // Cross-cycle steady-state section: the `amortized` regression mode gates
  // the warm-cycle CPU and the candidate reuse-rate floor on these fields.
  std::fprintf(f,
               "  \"steady_cycles\": {\"jobs\": %lld, \"blocks_per_job\": %lld, "
               "\"blocks\": %lld, \"cycles\": %d, \"churn_jobs\": %lld, "
               "\"num_threads\": %d, \"num_shards\": %d, \"warm_start\": true, "
               "\"split_contended\": true,\n",
               static_cast<long long>(steady.jobs), static_cast<long long>(steady.blocks_per_job),
               static_cast<long long>(steady.blocks), steady.cycles,
               static_cast<long long>(steady.churn_jobs), steady.num_threads, steady.num_shards);
  std::fprintf(f,
               "    \"cold_cpu_seconds\": %.6f, \"warm_cpu_seconds\": %.6f, "
               "\"warm_cpu_max_seconds\": %.6f, \"reuse_rate\": %.4f, "
               "\"phases_skipped\": %lld, \"warm_solves\": %d}\n",
               steady.cold_cpu, steady.warm_cpu_mean, steady.warm_cpu_max, steady.reuse_rate,
               static_cast<long long>(steady.phases_skipped), steady.warm_solves);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

void PrintDelayCdfs() {
  GeoTopologyOptions topo_options;
  topo_options.num_dcs = 10;
  topo_options.servers_per_dc = 2;
  // The paper's deployment spans mainland-China DCs: base one-way delays of
  // 5-35 ms with mild jitter reproduce Fig 11b's 25 ms mean.
  topo_options.min_latency = 0.005;
  topo_options.max_latency = 0.035;
  auto topo = BuildGeoTopology(topo_options).value();

  bench::PrintHeader("Figure 11b", "control-message network delay CDF",
                     "5000 one-way agent<->controller messages over a 5-35 ms WAN "
                     "(paper: 90% < 50 ms, mean ~25 ms)");
  AgentMonitor monitor(&topo, 0, LatencyModel::Options{});
  for (int i = 0; i < 5000; ++i) {
    monitor.SampleStatusDelay(static_cast<DcId>(i % topo.num_dcs()));
  }
  EmpiricalDistribution one_way_ms;
  for (double d : monitor.one_way_delays().samples()) {
    one_way_ms.Add(d * 1e3);
  }
  bench::PrintCdf("delay (ms)", one_way_ms, 10);
  std::printf("mean %.1f ms (paper ~25 ms); P(< 50 ms) = %.2f (paper 0.90)\n",
              one_way_ms.Mean(), one_way_ms.CdfAt(50.0));

  bench::PrintHeader("Figure 11c", "feedback-loop delay CDF",
                     "status in + algorithm + push out, 1000 cycles "
                     "(paper: 80% < 200 ms)");
  AgentMonitor loop_monitor(&topo, 0, LatencyModel::Options{});
  std::vector<DcId> agent_dcs;
  for (DcId d = 0; d < topo.num_dcs(); ++d) {
    agent_dcs.push_back(d);
  }
  for (int i = 0; i < 1000; ++i) {
    // Algorithm time drawn from the measured per-cycle range (Fig 11a):
    // typically 10-60 ms, with ~15% of cycles near the 3x10^5-block peak
    // where decisions reach 150-300 ms.
    double algorithm_seconds = (i % 7 == 6) ? 0.15 + 0.05 * (i % 4)
                                            : 0.01 + 0.05 * (i % 6) / 6.0;
    loop_monitor.SampleFeedbackLoop(agent_dcs, algorithm_seconds);
  }
  EmpiricalDistribution loop_ms;
  for (double d : loop_monitor.feedback_delays().samples()) {
    loop_ms.Add(d * 1e3);
  }
  bench::PrintCdf("feedback delay (ms)", loop_ms, 10);
  std::printf("P(< 200 ms) = %.2f (paper 0.80)\n", loop_ms.CdfAt(200.0));
}

}  // namespace
}  // namespace bds

int main(int argc, char** argv) {
  // Strip our own flags before google-benchmark sees argv.
  bool smoke = false;
  bool sweep_only = false;
  bool steady_only = false;
  std::string json_path;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--sweep-only") == 0) {
      // Full point set, but skip the google-benchmark section and the delay
      // CDFs. Used when regenerating the regression baseline so it is timed
      // under the same process conditions as the smoke runs it gates.
      sweep_only = true;
    } else if (std::strcmp(argv[i], "--steady-cycles") == 0) {
      // Only the cross-cycle steady-state section (fast iteration on the
      // warm-start path). The emitted JSON has empty sweep sections, so it
      // is not a valid regression baseline.
      steady_only = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  if (!smoke && !sweep_only && !steady_only) {
    bds::bench::PrintHeader("Figure 11a", "controller running time vs number of blocks",
                            "10 DCs x 100 servers, 2 destination DCs per job "
                            "(paper: <= 300 ms at 3x10^5 blocks, <= 800 ms at 10^6)");
    ::benchmark::Initialize(&argc, argv);
    ::benchmark::RunSpecifiedBenchmarks();
  }
  std::vector<bds::SweepPoint> points;
  std::vector<bds::FleetPoint> fleet_points;
  if (!steady_only) {
    points = bds::RunConfigSweep(smoke);
    fleet_points = bds::RunFleetSweep(smoke);
  }
  bds::SteadyCyclesStats steady = bds::RunSteadyCycles(smoke);
  if (!json_path.empty()) {
    bds::WriteSweepJson(points, fleet_points, steady, smoke, json_path);
  }
  if (!smoke && !sweep_only && !steady_only) {
    bds::PrintDelayCdfs();
  }
  return 0;
}
