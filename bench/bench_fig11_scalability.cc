// Regenerates Figure 11 (control-plane scalability):
//  11a — controller running time vs number of outstanding blocks
//        (paper: <= ~300 ms at Baidu's peak of 3x10^5 blocks, <= ~800 ms at 10^6);
//  11b — CDF of control-message network delay over 5000 requests
//        (paper: 90 % below 50 ms, mean ~25 ms);
//  11c — CDF of the full feedback-loop delay (paper: 80 % below 200 ms).
//
// 11a runs under google-benchmark for stable timing.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_util.h"
#include "src/control/monitors.h"
#include "src/core/service.h"
#include "src/scheduler/controller_algorithm.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

// Shared fixture: a 10-DC deployment with one job of state.range(0) blocks.
void BM_ControllerDecision(benchmark::State& state) {
  int64_t num_blocks = state.range(0);
  GeoTopologyOptions topo_options;
  topo_options.num_dcs = 10;
  topo_options.servers_per_dc = 100;
  topo_options.server_up = MBps(20.0);
  topo_options.server_down = MBps(20.0);
  auto topo = BuildGeoTopology(topo_options).value();
  auto routing = WanRoutingTable::Build(topo, 3).value();

  ReplicaState replica_state(&topo);
  MulticastJob job =
      MakeJob(0, 0, {1, 2}, MB(2.0) * static_cast<double>(num_blocks), MB(2.0)).value();
  BDS_CHECK(replica_state.AddJob(job).ok());

  ControllerAlgorithmOptions options;
  ControllerAlgorithm algorithm(&topo, &routing, options);
  std::vector<Rate> residual;
  residual.reserve(static_cast<size_t>(topo.num_links()));
  for (const Link& l : topo.links()) {
    residual.push_back(l.capacity);
  }

  int64_t scheduled = 0;
  for (auto _ : state) {
    CycleDecision decision = algorithm.Decide(0, replica_state, residual, {});
    scheduled = decision.scheduled_blocks;
    benchmark::DoNotOptimize(decision);
  }
  state.counters["blocks"] = static_cast<double>(num_blocks);
  state.counters["scheduled/cycle"] = static_cast<double>(scheduled);
}

BENCHMARK(BM_ControllerDecision)
    ->Unit(benchmark::kMillisecond)
    ->Arg(50'000)
    ->Arg(100'000)
    ->Arg(300'000)
    ->Arg(600'000)
    ->Arg(1'000'000);

void PrintDelayCdfs() {
  GeoTopologyOptions topo_options;
  topo_options.num_dcs = 10;
  topo_options.servers_per_dc = 2;
  // The paper's deployment spans mainland-China DCs: base one-way delays of
  // 5-35 ms with mild jitter reproduce Fig 11b's 25 ms mean.
  topo_options.min_latency = 0.005;
  topo_options.max_latency = 0.035;
  auto topo = BuildGeoTopology(topo_options).value();

  bench::PrintHeader("Figure 11b", "control-message network delay CDF",
                     "5000 one-way agent<->controller messages over a 5-35 ms WAN "
                     "(paper: 90% < 50 ms, mean ~25 ms)");
  AgentMonitor monitor(&topo, 0, LatencyModel::Options{});
  for (int i = 0; i < 5000; ++i) {
    monitor.SampleStatusDelay(static_cast<DcId>(i % topo.num_dcs()));
  }
  EmpiricalDistribution one_way_ms;
  for (double d : monitor.one_way_delays().samples()) {
    one_way_ms.Add(d * 1e3);
  }
  bench::PrintCdf("delay (ms)", one_way_ms, 10);
  std::printf("mean %.1f ms (paper ~25 ms); P(< 50 ms) = %.2f (paper 0.90)\n",
              one_way_ms.Mean(), one_way_ms.CdfAt(50.0));

  bench::PrintHeader("Figure 11c", "feedback-loop delay CDF",
                     "status in + algorithm + push out, 1000 cycles "
                     "(paper: 80% < 200 ms)");
  AgentMonitor loop_monitor(&topo, 0, LatencyModel::Options{});
  std::vector<DcId> agent_dcs;
  for (DcId d = 0; d < topo.num_dcs(); ++d) {
    agent_dcs.push_back(d);
  }
  for (int i = 0; i < 1000; ++i) {
    // Algorithm time drawn from the measured per-cycle range (Fig 11a):
    // typically 10-60 ms, with ~15% of cycles near the 3x10^5-block peak
    // where decisions reach 150-300 ms.
    double algorithm_seconds = (i % 7 == 6) ? 0.15 + 0.05 * (i % 4)
                                            : 0.01 + 0.05 * (i % 6) / 6.0;
    loop_monitor.SampleFeedbackLoop(agent_dcs, algorithm_seconds);
  }
  EmpiricalDistribution loop_ms;
  for (double d : loop_monitor.feedback_delays().samples()) {
    loop_ms.Add(d * 1e3);
  }
  bench::PrintCdf("feedback delay (ms)", loop_ms, 10);
  std::printf("P(< 200 ms) = %.2f (paper 0.80)\n", loop_ms.CdfAt(200.0));
}

}  // namespace
}  // namespace bds

int main(int argc, char** argv) {
  bds::bench::PrintHeader("Figure 11a", "controller running time vs number of blocks",
                          "10 DCs x 100 servers, 2 destination DCs per job "
                          "(paper: <= 300 ms at 3x10^5 blocks, <= 800 ms at 10^6)");
  ::benchmark::Initialize(&argc, argv);
  ::benchmark::RunSpecifiedBenchmarks();
  bds::PrintDelayCdfs();
  return 0;
}
