// Regenerates Table 3: completion time of BDS vs Bullet vs Akamai in three
// trace-driven setups.
//
// Paper (10 TB -> 11 DCs x 100 servers @ 20 MB/s):        Bullet 28 m,
// Akamai 25 m, BDS 9.41 m. Large-scale (100 TB, 1000 srv): 82 / 87 / 20.33 m.
// Rate-limited (5 MB/s):                                    171 / 138 / 38.25 m.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/baselines/akamai.h"
#include "src/baselines/gingko.h"
#include "src/core/service.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

struct Scenario {
  const char* name;
  int servers_per_dc;
  Bytes size;
  Rate server_rate;
  const char* paper_row;
};

void RunScenario(const Scenario& sc, AsciiTable& table) {
  auto topo =
      BuildGingkoExperiment(/*num_dest_dcs=*/10, sc.servers_per_dc, sc.server_rate, Gbps(20.0))
          .value();
  auto routing = WanRoutingTable::Build(topo, 3).value();
  std::vector<DcId> dests;
  for (DcId d = 1; d < topo.num_dcs(); ++d) {
    dests.push_back(d);
  }
  MulticastJob job = MakeJob(0, 0, dests, sc.size, MB(2.0)).value();

  BulletStrategy bullet;
  double bullet_m = bench::RunStrategyMinutes(bullet, topo, routing, job, 3, Hours(48.0));
  AkamaiStrategy akamai;
  double akamai_m = bench::RunStrategyMinutes(akamai, topo, routing, job, 3, Hours(48.0));
  BdsStrategy bds;
  double bds_m = bench::RunStrategyMinutes(bds, topo, routing, job, 3, Hours(48.0));

  auto cell = [](double m) { return m > 0.0 ? AsciiTable::Num(m, 2) + " m" : "dnf"; };
  table.AddRow({sc.name, cell(bullet_m), cell(akamai_m), cell(bds_m), sc.paper_row});
  if (bds_m > 0.0 && bullet_m > 0.0 && akamai_m > 0.0) {
    std::printf("%s: BDS %.1fx faster than Bullet, %.1fx faster than Akamai\n", sc.name,
                bullet_m / bds_m, akamai_m / bds_m);
  }
}

void Run() {
  bench::PrintHeader(
      "Table 3", "BDS vs Bullet vs Akamai, trace-driven simulation",
      "10 dest DCs; baseline 32 srv/DC & 3.2 GB, large-scale 64 srv/DC & 12.8 GB, "
      "rate-limit 32 srv/DC @ 5 MB/s & 0.8 GB (paper: 100/1000 servers, 10/100 TB; "
      "bytes-per-NIC ratios preserved)");

  AsciiTable table({"setup", "Bullet", "Akamai", "BDS", "paper (Bullet/Akamai/BDS)"});
  // Paper baseline: 10 TB over 1000 servers at 20 MB/s -> 10 GB per server
  // slot; we keep 100 MB per server NIC-slot at the same 20 MB/s.
  RunScenario({"baseline", 32, GB(3.2), MBps(20.0), "28 / 25 / 9.41 m"}, table);
  RunScenario({"large scale", 64, GB(12.8), MBps(20.0), "82 / 87 / 20.33 m"}, table);
  RunScenario({"rate limited", 32, GB(0.8), MBps(5.0), "171 / 138 / 38.25 m"}, table);
  table.Print();
  std::printf("shape check: BDS fastest in every setup; gaps grow with scale and rate limits\n");
}

}  // namespace
}  // namespace bds

int main() {
  bds::Run();
  return 0;
}
