#!/usr/bin/env python3
"""Explain why a transfer was slow, from a flight-recorder JSONL.

Usage:
    tools/bds_explain.py RUN.jsonl TRANSFER_ID    # full lifecycle + diagnosis
    tools/bds_explain.py RUN.jsonl --list [-n N]  # slowest N retained transfers
    tools/bds_explain.py --self-test

RUN.jsonl is the bds-flight-v1 file written by `quickstart --flight-recorder`
(or any caller of FlightRecorder::WriteJsonl). The recorder retains a bounded
set of journals biased toward the interesting tail — slowest completions,
rejected and fault-touched transfers — so the id you want is usually in
`--list` even after a multi-day soak.

The explanation reconstructs the full lifecycle (arrival, admission verdict
with its reason, every per-cycle schedule with its degradation rung, sampled
rate changepoints, fault hits, cancellations, completion) and then names the
dominant bottleneck: admission wait, a degraded scheduling rung, fault-driven
re-plans, rate starvation, or plain transfer volume.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"bds_explain: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    meta = None
    transfers = {}
    try:
        with open(path, "r", encoding="utf-8") as f:
            for i, line in enumerate(f):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    fail(f"{path}:{i + 1}: not JSON: {e}")
                kind = rec.get("kind")
                if kind == "meta":
                    if rec.get("schema") != "bds-flight-v1":
                        fail(f"{path}: unsupported schema {rec.get('schema')!r}")
                    meta = rec
                elif kind == "transfer":
                    transfers[int(rec["job"])] = rec
                else:
                    fail(f"{path}:{i + 1}: unknown kind {kind!r}")
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    if meta is None:
        fail(f"{path}: missing bds-flight-v1 meta line")
    return meta, transfers


def fmt_t(t):
    if t >= 3600:
        return f"{t / 3600:.2f}h"
    if t >= 60:
        return f"{t / 60:.2f}m"
    return f"{t:.2f}s"


def describe(ev):
    e = ev["e"]
    if e == "arrival":
        return (f"arrived: src_dc={ev.get('src_dc')} dests={ev.get('dests')} "
                f"blocks={ev.get('blocks')} bytes={ev.get('bytes'):.3g}")
    if e == "admission":
        return (f"admission: {ev.get('verdict')} ({ev.get('reason')}), "
                f"backlog={ev.get('backlog')} deliveries")
    if e == "schedule":
        return (f"scheduled: cycle={ev.get('cycle')} rung={ev.get('rung')} "
                f"{ev.get('src')}->{ev.get('dst')} "
                f"rate={ev.get('rate', 0.0):.3g} B/s blocks={ev.get('blocks')}")
    if e == "rate_change":
        return (f"rate change: {ev.get('old_rate', 0.0):.3g} -> "
                f"{ev.get('new_rate', 0.0):.3g} B/s")
    if e == "fault":
        return f"fault hit: {ev.get('fault')} (subject {ev.get('subject')})"
    if e == "cancel":
        return (f"cancelled: {ev.get('reason')} "
                f"(credited {ev.get('credited')} full blocks)")
    if e == "completion":
        return f"completed in {fmt_t(ev.get('duration_s', 0.0))}"
    if e == "retire":
        return "retired (bounded-memory cleanup)"
    return f"{e}: {ev}"


def diagnose(journal):
    """Returns (bottleneck, detail_lines). Heuristic, but grounded: every
    claim points at events visible in the timeline above it."""
    events = journal.get("events", [])
    by_kind = {}
    for ev in events:
        by_kind.setdefault(ev["e"], []).append(ev)

    notes = []
    candidates = []  # (weight_seconds_or_priority, name, explanation)

    if journal.get("rejected"):
        verdicts = [e for e in by_kind.get("admission", [])
                    if e.get("verdict") == "reject"]
        reason = verdicts[-1].get("reason") if verdicts else "unknown"
        return ("rejected by admission control",
                [f"the job was rejected ({reason}); it never transferred"])

    arrival_t = by_kind["arrival"][0]["t"] if "arrival" in by_kind else None
    schedules = by_kind.get("schedule", [])
    first_sched_t = schedules[0]["t"] if schedules else None

    # Admission / scheduling wait: arrival -> first schedule.
    if arrival_t is not None and first_sched_t is not None:
        wait = first_sched_t - arrival_t
        defers = [e for e in by_kind.get("admission", [])
                  if e.get("verdict") == "defer"]
        if defers:
            notes.append(f"deferred {len(defers)}x by admission "
                         f"({defers[0].get('reason')}) before acceptance")
        if wait > 0:
            what = "admission deferral" if defers else "scheduling backlog"
            candidates.append((wait, f"waiting before first schedule ({what})",
                               f"{fmt_t(wait)} from arrival to the first "
                               f"scheduled transfer"))

    # Degraded rungs: scheduled while the controller was shedding load.
    degraded = [e for e in schedules if e.get("rung") not in (None, "normal")]
    if degraded:
        rungs = sorted({e["rung"] for e in degraded})
        span = degraded[-1]["t"] - degraded[0]["t"]
        candidates.append((max(span, 1.0),
                           "controller overload (degraded scheduling)",
                           f"{len(degraded)}/{len(schedules)} schedule events "
                           f"ran at degraded rung(s) {', '.join(rungs)}"))

    # Faults and the re-plans they forced.
    faults = by_kind.get("fault", [])
    cancels = by_kind.get("cancel", [])
    if faults or cancels:
        kinds = {}
        for e in faults:
            kinds[e.get("fault")] = kinds.get(e.get("fault"), 0) + 1
        for e in cancels:
            kinds[e.get("reason")] = kinds.get(e.get("reason"), 0) + 1
        desc = ", ".join(f"{k} x{v}" for k, v in sorted(kinds.items()))
        # A cancel forces the remaining blocks back through a later cycle:
        # weight by observed time between first fault/cancel and completion.
        t0 = min(e["t"] for e in faults + cancels)
        t1 = events[-1]["t"]
        candidates.append((max(t1 - t0, 1.0), "faults forcing re-plans",
                           f"{len(faults)} fault hit(s), {len(cancels)} "
                           f"cancellation(s): {desc}"))

    # Rate starvation: the sampled changepoints trended low.
    rates = [e.get("new_rate", 0.0) for e in by_kind.get("rate_change", [])]
    rates += [e.get("rate", 0.0) for e in schedules]
    positive = [r for r in rates if r > 0.0]
    if positive:
        peak, low = max(positive), min(positive)
        if low < 0.25 * peak:
            candidates.append((1.0, "rate starvation",
                               f"allocated rate swung {low:.3g} .. {peak:.3g} "
                               f"B/s (changepoints sampled at >=25% moves)"))

    if not candidates:
        candidates.append((0.0, "transfer volume",
                           "no waits, faults, or degradation recorded; the "
                           "duration is the data moving at the offered rate"))
    candidates.sort(key=lambda c: -c[0])
    bottleneck = candidates[0][1]
    detail = [f"{name}: {expl}" for _, name, expl in candidates]
    return bottleneck, notes + detail


def explain(meta, transfers, job):
    if job not in transfers:
        retained = ", ".join(str(j) for j in sorted(transfers)[:16])
        fail(f"transfer {job} is not in the retained set "
             f"({meta.get('transfers')} retained, "
             f"{meta.get('dropped_transfers', 0)} dropped, "
             f"{meta.get('evicted_transfers', 0)} evicted); "
             f"some retained ids: {retained}")
    j = transfers[job]
    status = "completed" if j.get("completed") else \
        ("rejected" if j.get("rejected") else "incomplete at run end")
    print(f"transfer {job}: {status}", end="")
    if j.get("completed"):
        print(f" in {fmt_t(j.get('duration_s', 0.0))}", end="")
    if j.get("fault_touched"):
        print("  [fault-touched]", end="")
    print()
    if j.get("dropped_events", 0) > 0:
        print(f"  (journal truncated: {j['dropped_events']} events dropped)")
    print("\ntimeline:")
    for ev in j.get("events", []):
        print(f"  {fmt_t(ev['t']):>9}  {describe(ev)}")
    bottleneck, detail = diagnose(j)
    print(f"\nbottleneck: {bottleneck}")
    for line in detail:
        print(f"  - {line}")
    return 0


def list_transfers(meta, transfers, n):
    print(f"{meta.get('transfers')} retained journals "
          f"({meta.get('dropped_transfers', 0)} dropped, "
          f"{meta.get('evicted_transfers', 0)} evicted, "
          f"{meta.get('rate_events_dropped', 0)} rate changepoints dropped)")
    rows = sorted(transfers.values(),
                  key=lambda t: -t.get("duration_s", 0.0))[:n]
    print(f"{'job':>10} {'status':>10} {'duration':>10} {'events':>7} flags")
    for t in rows:
        status = ("done" if t.get("completed")
                  else "rejected" if t.get("rejected") else "open")
        flags = "fault" if t.get("fault_touched") else ""
        print(f"{t['job']:>10} {status:>10} "
              f"{fmt_t(t.get('duration_s', 0.0)):>10} "
              f"{len(t.get('events', [])):>7} {flags}")
    return 0


def self_test():
    import tempfile
    lines = [
        {"kind": "meta", "schema": "bds-flight-v1", "transfers": 2,
         "events": 9, "dropped_events": 0, "dropped_transfers": 0,
         "evicted_transfers": 0, "rate_events_dropped": 0},
        {"kind": "transfer", "job": 7, "rejected": False,
         "fault_touched": True, "completed": True, "duration_s": 900.0,
         "dropped_events": 0, "events": [
             {"e": "arrival", "t": 0.0, "src_dc": 0, "dests": 2,
              "blocks": 10, "bytes": 1e8},
             {"e": "admission", "t": 0.0, "verdict": "defer",
              "reason": "max_backlog_cycles", "backlog": 900},
             {"e": "admission", "t": 300.0, "verdict": "accept",
              "reason": "under_budget", "backlog": 10},
             {"e": "schedule", "t": 300.0, "cycle": 100, "rung": "cached_paths",
              "src": 0, "dst": 4, "rate": 1e6, "blocks": 10},
             {"e": "fault", "t": 500.0, "fault": "link_down", "subject": 3},
             {"e": "cancel", "t": 500.0, "reason": "link_down", "credited": 4},
             {"e": "schedule", "t": 503.0, "cycle": 168, "rung": "normal",
              "src": 1, "dst": 4, "rate": 8e5, "blocks": 6},
             {"e": "completion", "t": 900.0, "duration_s": 900.0}]},
        {"kind": "transfer", "job": 8, "rejected": True,
         "fault_touched": False, "completed": False, "duration_s": 0.0,
         "dropped_events": 0, "events": [
             {"e": "admission", "t": 10.0, "verdict": "reject",
              "reason": "defer_overflow", "backlog": 5000}]},
    ]
    with tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False) as f:
        for line in lines:
            f.write(json.dumps(line) + "\n")
        path = f.name

    meta, transfers = load(path)
    assert set(transfers) == {7, 8}, transfers

    import io
    out, sys.stdout = sys.stdout, io.StringIO()
    try:
        explain(meta, transfers, 7)
        text = sys.stdout.getvalue()
    finally:
        sys.stdout = out
    for needle in ("completed in 15.00m", "fault-touched", "link_down",
                   "deferred 1x", "bottleneck:", "max_backlog_cycles",
                   "cached_paths"):
        assert needle in text, f"missing {needle!r} in:\n{text}"

    out, sys.stdout = sys.stdout, io.StringIO()
    try:
        explain(meta, transfers, 8)
        text = sys.stdout.getvalue()
    finally:
        sys.stdout = out
    assert "rejected by admission control" in text, text
    assert "defer_overflow" in text, text

    out, sys.stdout = sys.stdout, io.StringIO()
    try:
        list_transfers(meta, transfers, 10)
        text = sys.stdout.getvalue()
    finally:
        sys.stdout = out
    assert "2 retained journals" in text, text

    print("bds_explain self-test: OK")
    return 0


def main():
    if "--self-test" in sys.argv[1:]:
        return self_test()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("run", help="bds-flight-v1 JSONL file")
    parser.add_argument("transfer", nargs="?", type=int,
                        help="transfer (job) id to explain")
    parser.add_argument("--list", action="store_true",
                        help="list retained transfers, slowest first")
    parser.add_argument("-n", type=int, default=20,
                        help="rows for --list (default 20)")
    opts = parser.parse_args()
    meta, transfers = load(opts.run)
    if opts.list or opts.transfer is None:
        return list_transfers(meta, transfers, opts.n)
    return explain(meta, transfers, opts.transfer)


if __name__ == "__main__":
    sys.exit(main())
