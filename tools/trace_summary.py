#!/usr/bin/env python3
"""Validate a BDS Chrome trace_event JSON file and print a per-phase summary.

Usage:
    tools/trace_summary.py TRACE.json [--quiet] [--max-dropped N]
    tools/trace_summary.py --self-test

A run that dropped trace events (ring overflow) still validates, but a
WARNING goes to stderr: totals in the tables are undercounts. Pass
--max-dropped 0 to turn the warning into a failure.

Checks (exit 1 on the first violation):
  * top-level object with a `traceEvents` list and `otherData.dropped_events`
  * every event has name/cat/ph/pid/tid/ts with the right types
  * `ph` is "X" (complete span, requires numeric `dur` >= 0) or "i" (instant)
  * timestamps are non-negative and spans are monotone-sane (ts + dur finite)
  * dropped_events <= --max-dropped (default: unlimited, only reported)

Then prints one table row per (category, name): event count, total time and
mean of "X" spans, so `fptas.solve` vs `scheduler.schedule` time is readable
straight from a quickstart/CI artifact. Instant events that carry numeric
args get a third table summing each arg across the run — e.g. the
`scheduler.cand_reuse` per-cycle instants roll up to how many candidate
slots the incremental build reused overall.
"""

import argparse
import collections
import json
import math
import sys

REQUIRED_EVENT_KEYS = ("name", "cat", "ph", "pid", "tid", "ts")


def fail(msg: str) -> "None":
    print(f"trace_summary: INVALID: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_event(i: int, ev) -> None:
    if not isinstance(ev, dict):
        fail(f"traceEvents[{i}] is not an object")
    for key in REQUIRED_EVENT_KEYS:
        if key not in ev:
            fail(f"traceEvents[{i}] missing key {key!r}")
    if not isinstance(ev["name"], str) or not ev["name"]:
        fail(f"traceEvents[{i}] has a non-string or empty name")
    if not isinstance(ev["cat"], str):
        fail(f"traceEvents[{i}] has a non-string cat")
    if not isinstance(ev["pid"], int) or not isinstance(ev["tid"], int):
        fail(f"traceEvents[{i}] pid/tid must be integers")
    ts = ev["ts"]
    if not isinstance(ts, (int, float)) or not math.isfinite(ts) or ts < 0:
        fail(f"traceEvents[{i}] has bad ts {ts!r}")
    ph = ev["ph"]
    if ph == "X":
        dur = ev.get("dur")
        if not isinstance(dur, (int, float)) or not math.isfinite(dur) or dur < 0:
            fail(f"traceEvents[{i}] ph=X requires finite dur >= 0, got {dur!r}")
        if not math.isfinite(ts + dur):
            fail(f"traceEvents[{i}] span end overflows")
    elif ph == "i":
        pass
    else:
        fail(f"traceEvents[{i}] has unsupported ph {ph!r}")
    args = ev.get("args")
    if args is not None and not isinstance(args, dict):
        fail(f"traceEvents[{i}] args must be an object")


def self_test() -> int:
    """Round-trips a synthetic trace through the validator: a clean file must
    pass quietly, a dropped-events file must warn, and a malformed event must
    fail. Exercised under ctest so the tool can't rot silently."""
    import io
    import tempfile

    def run(doc, argv_extra=()):
        with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as f:
            json.dump(doc, f)
            path = f.name
        old_err, sys.stderr = sys.stderr, io.StringIO()
        old_out, sys.stdout = sys.stdout, io.StringIO()
        code = 0
        try:
            code = check(path, quiet=True, max_dropped=None)
        except SystemExit as e:
            code = e.code if isinstance(e.code, int) else 1
        finally:
            err = sys.stderr.getvalue()
            sys.stderr = old_err
            sys.stdout = old_out
        return code, err

    span = {"name": "solve", "cat": "fptas", "ph": "X",
            "pid": 1, "tid": 1, "ts": 0, "dur": 5}
    clean = {"traceEvents": [span], "otherData": {"dropped_events": 0}}
    code, err = run(clean)
    assert code == 0 and "WARNING" not in err, (code, err)

    dropped = {"traceEvents": [span], "otherData": {"dropped_events": 7}}
    code, err = run(dropped)
    assert code == 0 and "WARNING" in err and "7" in err, (code, err)

    bad = {"traceEvents": [{"name": "x", "cat": "c", "ph": "?",
                            "pid": 1, "tid": 1, "ts": 0}],
           "otherData": {"dropped_events": 0}}
    code, err = run(bad)
    assert code == 1 and "INVALID" in err, (code, err)

    print("trace_summary self-test: OK")
    return 0


def main() -> int:
    if "--self-test" in sys.argv[1:]:
        return self_test()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument("--quiet", action="store_true", help="validate only, no table")
    parser.add_argument(
        "--max-dropped",
        type=int,
        default=None,
        help="fail if more than this many events were dropped",
    )
    opts = parser.parse_args()
    return check(opts.trace, quiet=opts.quiet, max_dropped=opts.max_dropped)


def check(trace: str, quiet: bool, max_dropped) -> int:
    class Opts:
        pass
    opts = Opts()
    opts.trace = trace
    opts.quiet = quiet
    opts.max_dropped = max_dropped

    try:
        with open(opts.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {opts.trace}: {e}")

    if not isinstance(doc, dict):
        fail("top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("missing traceEvents list")
    other = doc.get("otherData", {})
    if not isinstance(other, dict):
        fail("otherData is not an object")
    dropped = other.get("dropped_events", 0)
    if not isinstance(dropped, int) or dropped < 0:
        fail(f"bad dropped_events {dropped!r}")
    if opts.max_dropped is not None and dropped > opts.max_dropped:
        fail(f"{dropped} events dropped (max allowed {opts.max_dropped})")
    if dropped > 0:
        # The ring overflowed: the file is valid but incomplete, so every
        # count/total below is an undercount. Loud, on stderr, every time.
        print(f"trace_summary: WARNING: {dropped} trace events were dropped "
              f"(ring overflow) — span/instant totals are undercounts",
              file=sys.stderr)

    spans = collections.defaultdict(lambda: {"count": 0, "total_us": 0.0})
    instants = collections.Counter()
    instant_args = collections.defaultdict(float)
    tids = set()
    for i, ev in enumerate(events):
        validate_event(i, ev)
        tids.add(ev["tid"])
        key = (ev["cat"], ev["name"])
        if ev["ph"] == "X":
            spans[key]["count"] += 1
            spans[key]["total_us"] += float(ev["dur"])
        else:
            instants[key] += 1
            for arg, value in (ev.get("args") or {}).items():
                if isinstance(value, (int, float)) and math.isfinite(value):
                    instant_args[key + (arg,)] += value

    print(
        f"{opts.trace}: OK — {len(events)} events "
        f"({sum(s['count'] for s in spans.values())} spans, "
        f"{sum(instants.values())} instants) on {len(tids)} thread(s), "
        f"{dropped} dropped"
    )
    if opts.quiet:
        return 0

    if spans:
        print(f"\n{'category':<12} {'phase':<26} {'count':>7} {'total ms':>10} {'mean ms':>9}")
        for (cat, name), s in sorted(
            spans.items(), key=lambda kv: -kv[1]["total_us"]
        ):
            total_ms = s["total_us"] / 1e3
            mean_ms = total_ms / s["count"]
            print(f"{cat:<12} {name:<26} {s['count']:>7} {total_ms:>10.3f} {mean_ms:>9.4f}")
    if instants:
        print(f"\n{'category':<12} {'instant':<26} {'count':>7}")
        for (cat, name), n in sorted(instants.items(), key=lambda kv: -kv[1]):
            print(f"{cat:<12} {name:<26} {n:>7}")
    if instant_args:
        print(f"\n{'category':<12} {'instant arg':<40} {'sum':>14}")
        for (cat, name, arg), total in sorted(instant_args.items()):
            print(f"{cat:<12} {name + '.' + arg:<40} {total:>14.0f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
