#!/usr/bin/env python3
"""Render a bds-slo-v1 time-series JSONL as a text dashboard.

Usage:
    tools/slo_dashboard.py RUN.jsonl [--series NAME] [--width N]
    tools/slo_dashboard.py --self-test

RUN.jsonl is the file written by SloTimeseries::WriteJsonl (steady-state runs
with `quickstart --slo-json=...`). The dashboard prints one row per series —
min / mean / max / last plus a unicode sparkline over the retained window —
followed by the burn-rate alert log with fire and clear times. Series whose
ring wrapped are marked with the number of dropped (oldest) samples.

`--series NAME` dumps one series as `t value` pairs for plotting.
"""

import argparse
import json
import sys

SPARKS = " ▁▂▃▄▅▆▇█"


def fail(msg):
    print(f"slo_dashboard: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    meta = None
    series = []
    alerts = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            for i, line in enumerate(f):
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except json.JSONDecodeError as e:
                    fail(f"{path}:{i + 1}: not JSON: {e}")
                kind = rec.get("kind")
                if kind == "meta":
                    if rec.get("schema") != "bds-slo-v1":
                        fail(f"{path}: unsupported schema {rec.get('schema')!r}")
                    meta = rec
                elif kind == "series":
                    series.append(rec)
                elif kind == "alert":
                    alerts.append(rec)
                else:
                    fail(f"{path}:{i + 1}: unknown kind {kind!r}")
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    if meta is None:
        fail(f"{path}: missing bds-slo-v1 meta line")
    return meta, series, alerts


def sparkline(values, width):
    if not values:
        return ""
    # Downsample by max within each bucket: spikes are the point of a
    # dashboard, so they must survive the shrink.
    if len(values) > width:
        bucket = len(values) / width
        values = [max(values[int(i * bucket):max(int(i * bucket) + 1,
                                                 int((i + 1) * bucket))])
                  for i in range(width)]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0.0:
        return SPARKS[1] * len(values)
    return "".join(
        SPARKS[1 + int((v - lo) / span * (len(SPARKS) - 2))] for v in values)


def fmt(v):
    if v == 0:
        return "0"
    if abs(v) >= 1e5 or abs(v) < 1e-3:
        return f"{v:.3g}"
    return f"{v:.3f}".rstrip("0").rstrip(".")


def fmt_t(t):
    if t >= 3600:
        return f"{t / 3600:.2f}h"
    if t >= 60:
        return f"{t / 60:.1f}m"
    return f"{t:.0f}s"


def dashboard(meta, series, alerts, width):
    dt = meta.get("dt", 0)
    print(f"bds-slo-v1: {meta.get('samples')} samples @ dt={fmt(dt)}s "
          f"(capacity {meta.get('capacity')}), SLO: {meta.get('objective')} of "
          f"transfers within {meta.get('slo_minutes')} min, burn threshold "
          f"{meta.get('burn_threshold')}x over {fmt_t(meta.get('fast_window', 0))}"
          f"/{fmt_t(meta.get('slow_window', 0))} windows")
    print(f"\n{'series':<20} {'min':>10} {'mean':>10} {'max':>10} {'last':>10}"
          f"  trend")
    for s in sorted(series, key=lambda s: s["name"]):
        vals = s.get("values", [])
        if not vals:
            continue
        mark = f" (-{s['dropped']})" if s.get("dropped", 0) > 0 else ""
        print(f"{s['name'] + mark:<20} {fmt(min(vals)):>10} "
              f"{fmt(sum(vals) / len(vals)):>10} {fmt(max(vals)):>10} "
              f"{fmt(vals[-1]):>10}  {sparkline(vals, width)}")

    print(f"\nalerts: {len(alerts)}")
    for a in alerts:
        cleared = (f"cleared {fmt_t(a['cleared_at'])}"
                   if a.get("cleared_at", -1.0) >= 0.0 else "STILL ACTIVE")
        print(f"  fired {fmt_t(a.get('fired_at', 0.0))} "
              f"(sample {a.get('fired_sample')}), {cleared}: "
              f"burn_fast={a.get('burn_fast', 0.0):.2f} "
              f"burn_slow={a.get('burn_slow', 0.0):.2f}")
    return 0


def dump_series(meta, series, name):
    match = [s for s in series if s["name"] == name]
    if not match:
        have = ", ".join(sorted(s["name"] for s in series))
        fail(f"no series {name!r} (have: {have})")
    s = match[0]
    dt = meta.get("dt", 1.0)
    first = s.get("first_index", 0)
    for i, v in enumerate(s.get("values", [])):
        print(f"{(first + i) * dt:.1f} {v!r}")
    return 0


def self_test():
    import io
    import tempfile
    lines = [
        {"kind": "meta", "schema": "bds-slo-v1", "dt": 30, "samples": 6,
         "capacity": 4, "slo_minutes": 30, "objective": 0.99,
         "burn_threshold": 2.0, "fast_window": 300, "slow_window": 3600,
         "alerts": 1},
        # Ring of 4 wrapped: first two samples dropped.
        {"kind": "series", "name": "burn_fast", "first_index": 2,
         "dropped": 2, "values": [0.0, 2.5, 3.0, 1.0]},
        {"kind": "series", "name": "active_flows", "first_index": 2,
         "dropped": 2, "values": [5, 5, 5, 5]},
        {"kind": "alert", "fired_at": 120.0, "cleared_at": 150.0,
         "fired_sample": 4, "burn_fast": 3.0, "burn_slow": 2.2},
    ]
    with tempfile.NamedTemporaryFile("w", suffix=".jsonl", delete=False) as f:
        for line in lines:
            f.write(json.dumps(line) + "\n")
        path = f.name

    meta, series, alerts = load(path)
    assert len(series) == 2 and len(alerts) == 1

    out, sys.stdout = sys.stdout, io.StringIO()
    try:
        dashboard(meta, series, alerts, width=40)
        text = sys.stdout.getvalue()
    finally:
        sys.stdout = out
    for needle in ("6 samples", "burn_fast (-2)", "alerts: 1",
                   "fired 2.0m", "cleared 2.5m", "burn_fast=3.00"):
        assert needle in text, f"missing {needle!r} in:\n{text}"
    # Flat series renders a flat sparkline; varying one does not.
    flat = [l for l in text.splitlines() if l.startswith("active_flows")][0]
    vary = [l for l in text.splitlines() if l.startswith("burn_fast")][0]
    assert len(set(flat.split()[-1])) == 1, flat
    assert len(set(vary.split()[-1])) > 1, vary

    assert sparkline([], 10) == ""
    assert len(sparkline(list(range(100)), 10)) == 10
    assert sparkline([1.0, 1.0], 10) == SPARKS[1] * 2

    out, sys.stdout = sys.stdout, io.StringIO()
    try:
        dump_series(meta, series, "burn_fast")
        text = sys.stdout.getvalue()
    finally:
        sys.stdout = out
    assert text.splitlines()[0] == "60.0 0.0", text  # first_index 2 * dt 30

    print("slo_dashboard self-test: OK")
    return 0


def main():
    if "--self-test" in sys.argv[1:]:
        return self_test()
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("run", help="bds-slo-v1 JSONL file")
    parser.add_argument("--series", help="dump one series as `t value` pairs")
    parser.add_argument("--width", type=int, default=60,
                        help="sparkline width (default 60)")
    opts = parser.parse_args()
    meta, series, alerts = load(opts.run)
    if opts.series:
        return dump_series(meta, series, opts.series)
    return dashboard(meta, series, alerts, opts.width)


if __name__ == "__main__":
    sys.exit(main())
