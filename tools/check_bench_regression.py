#!/usr/bin/env python3
"""Perf-regression gate for the committed benchmark baselines.

Compares a fresh run of a sweep benchmark (``bench_fig11_scalability``,
``bench_sim_hotpath``) against its committed baseline JSON at the repo root
(``BENCH_controller.json``, ``BENCH_simulator.json``) and fails when an
optimization config regressed by more than the threshold (25% by default).
The two files must carry the same ``benchmark`` name.

The comparison is *config-relative*, not absolute: for every (point, config)
the metric is ``seconds[config] / seconds[reference_config]`` within the same
JSON file — how much faster than the knobs-off build that config is. Absolute
wall-clock differs run to run with machine load (we observe ±25% on shared
runners), but the within-run ratio between two configs timed back-to-back in
the same process is stable. A real regression — an optimization losing its
edge — shows up as the fresh ratio exceeding the committed ratio.

Usage:
  check_bench_regression.py --bench ./bench_fig11_scalability \
      --baseline BENCH_controller.json            # run --smoke, then compare
  check_bench_regression.py --fresh out.json --baseline BENCH_controller.json
  check_bench_regression.py --bench ... --baseline ... --update
      # rewrite the baseline from a fresh *full* sweep instead of comparing
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

DEFAULT_THRESHOLD = 0.25
# Config-relative ratios of points whose reference run is shorter than this
# (seconds) are dominated by timer resolution and process-startup jitter, not
# by the code under test — they are printed but not gated.
DEFAULT_MIN_RUNTIME = 0.002
# "large_points" (incremental-only scale points, no in-file reference config
# to normalize by) are gated on absolute CPU seconds instead. Shared runners
# show ±50% wall noise at these sizes, so only a >2x slowdown — an order-of-
# magnitude regression territory, e.g. the SoA hot path losing its edge —
# fails the gate.
DEFAULT_LARGE_THRESHOLD = 1.0
# The knobs-off config every other config is normalized by, when the JSON
# does not name one via its "reference_config" field.
DEFAULT_REFERENCE_CONFIG = "baseline"
# Steady-state baselines (``BENCH_steady.json``, stamped ``"mode":
# "steady"``) are gated differently: every column is
# simulation-deterministic (fixed seeds, modeled cycle costs — no wall
# clock), so instead of timing ratios the gate compares the service-level
# metrics per load-factor point against tight tolerances. Fingerprints are
# printed for drift diagnosis but not gated bitwise: an intentional
# algorithm change legitimately moves them, and the metric tolerances are
# the behavioural contract.
STEADY_METRICS = {
    # metric -> (absolute floor, relative tolerance vs committed value)
    "completed": (25, 0.15),
    "rejected": (25, 0.15),
    "overrun_cycles": (25, 0.15),
    "p99_minutes": (2.0, 0.15),
}

# Only gate (point, config) pairs whose committed relative time shows the
# optimization had a *strong* edge there (e.g. the all-knobs config and the
# incremental FPTAS, at ~0.4-0.6x of the reference). A config near 1.0x of
# the reference (the path cache alone at 10^4 blocks, the thread pool on a
# 1-core runner) has nothing to regress and its ratio is dominated by
# measurement noise — gating it produces flaky failures, not signal. For the
# strong-edge configs a real regression (the optimization breaking or losing
# its edge) moves the ratio toward 1.0 — a +70-150% jump, far beyond both
# noise and the threshold.
EDGE_CUTOFF = 0.7

# Amortized (cross-cycle) gates for the "steady_cycles" section written by
# bench_fig11_scalability: N consecutive cycles of one long-lived controller
# with ~5% job churn, warm start and contended-group splitting on. Two
# families of checks:
#  - Within-run invariants, gated at any scale: every post-cold cycle must
#    actually warm-start (warm_solves == cycles - 1), and the amortized warm
#    cycle must beat the cold cycle of the SAME run by at least this ratio.
#    Comparing warm to cold inside one process cancels machine-speed noise
#    the same way the config-relative sweep ratios do.
#  - Absolute checks, gated only when the committed and fresh runs used the
#    same block count (a smoke run shrinks the workload, which legitimately
#    moves reuse and CPU): warm CPU vs the committed value under the
#    large-point threshold, and a floor under the candidate reuse rate.
WARM_OVER_COLD_MAX = 0.95
# Reuse rate is workload-determined (same churn schedule every run), so it
# barely moves between runs; 5 points absolute absorbs hash-ordering drift.
REUSE_RATE_SLACK = 0.05


def load(path):
    with open(path) as f:
        data = json.load(f)
    if not data.get("benchmark"):
        raise SystemExit(f"{path}: missing 'benchmark' name")
    # A --large-only run legitimately carries only "large_points".
    if not data.get("points") and not data.get("large_points"):
        raise SystemExit(f"{path}: no sweep points")
    return data


def reference_config(data):
    return data.get("reference_config", DEFAULT_REFERENCE_CONFIG)


def point_size(point):
    """The sweep axis: 'blocks' for the controller bench, 'flows' for the
    simulator bench."""
    size = point.get("blocks", point.get("flows"))
    if size is None:
        raise SystemExit(f"point {point}: no 'blocks'/'flows' size key")
    return size


def relative_times(data, key):
    """{(size, config): t[config] / t[reference]} for time field `key`."""
    ref_config = reference_config(data)
    out = {}
    for point in data.get("points", []):
        seconds = point[key]
        ref = seconds.get(ref_config)
        if not ref or ref <= 0:
            raise SystemExit(f"point {point_size(point)}: missing '{ref_config}' time")
        for config, secs in seconds.items():
            out[(point_size(point), config)] = secs / ref
    return out


def absolute_times(data, key):
    """{(size, config): t[config]} for time field `key` (min-runtime floor)."""
    out = {}
    for point in data.get("points", []):
        for config, secs in point[key].items():
            out[(point_size(point), config)] = secs
    return out


def time_field(*datas):
    """Gate on CPU time when both files carry it (deterministic work -> stable
    CPU time even on a contended runner); fall back to wall seconds."""
    if all(all("cpu_seconds" in p for p in d.get("points", [])) for d in datas):
        return "cpu_seconds"
    return "seconds"


def compare_large(baseline_data, fresh_data, threshold):
    """Absolute-CPU gate for the incremental-only 'large_points' family
    (no in-file reference config to normalize by). Returns (compared,
    failures) where failures is a list of (size, committed, fresh, delta).
    Points present in only one file — e.g. a smoke run scales 10^6 down to
    10^5 — are skipped."""
    base = {p["flows"]: p for p in baseline_data.get("large_points", [])}
    fresh = {p["flows"]: p for p in fresh_data.get("large_points", [])}
    common = sorted(set(base) & set(fresh))
    failures = []
    if not common:
        return 0, failures
    print(f"\nlarge points (absolute cpu_seconds, incremental only):")
    print(f"{'flows':>10}  {'committed':>10}  {'fresh':>10}  {'delta':>7}")
    for size in common:
        was = base[size].get("cpu_seconds", base[size].get("seconds"))
        now = fresh[size].get("cpu_seconds", fresh[size].get("seconds"))
        delta = now / was - 1.0
        flag = ""
        if delta > threshold:
            failures.append((size, was, now, delta))
            flag = "  REGRESSION"
        print(f"{size:>10}  {was:>10.3f}  {now:>10.3f}  {delta:>+6.1%}{flag}")
    return len(common), failures


TELEMETRY_OVERHEAD_MAX = 1.03


def compare_telemetry_overhead(fresh_data):
    """Gate on the all-on telemetry tax measured by the bench itself: the
    fresh run's telemetry_overhead.ratio (instrumented / off CPU on the
    1e5-flow incremental drain) must stay within TELEMETRY_OVERHEAD_MAX.
    This is a fresh-run-only absolute gate — the contract is a property of
    the code, not a comparison against the committed numbers. Returns
    (compared, failures)."""
    section = fresh_data.get("telemetry_overhead")
    if not section:
        return 0, []
    ratio = section.get("ratio", 1.0)
    off = section.get("off_cpu_seconds", 0.0)
    on = section.get("on_cpu_seconds", 0.0)
    flag = ""
    failures = []
    if ratio > TELEMETRY_OVERHEAD_MAX:
        failures.append((section.get("flows", 0), off, on, ratio))
        flag = "  REGRESSION"
    print(f"\ntelemetry overhead (all-on vs off, {section.get('flows', 0)} flows):")
    print(f"  off {off * 1e3:.1f} ms, on {on * 1e3:.1f} ms, ratio {ratio:.3f}x "
          f"(max {TELEMETRY_OVERHEAD_MAX:.2f}x){flag}")
    return 1, failures


def compare_amortized(baseline_data, fresh_data, threshold):
    """Cross-cycle gate for the "steady_cycles" section (see the comment on
    WARM_OVER_COLD_MAX). Returns (compared, failures) where failures is a
    list of human-readable strings. Runs whenever both files carry the
    section; absolute checks only when the block counts match."""
    base = baseline_data.get("steady_cycles")
    fresh = fresh_data.get("steady_cycles")
    if not base or not fresh:
        return 0, []
    failures = []
    compared = 0
    print("\nsteady cycles (cross-cycle amortization):")

    def check(name, value, ok, detail):
        nonlocal compared
        compared += 1
        flag = ""
        if not ok:
            failures.append(f"{name}: {detail}")
            flag = "  REGRESSION"
        print(f"  {name:>24}  {value}{flag}")

    cycles = fresh.get("cycles", 0)
    warm_solves = fresh.get("warm_solves", -1)
    check("warm_solves", f"{warm_solves}/{cycles - 1}",
          warm_solves == cycles - 1,
          f"only {warm_solves} of {cycles - 1} post-cold cycles warm-started")
    cold = fresh.get("cold_cpu_seconds", 0.0)
    warm = fresh.get("warm_cpu_seconds", 0.0)
    ratio = warm / cold if cold > 0 else float("inf")
    check("warm/cold cpu", f"{ratio:.3f} (max {WARM_OVER_COLD_MAX})",
          ratio <= WARM_OVER_COLD_MAX,
          f"amortized warm cycle {warm:.3f}s vs cold {cold:.3f}s "
          f"({ratio:.2f}x; warm cycles lost their edge)")

    if base.get("blocks") != fresh.get("blocks"):
        print(f"  (committed run at {base.get('blocks')} blocks, fresh at "
              f"{fresh.get('blocks')}; absolute checks skipped)")
        return compared, failures

    was, now = base.get("warm_cpu_seconds", 0.0), warm
    delta = now / was - 1.0 if was > 0 else float("inf")
    check("warm cpu_seconds", f"{was:.3f} -> {now:.3f} ({delta:+.1%})",
          delta <= threshold,
          f"amortized warm CPU {was:.3f}s -> {now:.3f}s ({delta:+.1%})")
    was, now = base.get("reuse_rate", 0.0), fresh.get("reuse_rate", 0.0)
    check("reuse_rate", f"{was:.3f} -> {now:.3f}",
          now >= was - REUSE_RATE_SLACK,
          f"candidate reuse rate fell {was:.3f} -> {now:.3f}")
    if base.get("phases_skipped", 0) > 0:
        now = fresh.get("phases_skipped", 0)
        check("phases_skipped", f"{now}", now > 0,
              "warm start no longer skips any FPTAS phases")
    return compared, failures


def run_bench(bench, smoke):
    fd, path = tempfile.mkstemp(suffix=".json", prefix="bench_fresh_")
    os.close(fd)
    # --sweep-only keeps the full point set but skips the google-benchmark
    # section, so a regenerated baseline is timed under the same process
    # conditions as the smoke runs it will gate.
    cmd = [bench, f"--json={path}", "--smoke" if smoke else "--sweep-only"]
    print("+", " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True)
    return path


def compare_steady(baseline_data, fresh_data):
    """Tolerance gate for the deterministic steady-state sweep. Returns the
    number of out-of-tolerance (point, metric) pairs."""
    baseline_points = {p["load_factor"]: p for p in baseline_data["points"]}
    fresh_points = {p["load_factor"]: p for p in fresh_data["points"]}
    common = sorted(set(baseline_points) & set(fresh_points))
    if not common:
        raise SystemExit("steady mode: no common load_factor points")

    failures = []
    compared = 0
    print(f"{'load':>6}  {'metric':>16}  {'committed':>10}  {'fresh':>10}  {'allowed':>8}")
    for load in common:
        base, fresh = baseline_points[load], fresh_points[load]
        for metric, (abs_floor, rel_tol) in STEADY_METRICS.items():
            if metric not in base or metric not in fresh:
                continue
            was, now = base[metric], fresh[metric]
            allowed = max(abs_floor, rel_tol * abs(was))
            delta = abs(now - was)
            compared += 1
            flag = ""
            if delta > allowed:
                failures.append((load, metric, was, now, allowed))
                flag = "  REGRESSION"
            print(f"{load:>6.2f}  {metric:>16}  {was:>10.3f}  {now:>10.3f}"
                  f"  {allowed:>8.3f}{flag}")
        if base.get("fingerprint") != fresh.get("fingerprint"):
            print(f"{load:>6.2f}  {'fingerprint':>16}  {base.get('fingerprint')} -> "
                  f"{fresh.get('fingerprint')}  (informational, not gated)")

    if compared == 0:
        print("error: no gateable steady metrics common to the two files",
              file=sys.stderr)
        return 2
    if failures:
        print(f"\n{len(failures)} steady metric(s) out of tolerance:", file=sys.stderr)
        for load, metric, was, now, allowed in failures:
            print(f"  load {load}: {metric} {was} -> {now} (allowed ±{allowed:.3f})",
                  file=sys.stderr)
        return 1
    print(f"\nOK: {compared} steady metrics within tolerance of the committed baseline")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument("--bench", help="bench binary to run for fresh numbers")
    parser.add_argument("--fresh", help="pre-generated fresh JSON (instead of --bench)")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed relative slowdown (default 0.25 = 25%%)")
    parser.add_argument("--min-runtime", type=float, default=DEFAULT_MIN_RUNTIME,
                        help="skip (point, config) pairs whose absolute time in "
                             "either file is below this many seconds "
                             f"(default {DEFAULT_MIN_RUNTIME})")
    parser.add_argument("--large-threshold", type=float, default=DEFAULT_LARGE_THRESHOLD,
                        help="allowed absolute-CPU slowdown for 'large_points' "
                             f"(default {DEFAULT_LARGE_THRESHOLD} = 100%%)")
    parser.add_argument("--full", action="store_true",
                        help="run the full sweep instead of --smoke")
    parser.add_argument("--update", action="store_true",
                        help="rewrite --baseline from a fresh full sweep")
    args = parser.parse_args()

    if args.update:
        if not args.bench:
            parser.error("--update requires --bench")
        path = run_bench(args.bench, smoke=False)
        os.replace(path, args.baseline)
        print(f"baseline updated: {args.baseline}")
        return 0

    if bool(args.bench) == bool(args.fresh):
        parser.error("exactly one of --bench / --fresh is required")
    fresh_path = args.fresh or run_bench(args.bench, smoke=not args.full)

    baseline_data = load(args.baseline)
    fresh_data = load(fresh_path)
    if baseline_data["benchmark"] != fresh_data["benchmark"]:
        raise SystemExit(f"benchmark mismatch: baseline is "
                         f"'{baseline_data['benchmark']}', fresh run is "
                         f"'{fresh_data['benchmark']}'")
    # The committed baselines time the telemetry-off fast path. A fresh run
    # stamped telemetry_enabled=true timed the instrumented path instead —
    # the comparison would be apples-to-oranges, and a quietly-enabled
    # registry in the bench harness is itself a bug worth failing on.
    if fresh_data.get("telemetry_enabled", False):
        raise SystemExit(f"{fresh_path}: fresh run had telemetry enabled; "
                         "bench timings must be taken with telemetry off")
    # The flight recorder is held to the same contract: the gated sweep points
    # must time the recorder-off fast path (the telemetry_overhead section is
    # the one place the instrumented path is measured, deliberately).
    if fresh_data.get("flight_recorder_enabled", False):
        raise SystemExit(f"{fresh_path}: fresh run had the flight recorder "
                         "enabled; bench timings must be taken with it off")
    # Same reasoning for warm start: the sweep sections time the cold path
    # (steady_cycles carries its own in-section warm_start stamp), so a
    # header-level warm_start=true means the harness quietly warmed the
    # sweep timings and the comparison is invalid.
    if fresh_data.get("warm_start", False) != baseline_data.get("warm_start", False):
        raise SystemExit(f"{fresh_path}: 'warm_start' header stamp differs from "
                         "the baseline; sweep timings are not comparable")
    if baseline_data.get("mode") == "steady" or fresh_data.get("mode") == "steady":
        if baseline_data.get("mode") != fresh_data.get("mode"):
            raise SystemExit("mode mismatch: one file is a steady-state sweep "
                             "and the other is a timing sweep")
        return compare_steady(baseline_data, fresh_data)
    ref_config = reference_config(baseline_data)
    field = time_field(baseline_data, fresh_data)
    print(f"comparing '{field}' ratios vs '{ref_config}'")
    committed = relative_times(baseline_data, field)
    fresh = relative_times(fresh_data, field)
    committed_abs = absolute_times(baseline_data, field)
    fresh_abs = absolute_times(fresh_data, field)

    # Collect the per-point relative times of every config present in both
    # files, then gate on the MEDIAN across points. A real regression — an
    # optimization breaking or losing its edge — moves every point's ratio
    # toward 1.0 at once; single-point excursions are measurement noise.
    # Points whose absolute runtime in either file sits below the min-runtime
    # floor are printed but excluded: a ratio of two sub-millisecond timings
    # measures the scheduler, not the code.
    per_config = {}
    floored = 0
    print(f"{'size':>10}  {'config':>20}  {'committed':>9}  {'fresh':>9}  {'delta':>7}")
    for key in sorted(fresh):
        if key not in committed or key[1] == ref_config:
            continue
        was, now = committed[key], fresh[key]
        ref_key = (key[0], ref_config)
        below_floor = any(abs_times.get(k, 0.0) < args.min_runtime
                          for abs_times in (committed_abs, fresh_abs)
                          for k in (key, ref_key))
        note = ""
        if below_floor:
            floored += 1
            note = "  (below min-runtime floor, not gated)"
        print(f"{key[0]:>10}  {key[1]:>20}  {was:>9.3f}  {now:>9.3f}"
              f"  {now / was - 1.0:>+6.1%}{note}")
        if not below_floor:
            per_config.setdefault(key[1], []).append((was, now))
    if floored:
        print(f"({floored} point(s) below the {args.min_runtime * 1e3:.1f} ms floor "
              "excluded from the gate)")

    def median(values):
        values = sorted(values)
        mid = len(values) // 2
        return values[mid] if len(values) % 2 else (values[mid - 1] + values[mid]) / 2

    compared = 0
    failures = []
    print(f"\n{'config':>20}  {'median committed':>16}  {'median fresh':>12}  {'delta':>7}")
    for config, pairs in sorted(per_config.items()):
        was = median([p[0] for p in pairs])
        now = median([p[1] for p in pairs])
        delta = now / was - 1.0
        if was >= EDGE_CUTOFF:
            print(f"{config:>20}  {was:>16.3f}  {now:>12.3f}  {delta:>+6.1%}"
                  "  (not gated: no committed edge)")
            continue
        compared += 1
        flag = ""
        if delta > args.threshold:
            failures.append((config, was, now, delta))
            flag = "  REGRESSION"
        print(f"{config:>20}  {was:>16.3f}  {now:>12.3f}  {delta:>+6.1%}{flag}")

    large_compared, large_failures = compare_large(baseline_data, fresh_data,
                                                   args.large_threshold)
    overhead_compared, overhead_failures = compare_telemetry_overhead(fresh_data)
    amortized_compared, amortized_failures = compare_amortized(
        baseline_data, fresh_data, args.large_threshold)
    if compared == 0 and large_compared == 0 and amortized_compared == 0 \
            and overhead_compared == 0:
        print("error: no gateable configs common to the two files", file=sys.stderr)
        return 2
    if failures:
        print(f"\n{len(failures)} regression(s) beyond {args.threshold:.0%} "
              f"(median config-relative time vs '{ref_config}'):", file=sys.stderr)
        for config, was, now, delta in failures:
            print(f"  {config}: {was:.3f} -> {now:.3f} ({delta:+.1%})", file=sys.stderr)
    if large_failures:
        print(f"\n{len(large_failures)} large-point regression(s) beyond "
              f"{args.large_threshold:.0%} absolute CPU:", file=sys.stderr)
        for size, was, now, delta in large_failures:
            print(f"  {size} flows: {was:.3f}s -> {now:.3f}s ({delta:+.1%})",
                  file=sys.stderr)
    if amortized_failures:
        print(f"\n{len(amortized_failures)} amortized steady-cycle check(s) failed:",
              file=sys.stderr)
        for failure in amortized_failures:
            print(f"  {failure}", file=sys.stderr)
    if overhead_failures:
        print(f"\ntelemetry overhead beyond {TELEMETRY_OVERHEAD_MAX:.2f}x:",
              file=sys.stderr)
        for flows, off, on, ratio in overhead_failures:
            print(f"  {flows} flows: {off:.3f}s off -> {on:.3f}s all-on "
                  f"({ratio:.3f}x)", file=sys.stderr)
    if failures or large_failures or amortized_failures or overhead_failures:
        return 1
    print(f"\nOK: {compared} configs"
          + (f" + {large_compared} large points" if large_compared else "")
          + (f" + {amortized_compared} amortized checks" if amortized_compared else "")
          + (f" + {overhead_compared} overhead check" if overhead_compared else "")
          + f" within tolerance of the committed baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
