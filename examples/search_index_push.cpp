// Search-index push with traffic isolation — the workload class the paper's
// introduction motivates (search indexing is 89.2 % multicast at Baidu,
// Table 1). A fresh index is pushed from the build DC to every serving DC
// while latency-sensitive online traffic rides the same WAN links. BDS's
// dynamic bandwidth separation must keep every link at or below the safety
// threshold the whole time.
//
//   ./search_index_push [--dcs N] [--servers N] [--index-gb X] [--threshold F]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/bds.h"

int main(int argc, char** argv) {
  int dcs = 8;
  int servers = 5;
  double index_gb = 4.0;
  double threshold = 0.8;

  bds::FlagParser flags;
  flags.AddInt("dcs", &dcs, "number of datacenters");
  flags.AddInt("servers", &servers, "servers per datacenter");
  flags.AddDouble("index-gb", &index_gb, "index size in GB");
  flags.AddDouble("threshold", &threshold, "link utilization safety threshold");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  bds::GeoTopologyOptions topo_options;
  topo_options.num_dcs = dcs;
  topo_options.servers_per_dc = servers;
  topo_options.server_up = bds::MBps(50.0);
  topo_options.server_down = bds::MBps(50.0);
  topo_options.wan_capacity = bds::Gbps(2.0);
  auto topo = bds::BuildGeoTopology(topo_options);
  if (!topo.ok()) {
    std::fprintf(stderr, "topology: %s\n", topo.status().ToString().c_str());
    return 1;
  }

  bds::BdsOptions options;
  options.safety_threshold = threshold;
  auto service = bds::BdsService::Create(std::move(topo).value(), options);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n", service.status().ToString().c_str());
    return 1;
  }

  // Online serving traffic occupies the WAN around the clock.
  bds::BackgroundTrafficModel::Options bg;
  bg.mean_utilization = 0.35;
  bg.diurnal_amplitude = 0.15;
  (*service)->EnableBackgroundTraffic(bg);

  // Track a few WAN links to verify the threshold holds.
  std::vector<bds::LinkId> tracked;
  for (bds::LinkId l = 0; l < (*service)->topology().num_links() && tracked.size() < 6; ++l) {
    if ((*service)->topology().link(l).type == bds::LinkType::kWan) {
      (*service)->mutable_controller()->mutable_simulator()->TrackLinkUtilization(l);
      tracked.push_back(l);
    }
  }

  // Push the index everywhere.
  std::vector<bds::DcId> dests;
  for (bds::DcId d = 1; d < dcs; ++d) {
    dests.push_back(d);
  }
  auto job = (*service)->CreateJob(0, dests, bds::GB(index_gb), 0.0, "search-indexing");
  if (!job.ok()) {
    std::fprintf(stderr, "job: %s\n", job.status().ToString().c_str());
    return 1;
  }

  auto report = (*service)->Run(/*deadline=*/bds::Hours(2.0));
  if (!report.ok()) {
    std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("Index push: %.1f GB -> %d serving DCs, done in %.1f min (complete=%s)\n",
              index_gb, dcs - 1, bds::ToMinutes(report->completion_time),
              report->completed ? "yes" : "no");

  bds::AsciiTable table({"WAN link", "peak util", "mean util", "threshold breach"});
  bool any_breach = false;
  for (bds::LinkId l : tracked) {
    const bds::TimeSeries* series =
        (*service)->mutable_controller()->simulator().LinkUtilizationSeries(l);
    if (series == nullptr || series->empty()) {
      continue;
    }
    double peak = series->MaxValue();
    bool breach = peak > threshold + 0.02;  // Small slack for online noise.
    any_breach = any_breach || breach;
    const bds::Link& link = (*service)->topology().link(l);
    table.AddRow({"dc" + std::to_string(link.src_dc) + "->dc" + std::to_string(link.dst_dc),
                  bds::AsciiTable::Num(peak, 3), bds::AsciiTable::Num(series->MeanValue(), 3),
                  breach ? "YES" : "no"});
  }
  table.Print();
  std::printf("Latency-sensitive traffic %s protected.\n",
              any_breach ? "was NOT always" : "stayed");
  return report->completed && !any_breach ? 0 : 2;
}
