// Trace-driven replay — the evaluation methodology of §6.1: synthesize a
// Baidu-like inter-DC transfer trace, pick a slice of its multicast
// transfers, and replay them (scaled to laptop size) through BDS and through
// the Gingko baseline on the same topology, in the same chronological order.
//
//   ./trace_replay [--jobs N] [--dcs N] [--servers N] [--scale X] [--save path.csv]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/bds.h"

int main(int argc, char** argv) {
  int jobs = 5;
  int dcs = 6;
  int servers = 4;
  double scale = 3e-5;  // 1 TB -> 30 MB: keeps the replay to seconds.
  std::string save_path;

  bds::FlagParser flags;
  flags.AddInt("jobs", &jobs, "multicast transfers to replay");
  flags.AddInt("dcs", &dcs, "datacenters in the replay topology");
  flags.AddInt("servers", &servers, "servers per datacenter");
  flags.AddDouble("scale", &scale, "size scale factor applied to the trace");
  flags.AddString("save", &save_path, "optional path to save the generated trace CSV");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  // 1. Synthesize the measurement-window trace (Table 1 / Fig 2 calibrated).
  bds::TraceGeneratorOptions trace_options;
  trace_options.num_dcs = dcs;
  trace_options.num_transfers = jobs;
  trace_options.duration = 60.0 * jobs;  // Compressed arrival timeline.
  bds::TraceGenerator generator(trace_options);
  auto trace = generator.Generate();
  if (!trace.ok()) {
    std::fprintf(stderr, "trace: %s\n", trace.status().ToString().c_str());
    return 1;
  }
  if (!save_path.empty()) {
    if (!trace->SaveCsv(save_path).ok()) {
      std::fprintf(stderr, "warning: could not save trace to %s\n", save_path.c_str());
    } else {
      std::printf("Trace saved to %s\n", save_path.c_str());
    }
  }
  std::vector<bds::MulticastJob> replay = bds::JobsFromTrace(*trace, bds::MB(2.0), scale);
  for (bds::MulticastJob& job : replay) {
    // Each transfer is replayed in isolation (A/B style), so the trace
    // arrival time must not count against either system.
    job.arrival_time = 0.0;
    // Keep every job in the paper's regime — long relative to the cycle
    // length — while staying replayable in seconds of wall clock.
    job.total_bytes = std::clamp(job.total_bytes, bds::MB(200.0), bds::MB(1500.0));
  }

  // 2. Same topology for both systems.
  bds::GeoTopologyOptions topo_options;
  topo_options.num_dcs = dcs;
  topo_options.servers_per_dc = servers;
  topo_options.server_up = bds::MBps(20.0);
  topo_options.server_down = bds::MBps(20.0);
  auto topo = bds::BuildGeoTopology(topo_options);
  if (!topo.ok()) {
    std::fprintf(stderr, "topology: %s\n", topo.status().ToString().c_str());
    return 1;
  }
  auto routing = bds::WanRoutingTable::Build(*topo, 3);
  if (!routing.ok()) {
    std::fprintf(stderr, "routing: %s\n", routing.status().ToString().c_str());
    return 1;
  }

  // 3. Replay each transfer through both systems (independently, as in the
  //    paper's per-transfer A/B comparisons).
  bds::BdsOptions bds_options;
  bds_options.cycle_length = 1.0;
  bds::BdsStrategy bds_strategy(bds_options);
  bds::GingkoStrategy gingko;

  bds::AsciiTable table(
      {"job", "app", "size (MB)", "dests", "BDS (s)", "Gingko (s)", "speedup"});
  double speedup_sum = 0.0;
  int completed = 0;
  for (const bds::MulticastJob& job : replay) {
    auto b = bds_strategy.Run(*topo, *routing, job, /*seed=*/7, bds::Hours(1.0));
    auto g = gingko.Run(*topo, *routing, job, /*seed=*/7, bds::Hours(1.0));
    if (!b.ok() || !g.ok() || !b->completed || !g->completed) {
      continue;
    }
    double speedup = g->completion_time / std::max(1e-9, b->completion_time);
    speedup_sum += speedup;
    ++completed;
    table.AddRow({std::to_string(job.id), job.app_type,
                  bds::AsciiTable::Num(job.total_bytes / 1e6, 1),
                  std::to_string(job.dest_dcs.size()), bds::AsciiTable::Num(b->completion_time, 1),
                  bds::AsciiTable::Num(g->completion_time, 1), bds::AsciiTable::Num(speedup, 2)});
  }
  table.Print();
  if (completed > 0) {
    std::printf("Mean speedup over Gingko across %d transfers: %.2fx\n", completed,
                speedup_sum / completed);
  }
  return completed > 0 ? 0 : 2;
}
