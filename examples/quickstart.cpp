// Quickstart: replicate one bulk file from a source DC to three destination
// DCs over a small geo-distributed deployment, and print what happened.
//
//   ./quickstart [--dcs N] [--servers N] [--size-gb X] [--cycle S] [--verbose]
//               [--threads N] [--shards K] [--warm-start] [--split-contended]
//               [--duration S] [--arrival-rate JOBS_PER_HOUR]
//               [--trace-json PATH] [--summary-jsonl PATH]
//               [--flight-recorder PATH] [--timeseries-dt S] [--slo-json PATH]
//
// --threads and --shards exercise the fleet-scale controller (DESIGN.md
// "Sharded controller"); either may be raised without changing any decision.
// --warm-start and --split-contended are the relaxed-parity cross-cycle
// knobs (DESIGN.md §9.7): still deterministic, no longer bitwise-equal to
// the cold/unsharded solve.
//
// With --duration the one-shot job is replaced by the long-running service
// mode (DESIGN.md "Overload and graceful degradation"): open-loop arrivals
// at --arrival-rate jobs/hour for that many simulated seconds, with
// admission control, the cycle-deadline watchdog, and bounded-memory
// retirement, e.g.
//
//   ./quickstart --duration=7200 --arrival-rate=600
//
// With --trace-json the run is recorded and exported as Chrome trace_event
// JSON — open it in chrome://tracing or https://ui.perfetto.dev, or validate
// and summarise it with tools/trace_summary.py.
//
// With --flight-recorder the per-transfer lifecycle journal (arrival,
// admission verdict, per-cycle schedule, rate changepoints, fault hits,
// completion) is written as bds-flight-v1 JSONL — explain one transfer with
// tools/bds_explain.py. With --timeseries-dt (steady-state mode only) the
// simulated-time SLO sampler runs at that cadence and --slo-json exports the
// bds-slo-v1 series for tools/slo_dashboard.py.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/bds.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"

int main(int argc, char** argv) {
  int dcs = 5;
  int servers = 4;
  double size_gb = 2.0;
  double cycle = 3.0;
  int threads = 1;
  int shards = 1;
  bool warm_start = false;
  bool split_contended = false;
  double duration = 0.0;
  double arrival_rate = 600.0;
  bool verbose = false;
  std::string trace_json;
  std::string summary_jsonl;
  std::string flight_recorder;
  double timeseries_dt = 0.0;
  std::string slo_json;

  bds::FlagParser flags;
  flags.AddInt("dcs", &dcs, "number of datacenters (>= 2)");
  flags.AddInt("servers", &servers, "servers per datacenter");
  flags.AddDouble("size-gb", &size_gb, "bulk data size in GB");
  flags.AddDouble("cycle", &cycle, "controller update cycle in seconds");
  flags.AddInt("threads", &threads, "controller worker threads");
  flags.AddInt("shards", &shards, "controller shards (selection + FPTAS groups)");
  flags.AddBool("warm-start", &warm_start,
                "seed each cycle's routing FPTAS from the previous cycle (relaxed parity)");
  flags.AddBool("split-contended", &split_contended,
                "split contended FPTAS commodity groups across shards (relaxed parity)");
  flags.AddDouble("duration", &duration,
                  "steady-state mode: simulated seconds of open-loop arrivals (0 = one-shot)");
  flags.AddDouble("arrival-rate", &arrival_rate, "steady-state mode: jobs per hour");
  flags.AddBool("verbose", &verbose, "enable info logging");
  flags.AddString("trace-json", &trace_json, "write a Chrome trace_event JSON file here");
  flags.AddString("summary-jsonl", &summary_jsonl, "write a JSONL metrics summary here");
  flags.AddString("flight-recorder", &flight_recorder,
                  "write the per-transfer flight-recorder JSONL here");
  flags.AddDouble("timeseries-dt", &timeseries_dt,
                  "steady-state mode: SLO sampler cadence in simulated seconds (0 = off)");
  flags.AddString("slo-json", &slo_json, "steady-state mode: write the SLO time-series here");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }
  if (verbose) {
    bds::SetLogLevel(bds::LogLevel::kInfo);
  }
  const bool tracing = !trace_json.empty() || !summary_jsonl.empty();
  if (tracing) {
    // Turns on the metrics registry too; the run's counters and latency
    // histograms land on RunReport::telemetry.
    bds::telemetry::TraceRecorder::Global().Start();
  }
  if (!flight_recorder.empty()) {
    bds::telemetry::FlightRecorder::Global().Start();
  }

  // 1. Describe the infrastructure. BuildGeoTopology gives a Baidu-like
  //    deployment: ring backbone + extra WAN links, heterogeneous capacities.
  bds::GeoTopologyOptions topo_options;
  topo_options.num_dcs = dcs;
  topo_options.servers_per_dc = servers;
  topo_options.server_up = bds::MBps(40.0);
  topo_options.server_down = bds::MBps(40.0);
  auto topo = bds::BuildGeoTopology(topo_options);
  if (!topo.ok()) {
    std::fprintf(stderr, "topology: %s\n", topo.status().ToString().c_str());
    return 1;
  }
  std::printf("Topology: %s\n", topo->Summary().c_str());

  // 2. Bring up BDS.
  bds::BdsOptions options;
  options.cycle_length = cycle;
  options.num_threads = std::max(1, threads);
  options.num_shards = std::max(1, shards);
  options.warm_start = warm_start;
  options.split_contended = split_contended;
  auto service = bds::BdsService::Create(std::move(topo).value(), options);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n", service.status().ToString().c_str());
    return 1;
  }

  // Writes the requested trace/summary artifacts; shared by both run modes.
  auto finish_tracing = [&](const bds::telemetry::MetricsSnapshot& metrics) {
    if (!tracing) {
      return true;
    }
    auto& recorder = bds::telemetry::TraceRecorder::Global();
    recorder.Stop();
    if (!trace_json.empty()) {
      auto status = recorder.WriteChromeTrace(trace_json);
      if (!status.ok()) {
        std::fprintf(stderr, "trace: %s\n", status.ToString().c_str());
        return false;
      }
      std::printf("Wrote %zu trace events (%zu dropped) to %s\n", recorder.size(),
                  recorder.dropped(), trace_json.c_str());
    }
    if (!summary_jsonl.empty()) {
      auto status = recorder.WriteRunSummary(summary_jsonl, metrics);
      if (!status.ok()) {
        std::fprintf(stderr, "summary: %s\n", status.ToString().c_str());
        return false;
      }
      std::printf("Wrote metrics summary to %s\n", summary_jsonl.c_str());
    }
    if (verbose) {
      std::printf("%s", metrics.ToString().c_str());
    }
    return true;
  };

  // Writes the flight-recorder journal; shared by both run modes.
  auto finish_flight_recorder = [&]() {
    if (flight_recorder.empty()) {
      return true;
    }
    auto& fr = bds::telemetry::FlightRecorder::Global();
    fr.Stop();
    auto status = fr.WriteJsonl(flight_recorder);
    if (!status.ok()) {
      std::fprintf(stderr, "flight recorder: %s\n", status.ToString().c_str());
      return false;
    }
    std::printf("Wrote %lld transfer journals (%lld events) to %s\n",
                static_cast<long long>(fr.num_transfers()),
                static_cast<long long>(fr.num_events()), flight_recorder.c_str());
    return true;
  };

  // 3a. Steady-state service mode: open-loop arrivals instead of one job.
  if (duration > 0.0) {
    bds::SteadyStateOptions steady;
    steady.duration = duration;
    steady.arrivals.jobs_per_hour = arrival_rate;
    steady.arrivals.size_scale = 1e-6;  // TB-scale trace shapes -> laptop scale.
    steady.admission.enabled = true;
    steady.overload.enabled = true;
    if (timeseries_dt > 0.0 || !slo_json.empty()) {
      steady.timeseries.enabled = true;
      steady.timeseries.sample_dt = timeseries_dt > 0.0 ? timeseries_dt : 60.0;
      steady.timeseries.jsonl_path = slo_json;
    }
    auto steady_report = (*service)->RunSteadyState(steady);
    if (!steady_report.ok()) {
      std::fprintf(stderr, "steady-state run: %s\n",
                   steady_report.status().ToString().c_str());
      return 1;
    }
    std::printf("%s", steady_report->ToString().c_str());
    if (!slo_json.empty() && steady_report->timeseries_samples > 0) {
      std::printf("Wrote SLO time-series (%lld samples, %zu alerts) to %s\n",
                  static_cast<long long>(steady_report->timeseries_samples),
                  steady_report->slo_alerts.size(), slo_json.c_str());
    }
    if (!finish_tracing(steady_report->run.telemetry) || !finish_flight_recorder()) {
      return 1;
    }
    return steady_report->run.stop_reason == bds::StopReason::kAborted ? 2 : 0;
  }

  // 3. Submit a multicast job: DC0 -> {DC1, DC2, DC3}.
  std::vector<bds::DcId> dests;
  for (bds::DcId d = 1; d < std::min(dcs, 4); ++d) {
    dests.push_back(d);
  }
  auto job = (*service)->CreateJob(/*source_dc=*/0, dests, bds::GB(size_gb));
  if (!job.ok()) {
    std::fprintf(stderr, "job: %s\n", job.status().ToString().c_str());
    return 1;
  }

  // 4. Run to completion and report.
  auto report = (*service)->Run();
  if (!report.ok()) {
    std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("Replicated %.1f GB to %zu DCs in %.1f s (%zu cycles)\n", size_gb, dests.size(),
              report->completion_time, report->cycles.size());

  bds::AsciiTable table({"destination DC", "completion (s)"});
  for (const auto& [dc, t] : report->dc_completion) {
    table.AddRow({"dc" + std::to_string(dc), bds::AsciiTable::Num(t, 1)});
  }
  table.Print();

  if (report->feedback_delays.count() > 0) {
    std::printf("Controller feedback loop: median %.0f ms, p90 %.0f ms\n",
                report->feedback_delays.Quantile(0.5) * 1e3,
                report->feedback_delays.Quantile(0.9) * 1e3);
  }

  if (!finish_tracing(report->telemetry) || !finish_flight_recorder()) {
    return 1;
  }
  return report->completed ? 0 : 2;
}
