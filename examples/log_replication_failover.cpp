// Continuous user-log replication under failures (§5.3 / Fig 12a).
//
// A stream of log-batch jobs replicates from the ingest DC to the analytics
// DCs. Mid-run, one agent (server) dies, and later every controller replica
// becomes unreachable for a while — BDS must degrade gracefully to the
// decentralized fallback and recover when the controller returns.
//
//   ./log_replication_failover [--batches N] [--batch-mb X]

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/core/bds.h"

int main(int argc, char** argv) {
  int batches = 4;
  double batch_mb = 400.0;

  bds::FlagParser flags;
  flags.AddInt("batches", &batches, "number of log batches to replicate");
  flags.AddDouble("batch-mb", &batch_mb, "size of each batch in MB");
  if (!flags.Parse(argc, argv)) {
    return 1;
  }

  auto topo = bds::BuildFullMesh(/*num_dcs=*/4, /*servers_per_dc=*/4, bds::Gbps(1.0),
                                 bds::MBps(25.0), bds::MBps(25.0));
  if (!topo.ok()) {
    std::fprintf(stderr, "topology: %s\n", topo.status().ToString().c_str());
    return 1;
  }

  bds::BdsOptions options;
  options.cycle_length = 1.0;
  auto service = bds::BdsService::Create(std::move(topo).value(), options);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n", service.status().ToString().c_str());
    return 1;
  }

  // Log batches arrive every 10 s from the ingest DC (dc0).
  for (int b = 0; b < batches; ++b) {
    auto job = (*service)->CreateJob(0, {1, 2, 3}, bds::MB(batch_mb),
                                     /*start_time=*/10.0 * b, "user-logs");
    if (!job.ok()) {
      std::fprintf(stderr, "job: %s\n", job.status().ToString().c_str());
      return 1;
    }
  }

  // Failure script: an agent dies at t=5 s and is replaced at t=35 s; the
  // controller is unreachable from t=15 s to t=30 s.
  bds::ServerId victim = (*service)->topology().ServersIn(1)[0];
  (*service)->InjectServerFailure(victim, 5.0);
  (*service)->InjectControllerOutage(15.0, 30.0);
  (*service)->InjectServerRecovery(victim, 35.0);

  auto report = (*service)->Run(/*deadline=*/bds::Minutes(30.0));
  if (!report.ok()) {
    std::fprintf(stderr, "run: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("Replicated %d log batches; run ended at %.1f s\n", batches,
              report->completion_time);
  std::printf("(agent s%d failed at 5 s, replaced at 35 s; controller out 15-30 s)\n", victim);

  // Per-cycle delivery counts around the failures, Fig 12a style.
  bds::AsciiTable table({"window (s)", "mode", "deliveries/cycle"});
  auto window = [&](double from, double to) {
    int64_t delivered = 0;
    int64_t cycles = 0;
    bool up = true;
    for (const bds::CycleStats& c : report->cycles) {
      if (c.start_time >= from && c.start_time < to) {
        delivered += c.blocks_delivered;
        up = up && c.controller_up;
        ++cycles;
      }
    }
    table.AddRow({bds::AsciiTable::Num(from, 0) + "-" + bds::AsciiTable::Num(to, 0),
                  up ? "centralized" : "fallback",
                  cycles > 0 ? bds::AsciiTable::Num(static_cast<double>(delivered) /
                                                        static_cast<double>(cycles),
                                                    1)
                             : "-"});
  };
  window(0.0, 5.0);
  window(5.0, 15.0);
  window(15.0, 30.0);
  window(30.0, 45.0);
  table.Print();

  int64_t fallback_deliveries = 0;
  for (const bds::CycleStats& c : report->cycles) {
    if (!c.controller_up) {
      fallback_deliveries += c.blocks_delivered;
    }
  }
  std::printf("Deliveries completed in fallback mode: %lld (graceful degradation)\n",
              static_cast<long long>(fallback_deliveries));

  for (const auto& [job, t] : report->job_completion) {
    std::printf("batch %lld complete at %.1f s\n", static_cast<long long>(job), t);
  }
  return 0;
}
