#include "src/lp/simplex.h"

#include <gtest/gtest.h>

#include "src/lp/lp_problem.h"

namespace bds {
namespace {

TEST(SimplexTest, TrivialSingleVariable) {
  // max x s.t. x <= 5.
  LpProblem lp;
  int x = lp.AddVariable(1.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kLessEqual, 5.0);
  LpSolution s = SolveSimplex(lp);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 5.0, 1e-9);
  EXPECT_NEAR(s.values[0], 5.0, 1e-9);
}

TEST(SimplexTest, ClassicTwoVariable) {
  // max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18. Optimum 36 at (2, 6).
  LpProblem lp;
  int x = lp.AddVariable(3.0);
  int y = lp.AddVariable(5.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kLessEqual, 4.0);
  lp.AddConstraint({{y, 2.0}}, Relation::kLessEqual, 12.0);
  lp.AddConstraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);
  LpSolution s = SolveSimplex(lp);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 36.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<size_t>(x)], 2.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<size_t>(y)], 6.0, 1e-9);
}

TEST(SimplexTest, UpperBoundsRespected) {
  // max x + y s.t. x + y <= 10, x <= 3 (as variable bound), y <= 4.
  LpProblem lp;
  int x = lp.AddVariable(1.0, /*upper_bound=*/3.0);
  int y = lp.AddVariable(1.0, /*upper_bound=*/4.0);
  lp.AddConstraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 10.0);
  LpSolution s = SolveSimplex(lp);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 7.0, 1e-9);
}

TEST(SimplexTest, EqualityConstraint) {
  // max x + 2y s.t. x + y = 4, x <= 3. Optimum: y = 4, x = 0 -> 8.
  LpProblem lp;
  int x = lp.AddVariable(1.0);
  int y = lp.AddVariable(2.0);
  lp.AddConstraint({{x, 1.0}, {y, 1.0}}, Relation::kEqual, 4.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kLessEqual, 3.0);
  LpSolution s = SolveSimplex(lp);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 8.0, 1e-9);
  EXPECT_NEAR(s.values[static_cast<size_t>(y)], 4.0, 1e-9);
}

TEST(SimplexTest, GreaterEqualConstraint) {
  // max -x (i.e. minimize x) s.t. x >= 2. Optimum x = 2.
  LpProblem lp;
  int x = lp.AddVariable(-1.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kGreaterEqual, 2.0);
  LpSolution s = SolveSimplex(lp);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0], 2.0, 1e-9);
  EXPECT_NEAR(s.objective_value, -2.0, 1e-9);
}

TEST(SimplexTest, DetectsInfeasible) {
  // x <= 1 and x >= 3.
  LpProblem lp;
  int x = lp.AddVariable(1.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kLessEqual, 1.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kGreaterEqual, 3.0);
  LpSolution s = SolveSimplex(lp);
  EXPECT_EQ(s.outcome, LpOutcome::kInfeasible);
}

TEST(SimplexTest, DetectsUnbounded) {
  // max x with no constraint binding x.
  LpProblem lp;
  int x = lp.AddVariable(1.0);
  int y = lp.AddVariable(0.0);
  lp.AddConstraint({{y, 1.0}}, Relation::kLessEqual, 1.0);
  (void)x;
  LpSolution s = SolveSimplex(lp);
  EXPECT_EQ(s.outcome, LpOutcome::kUnbounded);
}

TEST(SimplexTest, NegativeRhsNormalized) {
  // max -x s.t. -x <= -2  (i.e. x >= 2).
  LpProblem lp;
  int x = lp.AddVariable(-1.0);
  lp.AddConstraint({{x, -1.0}}, Relation::kLessEqual, -2.0);
  LpSolution s = SolveSimplex(lp);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.values[0], 2.0, 1e-9);
}

TEST(SimplexTest, RepeatedTermsAccumulate) {
  // max x s.t. 0.5x + 0.5x <= 3  -> x <= 3.
  LpProblem lp;
  int x = lp.AddVariable(1.0);
  lp.AddConstraint({{x, 0.5}, {x, 0.5}}, Relation::kLessEqual, 3.0);
  LpSolution s = SolveSimplex(lp);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 3.0, 1e-9);
}

TEST(SimplexTest, DegenerateProblemStillSolves) {
  // Multiple constraints meeting at the optimum (degeneracy).
  LpProblem lp;
  int x = lp.AddVariable(1.0);
  int y = lp.AddVariable(1.0);
  lp.AddConstraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 2.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kLessEqual, 2.0);
  lp.AddConstraint({{y, 1.0}}, Relation::kLessEqual, 2.0);
  lp.AddConstraint({{x, 2.0}, {y, 2.0}}, Relation::kLessEqual, 4.0);
  LpSolution s = SolveSimplex(lp);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, 2.0, 1e-9);
}

TEST(SimplexTest, ZeroObjectiveIsFeasibilityCheck) {
  LpProblem lp;
  int x = lp.AddVariable(0.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kGreaterEqual, 1.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kLessEqual, 2.0);
  LpSolution s = SolveSimplex(lp);
  ASSERT_TRUE(s.optimal());
  EXPECT_GE(s.values[0], 1.0 - 1e-9);
  EXPECT_LE(s.values[0], 2.0 + 1e-9);
}

TEST(SimplexTest, IterationLimitReported) {
  LpProblem lp;
  // A modest problem with an absurdly low iteration cap.
  int x = lp.AddVariable(3.0);
  int y = lp.AddVariable(5.0);
  lp.AddConstraint({{x, 1.0}}, Relation::kLessEqual, 4.0);
  lp.AddConstraint({{y, 2.0}}, Relation::kLessEqual, 12.0);
  lp.AddConstraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);
  SimplexOptions opt;
  opt.max_iterations = 1;
  LpSolution s = SolveSimplex(lp, opt);
  EXPECT_EQ(s.outcome, LpOutcome::kIterationLimit);
}

// Property sweep: transportation-style LPs where the optimum is known to be
// min(total supply, total demand).
class TransportLpTest : public ::testing::TestWithParam<int> {};

TEST_P(TransportLpTest, MaxShipmentEqualsMinOfSupplyDemand) {
  int k = GetParam();
  int suppliers = 2 + k % 3;
  int consumers = 2 + (k / 3) % 3;
  double supply = 10.0 + k;
  double demand = 8.0 + 2.0 * k;

  LpProblem lp;
  std::vector<std::vector<int>> x(static_cast<size_t>(suppliers),
                                  std::vector<int>(static_cast<size_t>(consumers)));
  for (int i = 0; i < suppliers; ++i) {
    for (int j = 0; j < consumers; ++j) {
      x[static_cast<size_t>(i)][static_cast<size_t>(j)] = lp.AddVariable(1.0);
    }
  }
  for (int i = 0; i < suppliers; ++i) {
    std::vector<LpTerm> terms;
    for (int j = 0; j < consumers; ++j) {
      terms.push_back({x[static_cast<size_t>(i)][static_cast<size_t>(j)], 1.0});
    }
    lp.AddConstraint(terms, Relation::kLessEqual, supply / suppliers);
  }
  for (int j = 0; j < consumers; ++j) {
    std::vector<LpTerm> terms;
    for (int i = 0; i < suppliers; ++i) {
      terms.push_back({x[static_cast<size_t>(i)][static_cast<size_t>(j)], 1.0});
    }
    lp.AddConstraint(terms, Relation::kLessEqual, demand / consumers);
  }
  LpSolution s = SolveSimplex(lp);
  ASSERT_TRUE(s.optimal());
  EXPECT_NEAR(s.objective_value, std::min(supply, demand), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TransportLpTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace bds
