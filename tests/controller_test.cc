#include "src/control/controller.h"

#include <gtest/gtest.h>

#include "src/core/options.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

struct Fixture {
  Topology topo;
  WanRoutingTable routing;

  explicit Fixture(int dcs = 3, int servers = 2, Rate nic = MBps(20.0),
                   Rate wan = Gbps(1.0))
      : topo(BuildFullMesh(dcs, servers, wan, nic, nic).value()),
        routing(WanRoutingTable::Build(topo, 3).value()) {}
};

ControllerOptions Defaults() {
  BdsOptions options;
  options.cycle_length = 1.0;
  return ToControllerOptions(options);
}

TEST(BdsControllerTest, EmptyRunTerminatesImmediately) {
  Fixture f;
  BdsController controller(&f.topo, &f.routing, Defaults());
  auto report = controller.Run(/*deadline=*/100.0);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  EXPECT_EQ(report->deliveries, 0);
}

TEST(BdsControllerTest, RejectsInvalidJob) {
  Fixture f;
  BdsController controller(&f.topo, &f.routing, Defaults());
  MulticastJob bad = MakeJob(0, 0, {1}, MB(2.0)).value();
  bad.dest_dcs = {99};
  EXPECT_FALSE(controller.SubmitJob(bad).ok());
}

TEST(BdsControllerTest, SubmitAfterPriorRunsJobsSortedByArrival) {
  Fixture f;
  BdsController controller(&f.topo, &f.routing, Defaults());
  ASSERT_TRUE(controller.SubmitJob(MakeJob(0, 0, {1}, MB(8.0), MB(2.0), 10.0).value()).ok());
  ASSERT_TRUE(controller.SubmitJob(MakeJob(1, 0, {1}, MB(8.0), MB(2.0), 0.0).value()).ok());
  auto report = controller.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  // The job arriving at t=0 must finish before the one arriving at t=10.
  EXPECT_LT(report->job_completion.at(1), report->job_completion.at(0));
}

TEST(BdsControllerTest, CycleStatsAreConsistent) {
  Fixture f;
  BdsController controller(&f.topo, &f.routing, Defaults());
  ASSERT_TRUE(controller.SubmitJob(MakeJob(0, 0, {1, 2}, MB(60.0)).value()).ok());
  auto report = controller.Run();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->completed);
  int64_t total_delivered = 0;
  for (size_t i = 0; i < report->cycles.size(); ++i) {
    const CycleStats& c = report->cycles[i];
    EXPECT_EQ(c.cycle, static_cast<int64_t>(i));
    EXPECT_GE(c.scheduled_blocks, 0);
    EXPECT_GE(c.merged_subtasks, 0);
    EXPECT_LE(c.merged_subtasks, c.scheduled_blocks);
    total_delivered += c.blocks_delivered;
  }
  EXPECT_GT(total_delivered, 0);
}

TEST(BdsControllerTest, WanThresholdNeverExceeded) {
  // With the 80% threshold, bulk rate on any WAN link must stay at or below
  // 0.8 * capacity at every sampled instant — even across cycle overlap.
  Fixture f(3, 4, MBps(50.0), MBps(200.0));  // WAN binds: 4x50 MB/s NICs vs 200 MB/s WAN.
  ControllerOptions options = Defaults();
  options.separation.safety_threshold = 0.8;
  BdsController controller(&f.topo, &f.routing, options);
  for (LinkId l = 0; l < f.topo.num_links(); ++l) {
    if (f.topo.link(l).type == LinkType::kWan) {
      controller.mutable_simulator()->TrackLinkUtilization(l);
    }
  }
  ASSERT_TRUE(controller.SubmitJob(MakeJob(0, 0, {1, 2}, MB(400.0)).value()).ok());
  auto report = controller.Run(Hours(1.0));
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->completed);
  for (LinkId l = 0; l < f.topo.num_links(); ++l) {
    if (f.topo.link(l).type != LinkType::kWan) {
      continue;
    }
    const TimeSeries* series = controller.simulator().LinkUtilizationSeries(l);
    ASSERT_NE(series, nullptr);
    EXPECT_LE(series->MaxValue(), 0.8 + 1e-6) << "link " << l;
  }
}

TEST(BdsControllerTest, OversizedBlocksSpanCyclesAndComplete) {
  // 64 MB blocks with 20 MB/s NICs and 1 s cycles: every transfer must span
  // cycles as an in-flight transfer, and still complete.
  Fixture f;
  ControllerOptions options = Defaults();
  BdsController controller(&f.topo, &f.routing, options);
  ASSERT_TRUE(controller.SubmitJob(MakeJob(0, 0, {1, 2}, MB(256.0), MB(64.0)).value()).ok());
  auto report = controller.Run(Hours(1.0));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
}

TEST(BdsControllerTest, RestallRecreditsDeliveredBlocks) {
  // Tiny restall horizon forces cancel-and-credit churn; whole delivered
  // blocks must be credited, and the job must still finish.
  Fixture f;
  ControllerOptions options = Defaults();
  options.restall_cycles = 1.0;  // Aggressive re-planning.
  BdsController controller(&f.topo, &f.routing, options);
  ASSERT_TRUE(controller.SubmitJob(MakeJob(0, 0, {1, 2}, MB(120.0), MB(8.0)).value()).ok());
  auto report = controller.Run(Hours(1.0));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
}

TEST(BdsControllerTest, AllSourceHoldersFailedStopsCleanly) {
  // Kill every server in the source DC before anything can transfer: the
  // run must terminate (incomplete), not spin to the deadline.
  Fixture f(3, 2);
  ControllerOptions options = Defaults();
  BdsController controller(&f.topo, &f.routing, options);
  MulticastJob job = MakeJob(0, 0, {1, 2}, MB(40.0)).value();
  job.arrival_time = 1.0;
  ASSERT_TRUE(controller.SubmitJob(job).ok());
  for (ServerId s : f.topo.ServersIn(0)) {
    controller.ScheduleServerFailure(s, 0.0);
  }
  auto report = controller.Run(/*deadline=*/3600.0);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->completed);
  EXPECT_LT(report->cycles.size(), 100u);  // Stopped early, not at deadline.
}

TEST(BdsControllerTest, BackgroundTrafficSlowsBulk) {
  Fixture quiet(3, 2, MBps(50.0), MBps(150.0));
  Fixture busy(3, 2, MBps(50.0), MBps(150.0));
  ControllerOptions options = Defaults();

  BdsController c1(&quiet.topo, &quiet.routing, options);
  ASSERT_TRUE(c1.SubmitJob(MakeJob(0, 0, {1, 2}, MB(200.0)).value()).ok());
  auto r1 = c1.Run(Hours(2.0));
  ASSERT_TRUE(r1.ok() && r1->completed);

  BdsController c2(&busy.topo, &busy.routing, options);
  BackgroundTrafficModel::Options bg;
  bg.mean_utilization = 0.5;
  BackgroundTrafficModel model(&busy.topo, bg);
  c2.SetBackgroundTraffic(&model);
  ASSERT_TRUE(c2.SubmitJob(MakeJob(0, 0, {1, 2}, MB(200.0)).value()).ok());
  auto r2 = c2.Run(Hours(2.0));
  ASSERT_TRUE(r2.ok() && r2->completed);

  EXPECT_GT(r2->completion_time, r1->completion_time);
}

TEST(BdsControllerTest, SchedulingPoliciesAllComplete) {
  for (SchedulingPolicy policy : {SchedulingPolicy::kRarestFirst, SchedulingPolicy::kRandom,
                                  SchedulingPolicy::kSequential}) {
    Fixture f;
    ControllerOptions options = Defaults();
    options.algorithm.policy = policy;
    BdsController controller(&f.topo, &f.routing, options);
    ASSERT_TRUE(controller.SubmitJob(MakeJob(0, 0, {1, 2}, MB(40.0)).value()).ok());
    auto report = controller.Run(Hours(1.0));
    ASSERT_TRUE(report.ok());
    EXPECT_TRUE(report->completed);
  }
}

TEST(BdsControllerTest, JointFormulationModeCompletes) {
  Fixture f;
  ControllerOptions options = Defaults();
  options.algorithm.schedule_all = true;
  options.algorithm.merge_subtasks = false;
  options.algorithm.use_exact_lp = true;
  BdsController controller(&f.topo, &f.routing, options);
  ASSERT_TRUE(controller.SubmitJob(MakeJob(0, 0, {1}, MB(24.0)).value()).ok());
  auto report = controller.Run(Hours(1.0));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
}

}  // namespace
}  // namespace bds
