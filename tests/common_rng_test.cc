#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace bds {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntRespectsBoundsAndHitsAll) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(11);
  EXPECT_EQ(rng.UniformInt(4, 4), 4);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, BernoulliMeanCloseToP) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, NormalMeanAndStddev) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Exponential(4.0);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(29);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.Pareto(2.0, 1.5), 2.0);
  }
}

TEST(RngTest, LogNormalMedian) {
  Rng rng(31);
  std::vector<double> v;
  const int n = 30001;
  v.reserve(n);
  for (int i = 0; i < n; ++i) {
    v.push_back(rng.LogNormal(1.0, 0.5));
  }
  std::nth_element(v.begin(), v.begin() + n / 2, v.end());
  // Median of lognormal = exp(mu).
  EXPECT_NEAR(v[n / 2], std::exp(1.0), 0.1);
}

TEST(RngTest, ZipfBounds) {
  Rng rng(37);
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.Zipf(100, 1.1);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
  }
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(41);
  int64_t low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(1000, 1.2) <= 10) {
      ++low;
    }
  }
  // With s=1.2 the first 10 ranks should carry far more than 1% of the mass.
  EXPECT_GT(static_cast<double>(low) / n, 0.3);
}

TEST(RngTest, ZipfZeroExponentIsUniform) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Zipf(9, 0.0));
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, ZipfSingleElement) {
  Rng rng(47);
  EXPECT_EQ(rng.Zipf(1, 1.5), 1);
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(53);
  for (int trial = 0; trial < 100; ++trial) {
    auto s = rng.SampleWithoutReplacement(50, 10);
    ASSERT_EQ(s.size(), 10u);
    std::set<int64_t> set(s.begin(), s.end());
    EXPECT_EQ(set.size(), 10u);
    for (int64_t v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 50);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(59);
  auto s = rng.SampleWithoutReplacement(8, 8);
  std::set<int64_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 8u);
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(61);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(67);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(71);
  Rng child = a.Fork();
  // The child should not replay the parent's stream.
  Rng a2(71);
  a2.NextUint64();  // Same position the fork consumed.
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (child.NextUint64() == a2.NextUint64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace bds
