#include "src/fault/fault_injector.h"

#include <gtest/gtest.h>

#include "src/fault/chaos.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

Topology MakeTopo() { return BuildFullMesh(3, 2, Gbps(1.0), MBps(20.0), MBps(20.0)).value(); }

LinkId FirstWanLink(const Topology& topo) {
  for (const Link& l : topo.links()) {
    if (l.type == LinkType::kWan) {
      return l.id;
    }
  }
  return kInvalidLink;
}

TEST(FaultInjectorTest, RejectsMalformedLinkFaults) {
  Topology topo = MakeTopo();
  FaultInjector fault(7);
  LinkId wan = FirstWanLink(topo);
  EXPECT_FALSE(fault.AddLinkDown(topo, topo.num_links(), 0.0, 1.0).ok());
  EXPECT_FALSE(fault.AddLinkDown(topo, -1, 0.0, 1.0).ok());
  EXPECT_FALSE(fault.AddLinkDown(topo, wan, -1.0, 1.0).ok());
  EXPECT_FALSE(fault.AddLinkDown(topo, wan, 5.0, 5.0).ok());  // Empty window.
  EXPECT_FALSE(fault.AddLinkDown(topo, wan, 5.0, 2.0).ok());  // Inverted.
  EXPECT_FALSE(fault.AddLinkDegradation(topo, wan, 0.0, 1.0, 0.0).ok());
  EXPECT_FALSE(fault.AddLinkDegradation(topo, wan, 0.0, 1.0, 1.0).ok());
  EXPECT_FALSE(fault.AddLinkFlapping(topo, wan, 0.0, 10.0, /*period=*/0.0).ok());
  EXPECT_FALSE(fault.AddLinkFlapping(topo, wan, 0.0, 10.0, 2.0, /*duty=*/1.5).ok());
  EXPECT_TRUE(fault.AddLinkDown(topo, wan, 0.0, 1.0).ok());
}

TEST(FaultInjectorTest, RejectsMalformedProbabilities) {
  FaultInjector fault(7);
  ControlPlaneFaultOptions cp;
  cp.report_loss_prob = 1.5;
  EXPECT_FALSE(fault.SetControlPlaneFaults(cp).ok());
  cp.report_loss_prob = 0.5;
  cp.report_timeout_cycles = 0;
  EXPECT_FALSE(fault.SetControlPlaneFaults(cp).ok());
  cp.report_timeout_cycles = 3;
  EXPECT_TRUE(fault.SetControlPlaneFaults(cp).ok());
  DataPlaneFaultOptions dp;
  dp.corruption_prob = -0.1;
  EXPECT_FALSE(fault.SetDataPlaneFaults(dp).ok());
  dp.corruption_prob = 0.1;
  EXPECT_TRUE(fault.SetDataPlaneFaults(dp).ok());
}

TEST(FaultInjectorTest, ScheduleFreezesOnceConsumed) {
  Topology topo = MakeTopo();
  FaultInjector fault(7);
  LinkId wan = FirstWanLink(topo);
  ASSERT_TRUE(fault.AddLinkDown(topo, wan, 0.0, 1.0).ok());
  (void)fault.TakeLinkEventsUpTo(0.5);
  EXPECT_FALSE(fault.AddLinkDown(topo, wan, 5.0, 6.0).ok());
}

TEST(FaultInjectorTest, FlappingExpandsToSquareWave) {
  Topology topo = MakeTopo();
  FaultInjector fault(7);
  LinkId wan = FirstWanLink(topo);
  ASSERT_TRUE(fault.AddLinkFlapping(topo, wan, 0.0, 10.0, /*period=*/4.0, /*duty=*/0.5).ok());
  std::vector<LinkFaultEvent> events = fault.TakeLinkEventsUpTo(100.0);
  ASSERT_GE(events.size(), 4u);
  // Alternating down/up starting at t=0, each down lasting period*duty = 2 s.
  EXPECT_DOUBLE_EQ(events.front().at, 0.0);
  EXPECT_DOUBLE_EQ(events.front().factor, 0.0);
  EXPECT_DOUBLE_EQ(events[1].at, 2.0);
  EXPECT_DOUBLE_EQ(events[1].factor, 1.0);
  // The final event restores the link exactly at the window's end.
  EXPECT_DOUBLE_EQ(events.back().at, 10.0);
  EXPECT_DOUBLE_EQ(events.back().factor, 1.0);
  for (const LinkFaultEvent& e : events) {
    EXPECT_EQ(e.link, wan);
  }
  EXPECT_EQ(fault.remaining_link_events(), 0u);
}

TEST(FaultInjectorTest, EventsDrainInTimeOrder) {
  Topology topo = MakeTopo();
  FaultInjector fault(7);
  LinkId wan = FirstWanLink(topo);
  ASSERT_TRUE(fault.AddLinkDown(topo, wan, 5.0, 8.0).ok());
  ASSERT_TRUE(fault.AddLinkDegradation(topo, wan, 1.0, 3.0, 0.5).ok());
  auto first = fault.TakeLinkEventsUpTo(4.0);
  ASSERT_EQ(first.size(), 2u);  // Degradation on at 1, off at 3.
  EXPECT_DOUBLE_EQ(first[0].at, 1.0);
  EXPECT_DOUBLE_EQ(first[1].at, 3.0);
  EXPECT_EQ(fault.remaining_link_events(), 2u);
  auto rest = fault.TakeLinkEventsUpTo(100.0);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_DOUBLE_EQ(rest[0].at, 5.0);
  EXPECT_DOUBLE_EQ(rest[0].factor, 0.0);
}

TEST(FaultInjectorTest, ZeroProbabilityDrawsConsumeNoRandomness) {
  // An injector that answered many zero-probability queries must produce the
  // same later draw sequence as a fresh one with the same seed: fault-free
  // runs stay byte-identical to runs on a build without fault hooks.
  FaultInjector touched(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(touched.DrawReportLost(0));
    EXPECT_FALSE(touched.DrawPushDropped(i));
    EXPECT_FALSE(touched.DrawBlockCorrupted());
  }
  FaultInjector fresh(42);
  ControlPlaneFaultOptions cp;
  cp.report_loss_prob = 0.5;
  cp.push_drop_prob = 0.5;
  ASSERT_TRUE(touched.SetControlPlaneFaults(cp).ok());
  ASSERT_TRUE(fresh.SetControlPlaneFaults(cp).ok());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(touched.DrawReportLost(1), fresh.DrawReportLost(1)) << i;
    EXPECT_EQ(touched.DrawPushDropped(3), fresh.DrawPushDropped(3)) << i;
  }
}

TEST(FaultInjectorTest, ReportTimeoutBoundsStaleness) {
  FaultInjector fault(9);
  ControlPlaneFaultOptions cp;
  cp.report_loss_prob = 1.0;  // Every report lost...
  cp.report_timeout_cycles = 3;
  ASSERT_TRUE(fault.SetControlPlaneFaults(cp).ok());
  int consecutive = 0;
  for (int i = 0; i < 30; ++i) {
    if (fault.DrawReportLost(0)) {
      ++consecutive;
      EXPECT_LT(consecutive, cp.report_timeout_cycles);  // ...but never 3 in a row.
    } else {
      consecutive = 0;
    }
  }
  EXPECT_GT(fault.stats().reports_forced, 0);
  EXPECT_GT(fault.stats().reports_lost, 0);
}

TEST(FaultInjectorTest, PushRetriesEscalateOutOfBand) {
  FaultInjector fault(9);
  ControlPlaneFaultOptions cp;
  cp.push_drop_prob = 1.0;
  cp.push_retry_cycles = 2;
  ASSERT_TRUE(fault.SetControlPlaneFaults(cp).ok());
  // drop, escalate, drop, escalate, ... — no agent waits more than one cycle.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fault.DrawPushDropped(5), i % 2 == 0) << i;
  }
  EXPECT_EQ(fault.stats().pushes_dropped, 5);
  EXPECT_EQ(fault.stats().pushes_escalated, 5);
}

TEST(ChaosTest, SameSeedSamePlan) {
  Topology topo = MakeTopo();
  FaultInjector a(1), b(1);
  auto plan_a = InstallRandomChaos(topo, /*seed=*/123, ChaosOptions{}, &a);
  auto plan_b = InstallRandomChaos(topo, /*seed=*/123, ChaosOptions{}, &b);
  ASSERT_TRUE(plan_a.ok() && plan_b.ok());
  EXPECT_EQ(plan_a->description, plan_b->description);
  EXPECT_EQ(plan_a->controller_outages, plan_b->controller_outages);
  auto events_a = a.TakeLinkEventsUpTo(kTimeInfinity);
  auto events_b = b.TakeLinkEventsUpTo(kTimeInfinity);
  ASSERT_EQ(events_a.size(), events_b.size());
  for (size_t i = 0; i < events_a.size(); ++i) {
    EXPECT_DOUBLE_EQ(events_a[i].at, events_b[i].at);
    EXPECT_EQ(events_a[i].link, events_b[i].link);
    EXPECT_DOUBLE_EQ(events_a[i].factor, events_b[i].factor);
  }
}

TEST(ChaosTest, EveryWindowClosesByHorizon) {
  Topology topo = MakeTopo();
  ChaosOptions options;
  options.horizon = 40.0;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FaultInjector fault(seed);
    ASSERT_TRUE(InstallRandomChaos(topo, seed, options, &fault).ok());
    auto events = fault.TakeLinkEventsUpTo(kTimeInfinity);
    std::vector<double> last_factor(static_cast<size_t>(topo.num_links()), 1.0);
    for (const LinkFaultEvent& e : events) {
      EXPECT_LE(e.at, options.horizon) << "seed " << seed;
      last_factor[static_cast<size_t>(e.link)] = e.factor;
    }
    for (double f : last_factor) {
      EXPECT_DOUBLE_EQ(f, 1.0) << "seed " << seed;  // Everything recovers.
    }
  }
}

}  // namespace
}  // namespace bds
