// Unit tests for the SLO time-series sampler (ring wraparound, burn-rate
// alert fire/clear hysteresis, option validation, JSONL export) and for the
// flight recorder's deterministic retention policy (interesting journals
// survive eviction; every cap is counted, never silent).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/timeseries.h"

namespace bds {
namespace telemetry {
namespace {

TEST(RingSeriesTest, FillsThenWrapsOldestFirst) {
  RingSeries ring(4);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.Latest(), 0.0);

  for (int i = 0; i < 4; ++i) {
    ring.Push(static_cast<double>(i));
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 0);
  EXPECT_EQ(ring.first_index(), 0);
  EXPECT_EQ(ring.at(0), 0.0);
  EXPECT_EQ(ring.at(3), 3.0);

  // Two more pushes overwrite the two oldest; at(0) is now value 2.
  ring.Push(4.0);
  ring.Push(5.0);
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.total_pushed(), 6);
  EXPECT_EQ(ring.dropped(), 2);
  EXPECT_EQ(ring.first_index(), 2);
  EXPECT_EQ(ring.at(0), 2.0);
  EXPECT_EQ(ring.at(1), 3.0);
  EXPECT_EQ(ring.at(2), 4.0);
  EXPECT_EQ(ring.at(3), 5.0);
  EXPECT_EQ(ring.Latest(), 5.0);
}

TEST(RingSeriesTest, TailSumClampsAndTracksNewest) {
  RingSeries ring(3);
  ring.Push(1.0);
  ring.Push(2.0);
  EXPECT_EQ(ring.TailSum(1), 2.0);
  EXPECT_EQ(ring.TailSum(2), 3.0);
  EXPECT_EQ(ring.TailSum(10), 3.0);  // Clamped to size().
  ring.Push(3.0);
  ring.Push(4.0);  // Evicts the 1.0.
  EXPECT_EQ(ring.TailSum(3), 9.0);
  EXPECT_EQ(ring.TailSum(2), 7.0);
}

TEST(TimeseriesOptionsTest, ValidatorAcceptsDefaultsWhenEnabled) {
  TimeseriesOptions o;
  o.enabled = true;
  EXPECT_TRUE(ValidateTimeseriesOptions(o).ok());
  // Disabled options validate regardless of garbage values.
  TimeseriesOptions off;
  off.sample_dt = -1.0;
  EXPECT_TRUE(ValidateTimeseriesOptions(off).ok());
}

TEST(TimeseriesOptionsTest, ValidatorRejectsBadShapes) {
  auto enabled = [] {
    TimeseriesOptions o;
    o.enabled = true;
    return o;
  };
  auto expect_bad = [](TimeseriesOptions o) {
    EXPECT_FALSE(ValidateTimeseriesOptions(o).ok());
  };

  {
    auto o = enabled();
    o.sample_dt = 0.0;
    expect_bad(o);
  }
  {
    auto o = enabled();
    o.capacity = 0;
    expect_bad(o);
  }
  {
    auto o = enabled();
    o.objective = 1.0;
    expect_bad(o);
  }
  {
    auto o = enabled();
    o.fast_window = 600.0;
    o.slow_window = 300.0;  // slow < fast.
    expect_bad(o);
  }
  {
    auto o = enabled();
    // Slow window needs more samples than the ring retains.
    o.sample_dt = 1.0;
    o.capacity = 16;
    o.slow_window = 3600.0;
    expect_bad(o);
  }
  {
    auto o = enabled();
    o.clear_samples = 0;
    expect_bad(o);
  }
}

// A sampler tuned so the alert dynamics run in a handful of samples: dt=10s,
// fast window 3 samples, slow window 6 samples, 30-minute SLO, 90% objective
// (error budget 0.1), threshold 2 => both windows need >20% bad completions.
TimeseriesOptions SmallAlertOptions() {
  TimeseriesOptions o;
  o.enabled = true;
  o.sample_dt = 10.0;
  o.capacity = 64;
  o.slo_minutes = 30.0;
  o.objective = 0.9;
  o.fast_window = 30.0;
  o.slow_window = 60.0;
  o.burn_threshold = 2.0;
  o.clear_factor = 0.5;
  o.clear_samples = 2;
  return o;
}

TEST(SloTimeseriesTest, AlertFiresOnSustainedBadCompletionsAndClears) {
  SloTimeseries ts(SmallAlertOptions());
  SloSampleInput in;

  // Phase 1: all completions miss the 30-minute SLO. Burn in both windows
  // goes to 1/(1-0.9) = 10 > 2 once the slow window fills with bad samples.
  SimTime now = 0.0;
  for (int s = 0; s < 8; ++s) {
    now += 10.0;
    ts.ObserveCompletion(now, /*duration_seconds=*/3600.0);  // Bad.
    ts.SampleUpTo(now, in);
  }
  ASSERT_EQ(ts.alerts_fired(), 1);
  EXPECT_TRUE(ts.alerts()[0].active());
  EXPECT_GT(ts.alerts()[0].burn_fast, 2.0);
  EXPECT_GT(ts.alerts()[0].burn_slow, 2.0);
  EXPECT_GT(ts.burn_fast(), 2.0);

  // Phase 2: healthy completions push the bad fraction down; after both
  // burns sit below threshold*clear_factor for clear_samples consecutive
  // samples the alert clears — and does not re-fire.
  for (int s = 0; s < 12; ++s) {
    now += 10.0;
    ts.ObserveCompletion(now, /*duration_seconds=*/60.0);  // Good.
    ts.SampleUpTo(now, in);
  }
  ASSERT_EQ(ts.alerts_fired(), 1);
  EXPECT_FALSE(ts.alerts()[0].active());
  EXPECT_GT(ts.alerts()[0].cleared_at, ts.alerts()[0].fired_at);
  EXPECT_LT(ts.burn_fast(), 1.0);
}

TEST(SloTimeseriesTest, BriefBlipDoesNotFire) {
  // One bad sample spikes the fast window but the slow window stays calm;
  // the dual-window condition suppresses the page.
  SloTimeseries ts(SmallAlertOptions());
  SloSampleInput in;
  SimTime now = 0.0;
  for (int s = 0; s < 6; ++s) {
    now += 10.0;
    ts.ObserveCompletion(now, 60.0);
    ts.SampleUpTo(now, in);
  }
  now += 10.0;
  ts.ObserveCompletion(now, 3600.0);  // One bad completion.
  ts.SampleUpTo(now, in);
  for (int s = 0; s < 6; ++s) {
    now += 10.0;
    ts.ObserveCompletion(now, 60.0);
    ts.SampleUpTo(now, in);
  }
  EXPECT_EQ(ts.alerts_fired(), 0);
}

TEST(SloTimeseriesTest, CounterDeltasAndGapSamples) {
  SloTimeseries ts(SmallAlertOptions());
  SloSampleInput in;
  in.offered = 5;
  in.accepted = 5;
  ts.SampleUpTo(10.0, in);  // One boundary at t=10.
  // A long gap: cumulative counters advance once, but four Δt boundaries
  // elapse — the delta lands on the first and the rest see zero.
  in.offered = 9;
  in.accepted = 8;
  in.rejected = 1;
  ts.SampleUpTo(50.0, in);
  ASSERT_EQ(ts.samples(), 5);
  const RingSeries* offered = ts.series("offered");
  ASSERT_NE(offered, nullptr);
  ASSERT_EQ(offered->size(), 5u);
  double total = 0.0;
  for (size_t i = 0; i < offered->size(); ++i) {
    total += offered->at(i);
  }
  EXPECT_EQ(total, 9.0);  // Deltas re-sum to the cumulative counter.
  EXPECT_EQ(offered->at(1), 4.0);
  EXPECT_EQ(offered->at(2), 0.0);
  EXPECT_EQ(ts.series("rejected")->at(1), 1.0);
  EXPECT_EQ(ts.series("no_such_series"), nullptr);
}

TEST(SloTimeseriesTest, TrackedLinksGetPerLinkSeries) {
  SloTimeseries ts(SmallAlertOptions());
  ts.SetTrackedLinks({LinkId(3), LinkId(7)});
  SloSampleInput in;
  in.link_utilization = {0.25, 0.75};
  ts.SampleUpTo(10.0, in);
  ASSERT_NE(ts.series("link_util_3"), nullptr);
  ASSERT_NE(ts.series("link_util_7"), nullptr);
  EXPECT_EQ(ts.series("link_util_3")->Latest(), 0.25);
  EXPECT_EQ(ts.series("link_util_7")->Latest(), 0.75);
}

TEST(SloTimeseriesTest, WriteJsonlEmitsMetaSeriesAndAlerts) {
  SloTimeseries ts(SmallAlertOptions());
  SloSampleInput in;
  SimTime now = 0.0;
  for (int s = 0; s < 8; ++s) {
    now += 10.0;
    ts.ObserveCompletion(now, 3600.0);
    ts.SampleUpTo(now, in);
  }
  ASSERT_EQ(ts.alerts_fired(), 1);

  std::string path = testing::TempDir() + "/slo_roundtrip.jsonl";
  ASSERT_TRUE(ts.WriteJsonl(path).ok());
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  int meta = 0, series = 0, alerts = 0;
  while (std::getline(f, line)) {
    if (line.find("\"kind\":\"meta\"") != std::string::npos) {
      ++meta;
      EXPECT_NE(line.find("\"schema\":\"bds-slo-v1\""), std::string::npos);
      EXPECT_NE(line.find("\"samples\":8"), std::string::npos);
    } else if (line.find("\"kind\":\"series\"") != std::string::npos) {
      ++series;
      EXPECT_NE(line.find("\"first_index\""), std::string::npos);
      EXPECT_NE(line.find("\"values\":["), std::string::npos);
    } else if (line.find("\"kind\":\"alert\"") != std::string::npos) {
      ++alerts;
      EXPECT_NE(line.find("\"fired_at\""), std::string::npos);
    } else {
      ADD_FAILURE() << "unexpected line: " << line;
    }
  }
  EXPECT_EQ(meta, 1);
  // The 15 base series (no tracked links configured here).
  EXPECT_EQ(series, 15);
  EXPECT_EQ(alerts, 1);
  std::remove(path.c_str());
}

// --- Flight recorder retention. ---

TEST(FlightRecorderRetentionTest, InterestingJournalsSurviveEviction) {
  FlightRecorder& fr = FlightRecorder::Global();
  FlightRecorderOptions o;
  o.max_transfers = 4;
  fr.Start(o);

  // Jobs 1..3: fast, boring completions (eviction fodder). Job 10: rejected.
  // Job 11: fault-touched slow completion. Then jobs 20..21 arrive with the
  // table full — the fastest boring journals must be evicted for them, while
  // the rejected and faulted journals survive.
  for (JobId j : {JobId(1), JobId(2), JobId(3)}) {
    fr.Arrival(j, 0.0, 0, 1, 4, 1e6);
    fr.Completion(j, 10.0 + j, 10.0 + j);
  }
  fr.Arrival(JobId(10), 1.0, 0, 1, 4, 1e6);
  fr.AdmissionVerdict(JobId(10), 1.0, "reject", "max_backlog_cycles", 500);
  fr.Arrival(JobId(11), 2.0, 0, 2, 8, 2e6);
  fr.FaultHit(JobId(11), 50.0, "link_down", 3);
  fr.Completion(JobId(11), 400.0, 398.0);

  EXPECT_EQ(fr.num_transfers(), 4u);  // Already at cap: one boring evicted.
  fr.Arrival(JobId(20), 60.0, 1, 1, 2, 5e5);
  fr.Arrival(JobId(21), 61.0, 1, 1, 2, 5e5);
  fr.Stop();

  EXPECT_EQ(fr.num_transfers(), 4u);
  EXPECT_GT(fr.evicted_transfers(), 0);
  std::vector<FlightJournal> journals = fr.Journals();
  bool saw_rejected = false, saw_faulted = false;
  for (const FlightJournal& j : journals) {
    if (j.job == JobId(10)) {
      saw_rejected = true;
      EXPECT_TRUE(j.rejected);
    }
    if (j.job == JobId(11)) {
      saw_faulted = true;
      EXPECT_TRUE(j.fault_touched);
      EXPECT_TRUE(j.completed);
    }
  }
  EXPECT_TRUE(saw_rejected);
  EXPECT_TRUE(saw_faulted);
}

TEST(FlightRecorderRetentionTest, PerJournalEventCapCountsDrops) {
  FlightRecorder& fr = FlightRecorder::Global();
  FlightRecorderOptions o;
  o.max_events_per_transfer = 8;
  fr.Start(o);
  fr.Arrival(JobId(1), 0.0, 0, 1, 4, 1e6);
  for (int i = 0; i < 20; ++i) {
    fr.Schedule(JobId(1), 1.0 + i, i, "normal", 0, 1, 1e6, 2);
  }
  fr.Stop();
  std::vector<FlightJournal> journals = fr.Journals();
  ASSERT_EQ(journals.size(), 1u);
  EXPECT_EQ(journals[0].events.size(), 8u);
  EXPECT_EQ(journals[0].dropped_events, 13);  // 21 offered, 8 kept.
  EXPECT_EQ(fr.dropped_events(), 13);
}

TEST(FlightRecorderRetentionTest, RateEventBudgetIsGlobalAndCounted) {
  FlightRecorder& fr = FlightRecorder::Global();
  FlightRecorderOptions o;
  o.max_rate_events = 5;
  fr.Start(o);
  fr.Arrival(JobId(1), 0.0, 0, 1, 4, 1e6);
  for (int i = 0; i < 12; ++i) {
    fr.RateChange(JobId(1), 1.0 + i, 1e6, 2e6);
  }
  fr.Stop();
  EXPECT_EQ(fr.rate_events_dropped(), 7);
  std::vector<FlightJournal> journals = fr.Journals();
  ASSERT_EQ(journals.size(), 1u);
  EXPECT_EQ(journals[0].events.size(), 6u);  // Arrival + 5 budgeted changes.
}

TEST(FlightRecorderRetentionTest, InactiveRecorderRecordsNothing) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Start();
  fr.Stop();
  fr.Arrival(JobId(5), 0.0, 0, 1, 4, 1e6);
  fr.Completion(JobId(5), 9.0, 9.0);
  EXPECT_EQ(fr.num_transfers(), 0u);
  EXPECT_EQ(fr.num_events(), 0);
}

TEST(FlightRecorderRetentionTest, WriteJsonlSchema) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Start();
  fr.Arrival(JobId(3), 0.0, 0, 2, 6, 1.5e6);
  fr.AdmissionVerdict(JobId(3), 0.0, "accept", "under_budget", 2);
  fr.Schedule(JobId(3), 3.0, 1, "normal", 0, 4, 2e6, 3);
  fr.Completion(JobId(3), 30.0, 30.0);
  fr.Retire(JobId(3), 33.0);
  fr.Stop();

  std::string path = testing::TempDir() + "/flight_roundtrip.jsonl";
  ASSERT_TRUE(fr.WriteJsonl(path).ok());
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  ASSERT_TRUE(std::getline(f, line));
  EXPECT_NE(line.find("\"schema\":\"bds-flight-v1\""), std::string::npos);
  EXPECT_NE(line.find("\"transfers\":1"), std::string::npos);
  ASSERT_TRUE(std::getline(f, line));
  EXPECT_NE(line.find("\"kind\":\"transfer\""), std::string::npos);
  EXPECT_NE(line.find("\"job\":3"), std::string::npos);
  EXPECT_NE(line.find("\"e\":\"arrival\""), std::string::npos);
  EXPECT_NE(line.find("\"e\":\"completion\""), std::string::npos);
  EXPECT_NE(line.find("\"rung\":\"normal\""), std::string::npos);
  EXPECT_FALSE(std::getline(f, line)) << "extra line: " << line;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace telemetry
}  // namespace bds
