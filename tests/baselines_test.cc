#include <gtest/gtest.h>

#include "src/baselines/akamai.h"
#include "src/baselines/chain.h"
#include "src/baselines/gingko.h"
#include "src/baselines/ideal.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

struct Fixture {
  Topology topo;
  WanRoutingTable routing;
  MulticastJob job;

  Fixture(int dcs = 4, int servers = 3, Bytes size = MB(60.0))
      : topo(BuildFullMesh(dcs, servers, Gbps(1.0), MBps(20.0), MBps(20.0)).value()),
        routing(WanRoutingTable::Build(topo, 3).value()) {
    std::vector<DcId> dests;
    for (DcId d = 1; d < dcs; ++d) {
      dests.push_back(d);
    }
    job = MakeJob(0, 0, dests, size, MB(2.0)).value();
  }
};

void ExpectValidResult(const Fixture& f, const MulticastRunResult& r) {
  EXPECT_TRUE(r.completed);
  EXPECT_GT(r.completion_time, 0.0);
  EXPECT_GT(r.deliveries, 0);
  // Every destination server reported a completion time.
  EXPECT_EQ(r.server_completion.size(),
            f.job.dest_dcs.size() * f.topo.ServersIn(f.job.dest_dcs[0]).size());
  EXPECT_EQ(r.dc_completion.size(), f.job.dest_dcs.size());
  SimTime ideal = IdealCompletionBound(f.topo, f.job);
  EXPECT_GE(r.completion_time, ideal * 0.999);
  for (const auto& [server, t] : r.server_completion) {
    EXPECT_LE(t, r.completion_time + 1e-9);
  }
}

TEST(GingkoStrategyTest, CompletesAndRespectsIdeal) {
  Fixture f;
  GingkoStrategy s;
  auto r = s.Run(f.topo, f.routing, f.job, 1, kTimeInfinity);
  ASSERT_TRUE(r.ok());
  ExpectValidResult(f, *r);
  EXPECT_EQ(s.name(), "gingko");
}

TEST(BulletStrategyTest, CompletesAndRespectsIdeal) {
  Fixture f;
  BulletStrategy s;
  auto r = s.Run(f.topo, f.routing, f.job, 1, kTimeInfinity);
  ASSERT_TRUE(r.ok());
  ExpectValidResult(f, *r);
  EXPECT_EQ(s.name(), "bullet");
}

TEST(DirectStrategyTest, CompletesAndRespectsIdeal) {
  Fixture f;
  DirectStrategy s;
  auto r = s.Run(f.topo, f.routing, f.job, 1, kTimeInfinity);
  ASSERT_TRUE(r.ok());
  ExpectValidResult(f, *r);
}

TEST(AkamaiStrategyTest, CompletesAndRespectsIdeal) {
  Fixture f;
  AkamaiStrategy s;
  auto r = s.Run(f.topo, f.routing, f.job, 1, kTimeInfinity);
  ASSERT_TRUE(r.ok());
  ExpectValidResult(f, *r);
}

TEST(ChainStrategyTest, CompletesAndRespectsIdeal) {
  Fixture f;
  ChainStrategy s;
  auto r = s.Run(f.topo, f.routing, f.job, 1, kTimeInfinity);
  ASSERT_TRUE(r.ok());
  ExpectValidResult(f, *r);
}

TEST(StrategyTest, DeadlineTruncates) {
  Fixture f(4, 3, GB(5.0));  // Too large to finish quickly.
  GingkoStrategy s;
  auto r = s.Run(f.topo, f.routing, f.job, 1, /*deadline=*/5.0);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->completed);
  EXPECT_LE(r->completion_time, 5.0 + 1e-6);
}

TEST(StrategyTest, RejectsInvalidJob) {
  Fixture f;
  MulticastJob bad = f.job;
  bad.dest_dcs = {99};
  GingkoStrategy s;
  EXPECT_FALSE(s.Run(f.topo, f.routing, bad, 1, kTimeInfinity).ok());
}

TEST(StrategyTest, Figure3ChainBeatsDirect) {
  // The paper's §2.2 example: direct replication 18 s, chain 13 s.
  Figure3Topology fig = BuildFigure3Example();
  auto routing = WanRoutingTable::Build(fig.topo, 3).value();
  MulticastJob job = MakeJob(0, fig.dc_a, {fig.dc_b, fig.dc_c}, GB(36.0), GB(6.0)).value();

  DirectStrategy direct;
  auto rd = direct.Run(fig.topo, routing, job, 1, kTimeInfinity);
  ASSERT_TRUE(rd.ok());
  ASSERT_TRUE(rd->completed);

  ChainStrategy chain;
  auto rc = chain.Run(fig.topo, routing, job, 1, kTimeInfinity);
  ASSERT_TRUE(rc.ok());
  ASSERT_TRUE(rc->completed);

  EXPECT_LT(rc->completion_time, rd->completion_time);
  // Direct: 36 GB over the 2 GB/s A->C IP route = 18 s.
  EXPECT_NEAR(rd->completion_time, 18.0, 0.5);
  // Chain: ~13 s in the paper's block-pipelined accounting.
  EXPECT_NEAR(rc->completion_time, 13.0, 1.5);
}

TEST(StrategyTest, GingkoSlowerWithLessVisibility) {
  Fixture f(4, 8, MB(160.0));
  GingkoStrategy::Options narrow;
  narrow.visibility = 1;
  GingkoStrategy::Options wide;
  wide.visibility = 0;  // Full visibility.
  double narrow_total = 0.0;
  double wide_total = 0.0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto rn = GingkoStrategy(narrow).Run(f.topo, f.routing, f.job, seed, kTimeInfinity);
    auto rw = GingkoStrategy(wide).Run(f.topo, f.routing, f.job, seed, kTimeInfinity);
    ASSERT_TRUE(rn.ok() && rw.ok());
    narrow_total += rn->completion_time;
    wide_total += rw->completion_time;
  }
  EXPECT_GE(narrow_total, wide_total * 0.95);
}

TEST(IdealBoundTest, SourceEgressBound) {
  // 1 source server at 10 MB/s; 100 MB must leave at least once -> >= 10 s.
  Topology topo = BuildFullMesh(3, 1, Gbps(10.0), MBps(10.0), MBps(100.0)).value();
  MulticastJob job = MakeJob(0, 0, {1, 2}, MB(100.0), MB(2.0)).value();
  EXPECT_GE(IdealCompletionBound(topo, job), 10.0 - 1e-9);
}

TEST(IdealBoundTest, DestinationIngestBound) {
  // Dest servers at 5 MB/s each (2 per DC): 100 MB / 10 MB/s = 10 s.
  Topology topo = BuildFullMesh(2, 2, Gbps(10.0), MBps(100.0), MBps(5.0)).value();
  MulticastJob job = MakeJob(0, 0, {1}, MB(100.0), MB(2.0)).value();
  EXPECT_GE(IdealCompletionBound(topo, job), 10.0 - 1e-9);
}

TEST(IdealBoundTest, WanIngressBound) {
  // WAN into the destination is 1 MB/s: 100 MB -> >= 50 s with two ingress
  // links (one from each other DC).
  Topology topo = BuildFullMesh(3, 4, MBps(1.0), MBps(100.0), MBps(100.0)).value();
  MulticastJob job = MakeJob(0, 0, {1}, MB(100.0), MB(2.0)).value();
  EXPECT_GE(IdealCompletionBound(topo, job), 50.0 - 1e-9);
}

TEST(AppendixTest, BalancedBeatsImbalanced) {
  // The appendix theorem: t_A < t_B whenever k1 < k < k2, (k1+k2)/2 = k.
  const int64_t n = 100;
  const double rho = MB(2.0);
  const double r = MBps(20.0);
  for (int m = 3; m <= 12; ++m) {
    for (int k = 2; k < m; ++k) {
      for (int k1 = 1; k1 < k; ++k1) {
        int k2 = 2 * k - k1;
        if (k2 <= k1 || k2 >= m) {
          continue;
        }
        double ta = AppendixBalancedTime(n, m, k, rho, r);
        double tb = AppendixImbalancedTime(n, m, k1, k2, rho, r);
        EXPECT_LT(ta, tb) << "m=" << m << " k=" << k << " k1=" << k1;
      }
    }
  }
}

TEST(AppendixTest, BalancedTimeDecreasesWithK) {
  const int64_t n = 100;
  const double rho = MB(2.0);
  const double r = MBps(20.0);
  const int m = 10;
  double prev = AppendixBalancedTime(n, m, 1, rho, r);
  for (int k = 2; k < m; ++k) {
    double t = AppendixBalancedTime(n, m, k, rho, r);
    EXPECT_LT(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace bds
