#include "src/topology/routing.h"

#include <gtest/gtest.h>

#include <set>

#include "src/topology/builders.h"
#include "src/topology/path.h"
#include "src/topology/topology.h"

namespace bds {
namespace {

// Line topology a -> b -> c plus a direct a -> c link.
struct LineWithShortcut {
  Topology topo;
  DcId a, b, c;
  LinkId ab, bc, ac;
};

LineWithShortcut MakeLineWithShortcut() {
  LineWithShortcut t;
  t.a = t.topo.AddDatacenter("a");
  t.b = t.topo.AddDatacenter("b");
  t.c = t.topo.AddDatacenter("c");
  t.ab = t.topo.AddWanLink(t.a, t.b, 6.0).value();
  t.bc = t.topo.AddWanLink(t.b, t.c, 3.0).value();
  t.ac = t.topo.AddWanLink(t.a, t.c, 2.0).value();
  return t;
}

TEST(ShortestWanRouteTest, PrefersFewerHops) {
  auto t = MakeLineWithShortcut();
  auto r = ShortestWanRoute(t.topo, t.a, t.c);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->hops(), 1);
  ASSERT_EQ(r->links.size(), 1u);
  EXPECT_EQ(r->links[0], t.ac);
  EXPECT_EQ(r->dcs, (std::vector<DcId>{t.a, t.c}));
}

TEST(ShortestWanRouteTest, MultiHop) {
  Topology topo;
  DcId a = topo.AddDatacenter("a");
  DcId b = topo.AddDatacenter("b");
  DcId c = topo.AddDatacenter("c");
  LinkId ab = topo.AddWanLink(a, b, 1.0).value();
  LinkId bc = topo.AddWanLink(b, c, 1.0).value();
  auto r = ShortestWanRoute(topo, a, c);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->hops(), 2);
  EXPECT_EQ(r->links, (std::vector<LinkId>{ab, bc}));
}

TEST(ShortestWanRouteTest, TieBrokenTowardLargerBottleneck) {
  Topology topo;
  DcId a = topo.AddDatacenter("a");
  DcId c = topo.AddDatacenter("c");
  topo.AddWanLink(a, c, 2.0).value();
  LinkId big = topo.AddWanLink(a, c, 5.0).value();
  auto r = ShortestWanRoute(topo, a, c);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->links[0], big);
}

TEST(ShortestWanRouteTest, UnreachableReturnsError) {
  Topology topo;
  DcId a = topo.AddDatacenter("a");
  DcId b = topo.AddDatacenter("b");
  auto r = ShortestWanRoute(topo, a, b);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ShortestWanRouteTest, RejectsSelfRoute) {
  Topology topo;
  DcId a = topo.AddDatacenter("a");
  EXPECT_FALSE(ShortestWanRoute(topo, a, a).ok());
}

TEST(ShortestWanRouteTest, BannedLinkForcesDetour) {
  auto t = MakeLineWithShortcut();
  std::vector<bool> banned(static_cast<size_t>(t.topo.num_links()), false);
  banned[static_cast<size_t>(t.ac)] = true;
  auto r = ShortestWanRoute(t.topo, t.a, t.c, &banned);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->hops(), 2);
  EXPECT_EQ(r->links, (std::vector<LinkId>{t.ab, t.bc}));
}

TEST(ShortestWanRouteTest, BannedDcBlocksTransit) {
  auto t = MakeLineWithShortcut();
  std::vector<bool> banned_links(static_cast<size_t>(t.topo.num_links()), false);
  banned_links[static_cast<size_t>(t.ac)] = true;
  std::vector<bool> banned_dcs(static_cast<size_t>(t.topo.num_dcs()), false);
  banned_dcs[static_cast<size_t>(t.b)] = true;
  auto r = ShortestWanRoute(t.topo, t.a, t.c, &banned_links, &banned_dcs);
  EXPECT_FALSE(r.ok());
}

TEST(KShortestTest, EnumeratesBothRoutes) {
  auto t = MakeLineWithShortcut();
  auto routes = KShortestWanRoutes(t.topo, t.a, t.c, 5);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(routes[0].hops(), 1);  // direct first (fewest hops)
  EXPECT_EQ(routes[1].hops(), 2);
  EXPECT_EQ(routes[1].links, (std::vector<LinkId>{t.ab, t.bc}));
}

TEST(KShortestTest, RespectsK) {
  auto t = MakeLineWithShortcut();
  auto routes = KShortestWanRoutes(t.topo, t.a, t.c, 1);
  EXPECT_EQ(routes.size(), 1u);
}

TEST(KShortestTest, RoutesAreLoopless) {
  GeoTopologyOptions opt;
  opt.num_dcs = 6;
  opt.servers_per_dc = 1;
  opt.seed = 3;
  auto topo = BuildGeoTopology(opt);
  ASSERT_TRUE(topo.ok());
  auto routes = KShortestWanRoutes(*topo, 0, 3, 8);
  ASSERT_FALSE(routes.empty());
  for (const auto& r : routes) {
    std::set<DcId> seen(r.dcs.begin(), r.dcs.end());
    EXPECT_EQ(seen.size(), r.dcs.size()) << "route revisits a DC";
    EXPECT_EQ(r.dcs.front(), 0);
    EXPECT_EQ(r.dcs.back(), 3);
    EXPECT_EQ(r.dcs.size(), r.links.size() + 1);
  }
  // All routes distinct.
  for (size_t i = 0; i < routes.size(); ++i) {
    for (size_t j = i + 1; j < routes.size(); ++j) {
      EXPECT_NE(routes[i].links, routes[j].links);
    }
  }
}

TEST(KShortestTest, SortedByHops) {
  GeoTopologyOptions opt;
  opt.num_dcs = 7;
  opt.servers_per_dc = 1;
  opt.seed = 11;
  auto topo = BuildGeoTopology(opt);
  ASSERT_TRUE(topo.ok());
  auto routes = KShortestWanRoutes(*topo, 1, 5, 6);
  for (size_t i = 1; i < routes.size(); ++i) {
    EXPECT_GE(routes[i].hops(), routes[i - 1].hops());
  }
}

TEST(WanRoutingTableTest, AllPairsPopulated) {
  auto topo = BuildFullMesh(4, 1, 10.0, 1.0, 1.0);
  ASSERT_TRUE(topo.ok());
  auto table = WanRoutingTable::Build(*topo, 3);
  ASSERT_TRUE(table.ok());
  for (DcId a = 0; a < 4; ++a) {
    for (DcId b = 0; b < 4; ++b) {
      if (a == b) {
        EXPECT_TRUE(table->Routes(a, b).empty());
        continue;
      }
      EXPECT_TRUE(table->Reachable(a, b));
      EXPECT_FALSE(table->Routes(a, b).empty());
      auto primary = table->PrimaryRoute(a, b);
      ASSERT_TRUE(primary.ok());
      EXPECT_EQ(primary->hops(), 1);  // Full mesh: direct link is primary.
    }
  }
}

TEST(WanRoutingTableTest, RejectsBadK) {
  Topology topo;
  topo.AddDatacenter("a");
  EXPECT_FALSE(WanRoutingTable::Build(topo, 0).ok());
}

TEST(WanRouteTest, BottleneckCapacity) {
  auto t = MakeLineWithShortcut();
  auto r = KShortestWanRoutes(t.topo, t.a, t.c, 2);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0].BottleneckCapacity(t.topo), 2.0);  // direct
  EXPECT_DOUBLE_EQ(r[1].BottleneckCapacity(t.topo), 3.0);  // via b
}

TEST(ServerPathTest, InterDcPathIncludesNicsAndWan) {
  auto t = MakeLineWithShortcut();
  ServerId sa = t.topo.AddServer(t.a, 10.0, 10.0).value();
  ServerId sc = t.topo.AddServer(t.c, 10.0, 10.0).value();
  auto routing = WanRoutingTable::Build(t.topo, 3);
  ASSERT_TRUE(routing.ok());
  auto p = MakeServerPath(t.topo, *routing, sa, sc, 0);
  ASSERT_TRUE(p.ok());
  // Uplink + 1 WAN link + downlink.
  ASSERT_EQ(p->links.size(), 3u);
  EXPECT_EQ(t.topo.link(p->links[0]).type, LinkType::kServerUp);
  EXPECT_EQ(t.topo.link(p->links[1]).type, LinkType::kWan);
  EXPECT_EQ(t.topo.link(p->links[2]).type, LinkType::kServerDown);
  EXPECT_EQ(p->wan_route_index, 0);
  EXPECT_DOUBLE_EQ(p->BottleneckCapacity(t.topo), 2.0);
}

TEST(ServerPathTest, IntraDcPathSkipsWan) {
  Topology topo;
  DcId a = topo.AddDatacenter("a");
  ServerId s1 = topo.AddServer(a, 10.0, 10.0).value();
  ServerId s2 = topo.AddServer(a, 10.0, 10.0).value();
  auto routing = WanRoutingTable::Build(topo, 2);
  ASSERT_TRUE(routing.ok());
  auto p = MakeServerPath(topo, *routing, s1, s2);
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->links.size(), 2u);
  EXPECT_EQ(p->wan_route_index, -1);
}

TEST(ServerPathTest, RejectsSelfAndBadIds) {
  Topology topo;
  DcId a = topo.AddDatacenter("a");
  ServerId s1 = topo.AddServer(a, 10.0, 10.0).value();
  auto routing = WanRoutingTable::Build(topo, 2);
  ASSERT_TRUE(routing.ok());
  EXPECT_FALSE(MakeServerPath(topo, *routing, s1, s1).ok());
  EXPECT_FALSE(MakeServerPath(topo, *routing, s1, 99).ok());
}

TEST(ServerPathTest, EnumerateReturnsOnePathPerWanRoute) {
  auto t = MakeLineWithShortcut();
  ServerId sa = t.topo.AddServer(t.a, 10.0, 10.0).value();
  ServerId sc = t.topo.AddServer(t.c, 10.0, 10.0).value();
  auto routing = WanRoutingTable::Build(t.topo, 4);
  ASSERT_TRUE(routing.ok());
  auto paths = EnumerateServerPaths(t.topo, *routing, sa, sc);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_NE(paths[0].links, paths[1].links);
}

TEST(ServerPathTest, ToStringIsInformative) {
  auto t = MakeLineWithShortcut();
  ServerId sa = t.topo.AddServer(t.a, 10.0, 10.0).value();
  ServerId sc = t.topo.AddServer(t.c, 10.0, 10.0).value();
  auto routing = WanRoutingTable::Build(t.topo, 2);
  ASSERT_TRUE(routing.ok());
  auto p = MakeServerPath(t.topo, *routing, sa, sc);
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->ToString(t.topo).empty());
}

}  // namespace
}  // namespace bds
