#include "src/simulator/network_simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/simulator/latency_model.h"
#include "src/topology/builders.h"
#include "src/topology/path.h"
#include "src/topology/routing.h"

namespace bds {
namespace {

// One DC pair, one server each side, 10 MB/s everywhere.
struct SimpleNet {
  Topology topo;
  ServerId src;
  ServerId dst;
  std::vector<LinkId> path;  // src up, wan, dst down
};

SimpleNet MakeSimpleNet(Rate rate = 10e6) {
  SimpleNet n;
  DcId a = n.topo.AddDatacenter("a");
  DcId b = n.topo.AddDatacenter("b");
  n.src = n.topo.AddServer(a, rate, rate).value();
  n.dst = n.topo.AddServer(b, rate, rate).value();
  LinkId wan = n.topo.AddWanLink(a, b, rate).value();
  n.path = {n.topo.server(n.src).uplink, wan, n.topo.server(n.dst).downlink};
  return n;
}

TEST(NetworkSimulatorTest, SingleFlowCompletesAtExpectedTime) {
  SimpleNet net = MakeSimpleNet(10e6);
  NetworkSimulator sim(&net.topo);
  auto id = sim.StartFlow(net.path, 100e6);  // 100 MB at 10 MB/s -> 10 s.
  ASSERT_TRUE(id.ok());
  auto end = sim.RunUntilIdle();
  ASSERT_TRUE(end.ok());
  EXPECT_NEAR(*end, 10.0, 1e-6);
  ASSERT_EQ(sim.completed_flows().size(), 1u);
  EXPECT_NEAR(sim.completed_flows()[0].end_time, 10.0, 1e-6);
  EXPECT_EQ(sim.num_active_flows(), 0);
}

TEST(NetworkSimulatorTest, RejectsBadFlows) {
  SimpleNet net = MakeSimpleNet();
  NetworkSimulator sim(&net.topo);
  EXPECT_FALSE(sim.StartFlow({}, 100.0).ok());
  EXPECT_FALSE(sim.StartFlow(net.path, 0.0).ok());
  EXPECT_FALSE(sim.StartFlow(net.path, 10.0, -1.0).ok());
  EXPECT_FALSE(sim.StartFlow({999}, 10.0).ok());
}

TEST(NetworkSimulatorTest, TwoFlowsShareThenSpeedUp) {
  SimpleNet net = MakeSimpleNet(10e6);
  NetworkSimulator sim(&net.topo);
  // Two flows share the 10 MB/s path: 50 MB and 100 MB.
  ASSERT_TRUE(sim.StartFlow(net.path, 50e6).ok());
  ASSERT_TRUE(sim.StartFlow(net.path, 100e6).ok());
  auto end = sim.RunUntilIdle();
  ASSERT_TRUE(end.ok());
  // Shared until t=10 (each moved 50 MB); flow 2 then finishes its
  // remaining 50 MB at full rate by t=15.
  ASSERT_EQ(sim.completed_flows().size(), 2u);
  EXPECT_NEAR(sim.completed_flows()[0].end_time, 10.0, 1e-6);
  EXPECT_NEAR(sim.completed_flows()[1].end_time, 15.0, 1e-6);
}

TEST(NetworkSimulatorTest, PinnedFlowHoldsItsRate) {
  SimpleNet net = MakeSimpleNet(10e6);
  NetworkSimulator sim(&net.topo);
  ASSERT_TRUE(sim.StartFlow(net.path, 40e6, /*pinned_rate=*/4e6).ok());
  auto end = sim.RunUntilIdle();
  ASSERT_TRUE(end.ok());
  EXPECT_NEAR(*end, 10.0, 1e-6);  // 40 MB at pinned 4 MB/s.
}

TEST(NetworkSimulatorTest, RepinChangesCompletionTime) {
  SimpleNet net = MakeSimpleNet(10e6);
  NetworkSimulator sim(&net.topo);
  FlowId id = sim.StartFlow(net.path, 40e6, 4e6).value();
  ASSERT_TRUE(sim.AdvanceTo(5.0).ok());  // 20 MB moved.
  ASSERT_TRUE(sim.RepinFlow(id, 10e6).ok());
  auto end = sim.RunUntilIdle();
  ASSERT_TRUE(end.ok());
  EXPECT_NEAR(*end, 7.0, 1e-6);  // Remaining 20 MB at 10 MB/s.
  EXPECT_FALSE(sim.RepinFlow(id, 1.0).ok());  // Already gone.
}

TEST(NetworkSimulatorTest, CancelReturnsDeliveredBytes) {
  SimpleNet net = MakeSimpleNet(10e6);
  NetworkSimulator sim(&net.topo);
  FlowId id = sim.StartFlow(net.path, 100e6).value();
  ASSERT_TRUE(sim.AdvanceTo(3.0).ok());
  auto delivered = sim.CancelFlow(id);
  ASSERT_TRUE(delivered.ok());
  EXPECT_NEAR(*delivered, 30e6, 1.0);
  EXPECT_EQ(sim.num_active_flows(), 0);
  EXPECT_TRUE(sim.completed_flows().empty());  // Cancelled, not completed.
  EXPECT_FALSE(sim.CancelFlow(id).ok());
}

TEST(NetworkSimulatorTest, BackgroundTrafficShrinksAvailableCapacity) {
  SimpleNet net = MakeSimpleNet(10e6);
  NetworkSimulator sim(&net.topo);
  ASSERT_TRUE(sim.SetBackgroundRate(net.path[1], 5e6).ok());  // WAN link at 50%.
  ASSERT_TRUE(sim.StartFlow(net.path, 50e6).ok());
  auto end = sim.RunUntilIdle();
  ASSERT_TRUE(end.ok());
  EXPECT_NEAR(*end, 10.0, 1e-6);  // 50 MB at residual 5 MB/s.
}

TEST(NetworkSimulatorTest, CompletionCallbackFires) {
  SimpleNet net = MakeSimpleNet(10e6);
  NetworkSimulator sim(&net.topo);
  std::vector<FlowRecord> seen;
  sim.SetCompletionCallback([&](const FlowRecord& r) { seen.push_back(r); });
  ASSERT_TRUE(sim.StartFlow(net.path, 10e6, 0.0, /*tag=*/42, /*tag2=*/7).ok());
  ASSERT_TRUE(sim.RunUntilIdle().ok());
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].tag, 42);
  EXPECT_EQ(seen[0].tag2, 7);
  EXPECT_NEAR(seen[0].Duration(), 1.0, 1e-6);
}

TEST(NetworkSimulatorTest, CallbackMayStartNewFlows) {
  SimpleNet net = MakeSimpleNet(10e6);
  NetworkSimulator sim(&net.topo);
  int chained = 0;
  sim.SetCompletionCallback([&](const FlowRecord&) {
    if (chained < 3) {
      ++chained;
      ASSERT_TRUE(sim.StartFlow(net.path, 10e6).ok());
    }
  });
  ASSERT_TRUE(sim.StartFlow(net.path, 10e6).ok());
  auto end = sim.RunUntilIdle();
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(chained, 3);
  EXPECT_EQ(sim.completed_flows().size(), 4u);
  EXPECT_NEAR(*end, 4.0, 1e-6);  // Four sequential 1-second flows.
}

TEST(NetworkSimulatorTest, AdvanceToRejectsPast) {
  SimpleNet net = MakeSimpleNet();
  NetworkSimulator sim(&net.topo);
  ASSERT_TRUE(sim.AdvanceTo(5.0).ok());
  EXPECT_FALSE(sim.AdvanceTo(4.0).ok());
}

TEST(NetworkSimulatorTest, AdvanceToWithinEpsilonOfPastClampsToNow) {
  SimpleNet net = MakeSimpleNet(10e6);
  NetworkSimulator sim(&net.topo);
  ASSERT_TRUE(sim.StartFlow(net.path, 100e6).ok());
  ASSERT_TRUE(sim.AdvanceTo(5.0).ok());
  // A target inside (now - kFluidEpsilon, now) is legal (it is not
  // "backwards" under the fluid tolerance) and must act as a zero-length
  // step; it used to trip a negative-dt check and abort.
  ASSERT_TRUE(sim.AdvanceTo(5.0 - 0.5 * kFluidEpsilon).ok());
  EXPECT_EQ(sim.now(), 5.0);
  auto end = sim.RunUntilIdle();
  ASSERT_TRUE(end.ok());
  EXPECT_NEAR(*end, 10.0, 1e-6);
}

TEST(NetworkSimulatorTest, RejectsPathThatRepeatsALink) {
  SimpleNet net = MakeSimpleNet();
  NetworkSimulator sim(&net.topo);
  EXPECT_FALSE(sim.StartFlow({net.path[0], net.path[1], net.path[0]}, 10.0).ok());
}

TEST(NetworkSimulatorTest, MaxCapacityViolationIsZeroWithoutCapacity) {
  // No link has positive capacity -> nothing can be violated; must be 0,
  // not -infinity.
  Topology topo;
  topo.AddDatacenter("a");
  NetworkSimulator sim(&topo);
  EXPECT_EQ(sim.MaxCapacityViolation(), 0.0);

  // Sanity: with real capacity and no traffic the violation is negative.
  SimpleNet net = MakeSimpleNet(10e6);
  NetworkSimulator sim2(&net.topo);
  EXPECT_LT(sim2.MaxCapacityViolation(), 0.0);
  EXPECT_GT(sim2.MaxCapacityViolation(), -2.0);
}

TEST(NetworkSimulatorTest, TrackedSeriesEndsAtFinalTime) {
  SimpleNet net = MakeSimpleNet(10e6);
  NetworkSimulator sim(&net.topo);
  sim.TrackLinkUtilization(net.path[1]);
  ASSERT_TRUE(sim.StartFlow(net.path, 20e6).ok());
  auto end = sim.RunUntilIdle();
  ASSERT_TRUE(end.ok());
  const TimeSeries* series = sim.LinkUtilizationSeries(net.path[1]);
  ASSERT_NE(series, nullptr);
  ASSERT_FALSE(series->empty());
  // The series must close at the actual end of the run, showing the link
  // back at zero bulk utilization.
  EXPECT_EQ(series->points().back().t, *end);
  EXPECT_NEAR(series->points().back().value, 0.0, 1e-9);

  // Deadline-bounded runs close the series at the deadline too.
  NetworkSimulator sim2(&net.topo);
  sim2.TrackLinkUtilization(net.path[1]);
  ASSERT_TRUE(sim2.StartFlow(net.path, 100e6).ok());
  auto cut = sim2.RunUntilIdle(/*deadline=*/3.0);
  ASSERT_TRUE(cut.ok());
  EXPECT_NEAR(*cut, 3.0, 1e-9);
  const TimeSeries* series2 = sim2.LinkUtilizationSeries(net.path[1]);
  ASSERT_NE(series2, nullptr);
  ASSERT_FALSE(series2->empty());
  EXPECT_EQ(series2->points().back().t, *cut);
}

TEST(NetworkSimulatorTest, LinkAccountingTracksBytes) {
  SimpleNet net = MakeSimpleNet(10e6);
  NetworkSimulator sim(&net.topo);
  ASSERT_TRUE(sim.StartFlow(net.path, 30e6).ok());
  ASSERT_TRUE(sim.RunUntilIdle().ok());
  for (LinkId l : net.path) {
    EXPECT_NEAR(sim.LinkBytesTransferred(l), 30e6, 1.0);
  }
}

TEST(NetworkSimulatorTest, UtilizationReflectsActiveFlows) {
  SimpleNet net = MakeSimpleNet(10e6);
  NetworkSimulator sim(&net.topo);
  ASSERT_TRUE(sim.StartFlow(net.path, 100e6).ok());
  ASSERT_TRUE(sim.AdvanceTo(1.0).ok());
  EXPECT_NEAR(sim.LinkUtilization(net.path[1]), 1.0, 1e-6);
  EXPECT_NEAR(sim.LinkBulkRate(net.path[1]), 10e6, 1.0);
}

TEST(NetworkSimulatorTest, TrackedUtilizationSeries) {
  SimpleNet net = MakeSimpleNet(10e6);
  NetworkSimulator sim(&net.topo);
  sim.TrackLinkUtilization(net.path[1]);
  ASSERT_TRUE(sim.StartFlow(net.path, 20e6).ok());
  ASSERT_TRUE(sim.RunUntilIdle().ok());
  const TimeSeries* series = sim.LinkUtilizationSeries(net.path[1]);
  ASSERT_NE(series, nullptr);
  EXPECT_FALSE(series->empty());
  EXPECT_NEAR(series->MaxValue(), 1.0, 1e-6);
  EXPECT_EQ(sim.LinkUtilizationSeries(net.path[0]), nullptr);  // Untracked.
}

TEST(NetworkSimulatorTest, Figure1Scenario) {
  // The paper's Figure 1: WAN links of 1 GB/s between any two of A, B, C.
  // Sending 3 GB from A to both B and C:
  //  (a) two direct transfers -> 3 s;
  //  (b) splitting across A->B->C and A->C->B overlay paths -> 2 s.
  auto topo = BuildFullMesh(3, 1, GBps(1.0), GBps(10.0), GBps(10.0));
  ASSERT_TRUE(topo.ok());
  auto routing = WanRoutingTable::Build(*topo, 2);
  ASSERT_TRUE(routing.ok());
  ServerId a = topo->ServersIn(0)[0];
  ServerId b = topo->ServersIn(1)[0];
  ServerId c = topo->ServersIn(2)[0];

  // (a) Direct: A->B 3 GB and A->C 3 GB. The server uplink at 10 GB/s is not
  // limiting; each WAN link carries 1 GB/s -> 3 s.
  {
    NetworkSimulator sim(&*topo);
    auto pab = MakeServerPath(*topo, *routing, a, b).value();
    auto pac = MakeServerPath(*topo, *routing, a, c).value();
    ASSERT_TRUE(sim.StartFlow(pab.links, GB(3.0)).ok());
    ASSERT_TRUE(sim.StartFlow(pac.links, GB(3.0)).ok());
    auto end = sim.RunUntilIdle();
    ASSERT_TRUE(end.ok());
    EXPECT_NEAR(*end, 3.0, 1e-6);
  }

  // (b) Overlay: A sends half to B and half to C in parallel (1 s each on
  // disjoint WAN links); relays forward in a second stage (1 s). Here we
  // model the two stages explicitly: total 2 s.
  {
    NetworkSimulator sim(&*topo);
    auto pab = MakeServerPath(*topo, *routing, a, b).value();
    auto pac = MakeServerPath(*topo, *routing, a, c).value();
    ASSERT_TRUE(sim.StartFlow(pab.links, GB(1.5)).ok());
    ASSERT_TRUE(sim.StartFlow(pac.links, GB(1.5)).ok());
    ASSERT_TRUE(sim.RunUntilIdle().ok());
    EXPECT_NEAR(sim.now(), 1.5, 1e-6);
    auto pbc = MakeServerPath(*topo, *routing, b, c).value();
    auto pcb = MakeServerPath(*topo, *routing, c, b).value();
    ASSERT_TRUE(sim.StartFlow(pbc.links, GB(1.5)).ok());
    ASSERT_TRUE(sim.StartFlow(pcb.links, GB(1.5)).ok());
    auto end = sim.RunUntilIdle();
    ASSERT_TRUE(end.ok());
    // Store-and-forward in two coarse stages: 3 s total; with fine-grained
    // pipelining (the paper's circled block order) this approaches 2 s.
    EXPECT_NEAR(*end, 3.0, 1e-6);
  }

  // (b') Fine-grained pipelining: 6 x 0.5 GB blocks; relays forward each
  // block as soon as it lands. The last block lands at a relay at 1.5 s and
  // its forward takes 0.5 s -> 2.0 s, matching Figure 1(b).
  {
    NetworkSimulator sim(&*topo);
    auto pab = MakeServerPath(*topo, *routing, a, b).value();
    auto pac = MakeServerPath(*topo, *routing, a, c).value();
    auto pbc = MakeServerPath(*topo, *routing, b, c).value();
    auto pcb = MakeServerPath(*topo, *routing, c, b).value();
    // Blocks are sent in sequence on each first-hop path (the paper's
    // circled order); each block is forwarded the moment it lands.
    int pending[2] = {2, 2};  // Blocks still to send after the first, per path.
    sim.SetCompletionCallback([&](const FlowRecord& r) {
      if (r.tag == 1) {  // First-hop block landed at a relay.
        int path = static_cast<int>(r.tag2);
        const auto& fwd = (path == 0) ? pbc : pcb;
        ASSERT_TRUE(sim.StartFlow(fwd.links, GB(0.5), 0.0, /*tag=*/2, r.tag2).ok());
        if (pending[path] > 0) {
          --pending[path];
          const auto& first = (path == 0) ? pab : pac;
          ASSERT_TRUE(sim.StartFlow(first.links, GB(0.5), 0.0, 1, r.tag2).ok());
        }
      }
    });
    ASSERT_TRUE(sim.StartFlow(pab.links, GB(0.5), 0.0, 1, 0).ok());
    ASSERT_TRUE(sim.StartFlow(pac.links, GB(0.5), 0.0, 1, 1).ok());
    auto end = sim.RunUntilIdle();
    ASSERT_TRUE(end.ok());
    EXPECT_NEAR(*end, 2.0, 1e-6);
  }
}

TEST(LatencyModelTest, SamplesArePositiveAndScaleWithDistance) {
  GeoTopologyOptions opt;
  opt.num_dcs = 3;
  opt.servers_per_dc = 1;
  auto topo = BuildGeoTopology(opt);
  ASSERT_TRUE(topo.ok());
  topo->SetDcLatency(0, 1, 0.010);
  topo->SetDcLatency(0, 2, 0.100);
  LatencyModel model(&*topo);
  double sum_near = 0.0;
  double sum_far = 0.0;
  for (int i = 0; i < 2000; ++i) {
    double near = model.SampleOneWay(0, 1);
    double far = model.SampleOneWay(0, 2);
    EXPECT_GT(near, 0.0);
    EXPECT_GT(far, 0.0);
    sum_near += near;
    sum_far += far;
  }
  EXPECT_GT(sum_far, sum_near * 3.0);
}

TEST(LatencyModelTest, IntraDcIsJustOverhead) {
  GeoTopologyOptions opt;
  opt.num_dcs = 2;
  opt.servers_per_dc = 1;
  auto topo = BuildGeoTopology(opt);
  ASSERT_TRUE(topo.ok());
  LatencyModel::Options mopt;
  mopt.processing_overhead = 0.002;
  LatencyModel model(&*topo, mopt);
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(model.SampleOneWay(0, 0), 0.002, 1e-9);
  }
}

TEST(LatencyModelTest, RttIsSumOfTwoOneWays) {
  GeoTopologyOptions opt;
  opt.num_dcs = 2;
  opt.servers_per_dc = 1;
  auto topo = BuildGeoTopology(opt);
  ASSERT_TRUE(topo.ok());
  topo->SetDcLatency(0, 1, 0.02);
  LatencyModel model(&*topo);
  for (int i = 0; i < 100; ++i) {
    double rtt = model.SampleRtt(0, 1);
    EXPECT_GT(rtt, 0.004);  // At least two processing overheads.
  }
}

}  // namespace
}  // namespace bds
