#include "src/scheduler/controller_algorithm.h"

#include <gtest/gtest.h>

#include <set>

#include "src/scheduler/bandwidth_separator.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

struct Fixture {
  Topology topo;
  WanRoutingTable routing;
  ReplicaState state;
  std::vector<Rate> residual;

  explicit Fixture(int64_t blocks = 8, int servers = 2, int dcs = 3)
      : topo(BuildFullMesh(dcs, servers, Gbps(10.0), MBps(20.0), MBps(20.0)).value()),
        routing(WanRoutingTable::Build(topo, 3).value()),
        state(&topo) {
    std::vector<DcId> dests;
    for (DcId d = 1; d < dcs; ++d) {
      dests.push_back(d);
    }
    MulticastJob job = MakeJob(1, 0, dests, MB(2.0) * static_cast<double>(blocks), MB(2.0)).value();
    BDS_CHECK(state.AddJob(job).ok());
    for (const Link& l : topo.links()) {
      residual.push_back(l.capacity);
    }
  }
};

ControllerAlgorithmOptions DefaultOptions() {
  ControllerAlgorithmOptions opt;
  opt.cycle_length = 3.0;
  return opt;
}

TEST(ControllerAlgorithmTest, SchedulesAndRoutesSomething) {
  Fixture f;
  ControllerAlgorithm algo(&f.topo, &f.routing, DefaultOptions());
  CycleDecision d = algo.Decide(0, f.state, f.residual, {});
  EXPECT_GT(d.scheduled_blocks, 0);
  EXPECT_GT(d.merged_subtasks, 0);
  EXPECT_FALSE(d.transfers.empty());
  EXPECT_GE(d.scheduling_seconds, 0.0);
  EXPECT_GE(d.routing_seconds, 0.0);
}

TEST(ControllerAlgorithmTest, TransfersRespectResidualCapacity) {
  Fixture f;
  ControllerAlgorithm algo(&f.topo, &f.routing, DefaultOptions());
  CycleDecision d = algo.Decide(0, f.state, f.residual, {});
  std::vector<double> load(f.residual.size(), 0.0);
  for (const TransferAssignment& t : d.transfers) {
    EXPECT_GT(t.rate, 0.0);
    EXPECT_GT(t.bytes, 0.0);
    EXPECT_FALSE(t.blocks.empty());
    for (LinkId l : t.path.links) {
      load[static_cast<size_t>(l)] += t.rate;
    }
  }
  for (size_t l = 0; l < load.size(); ++l) {
    EXPECT_LE(load[l], f.residual[l] * (1.0 + 1e-6)) << "link " << l;
  }
}

TEST(ControllerAlgorithmTest, NoDuplicateDeliveriesInOneCycle) {
  Fixture f;
  ControllerAlgorithm algo(&f.topo, &f.routing, DefaultOptions());
  CycleDecision d = algo.Decide(0, f.state, f.residual, {});
  std::set<std::tuple<JobId, int64_t, ServerId>> seen;
  for (const TransferAssignment& t : d.transfers) {
    for (int64_t b : t.blocks) {
      auto key = std::make_tuple(t.job, b, t.dst_server);
      EXPECT_TRUE(seen.insert(key).second) << "duplicate delivery of block " << b;
    }
  }
}

TEST(ControllerAlgorithmTest, InFlightDeliveriesExcluded) {
  Fixture f;
  ControllerAlgorithm algo(&f.topo, &f.routing, DefaultOptions());
  DeliveryKeySet in_flight;
  for (const PendingDelivery& p : f.state.PendingDeliveries()) {
    in_flight.insert(DeliveryKey{p.job, p.block, p.dc});
  }
  CycleDecision d = algo.Decide(0, f.state, f.residual, in_flight);
  EXPECT_EQ(d.scheduled_blocks, 0);
  EXPECT_TRUE(d.transfers.empty());
}

TEST(ControllerAlgorithmTest, RarestFirstPrefersScarceBlocks) {
  Fixture f(/*blocks=*/8);
  // Give block 0 two extra replicas so it is the most duplicated.
  ASSERT_TRUE(f.state.AddReplica(1, 0, f.state.AssignedServer(1, 0, 1)).ok());
  ControllerAlgorithmOptions opt = DefaultOptions();
  opt.max_deliveries_per_cycle = 4;  // Force a choice.
  ControllerAlgorithm algo(&f.topo, &f.routing, opt);
  CycleDecision d = algo.Decide(0, f.state, f.residual, {});
  for (const TransferAssignment& t : d.transfers) {
    for (int64_t b : t.blocks) {
      // The duplicated block must not be chosen while rarer ones wait.
      EXPECT_NE(b, 0);
    }
  }
}

TEST(ControllerAlgorithmTest, MergingReducesSubtaskCount) {
  Fixture f(/*blocks=*/16, /*servers=*/1);  // One server per DC: heavy merging.
  ControllerAlgorithmOptions merged = DefaultOptions();
  ControllerAlgorithmOptions unmerged = DefaultOptions();
  unmerged.merge_subtasks = false;
  ControllerAlgorithm a1(&f.topo, &f.routing, merged);
  ControllerAlgorithm a2(&f.topo, &f.routing, unmerged);
  CycleDecision d1 = a1.Decide(0, f.state, f.residual, {});
  CycleDecision d2 = a2.Decide(0, f.state, f.residual, {});
  ASSERT_GT(d1.scheduled_blocks, 0);
  EXPECT_EQ(d1.scheduled_blocks, d2.scheduled_blocks);
  EXPECT_LT(d1.merged_subtasks, d2.merged_subtasks);
}

TEST(ControllerAlgorithmTest, ExactLpModeAgreesWithFptasOnThroughput) {
  Fixture f(/*blocks=*/4, /*servers=*/1);
  ControllerAlgorithmOptions fast = DefaultOptions();
  ControllerAlgorithmOptions exact = DefaultOptions();
  exact.use_exact_lp = true;
  ControllerAlgorithm a1(&f.topo, &f.routing, fast);
  ControllerAlgorithm a2(&f.topo, &f.routing, exact);
  auto total_rate = [](const CycleDecision& d) {
    double r = 0.0;
    for (const auto& t : d.transfers) {
      r += t.rate;
    }
    return r;
  };
  CycleDecision d1 = a1.Decide(0, f.state, f.residual, {});
  CycleDecision d2 = a2.Decide(0, f.state, f.residual, {});
  ASSERT_GT(total_rate(d2), 0.0);
  EXPECT_GE(total_rate(d1), total_rate(d2) * 0.7);
  EXPECT_LE(total_rate(d1), total_rate(d2) * 1.000001);
}

TEST(ControllerAlgorithmTest, DownloadBudgetLimitsPerCycleSelection) {
  // 100 blocks but each destination server can only ingest
  // 20 MB/s * 3 s = 60 MB = 30 blocks per cycle.
  Fixture f(/*blocks=*/100, /*servers=*/1, /*dcs=*/2);
  ControllerAlgorithm algo(&f.topo, &f.routing, DefaultOptions());
  CycleDecision d = algo.Decide(0, f.state, f.residual, {});
  EXPECT_LE(d.scheduled_blocks, 30);
  EXPECT_GT(d.scheduled_blocks, 0);
}

TEST(ControllerAlgorithmTest, ZeroResidualMeansNoTransfers) {
  Fixture f;
  std::vector<Rate> zero(f.residual.size(), 0.0);
  ControllerAlgorithm algo(&f.topo, &f.routing, DefaultOptions());
  CycleDecision d = algo.Decide(0, f.state, f.residual, {});
  ASSERT_FALSE(d.transfers.empty());
  CycleDecision dz = algo.Decide(0, f.state, zero, {});
  EXPECT_TRUE(dz.transfers.empty());
}

// A workload big enough that scheduling hits budget limits and routing has
// multi-path commodities — the regime where the optimization knobs actually
// take different code paths.
Fixture BigFixture() {
  Fixture f(/*blocks=*/200, /*servers=*/3, /*dcs=*/4);
  // Scatter a few replicas so duplicate counts (and thus rarest-first
  // ordering) are non-uniform.
  for (int64_t b = 0; b < 40; b += 7) {
    BDS_CHECK(f.state.AddReplica(1, b, f.state.AssignedServer(1, b, 1)).ok());
  }
  return f;
}

uint64_t DecideFingerprint(Fixture& f, const ControllerAlgorithmOptions& opt) {
  ControllerAlgorithm algo(&f.topo, &f.routing, opt);
  CycleDecision d = algo.Decide(0, f.state, f.residual, {});
  BDS_CHECK(d.scheduled_blocks > 0);  // A trivial decision proves nothing.
  return d.Fingerprint();
}

TEST(ControllerAlgorithmTest, ThreadCountDoesNotChangeFingerprint) {
  Fixture f = BigFixture();
  ControllerAlgorithmOptions opt = DefaultOptions();
  opt.num_threads = 1;
  uint64_t serial = DecideFingerprint(f, opt);
  for (int threads : {2, 4, 8}) {
    opt.num_threads = threads;
    EXPECT_EQ(DecideFingerprint(f, opt), serial) << threads << " threads";
  }
}

TEST(ControllerAlgorithmTest, OptimizationKnobsDoNotChangeFingerprint) {
  Fixture f = BigFixture();
  ControllerAlgorithmOptions opt = DefaultOptions();
  opt.use_incremental_fptas = false;
  opt.use_path_cache = false;
  opt.use_sched_early_exit = false;
  uint64_t baseline = DecideFingerprint(f, opt);
  // Each knob alone, then all together (threaded) — every combination the
  // ablation bench exercises must agree with the unoptimized build.
  for (int mask = 1; mask < 8; ++mask) {
    opt.use_incremental_fptas = (mask & 1) != 0;
    opt.use_path_cache = (mask & 2) != 0;
    opt.use_sched_early_exit = (mask & 4) != 0;
    opt.num_threads = (mask == 7) ? 4 : 1;
    EXPECT_EQ(DecideFingerprint(f, opt), baseline) << "knob mask " << mask;
  }
}

TEST(ControllerAlgorithmTest, KnobParityHoldsForEveryPolicy) {
  for (SchedulingPolicy policy :
       {SchedulingPolicy::kRarestFirst, SchedulingPolicy::kRandom, SchedulingPolicy::kSequential}) {
    Fixture f = BigFixture();
    ControllerAlgorithmOptions opt = DefaultOptions();
    opt.policy = policy;
    opt.use_incremental_fptas = false;
    opt.use_path_cache = false;
    opt.use_sched_early_exit = false;
    uint64_t baseline = DecideFingerprint(f, opt);
    opt.use_incremental_fptas = true;
    opt.use_path_cache = true;
    opt.use_sched_early_exit = true;
    opt.num_threads = 4;
    EXPECT_EQ(DecideFingerprint(f, opt), baseline)
        << "policy " << static_cast<int>(policy);
  }
}

TEST(ControllerAlgorithmTest, PathCacheSurvivesInvalidation) {
  Fixture f = BigFixture();
  ControllerAlgorithm algo(&f.topo, &f.routing, DefaultOptions());
  CycleDecision before = algo.Decide(0, f.state, f.residual, {});
  algo.InvalidatePathCache();
  CycleDecision after = algo.Decide(0, f.state, f.residual, {});
  EXPECT_EQ(before.Fingerprint(), after.Fingerprint());
}

TEST(SplitBlocksAcrossPathsTest, ProportionalWithRemainderToLargest) {
  // 10 blocks over rates 3:1 -> floor gives 7 and 2, remainder to the
  // highest-rate path.
  auto split = SplitBlocksAcrossPaths(10, {3.0, 1.0});
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0] + split[1], 10);
  EXPECT_EQ(split[0], 8);
  EXPECT_EQ(split[1], 2);
}

TEST(SplitBlocksAcrossPathsTest, SinglePathTakesEverything) {
  auto split = SplitBlocksAcrossPaths(5, {2.5});
  ASSERT_EQ(split.size(), 1u);
  EXPECT_EQ(split[0], 5);
}

TEST(SplitBlocksAcrossPathsTest, ZeroRatePathsGetNothing) {
  // The re-crediting fix: blocks a dead path would have received must land on
  // the best path, not vanish.
  auto split = SplitBlocksAcrossPaths(9, {0.0, 4.0, 0.0});
  ASSERT_EQ(split.size(), 3u);
  EXPECT_EQ(split[0], 0);
  EXPECT_EQ(split[1], 9);
  EXPECT_EQ(split[2], 0);
}

TEST(SplitBlocksAcrossPathsTest, AllZeroRatesMeansNoBlocks) {
  auto split = SplitBlocksAcrossPaths(4, {0.0, 0.0});
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0], 0);
  EXPECT_EQ(split[1], 0);
}

TEST(SplitBlocksAcrossPathsTest, ConservesTotalAcrossRandomShapes) {
  // Conservation property: counts always sum to num_blocks whenever any path
  // has meaningful rate, regardless of the rate mix.
  const std::vector<std::vector<double>> rate_sets = {
      {1.0, 1.0, 1.0}, {5.0, 0.25, 0.25}, {1e-12, 2.0}, {0.7, 0.2, 0.1, 0.0}};
  for (const auto& rates : rate_sets) {
    for (int64_t n : {1, 2, 7, 100}) {
      auto split = SplitBlocksAcrossPaths(n, rates);
      int64_t total = 0;
      for (int64_t c : split) {
        EXPECT_GE(c, 0);
        total += c;
      }
      EXPECT_EQ(total, n) << "n=" << n;
    }
  }
}

TEST(BandwidthSeparatorTest, ThresholdAppliedToWanOnly) {
  Topology topo = BuildFullMesh(2, 1, Gbps(10.0), MBps(20.0), MBps(20.0)).value();
  BandwidthSeparator::Options opt;
  opt.safety_threshold = 0.8;
  BandwidthSeparator sep(&topo, opt);
  std::vector<Rate> residual = sep.ResidualCapacities({});
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    if (topo.link(l).type == LinkType::kWan) {
      EXPECT_DOUBLE_EQ(residual[static_cast<size_t>(l)], Gbps(10.0) * 0.8);
    } else {
      EXPECT_DOUBLE_EQ(residual[static_cast<size_t>(l)], MBps(20.0));
    }
  }
}

TEST(BandwidthSeparatorTest, OnlineTrafficSubtracted) {
  Topology topo = BuildFullMesh(2, 1, Gbps(10.0), MBps(20.0), MBps(20.0)).value();
  BandwidthSeparator sep(&topo);
  LinkId wan = kInvalidLink;
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    if (topo.link(l).type == LinkType::kWan) {
      wan = l;
      break;
    }
  }
  std::vector<Rate> online(static_cast<size_t>(topo.num_links()), 0.0);
  online[static_cast<size_t>(wan)] = Gbps(5.0);
  std::vector<Rate> residual = sep.ResidualCapacities(online);
  EXPECT_DOUBLE_EQ(residual[static_cast<size_t>(wan)], Gbps(10.0) * 0.8 - Gbps(5.0));
}

TEST(BandwidthSeparatorTest, OnlineBeyondThresholdMeansZero) {
  Topology topo = BuildFullMesh(2, 1, Gbps(10.0), MBps(20.0), MBps(20.0)).value();
  BandwidthSeparator sep(&topo);
  std::vector<Rate> online(static_cast<size_t>(topo.num_links()), Gbps(9.0));
  std::vector<Rate> residual = sep.ResidualCapacities(online);
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    if (topo.link(l).type == LinkType::kWan) {
      EXPECT_DOUBLE_EQ(residual[static_cast<size_t>(l)], 0.0);
    }
  }
}

TEST(BandwidthSeparatorTest, BulkRateCapApplies) {
  Topology topo = BuildFullMesh(2, 1, GBps(20.0), MBps(20.0), MBps(20.0)).value();
  BandwidthSeparator::Options opt;
  opt.bulk_rate_cap = GBps(10.0);  // Fig 10's 10 GB/s limit.
  BandwidthSeparator sep(&topo, opt);
  std::vector<Rate> residual = sep.ResidualCapacities({});
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    if (topo.link(l).type == LinkType::kWan) {
      EXPECT_DOUBLE_EQ(residual[static_cast<size_t>(l)], GBps(10.0));
    }
  }
}

}  // namespace
}  // namespace bds
