#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/table.h"

namespace bds {
namespace {

TEST(AsciiTableTest, RendersHeaderAndRows) {
  AsciiTable t({"solution", "time (m)"});
  t.AddRow({"BDS", "9.41"});
  t.AddRow({"Bullet", "28"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("solution"), std::string::npos);
  EXPECT_NE(s.find("BDS"), std::string::npos);
  EXPECT_NE(s.find("9.41"), std::string::npos);
  EXPECT_NE(s.find("Bullet"), std::string::npos);
}

TEST(AsciiTableTest, ColumnsAligned) {
  AsciiTable t({"a", "b"});
  t.AddRow({"longvalue", "x"});
  std::string s = t.ToString();
  // Every rendered line between separators must have equal length.
  size_t first_len = s.find('\n');
  std::vector<size_t> lens;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find('\n', start);
    if (end == std::string::npos) {
      break;
    }
    lens.push_back(end - start);
    start = end + 1;
  }
  ASSERT_GE(lens.size(), 4u);
  for (size_t len : lens) {
    EXPECT_EQ(len, first_len);
  }
}

TEST(AsciiTableTest, NumFormatting) {
  EXPECT_EQ(AsciiTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::Num(10.0, 0), "10");
}

// Helper to run the parser against a synthetic argv.
bool RunParser(FlagParser& parser, std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string prog = "test";
  argv.push_back(prog.data());
  for (auto& a : args) {
    argv.push_back(a.data());
  }
  return parser.Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParserTest, ParsesAllKinds) {
  FlagParser p;
  int i = 0;
  int64_t big = 0;
  double d = 0.0;
  bool b = false;
  std::string s;
  p.AddInt("count", &i, "");
  p.AddInt("blocks", &big, "");
  p.AddDouble("rate", &d, "");
  p.AddBool("verbose", &b, "");
  p.AddString("name", &s, "");
  ASSERT_TRUE(RunParser(
      p, {"--count=3", "--blocks", "5000000000", "--rate=2.5", "--verbose", "--name=bds"}));
  EXPECT_EQ(i, 3);
  EXPECT_EQ(big, 5000000000LL);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "bds");
}

TEST(FlagParserTest, NoPrefixDisablesBool) {
  FlagParser p;
  bool b = true;
  p.AddBool("track", &b, "");
  ASSERT_TRUE(RunParser(p, {"--no-track"}));
  EXPECT_FALSE(b);
}

TEST(FlagParserTest, RejectsUnknownFlag) {
  FlagParser p;
  int i = 0;
  p.AddInt("count", &i, "");
  EXPECT_FALSE(RunParser(p, {"--bogus=1"}));
}

TEST(FlagParserTest, RejectsBadValue) {
  FlagParser p;
  int i = 0;
  p.AddInt("count", &i, "");
  EXPECT_FALSE(RunParser(p, {"--count=abc"}));
}

TEST(FlagParserTest, RejectsMissingValue) {
  FlagParser p;
  int i = 0;
  p.AddInt("count", &i, "");
  EXPECT_FALSE(RunParser(p, {"--count"}));
}

TEST(FlagParserTest, HelpReturnsFalse) {
  FlagParser p;
  EXPECT_FALSE(RunParser(p, {"--help"}));
}

TEST(FlagParserTest, DefaultsSurviveEmptyArgs) {
  FlagParser p;
  int i = 42;
  p.AddInt("count", &i, "");
  ASSERT_TRUE(RunParser(p, {}));
  EXPECT_EQ(i, 42);
}

TEST(LoggingTest, ThresholdSuppressesBelowLevel) {
  SetLogLevel(LogLevel::kError);
  int64_t before = LogMessageCount();
  BDS_LOG(INFO) << "suppressed";
  BDS_LOG(WARNING) << "suppressed";
  EXPECT_EQ(LogMessageCount(), before);
  BDS_LOG(ERROR) << "emitted (expected in test output)";
  EXPECT_EQ(LogMessageCount(), before + 1);
  SetLogLevel(LogLevel::kWarning);
}

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(prev);
}

// RAII capture of log output through the pluggable sink.
class SinkCapture {
 public:
  SinkCapture() {
    SetLogSink([this](LogLevel level, const std::string& line) {
      levels.push_back(level);
      lines.push_back(line);
    });
  }
  ~SinkCapture() { SetLogSink(nullptr); }

  std::vector<LogLevel> levels;
  std::vector<std::string> lines;
};

TEST(LoggingTest, SinkReceivesFormattedLines) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  int64_t before = LogMessageCount();
  {
    SinkCapture capture;
    BDS_LOG(INFO) << "to the sink " << 42;
    ASSERT_EQ(capture.lines.size(), 1u);
    EXPECT_EQ(capture.levels[0], LogLevel::kInfo);
    EXPECT_NE(capture.lines[0].find("to the sink 42"), std::string::npos);
    // Prefix still present: "[I file:line] ".
    EXPECT_NE(capture.lines[0].find("[I "), std::string::npos);
    EXPECT_NE(capture.lines[0].find("common_table_flags_test"), std::string::npos);
  }
  // Counting is unaffected by where the message went.
  EXPECT_EQ(LogMessageCount(), before + 1);
  SetLogLevel(prev);
}

TEST(LoggingTest, TimestampsPrefixWhenEnabled) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  {
    SinkCapture capture;
    SetLogTimestamps(true);
    BDS_LOG(INFO) << "stamped";
    SetLogTimestamps(false);
    BDS_LOG(INFO) << "bare";
    ASSERT_EQ(capture.lines.size(), 2u);
    // "YYYY-MM-DD HH:MM:SS [I ..." — starts with a digit, not '['.
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(capture.lines[0][0])));
    EXPECT_EQ(capture.lines[1][0], '[');
  }
  SetLogLevel(prev);
}

TEST(LoggingTest, LogEveryNEmitsFirstAndEveryNth) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kInfo);
  int64_t before = LogMessageCount();
  {
    SinkCapture capture;
    for (int i = 0; i < 10; ++i) {
      BDS_LOG_EVERY_N(INFO, 3) << "tick " << i;
    }
    // Iterations 0, 3, 6, 9 emit.
    ASSERT_EQ(capture.lines.size(), 4u);
    EXPECT_NE(capture.lines[0].find("tick 0"), std::string::npos);
    EXPECT_NE(capture.lines[3].find("tick 9"), std::string::npos);
  }
  EXPECT_EQ(LogMessageCount(), before + 4);
  SetLogLevel(prev);
}

TEST(LoggingTest, LogEveryNRespectsThreshold) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int64_t before = LogMessageCount();
  for (int i = 0; i < 10; ++i) {
    BDS_LOG_EVERY_N(INFO, 2) << "suppressed";
  }
  EXPECT_EQ(LogMessageCount(), before);
  SetLogLevel(prev);
}

TEST(LoggingTest, LogEveryNIsDanglingElseSafe) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int64_t before = LogMessageCount();
  bool else_taken = false;
  if (false) {
    BDS_LOG_EVERY_N(INFO, 1) << "never";
  } else {
    else_taken = true;
  }
  EXPECT_TRUE(else_taken);
  EXPECT_EQ(LogMessageCount(), before);
  SetLogLevel(prev);
}

TEST(LoggingTest, InitLogLevelFromEnvParses) {
  LogLevel prev = GetLogLevel();
  ASSERT_EQ(setenv("BDS_LOG_LEVEL", "debug", 1), 0);
  EXPECT_TRUE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  ASSERT_EQ(setenv("BDS_LOG_LEVEL", "3", 1), 0);
  EXPECT_TRUE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  ASSERT_EQ(setenv("BDS_LOG_LEVEL", "not-a-level", 1), 0);
  EXPECT_FALSE(InitLogLevelFromEnv());
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);  // Unchanged on parse failure.
  ASSERT_EQ(unsetenv("BDS_LOG_LEVEL"), 0);
  EXPECT_FALSE(InitLogLevelFromEnv());
  SetLogLevel(prev);
}

}  // namespace
}  // namespace bds
