#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/logging.h"
#include "src/common/table.h"

namespace bds {
namespace {

TEST(AsciiTableTest, RendersHeaderAndRows) {
  AsciiTable t({"solution", "time (m)"});
  t.AddRow({"BDS", "9.41"});
  t.AddRow({"Bullet", "28"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("solution"), std::string::npos);
  EXPECT_NE(s.find("BDS"), std::string::npos);
  EXPECT_NE(s.find("9.41"), std::string::npos);
  EXPECT_NE(s.find("Bullet"), std::string::npos);
}

TEST(AsciiTableTest, ColumnsAligned) {
  AsciiTable t({"a", "b"});
  t.AddRow({"longvalue", "x"});
  std::string s = t.ToString();
  // Every rendered line between separators must have equal length.
  size_t first_len = s.find('\n');
  std::vector<size_t> lens;
  size_t start = 0;
  while (start < s.size()) {
    size_t end = s.find('\n', start);
    if (end == std::string::npos) {
      break;
    }
    lens.push_back(end - start);
    start = end + 1;
  }
  ASSERT_GE(lens.size(), 4u);
  for (size_t len : lens) {
    EXPECT_EQ(len, first_len);
  }
}

TEST(AsciiTableTest, NumFormatting) {
  EXPECT_EQ(AsciiTable::Num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::Num(10.0, 0), "10");
}

// Helper to run the parser against a synthetic argv.
bool RunParser(FlagParser& parser, std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::string prog = "test";
  argv.push_back(prog.data());
  for (auto& a : args) {
    argv.push_back(a.data());
  }
  return parser.Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParserTest, ParsesAllKinds) {
  FlagParser p;
  int i = 0;
  int64_t big = 0;
  double d = 0.0;
  bool b = false;
  std::string s;
  p.AddInt("count", &i, "");
  p.AddInt("blocks", &big, "");
  p.AddDouble("rate", &d, "");
  p.AddBool("verbose", &b, "");
  p.AddString("name", &s, "");
  ASSERT_TRUE(RunParser(
      p, {"--count=3", "--blocks", "5000000000", "--rate=2.5", "--verbose", "--name=bds"}));
  EXPECT_EQ(i, 3);
  EXPECT_EQ(big, 5000000000LL);
  EXPECT_DOUBLE_EQ(d, 2.5);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "bds");
}

TEST(FlagParserTest, NoPrefixDisablesBool) {
  FlagParser p;
  bool b = true;
  p.AddBool("track", &b, "");
  ASSERT_TRUE(RunParser(p, {"--no-track"}));
  EXPECT_FALSE(b);
}

TEST(FlagParserTest, RejectsUnknownFlag) {
  FlagParser p;
  int i = 0;
  p.AddInt("count", &i, "");
  EXPECT_FALSE(RunParser(p, {"--bogus=1"}));
}

TEST(FlagParserTest, RejectsBadValue) {
  FlagParser p;
  int i = 0;
  p.AddInt("count", &i, "");
  EXPECT_FALSE(RunParser(p, {"--count=abc"}));
}

TEST(FlagParserTest, RejectsMissingValue) {
  FlagParser p;
  int i = 0;
  p.AddInt("count", &i, "");
  EXPECT_FALSE(RunParser(p, {"--count"}));
}

TEST(FlagParserTest, HelpReturnsFalse) {
  FlagParser p;
  EXPECT_FALSE(RunParser(p, {"--help"}));
}

TEST(FlagParserTest, DefaultsSurviveEmptyArgs) {
  FlagParser p;
  int i = 42;
  p.AddInt("count", &i, "");
  ASSERT_TRUE(RunParser(p, {}));
  EXPECT_EQ(i, 42);
}

TEST(LoggingTest, ThresholdSuppressesBelowLevel) {
  SetLogLevel(LogLevel::kError);
  int64_t before = LogMessageCount();
  BDS_LOG(INFO) << "suppressed";
  BDS_LOG(WARNING) << "suppressed";
  EXPECT_EQ(LogMessageCount(), before);
  BDS_LOG(ERROR) << "emitted (expected in test output)";
  EXPECT_EQ(LogMessageCount(), before + 1);
  SetLogLevel(LogLevel::kWarning);
}

TEST(LoggingTest, LevelRoundTrip) {
  LogLevel prev = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(prev);
}

}  // namespace
}  // namespace bds
