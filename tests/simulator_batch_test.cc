// Batched-churn and SoA hot-path edge cases:
//  * Flow/FlowView::RemainingAt clamps at zero (no negative remaining);
//  * rate_epoch lazy heap invalidation — a starved (zero-rate) flow's stale
//    projected completion must never fire, and simultaneous completions at
//    one timestamp batch into a single event;
//  * BeginBatch/CommitBatch is bit-identical to per-flow submission, both
//    for small batches and for batches large enough to trigger the
//    commit-time slot reorder (ReorderSlotsForLocality, >= 4096 adds).

#include <gtest/gtest.h>

#include <vector>

#include "src/simulator/flow.h"
#include "src/simulator/network_simulator.h"
#include "src/topology/topology.h"

namespace bds {
namespace {

// `clusters` independent DC pairs, one server each side, own WAN link each:
// disjoint components whose flows only interact within their own cluster.
struct ClusterNet {
  Topology topo;
  std::vector<std::vector<LinkId>> paths;  // One path per cluster.
};

ClusterNet MakeClusters(int clusters, Rate rate = 10e6) {
  ClusterNet n;
  for (int c = 0; c < clusters; ++c) {
    DcId a = n.topo.AddDatacenter("a" + std::to_string(c));
    DcId b = n.topo.AddDatacenter("b" + std::to_string(c));
    ServerId src = n.topo.AddServer(a, rate, rate).value();
    ServerId dst = n.topo.AddServer(b, rate, rate).value();
    LinkId wan = n.topo.AddWanLink(a, b, rate).value();
    n.paths.push_back({n.topo.server(src).uplink, wan, n.topo.server(dst).downlink});
  }
  return n;
}

TEST(RemainingAtTest, FlowClampsAtZero) {
  Flow f;
  f.remaining = 10.0;
  f.anchor_time = 2.0;
  f.current_rate = 5.0;
  EXPECT_DOUBLE_EQ(f.RemainingAt(2.0), 10.0);
  EXPECT_DOUBLE_EQ(f.RemainingAt(3.0), 5.0);
  EXPECT_DOUBLE_EQ(f.RemainingAt(4.0), 0.0);
  // Past the projected completion the clamp must hold — a negative value
  // would corrupt every downstream byte count.
  EXPECT_DOUBLE_EQ(f.RemainingAt(1000.0), 0.0);
}

TEST(RemainingAtTest, FlowViewClampsAtZero) {
  FlowView v;
  v.remaining = 8.0;
  v.anchor_time = 0.0;
  v.current_rate = 2.0;
  EXPECT_DOUBLE_EQ(v.RemainingAt(3.0), 2.0);
  EXPECT_DOUBLE_EQ(v.RemainingAt(4.0), 0.0);
  EXPECT_DOUBLE_EQ(v.RemainingAt(1e9), 0.0);
  // Zero-rate flows hold their remaining forever.
  v.current_rate = 0.0;
  EXPECT_DOUBLE_EQ(v.RemainingAt(1e9), 8.0);
}

// A flow starved to rate zero must not complete off its stale (pre-starve)
// heap entry: the entry's rate_epoch no longer matches the slot's, so the
// pop discards it.
TEST(StaleHeapEntryTest, StarvedFlowDoesNotCompleteOffStaleEntry) {
  ClusterNet net = MakeClusters(1, 10e6);
  NetworkSimulator sim(&net.topo);
  FlowId id = sim.StartFlow(net.paths[0], 100e6).value();  // Projected t=10.
  ASSERT_TRUE(sim.AdvanceTo(2.0).ok());                    // 20 MB moved.
  // Background traffic eats the whole WAN: the re-solve drops the flow to
  // rate 0 and bumps its rate_epoch, orphaning the t=10 heap entry.
  ASSERT_TRUE(sim.SetBackgroundRate(net.paths[0][1], 10e6).ok());
  ASSERT_TRUE(sim.AdvanceTo(20.0).ok());  // Far past the stale entry's key.
  EXPECT_EQ(sim.num_active_flows(), 1);
  EXPECT_TRUE(sim.completed_flows().empty());
  auto view = sim.FindFlow(id);
  ASSERT_TRUE(view.has_value());
  EXPECT_DOUBLE_EQ(view->current_rate, 0.0);
  EXPECT_DOUBLE_EQ(view->RemainingAt(sim.now()), 80e6);
  // Capacity returns: the remaining 80 MB moves at 10 MB/s from t=20.
  ASSERT_TRUE(sim.SetBackgroundRate(net.paths[0][1], 0.0).ok());
  auto end = sim.RunUntilIdle();
  ASSERT_TRUE(end.ok());
  EXPECT_NEAR(*end, 28.0, 1e-6);
  ASSERT_EQ(sim.completed_flows().size(), 1u);
  EXPECT_EQ(sim.completed_flows()[0].id, id);
}

// Equal flows in disjoint components project identical completion times; the
// heap must drain them as one event batch at one timestamp.
TEST(StaleHeapEntryTest, SimultaneousCompletionsShareOneEvent) {
  ClusterNet net = MakeClusters(4, 10e6);
  NetworkSimulator sim(&net.topo);
  std::vector<FlowId> ids;
  for (int c = 0; c < 4; ++c) {
    ids.push_back(sim.StartFlow(net.paths[c], 50e6).value());  // All end t=5.
  }
  auto end = sim.RunUntilIdle();
  ASSERT_TRUE(end.ok());
  EXPECT_NEAR(*end, 5.0, 1e-6);
  EXPECT_EQ(sim.num_completion_events(), 1);
  ASSERT_EQ(sim.completed_flows().size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    // Completions within one event fire in ascending id order.
    EXPECT_EQ(sim.completed_flows()[i].id, ids[i]);
    EXPECT_DOUBLE_EQ(sim.completed_flows()[i].end_time, sim.completed_flows()[0].end_time);
  }
}

// Deterministic per-flow byte sizes, varied so completions interleave across
// clusters and each completion re-solves its shrunken component.
Bytes FlowBytes(int i) { return 1e6 * static_cast<double>(1 + (i * 37) % 100); }

// Runs the same workload either per-flow or batched and returns the
// completion records.
std::vector<FlowRecord> RunWorkload(const ClusterNet& net, int flows, bool batched,
                                    bool with_churn) {
  NetworkSimulator sim(&net.topo);
  const int clusters = static_cast<int>(net.paths.size());
  if (batched) {
    sim.BeginBatch();
  }
  std::vector<FlowId> ids;
  for (int i = 0; i < flows; ++i) {
    ids.push_back(sim.StartFlow(net.paths[i % clusters], FlowBytes(i)).value());
  }
  if (with_churn) {
    // Cancels and repins inside the batch flush the deferred starts first,
    // so the op order seen by the allocator matches the per-flow run.
    for (int i = 0; i < flows; i += 97) {
      EXPECT_TRUE(sim.CancelFlow(ids[static_cast<size_t>(i)]).ok());
    }
    for (int i = 1; i < flows; i += 101) {
      if (i % 97 == 0) {
        continue;  // Canceled above.
      }
      EXPECT_TRUE(sim.RepinFlow(ids[static_cast<size_t>(i)], 1e6).ok());
    }
  }
  if (batched) {
    sim.CommitBatch();
  }
  EXPECT_TRUE(sim.RunUntilIdle().ok());
  return sim.completed_flows();
}

void ExpectBitIdentical(const std::vector<FlowRecord>& a, const std::vector<FlowRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    // Bitwise, not approximate: the batched path must run the exact same
    // float operations in the exact same order.
    EXPECT_EQ(a[i].end_time, b[i].end_time);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
  }
}

TEST(BatchedChurnTest, SmallBatchBitIdenticalToPerFlow) {
  ClusterNet net = MakeClusters(8);
  ExpectBitIdentical(RunWorkload(net, 240, /*batched=*/false, /*with_churn=*/true),
                     RunWorkload(net, 240, /*batched=*/true, /*with_churn=*/true));
}

// A batch past the reorder threshold (4096 adds) compacts the pool at
// commit: slots are renumbered component-by-component and the completion
// heap, incidence rows, and id map are remapped. Results must stay
// bit-identical to the unbatched run, which never reorders.
TEST(BatchedChurnTest, ReorderingBatchBitIdenticalToPerFlow) {
  ClusterNet net = MakeClusters(32);
  ExpectBitIdentical(RunWorkload(net, 5000, /*batched=*/false, /*with_churn=*/false),
                     RunWorkload(net, 5000, /*batched=*/true, /*with_churn=*/false));
}

TEST(BatchedChurnTest, ReorderingBatchWithChurnBitIdentical) {
  ClusterNet net = MakeClusters(32);
  ExpectBitIdentical(RunWorkload(net, 5000, /*batched=*/false, /*with_churn=*/true),
                     RunWorkload(net, 5000, /*batched=*/true, /*with_churn=*/true));
}

}  // namespace
}  // namespace bds
