// Bit-exactness property tests for the incremental FPTAS.
//
// SolveMcfFptas is a performance rewrite of SolveMcfFptasReference: same
// Fleischer phase structure, same push sequence, different bookkeeping (CSR
// layout, shared-structure scan unrolling, post-push lower-bound skips). Its
// contract is that every per-path flow is bit-identical to the reference —
// not merely close — because the controller's decision fingerprints hash raw
// rate doubles and the ablation bench asserts equality across solver knobs.
//
// The generator below deliberately produces every scan kind the solver
// specializes:
//  * controller-shaped commodities (1 or 3 paths sharing first/penultimate/
//    last link with at most two middle links) — the unrolled fast kinds;
//  * shared-endpoint commodities with longer middles or other path counts —
//    the hoisted structured kind;
//  * free-form commodities (short paths, differing endpoints, mixed
//    lengths) — the generic kind;
// plus capped and uncapped demands, zero-capacity (dead) links, and
// single-link paths.

#include "src/lp/mcf.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>

#include "src/common/rng.h"

namespace bds {
namespace {

// A controller-shaped commodity: `npaths` paths sharing uplink/downlink/
// demand-edge-like structure over a pool of `wan` middle links.
McfCommodity StructuredCommodity(Rng& rng, McfInstance& inst, int npaths, int max_mid) {
  McfCommodity com;
  const int up = static_cast<int>(inst.capacities.size());
  inst.capacities.push_back(rng.Uniform(5.0, 50.0));
  const int down = static_cast<int>(inst.capacities.size());
  inst.capacities.push_back(rng.Uniform(5.0, 50.0));
  for (int p = 0; p < npaths; ++p) {
    McfPath path;
    path.links.push_back(up);
    const int mids = static_cast<int>(rng.UniformInt(0, max_mid));
    for (int m = 0; m < mids; ++m) {
      const int wan = static_cast<int>(inst.capacities.size());
      inst.capacities.push_back(rng.Uniform(20.0, 200.0));
      path.links.push_back(wan);
    }
    path.links.push_back(down);
    com.paths.push_back(path);
  }
  if (rng.Bernoulli(0.8)) {
    com.demand = rng.Uniform(0.5, 10.0);
  }
  return com;
}

// A free-form commodity: arbitrary lengths over a shared link pool,
// occasionally through a dead (zero-capacity) link.
McfCommodity GenericCommodity(Rng& rng, const std::vector<int>& pool, int dead_link) {
  McfCommodity com;
  const int npaths = static_cast<int>(rng.UniformInt(1, 4));
  for (int p = 0; p < npaths; ++p) {
    McfPath path;
    // Distinct links per path (a path never crosses one link twice); drawn
    // by shuffling a copy of the pool.
    std::vector<int> deck = pool;
    rng.Shuffle(deck);
    const int len = static_cast<int>(
        rng.UniformInt(1, std::min<int64_t>(6, static_cast<int64_t>(deck.size()))));
    path.links.assign(deck.begin(), deck.begin() + len);
    if (dead_link >= 0 && rng.Bernoulli(0.1)) {
      path.links.push_back(dead_link);
    }
    com.paths.push_back(path);
  }
  if (rng.Bernoulli(0.5)) {
    com.demand = rng.Uniform(0.5, 20.0);
  }
  return com;
}

McfInstance RandomInstance(uint64_t seed) {
  Rng rng(seed);
  McfInstance inst;
  // Shared link pool for the generic commodities.
  std::vector<int> pool;
  const int pool_size = static_cast<int>(rng.UniformInt(3, 12));
  for (int l = 0; l < pool_size; ++l) {
    pool.push_back(static_cast<int>(inst.capacities.size()));
    inst.capacities.push_back(rng.Uniform(1.0, 100.0));
  }
  int dead_link = -1;
  if (rng.Bernoulli(0.3)) {
    dead_link = static_cast<int>(inst.capacities.size());
    inst.capacities.push_back(0.0);
  }
  const int ncom = static_cast<int>(rng.UniformInt(2, 14));
  for (int c = 0; c < ncom; ++c) {
    switch (rng.UniformInt(0, 3)) {
      case 0:  // Controller shape, unrolled 3-path kind.
        inst.commodities.push_back(StructuredCommodity(rng, inst, 3, 2));
        break;
      case 1:  // Controller shape, unrolled 1-path kind.
        inst.commodities.push_back(StructuredCommodity(rng, inst, 1, 2));
        break;
      case 2:  // Shared endpoints but long middles / odd path count.
        inst.commodities.push_back(StructuredCommodity(
            rng, inst, static_cast<int>(rng.UniformInt(2, 5)), 4));
        break;
      default:
        inst.commodities.push_back(GenericCommodity(rng, pool, dead_link));
        break;
    }
  }
  return inst;
}

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

TEST(McfFptasParityTest, RandomInstancesMatchReferenceBitForBit) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    McfInstance inst = RandomInstance(seed);
    McfResult fast = SolveMcfFptas(inst, 0.1);
    McfResult ref = SolveMcfFptasReference(inst, 0.1);
    ASSERT_EQ(fast.ok, ref.ok) << "seed " << seed;
    ASSERT_EQ(fast.flow.size(), ref.flow.size()) << "seed " << seed;
    for (size_t c = 0; c < ref.flow.size(); ++c) {
      ASSERT_EQ(fast.flow[c].size(), ref.flow[c].size()) << "seed " << seed;
      for (size_t p = 0; p < ref.flow[c].size(); ++p) {
        ASSERT_EQ(Bits(fast.flow[c][p]), Bits(ref.flow[c][p]))
            << "seed " << seed << " commodity " << c << " path " << p << ": "
            << fast.flow[c][p] << " vs " << ref.flow[c][p];
      }
    }
    ASSERT_EQ(Bits(fast.total_flow), Bits(ref.total_flow)) << "seed " << seed;
  }
}

TEST(McfFptasParityTest, VariedEpsilonsMatchReferenceBitForBit) {
  for (double epsilon : {0.05, 0.1, 0.25, 0.5}) {
    for (uint64_t seed = 100; seed < 105; ++seed) {
      McfInstance inst = RandomInstance(seed);
      McfResult fast = SolveMcfFptas(inst, epsilon);
      McfResult ref = SolveMcfFptasReference(inst, epsilon);
      ASSERT_EQ(fast.ok, ref.ok);
      for (size_t c = 0; c < ref.flow.size(); ++c) {
        for (size_t p = 0; p < ref.flow[c].size(); ++p) {
          ASSERT_EQ(Bits(fast.flow[c][p]), Bits(ref.flow[c][p]))
              << "eps " << epsilon << " seed " << seed;
        }
      }
    }
  }
}

TEST(McfFptasParityTest, FlowsStayFeasible) {
  for (uint64_t seed = 200; seed < 220; ++seed) {
    McfInstance inst = RandomInstance(seed);
    McfResult fast = SolveMcfFptas(inst, 0.1);
    ASSERT_TRUE(fast.ok);
    EXPECT_LE(MaxCapacityViolation(inst, fast), 1e-6) << "seed " << seed;
  }
}

TEST(McfFptasParityTest, EmptyAndDegenerateInstances) {
  McfInstance empty;
  EXPECT_TRUE(SolveMcfFptas(empty, 0.1).ok);

  // A commodity with no paths next to a normal one.
  McfInstance inst;
  inst.capacities = {4.0};
  inst.commodities.emplace_back();
  McfCommodity c;
  c.paths.push_back({{0}});
  inst.commodities.push_back(c);
  McfResult fast = SolveMcfFptas(inst, 0.1);
  McfResult ref = SolveMcfFptasReference(inst, 0.1);
  ASSERT_TRUE(fast.ok);
  EXPECT_EQ(Bits(fast.flow[1][0]), Bits(ref.flow[1][0]));
  EXPECT_TRUE(fast.flow[0].empty());
}

}  // namespace
}  // namespace bds
