#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "src/common/stats.h"
#include "src/workload/background_traffic.h"
#include "src/workload/job.h"
#include "src/workload/trace.h"
#include "src/workload/trace_generator.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

TEST(MulticastJobTest, BlockCountRoundsUp) {
  MulticastJob job = MakeJob(1, 0, {1}, MB(5.0), MB(2.0)).value();
  EXPECT_EQ(job.num_blocks(), 3);
  EXPECT_DOUBLE_EQ(job.BlockSizeOf(0), MB(2.0));
  EXPECT_DOUBLE_EQ(job.BlockSizeOf(1), MB(2.0));
  EXPECT_DOUBLE_EQ(job.BlockSizeOf(2), MB(1.0));
}

TEST(MulticastJobTest, ExactMultipleHasFullBlocks) {
  MulticastJob job = MakeJob(1, 0, {1}, MB(6.0), MB(2.0)).value();
  EXPECT_EQ(job.num_blocks(), 3);
  EXPECT_DOUBLE_EQ(job.BlockSizeOf(2), MB(2.0));
}

TEST(MulticastJobTest, MakeJobValidates) {
  EXPECT_FALSE(MakeJob(1, 0, {}, MB(1.0)).ok());
  EXPECT_FALSE(MakeJob(1, 0, {0}, MB(1.0)).ok());
  EXPECT_FALSE(MakeJob(1, 0, {1}, 0.0).ok());
  EXPECT_FALSE(MakeJob(1, 0, {1}, MB(1.0), 0.0).ok());
}

TEST(MulticastJobTest, ValidateChecksDcRange) {
  MulticastJob job = MakeJob(1, 0, {1, 2}, MB(1.0)).value();
  EXPECT_TRUE(job.Validate(3).ok());
  EXPECT_FALSE(job.Validate(2).ok());  // DC 2 out of range.
}

TEST(TraceTest, StatsComputeMulticastShare) {
  Trace trace;
  TraceRecord mc;
  mc.id = 0;
  mc.app_type = "a";
  mc.multicast = true;
  mc.source_dc = 0;
  mc.dest_dcs = {1, 2};
  mc.bytes = 900.0;
  trace.Add(mc);
  TraceRecord p2p;
  p2p.id = 1;
  p2p.app_type = "a";
  p2p.multicast = false;
  p2p.source_dc = 0;
  p2p.dest_dcs = {1};
  p2p.bytes = 100.0;
  trace.Add(p2p);

  TraceStats stats = trace.ComputeStats(/*num_dcs=*/3);
  EXPECT_DOUBLE_EQ(stats.multicast_byte_share, 0.9);
  EXPECT_EQ(stats.num_records, 2);
  EXPECT_EQ(stats.num_multicast, 1);
  ASSERT_EQ(stats.dest_fraction.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.dest_fraction[0], 1.0);  // 2 of 2 possible dests.
  ASSERT_EQ(stats.per_app_multicast_share.size(), 1u);
  EXPECT_DOUBLE_EQ(stats.per_app_multicast_share[0].second, 0.9);
}

TEST(TraceTest, CsvRoundTrip) {
  Trace trace;
  TraceRecord r;
  r.id = 42;
  r.start_time = 12.5;
  r.app_type = "blog-articles";
  r.multicast = true;
  r.source_dc = 3;
  r.dest_dcs = {1, 5, 7};
  r.bytes = 1.5e12;
  trace.Add(r);

  std::string path = std::string(::testing::TempDir()) + "/trace_roundtrip.csv";
  ASSERT_TRUE(trace.SaveCsv(path).ok());
  auto loaded = Trace::LoadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 1);
  const TraceRecord& l = loaded->records()[0];
  EXPECT_EQ(l.id, 42);
  EXPECT_DOUBLE_EQ(l.start_time, 12.5);
  EXPECT_EQ(l.app_type, "blog-articles");
  EXPECT_TRUE(l.multicast);
  EXPECT_EQ(l.source_dc, 3);
  EXPECT_EQ(l.dest_dcs, (std::vector<DcId>{1, 5, 7}));
  EXPECT_DOUBLE_EQ(l.bytes, 1.5e12);
  std::remove(path.c_str());
}

TEST(TraceTest, LoadMissingFileFails) {
  EXPECT_FALSE(Trace::LoadCsv("/nonexistent/nope.csv").ok());
}

TEST(TraceGeneratorTest, MatchesTable1MulticastShares) {
  TraceGeneratorOptions opt;
  opt.num_transfers = 2000;
  opt.seed = 5;
  TraceGenerator gen(opt);
  auto trace = gen.Generate();
  ASSERT_TRUE(trace.ok());
  TraceStats stats = trace->ComputeStats(opt.num_dcs);
  // Overall share ~91%; per-app shares within 2% of Table 1 targets.
  EXPECT_NEAR(stats.multicast_byte_share, 0.91, 0.04);
  for (const auto& [app, share] : stats.per_app_multicast_share) {
    double target = 0.0;
    for (const AppProfile& p : BaiduAppMix()) {
      if (p.name == app) {
        target = p.multicast_share;
      }
    }
    ASSERT_GT(target, 0.0) << "unknown app " << app;
    EXPECT_NEAR(share, target, 0.02) << app;
  }
}

TEST(TraceGeneratorTest, MatchesFig2aDestinationFractions) {
  TraceGeneratorOptions opt;
  opt.num_transfers = 4000;
  opt.seed = 6;
  TraceGenerator gen(opt);
  auto trace = gen.Generate();
  ASSERT_TRUE(trace.ok());
  TraceStats stats = trace->ComputeStats(opt.num_dcs);
  EmpiricalDistribution dist;
  dist.AddAll(stats.dest_fraction);
  // Fig 2a: 90% of transfers reach >= 60% of DCs; 70% reach >= 80%.
  EXPECT_NEAR(1.0 - dist.CdfAt(0.6 - 1e-9), 0.90, 0.03);
  EXPECT_NEAR(1.0 - dist.CdfAt(0.8 - 1e-9), 0.70, 0.03);
}

TEST(TraceGeneratorTest, MatchesFig2bSizes) {
  TraceGeneratorOptions opt;
  opt.num_transfers = 4000;
  opt.seed = 7;
  TraceGenerator gen(opt);
  auto trace = gen.Generate();
  ASSERT_TRUE(trace.ok());
  TraceStats stats = trace->ComputeStats(opt.num_dcs);
  EmpiricalDistribution dist;
  dist.AddAll(stats.multicast_sizes);
  // Fig 2b: 60% of multicast transfers > 1 TB; 90% > 50 GB.
  EXPECT_NEAR(1.0 - dist.CdfAt(TB(1.0)), 0.60, 0.03);
  EXPECT_NEAR(1.0 - dist.CdfAt(GB(50.0)), 0.90, 0.03);
}

TEST(TraceGeneratorTest, DeterministicForSeed) {
  TraceGeneratorOptions opt;
  opt.num_transfers = 50;
  TraceGenerator g1(opt);
  TraceGenerator g2(opt);
  auto t1 = g1.Generate();
  auto t2 = g2.Generate();
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_EQ(t1->size(), t2->size());
  for (int64_t i = 0; i < t1->size(); ++i) {
    EXPECT_DOUBLE_EQ(t1->records()[static_cast<size_t>(i)].bytes,
                     t2->records()[static_cast<size_t>(i)].bytes);
  }
}

TEST(TraceGeneratorTest, RecordsChronological) {
  TraceGeneratorOptions opt;
  opt.num_transfers = 200;
  TraceGenerator gen(opt);
  auto trace = gen.Generate();
  ASSERT_TRUE(trace.ok());
  for (int64_t i = 1; i < trace->size(); ++i) {
    EXPECT_GE(trace->records()[static_cast<size_t>(i)].start_time,
              trace->records()[static_cast<size_t>(i) - 1].start_time);
  }
}

TEST(TraceGeneratorTest, DestinationsValidAndDistinct) {
  TraceGeneratorOptions opt;
  opt.num_transfers = 300;
  opt.num_dcs = 10;
  TraceGenerator gen(opt);
  auto trace = gen.Generate();
  ASSERT_TRUE(trace.ok());
  for (const TraceRecord& r : trace->records()) {
    if (!r.multicast) {
      continue;
    }
    std::set<DcId> seen;
    for (DcId d : r.dest_dcs) {
      EXPECT_GE(d, 0);
      EXPECT_LT(d, 10);
      EXPECT_NE(d, r.source_dc);
      EXPECT_TRUE(seen.insert(d).second);
    }
  }
}

TEST(TraceGeneratorTest, RejectsBadOptions) {
  TraceGeneratorOptions opt;
  opt.num_dcs = 1;
  EXPECT_FALSE(TraceGenerator(opt).Generate().ok());
  opt.num_dcs = 5;
  opt.num_transfers = 0;
  EXPECT_FALSE(TraceGenerator(opt).Generate().ok());
}

TEST(JobsFromTraceTest, ConvertsMulticastOnlyWithScale) {
  TraceGeneratorOptions opt;
  opt.num_transfers = 100;
  TraceGenerator gen(opt);
  auto trace = gen.Generate();
  ASSERT_TRUE(trace.ok());
  auto jobs = JobsFromTrace(*trace, MB(2.0), /*size_scale=*/1e-4);
  EXPECT_EQ(static_cast<int>(jobs.size()), 100);
  for (const MulticastJob& j : jobs) {
    EXPECT_GT(j.total_bytes, 0.0);
    EXPECT_LT(j.total_bytes, TB(1.0));  // Scaled down.
    EXPECT_DOUBLE_EQ(j.block_size, MB(2.0));
  }
}

TEST(BackgroundTrafficTest, WanOnlyAndWithinBounds) {
  auto topo = BuildFullMesh(3, 2, Gbps(10.0), MBps(20.0), MBps(20.0)).value();
  BackgroundTrafficModel model(&topo);
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    for (double t : {0.0, 3600.0, 40000.0, 80000.0}) {
      Rate r = model.RateAt(l, t);
      if (topo.link(l).type == LinkType::kWan) {
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, topo.link(l).capacity * 0.98 + 1.0);
      } else {
        EXPECT_DOUBLE_EQ(r, 0.0);
      }
    }
  }
}

TEST(BackgroundTrafficTest, DiurnalSwingVisible) {
  auto topo = BuildFullMesh(2, 1, Gbps(10.0), MBps(20.0), MBps(20.0)).value();
  BackgroundTrafficModel::Options opt;
  opt.mean_utilization = 0.4;
  opt.diurnal_amplitude = 0.2;
  opt.noise = 0.0;
  BackgroundTrafficModel model(&topo, opt);
  LinkId wan = kInvalidLink;
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    if (topo.link(l).type == LinkType::kWan) {
      wan = l;
    }
  }
  double lo = 1e18;
  double hi = 0.0;
  for (double t = 0.0; t < 86400.0; t += 600.0) {
    double u = model.RateAt(wan, t) / topo.link(wan).capacity;
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.3);
  EXPECT_GT(hi, 0.5);
}

TEST(BackgroundTrafficTest, LatencyInflationShape) {
  // ~1x below the threshold, super-linear beyond (30x at sustained ~99%).
  EXPECT_DOUBLE_EQ(BackgroundTrafficModel::LatencyInflation(0.5), 1.0);
  EXPECT_DOUBLE_EQ(BackgroundTrafficModel::LatencyInflation(0.8), 1.0);
  double at90 = BackgroundTrafficModel::LatencyInflation(0.9);
  double at99 = BackgroundTrafficModel::LatencyInflation(0.993);
  EXPECT_GT(at90, 1.5);
  EXPECT_GT(at99, 25.0);
  EXPECT_LT(at99, 200.0 + 1e-9);
  EXPECT_GT(at99, at90);
}

}  // namespace
}  // namespace bds
