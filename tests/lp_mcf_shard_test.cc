// Bit-exactness and feasibility tests for the sharded FPTAS.
//
// SolveMcfFptasSharded partitions commodities into link-disjoint groups,
// runs the tuned push loop per group against the GLOBAL instance's constants
// (delta, alpha ladder, push budget), and merges with one global finalize.
// Its contract: bit-identical results to SolveMcfFptas for ANY shard count
// and thread count (split_contended off), because link-disjoint commodity
// subsets never observe each other's length updates. The generator mirrors
// the FPTAS parity suite's — controller-shaped commodities (each its own
// component) mixed with pool-sharing generic commodities (one entangled
// component) — so every packing shape is exercised.

#include "src/lp/mcf_shard.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>

#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/lp/mcf.h"

namespace bds {
namespace {

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

McfCommodity StructuredCommodity(Rng& rng, McfInstance& inst, int npaths, int max_mid) {
  McfCommodity com;
  const int up = static_cast<int>(inst.capacities.size());
  inst.capacities.push_back(rng.Uniform(5.0, 50.0));
  const int down = static_cast<int>(inst.capacities.size());
  inst.capacities.push_back(rng.Uniform(5.0, 50.0));
  for (int p = 0; p < npaths; ++p) {
    McfPath path;
    path.links.push_back(up);
    const int mids = static_cast<int>(rng.UniformInt(0, max_mid));
    for (int m = 0; m < mids; ++m) {
      const int wan = static_cast<int>(inst.capacities.size());
      inst.capacities.push_back(rng.Uniform(20.0, 200.0));
      path.links.push_back(wan);
    }
    path.links.push_back(down);
    com.paths.push_back(path);
  }
  if (rng.Bernoulli(0.8)) {
    com.demand = rng.Uniform(0.5, 10.0);
  }
  return com;
}

McfCommodity GenericCommodity(Rng& rng, const std::vector<int>& pool, int dead_link) {
  McfCommodity com;
  const int npaths = static_cast<int>(rng.UniformInt(1, 4));
  for (int p = 0; p < npaths; ++p) {
    McfPath path;
    std::vector<int> deck = pool;
    rng.Shuffle(deck);
    const int len = static_cast<int>(
        rng.UniformInt(1, std::min<int64_t>(6, static_cast<int64_t>(deck.size()))));
    path.links.assign(deck.begin(), deck.begin() + len);
    if (dead_link >= 0 && rng.Bernoulli(0.1)) {
      path.links.push_back(dead_link);
    }
    com.paths.push_back(path);
  }
  if (rng.Bernoulli(0.5)) {
    com.demand = rng.Uniform(0.5, 20.0);
  }
  return com;
}

// Mixed instance: many link-disjoint components plus one entangled pool.
McfInstance RandomInstance(uint64_t seed) {
  Rng rng(seed);
  McfInstance inst;
  std::vector<int> pool;
  const int pool_size = static_cast<int>(rng.UniformInt(3, 12));
  for (int l = 0; l < pool_size; ++l) {
    pool.push_back(static_cast<int>(inst.capacities.size()));
    inst.capacities.push_back(rng.Uniform(1.0, 100.0));
  }
  int dead_link = -1;
  if (rng.Bernoulli(0.3)) {
    dead_link = static_cast<int>(inst.capacities.size());
    inst.capacities.push_back(0.0);
  }
  const int ncom = static_cast<int>(rng.UniformInt(2, 14));
  for (int c = 0; c < ncom; ++c) {
    switch (rng.UniformInt(0, 3)) {
      case 0:
        inst.commodities.push_back(StructuredCommodity(rng, inst, 3, 2));
        break;
      case 1:
        inst.commodities.push_back(StructuredCommodity(rng, inst, 1, 2));
        break;
      case 2:
        inst.commodities.push_back(StructuredCommodity(
            rng, inst, static_cast<int>(rng.UniformInt(2, 5)), 4));
        break;
      default:
        inst.commodities.push_back(GenericCommodity(rng, pool, dead_link));
        break;
    }
  }
  return inst;
}

// One giant component: every commodity's paths cross a shared backbone link,
// so link-disjoint decomposition cannot split anything.
McfInstance ContendedInstance(uint64_t seed, int ncom) {
  Rng rng(seed);
  McfInstance inst;
  const int backbone = static_cast<int>(inst.capacities.size());
  inst.capacities.push_back(rng.Uniform(50.0, 100.0));
  for (int c = 0; c < ncom; ++c) {
    McfCommodity com;
    const int npaths = static_cast<int>(rng.UniformInt(1, 3));
    for (int p = 0; p < npaths; ++p) {
      McfPath path;
      const int up = static_cast<int>(inst.capacities.size());
      inst.capacities.push_back(rng.Uniform(5.0, 50.0));
      path.links.push_back(up);
      path.links.push_back(backbone);
      com.paths.push_back(path);
    }
    com.demand = rng.Uniform(0.5, 10.0);
    inst.commodities.push_back(com);
  }
  return inst;
}

void ExpectBitwiseEqual(const McfResult& a, const McfResult& b, const char* what,
                        uint64_t seed, int shards) {
  ASSERT_EQ(a.ok, b.ok) << what << " seed " << seed << " shards " << shards;
  ASSERT_EQ(a.flow.size(), b.flow.size());
  for (size_t c = 0; c < b.flow.size(); ++c) {
    ASSERT_EQ(a.flow[c].size(), b.flow[c].size());
    for (size_t p = 0; p < b.flow[c].size(); ++p) {
      ASSERT_EQ(Bits(a.flow[c][p]), Bits(b.flow[c][p]))
          << what << " seed " << seed << " shards " << shards << " commodity " << c
          << " path " << p << ": " << a.flow[c][p] << " vs " << b.flow[c][p];
    }
  }
  ASSERT_EQ(Bits(a.total_flow), Bits(b.total_flow))
      << what << " seed " << seed << " shards " << shards;
}

TEST(McfShardTest, MatchesUnshardedBitForBitAcrossShardAndThreadCounts) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    McfInstance inst = RandomInstance(seed);
    McfResult unsharded = SolveMcfFptas(inst, 0.1);
    for (int shards : {1, 2, 4, 8}) {
      for (int threads : {1, 4}) {
        ParallelRunner pool(threads);
        McfShardOptions opt;
        opt.num_shards = shards;
        McfShardStats stats;
        McfResult sharded = SolveMcfFptasSharded(inst, 0.1, opt, &pool, &stats);
        ExpectBitwiseEqual(sharded, unsharded, "sharded-vs-unsharded", seed, shards);
        EXPECT_LE(stats.num_groups, std::max(1, shards));
        EXPECT_GE(stats.num_components, 1);
        EXPECT_FALSE(stats.split_mode_used);
      }
    }
  }
}

TEST(McfShardTest, NullPoolIsEquivalentToSerialPool) {
  for (uint64_t seed = 50; seed < 55; ++seed) {
    McfInstance inst = RandomInstance(seed);
    McfShardOptions opt;
    opt.num_shards = 4;
    McfResult no_pool = SolveMcfFptasSharded(inst, 0.1, opt, nullptr);
    ParallelRunner pool(4);
    McfResult with_pool = SolveMcfFptasSharded(inst, 0.1, opt, &pool);
    ExpectBitwiseEqual(no_pool, with_pool, "nullpool-vs-pool", seed, 4);
  }
}

TEST(McfShardTest, DisjointComponentsSpreadAcrossGroups) {
  // Four structured commodities with private links: four components, so
  // asking for four shards must produce four groups and still match the
  // unsharded run.
  Rng rng(7);
  McfInstance inst;
  for (int c = 0; c < 4; ++c) {
    inst.commodities.push_back(StructuredCommodity(rng, inst, 3, 2));
  }
  McfShardOptions opt;
  opt.num_shards = 4;
  McfShardStats stats;
  McfResult sharded = SolveMcfFptasSharded(inst, 0.1, opt, nullptr, &stats);
  EXPECT_EQ(stats.num_components, 4);
  EXPECT_EQ(stats.num_groups, 4);
  McfResult unsharded = SolveMcfFptas(inst, 0.1);
  ExpectBitwiseEqual(sharded, unsharded, "disjoint", 7, 4);
}

TEST(McfShardTest, ContendedInstanceCollapsesToOneGroupWithoutSplit) {
  McfInstance inst = ContendedInstance(11, 12);
  McfShardOptions opt;
  opt.num_shards = 4;
  McfShardStats stats;
  McfResult sharded = SolveMcfFptasSharded(inst, 0.1, opt, nullptr, &stats);
  EXPECT_EQ(stats.num_components, 1);
  EXPECT_EQ(stats.num_groups, 1);
  EXPECT_FALSE(stats.split_mode_used);
  ExpectBitwiseEqual(sharded, SolveMcfFptas(inst, 0.1), "contended", 11, 4);
}

TEST(McfShardTest, SplitContendedStaysFeasibleAndDeterministic) {
  for (uint64_t seed = 60; seed < 70; ++seed) {
    McfInstance inst = ContendedInstance(seed, 16);
    McfShardOptions opt;
    opt.num_shards = 4;
    opt.split_contended = true;
    McfShardStats stats;
    McfResult split = SolveMcfFptasSharded(inst, 0.1, opt, nullptr, &stats);
    ASSERT_TRUE(split.ok);
    EXPECT_TRUE(stats.split_mode_used) << "seed " << seed;
    EXPECT_GT(stats.num_groups, 1) << "seed " << seed;
    // Feasibility survives the merge normalization even though the pieces
    // each solved against the full backbone capacity.
    EXPECT_LE(MaxCapacityViolation(inst, split), 1e-6) << "seed " << seed;
    // Deterministic: a second run (with a pool) reproduces it bitwise.
    ParallelRunner pool(4);
    McfResult again = SolveMcfFptasSharded(inst, 0.1, opt, &pool);
    ExpectBitwiseEqual(split, again, "split-determinism", seed, 4);
    // Quality: the merge's normalization + rebalance keeps the combined flow
    // in the same ballpark as the unsharded solve.
    McfResult unsharded = SolveMcfFptas(inst, 0.1);
    EXPECT_GE(split.total_flow, 0.5 * unsharded.total_flow) << "seed " << seed;
  }
}

TEST(McfShardTest, EmptyAndDegenerateInstances) {
  McfInstance empty;
  McfShardOptions opt;
  opt.num_shards = 4;
  EXPECT_TRUE(SolveMcfFptasSharded(empty, 0.1, opt, nullptr).ok);

  // A commodity with no paths next to a normal one.
  McfInstance inst;
  inst.capacities = {4.0};
  inst.commodities.emplace_back();
  McfCommodity c;
  c.paths.push_back({{0}});
  inst.commodities.push_back(c);
  McfResult sharded = SolveMcfFptasSharded(inst, 0.1, opt, nullptr);
  ASSERT_TRUE(sharded.ok);
  ExpectBitwiseEqual(sharded, SolveMcfFptas(inst, 0.1), "degenerate", 0, 4);
}

}  // namespace
}  // namespace bds
