#include "src/telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "src/common/parallel.h"

namespace bds {
namespace telemetry {
namespace {

// Every test runs against the process-global registry, so each starts from a
// clean slate and leaves telemetry disabled for its neighbours.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().Reset();
    SetEnabled(true);
  }
  void TearDown() override {
    TraceRecorder::Global().Stop();
    TraceRecorder::Global().Clear();
    SetEnabled(false);
    MetricsRegistry::Global().Reset();
  }
};

TEST_F(TelemetryTest, CounterAddAndSnapshot) {
  auto& reg = MetricsRegistry::Global();
  CounterHandle h = reg.RegisterCounter("test.counter_basic");
  ASSERT_TRUE(h.valid());
  reg.CounterAdd(h, 3);
  reg.CounterAdd(h, 4);
  MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("test.counter_basic"), 7);
  EXPECT_EQ(snap.CounterValue("test.never_registered"), 0);
  EXPECT_EQ(snap.FindCounter("test.never_registered"), nullptr);
}

TEST_F(TelemetryTest, RegistrationIsIdempotentByName) {
  auto& reg = MetricsRegistry::Global();
  CounterHandle a = reg.RegisterCounter("test.dedup");
  CounterHandle b = reg.RegisterCounter("test.dedup");
  EXPECT_EQ(a.id, b.id);
  HistogramHandle ha = reg.RegisterHistogram("test.dedup_hist", 0.0, 10.0, 5);
  // Re-registration with a different layout returns the original handle; the
  // original bucket layout wins.
  HistogramHandle hb = reg.RegisterHistogram("test.dedup_hist", 0.0, 99.0, 7);
  EXPECT_EQ(ha.id, hb.id);
  reg.HistogramRecord(ha, 9.5);
  MetricsSnapshot snap = reg.Snapshot();
  const auto* entry = snap.FindHistogram("test.dedup_hist");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->hist.bins(), 5);
  EXPECT_EQ(entry->hist.BinCount(4), 1);
}

TEST_F(TelemetryTest, InvalidHandleIsNoOp) {
  auto& reg = MetricsRegistry::Global();
  reg.CounterAdd(CounterHandle{}, 5);
  reg.GaugeSet(GaugeHandle{}, 1.0);
  reg.HistogramRecord(HistogramHandle{}, 1.0);
  // Nothing registered in this test, nothing recorded: no crash is the test.
}

TEST_F(TelemetryTest, GaugeLastWriterWins) {
  auto& reg = MetricsRegistry::Global();
  GaugeHandle g = reg.RegisterGauge("test.gauge");
  reg.GaugeSet(g, 2.5);
  reg.GaugeSet(g, -7.0);
  MetricsSnapshot snap = reg.Snapshot();
  const auto* entry = snap.FindGauge("test.gauge");
  ASSERT_NE(entry, nullptr);
  EXPECT_DOUBLE_EQ(entry->value, -7.0);
}

TEST_F(TelemetryTest, HistogramRecordsSumAndMax) {
  auto& reg = MetricsRegistry::Global();
  HistogramHandle h = reg.RegisterHistogram("test.hist", 0.0, 10.0, 10);
  reg.HistogramRecord(h, 1.5);
  reg.HistogramRecord(h, 3.5);
  reg.HistogramRecord(h, 25.0);  // Clamps to the last bin; sum/max keep 25.
  MetricsSnapshot snap = reg.Snapshot();
  const auto* entry = snap.FindHistogram("test.hist");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->hist.total(), 3);
  EXPECT_EQ(entry->hist.BinCount(1), 1);
  EXPECT_EQ(entry->hist.BinCount(3), 1);
  EXPECT_EQ(entry->hist.BinCount(9), 1);
  EXPECT_DOUBLE_EQ(entry->sum, 30.0);
  EXPECT_DOUBLE_EQ(entry->max, 25.0);
}

TEST_F(TelemetryTest, DiffSinceSubtractsByName) {
  auto& reg = MetricsRegistry::Global();
  CounterHandle c = reg.RegisterCounter("test.diff_counter");
  HistogramHandle h = reg.RegisterHistogram("test.diff_hist", 0.0, 10.0, 5);
  reg.CounterAdd(c, 10);
  reg.HistogramRecord(h, 1.0);
  MetricsSnapshot before = reg.Snapshot();
  reg.CounterAdd(c, 5);
  reg.HistogramRecord(h, 1.0);
  reg.HistogramRecord(h, 9.0);
  CounterHandle late = reg.RegisterCounter("test.diff_late");
  reg.CounterAdd(late, 2);
  MetricsSnapshot diff = reg.Snapshot().DiffSince(before);
  EXPECT_EQ(diff.CounterValue("test.diff_counter"), 5);
  // Registered after `before`: passes through unchanged.
  EXPECT_EQ(diff.CounterValue("test.diff_late"), 2);
  const auto* entry = diff.FindHistogram("test.diff_hist");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->hist.total(), 2);
  EXPECT_EQ(entry->hist.BinCount(0), 1);
  EXPECT_EQ(entry->hist.BinCount(4), 1);
}

TEST_F(TelemetryTest, ResetZeroesValuesButKeepsHandles) {
  auto& reg = MetricsRegistry::Global();
  CounterHandle c = reg.RegisterCounter("test.reset");
  reg.CounterAdd(c, 42);
  reg.Reset();
  EXPECT_EQ(reg.Snapshot().CounterValue("test.reset"), 0);
  reg.CounterAdd(c, 1);  // Old handle still routes to the same metric.
  EXPECT_EQ(reg.Snapshot().CounterValue("test.reset"), 1);
}

TEST_F(TelemetryTest, MacrosAreNoOpsWhenDisabled) {
  SetEnabled(false);
  for (int i = 0; i < 10; ++i) {
    BDS_TELEMETRY_COUNT("test.macro_disabled", 1);
  }
  SetEnabled(true);
  BDS_TELEMETRY_COUNT("test.macro_disabled", 1);
  // The macro registers lazily on first enabled execution, so exactly the
  // enabled increments are visible.
  EXPECT_EQ(MetricsRegistry::Global().Snapshot().CounterValue("test.macro_disabled"), 1);
}

TEST_F(TelemetryTest, ScopedTimerFeedsHistogram) {
  {
    BDS_TIMED_SCOPE("test.scope");
    // Do a sliver of work; even ~0 ms must land in bin 0.
    int sink = 0;
    for (int i = 0; i < 1000; ++i) sink += i;
    volatile int keep = sink;
    (void)keep;
  }
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const auto* entry = snap.FindHistogram("test.scope");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->hist.total(), 1);
  EXPECT_GE(entry->sum, 0.0);
}

// Exact counter totals across thread counts: the per-thread shards must lose
// nothing and double-count nothing, whichever threads the work lands on.
TEST_F(TelemetryTest, ParallelRunnerExactTotals) {
  auto& reg = MetricsRegistry::Global();
  CounterHandle c = reg.RegisterCounter("test.parallel_total");
  HistogramHandle h = reg.RegisterHistogram("test.parallel_hist", 0.0, 100.0, 10);
  constexpr int kItems = 10000;
  int64_t expected = 0;
  for (int threads : {1, 2, 8}) {
    reg.Reset();
    ParallelRunner runner(threads);
    runner.For(kItems, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        reg.CounterAdd(c, static_cast<int64_t>(i % 3));
        reg.HistogramRecord(h, static_cast<double>(i % 100));
      }
    });
    if (expected == 0) {
      for (int i = 0; i < kItems; ++i) expected += i % 3;
    }
    MetricsSnapshot snap = reg.Snapshot();
    EXPECT_EQ(snap.CounterValue("test.parallel_total"), expected) << threads << " threads";
    const auto* entry = snap.FindHistogram("test.parallel_hist");
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->hist.total(), kItems) << threads << " threads";
  }
}

TEST_F(TelemetryTest, RetiredThreadTotalsSurviveThreadExit) {
  auto& reg = MetricsRegistry::Global();
  CounterHandle c = reg.RegisterCounter("test.retired");
  int64_t retired_before = reg.retired_threads();
  {
    std::thread t([&] { reg.CounterAdd(c, 11); });
    t.join();
  }
  EXPECT_GE(reg.retired_threads(), retired_before + 1);
  EXPECT_EQ(reg.Snapshot().CounterValue("test.retired"), 11);
}

TEST_F(TelemetryTest, TraceRingDropsAndCounts) {
  auto& rec = TraceRecorder::Global();
  rec.Start(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    rec.Instant("test.instant", "test");
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 6u);
  rec.Stop();
  rec.Start(/*capacity=*/4);  // Fresh ring.
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST_F(TelemetryTest, TraceInstantGatesOnActive) {
  auto& rec = TraceRecorder::Global();
  TraceInstant("test.before_start", "test");
  EXPECT_EQ(rec.size(), 0u);
  rec.Start(16);
  TraceInstant("test.after_start", "test", {{"k", 1.0}});
  EXPECT_EQ(rec.size(), 1u);
  rec.Stop();
  TraceInstant("test.after_stop", "test");
  EXPECT_EQ(rec.size(), 1u);
}

std::string ReadWholeFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  std::fclose(f);
  return out;
}

TEST_F(TelemetryTest, ChromeTraceExportContainsEvents) {
  auto& rec = TraceRecorder::Global();
  rec.Start(64);
  rec.Instant("test.export_instant", "test", {{"cycle", 3.0}});
  int64_t t0 = rec.NowNs();
  rec.Complete("test.export_span", "test", t0, 1000000, {{"items", 2.0}});
  rec.Stop();
  std::string path = ::testing::TempDir() + "/bds_telemetry_test_trace.json";
  ASSERT_TRUE(rec.WriteChromeTrace(path).ok());
  std::string text = ReadWholeFile(path);
  ASSERT_FALSE(text.empty());
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"test.export_instant\""), std::string::npos);
  EXPECT_NE(text.find("\"test.export_span\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"dropped_events\":0"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, RunSummaryExportListsMetrics) {
  auto& reg = MetricsRegistry::Global();
  CounterHandle c = reg.RegisterCounter("test.summary_counter");
  reg.CounterAdd(c, 9);
  std::string path = ::testing::TempDir() + "/bds_telemetry_test_summary.jsonl";
  ASSERT_TRUE(TraceRecorder::Global().WriteRunSummary(path, reg.Snapshot()).ok());
  std::string text = ReadWholeFile(path);
  EXPECT_NE(text.find("\"kind\":\"meta\""), std::string::npos);
  EXPECT_NE(text.find("test.summary_counter"), std::string::npos);
  EXPECT_NE(text.find("9"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(TelemetryTest, SnapshotToJsonAndToStringAreWellFormedEnough) {
  auto& reg = MetricsRegistry::Global();
  reg.CounterAdd(reg.RegisterCounter("test.json_counter"), 2);
  reg.GaugeSet(reg.RegisterGauge("test.json_gauge"), 0.5);
  MetricsSnapshot snap = reg.Snapshot();
  std::string json = snap.ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("test.json_counter"), std::string::npos);
  EXPECT_FALSE(snap.ToString().empty());
}

}  // namespace
}  // namespace telemetry
}  // namespace bds
