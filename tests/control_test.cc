#include <gtest/gtest.h>

#include "src/control/monitors.h"
#include "src/control/replication.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

TEST(ControllerReplicaSetTest, StartsWithMaster) {
  ControllerReplicaSet set;
  EXPECT_TRUE(set.HasMaster(0.0));
  EXPECT_EQ(set.MasterIndex(0.0), 0);
}

TEST(ControllerReplicaSetTest, FailoverAfterDelay) {
  ControllerReplicaSet::Options opt;
  opt.num_replicas = 3;
  opt.failover_delay = 2.0;
  ControllerReplicaSet set(opt);
  ASSERT_TRUE(set.FailReplica(0, 10.0).ok());
  EXPECT_FALSE(set.HasMaster(10.0));
  EXPECT_FALSE(set.HasMaster(11.9));
  EXPECT_TRUE(set.HasMaster(12.0));
  EXPECT_EQ(set.MasterIndex(12.0), 1);
  EXPECT_EQ(set.elections(), 1);
}

TEST(ControllerReplicaSetTest, AllDownMeansHeadless) {
  ControllerReplicaSet set;
  ASSERT_TRUE(set.FailReplica(0, 0.0).ok());
  ASSERT_TRUE(set.FailReplica(1, 0.0).ok());
  ASSERT_TRUE(set.FailReplica(2, 0.0).ok());
  EXPECT_FALSE(set.HasMaster(100.0));
  // Recovery restores a master after the failover delay.
  ASSERT_TRUE(set.RecoverReplica(1, 100.0).ok());
  EXPECT_TRUE(set.HasMaster(103.0));
  EXPECT_EQ(set.MasterIndex(103.0), 1);
}

TEST(ControllerReplicaSetTest, NonMasterFailureDoesNotDisrupt) {
  ControllerReplicaSet set;
  ASSERT_TRUE(set.FailReplica(2, 5.0).ok());
  EXPECT_TRUE(set.HasMaster(5.0));
  EXPECT_EQ(set.MasterIndex(5.0), 0);
  EXPECT_EQ(set.elections(), 0);
}

TEST(ControllerReplicaSetTest, CascadingFailures) {
  ControllerReplicaSet::Options opt;
  opt.failover_delay = 1.0;
  ControllerReplicaSet set(opt);
  ASSERT_TRUE(set.FailReplica(0, 0.0).ok());
  EXPECT_TRUE(set.HasMaster(1.0));  // Replica 1 takes over at t=1.
  ASSERT_TRUE(set.FailReplica(1, 2.0).ok());
  EXPECT_FALSE(set.HasMaster(2.5));
  EXPECT_TRUE(set.HasMaster(3.0));  // Replica 2.
  EXPECT_EQ(set.MasterIndex(3.0), 2);
}

TEST(ControllerReplicaSetTest, IdempotentOperations) {
  ControllerReplicaSet set;
  ASSERT_TRUE(set.FailReplica(1, 0.0).ok());
  ASSERT_TRUE(set.FailReplica(1, 1.0).ok());  // Double fail: no-op.
  ASSERT_TRUE(set.RecoverReplica(0, 2.0).ok());  // Recover alive: no-op.
  EXPECT_TRUE(set.HasMaster(2.0));
  EXPECT_FALSE(set.FailReplica(9, 0.0).ok());
  EXPECT_FALSE(set.RecoverReplica(-1, 0.0).ok());
}

TEST(AgentMonitorTest, DelaysMatchFig11bScale) {
  GeoTopologyOptions gopt;
  gopt.num_dcs = 10;
  gopt.servers_per_dc = 1;
  gopt.min_latency = 0.005;
  gopt.max_latency = 0.050;
  auto topo = BuildGeoTopology(gopt);
  ASSERT_TRUE(topo.ok());
  AgentMonitor monitor(&*topo, /*controller_dc=*/0, LatencyModel::Options{});
  for (int i = 0; i < 5000; ++i) {
    DcId dc = static_cast<DcId>(i % 10);
    monitor.SampleStatusDelay(dc);
  }
  const EmpiricalDistribution& d = monitor.one_way_delays();
  ASSERT_EQ(d.count(), 5000);
  // Fig 11b: 90% below 50 ms, mean around 25 ms.
  EXPECT_GT(d.CdfAt(0.050), 0.80);
  EXPECT_GT(d.Mean(), 0.005);
  EXPECT_LT(d.Mean(), 0.060);
}

TEST(AgentMonitorTest, FeedbackLoopDominatedByWorstAgent) {
  auto topo = BuildFullMesh(3, 1, 1.0, 1.0, 1.0).value();
  topo.SetDcLatency(0, 1, 0.010);
  topo.SetDcLatency(0, 2, 0.100);  // Distant DC dominates.
  AgentMonitor monitor(&topo, 0, LatencyModel::Options{});
  double loop = monitor.SampleFeedbackLoop({1, 2}, /*algorithm_seconds=*/0.05);
  EXPECT_GT(loop, 0.05 + 2 * 0.05);  // At least algo + ~2x distant one-way.
  EXPECT_EQ(monitor.feedback_delays().count(), 1);
  EXPECT_GT(monitor.messages_sent(), 0);
}

TEST(NetworkMonitorTest, NoModelMeansZeroRates) {
  auto topo = BuildFullMesh(2, 1, 1.0, 1.0, 1.0).value();
  NetworkMonitor monitor(&topo);
  auto rates = monitor.OnlineRates(100.0);
  ASSERT_EQ(static_cast<int>(rates.size()), topo.num_links());
  for (Rate r : rates) {
    EXPECT_DOUBLE_EQ(r, 0.0);
  }
}

TEST(NetworkMonitorTest, ModelRatesPropagated) {
  auto topo = BuildFullMesh(2, 1, Gbps(10.0), MBps(20.0), MBps(20.0)).value();
  BackgroundTrafficModel model(&topo);
  NetworkMonitor monitor(&topo);
  monitor.SetTrafficModel(&model);
  auto rates = monitor.OnlineRates(3600.0);
  bool any_positive = false;
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    if (topo.link(l).type == LinkType::kWan && rates[static_cast<size_t>(l)] > 0.0) {
      any_positive = true;
    }
  }
  EXPECT_TRUE(any_positive);
}

}  // namespace
}  // namespace bds
