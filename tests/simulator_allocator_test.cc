#include "src/simulator/bandwidth_allocator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/types.h"
#include "src/simulator/flow.h"

namespace bds {
namespace {

Flow MakeFlow(FlowId id, std::vector<LinkId> links, Rate pinned = 0.0) {
  Flow f;
  f.id = id;
  f.links = std::move(links);
  f.total_bytes = 100.0;
  f.remaining = 100.0;
  f.pinned_rate = pinned;
  return f;
}

std::vector<Flow*> Ptrs(std::vector<Flow>& flows) {
  std::vector<Flow*> out;
  for (Flow& f : flows) {
    out.push_back(&f);
  }
  return out;
}

TEST(BandwidthAllocatorTest, SingleFlowGetsBottleneck) {
  std::vector<Rate> caps{10.0, 4.0, 8.0};
  std::vector<Flow> flows{MakeFlow(0, {0, 1, 2})};
  auto ptrs = Ptrs(flows);
  BandwidthAllocator alloc;
  alloc.Allocate(caps, ptrs);
  EXPECT_NEAR(flows[0].current_rate, 4.0, 1e-9);
}

TEST(BandwidthAllocatorTest, TwoFlowsShareEvenly) {
  std::vector<Rate> caps{10.0};
  std::vector<Flow> flows{MakeFlow(0, {0}), MakeFlow(1, {0})};
  auto ptrs = Ptrs(flows);
  BandwidthAllocator alloc;
  alloc.Allocate(caps, ptrs);
  EXPECT_NEAR(flows[0].current_rate, 5.0, 1e-9);
  EXPECT_NEAR(flows[1].current_rate, 5.0, 1e-9);
}

TEST(BandwidthAllocatorTest, MaxMinClassicExample) {
  // Flow 0 crosses links 0 and 1; flow 1 only link 0; flow 2 only link 1.
  // Link 0 cap 10, link 1 cap 4. Max-min: flow 0 and 2 limited by link 1
  // (2 each); flow 1 then takes the rest of link 0 (8).
  std::vector<Rate> caps{10.0, 4.0};
  std::vector<Flow> flows{MakeFlow(0, {0, 1}), MakeFlow(1, {0}), MakeFlow(2, {1})};
  auto ptrs = Ptrs(flows);
  BandwidthAllocator alloc;
  alloc.Allocate(caps, ptrs);
  EXPECT_NEAR(flows[0].current_rate, 2.0, 1e-9);
  EXPECT_NEAR(flows[1].current_rate, 8.0, 1e-9);
  EXPECT_NEAR(flows[2].current_rate, 2.0, 1e-9);
}

TEST(BandwidthAllocatorTest, PinnedFlowKeepsRateWhenFeasible) {
  std::vector<Rate> caps{10.0};
  std::vector<Flow> flows{MakeFlow(0, {0}, 3.0), MakeFlow(1, {0})};
  auto ptrs = Ptrs(flows);
  BandwidthAllocator alloc;
  alloc.Allocate(caps, ptrs);
  EXPECT_NEAR(flows[0].current_rate, 3.0, 1e-9);
  EXPECT_NEAR(flows[1].current_rate, 7.0, 1e-9);  // Fair flow takes the rest.
}

TEST(BandwidthAllocatorTest, OversubscribedPinnedFlowsScaledProportionally) {
  std::vector<Rate> caps{6.0};
  std::vector<Flow> flows{MakeFlow(0, {0}, 6.0), MakeFlow(1, {0}, 6.0)};
  auto ptrs = Ptrs(flows);
  BandwidthAllocator alloc;
  alloc.Allocate(caps, ptrs);
  EXPECT_NEAR(flows[0].current_rate, 3.0, 1e-9);
  EXPECT_NEAR(flows[1].current_rate, 3.0, 1e-9);
}

TEST(BandwidthAllocatorTest, PinnedScalingCascades) {
  // Flow 0 pinned at 8 through links {0,1}; link 0 cap 4 halves it; flow 1
  // pinned at 4 on link 1 still fits after flow 0 shrinks (cap 8).
  std::vector<Rate> caps{4.0, 8.0};
  std::vector<Flow> flows{MakeFlow(0, {0, 1}, 8.0), MakeFlow(1, {1}, 4.0)};
  auto ptrs = Ptrs(flows);
  BandwidthAllocator alloc;
  alloc.Allocate(caps, ptrs);
  EXPECT_NEAR(flows[0].current_rate, 4.0, 1e-9);
  EXPECT_NEAR(flows[1].current_rate, 4.0, 1e-9);
}

TEST(BandwidthAllocatorTest, CompletedFlowsGetZero) {
  std::vector<Rate> caps{10.0};
  std::vector<Flow> flows{MakeFlow(0, {0}), MakeFlow(1, {0})};
  flows[0].end_time = 1.0;  // Completed.
  auto ptrs = Ptrs(flows);
  BandwidthAllocator alloc;
  alloc.Allocate(caps, ptrs);
  EXPECT_DOUBLE_EQ(flows[0].current_rate, 0.0);
  EXPECT_NEAR(flows[1].current_rate, 10.0, 1e-9);
}

TEST(BandwidthAllocatorTest, ZeroCapacityLinkStallsFlows) {
  std::vector<Rate> caps{0.0, 10.0};
  std::vector<Flow> flows{MakeFlow(0, {0, 1}), MakeFlow(1, {1})};
  auto ptrs = Ptrs(flows);
  BandwidthAllocator alloc;
  alloc.Allocate(caps, ptrs);
  EXPECT_NEAR(flows[0].current_rate, 0.0, 1e-9);
  EXPECT_NEAR(flows[1].current_rate, 10.0, 1e-9);
}

TEST(BandwidthAllocatorTest, NoFlowsIsANoOp) {
  std::vector<Rate> caps{10.0};
  std::vector<Flow*> empty;
  BandwidthAllocator alloc;
  alloc.Allocate(caps, empty);  // Must not crash.
}

TEST(BandwidthAllocatorTest, MixedPinnedAndFairRespectCapacity) {
  std::vector<Rate> caps{10.0};
  std::vector<Flow> flows{MakeFlow(0, {0}, 4.0), MakeFlow(1, {0}), MakeFlow(2, {0})};
  auto ptrs = Ptrs(flows);
  BandwidthAllocator alloc;
  alloc.Allocate(caps, ptrs);
  EXPECT_NEAR(flows[0].current_rate, 4.0, 1e-9);
  EXPECT_NEAR(flows[1].current_rate, 3.0, 1e-9);
  EXPECT_NEAR(flows[2].current_rate, 3.0, 1e-9);
}

// Deterministic random allocation instance shared by the property tests.
struct RandomCase {
  std::vector<Rate> caps;
  std::vector<Flow> flows;
};

RandomCase MakeRandomCase(uint64_t seed) {
  // Simple xorshift for test-local determinism.
  auto next = [&]() {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  RandomCase rc;
  int num_links = 1 + static_cast<int>(next() % 8);
  int num_flows = 1 + static_cast<int>(next() % 20);
  for (int l = 0; l < num_links; ++l) {
    rc.caps.push_back(1.0 + static_cast<double>(next() % 100));
  }
  for (int f = 0; f < num_flows; ++f) {
    std::vector<LinkId> links;
    int n = 1 + static_cast<int>(next() % 3);
    for (int i = 0; i < n; ++i) {
      LinkId cand = static_cast<LinkId>(next() % num_links);
      bool dup = false;
      for (LinkId l : links) {
        if (l == cand) {
          dup = true;
        }
      }
      if (!dup) {
        links.push_back(cand);
      }
    }
    double pinned = (next() % 3 == 0) ? 1.0 + static_cast<double>(next() % 50) : 0.0;
    rc.flows.push_back(MakeFlow(f, links, pinned));
  }
  return rc;
}

// Property: allocations never violate link capacity, for many random cases.
class AllocatorPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AllocatorPropertyTest, CapacityNeverViolatedAndWorkConserving) {
  RandomCase rc = MakeRandomCase(static_cast<uint64_t>(GetParam()));
  std::vector<Rate>& caps = rc.caps;
  std::vector<Flow>& flows = rc.flows;
  auto ptrs = Ptrs(flows);
  BandwidthAllocator alloc;
  alloc.Allocate(caps, ptrs);

  // Capacity constraint per link.
  std::vector<double> load(caps.size(), 0.0);
  for (const Flow& f : flows) {
    EXPECT_GE(f.current_rate, 0.0);
    for (LinkId l : f.links) {
      load[static_cast<size_t>(l)] += f.current_rate;
    }
  }
  for (size_t l = 0; l < caps.size(); ++l) {
    EXPECT_LE(load[l], caps[l] * (1.0 + 1e-6)) << "link " << l;
  }

  // Work conservation for fair flows: every unpinned flow must cross at
  // least one (nearly) saturated link.
  for (const Flow& f : flows) {
    if (f.pinned()) {
      continue;
    }
    bool bottlenecked = false;
    for (LinkId l : f.links) {
      if (load[static_cast<size_t>(l)] >= caps[static_cast<size_t>(l)] * (1.0 - 1e-6) -
                                              kFluidEpsilon) {
        bottlenecked = true;
      }
    }
    EXPECT_TRUE(bottlenecked) << "fair flow " << f.id << " is not at a bottleneck";
  }
}

// Property: the component-decomposed solver agrees with the retained global
// reference solver. Rates are mathematically equal; arithmetically they may
// differ by reassociated fill increments, so compare to 1e-9 relative.
TEST_P(AllocatorPropertyTest, ComponentDecompositionMatchesReference) {
  RandomCase decomposed = MakeRandomCase(static_cast<uint64_t>(GetParam()));
  RandomCase reference = MakeRandomCase(static_cast<uint64_t>(GetParam()));
  auto dptrs = Ptrs(decomposed.flows);
  auto rptrs = Ptrs(reference.flows);
  BandwidthAllocator alloc;
  alloc.Allocate(decomposed.caps, dptrs);
  alloc.AllocateReference(reference.caps, rptrs);
  ASSERT_EQ(decomposed.flows.size(), reference.flows.size());
  for (size_t i = 0; i < decomposed.flows.size(); ++i) {
    double ref = reference.flows[i].current_rate;
    double tol = 1e-9 * std::max(1.0, std::abs(ref));
    EXPECT_NEAR(decomposed.flows[i].current_rate, ref, tol) << "flow " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCases, AllocatorPropertyTest,
                         ::testing::Range(1, 60));

}  // namespace
}  // namespace bds
