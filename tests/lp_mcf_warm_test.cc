// Relaxed-parity property suite for the FPTAS warm start (DESIGN.md §9.7).
//
// A warm solve carries the previous solve's finalized flows into the
// multiplicative-weights state. Its contract is deliberately weaker than the
// sharded solver's bitwise parity: the result must be FEASIBLE, DETERMINISTIC
// for any thread count (and, without split_contended, bitwise-invariant to
// the shard count), and its objective must stay within (1 + eps) of the cold
// solve's — but it is NOT bitwise-equal to the cold solve. An empty seed must
// degenerate to the cold solver bit for bit.
//
// Also covers the wedged-budget seam: with max_pushes_override forcing the
// per-group budget, the sharded solver must discard the wedged sharded run
// and redo it serially, so ANY shard count still matches shards=1 bitwise.

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/lp/mcf.h"
#include "src/lp/mcf_shard.h"

namespace bds {
namespace {

constexpr double kEps = 0.1;

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

void ExpectBitwiseEqual(const McfResult& a, const McfResult& b, const char* what,
                        uint64_t seed) {
  ASSERT_EQ(a.ok, b.ok) << what << " seed " << seed;
  ASSERT_EQ(a.flow.size(), b.flow.size()) << what << " seed " << seed;
  for (size_t c = 0; c < b.flow.size(); ++c) {
    ASSERT_EQ(a.flow[c].size(), b.flow[c].size());
    for (size_t p = 0; p < b.flow[c].size(); ++p) {
      ASSERT_EQ(Bits(a.flow[c][p]), Bits(b.flow[c][p]))
          << what << " seed " << seed << " commodity " << c << " path " << p;
    }
  }
  ASSERT_EQ(Bits(a.total_flow), Bits(b.total_flow)) << what << " seed " << seed;
}

// Controller-shaped commodity: private up/down links, a few WAN middles.
McfCommodity StructuredCommodity(Rng& rng, McfInstance& inst, int npaths) {
  McfCommodity com;
  const int up = static_cast<int>(inst.capacities.size());
  inst.capacities.push_back(rng.Uniform(5.0, 50.0));
  const int down = static_cast<int>(inst.capacities.size());
  inst.capacities.push_back(rng.Uniform(5.0, 50.0));
  for (int p = 0; p < npaths; ++p) {
    McfPath path;
    path.links.push_back(up);
    const int mids = static_cast<int>(rng.UniformInt(0, 3));
    for (int m = 0; m < mids; ++m) {
      const int wan = static_cast<int>(inst.capacities.size());
      inst.capacities.push_back(rng.Uniform(20.0, 200.0));
      path.links.push_back(wan);
    }
    path.links.push_back(down);
    com.paths.push_back(path);
  }
  if (rng.Bernoulli(0.8)) {
    com.demand = rng.Uniform(0.5, 10.0);
  }
  return com;
}

McfInstance RandomInstance(uint64_t seed) {
  Rng rng(seed);
  McfInstance inst;
  const int ncom = static_cast<int>(rng.UniformInt(2, 12));
  for (int c = 0; c < ncom; ++c) {
    inst.commodities.push_back(
        StructuredCommodity(rng, inst, static_cast<int>(rng.UniformInt(1, 4))));
  }
  return inst;
}

// One giant link-sharing component: every path crosses a shared backbone.
McfInstance ContendedInstance(uint64_t seed, int ncom) {
  Rng rng(seed);
  McfInstance inst;
  const int backbone = static_cast<int>(inst.capacities.size());
  inst.capacities.push_back(rng.Uniform(50.0, 100.0));
  for (int c = 0; c < ncom; ++c) {
    McfCommodity com;
    const int npaths = static_cast<int>(rng.UniformInt(1, 3));
    for (int p = 0; p < npaths; ++p) {
      McfPath path;
      const int up = static_cast<int>(inst.capacities.size());
      inst.capacities.push_back(rng.Uniform(5.0, 50.0));
      path.links.push_back(up);
      path.links.push_back(backbone);
      com.paths.push_back(path);
    }
    com.demand = rng.Uniform(0.5, 10.0);
    inst.commodities.push_back(com);
  }
  return inst;
}

McfWarmSeed SeedFrom(const McfResult& result) {
  McfWarmSeed seed;
  seed.flows = result.flow;
  return seed;
}

// The headline property, 30 seeds: seeding a solve from its own cold result
// stays feasible, keeps the objective inside the (1 + eps) band, and is
// bitwise-invariant to shard and thread counts (split off).
TEST(McfWarmTest, WarmRelaxedParityAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    McfInstance inst = RandomInstance(seed);
    McfResult cold = SolveMcfFptas(inst, kEps);
    ASSERT_TRUE(cold.ok) << "seed " << seed;
    McfWarmSeed warm_seed = SeedFrom(cold);

    McfWarmInfo info;
    McfResult warm = SolveMcfFptas(inst, kEps, &warm_seed, &info);
    ASSERT_TRUE(warm.ok) << "seed " << seed;
    EXPECT_LE(MaxCapacityViolation(inst, warm), 1e-6) << "seed " << seed;
    if (cold.total_flow > 0.0) {
      EXPECT_TRUE(info.used) << "seed " << seed;
      EXPECT_GT(info.seeded_commodities, 0) << "seed " << seed;
      // Relaxed parity's objective band: within (1 + eps) below the cold
      // solve; above is bounded by feasibility (cold is (1-eps)-optimal).
      EXPECT_GE((1.0 + kEps) * warm.total_flow, cold.total_flow - 1e-9)
          << "seed " << seed;
      EXPECT_LE(warm.total_flow, cold.total_flow / (1.0 - kEps) + 1e-9)
          << "seed " << seed;
    }

    // Shard/thread invariance of the warm solve (split_contended off): the
    // seed and alpha-ladder entry are computed once from the global
    // instance, so every shard/thread combination reproduces the
    // single-shard warm result bit for bit.
    McfShardOptions opt1;
    opt1.num_shards = 1;
    McfResult warm_ref =
        SolveMcfFptasSharded(inst, kEps, opt1, nullptr, nullptr, &warm_seed);
    for (int shards : {1, 8}) {
      for (int threads : {1, 4}) {
        ParallelRunner pool(threads);
        McfShardOptions opt;
        opt.num_shards = shards;
        McfResult again =
            SolveMcfFptasSharded(inst, kEps, opt, &pool, nullptr, &warm_seed);
        ExpectBitwiseEqual(again, warm_ref, "warm-shard-invariance", seed);
      }
    }
  }
}

// warm == nullptr and an empty seed struct must both take the cold path,
// bit for bit, and report the seed as unused.
TEST(McfWarmTest, EmptySeedDegeneratesToColdBitwise) {
  for (uint64_t seed = 40; seed < 45; ++seed) {
    McfInstance inst = RandomInstance(seed);
    McfResult cold = SolveMcfFptas(inst, kEps);
    McfWarmInfo info;
    McfResult null_seed = SolveMcfFptas(inst, kEps, nullptr, &info);
    ExpectBitwiseEqual(null_seed, cold, "null-seed", seed);
    EXPECT_FALSE(info.used);
    McfWarmSeed empty;
    McfResult empty_seed = SolveMcfFptas(inst, kEps, &empty, &info);
    ExpectBitwiseEqual(empty_seed, cold, "empty-seed", seed);
    EXPECT_FALSE(info.used);
  }
}

// A seed from a DIFFERENT (perturbed) instance — the cross-cycle churn case:
// demands moved, so the seeder must clamp carried flows to the new demands
// and the result must still be feasible and deterministic.
TEST(McfWarmTest, StaleSeedFromChurnedInstanceStaysFeasible) {
  for (uint64_t seed = 50; seed < 60; ++seed) {
    McfInstance inst = RandomInstance(seed);
    McfResult cold = SolveMcfFptas(inst, kEps);
    McfWarmSeed stale = SeedFrom(cold);
    // Churn: shrink every capped demand so several carried flows overshoot.
    Rng rng(seed ^ 0xABCDEF);
    for (McfCommodity& com : inst.commodities) {
      if (com.demand > 0.0) {
        com.demand *= rng.Uniform(0.2, 0.9);
      }
    }
    McfResult warm = SolveMcfFptas(inst, kEps, &stale);
    ASSERT_TRUE(warm.ok) << "seed " << seed;
    EXPECT_LE(MaxCapacityViolation(inst, warm), 1e-6) << "seed " << seed;
    for (int c = 0; c < inst.num_commodities(); ++c) {
      if (inst.commodities[c].demand >= 0.0) {
        EXPECT_LE(warm.CommodityFlow(c), inst.commodities[c].demand + 1e-9)
            << "seed " << seed << " commodity " << c;
      }
    }
    McfResult again = SolveMcfFptas(inst, kEps, &stale);
    ExpectBitwiseEqual(again, warm, "stale-seed-determinism", seed);
  }
}

// Warm start composed with split_contended (the bench's steady-cycle
// configuration): feasible, deterministic, and in the cold split solve's
// quality ballpark on a fully contended instance.
TEST(McfWarmTest, WarmSplitContendedFeasibleAndDeterministic) {
  for (uint64_t seed = 70; seed < 76; ++seed) {
    McfInstance inst = ContendedInstance(seed, 16);
    McfShardOptions opt;
    opt.num_shards = 4;
    opt.split_contended = true;
    McfShardStats cold_stats;
    McfResult cold = SolveMcfFptasSharded(inst, kEps, opt, nullptr, &cold_stats);
    ASSERT_TRUE(cold.ok) << "seed " << seed;
    EXPECT_TRUE(cold_stats.split_mode_used) << "seed " << seed;
    McfWarmSeed warm_seed = SeedFrom(cold);
    McfShardStats stats;
    McfWarmInfo info;
    McfResult warm =
        SolveMcfFptasSharded(inst, kEps, opt, nullptr, &stats, &warm_seed, &info);
    ASSERT_TRUE(warm.ok) << "seed " << seed;
    EXPECT_TRUE(info.used) << "seed " << seed;
    EXPECT_LE(MaxCapacityViolation(inst, warm), 1e-6) << "seed " << seed;
    EXPECT_GE(warm.total_flow, 0.5 * cold.total_flow) << "seed " << seed;
    ParallelRunner pool(4);
    McfResult again =
        SolveMcfFptasSharded(inst, kEps, opt, &pool, nullptr, &warm_seed);
    ExpectBitwiseEqual(again, warm, "warm-split-determinism", seed);
  }
}

// Wedged-budget parity: when the (overridden) push budget cuts the run off,
// the sharded solver must notice the wedge and redo the solve as one serial
// loop, so shards=8 still equals shards=1 bit for bit instead of each group
// spending a private budget.
TEST(McfWarmTest, WedgedBudgetParityAcrossShardCounts) {
  for (uint64_t seed = 80; seed < 90; ++seed) {
    McfInstance inst = RandomInstance(seed);
    for (int64_t budget : {1, 7, 40}) {
      McfShardOptions opt1;
      opt1.num_shards = 1;
      opt1.max_pushes_override = budget;
      McfResult serial = SolveMcfFptasSharded(inst, kEps, opt1, nullptr);
      ParallelRunner pool(4);
      McfShardOptions opt8;
      opt8.num_shards = 8;
      opt8.max_pushes_override = budget;
      McfShardStats stats;
      McfResult sharded = SolveMcfFptasSharded(inst, kEps, opt8, &pool, &stats);
      ExpectBitwiseEqual(sharded, serial, "wedged-budget", seed);
      // The rerun only fires when the budget actually bound the run; a
      // large-enough budget lets the solve finish normally.
      if (stats.num_groups > 1 && stats.pushes >= budget) {
        EXPECT_TRUE(stats.wedge_rerun) << "seed " << seed << " budget " << budget;
      }
    }
  }
}

}  // namespace
}  // namespace bds
