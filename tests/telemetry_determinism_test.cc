// The telemetry determinism contract: enabling metrics and tracing must
// never change what the simulation computes. Two runs with the same seed —
// one with telemetry fully off, one with the recorder active — must produce
// bitwise-equal RunReport fingerprints, with faults injected so every
// instrumented subsystem (controller, scheduler, FPTAS, path cache,
// simulator, fault injector) actually executes its telemetry branches.

#include <gtest/gtest.h>

#include <string>

#include "src/core/service.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

constexpr Bytes kJobBytes = MB(60.0);

struct RunResult {
  uint64_t fingerprint = 0;
  bool completed = false;
  int64_t credited = 0;
  telemetry::MetricsSnapshot telemetry;
};

RunResult RunOnce(uint64_t seed, bool with_telemetry) {
  if (with_telemetry) {
    telemetry::MetricsRegistry::Global().Reset();
    telemetry::TraceRecorder::Global().Start();
  } else {
    telemetry::TraceRecorder::Global().Stop();
    telemetry::SetEnabled(false);
  }

  BdsOptions options;
  options.cycle_length = 1.0;
  options.validate_invariants = true;
  options.seed = seed;
  Topology topo = BuildFullMesh(3, 2, Gbps(1.0), MBps(50.0), MBps(50.0)).value();
  auto service = BdsService::Create(std::move(topo), options).value();
  EXPECT_TRUE(service->CreateJob(0, {1, 2}, kJobBytes).ok());
  EXPECT_TRUE(service->InstallChaos(seed).ok());

  RunResult out;
  auto report = service->Run(/*deadline=*/Hours(2.0));
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) {
    out.fingerprint = report->Fingerprint();
    out.completed = report->completed;
    out.credited = service->mutable_controller()->state().total_credited();
    out.telemetry = report->telemetry;
  }

  telemetry::TraceRecorder::Global().Stop();
  telemetry::SetEnabled(false);
  return out;
}

TEST(TelemetryDeterminismTest, FingerprintIdenticalWithTracingOffAndOn) {
  for (uint64_t seed : {2ULL, 7ULL, 13ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunResult off = RunOnce(seed, /*with_telemetry=*/false);
    RunResult on = RunOnce(seed, /*with_telemetry=*/true);
    EXPECT_TRUE(off.completed);
    EXPECT_TRUE(on.completed);
    EXPECT_EQ(off.fingerprint, on.fingerprint);
    EXPECT_EQ(off.credited, on.credited);
    // The off run must not have accumulated metrics; the on run must have.
    EXPECT_TRUE(off.telemetry.empty());
    EXPECT_FALSE(on.telemetry.empty());
  }
}

TEST(TelemetryDeterminismTest, InstrumentedSubsystemsAllReport) {
  RunResult on = RunOnce(/*seed=*/7, /*with_telemetry=*/true);
  ASSERT_TRUE(on.completed);
  const telemetry::MetricsSnapshot& snap = on.telemetry;
  // One representative counter per instrumented layer. Chaos seeds always
  // schedule and route, so these must be strictly positive.
  EXPECT_GT(snap.CounterValue("controller.cycles"), 0);
  EXPECT_GT(snap.CounterValue("controller.blocks_scheduled"), 0);
  EXPECT_GT(snap.CounterValue("scheduler.candidate_pops"), 0);
  EXPECT_GT(snap.CounterValue("fptas.solves"), 0);
  EXPECT_GT(snap.CounterValue("path_cache.misses"), 0);
  EXPECT_GT(snap.CounterValue("sim.flows_started"), 0);
  EXPECT_GT(snap.CounterValue("sim.flows_completed"), 0);
  const auto* cycle_timer = snap.FindHistogram("controller.cycle");
  ASSERT_NE(cycle_timer, nullptr);
  EXPECT_GT(cycle_timer->hist.total(), 0);
  const auto* solve_timer = snap.FindHistogram("fptas.solve");
  ASSERT_NE(solve_timer, nullptr);
  EXPECT_GT(solve_timer->hist.total(), 0);
  // The trace recorder saw structured events from the same run.
  EXPECT_GT(telemetry::TraceRecorder::Global().size(), 0u);
}

struct SteadyRunResult {
  uint64_t fingerprint = 0;
  uint64_t transition_digest = 0;
  std::vector<RungTransition> transitions;
  int64_t jobs_completed = 0;
  int64_t timeseries_samples = 0;
  size_t recorder_journals = 0;
};

// Chaos-faulted steady-state run with EVERY telemetry subsystem engaged —
// metrics registry, trace recorder, flight recorder, and the SLO sampler —
// versus the same run with all of them off. The flight recorder hooks sit on
// the controller's admission/schedule/cancel paths and on the simulator's
// rate-reallocation epilogue, so this is the strongest observer-effect test
// the repo has: faults fire, admission rejects, the ladder degrades, and the
// journals record all of it without perturbing one bit of the outcome.
SteadyRunResult RunSteadyOnce(bool all_telemetry_on) {
  if (all_telemetry_on) {
    telemetry::MetricsRegistry::Global().Reset();
    telemetry::TraceRecorder::Global().Start();
    telemetry::FlightRecorder::Global().Start();
  } else {
    telemetry::TraceRecorder::Global().Stop();
    telemetry::FlightRecorder::Global().Stop();
    telemetry::SetEnabled(false);
  }

  BdsOptions options;
  options.block_size = MB(2.0);
  options.cycle_length = 3.0;
  options.validate_invariants = true;
  options.seed = 7;
  Topology topo =
      BuildFullMesh(4, 1, MBps(1.0), MBps(4.0), MBps(4.0)).value();
  auto service = BdsService::Create(std::move(topo), options).value();
  EXPECT_TRUE(service->InstallChaos(/*seed=*/21).ok());

  SteadyStateOptions steady;
  steady.duration = Hours(2.0);
  steady.drain = true;
  steady.drain_limit = Hours(1.0);
  steady.arrivals.pattern = ArrivalPattern::kBursty;
  steady.arrivals.jobs_per_hour = 1800.0;
  steady.arrivals.burst_factor = 4.0;
  steady.arrivals.burst_fraction = 0.2;
  steady.arrivals.mean_burst_seconds = 600.0;
  steady.arrivals.size_scale = 2e-6;
  steady.arrivals.seed = 99;
  steady.admission.enabled = true;
  steady.admission.policy = AdmissionPolicy::kReject;
  steady.admission.max_backlog_cycles = 30.0;
  steady.admission.bootstrap_cycles = 8;
  steady.overload.enabled = true;
  steady.overload.cost.base_seconds = 1e-4;
  steady.overload.cost.per_pending_seconds = 1.2e-2;
  steady.overload.recover_cycles = 5;
  // The sampler runs only in the instrumented configuration; it must still
  // not shift the fingerprint.
  steady.timeseries.enabled = all_telemetry_on;
  steady.timeseries.sample_dt = 30.0;

  SteadyRunResult out;
  auto report = service->RunSteadyState(steady);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) {
    out.fingerprint = report->Fingerprint();
    out.transition_digest = report->transition_digest;
    out.transitions = report->transitions;
    out.jobs_completed = report->jobs_completed;
    out.timeseries_samples = report->timeseries_samples;
  }
  out.recorder_journals = telemetry::FlightRecorder::Global().num_transfers();

  telemetry::TraceRecorder::Global().Stop();
  telemetry::FlightRecorder::Global().Stop();
  telemetry::SetEnabled(false);
  return out;
}

TEST(TelemetryDeterminismTest, ChaosSteadyStateFingerprintParityAllOnVsAllOff) {
  SteadyRunResult off = RunSteadyOnce(/*all_telemetry_on=*/false);
  SteadyRunResult on = RunSteadyOnce(/*all_telemetry_on=*/true);

  // Bitwise-identical outcome: fingerprint covers the run report, the
  // transition log, admission counts, and generated jobs.
  EXPECT_EQ(off.fingerprint, on.fingerprint);
  EXPECT_EQ(off.transition_digest, on.transition_digest);
  ASSERT_EQ(off.transitions.size(), on.transitions.size());
  for (size_t i = 0; i < off.transitions.size(); ++i) {
    EXPECT_TRUE(off.transitions[i] == on.transitions[i]) << "transition " << i;
  }
  EXPECT_EQ(off.jobs_completed, on.jobs_completed);

  // The instrumented run really observed the system; the bare run recorded
  // nothing.
  EXPECT_GT(on.jobs_completed, 0);
  EXPECT_GT(on.timeseries_samples, 0);
  EXPECT_GT(on.recorder_journals, 0u);
  EXPECT_EQ(off.timeseries_samples, 0);
  EXPECT_EQ(off.recorder_journals, 0u);
}

TEST(TelemetryDeterminismTest, TelemetrySnapshotExcludedFromFingerprint) {
  // Same seed, telemetry on both times: the second run's snapshot contains
  // different wall-clock-derived histogram sums, yet fingerprints match.
  RunResult a = RunOnce(/*seed=*/13, /*with_telemetry=*/true);
  RunResult b = RunOnce(/*seed=*/13, /*with_telemetry=*/true);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_FALSE(a.telemetry.empty());
  EXPECT_FALSE(b.telemetry.empty());
}

}  // namespace
}  // namespace bds
