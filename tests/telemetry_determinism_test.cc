// The telemetry determinism contract: enabling metrics and tracing must
// never change what the simulation computes. Two runs with the same seed —
// one with telemetry fully off, one with the recorder active — must produce
// bitwise-equal RunReport fingerprints, with faults injected so every
// instrumented subsystem (controller, scheduler, FPTAS, path cache,
// simulator, fault injector) actually executes its telemetry branches.

#include <gtest/gtest.h>

#include <string>

#include "src/core/service.h"
#include "src/telemetry/telemetry.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

constexpr Bytes kJobBytes = MB(60.0);

struct RunResult {
  uint64_t fingerprint = 0;
  bool completed = false;
  int64_t credited = 0;
  telemetry::MetricsSnapshot telemetry;
};

RunResult RunOnce(uint64_t seed, bool with_telemetry) {
  if (with_telemetry) {
    telemetry::MetricsRegistry::Global().Reset();
    telemetry::TraceRecorder::Global().Start();
  } else {
    telemetry::TraceRecorder::Global().Stop();
    telemetry::SetEnabled(false);
  }

  BdsOptions options;
  options.cycle_length = 1.0;
  options.validate_invariants = true;
  options.seed = seed;
  Topology topo = BuildFullMesh(3, 2, Gbps(1.0), MBps(50.0), MBps(50.0)).value();
  auto service = BdsService::Create(std::move(topo), options).value();
  EXPECT_TRUE(service->CreateJob(0, {1, 2}, kJobBytes).ok());
  EXPECT_TRUE(service->InstallChaos(seed).ok());

  RunResult out;
  auto report = service->Run(/*deadline=*/Hours(2.0));
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (report.ok()) {
    out.fingerprint = report->Fingerprint();
    out.completed = report->completed;
    out.credited = service->mutable_controller()->state().total_credited();
    out.telemetry = report->telemetry;
  }

  telemetry::TraceRecorder::Global().Stop();
  telemetry::SetEnabled(false);
  return out;
}

TEST(TelemetryDeterminismTest, FingerprintIdenticalWithTracingOffAndOn) {
  for (uint64_t seed : {2ULL, 7ULL, 13ULL}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RunResult off = RunOnce(seed, /*with_telemetry=*/false);
    RunResult on = RunOnce(seed, /*with_telemetry=*/true);
    EXPECT_TRUE(off.completed);
    EXPECT_TRUE(on.completed);
    EXPECT_EQ(off.fingerprint, on.fingerprint);
    EXPECT_EQ(off.credited, on.credited);
    // The off run must not have accumulated metrics; the on run must have.
    EXPECT_TRUE(off.telemetry.empty());
    EXPECT_FALSE(on.telemetry.empty());
  }
}

TEST(TelemetryDeterminismTest, InstrumentedSubsystemsAllReport) {
  RunResult on = RunOnce(/*seed=*/7, /*with_telemetry=*/true);
  ASSERT_TRUE(on.completed);
  const telemetry::MetricsSnapshot& snap = on.telemetry;
  // One representative counter per instrumented layer. Chaos seeds always
  // schedule and route, so these must be strictly positive.
  EXPECT_GT(snap.CounterValue("controller.cycles"), 0);
  EXPECT_GT(snap.CounterValue("controller.blocks_scheduled"), 0);
  EXPECT_GT(snap.CounterValue("scheduler.candidate_pops"), 0);
  EXPECT_GT(snap.CounterValue("fptas.solves"), 0);
  EXPECT_GT(snap.CounterValue("path_cache.misses"), 0);
  EXPECT_GT(snap.CounterValue("sim.flows_started"), 0);
  EXPECT_GT(snap.CounterValue("sim.flows_completed"), 0);
  const auto* cycle_timer = snap.FindHistogram("controller.cycle");
  ASSERT_NE(cycle_timer, nullptr);
  EXPECT_GT(cycle_timer->hist.total(), 0);
  const auto* solve_timer = snap.FindHistogram("fptas.solve");
  ASSERT_NE(solve_timer, nullptr);
  EXPECT_GT(solve_timer->hist.total(), 0);
  // The trace recorder saw structured events from the same run.
  EXPECT_GT(telemetry::TraceRecorder::Global().size(), 0u);
}

TEST(TelemetryDeterminismTest, TelemetrySnapshotExcludedFromFingerprint) {
  // Same seed, telemetry on both times: the second run's snapshot contains
  // different wall-clock-derived histogram sums, yet fingerprints match.
  RunResult a = RunOnce(/*seed=*/13, /*with_telemetry=*/true);
  RunResult b = RunOnce(/*seed=*/13, /*with_telemetry=*/true);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_FALSE(a.telemetry.empty());
  EXPECT_FALSE(b.telemetry.empty());
}

}  // namespace
}  // namespace bds
