#include "src/common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace bds {
namespace {

TEST(ParallelRunnerTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    ParallelRunner pool(threads);
    for (size_t n : {0u, 1u, 2u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) {
        h = 0;
      }
      pool.For(n, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          ++hits[i];
        }
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i], 1) << "threads=" << threads << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ParallelRunnerTest, SlotWritesMatchSerialExactly) {
  // The determinism contract: per-slot output is independent of the thread
  // count because slices are position-addressed.
  auto compute = [](int threads) {
    ParallelRunner pool(threads);
    std::vector<double> out(513, 0.0);
    pool.For(out.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        out[i] = static_cast<double>(i) * 1.5 + 0.25;
      }
    });
    return out;
  };
  std::vector<double> serial = compute(1);
  EXPECT_EQ(compute(4), serial);
  EXPECT_EQ(compute(7), serial);
}

TEST(ParallelRunnerTest, ClampsToAtLeastOneThread) {
  ParallelRunner pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  ParallelRunner neg(-3);
  EXPECT_GE(neg.num_threads(), 1);
  int sum = 0;
  neg.For(10, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      sum += static_cast<int>(i);
    }
  });
  EXPECT_EQ(sum, 45);
}

TEST(ParallelRunnerTest, ClampsThreadsToWorkItemCount) {
  // A run with fewer work items than pool threads must not spawn (or hand
  // empty slices to) workers beyond the item count: every slice is non-empty
  // and at most n - 1 worker threads ever exist after For(n).
  ParallelRunner pool(8);
  EXPECT_EQ(pool.spawned_workers(), 0);  // Lazy: nothing spawned yet.
  std::atomic<int> slices{0};
  pool.For(2, [&](size_t begin, size_t end) {
    EXPECT_LT(begin, end);  // No empty slices dispatched.
    ++slices;
  });
  EXPECT_LE(slices.load(), 2);
  EXPECT_LE(pool.spawned_workers(), 1);

  pool.For(3, [&](size_t begin, size_t end) { EXPECT_LT(begin, end); });
  EXPECT_LE(pool.spawned_workers(), 2);

  // A larger run afterwards still uses (and may now grow to) the full pool.
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) {
    h = 0;
  }
  pool.For(hits.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      ++hits[i];
    }
  });
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << i;
  }
  EXPECT_LE(pool.spawned_workers(), pool.num_threads() - 1);
}

TEST(ParallelRunnerTest, SingleItemRunsInline) {
  ParallelRunner pool(8);
  int calls = 0;
  pool.For(1, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 1u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(pool.spawned_workers(), 0);  // n == 1 never needs a worker.
}

TEST(ParallelRunnerTest, ForWeightedCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    ParallelRunner pool(threads);
    // Mix of zero, small, and dominant weights, plus an all-zero vector.
    std::vector<std::vector<int64_t>> cases = {
        {},
        {5},
        {0, 0, 0, 0},
        {1, 1, 1, 1, 1, 1, 1},
        {1000, 1, 1, 1, 1, 1, 1, 1000},
        {0, 7, 0, 0, 123, 1, 0, 9, 9, 9, 50, 0},
    };
    for (const auto& weights : cases) {
      std::vector<std::atomic<int>> hits(weights.size());
      for (auto& h : hits) {
        h = 0;
      }
      pool.ForWeighted(weights, [&](size_t begin, size_t end) {
        EXPECT_LE(begin, end);
        for (size_t i = begin; i < end; ++i) {
          ++hits[i];
        }
      });
      for (size_t i = 0; i < weights.size(); ++i) {
        ASSERT_EQ(hits[i], 1) << "threads=" << threads << " n=" << weights.size()
                              << " i=" << i;
      }
    }
  }
}

TEST(ParallelRunnerTest, ForWeightedMatchesSerialExactly) {
  std::vector<int64_t> weights(97);
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<int64_t>((i * 37) % 11);
  }
  auto compute = [&](int threads) {
    ParallelRunner pool(threads);
    std::vector<double> out(weights.size(), 0.0);
    pool.ForWeighted(weights, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        out[i] = static_cast<double>(i) * 0.5 - 3.0;
      }
    });
    return out;
  };
  std::vector<double> serial = compute(1);
  EXPECT_EQ(compute(4), serial);
  EXPECT_EQ(compute(8), serial);
}

TEST(ParallelRunnerTest, ReusableAcrossCalls) {
  ParallelRunner pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> total{0};
    pool.For(100, [&](size_t begin, size_t end) {
      int64_t local = 0;
      for (size_t i = begin; i < end; ++i) {
        local += static_cast<int64_t>(i);
      }
      total += local;
    });
    ASSERT_EQ(total, 4950) << "round " << round;
  }
}

}  // namespace
}  // namespace bds
