#include "src/common/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace bds {
namespace {

TEST(ParallelRunnerTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    ParallelRunner pool(threads);
    for (size_t n : {0u, 1u, 2u, 7u, 64u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) {
        h = 0;
      }
      pool.For(n, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          ++hits[i];
        }
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i], 1) << "threads=" << threads << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(ParallelRunnerTest, SlotWritesMatchSerialExactly) {
  // The determinism contract: per-slot output is independent of the thread
  // count because slices are position-addressed.
  auto compute = [](int threads) {
    ParallelRunner pool(threads);
    std::vector<double> out(513, 0.0);
    pool.For(out.size(), [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        out[i] = static_cast<double>(i) * 1.5 + 0.25;
      }
    });
    return out;
  };
  std::vector<double> serial = compute(1);
  EXPECT_EQ(compute(4), serial);
  EXPECT_EQ(compute(7), serial);
}

TEST(ParallelRunnerTest, ClampsToAtLeastOneThread) {
  ParallelRunner pool(0);
  EXPECT_GE(pool.num_threads(), 1);
  ParallelRunner neg(-3);
  EXPECT_GE(neg.num_threads(), 1);
  int sum = 0;
  neg.For(10, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      sum += static_cast<int>(i);
    }
  });
  EXPECT_EQ(sum, 45);
}

TEST(ParallelRunnerTest, ReusableAcrossCalls) {
  ParallelRunner pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int64_t> total{0};
    pool.For(100, [&](size_t begin, size_t end) {
      int64_t local = 0;
      for (size_t i = begin; i < end; ++i) {
        local += static_cast<int64_t>(i);
      }
      total += local;
    });
    ASSERT_EQ(total, 4950) << "round " << round;
  }
}

}  // namespace
}  // namespace bds
