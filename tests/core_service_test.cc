#include "src/core/service.h"

#include <gtest/gtest.h>

#include "src/baselines/gingko.h"
#include "src/baselines/ideal.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

std::unique_ptr<BdsService> MakeService(int dcs = 3, int servers = 2,
                                        BdsOptions options = BdsOptions{}) {
  Topology topo = BuildFullMesh(dcs, servers, Gbps(1.0), MBps(20.0), MBps(20.0)).value();
  auto service = BdsService::Create(std::move(topo), options);
  BDS_CHECK(service.ok());
  return std::move(service).value();
}

TEST(BdsServiceTest, CreateRejectsBadConfig) {
  Topology one_dc;
  one_dc.AddDatacenter("a");
  EXPECT_FALSE(BdsService::Create(std::move(one_dc), BdsOptions{}).ok());

  Topology topo = BuildFullMesh(2, 1, 1.0, 1.0, 1.0).value();
  BdsOptions bad;
  bad.controller_dc = 9;
  EXPECT_FALSE(BdsService::Create(std::move(topo), bad).ok());

  Topology topo2 = BuildFullMesh(2, 1, 1.0, 1.0, 1.0).value();
  bad = BdsOptions{};
  bad.block_size = 0.0;
  EXPECT_FALSE(BdsService::Create(std::move(topo2), bad).ok());
}

TEST(BdsServiceTest, SingleJobRunsToCompletion) {
  auto service = MakeService();
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, MB(40.0)).ok());
  auto report = service->Run();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  EXPECT_GT(report->completion_time, 0.0);
  EXPECT_GT(report->deliveries, 0);
  EXPECT_FALSE(report->cycles.empty());
  EXPECT_EQ(report->job_completion.size(), 1u);
  // 2 dest DCs x 2 servers = 4 destination servers.
  EXPECT_EQ(report->server_completion.size(), 4u);
  EXPECT_EQ(report->dc_completion.size(), 2u);
}

TEST(BdsServiceTest, CompletionRespectsIdealBound) {
  auto service = MakeService();
  MulticastJob job = MakeJob(0, 0, {1, 2}, MB(40.0), MB(2.0)).value();
  ASSERT_TRUE(service->SubmitJob(job).ok());
  auto report = service->Run();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->completed);
  SimTime ideal = IdealCompletionBound(service->topology(), job);
  EXPECT_GE(report->completion_time, ideal * 0.999);
  // BDS should be within a small factor of the bound on this easy topology.
  EXPECT_LE(report->completion_time, ideal * 6.0);
}

TEST(BdsServiceTest, CreateJobValidatesArguments) {
  auto service = MakeService();
  EXPECT_FALSE(service->CreateJob(0, {0}, MB(1.0)).ok());   // dest == source
  EXPECT_FALSE(service->CreateJob(0, {}, MB(1.0)).ok());    // no dests
  EXPECT_FALSE(service->CreateJob(0, {1}, -1.0).ok());      // bad size
}

TEST(BdsServiceTest, MultipleJobsAllComplete) {
  auto service = MakeService(4, 2);
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, MB(20.0)).ok());
  ASSERT_TRUE(service->CreateJob(1, {2, 3}, MB(12.0)).ok());
  ASSERT_TRUE(service->CreateJob(2, {0}, MB(8.0), /*start_time=*/5.0).ok());
  auto report = service->Run();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  EXPECT_EQ(report->job_completion.size(), 3u);
  // The delayed job cannot finish before it arrives.
  EXPECT_GE(report->job_completion.at(2), 5.0);
}

TEST(BdsServiceTest, DeadlineTruncatesRun) {
  auto service = MakeService();
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, GB(10.0)).ok());  // Way too big.
  auto report = service->Run(/*deadline=*/10.0);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->completed);
  EXPECT_LE(report->completion_time, 10.0 + 1e-6);
}

TEST(BdsServiceTest, ServerFailureDelaysButDoesNotBlock) {
  auto service = MakeService(3, 3);
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, MB(60.0)).ok());
  // Fail one destination server early; its shard must be re-delivered after
  // it is replaced... in our model the server stays failed, so the blocks it
  // lost revert to pending and are re-sent to it only if it recovers.
  // Fail a *source* server instead: other holders take over.
  ServerId src1 = service->topology().ServersIn(0)[1];
  service->InjectServerFailure(src1, 3.0);
  auto report = service->Run(/*deadline=*/3600.0);
  ASSERT_TRUE(report.ok());
  // Blocks shared onto destination DCs before the failure let the job finish.
  // (Blocks whose only copy died stay pending; the run must still terminate.)
  EXPECT_LE(report->completion_time, 3600.0 + 1.0);
}

TEST(BdsServiceTest, ControllerOutageFallsBackAndRecovers) {
  BdsOptions opt;
  opt.cycle_length = 1.0;
  auto service = MakeService(3, 2, opt);
  // Large enough that work remains when the controller recovers at t=8.
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, MB(800.0)).ok());
  service->InjectControllerOutage(3.0, 8.0);
  auto report = service->Run();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  // Cycles in the outage window ran decentralized.
  bool saw_down = false;
  bool saw_up_after = false;
  for (const CycleStats& c : report->cycles) {
    if (c.start_time >= 3.0 - 1e-9 && c.start_time < 8.0 - 1e-9) {
      EXPECT_FALSE(c.controller_up);
      saw_down = true;
    }
    if (c.start_time >= 8.0 - 1e-9 && c.controller_up) {
      saw_up_after = true;
    }
  }
  EXPECT_TRUE(saw_down);
  EXPECT_TRUE(saw_up_after);
  // Progress happened during the outage (graceful degradation, Fig 12a).
  int64_t delivered_during_outage = 0;
  for (const CycleStats& c : report->cycles) {
    if (!c.controller_up) {
      delivered_during_outage += c.blocks_delivered;
    }
  }
  EXPECT_GT(delivered_during_outage, 0);
}

TEST(BdsServiceTest, MeasuresControlDelays) {
  BdsOptions opt;
  opt.measure_delays = true;
  auto service = MakeService(3, 2, opt);
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, MB(20.0)).ok());
  auto report = service->Run();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->control_delays.count(), 0);
  EXPECT_GT(report->feedback_delays.count(), 0);
  // Feedback loop includes two one-way hops plus algorithm time.
  EXPECT_GE(report->feedback_delays.Min(), report->control_delays.Min());
}

TEST(BdsServiceTest, OriginStatsShowOverlayRelaying) {
  // Many destination DCs: most blocks should arrive from non-origin DCs
  // (Fig 13c's effect).
  auto service = MakeService(6, 2);
  // Long enough for replicas to become overlay sources across many cycles.
  ASSERT_TRUE(service->CreateJob(0, {1, 2, 3, 4, 5}, MB(240.0)).ok());
  auto report = service->Run();
  ASSERT_TRUE(report.ok());
  ASSERT_TRUE(report->completed);
  int64_t origin = 0;
  int64_t total = 0;
  for (const auto& [server, s] : report->origin_stats) {
    origin += s.from_origin;
    total += s.total;
  }
  ASSERT_GT(total, 0);
  // With 5 destination DCs, at most ~1/5 of deliveries need the origin.
  EXPECT_LT(static_cast<double>(origin) / static_cast<double>(total), 0.6);
}

TEST(BdsServiceTest, BdsStrategyAdapterMatchesServiceRun) {
  Topology topo = BuildFullMesh(3, 2, Gbps(1.0), MBps(20.0), MBps(20.0)).value();
  auto routing = WanRoutingTable::Build(topo, 3).value();
  MulticastJob job = MakeJob(0, 0, {1, 2}, MB(40.0), MB(2.0)).value();
  BdsStrategy strategy;
  auto result = strategy.Run(topo, routing, job, /*seed=*/1, /*deadline=*/kTimeInfinity);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->completed);
  EXPECT_EQ(result->server_completion.size(), 4u);
  EXPECT_EQ(strategy.name(), "bds");
}

TEST(BdsServiceTest, BdsBeatsGingkoOnFanout) {
  // The headline claim at miniature scale: centralized BDS vs the
  // decentralized baseline on a 5-DC fanout.
  Topology topo = BuildFullMesh(5, 4, Gbps(1.0), MBps(20.0), MBps(20.0)).value();
  auto routing = WanRoutingTable::Build(topo, 3).value();
  // The transfer must be long relative to the cycle length (the paper's
  // multicasts last tens of minutes against a 3 s cycle; same ratio here).
  MulticastJob job = MakeJob(0, 0, {1, 2, 3, 4}, MB(400.0), MB(2.0)).value();

  BdsOptions bopt;
  bopt.cycle_length = 1.0;
  BdsStrategy bds(bopt);
  auto bds_result = bds.Run(topo, routing, job, 1, kTimeInfinity);
  ASSERT_TRUE(bds_result.ok());
  ASSERT_TRUE(bds_result->completed);

  GingkoStrategy gingko;
  auto gingko_result = gingko.Run(topo, routing, job, 1, kTimeInfinity);
  ASSERT_TRUE(gingko_result.ok());
  ASSERT_TRUE(gingko_result->completed);

  EXPECT_LT(bds_result->completion_time, gingko_result->completion_time);
}

}  // namespace
}  // namespace bds
