#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace bds {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStatsTest, KnownMoments) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(v);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // Classic population-variance example.
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, MergeMatchesCombinedStream) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 50; ++i) {
    double v = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats c;
  c.Merge(a);
  EXPECT_EQ(c.count(), 2);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(EmpiricalDistributionTest, QuantilesOfLinearRamp) {
  EmpiricalDistribution d;
  for (int i = 0; i <= 100; ++i) {
    d.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(d.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(d.Quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(d.Median(), 50.0);
  EXPECT_DOUBLE_EQ(d.Min(), 0.0);
  EXPECT_DOUBLE_EQ(d.Max(), 100.0);
}

TEST(EmpiricalDistributionTest, QuantileInterpolates) {
  EmpiricalDistribution d;
  d.Add(0.0);
  d.Add(10.0);
  EXPECT_DOUBLE_EQ(d.Quantile(0.25), 2.5);
  EXPECT_DOUBLE_EQ(d.Quantile(0.75), 7.5);
}

TEST(EmpiricalDistributionTest, CdfAt) {
  EmpiricalDistribution d;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    d.Add(v);
  }
  EXPECT_DOUBLE_EQ(d.CdfAt(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.CdfAt(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.CdfAt(2.5), 0.5);
  EXPECT_DOUBLE_EQ(d.CdfAt(4.0), 1.0);
  EXPECT_DOUBLE_EQ(d.CdfAt(100.0), 1.0);
}

TEST(EmpiricalDistributionTest, MeanAndStddev) {
  EmpiricalDistribution d;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    d.Add(v);
  }
  EXPECT_DOUBLE_EQ(d.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(d.Stddev(), 2.0);
}

TEST(EmpiricalDistributionTest, CdfSeriesMonotone) {
  EmpiricalDistribution d;
  for (int i = 0; i < 500; ++i) {
    d.Add(std::fmod(i * 37.0, 101.0));
  }
  auto series = d.CdfSeries(25);
  ASSERT_EQ(series.size(), 25u);
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].x, series[i - 1].x);
    EXPECT_GT(series[i].cdf, series[i - 1].cdf);
  }
  EXPECT_DOUBLE_EQ(series.back().cdf, 1.0);
}

TEST(EmpiricalDistributionTest, AddAllMatchesAdd) {
  EmpiricalDistribution a;
  EmpiricalDistribution b;
  std::vector<double> vals{3.0, 1.0, 2.0};
  a.AddAll(vals);
  for (double v : vals) {
    b.Add(v);
  }
  EXPECT_DOUBLE_EQ(a.Median(), b.Median());
  EXPECT_EQ(a.count(), 3);
}

TEST(EmpiricalDistributionTest, MergeMatchesCombinedStream) {
  EmpiricalDistribution a;
  EmpiricalDistribution b;
  EmpiricalDistribution all;
  for (int i = 0; i < 60; ++i) {
    double v = std::cos(i) * 7.0;
    (i % 3 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.Median(), all.Median());
  EXPECT_DOUBLE_EQ(a.Quantile(0.9), all.Quantile(0.9));
  EXPECT_DOUBLE_EQ(a.Min(), all.Min());
  EXPECT_DOUBLE_EQ(a.Max(), all.Max());
}

TEST(EmpiricalDistributionTest, MergeWithEmpty) {
  // Mirrors RunningStatsTest.MergeWithEmpty: empty other is a no-op, merging
  // into an empty distribution copies.
  EmpiricalDistribution a;
  a.Add(1.0);
  a.Add(3.0);
  EmpiricalDistribution empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.Median(), 2.0);

  EmpiricalDistribution c;
  c.Merge(a);
  EXPECT_EQ(c.count(), 2);
  EXPECT_DOUBLE_EQ(c.Median(), 2.0);
}

TEST(EmpiricalDistributionTest, MergeWithSelfDoublesSamples) {
  EmpiricalDistribution a;
  a.Add(1.0);
  a.Add(5.0);
  a.Merge(a);
  EXPECT_EQ(a.count(), 4);
  EXPECT_DOUBLE_EQ(a.Median(), 3.0);
  EXPECT_DOUBLE_EQ(a.Min(), 1.0);
  EXPECT_DOUBLE_EQ(a.Max(), 5.0);

  EmpiricalDistribution empty;
  empty.Merge(empty);
  EXPECT_EQ(empty.count(), 0);
}

TEST(EmpiricalDistributionTest, MergePreservesLaterAdds) {
  // Sorted-state invalidation: quantiles queried before a merge must not
  // poison quantiles queried after.
  EmpiricalDistribution a;
  a.Add(10.0);
  EXPECT_DOUBLE_EQ(a.Median(), 10.0);  // Forces the sorted path.
  EmpiricalDistribution b;
  b.Add(0.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Median(), 5.0);
  a.Add(20.0);
  EXPECT_DOUBLE_EQ(a.Median(), 10.0);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(1.0);    // bin 0
  h.Add(3.0);    // bin 1
  h.Add(-5.0);   // clamps to bin 0
  h.Add(100.0);  // clamps to bin 4
  EXPECT_EQ(h.BinCount(0), 2);
  EXPECT_EQ(h.BinCount(1), 1);
  EXPECT_EQ(h.BinCount(4), 1);
  EXPECT_EQ(h.total(), 4);
  EXPECT_DOUBLE_EQ(h.BinLow(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BinHigh(0), 2.0);
  EXPECT_DOUBLE_EQ(h.BinHigh(4), 10.0);
}

TEST(HistogramTest, AddCountBulkMatchesRepeatedAdd) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  for (int i = 0; i < 7; ++i) {
    a.Add(3.0);
  }
  b.AddCount(1, 7);
  EXPECT_EQ(a.BinCount(1), b.BinCount(1));
  EXPECT_EQ(a.total(), b.total());
}

TEST(HistogramTest, MergeMatchesCombinedStream) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  Histogram all(0.0, 10.0, 5);
  for (int i = 0; i < 40; ++i) {
    double v = std::fmod(i * 1.7, 12.0) - 1.0;  // Exercises both clamp edges.
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.total(), all.total());
  for (int bin = 0; bin < all.bins(); ++bin) {
    EXPECT_EQ(a.BinCount(bin), all.BinCount(bin)) << "bin " << bin;
  }
}

TEST(HistogramTest, MergeWithEmptyAndSelf) {
  Histogram a(0.0, 10.0, 5);
  a.Add(1.0);
  a.Add(9.0);
  Histogram empty(0.0, 10.0, 5);
  a.Merge(empty);
  EXPECT_EQ(a.total(), 2);

  Histogram c(0.0, 10.0, 5);
  c.Merge(a);
  EXPECT_EQ(c.total(), 2);
  EXPECT_EQ(c.BinCount(0), 1);
  EXPECT_EQ(c.BinCount(4), 1);

  a.Merge(a);
  EXPECT_EQ(a.total(), 4);
  EXPECT_EQ(a.BinCount(0), 2);
  EXPECT_EQ(a.BinCount(4), 2);
}

TEST(HistogramTest, QuantileEmptyReturnsRangeFloor) {
  Histogram h(5.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 5.0);
}

TEST(HistogramTest, QuantileSingleSampleAndSingleBin) {
  Histogram one(0.0, 10.0, 5);
  one.Add(3.0);  // bin 1 = [2, 4)
  EXPECT_DOUBLE_EQ(one.Quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(one.Quantile(1.0), 4.0);
  EXPECT_DOUBLE_EQ(one.Quantile(0.5), 3.0);

  Histogram single(0.0, 8.0, 1);
  single.Add(1.0);
  single.Add(7.0);
  EXPECT_DOUBLE_EQ(single.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(single.Quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(single.Quantile(1.0), 8.0);
}

TEST(HistogramTest, QuantileClampsOutOfRangeAndNanQ) {
  Histogram h(0.0, 10.0, 5);
  h.Add(3.0);
  EXPECT_DOUBLE_EQ(h.Quantile(-0.5), h.Quantile(0.0));
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), h.Quantile(1.0));
  const double nan_q = h.Quantile(std::numeric_limits<double>::quiet_NaN());
  EXPECT_DOUBLE_EQ(nan_q, h.Quantile(0.0));
}

TEST(HistogramTest, QuantileTopCapsAtLastOccupiedBin) {
  // Every sample lives in bin 1 of [0, 100): q=1 must answer with that bin's
  // high edge, not the histogram ceiling 60 bins further up.
  Histogram h(0.0, 100.0, 50);
  for (int i = 0; i < 9; ++i) {
    h.Add(3.0);  // bin 1 = [2, 4)
  }
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 4.0);
  EXPECT_LE(h.Quantile(0.999), 4.0);
}

TEST(HistogramTest, QuantileMonotoneInQ) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) {
    h.Add(std::fmod(i * 0.37, 10.0));
  }
  double prev = h.Quantile(0.0);
  for (double q = 0.05; q <= 1.0 + 1e-9; q += 0.05) {
    double v = h.Quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(HistogramDeathTest, MergeRejectsMismatchedShape) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 10);
  EXPECT_DEATH(a.Merge(b), "");
}

TEST(HistogramTest, ToStringDoesNotCrash) {
  Histogram h(0.0, 1.0, 4);
  h.Add(0.1);
  h.Add(0.6);
  EXPECT_FALSE(h.ToString().empty());
}

TEST(TimeSeriesTest, BasicAccumulation) {
  TimeSeries ts("util");
  ts.Add(0.0, 0.5);
  ts.Add(1.0, 0.7);
  ts.Add(2.0, 0.2);
  EXPECT_EQ(ts.points().size(), 3u);
  EXPECT_DOUBLE_EQ(ts.MaxValue(), 0.7);
  EXPECT_NEAR(ts.MeanValue(), (0.5 + 0.7 + 0.2) / 3.0, 1e-12);
  EXPECT_EQ(ts.name(), "util");
}

TEST(TimeSeriesTest, ResamplePiecewiseConstant) {
  TimeSeries ts;
  ts.Add(0.0, 1.0);
  ts.Add(2.0, 3.0);
  auto pts = ts.Resample(0.0, 4.0, 1.0);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_DOUBLE_EQ(pts[0].value, 1.0);  // t=0
  EXPECT_DOUBLE_EQ(pts[1].value, 1.0);  // t=1
  EXPECT_DOUBLE_EQ(pts[2].value, 3.0);  // t=2
  EXPECT_DOUBLE_EQ(pts[4].value, 3.0);  // t=4
}

TEST(TimeSeriesTest, EmptyBehaviour) {
  TimeSeries ts;
  EXPECT_TRUE(ts.empty());
  EXPECT_DOUBLE_EQ(ts.MaxValue(), 0.0);
  EXPECT_DOUBLE_EQ(ts.MeanValue(), 0.0);
}

}  // namespace
}  // namespace bds
