// Unit and regression tests for the overload-protection pieces of the
// long-running service mode: the cycle-deadline watchdog and its degradation
// ladder (src/control/overload.h), the admission controller
// (src/scheduler/admission.h), bounded-memory retirement in ReplicaState,
// and the StopReason the controller now reports — including the wedge
// detector in both directions (fires on a provably dead run, defers while a
// scheduled recovery can still unwedge it).

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/control/controller.h"
#include "src/control/overload.h"
#include "src/core/service.h"
#include "src/scheduler/admission.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

// --------------------------------------------------------------------------
// CycleCostModel.

TEST(CycleCostModelTest, MonotoneInEveryCount) {
  CycleCostModel m;
  const double base = m.Cost(0, 0, 0, 1, 0.1);
  EXPECT_DOUBLE_EQ(base, m.base_seconds);
  EXPECT_GT(m.Cost(1000, 0, 0, 1, 0.1), base);
  EXPECT_GT(m.Cost(0, 1000, 0, 1, 0.1), base);
  EXPECT_GT(m.Cost(0, 0, 1000, 1, 0.1), base);
  // More routes per subtask costs more; a coarser epsilon costs less.
  EXPECT_GT(m.Cost(0, 0, 100, 3, 0.1), m.Cost(0, 0, 100, 1, 0.1));
  EXPECT_LT(m.Cost(0, 0, 100, 3, 0.4), m.Cost(0, 0, 100, 3, 0.1));
}

TEST(CycleCostModelTest, CalibrationAnchorPricesNearMeasuredCycle) {
  // The PR-6 fleet point (1e7 pending, ~3e4 selected, ~2.7e4 subtasks,
  // 3 routes, eps 0.1) should price near the measured ~2.2 s all-on cycle.
  CycleCostModel m;
  const double cost = m.Cost(10'000'000, 30'000, 27'000, 3, 0.1);
  EXPECT_GT(cost, 1.5);
  EXPECT_LT(cost, 3.0);
}

OverloadOptions WatchdogOptions() {
  OverloadOptions o;
  o.enabled = true;
  o.cycle_length = 1.0;
  o.overrun_threshold = 1.0;
  o.recover_threshold = 0.5;
  o.recover_cycles = 2;
  return o;
}

// --------------------------------------------------------------------------
// CycleWatchdog ladder dynamics.

TEST(CycleWatchdogTest, EscalatesOneRungPerOverrunAndSaturates) {
  CycleWatchdog wd(WatchdogOptions());
  EXPECT_EQ(wd.rung(), DegradationRung::kNormal);
  EXPECT_EQ(wd.Observe(0, 2.0), DegradationRung::kCachedPaths);
  EXPECT_EQ(wd.Observe(1, 2.0), DegradationRung::kCoarseEpsilon);
  EXPECT_EQ(wd.Observe(2, 2.0), DegradationRung::kShedCandidates);
  EXPECT_EQ(wd.Observe(3, 2.0), DegradationRung::kExtendDecisions);
  // Already at the bottom: keeps counting overruns, cannot go lower.
  EXPECT_EQ(wd.Observe(4, 2.0), DegradationRung::kExtendDecisions);
  EXPECT_EQ(wd.overrun_cycles(), 5);
  EXPECT_DOUBLE_EQ(wd.worst_overrun_seconds(), 1.0);
  EXPECT_EQ(wd.transitions().size(), 4u);  // No transition once saturated.
}

TEST(CycleWatchdogTest, RecoversAfterConsecutiveCalmCycles) {
  CycleWatchdog wd(WatchdogOptions());
  wd.Observe(0, 2.0);  // -> kCachedPaths
  EXPECT_EQ(wd.Observe(1, 0.1), DegradationRung::kCachedPaths);  // calm 1 of 2
  EXPECT_EQ(wd.Observe(2, 0.1), DegradationRung::kNormal);       // calm 2 of 2
  ASSERT_EQ(wd.transitions().size(), 2u);
  EXPECT_EQ(wd.transitions()[1].from, DegradationRung::kCachedPaths);
  EXPECT_EQ(wd.transitions()[1].to, DegradationRung::kNormal);
}

TEST(CycleWatchdogTest, MiddlingCycleResetsCalmStreak) {
  CycleWatchdog wd(WatchdogOptions());
  wd.Observe(0, 2.0);  // -> kCachedPaths
  wd.Observe(1, 0.1);  // calm 1 of 2
  // 0.7 is neither an overrun (> 1.0) nor calm (< 0.5): hold and reset.
  EXPECT_EQ(wd.Observe(2, 0.7), DegradationRung::kCachedPaths);
  EXPECT_EQ(wd.Observe(3, 0.1), DegradationRung::kCachedPaths);  // calm 1 of 2 again
  EXPECT_EQ(wd.Observe(4, 0.1), DegradationRung::kNormal);
  EXPECT_EQ(wd.overrun_cycles(), 1);
}

TEST(CycleWatchdogTest, RungOccupancyCoversEveryObservedCycle) {
  CycleWatchdog wd(WatchdogOptions());
  for (int64_t c = 0; c < 10; ++c) {
    wd.Observe(c, c < 3 ? 2.0 : 0.1);
  }
  int64_t total = 0;
  for (int64_t n : wd.rung_cycles()) {
    total += n;
  }
  EXPECT_EQ(total, 10);
  EXPECT_GT(wd.rung_cycles()[static_cast<size_t>(DegradationRung::kCachedPaths)], 0);
}

TEST(CycleWatchdogTest, StalenessZeroUnderBudgetAndCapped) {
  OverloadOptions o = WatchdogOptions();
  o.max_staleness_fraction = 0.9;
  CycleWatchdog wd(o);
  EXPECT_DOUBLE_EQ(wd.StalenessFor(0.5), 0.0);
  EXPECT_DOUBLE_EQ(wd.StalenessFor(1.0), 0.0);
  EXPECT_DOUBLE_EQ(wd.StalenessFor(1.4), 0.4);
  EXPECT_DOUBLE_EQ(wd.StalenessFor(100.0), 0.9);  // Capped at fraction * cycle.
}

TEST(CycleWatchdogTest, ModelCostReflectsRungKnobs) {
  OverloadOptions o = WatchdogOptions();
  o.max_wan_routes = 3;
  o.fptas_epsilon = 0.1;
  o.degraded_epsilon_factor = 4.0;
  CycleWatchdog wd(o);
  const double normal = wd.ModelCost(1000, 100, 90);
  wd.Observe(0, 2.0);  // -> kCachedPaths: one route instead of three.
  const double cached = wd.ModelCost(1000, 100, 90);
  EXPECT_LT(cached, normal);
  wd.Observe(1, 2.0);  // -> kCoarseEpsilon: fewer FPTAS phases on top.
  const double coarse = wd.ModelCost(1000, 100, 90);
  EXPECT_LT(coarse, cached);
  wd.Observe(2, 2.0);  // -> kShedCandidates
  wd.Observe(3, 2.0);  // -> kExtendDecisions: base cost only.
  EXPECT_DOUBLE_EQ(wd.ModelCost(1000, 100, 90), o.cost.base_seconds);
}

TEST(CycleWatchdogTest, TransitionDigestIsDeterministicAndOrderSensitive) {
  CycleWatchdog a(WatchdogOptions());
  CycleWatchdog b(WatchdogOptions());
  for (int64_t c = 0; c < 8; ++c) {
    a.Observe(c, c % 3 == 0 ? 2.0 : 0.1);
    b.Observe(c, c % 3 == 0 ? 2.0 : 0.1);
  }
  EXPECT_EQ(a.TransitionDigest(), b.TransitionDigest());
  CycleWatchdog c(WatchdogOptions());
  for (int64_t i = 0; i < 8; ++i) {
    c.Observe(i, i % 2 == 0 ? 2.0 : 0.1);
  }
  EXPECT_NE(a.TransitionDigest(), c.TransitionDigest());
}

// --------------------------------------------------------------------------
// AdmissionController.

AdmissionOptions AdmissionDefaults() {
  AdmissionOptions o;
  o.enabled = true;
  o.max_backlog_cycles = 3.0;
  o.bootstrap_cycles = 0;
  return o;
}

TEST(AdmissionControllerTest, AcceptsUnderAndRejectsOverBacklogBudget) {
  AdmissionController ac(AdmissionDefaults());
  ac.ObserveCycle(10, /*had_backlog=*/true);  // First sample sets the rate.
  EXPECT_DOUBLE_EQ(ac.estimated_service_rate(), 10.0);
  // (10 + 10) / 10 = 2 cycles <= 3: accept.
  EXPECT_EQ(ac.Admit(10, 10), AdmissionDecision::kAccept);
  // (25 + 10) / 10 = 3.5 cycles > 3: reject.
  EXPECT_EQ(ac.Admit(10, 25), AdmissionDecision::kReject);
  EXPECT_EQ(ac.stats().offered, 2);
  EXPECT_EQ(ac.stats().accepted, 1);
  EXPECT_EQ(ac.stats().rejected, 1);
}

TEST(AdmissionControllerTest, BootstrapIsOptimisticExceptAbsoluteBound) {
  AdmissionOptions o = AdmissionDefaults();
  o.bootstrap_cycles = 8;
  o.max_backlog_deliveries = 50;
  AdmissionController ac(o);
  // No rate estimate yet: any relative backlog is fine...
  EXPECT_EQ(ac.Admit(10, 30), AdmissionDecision::kAccept);
  // ...but the absolute bound still holds.
  EXPECT_EQ(ac.Admit(10, 45), AdmissionDecision::kReject);
}

TEST(AdmissionControllerTest, FormedZeroRateRejectsEverything) {
  AdmissionController ac(AdmissionDefaults());
  ac.ObserveCycle(0, /*had_backlog=*/true);  // Backlogged cycle drained nothing.
  EXPECT_EQ(ac.Admit(1, 0), AdmissionDecision::kReject);
}

TEST(AdmissionControllerTest, IdleCyclesDoNotDragTheRateDown) {
  AdmissionController ac(AdmissionDefaults());
  ac.ObserveCycle(10, /*had_backlog=*/true);
  ac.ObserveCycle(0, /*had_backlog=*/false);  // Nothing owed: skipped.
  EXPECT_DOUBLE_EQ(ac.estimated_service_rate(), 10.0);
  ac.ObserveCycle(0, /*had_backlog=*/true);  // Owed but drained nothing: counts.
  EXPECT_LT(ac.estimated_service_rate(), 10.0);
}

TEST(AdmissionControllerTest, DeferPolicyLeavesCountingToTheCaller) {
  AdmissionOptions o = AdmissionDefaults();
  o.policy = AdmissionPolicy::kDefer;
  AdmissionController ac(o);
  ac.ObserveCycle(10, /*had_backlog=*/true);
  EXPECT_EQ(ac.Admit(10, 100), AdmissionDecision::kDefer);
  EXPECT_EQ(ac.stats().offered, 1);
  EXPECT_EQ(ac.stats().deferred, 0);  // Caller decides queue vs overflow.
  ac.CountDeferred();
  EXPECT_EQ(ac.stats().deferred, 1);
  // Re-offers do not inflate the offered count.
  EXPECT_EQ(ac.ReofferDeferred(10, 100), AdmissionDecision::kDefer);
  EXPECT_EQ(ac.ReofferDeferred(10, 5), AdmissionDecision::kAccept);
  EXPECT_EQ(ac.stats().offered, 1);
}

TEST(AdmissionControllerTest, DisabledAcceptsEverything) {
  AdmissionController ac;  // Default options: disabled.
  ac.ObserveCycle(1, /*had_backlog=*/true);
  EXPECT_EQ(ac.Admit(1'000'000, 1'000'000), AdmissionDecision::kAccept);
}

// --------------------------------------------------------------------------
// Histogram quantiles (used by the steady-state completion-time report).

TEST(HistogramQuantileTest, InterpolatesWithinBins) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 100; ++i) {
    h.Add(static_cast<double>(i) + 0.5);
  }
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 10.0 + 1e-9);
  EXPECT_NEAR(h.Quantile(0.95), 95.0, 10.0 + 1e-9);
  EXPECT_LE(h.Quantile(0.0), h.Quantile(0.5));
  EXPECT_LE(h.Quantile(0.5), h.Quantile(1.0));
  EXPECT_LE(h.Quantile(1.0), 100.0);
}

TEST(HistogramQuantileTest, EmptyHistogramReturnsZero) {
  Histogram h(0.0, 10.0, 4);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
}

// --------------------------------------------------------------------------
// StopReason + wedge watchdog, end to end through the controller.

struct Fixture {
  Topology topo;
  WanRoutingTable routing;

  explicit Fixture(int dcs = 2, int servers = 1, Rate nic = MBps(20.0), Rate wan = MBps(20.0))
      : topo(BuildFullMesh(dcs, servers, wan, nic, nic).value()),
        routing(WanRoutingTable::Build(topo, 3).value()) {}
};

ControllerOptions Defaults() {
  BdsOptions options;
  options.cycle_length = 1.0;
  return ToControllerOptions(options);
}

TEST(StopReasonTest, NamesAreStable) {
  EXPECT_STREQ(StopReasonName(StopReason::kDrained), "drained");
  EXPECT_STREQ(StopReasonName(StopReason::kDeadline), "deadline");
  EXPECT_STREQ(StopReasonName(StopReason::kWedged), "wedged");
  EXPECT_STREQ(StopReasonName(StopReason::kAborted), "aborted");
}

TEST(StopReasonTest, DrainedRunReportsDrained) {
  Fixture f;
  BdsController controller(&f.topo, &f.routing, Defaults());
  ASSERT_TRUE(controller.SubmitJob(MakeJob(0, 0, {1}, MB(8.0)).value()).ok());
  auto report = controller.Run();
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  EXPECT_EQ(report->stop_reason, StopReason::kDrained);
  EXPECT_EQ(report->jobs_completed_total, 1);
}

TEST(StopReasonTest, DeadlineRunReportsDeadline) {
  Fixture f(/*dcs=*/2, /*servers=*/1, /*nic=*/MBps(1.0), /*wan=*/MBps(1.0));
  BdsController controller(&f.topo, &f.routing, Defaults());
  ASSERT_TRUE(controller.SubmitJob(MakeJob(0, 0, {1}, MB(500.0)).value()).ok());
  auto report = controller.Run(/*deadline=*/5.0);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->completed);
  EXPECT_EQ(report->stop_reason, StopReason::kDeadline);
}

TEST(WedgeWatchdogTest, PermanentSourceFailureStopsAsWedged) {
  // 2 DCs x 1 server: once the only source server fails, no holder of any
  // block remains and the run can never make progress. The watchdog must
  // stop it as kWedged well before the deadline instead of spinning.
  Fixture f;
  BdsController controller(&f.topo, &f.routing, Defaults());
  ASSERT_TRUE(controller.SubmitJob(MakeJob(0, 0, {1}, MB(8.0)).value()).ok());
  ServerId source = f.topo.dc(0).servers.front();
  ASSERT_TRUE(controller.ScheduleServerFailure(source, 0.0).ok());
  auto report = controller.Run(/*deadline=*/10'000.0);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->completed);
  EXPECT_EQ(report->stop_reason, StopReason::kWedged);
  EXPECT_LT(report->total_cycles, 100);  // Stopped early, not at the deadline.
}

TEST(WedgeWatchdogTest, PendingLinkRecoveryDefersTheWedgeVerdict) {
  // The only WAN path is down from t=0 to t=30. Cycles in that window look
  // exactly like a wedge (no flows, no transfers), but the scheduled
  // recovery means the run is NOT dead — the detector must hold off, and the
  // job must complete after the link returns.
  Fixture f;
  BdsController controller(&f.topo, &f.routing, Defaults());
  ASSERT_TRUE(controller.SubmitJob(MakeJob(0, 0, {1}, MB(8.0)).value()).ok());
  LinkId wan_link = -1;
  for (const Link& l : f.topo.links()) {
    if (l.type == LinkType::kWan) {
      wan_link = l.id;
      break;
    }
  }
  ASSERT_GE(wan_link, 0);
  ASSERT_TRUE(
      controller.mutable_fault_injector()->AddLinkDown(f.topo, wan_link, 0.0, 30.0).ok());
  auto report = controller.Run(/*deadline=*/10'000.0);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  EXPECT_EQ(report->stop_reason, StopReason::kDrained);
  EXPECT_GT(report->completion_time, 30.0);  // Finished only after recovery.
}

TEST(WedgeWatchdogTest, DegradedRungDefersTheWedgeVerdict) {
  // Make every backlogged cycle overrun, so the ladder walks all the way to
  // kExtendDecisions while the job is still in flight: extended cycles start
  // no transfers, which must not read as a wedge while the rung is above
  // kNormal. The run still finishes (recovery hysteresis re-enables
  // scheduling), exercising the extend <-> shed oscillation on the way.
  Fixture f(/*dcs=*/2, /*servers=*/1, /*nic=*/MBps(2.0), /*wan=*/MBps(2.0));
  BdsController controller(&f.topo, &f.routing, Defaults());
  ASSERT_TRUE(controller.SubmitJob(MakeJob(0, 0, {1}, MB(24.0)).value()).ok());
  OverloadOptions overload;
  overload.enabled = true;
  overload.cost.base_seconds = 1e-4;
  overload.cost.per_pending_seconds = 10.0;  // Any pending work overruns.
  overload.recover_cycles = 3;
  controller.ConfigureOverload(overload);
  auto report = controller.Run(/*deadline=*/10'000.0);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  EXPECT_EQ(report->stop_reason, StopReason::kDrained);
  const auto& rungs = controller.watchdog().rung_cycles();
  EXPECT_GT(rungs[static_cast<size_t>(DegradationRung::kExtendDecisions)], 0);
}

// --------------------------------------------------------------------------
// Bounded-memory retirement through ReplicaState.

TEST(RetirementTest, RetirementKeepsFullRunDigestsAndIsReproducible) {
  // Same workload with and without retirement: the incrementally-maintained
  // digests and full-run totals must agree even though the retained
  // history (cycles vector, job_completion map) differs. The fingerprint
  // itself deliberately covers the retained state too, so it is only
  // compared between *same-config* runs.
  auto run = [](bool retire) {
    Fixture f(/*dcs=*/3, /*servers=*/2);
    BdsController controller(&f.topo, &f.routing, Defaults());
    for (int j = 0; j < 6; ++j) {
      BDS_CHECK(controller
                    .SubmitJob(MakeJob(j, 0, {1, 2}, MB(6.0), MB(2.0), j * 2.0).value())
                    .ok());
    }
    if (retire) {
      controller.ConfigureRetirement(true, /*completed_flow_history=*/8,
                                     /*max_cycle_stats=*/4);
    }
    auto report = controller.Run();
    BDS_CHECK(report.ok());
    return std::make_pair(report->Fingerprint(), *report);
  };
  auto [fp_keep, keep] = run(false);
  auto [fp_retire, retire] = run(true);
  auto [fp_retire2, retire2] = run(true);
  (void)retire2;
  EXPECT_EQ(fp_retire, fp_retire2);  // Same config reproduces bit-identically.
  EXPECT_NE(fp_keep, 0u);
  EXPECT_EQ(keep.jobs_completed_total, 6);
  EXPECT_EQ(retire.jobs_completed_total, 6);
  EXPECT_EQ(retire.retired_jobs, 6);
  EXPECT_EQ(keep.retired_jobs, 0);
  // Retained per-cycle history is trimmed, but the full-run counters are not.
  EXPECT_EQ(keep.total_cycles, retire.total_cycles);
  EXPECT_LE(static_cast<int64_t>(retire.cycles.size()), 4 + 4 / 2);
  EXPECT_EQ(keep.cycles_digest, retire.cycles_digest);
  EXPECT_EQ(keep.completion_digest, retire.completion_digest);
  // Retired jobs leave job_completion; totals still count them.
  EXPECT_EQ(retire.job_completion.size(), 0u);
  EXPECT_EQ(keep.job_completion.size(), 6u);
}

}  // namespace
}  // namespace bds
