// Parity suite for the simulator's incremental hot path.
//
// The incremental event loop (dirty-component reallocation, lazy flow
// anchors, completion heap, lazy link-byte integration) must be *bit
// identical* to full reallocation: both modes call the same component solver
// on the same canonically-ordered flow subsets, and a clean component
// re-solved from scratch reproduces the same rates, so skipping it cannot
// change a single bit. These tests drive both modes through identical
// scripted op sequences — flow starts, cancels, repins, link-fault factor
// changes, background-rate changes — and require bitwise-equal completion
// records, link byte counters, violation metrics, and clocks, plus
// fingerprint-equal controller runs.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/control/controller.h"
#include "src/core/options.h"
#include "src/simulator/network_simulator.h"
#include "src/topology/builders.h"
#include "src/topology/path.h"
#include "src/topology/routing.h"
#include "src/workload/job.h"

namespace bds {
namespace {

class Xorshift {
 public:
  explicit Xorshift(uint64_t seed) : s_(seed * 2654435769u + 1) {}
  uint64_t Next() {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 7;
    s_ ^= s_ << 17;
    return s_;
  }
  uint64_t Next(uint64_t bound) { return Next() % bound; }

 private:
  uint64_t s_;
};

// Runs the same seeded op script against an incremental and a
// full-reallocation simulator in lockstep, comparing observable state
// bitwise after every step.
class IncrementalParityTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalParityTest, ScriptedRunMatchesFullReallocationBitwise) {
  Xorshift rng(static_cast<uint64_t>(GetParam()));
  Topology topo = BuildFullMesh(4, 2, MBps(100.0), MBps(40.0), MBps(40.0)).value();
  WanRoutingTable routing = WanRoutingTable::Build(topo, 2).value();

  NetworkSimulator inc(&topo);
  NetworkSimulator ref(&topo);
  ref.set_full_reallocation(true);
  ASSERT_FALSE(inc.full_reallocation());
  ASSERT_TRUE(ref.full_reallocation());

  auto compare_links = [&](const char* where) {
    for (LinkId l = 0; l < topo.num_links(); ++l) {
      ASSERT_EQ(inc.LinkBytesTransferred(l), ref.LinkBytesTransferred(l))
          << where << " link " << l;
      ASSERT_EQ(inc.LinkBulkRate(l), ref.LinkBulkRate(l)) << where << " link " << l;
    }
    ASSERT_EQ(inc.MaxCapacityViolation(), ref.MaxCapacityViolation()) << where;
  };

  std::vector<FlowId> started;
  SimTime t = 0.0;
  const int kOps = 120;
  for (int op = 0; op < kOps; ++op) {
    switch (rng.Next(8)) {
      case 0:
      case 1:
      case 2:
      case 3: {  // Start a flow between random servers in distinct DCs.
        DcId src_dc = static_cast<DcId>(rng.Next(4));
        DcId dst_dc = static_cast<DcId>((src_dc + 1 + rng.Next(3)) % 4);
        ServerId src = topo.ServersIn(src_dc)[rng.Next(2)];
        ServerId dst = topo.ServersIn(dst_dc)[rng.Next(2)];
        auto path = MakeServerPath(topo, routing, src, dst);
        ASSERT_TRUE(path.ok());
        Bytes bytes = MB(1.0 + static_cast<double>(rng.Next(64)));
        Rate pinned =
            rng.Next(4) == 0 ? MBps(1.0 + static_cast<double>(rng.Next(20))) : 0.0;
        auto a = inc.StartFlow(path->links, bytes, pinned);
        auto b = ref.StartFlow(path->links, bytes, pinned);
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        ASSERT_EQ(*a, *b);  // Same id stream in both modes.
        started.push_back(*a);
        break;
      }
      case 4: {  // Cancel a (possibly already finished) flow.
        if (started.empty()) {
          break;
        }
        FlowId id = started[rng.Next(started.size())];
        auto a = inc.CancelFlow(id);
        auto b = ref.CancelFlow(id);
        ASSERT_EQ(a.ok(), b.ok());
        if (a.ok()) {
          ASSERT_EQ(*a, *b);  // Delivered bytes match bitwise.
        }
        break;
      }
      case 5: {  // Repin a (possibly finished) flow.
        if (started.empty()) {
          break;
        }
        FlowId id = started[rng.Next(started.size())];
        Rate pinned =
            rng.Next(3) == 0 ? 0.0 : MBps(1.0 + static_cast<double>(rng.Next(30)));
        ASSERT_EQ(inc.RepinFlow(id, pinned).ok(), ref.RepinFlow(id, pinned).ok());
        break;
      }
      case 6: {  // Degrade / restore a random link.
        LinkId l = static_cast<LinkId>(rng.Next(static_cast<uint64_t>(topo.num_links())));
        static const double kFactors[] = {0.0, 0.25, 0.5, 1.0};
        double factor = kFactors[rng.Next(4)];
        ASSERT_TRUE(inc.SetLinkFaultFactor(l, factor).ok());
        ASSERT_TRUE(ref.SetLinkFaultFactor(l, factor).ok());
        break;
      }
      case 7: {  // Background (latency-sensitive) load on a random link.
        LinkId l = static_cast<LinkId>(rng.Next(static_cast<uint64_t>(topo.num_links())));
        Rate bg = topo.link(l).capacity * 0.1 * static_cast<double>(rng.Next(8));
        ASSERT_TRUE(inc.SetBackgroundRate(l, bg).ok());
        ASSERT_TRUE(ref.SetBackgroundRate(l, bg).ok());
        break;
      }
    }
    t += static_cast<double>(rng.Next(1000)) / 250.0;
    ASSERT_TRUE(inc.AdvanceTo(t).ok());
    ASSERT_TRUE(ref.AdvanceTo(t).ok());
    ASSERT_EQ(inc.now(), ref.now());
    ASSERT_EQ(inc.num_active_flows(), ref.num_active_flows());
    ASSERT_EQ(inc.completed_flows().size(), ref.completed_flows().size());
    if (op % 10 == 9) {
      compare_links("mid-run");
    }
  }

  // Heal everything so the drain cannot stall on a dead link, then run both
  // to completion.
  for (LinkId l = 0; l < topo.num_links(); ++l) {
    ASSERT_TRUE(inc.SetLinkFaultFactor(l, 1.0).ok());
    ASSERT_TRUE(ref.SetLinkFaultFactor(l, 1.0).ok());
    ASSERT_TRUE(inc.SetBackgroundRate(l, 0.0).ok());
    ASSERT_TRUE(ref.SetBackgroundRate(l, 0.0).ok());
  }
  auto end_inc = inc.RunUntilIdle();
  auto end_ref = ref.RunUntilIdle();
  ASSERT_TRUE(end_inc.ok());
  ASSERT_TRUE(end_ref.ok());
  ASSERT_EQ(*end_inc, *end_ref);
  compare_links("final");

  // Completion records must agree field-for-field, bit-for-bit, in order.
  const auto& ra = inc.completed_flows();
  const auto& rb = ref.completed_flows();
  ASSERT_EQ(ra.size(), rb.size());
  for (size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].id, rb[i].id);
    EXPECT_EQ(ra[i].bytes, rb[i].bytes);
    EXPECT_EQ(ra[i].start_time, rb[i].start_time);
    EXPECT_EQ(ra[i].end_time, rb[i].end_time);
    EXPECT_EQ(ra[i].tag, rb[i].tag);
    EXPECT_EQ(ra[i].tag2, rb[i].tag2);
  }

  // The incremental run must not have done more component solves than the
  // reference (it skips clean components; the reference never does).
  EXPECT_LE(inc.num_reallocations(), ref.num_reallocations());
  EXPECT_EQ(inc.num_completion_events(), ref.num_completion_events());
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalParityTest, ::testing::Range(1, 41));

TEST(IncrementalSimulatorTest, SimultaneousCompletionsBatchIntoOneEvent) {
  // Four identical flows on disjoint ring paths finish at the same bitwise
  // instant; the event loop must retire them in a single completion event
  // with a single reallocation round, not four micro-events.
  Topology topo = BuildFullMesh(4, 2, MBps(50.0), MBps(50.0), MBps(50.0)).value();
  WanRoutingTable routing = WanRoutingTable::Build(topo, 2).value();
  NetworkSimulator sim(&topo);
  for (int i = 0; i < 4; ++i) {
    ServerId src = topo.ServersIn(i)[0];
    ServerId dst = topo.ServersIn((i + 1) % 4)[1];
    auto path = MakeServerPath(topo, routing, src, dst).value();
    ASSERT_TRUE(sim.StartFlow(path.links, MB(100.0)).ok());
  }
  auto end = sim.RunUntilIdle();
  ASSERT_TRUE(end.ok());
  ASSERT_EQ(sim.completed_flows().size(), 4u);
  for (const FlowRecord& r : sim.completed_flows()) {
    EXPECT_EQ(r.end_time, sim.completed_flows()[0].end_time);
  }
  EXPECT_EQ(sim.num_completion_events(), 1);
  // One solve per disjoint component at start; completions empty the links.
  EXPECT_EQ(sim.num_reallocations(), 4);
}

TEST(IncrementalSimulatorTest, UntouchedComponentsAreNotResolved) {
  // Two disjoint components; when the short flow finishes, the long flow's
  // component is untouched and must not be re-solved.
  Topology topo = BuildFullMesh(4, 2, MBps(50.0), MBps(50.0), MBps(50.0)).value();
  WanRoutingTable routing = WanRoutingTable::Build(topo, 2).value();
  NetworkSimulator sim(&topo);
  auto short_path =
      MakeServerPath(topo, routing, topo.ServersIn(0)[0], topo.ServersIn(1)[0]).value();
  auto long_path =
      MakeServerPath(topo, routing, topo.ServersIn(2)[0], topo.ServersIn(3)[0]).value();
  ASSERT_TRUE(sim.StartFlow(short_path.links, MB(50.0)).ok());   // 1 s.
  ASSERT_TRUE(sim.StartFlow(long_path.links, MB(500.0)).ok());   // 10 s.
  auto end = sim.RunUntilIdle();
  ASSERT_TRUE(end.ok());
  EXPECT_NEAR(*end, 10.0, 1e-6);
  EXPECT_EQ(sim.num_completion_events(), 2);
  // Two solves at t=0; the short completion dirties only drained links, so
  // no further component is ever re-solved.
  EXPECT_EQ(sim.num_reallocations(), 2);
}

TEST(IncrementalParityTest2, ControllerFingerprintMatchesFullReallocation) {
  // End-to-end: a full controller run (cycles, LP, cancel-and-credit churn)
  // over the incremental simulator produces the exact fingerprint of the
  // full-reallocation reference.
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    uint64_t fp[2] = {0, 1};
    for (int mode = 0; mode < 2; ++mode) {
      Topology topo = BuildFullMesh(3, 2, Gbps(1.0), MBps(20.0), MBps(20.0)).value();
      WanRoutingTable routing = WanRoutingTable::Build(topo, 3).value();
      BdsOptions base;
      base.cycle_length = 1.0;
      ControllerOptions options = ToControllerOptions(base);
      options.seed = seed;
      options.validate_invariants = true;
      options.restall_cycles = 3.0;  // Force some cancel-and-credit churn.
      BdsController controller(&topo, &routing, options);
      controller.mutable_simulator()->set_full_reallocation(mode == 1);
      ASSERT_TRUE(controller
                      .SubmitJob(MakeJob(0, 0, {1, 2},
                                         MB(40.0 + 8.0 * static_cast<double>(seed)),
                                         MB(4.0))
                                     .value())
                      .ok());
      ASSERT_TRUE(
          controller.SubmitJob(MakeJob(1, 1, {0, 2}, MB(24.0), MB(4.0), 5.0).value())
              .ok());
      auto report = controller.Run(Hours(1.0));
      ASSERT_TRUE(report.ok());
      ASSERT_TRUE(report->completed);
      ASSERT_TRUE(report->max_link_overshoot.has_value());
      EXPECT_LE(*report->max_link_overshoot, 1e-4);
      fp[mode] = report->Fingerprint();
    }
    EXPECT_EQ(fp[0], fp[1]) << "seed " << seed;
  }
}

}  // namespace
}  // namespace bds
