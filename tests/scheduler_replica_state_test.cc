#include "src/scheduler/replica_state.h"

#include <gtest/gtest.h>

#include <set>

#include "src/topology/builders.h"

namespace bds {
namespace {

// 3 DCs x 2 servers; DC0 = source.
struct Fixture {
  Topology topo;
  MulticastJob job;

  Fixture(int64_t blocks = 4, int servers_per_dc = 2) {
    topo = BuildFullMesh(3, servers_per_dc, GBps(1.0), MBps(10.0), MBps(10.0)).value();
    job = MakeJob(/*id=*/7, /*source_dc=*/0, /*dest_dcs=*/{1, 2},
                  /*total_bytes=*/MB(2.0) * static_cast<double>(blocks),
                  /*block_size=*/MB(2.0))
              .value();
  }
};

TEST(ReplicaStateTest, AddJobSeedsSourceShards) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  // Each block starts on exactly the placement rule's source server.
  for (int64_t b = 0; b < f.job.num_blocks(); ++b) {
    ServerId holder =
        f.topo.ServersIn(0)[ShardIndex(7, b, 0, f.topo.ServersIn(0).size())];
    EXPECT_TRUE(state.ServerHasBlock(7, b, holder));
    EXPECT_EQ(state.DuplicateCount(7, b), 1);
    for (ServerId s : f.topo.ServersIn(0)) {
      if (s != holder) {
        EXPECT_FALSE(state.ServerHasBlock(7, b, s));
      }
    }
  }
  EXPECT_TRUE(state.DcHasBlock(7, 0, 0));
  EXPECT_FALSE(state.DcHasBlock(7, 0, 1));
  // 4 blocks x 2 destination DCs owed.
  EXPECT_EQ(state.num_pending(), 8);
  EXPECT_FALSE(state.JobComplete(7));
}

TEST(ReplicaStateTest, AddJobRejectsBadInput) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  EXPECT_FALSE(state.AddJob(f.job).ok());  // Duplicate id.

  MulticastJob bad = f.job;
  bad.id = 8;
  bad.dest_dcs = {0};  // Destination == source.
  EXPECT_FALSE(state.AddJob(bad).ok());

  bad.dest_dcs = {1, 1};  // Duplicate destination.
  EXPECT_FALSE(state.AddJob(bad).ok());

  bad.dest_dcs = {99};
  EXPECT_FALSE(state.AddJob(bad).ok());
}

TEST(ReplicaStateTest, DeliveryClearsOwedOnlyAtAssignedServer) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  ServerId assigned = state.AssignedServer(7, 0, 1);
  ServerId other = f.topo.ServersIn(1)[1] == assigned ? f.topo.ServersIn(1)[0]
                                                      : f.topo.ServersIn(1)[1];
  // Landing at the wrong server marks presence but the shard is still owed.
  ASSERT_TRUE(state.AddReplica(7, 0, other).ok());
  EXPECT_TRUE(state.DcHasBlock(7, 0, 1));
  EXPECT_EQ(state.num_pending(), 8);
  // Landing at the assigned server clears it.
  ASSERT_TRUE(state.AddReplica(7, 0, assigned).ok());
  EXPECT_EQ(state.num_pending(), 7);
}

TEST(ReplicaStateTest, AddReplicaIsIdempotent) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  ServerId assigned = state.AssignedServer(7, 0, 1);
  ASSERT_TRUE(state.AddReplica(7, 0, assigned).ok());
  ASSERT_TRUE(state.AddReplica(7, 0, assigned).ok());
  EXPECT_EQ(state.num_pending(), 7);
  EXPECT_EQ(state.DuplicateCount(7, 0), 2);  // Source + destination.
}

TEST(ReplicaStateTest, CompleteJobWhenAllShardsLand) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  for (int64_t b = 0; b < f.job.num_blocks(); ++b) {
    for (DcId d : f.job.dest_dcs) {
      ASSERT_TRUE(state.AddReplica(7, b, state.AssignedServer(7, b, d)).ok());
    }
  }
  EXPECT_TRUE(state.JobComplete(7));
  EXPECT_TRUE(state.AllComplete());
  EXPECT_TRUE(state.PendingDeliveries().empty());
}

TEST(ReplicaStateTest, PendingDeliveriesCarryDuplicateCounts) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  ASSERT_TRUE(state.AddReplica(7, 0, state.AssignedServer(7, 0, 1)).ok());
  auto pending = state.PendingDeliveries();
  ASSERT_EQ(pending.size(), 7u);
  for (const PendingDelivery& p : pending) {
    if (p.block == 0) {
      EXPECT_EQ(p.duplicates, 2);  // Origin + DC1 replica.
      EXPECT_EQ(p.dc, 2);
    } else {
      EXPECT_EQ(p.duplicates, 1);
    }
    EXPECT_EQ(p.dest_server, state.AssignedServer(p.job, p.block, p.dc));
  }
}

TEST(ReplicaStateTest, OwedByServerTracksShards) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  // Per destination DC, the servers' owed counts sum to the block count and
  // match the placement rule exactly.
  for (DcId d : f.job.dest_dcs) {
    int64_t total = 0;
    for (ServerId s : f.topo.ServersIn(d)) {
      total += state.OwedByServer(s);
    }
    EXPECT_EQ(total, f.job.num_blocks());
  }
  ServerId assigned = state.AssignedServer(7, 0, 1);
  int64_t before = state.OwedByServer(assigned);
  ASSERT_TRUE(state.AddReplica(7, 0, assigned).ok());
  EXPECT_EQ(state.OwedByServer(assigned), before - 1);
}

TEST(ReplicaStateTest, RemoveServerRevertsItsDeliveries) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  ServerId assigned = state.AssignedServer(7, 0, 1);
  ASSERT_TRUE(state.AddReplica(7, 0, assigned).ok());
  EXPECT_EQ(state.num_pending(), 7);
  state.RemoveServer(assigned);
  // The delivered shard is owed again, and the server no longer holds it.
  EXPECT_EQ(state.num_pending(), 8);
  EXPECT_FALSE(state.ServerHasBlock(7, 0, assigned));
  EXPECT_FALSE(state.DcHasBlock(7, 0, 1));
}

TEST(ReplicaStateTest, RemoveSourceServerDropsHolder) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  ServerId src0 = f.topo.ServersIn(0)[0];
  state.RemoveServer(src0);
  EXPECT_EQ(state.DuplicateCount(7, 0), 0);  // Block 0 lost its only holder.
  EXPECT_EQ(state.DuplicateCount(7, 1), 1);  // Block 1 lives on the other server.
}

TEST(ReplicaStateTest, NoteDeliveryRecordsOriginStats) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  ServerId origin = f.topo.ServersIn(0)[0];
  ServerId d1 = state.AssignedServer(7, 0, 1);
  ServerId d2 = state.AssignedServer(7, 0, 2);
  ASSERT_TRUE(state.NoteDelivery(7, 0, origin, d1).ok());
  ASSERT_TRUE(state.NoteDelivery(7, 0, d1, d2).ok());  // Overlay relay.
  const auto& stats = state.origin_stats();
  EXPECT_EQ(stats.at(d1).from_origin, 1);
  EXPECT_EQ(stats.at(d1).total, 1);
  EXPECT_EQ(stats.at(d2).from_origin, 0);
  EXPECT_EQ(stats.at(d2).total, 1);
}

TEST(ReplicaStateTest, AllDestinationServersCoversDestDcs) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  auto servers = state.AllDestinationServers();
  EXPECT_EQ(servers.size(), 4u);  // 2 DCs x 2 servers.
}

TEST(ReplicaStateTest, RejectsTopologyBeyond64Dcs) {
  Topology topo;
  for (int i = 0; i < 65; ++i) {
    DcId d = topo.AddDatacenter("dc" + std::to_string(i));
    ASSERT_TRUE(topo.AddServer(d, 1.0, 1.0).ok());
  }
  ReplicaState state(&topo);
  auto job = MakeJob(1, 0, {1}, MB(2.0)).value();
  EXPECT_FALSE(state.AddJob(job).ok());
}

TEST(ReplicaStateTest, QueriesOnUnknownJobAreSafe) {
  Fixture f;
  ReplicaState state(&f.topo);
  EXPECT_FALSE(state.ServerHasBlock(99, 0, 0));
  EXPECT_EQ(state.DuplicateCount(99, 0), 0);
  EXPECT_TRUE(state.Holders(99, 0).empty());
  EXPECT_EQ(state.FindJob(99), nullptr);
  EXPECT_FALSE(state.AddReplica(99, 0, 0).ok());
  EXPECT_FALSE(state.JobComplete(99));
}

TEST(ReplicaStateTest, NumHolderServersTracksDistinctHolders) {
  Fixture f;
  ReplicaState state(&f.topo);
  EXPECT_EQ(state.NumHolderServers(), 0);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  // 4 blocks shard across the 2 source servers; count distinct ones.
  std::set<ServerId> sources;
  for (int64_t b = 0; b < f.job.num_blocks(); ++b) {
    sources.insert(
        f.topo.ServersIn(0)[ShardIndex(7, b, 0, f.topo.ServersIn(0).size())]);
  }
  EXPECT_EQ(state.NumHolderServers(), static_cast<int64_t>(sources.size()));

  // A replica landing on a new server grows the universe; a second block on
  // the same server does not.
  ServerId d1 = state.AssignedServer(7, 0, 1);
  ASSERT_TRUE(state.AddReplica(7, 0, d1).ok());
  int64_t after_first = state.NumHolderServers();
  EXPECT_EQ(after_first, static_cast<int64_t>(sources.size()) + (sources.count(d1) ? 0 : 1));
  ASSERT_TRUE(state.AddReplica(7, 1, d1).ok());
  EXPECT_EQ(state.NumHolderServers(), after_first);
}

TEST(ReplicaStateTest, NumHolderServersDropsOnServerFailure) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  ServerId d1 = state.AssignedServer(7, 0, 1);
  ASSERT_TRUE(state.AddReplica(7, 0, d1).ok());
  int64_t before = state.NumHolderServers();
  state.RemoveServer(d1);
  EXPECT_EQ(state.NumHolderServers(), before - 1);
  // Restoring brings the server back empty: still not a holder.
  state.RestoreServer(d1);
  EXPECT_EQ(state.NumHolderServers(), before - 1);
}

TEST(ReplicaStateTest, ForEachOwedMatchesPendingDeliveries) {
  Fixture f(/*blocks=*/6);
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  MulticastJob job2 = MakeJob(8, 1, {0, 2}, MB(2.0) * 3.0, MB(2.0)).value();
  ASSERT_TRUE(state.AddJob(job2).ok());
  // Clear a few deliveries so the streams must skip them identically.
  ASSERT_TRUE(state.AddReplica(7, 0, state.AssignedServer(7, 0, 1)).ok());
  ASSERT_TRUE(state.AddReplica(7, 3, state.AssignedServer(7, 3, 2)).ok());
  ASSERT_TRUE(state.AddReplica(8, 1, state.AssignedServer(8, 1, 0)).ok());

  std::vector<PendingDelivery> streamed;
  uint64_t last_coord = 0;
  bool first = true;
  state.ForEachOwed([&](size_t jp, const MulticastJob& job, int64_t b, size_t dp, DcId d,
                        int dups) {
    PendingDelivery p;
    p.job = job.id;
    p.block = b;
    p.dc = d;
    p.dest_server = state.AssignedServer(job.id, b, d);
    p.duplicates = dups;
    streamed.push_back(p);
    // Coordinates must be lexicographically increasing — the scheduler's
    // packed candidate keys rely on it.
    uint64_t coord = (static_cast<uint64_t>(jp) << 48) |
                     (static_cast<uint64_t>(b) << 6) | static_cast<uint64_t>(dp);
    EXPECT_TRUE(first || coord > last_coord);
    first = false;
    last_coord = coord;
    EXPECT_EQ(job.dest_dcs[dp], d);
  });

  auto pending = state.PendingDeliveries();
  ASSERT_EQ(streamed.size(), pending.size());
  ASSERT_EQ(streamed.size(), static_cast<size_t>(state.num_pending()));
  for (size_t i = 0; i < pending.size(); ++i) {
    EXPECT_EQ(streamed[i].job, pending[i].job) << i;
    EXPECT_EQ(streamed[i].block, pending[i].block) << i;
    EXPECT_EQ(streamed[i].dc, pending[i].dc) << i;
    EXPECT_EQ(streamed[i].dest_server, pending[i].dest_server) << i;
    EXPECT_EQ(streamed[i].duplicates, pending[i].duplicates) << i;
  }
}

TEST(ReplicaStateTest, LastPartialBlockSized) {
  Fixture f;
  ReplicaState state(&f.topo);
  MulticastJob job = MakeJob(9, 0, {1}, MB(5.0), MB(2.0)).value();
  ASSERT_TRUE(state.AddJob(job).ok());
  EXPECT_EQ(job.num_blocks(), 3);
  EXPECT_DOUBLE_EQ(job.BlockSizeOf(0), MB(2.0));
  EXPECT_DOUBLE_EQ(job.BlockSizeOf(2), MB(1.0));
}

}  // namespace
}  // namespace bds
