#include "src/scheduler/replica_state.h"

#include <gtest/gtest.h>

#include "src/topology/builders.h"

namespace bds {
namespace {

// 3 DCs x 2 servers; DC0 = source.
struct Fixture {
  Topology topo;
  MulticastJob job;

  Fixture(int64_t blocks = 4, int servers_per_dc = 2) {
    topo = BuildFullMesh(3, servers_per_dc, GBps(1.0), MBps(10.0), MBps(10.0)).value();
    job = MakeJob(/*id=*/7, /*source_dc=*/0, /*dest_dcs=*/{1, 2},
                  /*total_bytes=*/MB(2.0) * static_cast<double>(blocks),
                  /*block_size=*/MB(2.0))
              .value();
  }
};

TEST(ReplicaStateTest, AddJobSeedsSourceShards) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  // Each block starts on exactly the placement rule's source server.
  for (int64_t b = 0; b < f.job.num_blocks(); ++b) {
    ServerId holder =
        f.topo.ServersIn(0)[ShardIndex(7, b, 0, f.topo.ServersIn(0).size())];
    EXPECT_TRUE(state.ServerHasBlock(7, b, holder));
    EXPECT_EQ(state.DuplicateCount(7, b), 1);
    for (ServerId s : f.topo.ServersIn(0)) {
      if (s != holder) {
        EXPECT_FALSE(state.ServerHasBlock(7, b, s));
      }
    }
  }
  EXPECT_TRUE(state.DcHasBlock(7, 0, 0));
  EXPECT_FALSE(state.DcHasBlock(7, 0, 1));
  // 4 blocks x 2 destination DCs owed.
  EXPECT_EQ(state.num_pending(), 8);
  EXPECT_FALSE(state.JobComplete(7));
}

TEST(ReplicaStateTest, AddJobRejectsBadInput) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  EXPECT_FALSE(state.AddJob(f.job).ok());  // Duplicate id.

  MulticastJob bad = f.job;
  bad.id = 8;
  bad.dest_dcs = {0};  // Destination == source.
  EXPECT_FALSE(state.AddJob(bad).ok());

  bad.dest_dcs = {1, 1};  // Duplicate destination.
  EXPECT_FALSE(state.AddJob(bad).ok());

  bad.dest_dcs = {99};
  EXPECT_FALSE(state.AddJob(bad).ok());
}

TEST(ReplicaStateTest, DeliveryClearsOwedOnlyAtAssignedServer) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  ServerId assigned = state.AssignedServer(7, 0, 1);
  ServerId other = f.topo.ServersIn(1)[1] == assigned ? f.topo.ServersIn(1)[0]
                                                      : f.topo.ServersIn(1)[1];
  // Landing at the wrong server marks presence but the shard is still owed.
  ASSERT_TRUE(state.AddReplica(7, 0, other).ok());
  EXPECT_TRUE(state.DcHasBlock(7, 0, 1));
  EXPECT_EQ(state.num_pending(), 8);
  // Landing at the assigned server clears it.
  ASSERT_TRUE(state.AddReplica(7, 0, assigned).ok());
  EXPECT_EQ(state.num_pending(), 7);
}

TEST(ReplicaStateTest, AddReplicaIsIdempotent) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  ServerId assigned = state.AssignedServer(7, 0, 1);
  ASSERT_TRUE(state.AddReplica(7, 0, assigned).ok());
  ASSERT_TRUE(state.AddReplica(7, 0, assigned).ok());
  EXPECT_EQ(state.num_pending(), 7);
  EXPECT_EQ(state.DuplicateCount(7, 0), 2);  // Source + destination.
}

TEST(ReplicaStateTest, CompleteJobWhenAllShardsLand) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  for (int64_t b = 0; b < f.job.num_blocks(); ++b) {
    for (DcId d : f.job.dest_dcs) {
      ASSERT_TRUE(state.AddReplica(7, b, state.AssignedServer(7, b, d)).ok());
    }
  }
  EXPECT_TRUE(state.JobComplete(7));
  EXPECT_TRUE(state.AllComplete());
  EXPECT_TRUE(state.PendingDeliveries().empty());
}

TEST(ReplicaStateTest, PendingDeliveriesCarryDuplicateCounts) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  ASSERT_TRUE(state.AddReplica(7, 0, state.AssignedServer(7, 0, 1)).ok());
  auto pending = state.PendingDeliveries();
  ASSERT_EQ(pending.size(), 7u);
  for (const PendingDelivery& p : pending) {
    if (p.block == 0) {
      EXPECT_EQ(p.duplicates, 2);  // Origin + DC1 replica.
      EXPECT_EQ(p.dc, 2);
    } else {
      EXPECT_EQ(p.duplicates, 1);
    }
    EXPECT_EQ(p.dest_server, state.AssignedServer(p.job, p.block, p.dc));
  }
}

TEST(ReplicaStateTest, OwedByServerTracksShards) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  // Per destination DC, the servers' owed counts sum to the block count and
  // match the placement rule exactly.
  for (DcId d : f.job.dest_dcs) {
    int64_t total = 0;
    for (ServerId s : f.topo.ServersIn(d)) {
      total += state.OwedByServer(s);
    }
    EXPECT_EQ(total, f.job.num_blocks());
  }
  ServerId assigned = state.AssignedServer(7, 0, 1);
  int64_t before = state.OwedByServer(assigned);
  ASSERT_TRUE(state.AddReplica(7, 0, assigned).ok());
  EXPECT_EQ(state.OwedByServer(assigned), before - 1);
}

TEST(ReplicaStateTest, RemoveServerRevertsItsDeliveries) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  ServerId assigned = state.AssignedServer(7, 0, 1);
  ASSERT_TRUE(state.AddReplica(7, 0, assigned).ok());
  EXPECT_EQ(state.num_pending(), 7);
  state.RemoveServer(assigned);
  // The delivered shard is owed again, and the server no longer holds it.
  EXPECT_EQ(state.num_pending(), 8);
  EXPECT_FALSE(state.ServerHasBlock(7, 0, assigned));
  EXPECT_FALSE(state.DcHasBlock(7, 0, 1));
}

TEST(ReplicaStateTest, RemoveSourceServerDropsHolder) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  ServerId src0 = f.topo.ServersIn(0)[0];
  state.RemoveServer(src0);
  EXPECT_EQ(state.DuplicateCount(7, 0), 0);  // Block 0 lost its only holder.
  EXPECT_EQ(state.DuplicateCount(7, 1), 1);  // Block 1 lives on the other server.
}

TEST(ReplicaStateTest, NoteDeliveryRecordsOriginStats) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  ServerId origin = f.topo.ServersIn(0)[0];
  ServerId d1 = state.AssignedServer(7, 0, 1);
  ServerId d2 = state.AssignedServer(7, 0, 2);
  ASSERT_TRUE(state.NoteDelivery(7, 0, origin, d1).ok());
  ASSERT_TRUE(state.NoteDelivery(7, 0, d1, d2).ok());  // Overlay relay.
  const auto& stats = state.origin_stats();
  EXPECT_EQ(stats.at(d1).from_origin, 1);
  EXPECT_EQ(stats.at(d1).total, 1);
  EXPECT_EQ(stats.at(d2).from_origin, 0);
  EXPECT_EQ(stats.at(d2).total, 1);
}

TEST(ReplicaStateTest, AllDestinationServersCoversDestDcs) {
  Fixture f;
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.job).ok());
  auto servers = state.AllDestinationServers();
  EXPECT_EQ(servers.size(), 4u);  // 2 DCs x 2 servers.
}

TEST(ReplicaStateTest, RejectsTopologyBeyond64Dcs) {
  Topology topo;
  for (int i = 0; i < 65; ++i) {
    DcId d = topo.AddDatacenter("dc" + std::to_string(i));
    ASSERT_TRUE(topo.AddServer(d, 1.0, 1.0).ok());
  }
  ReplicaState state(&topo);
  auto job = MakeJob(1, 0, {1}, MB(2.0)).value();
  EXPECT_FALSE(state.AddJob(job).ok());
}

TEST(ReplicaStateTest, QueriesOnUnknownJobAreSafe) {
  Fixture f;
  ReplicaState state(&f.topo);
  EXPECT_FALSE(state.ServerHasBlock(99, 0, 0));
  EXPECT_EQ(state.DuplicateCount(99, 0), 0);
  EXPECT_TRUE(state.Holders(99, 0).empty());
  EXPECT_EQ(state.FindJob(99), nullptr);
  EXPECT_FALSE(state.AddReplica(99, 0, 0).ok());
  EXPECT_FALSE(state.JobComplete(99));
}

TEST(ReplicaStateTest, LastPartialBlockSized) {
  Fixture f;
  ReplicaState state(&f.topo);
  MulticastJob job = MakeJob(9, 0, {1}, MB(5.0), MB(2.0)).value();
  ASSERT_TRUE(state.AddJob(job).ok());
  EXPECT_EQ(job.num_blocks(), 3);
  EXPECT_DOUBLE_EQ(job.BlockSizeOf(0), MB(2.0));
  EXPECT_DOUBLE_EQ(job.BlockSizeOf(2), MB(1.0));
}

}  // namespace
}  // namespace bds
