// Cross-cycle churn suite for the incremental controller (DESIGN.md §9.7).
//
// Two properties over multi-cycle runs with job arrivals, retirements,
// deliveries, and server faults between cycles:
//
//  1. Churn parity (bitwise): the incremental candidate build — persisted
//     per-(job, chunk) summaries patched forward through the dirty set —
//     must produce decisions bit-identical to the from-scratch legacy build
//     at every cycle, for any shard/thread count. debug_verify_incremental
//     additionally makes the algorithm rebuild from scratch internally and
//     BDS_CHECK the arrays match element-wise.
//
//  2. Warm-start relaxed parity (behavioral): with warm_start and
//     split_contended on, decisions are no longer bitwise-equal to the cold
//     run, but the run must stay deterministic (same sequence twice ->
//     identical fingerprints), actually engage the warm path, and still
//     drive every job to completion.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/scheduler/controller_algorithm.h"
#include "src/scheduler/replica_state.h"
#include "src/topology/builders.h"
#include "src/workload/job.h"

namespace bds {
namespace {

struct Scenario {
  Topology topo;
  WanRoutingTable routing;
  std::vector<Rate> residual;

  explicit Scenario(Topology t)
      : topo(std::move(t)), routing(WanRoutingTable::Build(topo, 3).value()) {
    for (const Link& l : topo.links()) {
      residual.push_back(l.capacity);
    }
  }
};

Scenario MakeScenario(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  const int dcs = static_cast<int>(rng.UniformInt(3, 5));
  const int servers = static_cast<int>(rng.UniformInt(2, 3));
  return Scenario(BuildFullMesh(dcs, servers, Gbps(rng.Uniform(0.5, 2.0)),
                                MBps(rng.Uniform(15.0, 40.0)),
                                MBps(rng.Uniform(15.0, 40.0)))
                      .value());
}

MulticastJob RandomJob(Rng& rng, const Topology& topo, JobId id) {
  const int dcs = topo.num_dcs();
  const DcId src = static_cast<DcId>(rng.UniformInt(0, dcs - 1));
  std::vector<DcId> dests;
  for (DcId d = 0; d < dcs; ++d) {
    if (d != src && (dests.empty() || rng.Bernoulli(0.6))) {
      dests.push_back(d);
    }
  }
  const int64_t blocks = rng.UniformInt(16, 200);
  return MakeJob(id, src, dests, MB(2.0) * static_cast<double>(blocks), MB(2.0)).value();
}

// One churn step, identical for every run of a seed: apply the decided
// transfers as deliveries, sometimes force-complete + retire the oldest live
// job, sometimes admit a new one, rarely fail a server. Every rng draw
// happens in fixed statement order so churn is a pure function of
// (seed, cycle, decision) — and parity makes the decision itself a pure
// function of the seed.
void ApplyChurn(Rng& rng, const Scenario& sc, ReplicaState& state,
                const CycleDecision& decision, JobId* next_job) {
  for (const TransferAssignment& t : decision.transfers) {
    for (int64_t b : t.blocks) {
      BDS_CHECK(state.NoteDelivery(t.job, b, t.src_server, t.dst_server).ok());
    }
  }
  if (rng.Bernoulli(0.35) && state.num_live_jobs() > 1) {
    const JobId oldest = state.job_ids().front();
    const MulticastJob& job = *state.FindJob(oldest);
    for (DcId dc : job.dest_dcs) {
      for (int64_t b = 0; b < job.num_blocks(); ++b) {
        const ServerId dst = state.AssignedServer(oldest, b, dc);
        if (!state.ServerFailed(dst)) {
          BDS_CHECK(state.AddReplica(oldest, b, dst).ok());
        }
      }
    }
    // A failed assigned server can leave the job permanently owing, in
    // which case RetireJob correctly refuses; the job just stays live.
    (void)state.RetireJob(oldest);
  }
  if (rng.Bernoulli(0.6)) {
    BDS_CHECK(state.AddJob(RandomJob(rng, sc.topo, (*next_job)++)).ok());
  }
  if (rng.Bernoulli(0.1)) {
    state.RemoveServer(static_cast<ServerId>(
        rng.UniformInt(0, sc.topo.num_servers() - 1)));
  }
}

// Runs `cycles` decide+churn steps and folds every decision fingerprint into
// one digest; the first divergent cycle poisons all later ones.
uint64_t RunChurnFingerprint(uint64_t seed, const ControllerAlgorithmOptions& opt,
                             int cycles, int64_t* scheduled_total = nullptr,
                             int* warm_cycles = nullptr) {
  Scenario sc = MakeScenario(seed);
  ReplicaState state(&sc.topo);
  Rng churn_rng(seed ^ 0x5DEECE66DULL);
  JobId next_job = 1;
  for (int j = 0; j < 3; ++j) {
    BDS_CHECK(state.AddJob(RandomJob(churn_rng, sc.topo, next_job++)).ok());
  }
  ControllerAlgorithm algo(&sc.topo, &sc.routing, opt);
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 31;
  };
  for (int c = 0; c < cycles; ++c) {
    CycleDecision d = algo.Decide(c, state, sc.residual, {});
    mix(d.Fingerprint());
    if (scheduled_total != nullptr) {
      *scheduled_total += d.scheduled_blocks;
    }
    if (warm_cycles != nullptr && d.warm_solve) {
      ++*warm_cycles;
    }
    ApplyChurn(churn_rng, sc, state, d, &next_job);
  }
  return h;
}

ControllerAlgorithmOptions Options(bool incremental, int shards, int threads) {
  ControllerAlgorithmOptions opt;
  opt.incremental_candidates = incremental;
  opt.num_shards = shards;
  opt.num_threads = threads;
  return opt;
}

// Churn parity: the incremental build equals the legacy from-scratch build
// bit for bit at every cycle of an arrival/retire/delivery/fault sequence,
// across shard and thread counts. debug_verify_incremental turns on the
// internal element-wise rebuild check as well.
TEST(WarmChurnTest, IncrementalMatchesLegacyAcrossChurn) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const uint64_t legacy = RunChurnFingerprint(seed, Options(false, 1, 1), 8);
    ControllerAlgorithmOptions verify = Options(true, 1, 1);
    verify.debug_verify_incremental = true;
    EXPECT_EQ(RunChurnFingerprint(seed, verify, 8), legacy) << "seed " << seed;
    for (int shards : {1, 4}) {
      for (int threads : {1, 4}) {
        EXPECT_EQ(RunChurnFingerprint(seed, Options(true, shards, threads), 8), legacy)
            << "seed " << seed << " shards " << shards << " threads " << threads;
      }
    }
  }
}

// Relaxed parity end to end: warm_start + split_contended stays
// deterministic under churn (identical digests on a repeat run, for any
// thread count) and the warm path actually engages after the first cycle.
TEST(WarmChurnTest, WarmStartDeterministicUnderChurn) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    ControllerAlgorithmOptions warm = Options(true, 4, 1);
    warm.warm_start = true;
    warm.split_contended = true;
    int warm_cycles = 0;
    const uint64_t first = RunChurnFingerprint(seed, warm, 8, nullptr, &warm_cycles);
    EXPECT_GT(warm_cycles, 0) << "seed " << seed;
    for (int threads : {1, 4}) {
      ControllerAlgorithmOptions again = warm;
      again.num_threads = threads;
      EXPECT_EQ(RunChurnFingerprint(seed, again, 8), first)
          << "seed " << seed << " threads " << threads;
    }
  }
}

// The relaxed contract still schedules real work: the warm run's total
// scheduled blocks stays in the cold run's ballpark over the same churn
// sequence. (Selection is warm-start-agnostic; only routing flows move, so
// a collapse here would mean the warm seed corrupted the solve.)
TEST(WarmChurnTest, WarmStartSchedulesComparableVolume) {
  for (uint64_t seed = 20; seed <= 25; ++seed) {
    int64_t cold_blocks = 0, warm_blocks = 0;
    RunChurnFingerprint(seed, Options(true, 4, 1), 8, &cold_blocks);
    ControllerAlgorithmOptions warm = Options(true, 4, 1);
    warm.warm_start = true;
    warm.split_contended = true;
    RunChurnFingerprint(seed, warm, 8, &warm_blocks);
    EXPECT_GE(warm_blocks, cold_blocks / 2) << "seed " << seed;
    EXPECT_LE(warm_blocks, cold_blocks * 2) << "seed " << seed;
  }
}

}  // namespace
}  // namespace bds
