#include "src/common/status.h"

#include <gtest/gtest.h>

#include <string>

namespace bds {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = InvalidArgumentError("bad capacity");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad capacity");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad capacity");
}

TEST(StatusTest, AllErrorFactoriesProduceDistinctCodes) {
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(InfeasibleError("x").code(), StatusCode::kInfeasible);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status());
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusCodeNameTest, CoversEveryCode) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument), "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition), "FAILED_PRECONDITION");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OUT_OF_RANGE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "UNAVAILABLE");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInfeasible), "INFEASIBLE");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFoundError("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 7);
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

TEST(StatusOrTest, MutableAccess) {
  StatusOr<std::string> v = std::string("a");
  v.value() += "b";
  EXPECT_EQ(*v, "ab");
}

}  // namespace
}  // namespace bds
