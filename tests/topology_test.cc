#include "src/topology/topology.h"

#include <gtest/gtest.h>

#include "src/common/types.h"

namespace bds {
namespace {

TEST(TopologyTest, EmptyTopology) {
  Topology t;
  EXPECT_EQ(t.num_dcs(), 0);
  EXPECT_EQ(t.num_servers(), 0);
  EXPECT_EQ(t.num_links(), 0);
}

TEST(TopologyTest, AddDatacenterAssignsSequentialIds) {
  Topology t;
  EXPECT_EQ(t.AddDatacenter("a"), 0);
  EXPECT_EQ(t.AddDatacenter("b"), 1);
  EXPECT_EQ(t.dc(0).name, "a");
  EXPECT_EQ(t.dc(1).name, "b");
}

TEST(TopologyTest, AddServerCreatesNicLinks) {
  Topology t;
  DcId dc = t.AddDatacenter("a");
  auto s = t.AddServer(dc, MBps(10.0), MBps(20.0));
  ASSERT_TRUE(s.ok());
  const Server& srv = t.server(*s);
  EXPECT_EQ(srv.dc, dc);
  EXPECT_DOUBLE_EQ(srv.up_capacity, MBps(10.0));
  EXPECT_DOUBLE_EQ(srv.down_capacity, MBps(20.0));

  const Link& up = t.link(srv.uplink);
  EXPECT_EQ(up.type, LinkType::kServerUp);
  EXPECT_DOUBLE_EQ(up.capacity, MBps(10.0));
  EXPECT_EQ(up.server, *s);

  const Link& down = t.link(srv.downlink);
  EXPECT_EQ(down.type, LinkType::kServerDown);
  EXPECT_DOUBLE_EQ(down.capacity, MBps(20.0));

  EXPECT_EQ(t.ServersIn(dc).size(), 1u);
  EXPECT_EQ(t.ServersIn(dc)[0], *s);
}

TEST(TopologyTest, AddServerRejectsBadInput) {
  Topology t;
  DcId dc = t.AddDatacenter("a");
  EXPECT_FALSE(t.AddServer(dc, 0.0, 1.0).ok());
  EXPECT_FALSE(t.AddServer(dc, 1.0, -1.0).ok());
  EXPECT_FALSE(t.AddServer(99, 1.0, 1.0).ok());
}

TEST(TopologyTest, AddWanLink) {
  Topology t;
  DcId a = t.AddDatacenter("a");
  DcId b = t.AddDatacenter("b");
  auto l = t.AddWanLink(a, b, Gbps(10.0));
  ASSERT_TRUE(l.ok());
  const Link& link = t.link(*l);
  EXPECT_EQ(link.type, LinkType::kWan);
  EXPECT_EQ(link.src_dc, a);
  EXPECT_EQ(link.dst_dc, b);
  ASSERT_EQ(t.WanLinksFrom(a).size(), 1u);
  EXPECT_EQ(t.WanLinksFrom(a)[0], *l);
  EXPECT_TRUE(t.WanLinksFrom(b).empty());
}

TEST(TopologyTest, AddWanLinkRejectsBadInput) {
  Topology t;
  DcId a = t.AddDatacenter("a");
  DcId b = t.AddDatacenter("b");
  EXPECT_FALSE(t.AddWanLink(a, a, 1.0).ok());
  EXPECT_FALSE(t.AddWanLink(a, b, 0.0).ok());
  EXPECT_FALSE(t.AddWanLink(a, 77, 1.0).ok());
}

TEST(TopologyTest, ParallelWanLinksAllowed) {
  Topology t;
  DcId a = t.AddDatacenter("a");
  DcId b = t.AddDatacenter("b");
  ASSERT_TRUE(t.AddWanLink(a, b, 1.0).ok());
  ASSERT_TRUE(t.AddWanLink(a, b, 2.0).ok());
  EXPECT_EQ(t.WanLinksFrom(a).size(), 2u);
}

TEST(TopologyTest, SetLinkCapacity) {
  Topology t;
  DcId a = t.AddDatacenter("a");
  DcId b = t.AddDatacenter("b");
  LinkId l = t.AddWanLink(a, b, 5.0).value();
  ASSERT_TRUE(t.SetLinkCapacity(l, 9.0).ok());
  EXPECT_DOUBLE_EQ(t.link(l).capacity, 9.0);
  EXPECT_FALSE(t.SetLinkCapacity(l, 0.0).ok());
  EXPECT_FALSE(t.SetLinkCapacity(999, 1.0).ok());
}

TEST(TopologyTest, DcLatencySymmetricAndGrows) {
  Topology t;
  DcId a = t.AddDatacenter("a");
  DcId b = t.AddDatacenter("b");
  t.SetDcLatency(a, b, 0.03);
  EXPECT_DOUBLE_EQ(t.DcLatency(a, b), 0.03);
  EXPECT_DOUBLE_EQ(t.DcLatency(b, a), 0.03);
  // Adding a DC later must preserve earlier latencies.
  DcId c = t.AddDatacenter("c");
  EXPECT_DOUBLE_EQ(t.DcLatency(a, b), 0.03);
  EXPECT_DOUBLE_EQ(t.DcLatency(a, c), 0.0);
}

TEST(TopologyTest, SummaryMentionsCounts) {
  Topology t;
  DcId a = t.AddDatacenter("a");
  DcId b = t.AddDatacenter("b");
  ASSERT_TRUE(t.AddServer(a, 1.0, 1.0).ok());
  ASSERT_TRUE(t.AddWanLink(a, b, 1.0).ok());
  std::string s = t.Summary();
  EXPECT_NE(s.find("2 DCs"), std::string::npos);
  EXPECT_NE(s.find("1 servers"), std::string::npos);
  EXPECT_NE(s.find("1 WAN links"), std::string::npos);
}

TEST(LinkTypeNameTest, AllNamed) {
  EXPECT_STREQ(LinkTypeName(LinkType::kServerUp), "server-up");
  EXPECT_STREQ(LinkTypeName(LinkType::kServerDown), "server-down");
  EXPECT_STREQ(LinkTypeName(LinkType::kWan), "wan");
}

TEST(UnitsTest, Conversions) {
  EXPECT_DOUBLE_EQ(MB(2.0), 2e6);
  EXPECT_DOUBLE_EQ(GB(1.0), 1e9);
  EXPECT_DOUBLE_EQ(TB(1.0), 1e12);
  EXPECT_DOUBLE_EQ(Mbps(8.0), 1e6);     // 8 Mbit/s = 1 MB/s
  EXPECT_DOUBLE_EQ(Gbps(8.0), 1e9);
  EXPECT_DOUBLE_EQ(MBps(1.0), 1e6);
  EXPECT_DOUBLE_EQ(GBps(1.0), 1e9);
  EXPECT_DOUBLE_EQ(ToMinutes(120.0), 2.0);
  EXPECT_DOUBLE_EQ(Minutes(2.0), 120.0);
  EXPECT_DOUBLE_EQ(Hours(1.0), 3600.0);
}

TEST(ApproxEqualTest, RelativeAndAbsolute) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-9));
  EXPECT_TRUE(ApproxEqual(1e12, 1e12 * (1 + 1e-9)));
  EXPECT_FALSE(ApproxEqual(1.0, 1.1));
  EXPECT_TRUE(ApproxEqual(0.0, 1e-9));
}

}  // namespace
}  // namespace bds
