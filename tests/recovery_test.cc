#include <gtest/gtest.h>

#include "src/core/service.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

std::unique_ptr<BdsService> MakeService(BdsOptions options = [] {
  BdsOptions o;
  o.cycle_length = 1.0;
  return o;
}()) {
  Topology topo = BuildFullMesh(3, 3, Gbps(1.0), MBps(20.0), MBps(20.0)).value();
  return BdsService::Create(std::move(topo), options).value();
}

TEST(RecoveryTest, ReplicaStateRestoreAllowsRedelivery) {
  Topology topo = BuildFullMesh(3, 2, Gbps(1.0), MBps(20.0), MBps(20.0)).value();
  ReplicaState state(&topo);
  MulticastJob job = MakeJob(0, 0, {1}, MB(8.0), MB(2.0)).value();
  ASSERT_TRUE(state.AddJob(job).ok());
  ServerId dest = state.AssignedServer(0, 0, 1);
  state.RemoveServer(dest);
  EXPECT_TRUE(state.ServerFailed(dest));
  EXPECT_FALSE(state.AddReplica(0, 0, dest).ok());  // Dead servers reject data.
  state.RestoreServer(dest);
  EXPECT_FALSE(state.ServerFailed(dest));
  EXPECT_TRUE(state.AddReplica(0, 0, dest).ok());
}

TEST(RecoveryTest, FailedDestinationRecoversAndJobCompletes) {
  auto service = MakeService();
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, MB(120.0)).ok());
  ServerId victim = service->topology().ServersIn(1)[0];
  service->InjectServerFailure(victim, 1.0);
  service->InjectServerRecovery(victim, 6.0);
  auto report = service->Run(Hours(1.0));
  ASSERT_TRUE(report.ok());
  // With the server back, its shard can be redelivered and the job finishes.
  EXPECT_TRUE(report->completed);
  EXPECT_GT(report->completion_time, 6.0);
}

TEST(RecoveryTest, WithoutRecoveryJobStaysIncomplete) {
  auto service = MakeService();
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, MB(120.0)).ok());
  ServerId victim = service->topology().ServersIn(1)[0];
  service->InjectServerFailure(victim, 1.0);
  auto report = service->Run(/*deadline=*/300.0);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->completed);
  // But every other destination server finished.
  int64_t owed_elsewhere = 0;
  for (DcId d : {1, 2}) {
    for (ServerId s : service->topology().ServersIn(d)) {
      if (s != victim) {
        owed_elsewhere += service->mutable_controller()->state().OwedByServer(s);
      }
    }
  }
  EXPECT_EQ(owed_elsewhere, 0);
}

TEST(RecoveryTest, SourceFailureAndRecoveryRestoresLostBlocks) {
  auto service = MakeService();
  MulticastJob job = MakeJob(0, 0, {1}, MB(120.0), MB(2.0)).value();
  ASSERT_TRUE(service->SubmitJob(job).ok());
  // Fail one origin server almost immediately: the blocks only it held are
  // unrecoverable until it returns at t=10.
  ServerId origin = service->topology().ServersIn(0)[0];
  service->InjectServerFailure(origin, 0.5);
  service->InjectServerRecovery(origin, 10.0);
  auto report = service->Run(Hours(1.0));
  ASSERT_TRUE(report.ok());
  // NOTE: a restored origin comes back empty in our model, so blocks whose
  // only copy lived there are lost for good; the run must still terminate
  // without wedging.
  EXPECT_LE(report->completion_time, Hours(1.0));
}

TEST(RecoveryTest, RecoveryDuringFallbackIsPickedUp) {
  auto service = MakeService();
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, MB(200.0)).ok());
  ServerId victim = service->topology().ServersIn(2)[1];
  service->InjectServerFailure(victim, 1.0);
  service->InjectControllerOutage(2.0, 12.0);
  service->InjectServerRecovery(victim, 5.0);  // Returns mid-outage.
  auto report = service->Run(Hours(1.0));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
}

TEST(RecoveryTest, FailureScriptRejectsMalformedEvents) {
  auto service = MakeService();
  ServerId victim = service->topology().ServersIn(1)[0];
  // Unknown server / negative time.
  EXPECT_FALSE(service->InjectServerFailure(service->topology().num_servers(), 1.0).ok());
  EXPECT_FALSE(service->InjectServerFailure(-1, 1.0).ok());
  EXPECT_FALSE(service->InjectServerFailure(victim, -1.0).ok());
  // Recovering a server that was never failed.
  EXPECT_FALSE(service->InjectServerRecovery(victim, 1.0).ok());
  // Duplicate failure of an already-failed server.
  ASSERT_TRUE(service->InjectServerFailure(victim, 1.0).ok());
  EXPECT_FALSE(service->InjectServerFailure(victim, 2.0).ok());
  // Recovery scheduled before the failure it would undo.
  EXPECT_FALSE(service->InjectServerRecovery(victim, 0.5).ok());
  // A consistent fail / recover / fail sequence is accepted.
  ASSERT_TRUE(service->InjectServerRecovery(victim, 3.0).ok());
  ASSERT_TRUE(service->InjectServerFailure(victim, 5.0).ok());
  // Inverted or negative controller outage windows.
  EXPECT_FALSE(service->InjectControllerOutage(10.0, 10.0).ok());
  EXPECT_FALSE(service->InjectControllerOutage(10.0, 5.0).ok());
  EXPECT_FALSE(service->InjectControllerOutage(-1.0, 5.0).ok());
  EXPECT_TRUE(service->InjectControllerOutage(5.0, 10.0).ok());
}

TEST(RecoveryTest, ServerFailsDuringControllerOutage) {
  // The failure lands while agents are on the decentralized fallback: the
  // engine requeues the victim's blocks, and once the controller returns it
  // finishes the job over the recovered server.
  auto service = MakeService();
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, MB(200.0)).ok());
  ServerId victim = service->topology().ServersIn(1)[1];
  ASSERT_TRUE(service->InjectControllerOutage(2.0, 20.0).ok());
  ASSERT_TRUE(service->InjectServerFailure(victim, 5.0).ok());   // Mid-outage.
  ASSERT_TRUE(service->InjectServerRecovery(victim, 25.0).ok());  // After handback.
  auto report = service->Run(Hours(1.0));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  EXPECT_EQ(service->mutable_controller()->state().OwedByServer(victim), 0);
}

TEST(RecoveryTest, HandbackCreditsInFlightFallbackDeliveries) {
  // Fallback downloads still in flight when the controller returns must
  // complete and be credited — the handback does not cancel the data plane.
  auto service = MakeService();
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, MB(200.0)).ok());
  ASSERT_TRUE(service->InjectControllerOutage(1.0, 8.0).ok());
  auto report = service->Run(Hours(1.0));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  // Every owed delivery was credited exactly once across the two regimes
  // (a redundant centralized re-plan of a block the fallback already landed
  // is absorbed by NoteDelivery, never double-credited).
  const ReplicaState& state = service->mutable_controller()->state();
  EXPECT_EQ(state.total_credited(), 100 * 2);  // 200 MB / 2 MB x 2 dest DCs.
}

TEST(RecoveryTest, FailureAndRecoveryWithinOneCycle) {
  // Both events land between two controller wake-ups (cycle_length = 1 s):
  // the controller processes them back-to-back in one ApplyFailures pass.
  // The blip still re-owes the victim's delivered blocks, and the run must
  // re-deliver them and complete.
  auto service = MakeService();
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, MB(120.0)).ok());
  ServerId victim = service->topology().ServersIn(2)[0];
  ASSERT_TRUE(service->InjectServerFailure(victim, 3.10).ok());
  ASSERT_TRUE(service->InjectServerRecovery(victim, 3.60).ok());
  auto report = service->Run(Hours(1.0));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  EXPECT_EQ(service->mutable_controller()->state().OwedByServer(victim), 0);
}

}  // namespace
}  // namespace bds
