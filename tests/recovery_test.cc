#include <gtest/gtest.h>

#include "src/core/service.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

std::unique_ptr<BdsService> MakeService(BdsOptions options = [] {
  BdsOptions o;
  o.cycle_length = 1.0;
  return o;
}()) {
  Topology topo = BuildFullMesh(3, 3, Gbps(1.0), MBps(20.0), MBps(20.0)).value();
  return BdsService::Create(std::move(topo), options).value();
}

TEST(RecoveryTest, ReplicaStateRestoreAllowsRedelivery) {
  Topology topo = BuildFullMesh(3, 2, Gbps(1.0), MBps(20.0), MBps(20.0)).value();
  ReplicaState state(&topo);
  MulticastJob job = MakeJob(0, 0, {1}, MB(8.0), MB(2.0)).value();
  ASSERT_TRUE(state.AddJob(job).ok());
  ServerId dest = state.AssignedServer(0, 0, 1);
  state.RemoveServer(dest);
  EXPECT_TRUE(state.ServerFailed(dest));
  EXPECT_FALSE(state.AddReplica(0, 0, dest).ok());  // Dead servers reject data.
  state.RestoreServer(dest);
  EXPECT_FALSE(state.ServerFailed(dest));
  EXPECT_TRUE(state.AddReplica(0, 0, dest).ok());
}

TEST(RecoveryTest, FailedDestinationRecoversAndJobCompletes) {
  auto service = MakeService();
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, MB(120.0)).ok());
  ServerId victim = service->topology().ServersIn(1)[0];
  service->InjectServerFailure(victim, 1.0);
  service->InjectServerRecovery(victim, 6.0);
  auto report = service->Run(Hours(1.0));
  ASSERT_TRUE(report.ok());
  // With the server back, its shard can be redelivered and the job finishes.
  EXPECT_TRUE(report->completed);
  EXPECT_GT(report->completion_time, 6.0);
}

TEST(RecoveryTest, WithoutRecoveryJobStaysIncomplete) {
  auto service = MakeService();
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, MB(120.0)).ok());
  ServerId victim = service->topology().ServersIn(1)[0];
  service->InjectServerFailure(victim, 1.0);
  auto report = service->Run(/*deadline=*/300.0);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->completed);
  // But every other destination server finished.
  int64_t owed_elsewhere = 0;
  for (DcId d : {1, 2}) {
    for (ServerId s : service->topology().ServersIn(d)) {
      if (s != victim) {
        owed_elsewhere += service->mutable_controller()->state().OwedByServer(s);
      }
    }
  }
  EXPECT_EQ(owed_elsewhere, 0);
}

TEST(RecoveryTest, SourceFailureAndRecoveryRestoresLostBlocks) {
  auto service = MakeService();
  MulticastJob job = MakeJob(0, 0, {1}, MB(120.0), MB(2.0)).value();
  ASSERT_TRUE(service->SubmitJob(job).ok());
  // Fail one origin server almost immediately: the blocks only it held are
  // unrecoverable until it returns at t=10.
  ServerId origin = service->topology().ServersIn(0)[0];
  service->InjectServerFailure(origin, 0.5);
  service->InjectServerRecovery(origin, 10.0);
  auto report = service->Run(Hours(1.0));
  ASSERT_TRUE(report.ok());
  // NOTE: a restored origin comes back empty in our model, so blocks whose
  // only copy lived there are lost for good; the run must still terminate
  // without wedging.
  EXPECT_LE(report->completion_time, Hours(1.0));
}

TEST(RecoveryTest, RecoveryDuringFallbackIsPickedUp) {
  auto service = MakeService();
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, MB(200.0)).ok());
  ServerId victim = service->topology().ServersIn(2)[1];
  service->InjectServerFailure(victim, 1.0);
  service->InjectControllerOutage(2.0, 12.0);
  service->InjectServerRecovery(victim, 5.0);  // Returns mid-outage.
  auto report = service->Run(Hours(1.0));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
}

}  // namespace
}  // namespace bds
