// Shard-parity property suite for the fleet-scale sharded controller: for
// ANY shard count and ANY thread count, every CycleDecision must equal the
// unsharded single-threaded controller's decision bit for bit, across full
// multi-cycle runs where each cycle's decision feeds the next cycle's state.
// The suite drives randomized topologies/workloads (seeded, deterministic)
// through the algorithm layer and the whole service, and also checks the
// path-cache counters stay identical under sharding (route-change
// invalidation parity).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/core/service.h"
#include "src/scheduler/controller_algorithm.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

struct Scenario {
  Topology topo;
  WanRoutingTable routing;
  std::vector<Rate> residual;
  std::vector<MulticastJob> jobs;

  explicit Scenario(Topology t)
      : topo(std::move(t)), routing(WanRoutingTable::Build(topo, 3).value()) {}
};

// Seeded random deployment + workload: 3-5 DCs, 1-3 servers each, 1-3
// multicast jobs with varied sources, destination sets, and block counts.
// Every rng draw happens in a fixed statement order so the scenario is a
// pure function of the seed.
Scenario MakeScenario(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  const int dcs = static_cast<int>(rng.UniformInt(3, 5));
  const int servers = static_cast<int>(rng.UniformInt(1, 3));
  const double wan = rng.Uniform(0.5, 2.0);
  const double up = rng.Uniform(15.0, 40.0);
  const double down = rng.Uniform(15.0, 40.0);
  Scenario sc(BuildFullMesh(dcs, servers, Gbps(wan), MBps(up), MBps(down)).value());
  for (const Link& l : sc.topo.links()) {
    sc.residual.push_back(l.capacity);
  }
  const int num_jobs = static_cast<int>(rng.UniformInt(1, 3));
  for (int j = 0; j < num_jobs; ++j) {
    const DcId src = static_cast<DcId>(rng.UniformInt(0, dcs - 1));
    std::vector<DcId> dests;
    for (DcId d = 0; d < dcs; ++d) {
      if (d != src && (dests.empty() || rng.Bernoulli(0.6))) {
        dests.push_back(d);
      }
    }
    const int64_t blocks = rng.UniformInt(16, 160);
    sc.jobs.push_back(MakeJob(static_cast<JobId>(j + 1), src, dests,
                              MB(2.0) * static_cast<double>(blocks), MB(2.0))
                          .value());
  }
  return sc;
}

// Runs `max_cycles` controller cycles, applying every decided transfer as a
// completed delivery before the next cycle (so rarest-first sees an evolving
// replica distribution), and folds each cycle's decision fingerprint into
// one digest. Two option sets that decide identically at every cycle — the
// sharding contract — produce equal digests; the first divergent cycle also
// diverges every later one, so differences cannot cancel.
uint64_t RunFingerprint(const Scenario& sc, const ControllerAlgorithmOptions& opt,
                        int max_cycles) {
  ReplicaState state(&sc.topo);
  for (const MulticastJob& job : sc.jobs) {
    BDS_CHECK(state.AddJob(job).ok());
  }
  ControllerAlgorithm algo(&sc.topo, &sc.routing, opt);
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 31;
  };
  for (int c = 0; c < max_cycles && !state.AllComplete(); ++c) {
    CycleDecision d = algo.Decide(c, state, sc.residual, {});
    mix(d.Fingerprint());
    if (d.transfers.empty()) {
      break;
    }
    for (const TransferAssignment& t : d.transfers) {
      for (int64_t b : t.blocks) {
        BDS_CHECK(state.NoteDelivery(t.job, b, t.src_server, t.dst_server).ok());
      }
    }
  }
  return h;
}

ControllerAlgorithmOptions Options(int num_shards, int num_threads) {
  ControllerAlgorithmOptions opt;
  opt.num_shards = num_shards;
  opt.num_threads = num_threads;
  return opt;
}

// The headline property: >= 30 seeds x shards {1, 2, 4, 8} x threads {1, 4},
// multi-cycle, bitwise-equal decision fingerprints vs the unsharded
// single-threaded controller.
TEST(ShardParityTest, MatchesUnshardedBitForBitAcrossShardAndThreadCounts) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Scenario sc = MakeScenario(seed);
    const uint64_t base = RunFingerprint(sc, Options(1, 1), 6);
    for (int shards : {1, 2, 4, 8}) {
      for (int threads : {1, 4}) {
        if (shards == 1 && threads == 1) {
          continue;
        }
        EXPECT_EQ(RunFingerprint(sc, Options(shards, threads), 6), base)
            << "seed=" << seed << " shards=" << shards << " threads=" << threads;
      }
    }
  }
}

// The per-shard heap queue (early-exit knob off) and the other knob/policy
// combinations must shard identically too.
TEST(ShardParityTest, ParityHoldsAcrossPoliciesAndKnobs) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Scenario sc = MakeScenario(seed);
    for (SchedulingPolicy policy : {SchedulingPolicy::kRarestFirst, SchedulingPolicy::kRandom,
                                    SchedulingPolicy::kSequential}) {
      for (bool early_exit : {true, false}) {
        for (bool merge : {true, false}) {
          ControllerAlgorithmOptions opt = Options(1, 1);
          opt.policy = policy;
          opt.use_sched_early_exit = early_exit;
          opt.merge_subtasks = merge;
          const uint64_t base = RunFingerprint(sc, opt, 4);
          for (int shards : {2, 8}) {
            ControllerAlgorithmOptions sharded = opt;
            sharded.num_shards = shards;
            sharded.num_threads = 4;
            EXPECT_EQ(RunFingerprint(sc, sharded, 4), base)
                << "seed=" << seed << " policy=" << static_cast<int>(policy)
                << " early_exit=" << early_exit << " merge=" << merge << " shards=" << shards;
          }
        }
      }
    }
  }
}

// Whole-service parity: the same workload through BdsService with sharding
// and threading on must reproduce the unsharded RunReport fingerprint
// (completion times, deliveries, per-cycle stats — everything the simulation
// determines).
TEST(ShardParityTest, ServiceRunReportFingerprintInvariant) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    auto run = [&](int shards, int threads) {
      Topology topo =
          BuildFullMesh(3 + static_cast<int>(seed % 3), 2, Gbps(1.0), MBps(20.0), MBps(20.0))
              .value();
      BdsOptions options;
      options.seed = seed;
      options.num_shards = shards;
      options.num_threads = threads;
      auto service = BdsService::Create(std::move(topo), options);
      BDS_CHECK(service.ok());
      BDS_CHECK(
          (*service)->CreateJob(0, {1, 2}, MB(30.0 + 8.0 * static_cast<double>(seed))).ok());
      BDS_CHECK((*service)->CreateJob(1, {0, 2}, MB(16.0)).ok());
      auto report = (*service)->Run();
      BDS_CHECK(report.ok());
      BDS_CHECK(report->completed);
      return report->Fingerprint();
    };
    const uint64_t base = run(1, 1);
    EXPECT_EQ(run(4, 1), base) << "seed=" << seed;
    EXPECT_EQ(run(8, 4), base) << "seed=" << seed;
  }
}

// Sharding must not change what the path cache does: identical hit, miss,
// and invalidation counts across a run that includes route changes
// (InvalidatePathCache mid-run, as a link fault would trigger).
TEST(ShardParityTest, PathCacheCountersMatchUnshardedAcrossRouteChanges) {
  Scenario sc = MakeScenario(7);
  auto run = [&](int shards, int threads) {
    ReplicaState state(&sc.topo);
    for (const MulticastJob& job : sc.jobs) {
      BDS_CHECK(state.AddJob(job).ok());
    }
    ControllerAlgorithm algo(&sc.topo, &sc.routing, Options(shards, threads));
    for (int c = 0; c < 6 && !state.AllComplete(); ++c) {
      if (c == 2 || c == 4) {
        algo.InvalidatePathCache();  // Route change: skeletons must rebuild.
      }
      CycleDecision d = algo.Decide(c, state, sc.residual, {});
      if (d.transfers.empty()) {
        break;
      }
      for (const TransferAssignment& t : d.transfers) {
        for (int64_t b : t.blocks) {
          BDS_CHECK(state.NoteDelivery(t.job, b, t.src_server, t.dst_server).ok());
        }
      }
    }
    return algo.path_cache_stats();
  };
  const ServerPathCache::Stats base = run(1, 1);
  EXPECT_GT(base.hits, 0);
  EXPECT_GT(base.misses, 0);
  EXPECT_EQ(base.invalidations, 2);
  for (int shards : {2, 4, 8}) {
    const ServerPathCache::Stats s = run(shards, 4);
    EXPECT_EQ(s.hits, base.hits) << "shards=" << shards;
    EXPECT_EQ(s.misses, base.misses) << "shards=" << shards;
    EXPECT_EQ(s.invalidations, base.invalidations) << "shards=" << shards;
  }
}

// Observability fields: a sharded decision reports its component/group
// counts (excluded from the fingerprint), the unsharded one reports zeros,
// and the per-phase CPU timings are populated either way.
TEST(ShardParityTest, ShardObservabilityFieldsPopulated) {
  Scenario sc = MakeScenario(11);
  ReplicaState state(&sc.topo);
  for (const MulticastJob& job : sc.jobs) {
    BDS_CHECK(state.AddJob(job).ok());
  }
  ControllerAlgorithm unsharded(&sc.topo, &sc.routing, Options(1, 1));
  ControllerAlgorithm sharded(&sc.topo, &sc.routing, Options(4, 1));
  CycleDecision du = unsharded.Decide(0, state, sc.residual, {});
  CycleDecision ds = sharded.Decide(0, state, sc.residual, {});
  ASSERT_GT(du.scheduled_blocks, 0);
  EXPECT_EQ(du.num_shard_components, 0);
  EXPECT_EQ(du.num_shard_groups, 0);
  EXPECT_GE(ds.num_shard_components, 1);
  EXPECT_GE(ds.num_shard_groups, 1);
  EXPECT_LE(ds.num_shard_groups, 4);
  for (const CycleDecision* d : {&du, &ds}) {
    EXPECT_GE(d->select_cpu_seconds, 0.0);
    EXPECT_GE(d->solve_cpu_seconds, 0.0);
    EXPECT_GE(d->merge_cpu_seconds, 0.0);
  }
  EXPECT_EQ(du.Fingerprint(), ds.Fingerprint());
}

}  // namespace
}  // namespace bds
