#include "src/baselines/decentralized_engine.h"

#include <gtest/gtest.h>

#include "src/baselines/gingko.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

struct Fixture {
  Topology topo;
  WanRoutingTable routing;

  explicit Fixture(int dcs = 3, int servers = 4)
      : topo(BuildFullMesh(dcs, servers, Gbps(1.0), MBps(20.0), MBps(20.0)).value()),
        routing(WanRoutingTable::Build(topo, 3).value()) {}

  MulticastJob Job(Bytes size = MB(40.0)) {
    std::vector<DcId> dests;
    for (DcId d = 1; d < topo.num_dcs(); ++d) {
      dests.push_back(d);
    }
    return MakeJob(0, 0, dests, size, MB(2.0)).value();
  }
};

// Runs the engine to completion with ticks; returns completion time or -1.
double RunEngine(Fixture& f, const MulticastJob& job, DecentralizedEngine::Options options,
                 SimTime deadline = 3600.0) {
  NetworkSimulator sim(&f.topo);
  ReplicaState state(&f.topo);
  BDS_CHECK(state.AddJob(job).ok());
  DecentralizedEngine engine(&f.topo, &f.routing, &sim, &state, options);
  sim.SetCompletionCallback([&](const FlowRecord& r) { engine.OnFlowComplete(r); });
  engine.Activate();
  while (!state.AllComplete() && sim.now() < deadline) {
    BDS_CHECK(sim.RunUntilIdle(sim.now() + 1.0).ok());
    if (!state.AllComplete() && sim.now() < deadline) {
      BDS_CHECK(sim.AdvanceTo(sim.now() + 1.0).ok());
    }
    engine.Tick();
  }
  return state.AllComplete() ? sim.now() : -1.0;
}

TEST(DecentralizedEngineTest, CompletesWithGlobalView) {
  Fixture f;
  DecentralizedEngine::Options opt;
  opt.visibility = 0;
  EXPECT_GT(RunEngine(f, f.Job(), opt), 0.0);
}

TEST(DecentralizedEngineTest, CompletesWithPartialVisibility) {
  Fixture f;
  DecentralizedEngine::Options opt;
  opt.visibility = 2;
  EXPECT_GT(RunEngine(f, f.Job(), opt), 0.0);
}

TEST(DecentralizedEngineTest, CompletesWithStickySources) {
  Fixture f;
  DecentralizedEngine::Options opt;
  opt.sticky_blocks = 16;
  EXPECT_GT(RunEngine(f, f.Job(), opt), 0.0);
}

TEST(DecentralizedEngineTest, CompletesWithNeighborSetsViaEscalation) {
  Fixture f;
  DecentralizedEngine::Options opt;
  opt.neighbor_fraction = 0.25;  // Tight view: escalation must rescue blocks.
  opt.stall_escalation = 3;
  double t = RunEngine(f, f.Job(), opt);
  EXPECT_GT(t, 0.0);
}

TEST(DecentralizedEngineTest, CompletesWithUploadSlots) {
  Fixture f;
  DecentralizedEngine::Options opt;
  opt.upload_slots = 1;
  EXPECT_GT(RunEngine(f, f.Job(), opt), 0.0);
}

TEST(DecentralizedEngineTest, EpochResamplingRuns) {
  Fixture f;
  DecentralizedEngine::Options opt;
  opt.neighbor_fraction = 0.5;
  opt.resample_period = 2.0;  // RanSub-style refresh.
  opt.concurrent_downloads = 2;
  EXPECT_GT(RunEngine(f, f.Job(), opt), 0.0);
}

TEST(DecentralizedEngineTest, OriginOnlyNeverUsesRelays) {
  Fixture f;
  NetworkSimulator sim(&f.topo);
  ReplicaState state(&f.topo);
  MulticastJob job = f.Job();
  ASSERT_TRUE(state.AddJob(job).ok());
  DecentralizedEngine::Options opt;
  opt.origin_only = true;
  opt.visibility = 0;
  opt.randomize_order = false;
  DecentralizedEngine engine(&f.topo, &f.routing, &sim, &state, opt);
  bool all_from_origin = true;
  engine.SetDeliveryCallback([&](JobId, int64_t, ServerId src, ServerId) {
    if (f.topo.server(src).dc != job.source_dc) {
      all_from_origin = false;
    }
  });
  sim.SetCompletionCallback([&](const FlowRecord& r) { engine.OnFlowComplete(r); });
  engine.Activate();
  ASSERT_TRUE(sim.RunUntilIdle(3600.0).ok());
  EXPECT_TRUE(state.AllComplete());
  EXPECT_TRUE(all_from_origin);
}

TEST(DecentralizedEngineTest, DeactivateStopsNewDownloads) {
  Fixture f;
  NetworkSimulator sim(&f.topo);
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.Job()).ok());
  DecentralizedEngine engine(&f.topo, &f.routing, &sim, &state, {});
  sim.SetCompletionCallback([&](const FlowRecord& r) { engine.OnFlowComplete(r); });
  engine.Activate();
  int64_t started_before = engine.downloads_started();
  ASSERT_GT(started_before, 0);
  engine.Deactivate();
  ASSERT_TRUE(sim.RunUntilIdle(3600.0).ok());  // Drain in-flight only.
  EXPECT_EQ(engine.downloads_started(), started_before);
  EXPECT_FALSE(state.AllComplete());
}

TEST(DecentralizedEngineTest, HandleServerFailureRequeuesBlocks) {
  Fixture f;
  NetworkSimulator sim(&f.topo);
  ReplicaState state(&f.topo);
  ASSERT_TRUE(state.AddJob(f.Job()).ok());
  DecentralizedEngine engine(&f.topo, &f.routing, &sim, &state, {});
  sim.SetCompletionCallback([&](const FlowRecord& r) { engine.OnFlowComplete(r); });
  engine.Activate();
  ASSERT_TRUE(sim.AdvanceTo(0.05).ok());
  // Fail one origin server mid-transfer.
  ServerId victim = f.topo.ServersIn(0)[0];
  state.RemoveServer(victim);
  engine.HandleServerFailure(victim);
  // Everything else must still complete (other holders/origins remain).
  for (int i = 0; i < 600 && !state.AllComplete(); ++i) {
    ASSERT_TRUE(sim.RunUntilIdle(sim.now() + 1.0).ok());
    if (!state.AllComplete()) {
      ASSERT_TRUE(sim.AdvanceTo(sim.now() + 1.0).ok());
    }
    engine.Tick();
  }
  // Blocks whose only holder died stay pending; no crash and no wedge spin.
  EXPECT_GE(engine.downloads_started(), 1);
}

TEST(GingkoDefaultsTest, StrategiesExposeOptionKnobs) {
  GingkoStrategy::Options g;
  EXPECT_EQ(g.upload_slots, 1);
  EXPECT_GT(g.sticky_blocks, 0);
  EXPECT_GT(g.neighbor_fraction, 0.0);
  BulletStrategy::Options b;
  EXPECT_GT(b.upload_slots, g.upload_slots);
  EXPECT_GT(b.concurrent_downloads, 1);
}

}  // namespace
}  // namespace bds
