// Seeded chaos soak: many seeds of combined link, control-plane, and
// data-plane faults against one workload, asserting the hard invariants the
// fault subsystem guarantees:
//
//   1. Every job completes once all fault windows close (no wedges).
//   2. No block is double-credited: exactly blocks x destination DCs owed
//      deliveries are credited, no matter how many redundant or corrupted
//      transfers the faults caused.
//   3. Bulk traffic never exceeds a link's (possibly faulted) capacity.
//   4. The same seed reproduces a byte-identical RunReport (fingerprint).
//
// Labelled `chaos` in ctest; run just the soak with `ctest -L chaos`.

#include <gtest/gtest.h>

#include <optional>

#include "src/core/service.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

constexpr int kSeeds = 24;
constexpr Bytes kJobBytes = MB(60.0);
constexpr int64_t kBlocks = 30;   // 60 MB / 2 MB blocks.
constexpr int64_t kDestDcs = 2;   // Owed deliveries = kBlocks * kDestDcs.

struct SoakOutcome {
  bool completed = false;
  int64_t credited = 0;
  int64_t redundant = 0;
  std::optional<double> overshoot;
  uint64_t fingerprint = 0;
  FaultStats faults;
  std::string chaos;
};

SoakOutcome RunOneSeed(uint64_t seed) {
  BdsOptions options;
  options.cycle_length = 1.0;
  options.validate_invariants = true;
  options.seed = seed;
  Topology topo = BuildFullMesh(3, 2, Gbps(1.0), MBps(50.0), MBps(50.0)).value();
  auto service = BdsService::Create(std::move(topo), options).value();
  EXPECT_TRUE(service->CreateJob(0, {1, 2}, kJobBytes).ok());
  // Controller-replica fail/recover windows ride along with the link and
  // plane faults, so the soak also exercises master failover.
  ChaosOptions chaos;
  chaos.max_replica_failures = 2;
  chaos.controller_replicas = options.controller_replicas;
  auto plan = service->InstallChaos(seed, chaos);
  EXPECT_TRUE(plan.ok()) << plan.status().ToString();

  SoakOutcome out;
  auto report = service->Run(/*deadline=*/Hours(2.0));
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  if (!report.ok()) {
    return out;
  }
  out.completed = report->completed;
  out.credited = service->mutable_controller()->state().total_credited();
  out.redundant = service->mutable_controller()->state().redundant_deliveries();
  out.overshoot = report->max_link_overshoot;  // Engaged: the soak validates invariants.
  out.fingerprint = report->Fingerprint();
  out.faults = report->faults;
  out.chaos = plan.ok() ? plan->description : "";
  return out;
}

TEST(ChaosSoakTest, InvariantsHoldAcrossSeeds) {
  int64_t total_fault_events = 0;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SoakOutcome out = RunOneSeed(seed);
    SCOPED_TRACE("seed " + std::to_string(seed) + " chaos: " + out.chaos);
    // (1) Every fault the generator draws is recoverable, so the run must
    // finish well before the (generous) deadline.
    EXPECT_TRUE(out.completed);
    // (2) Exactly the owed deliveries were credited — redundant transfers
    // from stale views and corrupted blocks never double-credit.
    EXPECT_EQ(out.credited, kBlocks * kDestDcs);
    // (3) Bulk rates never exceeded the faulted capacity of any link. The
    // soak runs with validate_invariants, so the overshoot must have been
    // measured — nullopt here would mean the check silently never ran.
    ASSERT_TRUE(out.overshoot.has_value());
    EXPECT_LE(*out.overshoot, 1e-4);
    total_fault_events += out.faults.link_events + out.faults.reports_lost +
                          out.faults.pushes_dropped + out.faults.blocks_corrupted;
  }
  // The soak only means something if the seeds actually injected faults.
  EXPECT_GT(total_fault_events, kSeeds);
}

TEST(ChaosSoakTest, SameSeedIsByteIdentical) {
  for (uint64_t seed : {3ULL, 11ULL, 17ULL}) {
    SoakOutcome first = RunOneSeed(seed);
    SoakOutcome second = RunOneSeed(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_EQ(first.fingerprint, second.fingerprint);
    EXPECT_EQ(first.credited, second.credited);
    EXPECT_EQ(first.redundant, second.redundant);
    EXPECT_EQ(first.faults.blocks_corrupted, second.faults.blocks_corrupted);
    EXPECT_EQ(first.faults.flows_killed, second.faults.flows_killed);
  }
}

TEST(ChaosSoakTest, CorruptionAloneOnlyDelaysCompletion) {
  // Isolate the data plane: heavy corruption, no other faults. The job must
  // still complete (corrupted blocks re-enter rarest-first) and credit
  // exactly once per owed delivery.
  BdsOptions options;
  options.cycle_length = 1.0;
  options.seed = 5;
  Topology topo = BuildFullMesh(3, 2, Gbps(1.0), MBps(50.0), MBps(50.0)).value();
  auto service = BdsService::Create(std::move(topo), options).value();
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, kJobBytes).ok());
  DataPlaneFaultOptions dp;
  dp.corruption_prob = 0.3;
  ASSERT_TRUE(service->mutable_fault_injector()->SetDataPlaneFaults(dp).ok());
  auto report = service->Run(Hours(2.0));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  EXPECT_GT(report->faults.blocks_corrupted, 0);
  EXPECT_EQ(service->mutable_controller()->state().total_credited(), kBlocks * kDestDcs);
}

TEST(ChaosSoakTest, StaleViewsAloneStillConverge) {
  // Isolate the control plane: every report and push is a coin flip. The
  // bounded-staleness escalations guarantee convergence; idempotent
  // NoteDelivery absorbs whatever redundant transfers the stale view plans.
  BdsOptions options;
  options.cycle_length = 1.0;
  options.seed = 6;
  Topology topo = BuildFullMesh(3, 2, Gbps(1.0), MBps(50.0), MBps(50.0)).value();
  auto service = BdsService::Create(std::move(topo), options).value();
  ASSERT_TRUE(service->CreateJob(0, {1, 2}, kJobBytes).ok());
  ControlPlaneFaultOptions cp;
  cp.report_loss_prob = 0.5;
  cp.push_drop_prob = 0.5;
  ASSERT_TRUE(service->mutable_fault_injector()->SetControlPlaneFaults(cp).ok());
  auto report = service->Run(Hours(2.0));
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->completed);
  EXPECT_EQ(service->mutable_controller()->state().total_credited(), kBlocks * kDestDcs);
}

}  // namespace
}  // namespace bds
