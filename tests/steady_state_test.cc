// Steady-state service-mode soak (ctest label: steady).
//
// Drives BdsService::RunSteadyState through the scenarios the overload PR
// promises:
//   * a one-simulated-day open-loop soak at ~1.5x the overload knee that
//     must finish with bounded memory, an engaged degradation ladder,
//     admission rejections, and zero capacity-invariant violations;
//   * bit-identical fingerprints and ladder-transition logs across
//     {1,4} threads x {1,4} shards;
//   * a chaos schedule with controller-replica fail/recover events, so the
//     soak exercises ControllerReplicaSet failover end to end.
//
// Scale note: WAN capacity, job sizes (size_scale), and the stressed cost
// model are tuned so the laptop-scale run crosses the cycle budget the same
// way the fleet-scale controller would — the ladder dynamics are what is
// under test, not absolute throughput.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/service.h"
#include "src/fault/fault_injector.h"
#include "src/topology/builders.h"

namespace bds {
namespace {

BdsOptions ServiceOptions(int num_threads = 1, int num_shards = 1) {
  BdsOptions o;
  o.block_size = MB(2.0);
  o.cycle_length = 3.0;
  o.validate_invariants = true;
  o.num_threads = num_threads;
  o.num_shards = num_shards;
  o.seed = 7;
  return o;
}

Topology SoakTopology() {
  // 4 DCs x 1 server, deliberately thin WAN pipes so the overload knee sits
  // at a laptop-friendly arrival rate.
  return BuildFullMesh(/*num_dcs=*/4, /*servers_per_dc=*/1, /*wan_capacity=*/MBps(1.0),
                       /*server_up=*/MBps(4.0), /*server_down=*/MBps(4.0))
      .value();
}

SteadyStateOptions SoakOptions(SimTime duration) {
  SteadyStateOptions o;
  o.duration = duration;
  o.drain = true;
  o.drain_limit = Hours(1.0);

  // ~1.5x the knee: the thin mesh drains roughly a dozen deliveries per
  // cycle, jobs average a handful of (block, DC) deliveries each.
  o.arrivals.pattern = ArrivalPattern::kBursty;
  o.arrivals.jobs_per_hour = 1800.0;
  o.arrivals.burst_factor = 4.0;
  o.arrivals.burst_fraction = 0.2;
  o.arrivals.mean_burst_seconds = 600.0;
  o.arrivals.size_scale = 2e-6;  // TB-scale trace sizes -> MB-scale jobs.
  o.arrivals.seed = 99;

  o.admission.enabled = true;
  o.admission.policy = AdmissionPolicy::kReject;
  o.admission.max_backlog_cycles = 30.0;
  o.admission.bootstrap_cycles = 8;

  // Stressed cost model: the admission-capped backlog (a few hundred owed
  // deliveries) prices past the 3 s cycle budget, so the ladder engages at
  // this scale exactly like the fleet point would.
  o.overload.enabled = true;
  o.overload.cost.base_seconds = 1e-4;
  o.overload.cost.per_pending_seconds = 1.2e-2;
  o.overload.overrun_threshold = 1.0;
  o.overload.recover_threshold = 0.5;
  o.overload.recover_cycles = 5;

  o.retire_completed = true;
  o.completed_flow_history = 4096;
  o.max_cycle_stats = 2048;
  return o;
}

TEST(SteadyStateSoakTest, DayLongOverloadSoakIsBoundedAndDegradesGracefully) {
  auto service = BdsService::Create(SoakTopology(), ServiceOptions()).value();
  auto report = service->RunSteadyState(SoakOptions(/*duration=*/86400.0));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const SteadyStateReport& r = *report;
  SCOPED_TRACE(r.ToString());

  // The run must end for a reason the service mode recognizes — never the
  // hard cycle-cap abort.
  EXPECT_TRUE(r.run.stop_reason == StopReason::kDrained ||
              r.run.stop_reason == StopReason::kDeadline);

  // Open-loop offered load well past what was served; admission pushed back.
  EXPECT_GT(r.jobs_generated, 10'000);
  EXPECT_EQ(r.admission.offered, r.jobs_generated);
  EXPECT_GT(r.admission.rejected, 0);
  EXPECT_EQ(r.admission.accepted + r.admission.rejected, r.admission.offered);
  EXPECT_GT(r.estimated_service_rate, 0.0);

  // Plenty of work still completed, with sane percentiles.
  EXPECT_GT(r.jobs_completed, 1'000);
  EXPECT_GT(r.completion_p50_minutes, 0.0);
  EXPECT_LE(r.completion_p50_minutes, r.completion_p95_minutes);
  EXPECT_LE(r.completion_p95_minutes, r.completion_p99_minutes);
  EXPECT_LE(r.completion_p99_minutes, r.completion_max_minutes);

  // The ladder engaged: cycles overran and at least two degraded rungs saw
  // real occupancy.
  EXPECT_GT(r.cycle_overruns, 0);
  int degraded_rungs = 0;
  for (size_t rung = 1; rung < r.rung_cycles.size(); ++rung) {
    if (r.rung_cycles[rung] > 0) {
      ++degraded_rungs;
    }
  }
  EXPECT_GE(degraded_rungs, 2);
  EXPECT_FALSE(r.transitions.empty());

  // Hard invariant: no link ever exceeded its usable capacity.
  ASSERT_TRUE(r.run.max_link_overshoot.has_value());
  EXPECT_LE(*r.run.max_link_overshoot, 1e-4);

  // Bounded memory: nearly everything completed was retired, the live
  // residue is admission-bounded, and per-cycle history was capped even
  // though the full-run counters kept counting.
  EXPECT_GT(r.retired_jobs, r.jobs_completed * 9 / 10);
  EXPECT_LE(r.live_pending_at_end, r.peak_live_pending);
  EXPECT_LT(r.peak_live_jobs, r.admission.accepted);
  EXPECT_LE(static_cast<int64_t>(r.run.cycles.size()), 2048 + 2048 / 2 + 64);
  EXPECT_GT(r.run.total_cycles, static_cast<int64_t>(r.run.cycles.size()));
  EXPECT_GT(r.run.total_cycles, 20'000);  // ~a day of 3 s cycles.

  EXPECT_FALSE(r.ToString().empty());
}

TEST(SteadyStateSoakTest, FingerprintAndLadderIdenticalAcrossThreadsAndShards) {
  struct Outcome {
    uint64_t fingerprint;
    uint64_t transition_digest;
    std::vector<RungTransition> transitions;
    int64_t rejected;
  };
  std::vector<Outcome> outcomes;
  for (auto [threads, shards] :
       std::vector<std::pair<int, int>>{{1, 1}, {4, 1}, {1, 4}, {4, 4}}) {
    auto service = BdsService::Create(SoakTopology(), ServiceOptions(threads, shards)).value();
    auto report = service->RunSteadyState(SoakOptions(/*duration=*/7200.0));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    outcomes.push_back(Outcome{report->Fingerprint(), report->transition_digest,
                               report->transitions, report->admission.rejected});
  }
  // The two-hour window must actually exercise the ladder, or the parity
  // check proves nothing.
  EXPECT_FALSE(outcomes[0].transitions.empty());
  for (size_t i = 1; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].fingerprint, outcomes[0].fingerprint) << "config " << i;
    EXPECT_EQ(outcomes[i].transition_digest, outcomes[0].transition_digest) << "config " << i;
    EXPECT_EQ(outcomes[i].transitions, outcomes[0].transitions) << "config " << i;
    EXPECT_EQ(outcomes[i].rejected, outcomes[0].rejected) << "config " << i;
  }
}

TEST(SteadyStateSoakTest, BurnRateAlertsFireUnderOverloadOnly) {
  // The SLO time-series acceptance pair: the ~1.5x-knee overload rig must
  // surface at least one burn-rate alert in the report (completions blow the
  // 30-minute SLO wholesale once the backlog saturates), while a comfortably
  // underloaded run with the same sampler must stay quiet.
  auto run = [](bool overloaded) {
    auto service = BdsService::Create(SoakTopology(), ServiceOptions()).value();
    SteadyStateOptions steady = SoakOptions(/*duration=*/6.0 * 3600.0);
    if (!overloaded) {
      steady.arrivals.pattern = ArrivalPattern::kPoisson;
      steady.arrivals.jobs_per_hour = 240.0;
      steady.overload.enabled = false;
    }
    steady.timeseries.enabled = true;
    steady.timeseries.sample_dt = 60.0;
    auto report = service->RunSteadyState(steady);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? *report : SteadyStateReport{};
  };

  SteadyStateReport hot = run(/*overloaded=*/true);
  SCOPED_TRACE(hot.ToString());
  EXPECT_GT(hot.timeseries_samples, 0);
  ASSERT_GE(hot.slo_alerts.size(), 1u);
  EXPECT_GT(hot.slo_alerts[0].burn_fast, 2.0);
  EXPECT_GT(hot.slo_alerts[0].burn_slow, 2.0);

  SteadyStateReport calm = run(/*overloaded=*/false);
  SCOPED_TRACE(calm.ToString());
  EXPECT_GT(calm.timeseries_samples, 0);
  EXPECT_EQ(calm.slo_alerts.size(), 0u);
  EXPECT_EQ(calm.burn_fast_at_end, 0.0);
}

TEST(SteadyStateSoakTest, ChaosReplicaFailoverSoakCompletes) {
  // Draw a chaos plan that definitely contains controller-replica
  // fail/recover events (probing seeds against a scratch injector leaves the
  // service untouched), install it, and run a steady-state window through
  // the failovers.
  ChaosOptions chaos;
  chaos.horizon = 1200.0;
  chaos.max_link_downs = 0;
  chaos.max_link_degradations = 0;
  chaos.max_link_flaps = 0;
  chaos.report_loss_prob_max = 0.0;
  chaos.push_drop_prob_max = 0.0;
  chaos.corruption_prob_max = 0.0;
  chaos.include_controller_outage = false;
  chaos.max_replica_failures = 3;
  chaos.controller_replicas = 3;

  Topology probe_topo = SoakTopology();
  uint64_t chosen_seed = 0;
  bool found = false;
  for (uint64_t seed = 1; seed <= 32 && !found; ++seed) {
    FaultInjector scratch;
    auto plan = InstallRandomChaos(probe_topo, seed, chaos, &scratch);
    ASSERT_TRUE(plan.ok());
    if (!plan->replica_failures.empty()) {
      chosen_seed = seed;
      found = true;
    }
  }
  ASSERT_TRUE(found) << "no seed in [1,32] drew a replica failure";

  BdsOptions options = ServiceOptions();
  options.controller_replicas = 3;
  auto service = BdsService::Create(SoakTopology(), options).value();
  auto plan = service->InstallChaos(chosen_seed, chaos);
  ASSERT_TRUE(plan.ok());
  ASSERT_FALSE(plan->replica_failures.empty());

  SteadyStateOptions steady = SoakOptions(/*duration=*/1800.0);
  // Light load: this test is about failover liveness, not the ladder.
  steady.arrivals.pattern = ArrivalPattern::kPoisson;
  steady.arrivals.jobs_per_hour = 240.0;
  steady.overload.enabled = false;
  auto report = service->RunSteadyState(steady);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  SCOPED_TRACE(report->ToString());
  EXPECT_TRUE(report->run.stop_reason == StopReason::kDrained ||
              report->run.stop_reason == StopReason::kDeadline);
  EXPECT_GT(report->jobs_completed, 0);
  ASSERT_TRUE(report->run.max_link_overshoot.has_value());
  EXPECT_LE(*report->run.max_link_overshoot, 1e-4);
}

}  // namespace
}  // namespace bds
