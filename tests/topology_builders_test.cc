#include "src/topology/builders.h"

#include <gtest/gtest.h>

#include "src/topology/routing.h"

namespace bds {
namespace {

TEST(BuildGeoTopologyTest, DimensionsMatchOptions) {
  GeoTopologyOptions opt;
  opt.num_dcs = 8;
  opt.servers_per_dc = 5;
  auto topo = BuildGeoTopology(opt);
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo->num_dcs(), 8);
  EXPECT_EQ(topo->num_servers(), 40);
  for (DcId d = 0; d < 8; ++d) {
    EXPECT_EQ(topo->ServersIn(d).size(), 5u);
  }
}

TEST(BuildGeoTopologyTest, AllPairsReachable) {
  GeoTopologyOptions opt;
  opt.num_dcs = 10;
  opt.servers_per_dc = 1;
  opt.wan_density = 0.0;  // Only the ring — worst case for reachability.
  auto topo = BuildGeoTopology(opt);
  ASSERT_TRUE(topo.ok());
  for (DcId a = 0; a < 10; ++a) {
    for (DcId b = 0; b < 10; ++b) {
      if (a == b) {
        continue;
      }
      EXPECT_TRUE(ShortestWanRoute(*topo, a, b).ok()) << a << "->" << b;
    }
  }
}

TEST(BuildGeoTopologyTest, DeterministicForSeed) {
  GeoTopologyOptions opt;
  opt.num_dcs = 6;
  opt.servers_per_dc = 2;
  opt.seed = 42;
  auto t1 = BuildGeoTopology(opt);
  auto t2 = BuildGeoTopology(opt);
  ASSERT_TRUE(t1.ok() && t2.ok());
  ASSERT_EQ(t1->num_links(), t2->num_links());
  for (LinkId l = 0; l < t1->num_links(); ++l) {
    EXPECT_DOUBLE_EQ(t1->link(l).capacity, t2->link(l).capacity);
  }
}

TEST(BuildGeoTopologyTest, CapacityJitterCreatesDiversity) {
  GeoTopologyOptions opt;
  opt.num_dcs = 10;
  opt.servers_per_dc = 1;
  opt.wan_capacity_jitter = 0.4;
  auto topo = BuildGeoTopology(opt);
  ASSERT_TRUE(topo.ok());
  double lo = 1e18;
  double hi = 0.0;
  for (const Link& l : topo->links()) {
    if (l.type == LinkType::kWan) {
      lo = std::min(lo, l.capacity);
      hi = std::max(hi, l.capacity);
    }
  }
  EXPECT_GT(hi / lo, 1.2);  // Jitter produced heterogeneous WAN capacities.
}

TEST(BuildGeoTopologyTest, LatenciesWithinRange) {
  GeoTopologyOptions opt;
  opt.num_dcs = 5;
  opt.servers_per_dc = 1;
  opt.min_latency = 0.005;
  opt.max_latency = 0.050;
  auto topo = BuildGeoTopology(opt);
  ASSERT_TRUE(topo.ok());
  for (DcId a = 0; a < 5; ++a) {
    for (DcId b = static_cast<DcId>(a + 1); b < 5; ++b) {
      double lat = topo->DcLatency(a, b);
      EXPECT_GE(lat, 0.005);
      EXPECT_LE(lat, 0.050);
    }
  }
}

TEST(BuildGeoTopologyTest, RejectsBadOptions) {
  GeoTopologyOptions opt;
  opt.num_dcs = 1;
  EXPECT_FALSE(BuildGeoTopology(opt).ok());
  opt.num_dcs = 3;
  opt.servers_per_dc = 0;
  EXPECT_FALSE(BuildGeoTopology(opt).ok());
  opt.servers_per_dc = 1;
  opt.wan_density = 1.5;
  EXPECT_FALSE(BuildGeoTopology(opt).ok());
  opt.wan_density = 0.5;
  opt.wan_capacity_jitter = 1.0;
  EXPECT_FALSE(BuildGeoTopology(opt).ok());
}

TEST(BuildFullMeshTest, EveryOrderedPairLinked) {
  auto topo = BuildFullMesh(4, 2, Gbps(1.0), MBps(10.0), MBps(10.0));
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo->num_dcs(), 4);
  EXPECT_EQ(topo->num_servers(), 8);
  for (DcId a = 0; a < 4; ++a) {
    EXPECT_EQ(topo->WanLinksFrom(a).size(), 3u);
  }
}

TEST(BuildFullMeshTest, RejectsBadDimensions) {
  EXPECT_FALSE(BuildFullMesh(1, 1, 1.0, 1.0, 1.0).ok());
  EXPECT_FALSE(BuildFullMesh(2, 0, 1.0, 1.0, 1.0).ok());
}

TEST(Figure3Test, MatchesPaperCapacities) {
  Figure3Topology fig = BuildFigure3Example();
  EXPECT_EQ(fig.topo.num_dcs(), 3);
  EXPECT_EQ(fig.topo.num_servers(), 4);

  // Relay server b: 6 GB/s down, 3 GB/s up.
  const Server& b = fig.topo.server(fig.server_b);
  EXPECT_DOUBLE_EQ(b.down_capacity, GBps(6.0));
  EXPECT_DOUBLE_EQ(b.up_capacity, GBps(3.0));

  // Direct IP route A->C is one 2 GB/s hop.
  auto direct = ShortestWanRoute(fig.topo, fig.dc_a, fig.dc_c);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct->hops(), 1);
  EXPECT_DOUBLE_EQ(direct->BottleneckCapacity(fig.topo), GBps(2.0));

  // The relay route A->B->C exists with a 3 GB/s WAN bottleneck.
  auto routes = KShortestWanRoutes(fig.topo, fig.dc_a, fig.dc_c, 3);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_DOUBLE_EQ(routes[1].BottleneckCapacity(fig.topo), GBps(3.0));
}

TEST(GingkoExperimentTest, DefaultsMatchPaperSection23) {
  auto topo = BuildGingkoExperiment();
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo->num_dcs(), 3);                // 1 source + 2 destinations.
  EXPECT_EQ(topo->num_servers(), 3 * 640);
  EXPECT_DOUBLE_EQ(topo->server(0).up_capacity, Mbps(20.0));
}

TEST(GingkoExperimentTest, CustomDimensions) {
  auto topo = BuildGingkoExperiment(3, 10, MBps(5.0), Gbps(2.0));
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo->num_dcs(), 4);
  EXPECT_EQ(topo->num_servers(), 40);
}

TEST(TwoDcMicroTest, MatchesFig13bSetup) {
  auto topo = BuildTwoDcMicro();
  ASSERT_TRUE(topo.ok());
  EXPECT_EQ(topo->num_dcs(), 2);
  EXPECT_EQ(topo->num_servers(), 4);
  EXPECT_DOUBLE_EQ(topo->server(0).up_capacity, MBps(20.0));
}

}  // namespace
}  // namespace bds
