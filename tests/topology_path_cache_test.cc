#include "src/topology/path_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/topology/builders.h"
#include "src/topology/path.h"
#include "src/topology/routing.h"
#include "src/topology/topology.h"

namespace bds {
namespace {

void ExpectSamePaths(const std::vector<ServerPath>& got, const std::vector<ServerPath>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].src, want[i].src) << "path " << i;
    EXPECT_EQ(got[i].dst, want[i].dst) << "path " << i;
    EXPECT_EQ(got[i].links, want[i].links) << "path " << i;
    EXPECT_EQ(got[i].wan_route_index, want[i].wan_route_index) << "path " << i;
  }
}

TEST(ServerPathCacheTest, MatchesEnumerateServerPathsOnFullMesh) {
  auto topo = BuildFullMesh(4, 3, 10.0, 1.0, 1.0);
  ASSERT_TRUE(topo.ok());
  auto routing = WanRoutingTable::Build(*topo, 3);
  ASSERT_TRUE(routing.ok());

  ServerPathCache cache(&*topo, &*routing, 3);
  std::vector<ServerPath> got;
  for (ServerId src = 0; src < topo->num_servers(); ++src) {
    for (ServerId dst = 0; dst < topo->num_servers(); ++dst) {
      if (src == dst) {
        continue;
      }
      cache.EnsurePair(topo->server(src).dc, topo->server(dst).dc);
      cache.MaterializePaths(src, dst, &got);
      ExpectSamePaths(got, EnumerateServerPaths(*topo, *routing, src, dst));
    }
  }
}

TEST(ServerPathCacheTest, MatchesEnumerateOnGeoTopology) {
  GeoTopologyOptions opt;
  opt.num_dcs = 6;
  opt.servers_per_dc = 2;
  opt.seed = 7;
  auto topo = BuildGeoTopology(opt);
  ASSERT_TRUE(topo.ok());
  auto routing = WanRoutingTable::Build(*topo, 4);
  ASSERT_TRUE(routing.ok());

  ServerPathCache cache(&*topo, &*routing, 4);
  std::vector<ServerPath> got;
  for (ServerId src = 0; src < topo->num_servers(); ++src) {
    for (ServerId dst = 0; dst < topo->num_servers(); ++dst) {
      if (src == dst) {
        continue;
      }
      cache.EnsurePair(topo->server(src).dc, topo->server(dst).dc);
      cache.MaterializePaths(src, dst, &got);
      ExpectSamePaths(got, EnumerateServerPaths(*topo, *routing, src, dst));
    }
  }
}

TEST(ServerPathCacheTest, TruncatesToMaxRoutes) {
  // Full mesh of 3 DCs with k=3 yields a direct route plus detours; a cache
  // capped at 1 must keep only the primary route.
  auto topo = BuildFullMesh(3, 1, 10.0, 1.0, 1.0);
  ASSERT_TRUE(topo.ok());
  auto routing = WanRoutingTable::Build(*topo, 3);
  ASSERT_TRUE(routing.ok());
  ServerId s0 = topo->ServersIn(0)[0];
  ServerId s1 = topo->ServersIn(1)[0];
  auto full = EnumerateServerPaths(*topo, *routing, s0, s1);
  ASSERT_GT(full.size(), 1u);

  ServerPathCache cache(&*topo, &*routing, 1);
  cache.EnsurePair(0, 1);
  std::vector<ServerPath> got;
  cache.MaterializePaths(s0, s1, &got);
  full.resize(1);
  ExpectSamePaths(got, full);
}

TEST(ServerPathCacheTest, IntraDcPairs) {
  auto topo = BuildFullMesh(2, 3, 10.0, 1.0, 1.0);
  ASSERT_TRUE(topo.ok());
  auto routing = WanRoutingTable::Build(*topo, 2);
  ASSERT_TRUE(routing.ok());
  ServerPathCache cache(&*topo, &*routing, 2);
  const auto& servers = topo->ServersIn(0);
  cache.EnsurePair(0, 0);
  std::vector<ServerPath> got;
  cache.MaterializePaths(servers[0], servers[1], &got);
  ExpectSamePaths(got, EnumerateServerPaths(*topo, *routing, servers[0], servers[1]));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].wan_route_index, -1);
}

TEST(ServerPathCacheTest, MissesAccumulateOncePerPair) {
  auto topo = BuildFullMesh(3, 2, 10.0, 1.0, 1.0);
  ASSERT_TRUE(topo.ok());
  auto routing = WanRoutingTable::Build(*topo, 3);
  ASSERT_TRUE(routing.ok());
  ServerPathCache cache(&*topo, &*routing, 3);
  EXPECT_EQ(cache.misses(), 0);
  cache.EnsurePair(0, 1);
  EXPECT_EQ(cache.misses(), 1);
  cache.EnsurePair(0, 1);  // Hit: already built.
  EXPECT_EQ(cache.misses(), 1);
  cache.EnsurePair(1, 0);  // Opposite direction is a distinct pair.
  EXPECT_EQ(cache.misses(), 2);
}

TEST(ServerPathCacheTest, InvalidateDropsSkeletonsAndBumpsGeneration) {
  auto topo = BuildFullMesh(3, 2, 10.0, 1.0, 1.0);
  ASSERT_TRUE(topo.ok());
  auto routing = WanRoutingTable::Build(*topo, 3);
  ASSERT_TRUE(routing.ok());
  ServerPathCache cache(&*topo, &*routing, 3);
  cache.EnsurePair(0, 1);
  ASSERT_EQ(cache.generation(), 0);
  ASSERT_EQ(cache.misses(), 1);

  cache.Invalidate();
  EXPECT_EQ(cache.generation(), 1);
  // The pair must rebuild after invalidation...
  cache.EnsurePair(0, 1);
  EXPECT_EQ(cache.misses(), 2);
  // ...and still materialize correct paths.
  ServerId s0 = topo->ServersIn(0)[0];
  ServerId s1 = topo->ServersIn(1)[0];
  std::vector<ServerPath> got;
  cache.MaterializePaths(s0, s1, &got);
  ExpectSamePaths(got, EnumerateServerPaths(*topo, *routing, s0, s1));
}

TEST(ServerPathCacheTest, ReflectsRebuiltRoutingTableAfterInvalidate) {
  // Cache skeletons snapshot the routing table's route sets. Swap the table
  // the cache points at for one with fewer routes (as a rebuild after a link
  // fault would) and check Invalidate() is what makes the cache catch up.
  Topology topo;
  DcId a = topo.AddDatacenter("a");
  DcId b = topo.AddDatacenter("b");
  DcId c = topo.AddDatacenter("c");
  ASSERT_TRUE(topo.AddWanLink(a, b, 6.0).ok());
  ASSERT_TRUE(topo.AddWanLink(b, c, 3.0).ok());
  ASSERT_TRUE(topo.AddWanLink(a, c, 2.0).ok());
  ServerId sa = topo.AddServer(a, 10.0, 10.0).value();
  ServerId sc = topo.AddServer(c, 10.0, 10.0).value();

  auto routing = WanRoutingTable::Build(topo, 2);
  ASSERT_TRUE(routing.ok());
  ServerPathCache cache(&topo, &*routing, 2);
  cache.EnsurePair(a, c);
  std::vector<ServerPath> got;
  cache.MaterializePaths(sa, sc, &got);
  ASSERT_EQ(got.size(), 2u);  // Direct route plus the detour via b.

  auto rebuilt = WanRoutingTable::Build(topo, 1);
  ASSERT_TRUE(rebuilt.ok());
  *routing = *rebuilt;  // Route sets changed in place under the cache.
  cache.Invalidate();
  cache.EnsurePair(a, c);
  cache.MaterializePaths(sa, sc, &got);
  ASSERT_EQ(got.size(), 1u);
  ExpectSamePaths(got, EnumerateServerPaths(topo, *routing, sa, sc));
}

}  // namespace
}  // namespace bds
