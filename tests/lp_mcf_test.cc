#include "src/lp/mcf.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace bds {
namespace {

McfInstance SingleCommoditySingleLink() {
  McfInstance inst;
  inst.capacities = {10.0};
  McfCommodity c;
  c.paths.push_back({{0}});
  inst.commodities.push_back(c);
  return inst;
}

TEST(McfSimplexTest, SinglePathSaturatesLink) {
  auto inst = SingleCommoditySingleLink();
  McfResult r = SolveMcfSimplex(inst);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.total_flow, 10.0, 1e-9);
  EXPECT_NEAR(r.flow[0][0], 10.0, 1e-9);
}

TEST(McfSimplexTest, DemandCapsFlow) {
  auto inst = SingleCommoditySingleLink();
  inst.commodities[0].demand = 4.0;
  McfResult r = SolveMcfSimplex(inst);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.total_flow, 4.0, 1e-9);
}

TEST(McfSimplexTest, TwoDisjointPathsAdd) {
  McfInstance inst;
  inst.capacities = {3.0, 5.0};
  McfCommodity c;
  c.paths.push_back({{0}});
  c.paths.push_back({{1}});
  inst.commodities.push_back(c);
  McfResult r = SolveMcfSimplex(inst);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.total_flow, 8.0, 1e-9);
}

TEST(McfSimplexTest, SharedBottleneck) {
  // Two commodities share link 0 (cap 6); each also crosses a private link
  // (caps 10). Total flow = 6.
  McfInstance inst;
  inst.capacities = {6.0, 10.0, 10.0};
  McfCommodity c1;
  c1.paths.push_back({{0, 1}});
  McfCommodity c2;
  c2.paths.push_back({{0, 2}});
  inst.commodities.push_back(c1);
  inst.commodities.push_back(c2);
  McfResult r = SolveMcfSimplex(inst);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.total_flow, 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(MaxCapacityViolation(inst, r), 0.0);
}

TEST(McfSimplexTest, Figure3LikeInstance) {
  // Direct path (cap 2) and relay path (cap 3 bottleneck): max one-shot
  // throughput is 5 units/s — the basis for the 36 GB in ~7.2+store-forward
  // analysis in §2.2.
  McfInstance inst;
  inst.capacities = {2.0, 6.0, 3.0};
  McfCommodity c;
  c.paths.push_back({{0}});     // A->C direct
  c.paths.push_back({{1, 2}});  // A->b->C
  inst.commodities.push_back(c);
  McfResult r = SolveMcfSimplex(inst);
  ASSERT_TRUE(r.ok);
  EXPECT_NEAR(r.total_flow, 5.0, 1e-9);
}

TEST(McfFptasTest, MatchesExactOnSingleLink) {
  auto inst = SingleCommoditySingleLink();
  McfResult r = SolveMcfFptas(inst, 0.05);
  ASSERT_TRUE(r.ok);
  EXPECT_GE(r.total_flow, 10.0 * 0.93);
  EXPECT_LE(MaxCapacityViolation(inst, r), 1e-9);
}

TEST(McfFptasTest, RespectsDemand) {
  auto inst = SingleCommoditySingleLink();
  inst.commodities[0].demand = 4.0;
  McfResult r = SolveMcfFptas(inst, 0.05);
  ASSERT_TRUE(r.ok);
  EXPECT_LE(r.CommodityFlow(0), 4.0 + 1e-9);
  EXPECT_GE(r.total_flow, 4.0 * 0.9);
}

TEST(McfFptasTest, ZeroCapacityLinkCarriesNothing) {
  McfInstance inst;
  inst.capacities = {0.0, 5.0};
  McfCommodity c;
  c.paths.push_back({{0}});
  c.paths.push_back({{1}});
  inst.commodities.push_back(c);
  McfResult r = SolveMcfFptas(inst, 0.1);
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.flow[0][0], 0.0);
  EXPECT_GE(r.flow[0][1], 5.0 * 0.85);
}

TEST(McfFptasTest, ZeroDemandCommodityGetsNothing) {
  auto inst = SingleCommoditySingleLink();
  inst.commodities[0].demand = 0.0;
  McfResult r = SolveMcfFptas(inst, 0.1);
  ASSERT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.total_flow, 0.0);
}

TEST(McfFptasTest, EmptyInstance) {
  McfInstance inst;
  McfResult r = SolveMcfFptas(inst, 0.1);
  EXPECT_TRUE(r.ok);
  EXPECT_DOUBLE_EQ(r.total_flow, 0.0);
}

TEST(McfFptasTest, CommodityWithNoPaths) {
  McfInstance inst;
  inst.capacities = {5.0};
  inst.commodities.push_back(McfCommodity{});  // No paths at all.
  McfCommodity c;
  c.paths.push_back({{0}});
  inst.commodities.push_back(c);
  McfResult r = SolveMcfFptas(inst, 0.1);
  ASSERT_TRUE(r.ok);
  EXPECT_TRUE(r.flow[0].empty());
  EXPECT_GT(r.total_flow, 0.0);
}

// Property sweep: random instances — the FPTAS must be feasible and within
// (1 - 3*eps) of the simplex optimum.
class McfRandomComparisonTest : public ::testing::TestWithParam<int> {};

TEST_P(McfRandomComparisonTest, FptasNearOptimalAndFeasible) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  McfInstance inst;
  int num_links = static_cast<int>(rng.UniformInt(2, 10));
  for (int l = 0; l < num_links; ++l) {
    inst.capacities.push_back(rng.Uniform(1.0, 20.0));
  }
  int num_commodities = static_cast<int>(rng.UniformInt(1, 5));
  for (int c = 0; c < num_commodities; ++c) {
    McfCommodity com;
    if (rng.Bernoulli(0.5)) {
      com.demand = rng.Uniform(0.5, 15.0);
    }
    int num_paths = static_cast<int>(rng.UniformInt(1, 4));
    for (int p = 0; p < num_paths; ++p) {
      McfPath path;
      int len = static_cast<int>(rng.UniformInt(1, std::min(3, num_links)));
      auto picks = rng.SampleWithoutReplacement(num_links, len);
      for (int64_t l : picks) {
        path.links.push_back(static_cast<int>(l));
      }
      com.paths.push_back(std::move(path));
    }
    inst.commodities.push_back(std::move(com));
  }

  const double eps = 0.05;
  McfResult exact = SolveMcfSimplex(inst);
  ASSERT_TRUE(exact.ok);
  McfResult approx = SolveMcfFptas(inst, eps);
  ASSERT_TRUE(approx.ok);

  EXPECT_LE(MaxCapacityViolation(inst, approx), 1e-6);
  EXPECT_LE(approx.total_flow, exact.total_flow * (1.0 + 1e-6));
  EXPECT_GE(approx.total_flow, exact.total_flow * (1.0 - 3.0 * eps) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, McfRandomComparisonTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace bds
