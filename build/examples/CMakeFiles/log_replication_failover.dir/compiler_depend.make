# Empty compiler generated dependencies file for log_replication_failover.
# This may be replaced when dependencies are built.
