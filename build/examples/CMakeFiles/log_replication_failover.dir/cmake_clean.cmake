file(REMOVE_RECURSE
  "CMakeFiles/log_replication_failover.dir/log_replication_failover.cpp.o"
  "CMakeFiles/log_replication_failover.dir/log_replication_failover.cpp.o.d"
  "log_replication_failover"
  "log_replication_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_replication_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
