# Empty dependencies file for search_index_push.
# This may be replaced when dependencies are built.
