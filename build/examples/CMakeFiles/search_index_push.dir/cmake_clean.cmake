file(REMOVE_RECURSE
  "CMakeFiles/search_index_push.dir/search_index_push.cpp.o"
  "CMakeFiles/search_index_push.dir/search_index_push.cpp.o.d"
  "search_index_push"
  "search_index_push.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_index_push.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
