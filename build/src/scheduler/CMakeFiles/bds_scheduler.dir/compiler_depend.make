# Empty compiler generated dependencies file for bds_scheduler.
# This may be replaced when dependencies are built.
