file(REMOVE_RECURSE
  "libbds_scheduler.a"
)
