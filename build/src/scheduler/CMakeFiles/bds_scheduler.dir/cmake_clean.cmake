file(REMOVE_RECURSE
  "CMakeFiles/bds_scheduler.dir/bandwidth_separator.cc.o"
  "CMakeFiles/bds_scheduler.dir/bandwidth_separator.cc.o.d"
  "CMakeFiles/bds_scheduler.dir/controller_algorithm.cc.o"
  "CMakeFiles/bds_scheduler.dir/controller_algorithm.cc.o.d"
  "CMakeFiles/bds_scheduler.dir/replica_state.cc.o"
  "CMakeFiles/bds_scheduler.dir/replica_state.cc.o.d"
  "libbds_scheduler.a"
  "libbds_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bds_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
