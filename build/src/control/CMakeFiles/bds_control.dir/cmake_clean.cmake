file(REMOVE_RECURSE
  "CMakeFiles/bds_control.dir/controller.cc.o"
  "CMakeFiles/bds_control.dir/controller.cc.o.d"
  "CMakeFiles/bds_control.dir/monitors.cc.o"
  "CMakeFiles/bds_control.dir/monitors.cc.o.d"
  "CMakeFiles/bds_control.dir/replication.cc.o"
  "CMakeFiles/bds_control.dir/replication.cc.o.d"
  "libbds_control.a"
  "libbds_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bds_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
