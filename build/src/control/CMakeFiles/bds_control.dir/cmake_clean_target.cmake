file(REMOVE_RECURSE
  "libbds_control.a"
)
