# Empty compiler generated dependencies file for bds_control.
# This may be replaced when dependencies are built.
