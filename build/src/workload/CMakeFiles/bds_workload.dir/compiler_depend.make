# Empty compiler generated dependencies file for bds_workload.
# This may be replaced when dependencies are built.
