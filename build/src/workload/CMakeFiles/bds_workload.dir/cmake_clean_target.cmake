file(REMOVE_RECURSE
  "libbds_workload.a"
)
