file(REMOVE_RECURSE
  "CMakeFiles/bds_workload.dir/background_traffic.cc.o"
  "CMakeFiles/bds_workload.dir/background_traffic.cc.o.d"
  "CMakeFiles/bds_workload.dir/job.cc.o"
  "CMakeFiles/bds_workload.dir/job.cc.o.d"
  "CMakeFiles/bds_workload.dir/trace.cc.o"
  "CMakeFiles/bds_workload.dir/trace.cc.o.d"
  "CMakeFiles/bds_workload.dir/trace_generator.cc.o"
  "CMakeFiles/bds_workload.dir/trace_generator.cc.o.d"
  "libbds_workload.a"
  "libbds_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bds_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
