file(REMOVE_RECURSE
  "libbds_baselines.a"
)
