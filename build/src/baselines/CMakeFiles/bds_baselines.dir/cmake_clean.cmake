file(REMOVE_RECURSE
  "CMakeFiles/bds_baselines.dir/akamai.cc.o"
  "CMakeFiles/bds_baselines.dir/akamai.cc.o.d"
  "CMakeFiles/bds_baselines.dir/chain.cc.o"
  "CMakeFiles/bds_baselines.dir/chain.cc.o.d"
  "CMakeFiles/bds_baselines.dir/decentralized_engine.cc.o"
  "CMakeFiles/bds_baselines.dir/decentralized_engine.cc.o.d"
  "CMakeFiles/bds_baselines.dir/gingko.cc.o"
  "CMakeFiles/bds_baselines.dir/gingko.cc.o.d"
  "CMakeFiles/bds_baselines.dir/ideal.cc.o"
  "CMakeFiles/bds_baselines.dir/ideal.cc.o.d"
  "CMakeFiles/bds_baselines.dir/strategy.cc.o"
  "CMakeFiles/bds_baselines.dir/strategy.cc.o.d"
  "libbds_baselines.a"
  "libbds_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bds_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
