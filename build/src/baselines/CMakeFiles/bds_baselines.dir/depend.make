# Empty dependencies file for bds_baselines.
# This may be replaced when dependencies are built.
