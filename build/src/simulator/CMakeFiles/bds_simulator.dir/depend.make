# Empty dependencies file for bds_simulator.
# This may be replaced when dependencies are built.
