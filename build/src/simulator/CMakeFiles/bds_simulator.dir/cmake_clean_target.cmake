file(REMOVE_RECURSE
  "libbds_simulator.a"
)
