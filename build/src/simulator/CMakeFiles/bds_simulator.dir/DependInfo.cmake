
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simulator/bandwidth_allocator.cc" "src/simulator/CMakeFiles/bds_simulator.dir/bandwidth_allocator.cc.o" "gcc" "src/simulator/CMakeFiles/bds_simulator.dir/bandwidth_allocator.cc.o.d"
  "/root/repo/src/simulator/latency_model.cc" "src/simulator/CMakeFiles/bds_simulator.dir/latency_model.cc.o" "gcc" "src/simulator/CMakeFiles/bds_simulator.dir/latency_model.cc.o.d"
  "/root/repo/src/simulator/network_simulator.cc" "src/simulator/CMakeFiles/bds_simulator.dir/network_simulator.cc.o" "gcc" "src/simulator/CMakeFiles/bds_simulator.dir/network_simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/bds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/bds_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
