file(REMOVE_RECURSE
  "CMakeFiles/bds_simulator.dir/bandwidth_allocator.cc.o"
  "CMakeFiles/bds_simulator.dir/bandwidth_allocator.cc.o.d"
  "CMakeFiles/bds_simulator.dir/latency_model.cc.o"
  "CMakeFiles/bds_simulator.dir/latency_model.cc.o.d"
  "CMakeFiles/bds_simulator.dir/network_simulator.cc.o"
  "CMakeFiles/bds_simulator.dir/network_simulator.cc.o.d"
  "libbds_simulator.a"
  "libbds_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bds_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
