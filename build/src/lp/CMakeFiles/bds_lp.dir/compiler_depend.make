# Empty compiler generated dependencies file for bds_lp.
# This may be replaced when dependencies are built.
