file(REMOVE_RECURSE
  "CMakeFiles/bds_lp.dir/lp_problem.cc.o"
  "CMakeFiles/bds_lp.dir/lp_problem.cc.o.d"
  "CMakeFiles/bds_lp.dir/mcf.cc.o"
  "CMakeFiles/bds_lp.dir/mcf.cc.o.d"
  "CMakeFiles/bds_lp.dir/simplex.cc.o"
  "CMakeFiles/bds_lp.dir/simplex.cc.o.d"
  "libbds_lp.a"
  "libbds_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bds_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
