file(REMOVE_RECURSE
  "libbds_lp.a"
)
