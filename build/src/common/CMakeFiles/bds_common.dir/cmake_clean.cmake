file(REMOVE_RECURSE
  "CMakeFiles/bds_common.dir/flags.cc.o"
  "CMakeFiles/bds_common.dir/flags.cc.o.d"
  "CMakeFiles/bds_common.dir/logging.cc.o"
  "CMakeFiles/bds_common.dir/logging.cc.o.d"
  "CMakeFiles/bds_common.dir/rng.cc.o"
  "CMakeFiles/bds_common.dir/rng.cc.o.d"
  "CMakeFiles/bds_common.dir/stats.cc.o"
  "CMakeFiles/bds_common.dir/stats.cc.o.d"
  "CMakeFiles/bds_common.dir/status.cc.o"
  "CMakeFiles/bds_common.dir/status.cc.o.d"
  "CMakeFiles/bds_common.dir/table.cc.o"
  "CMakeFiles/bds_common.dir/table.cc.o.d"
  "libbds_common.a"
  "libbds_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bds_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
