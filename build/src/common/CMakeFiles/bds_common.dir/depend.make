# Empty dependencies file for bds_common.
# This may be replaced when dependencies are built.
