# Empty dependencies file for bds_topology.
# This may be replaced when dependencies are built.
