file(REMOVE_RECURSE
  "CMakeFiles/bds_topology.dir/builders.cc.o"
  "CMakeFiles/bds_topology.dir/builders.cc.o.d"
  "CMakeFiles/bds_topology.dir/path.cc.o"
  "CMakeFiles/bds_topology.dir/path.cc.o.d"
  "CMakeFiles/bds_topology.dir/routing.cc.o"
  "CMakeFiles/bds_topology.dir/routing.cc.o.d"
  "CMakeFiles/bds_topology.dir/topology.cc.o"
  "CMakeFiles/bds_topology.dir/topology.cc.o.d"
  "libbds_topology.a"
  "libbds_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bds_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
