file(REMOVE_RECURSE
  "libbds_topology.a"
)
