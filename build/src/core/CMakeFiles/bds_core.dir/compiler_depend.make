# Empty compiler generated dependencies file for bds_core.
# This may be replaced when dependencies are built.
