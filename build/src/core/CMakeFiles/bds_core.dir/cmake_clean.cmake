file(REMOVE_RECURSE
  "CMakeFiles/bds_core.dir/service.cc.o"
  "CMakeFiles/bds_core.dir/service.cc.o.d"
  "libbds_core.a"
  "libbds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
