# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_status_test[1]_include.cmake")
include("/root/repo/build/tests/common_rng_test[1]_include.cmake")
include("/root/repo/build/tests/common_stats_test[1]_include.cmake")
include("/root/repo/build/tests/common_table_flags_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/topology_routing_test[1]_include.cmake")
include("/root/repo/build/tests/topology_builders_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_allocator_test[1]_include.cmake")
include("/root/repo/build/tests/simulator_test[1]_include.cmake")
include("/root/repo/build/tests/lp_simplex_test[1]_include.cmake")
include("/root/repo/build/tests/lp_mcf_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_replica_state_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_algorithm_test[1]_include.cmake")
include("/root/repo/build/tests/core_service_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/control_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/decentralized_engine_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_test[1]_include.cmake")
