# Empty compiler generated dependencies file for topology_routing_test.
# This may be replaced when dependencies are built.
