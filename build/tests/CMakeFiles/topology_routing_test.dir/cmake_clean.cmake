file(REMOVE_RECURSE
  "CMakeFiles/topology_routing_test.dir/topology_routing_test.cc.o"
  "CMakeFiles/topology_routing_test.dir/topology_routing_test.cc.o.d"
  "topology_routing_test"
  "topology_routing_test.pdb"
  "topology_routing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_routing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
