file(REMOVE_RECURSE
  "CMakeFiles/scheduler_algorithm_test.dir/scheduler_algorithm_test.cc.o"
  "CMakeFiles/scheduler_algorithm_test.dir/scheduler_algorithm_test.cc.o.d"
  "scheduler_algorithm_test"
  "scheduler_algorithm_test.pdb"
  "scheduler_algorithm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
