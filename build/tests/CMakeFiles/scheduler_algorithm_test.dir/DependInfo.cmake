
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/scheduler_algorithm_test.cc" "tests/CMakeFiles/scheduler_algorithm_test.dir/scheduler_algorithm_test.cc.o" "gcc" "tests/CMakeFiles/scheduler_algorithm_test.dir/scheduler_algorithm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scheduler/CMakeFiles/bds_scheduler.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/bds_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bds_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/bds_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
