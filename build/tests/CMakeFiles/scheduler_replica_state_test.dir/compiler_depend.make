# Empty compiler generated dependencies file for scheduler_replica_state_test.
# This may be replaced when dependencies are built.
