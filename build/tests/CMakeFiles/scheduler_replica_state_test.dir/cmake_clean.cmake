file(REMOVE_RECURSE
  "CMakeFiles/scheduler_replica_state_test.dir/scheduler_replica_state_test.cc.o"
  "CMakeFiles/scheduler_replica_state_test.dir/scheduler_replica_state_test.cc.o.d"
  "scheduler_replica_state_test"
  "scheduler_replica_state_test.pdb"
  "scheduler_replica_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_replica_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
