file(REMOVE_RECURSE
  "CMakeFiles/decentralized_engine_test.dir/decentralized_engine_test.cc.o"
  "CMakeFiles/decentralized_engine_test.dir/decentralized_engine_test.cc.o.d"
  "decentralized_engine_test"
  "decentralized_engine_test.pdb"
  "decentralized_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decentralized_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
