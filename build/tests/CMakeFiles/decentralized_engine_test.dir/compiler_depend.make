# Empty compiler generated dependencies file for decentralized_engine_test.
# This may be replaced when dependencies are built.
