file(REMOVE_RECURSE
  "CMakeFiles/simulator_allocator_test.dir/simulator_allocator_test.cc.o"
  "CMakeFiles/simulator_allocator_test.dir/simulator_allocator_test.cc.o.d"
  "simulator_allocator_test"
  "simulator_allocator_test.pdb"
  "simulator_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
