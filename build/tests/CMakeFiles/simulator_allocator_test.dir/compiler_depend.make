# Empty compiler generated dependencies file for simulator_allocator_test.
# This may be replaced when dependencies are built.
