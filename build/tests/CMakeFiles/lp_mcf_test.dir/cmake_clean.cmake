file(REMOVE_RECURSE
  "CMakeFiles/lp_mcf_test.dir/lp_mcf_test.cc.o"
  "CMakeFiles/lp_mcf_test.dir/lp_mcf_test.cc.o.d"
  "lp_mcf_test"
  "lp_mcf_test.pdb"
  "lp_mcf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_mcf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
