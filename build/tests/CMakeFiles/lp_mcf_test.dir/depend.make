# Empty dependencies file for lp_mcf_test.
# This may be replaced when dependencies are built.
