# Empty dependencies file for topology_builders_test.
# This may be replaced when dependencies are built.
