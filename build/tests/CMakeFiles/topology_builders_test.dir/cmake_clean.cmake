file(REMOVE_RECURSE
  "CMakeFiles/topology_builders_test.dir/topology_builders_test.cc.o"
  "CMakeFiles/topology_builders_test.dir/topology_builders_test.cc.o.d"
  "topology_builders_test"
  "topology_builders_test.pdb"
  "topology_builders_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_builders_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
