# Empty dependencies file for bench_fig3_overlay_example.
# This may be replaced when dependencies are built.
