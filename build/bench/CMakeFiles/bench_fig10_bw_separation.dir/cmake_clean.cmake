file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_bw_separation.dir/bench_fig10_bw_separation.cc.o"
  "CMakeFiles/bench_fig10_bw_separation.dir/bench_fig10_bw_separation.cc.o.d"
  "bench_fig10_bw_separation"
  "bench_fig10_bw_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_bw_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
