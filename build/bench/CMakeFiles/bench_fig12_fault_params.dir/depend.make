# Empty dependencies file for bench_fig12_fault_params.
# This may be replaced when dependencies are built.
