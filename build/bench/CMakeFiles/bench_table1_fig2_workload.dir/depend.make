# Empty dependencies file for bench_table1_fig2_workload.
# This may be replaced when dependencies are built.
