file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_indepth.dir/bench_fig13_indepth.cc.o"
  "CMakeFiles/bench_fig13_indepth.dir/bench_fig13_indepth.cc.o.d"
  "bench_fig13_indepth"
  "bench_fig13_indepth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_indepth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
