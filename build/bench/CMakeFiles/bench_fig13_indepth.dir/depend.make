# Empty dependencies file for bench_fig13_indepth.
# This may be replaced when dependencies are built.
