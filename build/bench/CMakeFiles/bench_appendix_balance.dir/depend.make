# Empty dependencies file for bench_appendix_balance.
# This may be replaced when dependencies are built.
