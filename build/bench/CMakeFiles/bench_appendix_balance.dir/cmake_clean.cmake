file(REMOVE_RECURSE
  "CMakeFiles/bench_appendix_balance.dir/bench_appendix_balance.cc.o"
  "CMakeFiles/bench_appendix_balance.dir/bench_appendix_balance.cc.o.d"
  "bench_appendix_balance"
  "bench_appendix_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendix_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
