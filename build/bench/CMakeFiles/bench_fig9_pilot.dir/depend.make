# Empty dependencies file for bench_fig9_pilot.
# This may be replaced when dependencies are built.
