file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_pilot.dir/bench_fig9_pilot.cc.o"
  "CMakeFiles/bench_fig9_pilot.dir/bench_fig9_pilot.cc.o.d"
  "bench_fig9_pilot"
  "bench_fig9_pilot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_pilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
