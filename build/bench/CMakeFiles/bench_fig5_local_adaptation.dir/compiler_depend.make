# Empty compiler generated dependencies file for bench_fig5_local_adaptation.
# This may be replaced when dependencies are built.
