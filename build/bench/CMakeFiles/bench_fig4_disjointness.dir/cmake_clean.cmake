file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_disjointness.dir/bench_fig4_disjointness.cc.o"
  "CMakeFiles/bench_fig4_disjointness.dir/bench_fig4_disjointness.cc.o.d"
  "bench_fig4_disjointness"
  "bench_fig4_disjointness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_disjointness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
