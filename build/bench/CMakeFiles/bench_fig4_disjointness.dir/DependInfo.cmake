
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig4_disjointness.cc" "bench/CMakeFiles/bench_fig4_disjointness.dir/bench_fig4_disjointness.cc.o" "gcc" "bench/CMakeFiles/bench_fig4_disjointness.dir/bench_fig4_disjointness.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/bds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/control/CMakeFiles/bds_control.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/bds_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/bds_simulator.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduler/CMakeFiles/bds_scheduler.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/bds_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/bds_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/bds_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/bds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
