// Named rungs of the controller's graceful-degradation ladder.
//
// When the cycle-deadline watchdog (src/control/overload.h) decides a cycle
// can no longer finish inside cycle_length, it steps the controller down this
// ladder one rung at a time; each rung trades decision quality for cycle CPU:
//
//   kNormal          full algorithm, configured knobs.
//   kCachedPaths     route every subtask over its single best cached
//                    per-DC-pair path (no alternate-route exploration).
//   kCoarseEpsilon   additionally coarsen the FPTAS epsilon — fewer phases,
//                    a (1 - eps)-worse allocation.
//   kShedCandidates  additionally cap the deliveries selected per cycle, so
//                    the candidate build and the MCF stay small.
//   kExtendDecisions additionally skip scheduling + routing entirely;
//                    in-flight transfers keep their allocations (the §5.1
//                    non-blocking update extended for one more cycle).
//
// The enum lives in src/scheduler (not src/control) because the algorithm is
// what applies rungs 1-3; the watchdog that chooses the rung is control-side.

#ifndef BDS_SRC_SCHEDULER_DEGRADATION_H_
#define BDS_SRC_SCHEDULER_DEGRADATION_H_

namespace bds {

enum class DegradationRung : int {
  kNormal = 0,
  kCachedPaths = 1,
  kCoarseEpsilon = 2,
  kShedCandidates = 3,
  kExtendDecisions = 4,
};

inline constexpr int kNumDegradationRungs = 5;

inline const char* DegradationRungName(DegradationRung rung) {
  switch (rung) {
    case DegradationRung::kNormal:
      return "normal";
    case DegradationRung::kCachedPaths:
      return "cached_paths";
    case DegradationRung::kCoarseEpsilon:
      return "coarse_epsilon";
    case DegradationRung::kShedCandidates:
      return "shed_candidates";
    case DegradationRung::kExtendDecisions:
      return "extend_decisions";
  }
  return "unknown";
}

}  // namespace bds

#endif  // BDS_SRC_SCHEDULER_DEGRADATION_H_
