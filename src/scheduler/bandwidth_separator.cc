#include "src/scheduler/bandwidth_separator.h"

#include <algorithm>

#include "src/common/status.h"

namespace bds {

BandwidthSeparator::BandwidthSeparator(const Topology* topo, Options options)
    : topo_(topo), options_(options) {
  BDS_CHECK(topo != nullptr);
  BDS_CHECK(options_.safety_threshold > 0.0 && options_.safety_threshold <= 1.0);
}

std::vector<Rate> BandwidthSeparator::ResidualCapacities(
    const std::vector<Rate>& online_rates) const {
  std::vector<Rate> residual(static_cast<size_t>(topo_->num_links()), 0.0);
  for (LinkId l = 0; l < topo_->num_links(); ++l) {
    const Link& link = topo_->link(l);
    Rate online =
        static_cast<size_t>(l) < online_rates.size() ? online_rates[static_cast<size_t>(l)] : 0.0;
    if (link.type == LinkType::kWan) {
      Rate budget = link.capacity * options_.safety_threshold - online;
      if (options_.bulk_rate_cap > 0.0) {
        budget = std::min(budget, options_.bulk_rate_cap);
      }
      residual[static_cast<size_t>(l)] = std::max(0.0, budget);
    } else {
      residual[static_cast<size_t>(l)] = link.capacity;
    }
  }
  return residual;
}

}  // namespace bds
