#include "src/scheduler/bandwidth_separator.h"

#include <algorithm>

#include "src/common/status.h"

namespace bds {

BandwidthSeparator::BandwidthSeparator(const Topology* topo, Options options)
    : topo_(topo), options_(options) {
  BDS_CHECK(topo != nullptr);
  BDS_CHECK(options_.safety_threshold > 0.0 && options_.safety_threshold <= 1.0);
}

std::vector<Rate> BandwidthSeparator::ResidualCapacities(
    const std::vector<Rate>& online_rates) const {
  return ResidualCapacities(online_rates, {});
}

std::vector<Rate> BandwidthSeparator::ResidualCapacities(
    const std::vector<Rate>& online_rates, const std::vector<double>& fault_factors) const {
  std::vector<Rate> residual(static_cast<size_t>(topo_->num_links()), 0.0);
  for (LinkId l = 0; l < topo_->num_links(); ++l) {
    const Link& link = topo_->link(l);
    size_t i = static_cast<size_t>(l);
    Rate online = i < online_rates.size() ? online_rates[i] : 0.0;
    double factor = i < fault_factors.size() ? fault_factors[i] : 1.0;
    Rate usable = link.capacity * factor;
    if (link.type == LinkType::kWan) {
      Rate budget = usable * options_.safety_threshold - online;
      if (options_.bulk_rate_cap > 0.0) {
        budget = std::min(budget, options_.bulk_rate_cap);
      }
      residual[i] = std::max(0.0, budget);
    } else {
      residual[i] = usable;
    }
  }
  return residual;
}

}  // namespace bds
