// Dynamic bandwidth separation (§5.2).
//
// The Network Monitor reports the aggregate rate of latency-sensitive
// traffic per link; the separator computes the residual each link can give
// to bulk multicast while keeping total utilization at or below the safety
// threshold (80 % by default).

#ifndef BDS_SRC_SCHEDULER_BANDWIDTH_SEPARATOR_H_
#define BDS_SRC_SCHEDULER_BANDWIDTH_SEPARATOR_H_

#include <vector>

#include "src/common/types.h"
#include "src/topology/topology.h"

namespace bds {

class BandwidthSeparator {
 public:
  struct Options {
    // Max total utilization on any inter-DC link (bulk + online).
    double safety_threshold = 0.8;
    // Optional hard cap on bulk rate per WAN link (Fig 10 sets 10 GB/s);
    // <= 0 disables.
    Rate bulk_rate_cap = 0.0;
  };

  BandwidthSeparator(const Topology* topo, Options options);
  explicit BandwidthSeparator(const Topology* topo) : BandwidthSeparator(topo, Options{}) {}

  // Residual bulk capacity per link, given the observed online rates
  // (indexed by LinkId; missing/short vectors mean zero online traffic).
  // Server NIC links are not subject to the safety threshold (they carry no
  // latency-sensitive WAN traffic); WAN links get
  //   max(0, capacity * threshold - online_rate), capped by bulk_rate_cap.
  std::vector<Rate> ResidualCapacities(const std::vector<Rate>& online_rates) const;

  // Same, but with per-link fault factors (0 = down, 1 = healthy; from
  // NetworkSimulator::link_fault_factors): the safety threshold applies to
  // the *usable* capacity, so the LP routes around dead and degraded links.
  std::vector<Rate> ResidualCapacities(const std::vector<Rate>& online_rates,
                                       const std::vector<double>& fault_factors) const;

  const Options& options() const { return options_; }

 private:
  const Topology* topo_;
  Options options_;
};

}  // namespace bds

#endif  // BDS_SRC_SCHEDULER_BANDWIDTH_SEPARATOR_H_
