// Global view of block replica placement — the state the BDS controller
// pulls from agents every cycle (§5.1 step 1).
//
// Placement model: a job's file is sharded evenly across the servers of each
// DC — block b lives on server ShardIndex(job, b, dc, S) of every DC that
// stores a copy (the paper's pilot stores files "evenly across all these
// 640 servers").
// A destination DC is complete when all of its assigned servers received
// their shard blocks; any server that holds a block can act as an overlay
// relay source for it (store-and-forward).

#ifndef BDS_SRC_SCHEDULER_REPLICA_STATE_H_
#define BDS_SRC_SCHEDULER_REPLICA_STATE_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/topology/topology.h"
#include "src/workload/job.h"

namespace bds {

// Identity tag for cross-cycle caches keyed on a ReplicaState object. Every
// construction — including copy and move — mints a fresh process-unique id,
// and every assignment re-mints the target's id. A cache keyed by
// state_uid() can therefore only ever hit the exact object (and object
// lifetime) it was built against: the controller's stale fallback view is a
// *copy* of the live state and must never alias its cache entries.
class StateUid {
 public:
  StateUid() : value_(Next()) {}
  StateUid(const StateUid&) : value_(Next()) {}
  StateUid(StateUid&&) noexcept : value_(Next()) {}
  StateUid& operator=(const StateUid&) {
    value_ = Next();
    return *this;
  }
  StateUid& operator=(StateUid&&) noexcept {
    value_ = Next();
    return *this;
  }
  uint64_t value() const { return value_; }

 private:
  static uint64_t Next();
  uint64_t value_;
};

// Deterministic placement rule shared by every component that needs to know
// where a block lives: block `block` of `job` is stored on server index
// ShardIndex(...) within each DC that holds a copy. The hash scatters one
// server's shard across many holders in other DCs — matching real sharded
// storage, and the precondition for the hotspot effects of §2.3.
inline size_t ShardIndex(JobId job, int64_t block, DcId dc, size_t num_servers) {
  uint64_t h = static_cast<uint64_t>(block) * 0x9E3779B97F4A7C15ULL +
               static_cast<uint64_t>(job) * 0xC2B2AE3D27D4EB4FULL +
               static_cast<uint64_t>(dc) * 0x165667B19E3779F9ULL;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 32;
  return static_cast<size_t>(h % num_servers);
}

// One (job, block, destination DC) delivery still owed.
struct PendingDelivery {
  JobId job = kInvalidJob;
  int64_t block = -1;
  DcId dc = kInvalidDc;
  ServerId dest_server = kInvalidServer;  // Fixed by the sharding rule.
  int duplicates = 0;                     // Holders across the network now.
};

class ReplicaState {
 public:
  explicit ReplicaState(const Topology* topo);

  // Registers a job: source DC servers hold their shard blocks; all
  // destination DCs owe all blocks.
  Status AddJob(const MulticastJob& job);

  // Marks `server` as holding (job, block); updates DC presence and
  // outstanding-delivery bookkeeping. Idempotent.
  Status AddReplica(JobId job, int64_t block, ServerId server);

  // Removes a server from every holder set (server failure). Its assigned
  // deliveries become owed again unless another server in its DC holds the
  // block (with fixed sharding this reverts its undelivered shard blocks).
  void RemoveServer(ServerId server);

  // Brings a failed server back (agent restart, §5.3). It returns empty —
  // whatever it held was lost with the failure — and becomes eligible to
  // receive deliveries and act as a source again.
  void RestoreServer(ServerId server);

  bool ServerHasBlock(JobId job, int64_t block, ServerId server) const;
  bool DcHasBlock(JobId job, int64_t block, DcId dc) const;

  // Number of servers currently holding (job, block).
  int DuplicateCount(JobId job, int64_t block) const;

  // Servers holding (job, block), for source selection.
  const std::vector<ServerId>& Holders(JobId job, int64_t block) const;

  // The fixed destination server of (job, block) within `dc`.
  ServerId AssignedServer(JobId job, int64_t block, DcId dc) const;

  // All deliveries still owed, with current duplicate counts.
  std::vector<PendingDelivery> PendingDeliveries() const;
  int64_t num_pending() const { return pending_count_; }

  // Streams every owed delivery in exactly PendingDeliveries() order without
  // materializing the vector — at 10^6 outstanding blocks the copy alone is
  // tens of megabytes. `fn` receives the delivery by coordinates:
  //   fn(job_pos, job, block, dc_pos, dc, duplicates)
  // where job_pos indexes job_ids() and dc_pos indexes job.dest_dcs. The
  // coordinate triple (job_pos, block, dc_pos) is lexicographically
  // increasing across calls, so it doubles as a compact order-preserving
  // stand-in for the pending index; everything PendingDeliveries() reports
  // (dest_server, duplicates) is recomputable from it on demand.
  template <typename Fn>
  void ForEachOwed(Fn&& fn) const {
    for (size_t jp = 0; jp < job_ids_.size(); ++jp) {
      const JobInfo& info = jobs_.find(job_ids_[jp])->second;
      const std::vector<DcId>& dests = info.job.dest_dcs;
      for (int64_t b = 0; b < static_cast<int64_t>(info.blocks.size()); ++b) {
        const BlockInfo& bi = info.blocks[static_cast<size_t>(b)];
        if (bi.dc_owed == 0) {
          continue;
        }
        for (size_t dp = 0; dp < dests.size(); ++dp) {
          if ((bi.dc_owed & (uint64_t{1} << dests[dp])) != 0) {
            fn(jp, info.job, b, dp, dests[dp], static_cast<int>(bi.holders.size()));
          }
        }
      }
    }
  }

  // Range-restricted variants for the sharded candidate build: the owed
  // deliveries of job position `jp` whose block is in [block_begin,
  // block_end), in the same (block, dc_pos) order ForEachOwed visits them.
  // CountOwedInRange prices a range without visiting destinations (one
  // popcount per block), so the controller can carve the global candidate
  // array into exact per-shard slots and fill them in parallel.
  int64_t CountOwedInRange(size_t jp, int64_t block_begin, int64_t block_end) const {
    const JobInfo& info = jobs_.find(job_ids_[jp])->second;
    const int64_t end =
        std::min<int64_t>(block_end, static_cast<int64_t>(info.blocks.size()));
    int64_t count = 0;
    for (int64_t b = std::max<int64_t>(0, block_begin); b < end; ++b) {
      // dc_owed only ever holds destination-DC bits, so the popcount is the
      // number of dest positions ForEachOwed would visit for this block.
      count += std::popcount(info.blocks[static_cast<size_t>(b)].dc_owed);
    }
    return count;
  }

  template <typename Fn>
  void ForEachOwedInRange(size_t jp, int64_t block_begin, int64_t block_end, Fn&& fn) const {
    const JobInfo& info = jobs_.find(job_ids_[jp])->second;
    const std::vector<DcId>& dests = info.job.dest_dcs;
    const int64_t end =
        std::min<int64_t>(block_end, static_cast<int64_t>(info.blocks.size()));
    for (int64_t b = std::max<int64_t>(0, block_begin); b < end; ++b) {
      const BlockInfo& bi = info.blocks[static_cast<size_t>(b)];
      if (bi.dc_owed == 0) {
        continue;
      }
      for (size_t dp = 0; dp < dests.size(); ++dp) {
        if ((bi.dc_owed & (uint64_t{1} << dests[dp])) != 0) {
          fn(jp, info.job, b, dp, dests[dp], static_cast<int>(bi.holders.size()));
        }
      }
    }
  }

  bool JobComplete(JobId job) const;
  bool AllComplete() const { return pending_count_ == 0; }

  // Outstanding shard blocks a destination server still has to receive
  // (across all jobs). Used to record per-server completion times.
  int64_t OwedByServer(ServerId server) const;

  // Number of destination servers still owed at least one block.
  int64_t NumOwedServers() const;

  // Number of distinct live servers holding at least one block of any job —
  // the universe of possible transfer sources. The scheduler uses it to stop
  // selection as soon as every possible source's upload budget is spent.
  int64_t NumHolderServers() const { return static_cast<int64_t>(held_by_server_.size()); }

  // Whether `server` was removed by RemoveServer (agent failure). Failed
  // servers never hold blocks and cannot receive deliveries.
  bool ServerFailed(ServerId server) const { return failed_servers_.count(server) != 0; }

  // Whether any server is currently failed. The selection hot loop hoists
  // this so the common no-failures cycle skips the per-pop set lookup.
  bool AnyServerFailed() const { return !failed_servers_.empty(); }

  // Position-indexed cursor for the selection hot loop: one hash lookup at
  // construction, then O(1) per-block reads. Results are identical to
  // DuplicateCount()/Holders() for in-range blocks of a live job; the block
  // index must be valid (popped candidates always are — they came from the
  // owed stream). Invalidated by any mutation of the state.
  class JobCursor;
  JobCursor CursorAt(size_t jp) const;

  // Every destination server of every registered job.
  std::vector<ServerId> AllDestinationServers() const;

  const MulticastJob* FindJob(JobId job) const;
  const std::vector<JobId>& job_ids() const { return job_ids_; }

  // Blocks fetched into a DC whose flow source was the job's origin DC,
  // vs. total fetched — the Fig 13c "origin proportion" per destination
  // server. Recorded by NoteDelivery.
  struct ServerOriginStats {
    int64_t from_origin = 0;
    int64_t total = 0;
  };
  // Marks the delivery of (job, block) to dest_server from src_server, and
  // updates both the replica map and origin stats. A delivery of a block the
  // destination already holds (possible when the controller schedules from a
  // stale view) is counted as redundant and changes nothing — a block is
  // never credited twice.
  Status NoteDelivery(JobId job, int64_t block, ServerId src_server, ServerId dest_server);
  const std::unordered_map<ServerId, ServerOriginStats>& origin_stats() const {
    return origin_stats_;
  }

  // Owed deliveries cleared so far (monotone; a server failure re-owing a
  // delivered block does not retract past credits). With no server failures
  // this equals blocks x destination DCs per job when all jobs complete —
  // the soak test's no-double-credit invariant.
  int64_t total_credited() const { return credited_; }

  // NoteDelivery calls whose block the destination already held.
  int64_t redundant_deliveries() const { return redundant_deliveries_; }

  // Drops a fully-delivered job from the state so a long-running service
  // stays O(live work): holder bookkeeping is unwound, the job leaves
  // job_ids() (ForEachOwed stops visiting it — also a per-cycle time win,
  // since the candidate build streams every registered job), and credited_
  // keeps its monotone count. Rejects jobs that still owe deliveries — a
  // server failure can re-owe a previously complete job, in which case the
  // caller retries after it completes again.
  Status RetireJob(JobId job);

  int64_t retired_jobs() const { return retired_jobs_; }
  int64_t retired_blocks() const { return retired_blocks_; }
  int64_t num_live_jobs() const { return static_cast<int64_t>(job_ids_.size()); }

  // --- Cross-cycle dirty tracking (incremental candidate build) ---
  //
  // Blocks are grouped into fixed chunks of kDirtyChunkBlocks; every mutation
  // that can change what ForEachOwedInRange would report for a (job, chunk) —
  // job arrival, replica add (duplicate counts), owed-bit changes, server
  // failure — stamps that chunk with a fresh monotone epoch. A consumer
  // snapshots dirty_epoch() right after building; on the next build a chunk
  // is clean iff ChunkVersion(...) <= that snapshot. Job retirement does not
  // stamp anything: it only shifts the job *positions* of later jobs, which
  // the consumer patches directly.
  static constexpr int64_t kDirtyChunkBlocks = 64;
  uint64_t state_uid() const { return uid_.value(); }
  uint64_t dirty_epoch() const { return dirty_epoch_; }
  // Stamp of chunk `chunk` (blocks [chunk*kDirtyChunkBlocks, (chunk+1)*...))
  // of the job at position `jp` in job_ids().
  uint64_t ChunkVersion(size_t jp, int64_t chunk) const {
    const JobInfo& info = jobs_.find(job_ids_[jp])->second;
    return info.chunk_versions[static_cast<size_t>(chunk)];
  }

 private:
  // DC sets are 64-bit masks: BDS deployments span 10-30 DCs (the paper's
  // fleet), and AddJob rejects topologies beyond 64.
  struct BlockInfo {
    std::vector<ServerId> holders;
    uint64_t dc_present = 0;  // Bit d: some server in DC d holds the block.
    uint64_t dc_owed = 0;     // Bit d: destination DC d still waiting.
  };
  struct JobInfo {
    MulticastJob job;
    std::vector<BlockInfo> blocks;
    int64_t owed = 0;  // Outstanding (block, dc) deliveries.
    // One epoch stamp per kDirtyChunkBlocks-block chunk; see dirty_epoch().
    std::vector<uint64_t> chunk_versions;
  };

  JobInfo* Find(JobId job);
  const JobInfo* Find(JobId job) const;

  void StampChunk(JobInfo& info, int64_t block) {
    info.chunk_versions[static_cast<size_t>(block / kDirtyChunkBlocks)] = ++dirty_epoch_;
  }

  const Topology* topo_;
  std::unordered_map<JobId, JobInfo> jobs_;
  std::vector<JobId> job_ids_;
  std::unordered_set<ServerId> failed_servers_;
  std::unordered_map<ServerId, int64_t> owed_by_server_;
  std::unordered_map<ServerId, int64_t> held_by_server_;  // #(job, block) held.
  int64_t pending_count_ = 0;
  int64_t credited_ = 0;
  int64_t redundant_deliveries_ = 0;
  int64_t retired_jobs_ = 0;
  int64_t retired_blocks_ = 0;
  std::unordered_map<ServerId, ServerOriginStats> origin_stats_;
  StateUid uid_;
  uint64_t dirty_epoch_ = 0;
};

class ReplicaState::JobCursor {
 public:
  const MulticastJob& job() const { return info_->job; }
  int duplicate_count(int64_t block) const {
    return static_cast<int>(info_->blocks[static_cast<size_t>(block)].holders.size());
  }
  const std::vector<ServerId>& holders(int64_t block) const {
    return info_->blocks[static_cast<size_t>(block)].holders;
  }

 private:
  friend class ReplicaState;
  explicit JobCursor(const JobInfo* info) : info_(info) {}
  const JobInfo* info_;
};

inline ReplicaState::JobCursor ReplicaState::CursorAt(size_t jp) const {
  return JobCursor(&jobs_.find(job_ids_[jp])->second);
}

}  // namespace bds

#endif  // BDS_SRC_SCHEDULER_REPLICA_STATE_H_
