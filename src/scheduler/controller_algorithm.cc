#include "src/scheduler/controller_algorithm.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "src/common/status.h"
#include "src/lp/mcf.h"
#include "src/topology/path.h"

namespace bds {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

}  // namespace

ControllerAlgorithm::ControllerAlgorithm(const Topology* topo, const WanRoutingTable* routing,
                                         ControllerAlgorithmOptions options)
    : topo_(topo), routing_(routing), options_(options) {
  BDS_CHECK(topo != nullptr && routing != nullptr);
  BDS_CHECK(options_.cycle_length > 0.0);
  BDS_CHECK(options_.max_wan_routes >= 1);
  BDS_CHECK(options_.budget_fraction > 0.0 && options_.budget_fraction <= 1.0);
}

std::vector<ControllerAlgorithm::Selected> ControllerAlgorithm::ScheduleBlocks(
    const ReplicaState& state, const std::vector<Rate>& residual_capacities,
    const DeliveryKeySet& in_flight) {
  std::vector<PendingDelivery> pending = state.PendingDeliveries();

  if (options_.schedule_all) {
    // Joint formulation: every outstanding delivery goes to the solver.
    std::vector<Selected> all;
    all.reserve(pending.size());
    for (const PendingDelivery& p : pending) {
      if (p.dest_server == kInvalidServer || state.ServerFailed(p.dest_server) ||
          in_flight.count(DeliveryKey{p.job, p.block, p.dc}) != 0) {
        continue;
      }
      const MulticastJob* job = state.FindJob(p.job);
      BDS_CHECK(job != nullptr);
      DcId dest_dc = topo_->server(p.dest_server).dc;
      for (ServerId h : state.Holders(p.job, p.block)) {
        DcId src_dc = topo_->server(h).dc;
        if (h != p.dest_server && (src_dc == dest_dc || routing_->Reachable(src_dc, dest_dc))) {
          all.push_back(Selected{p, job->BlockSizeOf(p.block), h});
          break;
        }
      }
    }
    return all;
  }

  // Per-server byte budgets for this cycle (constraint (3) of §4.1): a
  // server can upload/download at most rate * Delta-T bytes per cycle, where
  // rate is the residual on its NIC link.
  auto link_residual = [&](LinkId l) {
    return static_cast<size_t>(l) < residual_capacities.size()
               ? residual_capacities[static_cast<size_t>(l)]
               : topo_->link(l).capacity;
  };
  std::unordered_map<ServerId, Bytes> up_budget;
  std::unordered_map<ServerId, Bytes> down_budget;
  auto up_left = [&](ServerId s) -> Bytes& {
    auto [it, inserted] = up_budget.try_emplace(s);
    if (inserted) {
      it->second =
          link_residual(topo_->server(s).uplink) * options_.cycle_length * options_.budget_fraction;
    }
    return it->second;
  };
  auto down_left = [&](ServerId s) -> Bytes& {
    auto [it, inserted] = down_budget.try_emplace(s);
    if (inserted) {
      it->second = link_residual(topo_->server(s).downlink) * options_.cycle_length *
                   options_.budget_fraction;
    }
    return it->second;
  };

  // Generalized rarest-first with *speculative* duplicate counting (the
  // controller's speculation of §5.1): scheduling a copy of block b raises
  // b's effective duplicate count immediately, so within one cycle BDS
  // spreads distinct blocks across destinations first and replicates the
  // same block to all m destinations only when budget remains. The extra
  // copies materialize next cycle as new overlay sources.
  struct Candidate {
    int eff_dup;
    uint64_t salt;  // Deterministic pseudo-random tie-break.
    size_t index;   // Into `pending`.
    bool operator>(const Candidate& o) const {
      if (eff_dup != o.eff_dup) {
        return eff_dup > o.eff_dup;
      }
      if (salt != o.salt) {
        return salt > o.salt;
      }
      return index > o.index;
    }
  };
  std::unordered_map<uint64_t, int> extra_dups;  // (job, block) -> copies scheduled now.
  auto block_key = [](JobId job, int64_t block) {
    return static_cast<uint64_t>(job) * 0x1000003 + static_cast<uint64_t>(block);
  };
  // The tie-break salt spreads equally-rare candidates across destination
  // DCs and blocks; ordering by pending index instead would aim every
  // first copy at the lowest-numbered DC and leave the others' downlinks
  // idle for the whole cycle.
  auto candidate_salt = [&](const PendingDelivery& p) {
    uint64_t h = block_key(p.job, p.block) * 0x9E3779B97F4A7C15ULL +
                 static_cast<uint64_t>(p.dc) * 0xC2B2AE3D27D4EB4FULL;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 32;
    return h;
  };
  std::vector<Candidate> initial;
  initial.reserve(pending.size());
  for (size_t i = 0; i < pending.size(); ++i) {
    switch (options_.policy) {
      case SchedulingPolicy::kRarestFirst:
        initial.push_back(Candidate{pending[i].duplicates, candidate_salt(pending[i]), i});
        break;
      case SchedulingPolicy::kRandom:
        // Ignore duplicates entirely: order is the pseudo-random salt.
        initial.push_back(Candidate{0, candidate_salt(pending[i]), i});
        break;
      case SchedulingPolicy::kSequential:
        // Naive order: pending index (job, block, dc).
        initial.push_back(Candidate{0, static_cast<uint64_t>(i), i});
        break;
    }
  }
  // O(P) heapify — at 10^6 outstanding blocks per-push heap building alone
  // would blow the paper's sub-second budget (Fig 11a).
  std::priority_queue<Candidate, std::vector<Candidate>, std::greater<Candidate>> heap(
      std::greater<Candidate>{}, std::move(initial));

  // Early-exit bookkeeping: once every owed destination server's download
  // budget is saturated, or selection stops making progress, the remaining
  // (possibly millions of) candidates cannot be scheduled this cycle.
  const int64_t owed_servers = state.NumOwedServers();
  std::unordered_set<ServerId> saturated_dests;
  int64_t failures_since_success = 0;
  const int64_t failure_patience =
      64 * static_cast<int64_t>(topo_->num_servers()) + 4096;

  std::vector<Selected> selected;
  while (!heap.empty()) {
    if (options_.max_deliveries_per_cycle > 0 &&
        static_cast<int64_t>(selected.size()) >= options_.max_deliveries_per_cycle) {
      break;
    }
    if (static_cast<int64_t>(saturated_dests.size()) >= owed_servers ||
        failures_since_success > failure_patience) {
      break;
    }
    Candidate c = heap.top();
    heap.pop();
    const PendingDelivery& p = pending[c.index];
    if (options_.policy == SchedulingPolicy::kRarestFirst) {
      int now_dup = p.duplicates + extra_dups[block_key(p.job, p.block)];
      if (now_dup > c.eff_dup) {
        c.eff_dup = now_dup;  // Stale: re-queue with the updated key.
        heap.push(c);
        continue;
      }
    }
    if (in_flight.count(DeliveryKey{p.job, p.block, p.dc}) != 0) {
      continue;
    }
    if (p.dest_server == kInvalidServer || state.ServerFailed(p.dest_server)) {
      continue;  // No live agent can receive this delivery right now.
    }
    const MulticastJob* job = state.FindJob(p.job);
    BDS_CHECK(job != nullptr);
    Bytes bytes = job->BlockSizeOf(p.block);

    // A block larger than a whole cycle budget may still be scheduled (it
    // simply spans cycles as an in-flight transfer), so the budget check is
    // "budget not yet exhausted", and charging may drive it negative.
    if (down_left(p.dest_server) <= 0.0) {
      saturated_dests.insert(p.dest_server);
      ++failures_since_success;
      continue;  // Destination NIC budget exhausted this cycle.
    }

    // Source selection: among the holders with enough upload budget left,
    // take the least-loaded one (largest remaining budget), breaking ties
    // pseudo-randomly so equal holders share the load — this global
    // balancing is what avoids the hotspots local adaptation creates
    // (§2.3 Limitation 1).
    const std::vector<ServerId>& holders = state.Holders(p.job, p.block);
    ServerId best_src = kInvalidServer;
    Bytes best_budget = 0.0;
    if (!holders.empty()) {
      uint64_t salt = block_key(p.job, p.block) * 0x9E3779B97F4A7C15ULL +
                      static_cast<uint64_t>(p.dc) * 0x85EBCA6B;
      size_t offset = static_cast<size_t>(salt % holders.size());
      DcId dest_dc = topo_->server(p.dest_server).dc;
      for (size_t i = 0; i < holders.size(); ++i) {
        ServerId h = holders[(i + offset) % holders.size()];
        if (h == p.dest_server) {
          continue;
        }
        DcId src_dc = topo_->server(h).dc;
        if (src_dc != dest_dc && !routing_->Reachable(src_dc, dest_dc)) {
          continue;  // No WAN route from this holder to the destination.
        }
        Bytes left = up_left(h);
        if (left > 0.0 && left > best_budget * (1.0 + 1e-9)) {
          best_budget = left;
          best_src = h;
        }
      }
    }
    if (best_src == kInvalidServer) {
      ++failures_since_success;
      continue;  // No holder can upload this block this cycle.
    }

    failures_since_success = 0;
    up_left(best_src) -= bytes;
    down_left(p.dest_server) -= bytes;
    ++extra_dups[block_key(p.job, p.block)];
    selected.push_back(Selected{p, bytes, best_src});
  }
  return selected;
}

void ControllerAlgorithm::RouteBlocks(std::vector<Selected> selected,
                                      const std::vector<Rate>& residual_capacities,
                                      CycleDecision& decision) {
  if (selected.empty()) {
    return;
  }

  // Merge deliveries into subtasks keyed by (src, dst) server pair (§5.1);
  // with merging disabled every delivery is its own commodity.
  struct Subtask {
    ServerId src;
    ServerId dst;
    JobId job;
    std::vector<int64_t> blocks;
    Bytes bytes = 0.0;
  };
  std::vector<Subtask> subtasks;
  if (options_.merge_subtasks) {
    std::map<std::tuple<ServerId, ServerId, JobId>, size_t> index;
    for (const Selected& s : selected) {
      auto key = std::make_tuple(s.src_server, s.delivery.dest_server, s.delivery.job);
      auto [it, inserted] = index.try_emplace(key, subtasks.size());
      if (inserted) {
        subtasks.push_back(
            Subtask{s.src_server, s.delivery.dest_server, s.delivery.job, {}, 0.0});
      }
      Subtask& st = subtasks[it->second];
      st.blocks.push_back(s.delivery.block);
      st.bytes += s.bytes;
    }
  } else {
    subtasks.reserve(selected.size());
    for (const Selected& s : selected) {
      subtasks.push_back(Subtask{s.src_server, s.delivery.dest_server, s.delivery.job,
                                 {s.delivery.block}, s.bytes});
    }
  }
  decision.merged_subtasks = static_cast<int64_t>(subtasks.size());

  // Build the path-based MCF: one commodity per subtask; demand is the rate
  // that finishes the subtask within the cycle.
  McfInstance instance;
  instance.capacities = residual_capacities;
  instance.capacities.resize(static_cast<size_t>(topo_->num_links()),
                             0.0);  // Defensive: full length.
  std::vector<std::vector<ServerPath>> subtask_paths(subtasks.size());
  for (size_t i = 0; i < subtasks.size(); ++i) {
    const Subtask& st = subtasks[i];
    McfCommodity commodity;
    commodity.demand = st.bytes / options_.cycle_length;
    std::vector<ServerPath> paths = EnumerateServerPaths(*topo_, *routing_, st.src, st.dst);
    if (static_cast<int>(paths.size()) > options_.max_wan_routes) {
      paths.resize(static_cast<size_t>(options_.max_wan_routes));
    }
    for (const ServerPath& p : paths) {
      McfPath mp;
      mp.links.reserve(p.links.size());
      for (LinkId l : p.links) {
        mp.links.push_back(static_cast<int>(l));
      }
      commodity.paths.push_back(std::move(mp));
    }
    subtask_paths[i] = std::move(paths);
    instance.commodities.push_back(std::move(commodity));
  }

  McfResult flows = options_.use_exact_lp ? SolveMcfSimplex(instance)
                                          : SolveMcfFptas(instance, options_.fptas_epsilon);
  if (!flows.ok) {
    return;  // No routing possible this cycle (e.g. LP hit iteration limit).
  }

  // Turn per-path flows into transfer assignments. Blocks are atomic, so a
  // subtask's blocks are split across its paths proportionally to the
  // allocated rates.
  for (size_t i = 0; i < subtasks.size(); ++i) {
    const Subtask& st = subtasks[i];
    const std::vector<ServerPath>& paths = subtask_paths[i];
    const std::vector<double>& path_flow = flows.flow[i];
    double total = 0.0;
    for (double f : path_flow) {
      total += f;
    }
    if (total <= kFluidEpsilon || paths.empty()) {
      continue;  // Nothing allocated; the delivery stays pending.
    }
    int64_t num_blocks = static_cast<int64_t>(st.blocks.size());
    // Provisional block counts per path, largest-rate path absorbs rounding.
    size_t largest = 0;
    std::vector<int64_t> counts(paths.size(), 0);
    int64_t assigned = 0;
    for (size_t p = 0; p < paths.size(); ++p) {
      if (path_flow[p] > path_flow[largest]) {
        largest = p;
      }
      counts[p] = static_cast<int64_t>(static_cast<double>(num_blocks) * path_flow[p] / total);
      assigned += counts[p];
    }
    counts[largest] += num_blocks - assigned;

    int64_t cursor = 0;
    double bytes_per_block = st.bytes / static_cast<double>(num_blocks);
    for (size_t p = 0; p < paths.size(); ++p) {
      if (counts[p] <= 0 || path_flow[p] <= kFluidEpsilon) {
        // Re-credit blocks that landed on a zero-rate path to the largest.
        if (counts[p] > 0 && p != largest) {
          counts[largest] += counts[p];
        }
        continue;
      }
      TransferAssignment t;
      t.job = st.job;
      t.blocks.assign(st.blocks.begin() + cursor, st.blocks.begin() + cursor + counts[p]);
      cursor += counts[p];
      t.bytes = bytes_per_block * static_cast<double>(counts[p]);
      t.src_server = st.src;
      t.dst_server = st.dst;
      t.path = paths[p];
      t.rate = path_flow[p];
      decision.transfers.push_back(std::move(t));
    }
  }
}

CycleDecision ControllerAlgorithm::Decide(int64_t cycle, const ReplicaState& state,
                                          const std::vector<Rate>& residual_capacities,
                                          const DeliveryKeySet& in_flight) {
  CycleDecision decision;
  decision.cycle = cycle;

  auto t0 = std::chrono::steady_clock::now();
  std::vector<Selected> selected = ScheduleBlocks(state, residual_capacities, in_flight);
  decision.scheduled_blocks = static_cast<int64_t>(selected.size());
  decision.scheduling_seconds = SecondsSince(t0);

  auto t1 = std::chrono::steady_clock::now();
  RouteBlocks(std::move(selected), residual_capacities, decision);
  decision.routing_seconds = SecondsSince(t1);
  return decision;
}

}  // namespace bds
