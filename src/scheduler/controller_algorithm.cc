#include "src/scheduler/controller_algorithm.h"

#include <algorithm>
#include <chrono>
#include <ctime>
#include <map>
#include <queue>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "src/common/status.h"
#include "src/lp/mcf.h"
#include "src/lp/mcf_shard.h"
#include "src/telemetry/telemetry.h"
#include "src/topology/path.h"

namespace bds {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

// Process CPU clock for the per-phase decision timings: unlike the wall
// timers above it charges worker-thread time too, so the bench's "cycle CPU
// under budget" acceptance can't be gamed by adding threads.
double ProcessCpuSeconds() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

ControllerAlgorithm::ControllerAlgorithm(const Topology* topo, const WanRoutingTable* routing,
                                         ControllerAlgorithmOptions options)
    : topo_(topo),
      routing_(routing),
      options_(options),
      path_cache_(topo, routing, options.max_wan_routes),
      pool_(options.num_threads) {
  BDS_CHECK(topo != nullptr && routing != nullptr);
  BDS_CHECK(options_.cycle_length > 0.0);
  BDS_CHECK(options_.max_wan_routes >= 1);
  BDS_CHECK(options_.budget_fraction > 0.0 && options_.budget_fraction <= 1.0);
  BDS_CHECK(options_.num_threads >= 1);
  BDS_CHECK(options_.num_shards >= 1);
}

std::vector<ControllerAlgorithm::Selected> ControllerAlgorithm::ScheduleBlocks(
    int64_t cycle, const ReplicaState& state, const std::vector<Rate>& residual_capacities,
    const DeliveryKeySet& in_flight, CycleDecision& decision) {
  if (options_.schedule_all) {
    // Joint formulation: every outstanding delivery goes to the solver.
    std::vector<PendingDelivery> pending = state.PendingDeliveries();
    std::vector<Selected> all;
    all.reserve(pending.size());
    for (const PendingDelivery& p : pending) {
      if (p.dest_server == kInvalidServer || state.ServerFailed(p.dest_server) ||
          in_flight.count(DeliveryKey{p.job, p.block, p.dc}) != 0) {
        continue;
      }
      const MulticastJob* job = state.FindJob(p.job);
      BDS_CHECK(job != nullptr);
      DcId dest_dc = topo_->server(p.dest_server).dc;
      for (ServerId h : state.Holders(p.job, p.block)) {
        DcId src_dc = topo_->server(h).dc;
        if (h != p.dest_server && (src_dc == dest_dc || routing_->Reachable(src_dc, dest_dc))) {
          all.push_back(Selected{p, job->BlockSizeOf(p.block), h});
          break;
        }
      }
    }
    return all;
  }

  // Per-server byte budgets for this cycle (constraint (3) of §4.1): a
  // server can upload/download at most rate * Delta-T bytes per cycle, where
  // rate is the residual on its NIC link.
  auto link_residual = [&](LinkId l) {
    return static_cast<size_t>(l) < residual_capacities.size()
               ? residual_capacities[static_cast<size_t>(l)]
               : topo_->link(l).capacity;
  };
  // Dense per-server budget arrays (lazily filled): the selection loop reads
  // budgets on every pop and for every holder, and hash-map lookups there
  // dominated the loop at the 10^5-block scale.
  const size_t num_servers = static_cast<size_t>(topo_->num_servers());
  std::vector<Bytes> up_budget(num_servers, 0.0);
  std::vector<Bytes> down_budget(num_servers, 0.0);
  std::vector<uint8_t> up_init(num_servers, 0);
  std::vector<uint8_t> down_init(num_servers, 0);
  auto up_left = [&](ServerId s) -> Bytes& {
    size_t i = static_cast<size_t>(s);
    if (!up_init[i]) {
      up_init[i] = 1;
      up_budget[i] =
          link_residual(topo_->server(s).uplink) * options_.cycle_length * options_.budget_fraction;
    }
    return up_budget[i];
  };
  auto down_left = [&](ServerId s) -> Bytes& {
    size_t i = static_cast<size_t>(s);
    if (!down_init[i]) {
      down_init[i] = 1;
      down_budget[i] = link_residual(topo_->server(s).downlink) * options_.cycle_length *
                       options_.budget_fraction;
    }
    return down_budget[i];
  };

  // Generalized rarest-first with *speculative* duplicate counting (the
  // controller's speculation of §5.1): scheduling a copy of block b raises
  // b's effective duplicate count immediately, so within one cycle BDS
  // spreads distinct blocks across destinations first and replicates the
  // same block to all m destinations only when budget remains. The extra
  // copies materialize next cycle as new overlay sources.
  // A candidate is 24 bytes: no PendingDelivery vector is materialized at
  // all. `key` packs the delivery's coordinates (job position, block,
  // dest-DC position) into bit fields that strictly increase in
  // PendingDeliveries() order, so ordering by (eff_dup, salt, key) compares
  // every pair exactly as the pre-optimization (eff_dup, salt,
  // pending_index) order did — same pop sequence, same decision — while the
  // popped delivery's remaining fields (dest server, duplicate count) are
  // recomputed on demand for the few thousand candidates that actually get
  // popped, instead of for the possible millions that never leave the queue.
  // (The Candidate struct itself lives in the header so the cross-cycle
  // cache can store slot arrays of it.)
  constexpr uint64_t kBlockMask = (uint64_t{1} << 42) - 1;
  auto pack_key = [](size_t jp, int64_t block, size_t dp) {
    return (static_cast<uint64_t>(jp) << 48) | (static_cast<uint64_t>(block) << 6) |
           static_cast<uint64_t>(dp);
  };
  BDS_CHECK_MSG(state.job_ids().size() < (size_t{1} << 16),
                "ScheduleBlocks: too many concurrent jobs for packed keys");
  // One hash lookup per job here buys O(1) per-pop access below: the pop
  // loop reads duplicate counts and holder lists for hundreds of thousands
  // of candidates per cycle, and per-pop jobs_ lookups dominated it.
  std::vector<ReplicaState::JobCursor> cursors;
  std::vector<const MulticastJob*> jobs_by_pos;
  cursors.reserve(state.job_ids().size());
  jobs_by_pos.reserve(state.job_ids().size());
  for (size_t jp = 0; jp < state.job_ids().size(); ++jp) {
    cursors.push_back(state.CursorAt(jp));
    const MulticastJob* job = &cursors.back().job();
    BDS_CHECK_MSG(job->num_blocks() <= static_cast<int64_t>(kBlockMask),
                  "ScheduleBlocks: job too large for packed keys");
    jobs_by_pos.push_back(job);  // dest_dcs fit 6 bits: at most 64 DCs total.
  }
  const bool any_failed = state.AnyServerFailed();
  std::unordered_map<uint64_t, int> extra_dups;  // (job, block) -> copies scheduled now.
  auto block_key = [](JobId job, int64_t block) {
    return static_cast<uint64_t>(job) * 0x1000003 + static_cast<uint64_t>(block);
  };
  // The tie-break salt spreads equally-rare candidates across destination
  // DCs and blocks; ordering by pending position instead would aim every
  // first copy at the lowest-numbered DC and leave the others' downlinks
  // idle for the whole cycle.
  auto candidate_salt = [&](JobId job, int64_t block, DcId dc) {
    uint64_t h = block_key(job, block) * 0x9E3779B97F4A7C15ULL +
                 static_cast<uint64_t>(dc) * 0xC2B2AE3D27D4EB4FULL;
    h ^= h >> 29;
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 32;
    return h;
  };
  const SchedulingPolicy policy = options_.policy;
  const int num_shards = options_.num_shards;
  // The candidate build touches every pending delivery (up to 10^7 at the
  // fleet scale). Three builders, byte-identical output:
  //  * Incremental (the default): the previous cycle's slot array is patched
  //    — clean (job, 64-block chunk) units are memcpy'd with their packed
  //    job position adjusted, and only units ReplicaState stamped dirty
  //    since the last build are re-priced and re-filled. Amortized cost is
  //    O(churn), not O(pending) (DESIGN.md §9.7).
  //  * Unsharded from-scratch: one streaming pass emits packed keys and
  //    duplicate counts in discovery order; the salt hashes — the
  //    arithmetic bulk — are either fused into the same pass (serial) or
  //    filled in by the pool over pre-sized slots (thread-count-invariant).
  //    kSequential's salt is the key itself: packed coordinates sort exactly
  //    like pending indices.
  //  * Sharded from-scratch (num_shards > 1): (job, block-chunk) units are
  //    priced with CountOwedInRange (one popcount per block, in parallel),
  //    prefix-summed into exact slots of the global array, and filled in
  //    parallel with ForEachOwedInRange + fused salts. Slots reproduce
  //    ForEachOwed order exactly, so the array — and everything downstream —
  //    is identical.
  CandVec& initial = cand_work_;
  initial.clear();
  if (options_.incremental_candidates) {
    CandidateCache& cache = cand_cache_;
    // The cache may only be patched forward when it describes the previous
    // cycle of this exact ReplicaState object under the same policy; any
    // mismatch (fresh state copy, skipped cycle, explicit invalidation)
    // degrades to an all-dirty build that refills it.
    const bool warm = cache.valid && cache.state_uid == state.state_uid() &&
                      cache.policy == policy && cycle == cache.last_cycle + 1;
    constexpr int64_t kUnitBlocks = ReplicaState::kDirtyChunkBlocks;
    // New unit list: one unit per (job, chunk), in ForEachOwed order.
    std::vector<CandidateUnit> units;
    {
      size_t total_units = 0;
      for (const MulticastJob* job : jobs_by_pos) {
        total_units += static_cast<size_t>((job->num_blocks() + kUnitBlocks - 1) / kUnitBlocks);
      }
      units.reserve(total_units);
    }
    for (size_t jp = 0; jp < jobs_by_pos.size(); ++jp) {
      const MulticastJob* job = jobs_by_pos[jp];
      const int64_t nblocks = job->num_blocks();
      for (int64_t b0 = 0; b0 < nblocks; b0 += kUnitBlocks) {
        CandidateUnit u;
        u.job = job->id;
        u.b0 = b0;
        u.jp = static_cast<uint32_t>(jp);
        units.push_back(u);
      }
    }
    // Old-unit lookup: a job's units are contiguous and chunk-aligned in
    // both lists, so old unit = (job's first old unit) + chunk index. Job
    // retirement only shifts positions — the fill pass patches the packed
    // jp bit field of reused slots directly.
    std::vector<int64_t> old_first(jobs_by_pos.size(), -1);
    if (warm) {
      std::unordered_map<JobId, int64_t> first_by_job;
      first_by_job.reserve(jobs_by_pos.size() * 2);
      for (size_t u = 0; u < cache.units.size(); ++u) {
        if (u == 0 || cache.units[u].job != cache.units[u - 1].job) {
          first_by_job.emplace(cache.units[u].job, static_cast<int64_t>(u));
        }
      }
      for (size_t jp = 0; jp < jobs_by_pos.size(); ++jp) {
        auto it = first_by_job.find(jobs_by_pos[jp]->id);
        if (it != first_by_job.end()) {
          old_first[jp] = it->second;
        }
      }
    }
    // Classify + price pass: clean units keep their cached count; dirty
    // units are re-priced with one popcount per block.
    const uint64_t seen = cache.seen_epoch;
    std::vector<int64_t> unit_count(units.size(), 0);
    std::vector<int64_t> unit_old(units.size(), -1);  // Old unit idx if clean.
    pool_.For(units.size(), [&](size_t begin, size_t end) {
      for (size_t u = begin; u < end; ++u) {
        const CandidateUnit& cu = units[u];
        const int64_t chunk = cu.b0 / kUnitBlocks;
        if (warm && old_first[cu.jp] >= 0) {
          const size_t oi = static_cast<size_t>(old_first[cu.jp] + chunk);
          if (oi < cache.units.size() && cache.units[oi].job == cu.job &&
              cache.units[oi].b0 == cu.b0 && state.ChunkVersion(cu.jp, chunk) <= seen) {
            unit_count[u] = cache.units[oi].count;
            unit_old[u] = static_cast<int64_t>(oi);
            continue;
          }
        }
        unit_count[u] = state.CountOwedInRange(cu.jp, cu.b0, cu.b0 + kUnitBlocks);
      }
    });
    int64_t units_reused = 0, slots_reused = 0;
    uint64_t total = 0;
    for (size_t u = 0; u < units.size(); ++u) {
      units[u].offset = total;
      units[u].count = static_cast<uint32_t>(unit_count[u]);
      total += static_cast<uint64_t>(unit_count[u]);
      if (unit_old[u] >= 0) {
        ++units_reused;
        slots_reused += unit_count[u];
      }
    }
    BDS_CHECK(total == static_cast<uint64_t>(state.num_pending()));
    // Fill pass into the double buffer: clean units are copied from the old
    // array with the packed jp field patched (kSequential's salt IS the
    // key, so it is re-derived); dirty units stream ForEachOwedInRange with
    // fused salts, exactly like the from-scratch builders.
    CandVec& out = cache.scratch;
    out.resize(static_cast<size_t>(total));
    pool_.ForWeighted(unit_count, [&](size_t begin, size_t end) {
      for (size_t u = begin; u < end; ++u) {
        const CandidateUnit& cu = units[u];
        if (unit_old[u] >= 0) {
          const CandidateUnit& old = cache.units[static_cast<size_t>(unit_old[u])];
          const Candidate* src = cache.slots.data() + old.offset;
          Candidate* dst = out.data() + cu.offset;
          std::copy(src, src + cu.count, dst);
          if (old.jp != cu.jp) {
            // Two's-complement delta: the jp field occupies the top 16 bits,
            // and the low 48 bits are unchanged, so adding the (possibly
            // negative) difference shifted into place never borrows across.
            const uint64_t jp_delta =
                (static_cast<uint64_t>(cu.jp) - static_cast<uint64_t>(old.jp)) << 48;
            for (uint32_t i = 0; i < cu.count; ++i) {
              dst[i].key += jp_delta;
              if (policy == SchedulingPolicy::kSequential) {
                dst[i].salt = dst[i].key;
              }
            }
          }
        } else {
          size_t w = static_cast<size_t>(cu.offset);
          state.ForEachOwedInRange(
              cu.jp, cu.b0, cu.b0 + kUnitBlocks,
              [&](size_t jp, const MulticastJob& job, int64_t block, size_t dp, DcId dc,
                  int dups) {
                const uint64_t key = pack_key(jp, block, dp);
                out[w++] = Candidate{
                    policy == SchedulingPolicy::kRarestFirst ? dups : 0,
                    policy == SchedulingPolicy::kSequential ? key
                                                            : candidate_salt(job.id, block, dc),
                    key};
              });
          BDS_CHECK(w == static_cast<size_t>(cu.offset) + cu.count);
        }
      }
    });
    std::swap(cache.slots, cache.scratch);
    cache.units = std::move(units);
    cache.valid = true;
    cache.state_uid = state.state_uid();
    cache.seen_epoch = state.dirty_epoch();
    cache.last_cycle = cycle;
    cache.policy = policy;
    if (options_.debug_verify_incremental) {
      // From-scratch reference stream, compared slot by slot.
      size_t idx = 0;
      bool match = true;
      state.ForEachOwed(
          [&](size_t jp, const MulticastJob& job, int64_t block, size_t dp, DcId dc, int dups) {
            const uint64_t key = pack_key(jp, block, dp);
            const Candidate ref{
                policy == SchedulingPolicy::kRarestFirst ? dups : 0,
                policy == SchedulingPolicy::kSequential ? key : candidate_salt(job.id, block, dc),
                key};
            const Candidate& got = cache.slots[idx++];
            if (got.eff_dup != ref.eff_dup || got.salt != ref.salt || got.key != ref.key) {
              match = false;
            }
          });
      BDS_CHECK_MSG(match && idx == static_cast<size_t>(total),
                    "incremental candidate build diverged from the from-scratch reference");
    }
    // The selection loop permutes its array, so it works on a copy and the
    // cache keeps the pristine slots for the next cycle's patch pass.
    initial.resize(static_cast<size_t>(total));
    pool_.For(initial.size(), [&](size_t begin, size_t end) {
      std::copy(cache.slots.begin() + static_cast<ptrdiff_t>(begin),
                cache.slots.begin() + static_cast<ptrdiff_t>(end),
                initial.begin() + static_cast<ptrdiff_t>(begin));
    });
    decision.cand_units_reused = units_reused;
    decision.cand_units_repriced = static_cast<int64_t>(cache.units.size()) - units_reused;
    decision.cand_slots_reused = slots_reused;
    decision.cand_slots_repriced = static_cast<int64_t>(total) - slots_reused;
    BDS_TELEMETRY_COUNT("scheduler.cand_units_reused", decision.cand_units_reused);
    BDS_TELEMETRY_COUNT("scheduler.cand_units_repriced", decision.cand_units_repriced);
    BDS_TELEMETRY_COUNT("scheduler.cand_slots_reused", decision.cand_slots_reused);
    BDS_TELEMETRY_COUNT("scheduler.cand_slots_repriced", decision.cand_slots_repriced);
  } else if (num_shards > 1) {
    struct BuildUnit {
      size_t jp = 0;
      int64_t b0 = 0, b1 = 0;
      size_t offset = 0;
    };
    constexpr int64_t kBuildChunk = int64_t{1} << 16;
    std::vector<BuildUnit> units;
    for (size_t jp = 0; jp < jobs_by_pos.size(); ++jp) {
      const int64_t nblocks = jobs_by_pos[jp]->num_blocks();
      for (int64_t b0 = 0; b0 < nblocks; b0 += kBuildChunk) {
        units.push_back(BuildUnit{jp, b0, std::min(nblocks, b0 + kBuildChunk), 0});
      }
    }
    std::vector<int64_t> unit_count(units.size(), 0);
    pool_.For(units.size(), [&](size_t begin, size_t end) {
      for (size_t u = begin; u < end; ++u) {
        unit_count[u] = state.CountOwedInRange(units[u].jp, units[u].b0, units[u].b1);
      }
    });
    size_t total = 0;
    for (size_t u = 0; u < units.size(); ++u) {
      units[u].offset = total;
      total += static_cast<size_t>(unit_count[u]);
    }
    BDS_CHECK(total == static_cast<size_t>(state.num_pending()));
    initial.resize(total);
    pool_.ForWeighted(unit_count, [&](size_t begin, size_t end) {
      for (size_t u = begin; u < end; ++u) {
        size_t w = units[u].offset;
        state.ForEachOwedInRange(
            units[u].jp, units[u].b0, units[u].b1,
            [&](size_t jp, const MulticastJob& job, int64_t block, size_t dp, DcId dc,
                int dups) {
              const uint64_t key = pack_key(jp, block, dp);
              initial[w++] = Candidate{
                  policy == SchedulingPolicy::kRarestFirst ? dups : 0,
                  policy == SchedulingPolicy::kSequential ? key
                                                          : candidate_salt(job.id, block, dc),
                  key};
            });
        BDS_CHECK(w == units[u].offset + static_cast<size_t>(unit_count[u]));
      }
    });
  } else {
    const bool parallel_salt =
        pool_.num_threads() > 1 && policy != SchedulingPolicy::kSequential;
    initial.reserve(static_cast<size_t>(state.num_pending()));
    state.ForEachOwed(
        [&](size_t jp, const MulticastJob& job, int64_t block, size_t dp, DcId dc, int dups) {
          const uint64_t key = pack_key(jp, block, dp);
          uint64_t salt = key;
          if (policy != SchedulingPolicy::kSequential) {
            salt = parallel_salt ? 0 : candidate_salt(job.id, block, dc);
          }
          initial.push_back(
              Candidate{policy == SchedulingPolicy::kRarestFirst ? dups : 0, salt, key});
        });
    if (parallel_salt) {
      pool_.For(initial.size(), [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          const uint64_t key = initial[i].key;
          const MulticastJob* job = jobs_by_pos[key >> 48];
          initial[i].salt =
              candidate_salt(job->id, static_cast<int64_t>((key >> 6) & kBlockMask),
                             job->dest_dcs[key & 63]);
        }
      });
    }
  }

  // Candidate queue. Pops always extract the global minimum of the remaining
  // candidates under the strict total order (eff_dup, salt, index) — indices
  // are unique, so the order has no ties and ANY correct implementation pops
  // the identical sequence. That is the whole parity argument for sharding
  // the queue: K per-shard queues over contiguous ranges of the array plus a
  // K-way merge at pop time still return the global minimum every time.
  // Implementations (selected by the early-exit knob and num_shards):
  //  * heap: O(P) heapify up front (never per-push insertion — at 10^6
  //    outstanding blocks that alone would blow Fig 11a's budget). With
  //    K > 1, one min-heap per shard range, heapified in parallel.
  //  * chunked (with the early-exit knob): nth_element carves the kChunk
  //    smallest candidates out of the shard's unsorted tail and sorts just
  //    those; stale re-pushes go to a small global side heap merged at pop
  //    time. Every tail element is >= every carved element of its shard, so
  //    min(shard run fronts, side top) is the global minimum. The early exit
  //    keeps the pop count in the thousands, so one carve per shard usually
  //    suffices. With K > 1 the initial carves run in parallel (each shard's
  //    carve touches only its own range); re-carves happen lazily in-pop.
  const bool chunked = options_.use_sched_early_exit;
  constexpr size_t kChunk = 16384;
  auto cand_less = [](const Candidate& a, const Candidate& b) { return b > a; };
  auto cand_greater = [](const Candidate& a, const Candidate& b) { return a > b; };
  struct ShardQueue {
    size_t begin = 0, end = 0;        // This shard's slice of cands.
    size_t run_pos = 0, run_end = 0;  // Chunked: sorted run.
    size_t tail = 0;                  // Chunked: unsorted remainder start.
    size_t heap_end = 0;              // Heap mode: min-heap over [begin, heap_end).
    size_t chunk = kChunk;            // Chunked: next carve size (doubles).
  };
  CandVec& cands = cand_work_;  // Alias: the build above filled it in place.
  std::vector<ShardQueue> shards;
  std::priority_queue<Candidate, CandVec, std::greater<Candidate>> side;
  // Legacy K == 1 heap mode keeps the single priority_queue path untouched.
  const bool shard_queues = chunked || num_shards > 1;
  auto carve = [&](ShardQueue& sh) {  // Pre: sh.tail < sh.end.
    const size_t k = std::min(sh.chunk, sh.end - sh.tail);
    // Each re-carve pays an nth_element pass over the shard's whole
    // unsorted tail, so the carve size doubles every time a shard's run is
    // exhausted: deep-popping cycles (fleet scale pops hundreds of
    // thousands) amortize to O(log) tail passes instead of one per kChunk.
    // Pop order is unaffected — every tail element is >= every carved
    // element regardless of where the carve boundary lands.
    sh.chunk *= 2;
    auto begin = cands.begin() + static_cast<ptrdiff_t>(sh.tail);
    auto shard_end = cands.begin() + static_cast<ptrdiff_t>(sh.end);
    std::nth_element(begin, begin + static_cast<ptrdiff_t>(k) - 1, shard_end, cand_less);
    std::sort(begin, begin + static_cast<ptrdiff_t>(k), cand_less);
    sh.run_pos = sh.tail;
    sh.run_end = sh.tail + k;
    sh.tail = sh.run_end;
  };
  if (shard_queues) {
    const size_t n = cands.size();
    const size_t S = static_cast<size_t>(num_shards);
    shards.resize(S);
    for (size_t s = 0; s < S; ++s) {
      ShardQueue& sh = shards[s];
      sh.begin = n * s / S;
      sh.end = n * (s + 1) / S;
      sh.run_pos = sh.run_end = sh.tail = sh.begin;
      sh.heap_end = sh.end;
    }
    if (!chunked) {
      pool_.For(S, [&](size_t b, size_t e) {
        for (size_t s = b; s < e; ++s) {
          std::make_heap(cands.begin() + static_cast<ptrdiff_t>(shards[s].begin),
                         cands.begin() + static_cast<ptrdiff_t>(shards[s].end), cand_greater);
        }
      });
    } else if (S > 1) {
      pool_.For(S, [&](size_t b, size_t e) {
        for (size_t s = b; s < e; ++s) {
          if (shards[s].tail < shards[s].end) {
            carve(shards[s]);
          }
        }
      });
    }
  } else {
    // Heap mode takes ownership of the working array; the next cycle's
    // build simply re-grows the moved-from member.
    side = std::priority_queue<Candidate, CandVec, std::greater<Candidate>>(
        std::greater<Candidate>{}, std::move(cand_work_));
  }
  auto queue_empty = [&] {
    if (!side.empty()) {
      return false;
    }
    for (const ShardQueue& sh : shards) {
      if (chunked ? (sh.run_pos < sh.run_end || sh.tail < sh.end) : (sh.begin < sh.heap_end)) {
        return false;
      }
    }
    return true;
  };
  auto queue_pop = [&]() -> Candidate {
    const Candidate* best = nullptr;
    size_t best_s = 0;
    for (size_t s = 0; s < shards.size(); ++s) {
      ShardQueue& sh = shards[s];
      if (chunked) {
        if (sh.run_pos == sh.run_end) {
          if (sh.tail >= sh.end) {
            continue;
          }
          carve(sh);
        }
        const Candidate& front = cands[sh.run_pos];
        if (best == nullptr || *best > front) {
          best = &front;
          best_s = s;
        }
      } else {
        if (sh.begin >= sh.heap_end) {
          continue;
        }
        const Candidate& front = cands[sh.begin];
        if (best == nullptr || *best > front) {
          best = &front;
          best_s = s;
        }
      }
    }
    if (best != nullptr && (side.empty() || side.top() > *best)) {
      ShardQueue& sh = shards[best_s];
      if (chunked) {
        return cands[sh.run_pos++];
      }
      std::pop_heap(cands.begin() + static_cast<ptrdiff_t>(sh.begin),
                    cands.begin() + static_cast<ptrdiff_t>(sh.heap_end), cand_greater);
      return cands[--sh.heap_end];
    }
    Candidate c = side.top();
    side.pop();
    return c;
  };
  auto queue_push = [&](const Candidate& c) { side.push(c); };

  // Early-exit bookkeeping: once every owed destination server's download
  // budget is saturated, every possible source server's upload budget is
  // spent, or selection stops making progress, the remaining (possibly
  // millions of) candidates cannot be scheduled this cycle. The source-side
  // exit is exact, not heuristic: budgets only ever decrease within a cycle,
  // every transfer source is by definition a holder of some block, and
  // `holder_universe` counts exactly the servers holding any block — so once
  // that many distinct servers have been seen with an empty upload budget,
  // every future pop would fail its source scan, and breaking cannot change
  // the decision. Without this exit the loop pays the full failure_patience
  // tail (tens of thousands of pops) every time budgets run out before
  // candidates do, which is the common case at the Fig 11a scale.
  const int64_t owed_servers = state.NumOwedServers();
  const int64_t holder_universe = state.NumHolderServers();
  std::unordered_set<ServerId> saturated_dests;
  std::vector<uint8_t> src_exhausted(num_servers, 0);
  int64_t num_src_exhausted = 0;
  auto note_src_exhausted = [&](ServerId s) {
    uint8_t& seen = src_exhausted[static_cast<size_t>(s)];
    if (!seen) {
      seen = 1;
      ++num_src_exhausted;
    }
  };
  int64_t failures_since_success = 0;
  const int64_t failure_patience =
      64 * static_cast<int64_t>(topo_->num_servers()) + 4096;

  // Hot loop: accumulate into plain locals, publish to the registry once at
  // the end (so the disabled cost stays one branch per *call*, not per pop).
  int64_t pops = 0;
  int64_t stale_requeues = 0;
  bool early_exit = false;

  // Effective per-cycle selection cap: the configured cap, tightened to
  // shed_deliveries_cap when the degradation ladder reached kShedCandidates.
  int64_t max_deliveries = options_.max_deliveries_per_cycle;
  if (rung_ >= DegradationRung::kShedCandidates && options_.shed_deliveries_cap > 0) {
    max_deliveries = max_deliveries > 0
                         ? std::min(max_deliveries, options_.shed_deliveries_cap)
                         : options_.shed_deliveries_cap;
  }

  std::vector<Selected> selected;
  while (!queue_empty()) {
    if (max_deliveries > 0 && static_cast<int64_t>(selected.size()) >= max_deliveries) {
      break;
    }
    if (static_cast<int64_t>(saturated_dests.size()) >= owed_servers ||
        (options_.use_sched_early_exit && num_src_exhausted >= holder_universe) ||
        failures_since_success > failure_patience) {
      early_exit = true;
      break;
    }
    Candidate c = queue_pop();
    ++pops;
    // Unpack the delivery's coordinates; dest server and duplicate count are
    // recomputed here, for popped candidates only (AssignedServer is a pure
    // function of the coordinates, and holder sets don't change mid-cycle).
    const size_t jpos = static_cast<size_t>(c.key >> 48);
    const MulticastJob* job = jobs_by_pos[jpos];
    PendingDelivery p;
    p.job = job->id;
    p.block = static_cast<int64_t>((c.key >> 6) & kBlockMask);
    p.dc = job->dest_dcs[c.key & 63];
    p.dest_server = state.AssignedServer(p.job, p.block, p.dc);
    p.duplicates = cursors[jpos].duplicate_count(p.block);
    // One hash per candidate: the same (job, block) key drives the staleness
    // check, the holder-offset salt, and the speculative duplicate credit.
    // Read-only lookup here — most candidates are popped once and rejected,
    // and inserting a zero entry for each of them (up to 10^6) would turn
    // the map into the selection loop's dominant cost.
    const uint64_t bkey = block_key(p.job, p.block);
    const auto dups_it = extra_dups.find(bkey);
    const int dups = dups_it != extra_dups.end() ? dups_it->second : 0;
    if (options_.policy == SchedulingPolicy::kRarestFirst) {
      int now_dup = p.duplicates + dups;
      if (now_dup > c.eff_dup) {
        c.eff_dup = now_dup;  // Stale: re-queue with the updated key.
        queue_push(c);
        ++stale_requeues;
        continue;
      }
    }
    if (!in_flight.empty() && in_flight.count(DeliveryKey{p.job, p.block, p.dc}) != 0) {
      continue;
    }
    if (p.dest_server == kInvalidServer || (any_failed && state.ServerFailed(p.dest_server))) {
      continue;  // No live agent can receive this delivery right now.
    }
    Bytes bytes = job->BlockSizeOf(p.block);

    // A block larger than a whole cycle budget may still be scheduled (it
    // simply spans cycles as an in-flight transfer), so the budget check is
    // "budget not yet exhausted", and charging may drive it negative.
    // References into the budget maps stay valid across later inserts, so
    // the charge below reuses this lookup instead of hashing again.
    Bytes& dest_down_left = down_left(p.dest_server);
    if (dest_down_left <= 0.0) {
      saturated_dests.insert(p.dest_server);
      ++failures_since_success;
      continue;  // Destination NIC budget exhausted this cycle.
    }

    // Source selection: among the holders with enough upload budget left,
    // take the least-loaded one (largest remaining budget), breaking ties
    // pseudo-randomly so equal holders share the load — this global
    // balancing is what avoids the hotspots local adaptation creates
    // (§2.3 Limitation 1).
    const std::vector<ServerId>& holders = cursors[jpos].holders(p.block);
    ServerId best_src = kInvalidServer;
    Bytes* best_left = nullptr;
    Bytes best_budget = 0.0;
    if (!holders.empty()) {
      uint64_t salt = bkey * 0x9E3779B97F4A7C15ULL + static_cast<uint64_t>(p.dc) * 0x85EBCA6B;
      size_t offset = static_cast<size_t>(salt % holders.size());
      DcId dest_dc = topo_->server(p.dest_server).dc;
      for (size_t i = 0; i < holders.size(); ++i) {
        ServerId h = holders[(i + offset) % holders.size()];
        if (h == p.dest_server) {
          continue;
        }
        DcId src_dc = topo_->server(h).dc;
        if (src_dc != dest_dc && !routing_->Reachable(src_dc, dest_dc)) {
          continue;  // No WAN route from this holder to the destination.
        }
        Bytes& left = up_left(h);
        if (left > 0.0 && left > best_budget * (1.0 + 1e-9)) {
          best_budget = left;
          best_src = h;
          best_left = &left;
        } else if (left <= 0.0) {
          note_src_exhausted(h);
        }
      }
    }
    if (best_src == kInvalidServer) {
      ++failures_since_success;
      continue;  // No holder can upload this block this cycle.
    }

    failures_since_success = 0;
    *best_left -= bytes;
    if (*best_left <= 0.0) {
      note_src_exhausted(best_src);
    }
    dest_down_left -= bytes;
    ++extra_dups[bkey];  // Insert-on-accept keeps the map at O(selected).
    selected.push_back(Selected{p, bytes, best_src});
  }
  BDS_TELEMETRY_COUNT("scheduler.candidate_pops", pops);
  BDS_TELEMETRY_COUNT("scheduler.stale_requeues", stale_requeues);
  BDS_TELEMETRY_COUNT("scheduler.early_exits", early_exit ? 1 : 0);
  BDS_TELEMETRY_COUNT("scheduler.blocks_selected", static_cast<int64_t>(selected.size()));
  return selected;
}

void ControllerAlgorithm::RouteBlocks(int64_t cycle, std::vector<Selected> selected,
                                      const std::vector<Rate>& residual_capacities,
                                      CycleDecision& decision) {
  if (selected.empty()) {
    return;
  }
  const double route_cpu0 = ProcessCpuSeconds();

  // Merge deliveries into subtasks keyed by (src, dst) server pair (§5.1);
  // with merging disabled every delivery is its own commodity.
  struct Subtask {
    ServerId src;
    ServerId dst;
    JobId job;
    std::vector<int64_t> blocks;
    Bytes bytes = 0.0;
  };
  std::vector<Subtask> subtasks;
  if (options_.merge_subtasks) {
    std::map<std::tuple<ServerId, ServerId, JobId>, size_t> index;
    for (const Selected& s : selected) {
      auto key = std::make_tuple(s.src_server, s.delivery.dest_server, s.delivery.job);
      auto [it, inserted] = index.try_emplace(key, subtasks.size());
      if (inserted) {
        subtasks.push_back(
            Subtask{s.src_server, s.delivery.dest_server, s.delivery.job, {}, 0.0});
      }
      Subtask& st = subtasks[it->second];
      st.blocks.push_back(s.delivery.block);
      st.bytes += s.bytes;
    }
  } else {
    subtasks.reserve(selected.size());
    for (const Selected& s : selected) {
      subtasks.push_back(Subtask{s.src_server, s.delivery.dest_server, s.delivery.job,
                                 {s.delivery.block}, s.bytes});
    }
  }
  decision.merged_subtasks = static_cast<int64_t>(subtasks.size());
  const size_t num_subtasks = subtasks.size();
  BDS_TELEMETRY_COUNT("scheduler.route_subtasks", decision.merged_subtasks);

  // Build the path-based MCF: one commodity per subtask; demand is the rate
  // that finishes the subtask within the cycle. The instance and the path
  // buffers are members reused across cycles — per-cycle allocation churn on
  // thousands of small vectors is measurable at the Fig 11a scale.
  McfInstance& instance = mcf_instance_;
  instance.capacities.assign(residual_capacities.begin(), residual_capacities.end());
  instance.capacities.resize(static_cast<size_t>(topo_->num_links()),
                             0.0);  // Defensive: full length.
  instance.commodities.resize(num_subtasks);
  subtask_paths_.resize(num_subtasks);

  // Degradation rung kCachedPaths and above: route every subtask over its
  // single best cached per-DC-pair path — no alternate-route exploration,
  // and the cache is used even in the enumerate-per-subtask ablation mode.
  const bool use_path_cache =
      options_.use_path_cache || rung_ >= DegradationRung::kCachedPaths;
  const int route_cap =
      rung_ >= DegradationRung::kCachedPaths ? 1 : options_.max_wan_routes;

  if (use_path_cache) {
    // Serial pre-pass so the parallel materialization below only performs
    // read-only cache lookups.
    for (const Subtask& st : subtasks) {
      path_cache_.EnsurePair(topo_->server(st.src).dc, topo_->server(st.dst).dc);
    }
  }

  // Per-subtask path materialization and commodity build: independent work
  // writing to pre-sized slots.
  pool_.For(num_subtasks, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const Subtask& st = subtasks[i];
      std::vector<ServerPath>& paths = subtask_paths_[i];
      if (use_path_cache) {
        path_cache_.MaterializePaths(st.src, st.dst, &paths);
      } else {
        paths = EnumerateServerPaths(*topo_, *routing_, st.src, st.dst);
      }
      if (static_cast<int>(paths.size()) > route_cap) {
        paths.resize(static_cast<size_t>(route_cap));
      }
      McfCommodity& commodity = instance.commodities[i];
      commodity.demand = st.bytes / options_.cycle_length;
      commodity.paths.resize(paths.size());
      for (size_t p = 0; p < paths.size(); ++p) {
        std::vector<int>& links = commodity.paths[p].links;
        links.clear();
        links.reserve(paths[p].links.size());
        for (LinkId l : paths[p].links) {
          links.push_back(static_cast<int>(l));
        }
      }
    }
  });

  // Solver dispatch. The sharded solver requires the incremental FPTAS (it
  // is that solver's push loop run per link-disjoint group) — exact-LP and
  // reference-FPTAS runs ignore num_shards. Rung kCoarseEpsilon and above
  // trades routing precision for running time by coarsening epsilon.
  const double fptas_epsilon =
      rung_ >= DegradationRung::kCoarseEpsilon
          ? std::min(0.5, options_.fptas_epsilon * options_.degraded_epsilon_factor)
          : options_.fptas_epsilon;

  // FPTAS warm start (DESIGN.md §9.7): seed each commodity from the
  // previous cycle's converged flow split for its (source DC, destination
  // DC, job) key, scaled to the commodity's own demand. Valid only for the
  // immediately following cycle with an unchanged path set (the cache's
  // invalidation generation — link faults bump it via InvalidatePathCache)
  // and unchanged effective epsilon / route cap (covers degradation-rung
  // moves). A commodity whose path count differs from its key's simply gets
  // no seed.
  const bool fptas_path = !options_.use_exact_lp && options_.use_incremental_fptas;
  McfWarmSeed warm_seed;
  McfWarmInfo warm_info;
  const McfWarmSeed* warm_ptr = nullptr;
  if (fptas_path && options_.warm_start) {
    const RouteWarmCache& rc = route_warm_;
    if (rc.valid && cycle == rc.last_cycle + 1 &&
        rc.path_cache_invalidations == path_cache_.stats().invalidations &&
        rc.epsilon == fptas_epsilon && rc.route_cap == route_cap) {
      warm_seed.flows.resize(num_subtasks);
      bool any = false;
      for (size_t i = 0; i < num_subtasks; ++i) {
        const Subtask& st = subtasks[i];
        auto it = rc.flows.find(std::make_tuple(topo_->server(st.src).dc,
                                                topo_->server(st.dst).dc, st.job));
        if (it == rc.flows.end() ||
            it->second.size() != instance.commodities[i].paths.size()) {
          continue;
        }
        double sum = 0.0;
        for (double v : it->second) {
          sum += v;
        }
        if (sum <= 0.0) {
          continue;
        }
        const double scale = instance.commodities[i].demand / sum;
        std::vector<double>& seed = warm_seed.flows[i];
        seed.resize(it->second.size());
        for (size_t p = 0; p < seed.size(); ++p) {
          seed[p] = it->second[p] * scale;
        }
        any = true;
      }
      if (any) {
        warm_ptr = &warm_seed;
      }
    }
  }

  McfShardStats shard_stats;
  McfResult flows;
  if (options_.use_exact_lp) {
    flows = SolveMcfSimplex(instance);
  } else if (!options_.use_incremental_fptas) {
    flows = SolveMcfFptasReference(instance, fptas_epsilon);
  } else if (options_.num_shards > 1) {
    McfShardOptions shard_options;
    shard_options.num_shards = options_.num_shards;
    shard_options.split_contended = options_.split_contended;
    flows = SolveMcfFptasSharded(instance, fptas_epsilon, shard_options, &pool_,
                                 &shard_stats, warm_ptr, &warm_info);
    decision.num_shard_components = shard_stats.num_components;
    decision.num_shard_groups = shard_stats.num_groups;
  } else {
    flows = SolveMcfFptas(instance, fptas_epsilon, warm_ptr, &warm_info);
  }
  decision.warm_solve = warm_info.used;
  decision.fptas_phases_skipped = warm_info.phases_skipped;
  // Phase accounting: instance build + push loops count as "solve"; the
  // sharded solver's global finalize is the shard merge and is charged to
  // "merge" along with the block-split/transfer-emission tail below.
  const double solve_cpu_end = ProcessCpuSeconds();
  decision.solve_cpu_seconds += (solve_cpu_end - route_cpu0) - shard_stats.merge_seconds;
  decision.merge_cpu_seconds += shard_stats.merge_seconds;
  if (!flows.ok) {
    route_warm_.valid = false;
    return;  // No routing possible this cycle (e.g. LP hit iteration limit).
  }

  // Carry this cycle's finalized flows as the next cycle's warm seed,
  // accumulated per (src DC, dst DC, job) in subtask order (deterministic).
  if (fptas_path && options_.warm_start) {
    RouteWarmCache& rc = route_warm_;
    rc.flows.clear();
    for (size_t i = 0; i < num_subtasks; ++i) {
      const Subtask& st = subtasks[i];
      const std::vector<double>& f = flows.flow[i];
      std::vector<double>& acc = rc.flows[std::make_tuple(topo_->server(st.src).dc,
                                                          topo_->server(st.dst).dc, st.job)];
      if (acc.empty()) {
        acc.assign(f.size(), 0.0);
      }
      if (acc.size() == f.size()) {
        for (size_t p = 0; p < f.size(); ++p) {
          acc[p] += f[p];
        }
      }
    }
    rc.valid = true;
    rc.last_cycle = cycle;
    rc.path_cache_invalidations = path_cache_.stats().invalidations;
    rc.epsilon = fptas_epsilon;
    rc.route_cap = route_cap;
  }

  // Turn per-path flows into transfer assignments. Blocks are atomic, so a
  // subtask's blocks are split across its paths proportionally to the
  // allocated rates. Each subtask's transfers are built independently, then
  // appended in subtask order so the output is thread-count-invariant.
  std::vector<std::vector<TransferAssignment>> per_subtask(num_subtasks);
  pool_.For(num_subtasks, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      const Subtask& st = subtasks[i];
      const std::vector<ServerPath>& paths = subtask_paths_[i];
      const std::vector<double>& path_flow = flows.flow[i];
      if (paths.empty()) {
        continue;  // Nothing allocated; the delivery stays pending.
      }
      int64_t num_blocks = static_cast<int64_t>(st.blocks.size());
      std::vector<int64_t> counts = SplitBlocksAcrossPaths(num_blocks, path_flow);
      int64_t cursor = 0;
      double bytes_per_block = st.bytes / static_cast<double>(num_blocks);
      for (size_t p = 0; p < paths.size(); ++p) {
        if (counts[p] <= 0) {
          continue;
        }
        TransferAssignment t;
        t.job = st.job;
        t.blocks.assign(st.blocks.begin() + cursor, st.blocks.begin() + cursor + counts[p]);
        cursor += counts[p];
        t.bytes = bytes_per_block * static_cast<double>(counts[p]);
        t.src_server = st.src;
        t.dst_server = st.dst;
        t.path = paths[p];
        t.rate = path_flow[p];
        per_subtask[i].push_back(std::move(t));
      }
    }
  });
  for (std::vector<TransferAssignment>& transfers : per_subtask) {
    for (TransferAssignment& t : transfers) {
      decision.transfers.push_back(std::move(t));
    }
  }
  decision.merge_cpu_seconds += ProcessCpuSeconds() - solve_cpu_end;
}

std::vector<int64_t> SplitBlocksAcrossPaths(int64_t num_blocks,
                                            const std::vector<double>& path_flow) {
  std::vector<int64_t> counts(path_flow.size(), 0);
  if (num_blocks <= 0 || path_flow.empty()) {
    return counts;
  }
  double total = 0.0;
  size_t largest = 0;
  for (size_t p = 0; p < path_flow.size(); ++p) {
    total += path_flow[p];
    if (path_flow[p] > path_flow[largest]) {
      largest = p;
    }
  }
  if (total <= kFluidEpsilon || path_flow[largest] <= kFluidEpsilon) {
    return counts;  // No path carries a meaningful rate.
  }
  // Provisional floor allocation; the largest-rate path absorbs rounding.
  int64_t assigned = 0;
  for (size_t p = 0; p < path_flow.size(); ++p) {
    counts[p] = static_cast<int64_t>(static_cast<double>(num_blocks) * path_flow[p] / total);
    assigned += counts[p];
  }
  counts[largest] += num_blocks - assigned;
  // Re-credit pass: blocks floored onto a zero-rate path would never move,
  // so hand them to the largest-rate path BEFORE any transfer is emitted.
  // (Re-crediting during emission silently dropped them whenever the
  // zero-rate path followed the largest in iteration order.)
  for (size_t p = 0; p < path_flow.size(); ++p) {
    if (p != largest && counts[p] > 0 && path_flow[p] <= kFluidEpsilon) {
      counts[largest] += counts[p];
      counts[p] = 0;
    }
  }
  return counts;
}

CycleDecision ControllerAlgorithm::Decide(int64_t cycle, const ReplicaState& state,
                                          const std::vector<Rate>& residual_capacities,
                                          const DeliveryKeySet& in_flight) {
  CycleDecision decision;
  decision.cycle = cycle;

  auto t0 = std::chrono::steady_clock::now();
  const double select_cpu0 = ProcessCpuSeconds();
  std::vector<Selected> selected;
  {
    BDS_TIMED_SCOPE("scheduler.schedule");
    selected = ScheduleBlocks(cycle, state, residual_capacities, in_flight, decision);
  }
  decision.select_cpu_seconds = ProcessCpuSeconds() - select_cpu0;
  decision.scheduled_blocks = static_cast<int64_t>(selected.size());
  decision.scheduling_seconds = SecondsSince(t0);

  auto t1 = std::chrono::steady_clock::now();
  {
    BDS_TIMED_SCOPE("scheduler.route");
    RouteBlocks(cycle, std::move(selected), residual_capacities, decision);
  }
  decision.routing_seconds = SecondsSince(t1);
  return decision;
}

}  // namespace bds
