#include "src/scheduler/replica_state.h"

#include <algorithm>
#include <atomic>

namespace bds {

uint64_t StateUid::Next() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

namespace {
// Free-function twin of AssignedServer usable before `this` bookkeeping
// exists (AddJob runs before the JobInfo is inserted into the map).
ServerId AssignedServerFor(const Topology* topo, JobId job, int64_t block, DcId dc) {
  const auto& servers = topo->ServersIn(dc);
  if (servers.empty()) {
    return kInvalidServer;
  }
  return servers[ShardIndex(job, block, dc, servers.size())];
}
}  // namespace

ReplicaState::ReplicaState(const Topology* topo) : topo_(topo) { BDS_CHECK(topo != nullptr); }

ReplicaState::JobInfo* ReplicaState::Find(JobId job) {
  auto it = jobs_.find(job);
  return it == jobs_.end() ? nullptr : &it->second;
}

const ReplicaState::JobInfo* ReplicaState::Find(JobId job) const {
  auto it = jobs_.find(job);
  return it == jobs_.end() ? nullptr : &it->second;
}

Status ReplicaState::AddJob(const MulticastJob& job) {
  BDS_RETURN_IF_ERROR(job.Validate(topo_->num_dcs()));
  if (jobs_.count(job.id) != 0) {
    return InvalidArgumentError("AddJob: duplicate job id");
  }
  const auto& src_servers = topo_->ServersIn(job.source_dc);
  if (src_servers.empty()) {
    return FailedPreconditionError("AddJob: source DC has no servers");
  }
  for (DcId d : job.dest_dcs) {
    if (topo_->ServersIn(d).empty()) {
      return FailedPreconditionError("AddJob: destination DC has no servers");
    }
  }

  if (topo_->num_dcs() > 64) {
    return InvalidArgumentError("AddJob: ReplicaState supports at most 64 DCs");
  }
  JobInfo info;
  info.job = job;
  int64_t n = job.num_blocks();
  info.blocks.resize(static_cast<size_t>(n));
  // A new job is dirty everywhere: one fresh epoch covers all its chunks.
  info.chunk_versions.assign(static_cast<size_t>((n + kDirtyChunkBlocks - 1) / kDirtyChunkBlocks),
                             ++dirty_epoch_);
  for (int64_t b = 0; b < n; ++b) {
    BlockInfo& block = info.blocks[static_cast<size_t>(b)];
    // Sharding rule: block b starts on its assigned source-DC server —
    // unless that server already failed, in which case the block has no
    // holder yet (it is unrecoverable until the server returns).
    ServerId holder = src_servers[ShardIndex(job.id, b, job.source_dc, src_servers.size())];
    if (failed_servers_.count(holder) == 0) {
      block.holders.push_back(holder);
      block.dc_present |= uint64_t{1} << job.source_dc;
      ++held_by_server_[holder];
    }
    for (DcId d : job.dest_dcs) {
      block.dc_owed |= uint64_t{1} << d;
      ++info.owed;
      ++owed_by_server_[AssignedServerFor(topo_, job.id, b, d)];
    }
  }
  pending_count_ += info.owed;
  job_ids_.push_back(job.id);
  jobs_.emplace(job.id, std::move(info));
  return Status::Ok();
}

Status ReplicaState::AddReplica(JobId job, int64_t block, ServerId server) {
  JobInfo* info = Find(job);
  if (info == nullptr) {
    return NotFoundError("AddReplica: no such job");
  }
  if (block < 0 || block >= static_cast<int64_t>(info->blocks.size())) {
    return OutOfRangeError("AddReplica: no such block");
  }
  if (server < 0 || server >= topo_->num_servers()) {
    return InvalidArgumentError("AddReplica: no such server");
  }
  if (failed_servers_.count(server) != 0) {
    return FailedPreconditionError("AddReplica: server has failed");
  }
  BlockInfo& bi = info->blocks[static_cast<size_t>(block)];
  if (std::find(bi.holders.begin(), bi.holders.end(), server) != bi.holders.end()) {
    return Status::Ok();  // Idempotent.
  }
  bi.holders.push_back(server);
  StampChunk(*info, block);  // Duplicate count (and possibly owed bits) change.
  ++held_by_server_[server];
  DcId dc = topo_->server(server).dc;
  bi.dc_present |= uint64_t{1} << dc;
  // The owed delivery for this DC clears only when the *assigned* server
  // has the block (the shard must land where it belongs).
  if ((bi.dc_owed & (uint64_t{1} << dc)) != 0 &&
      server == AssignedServer(job, block, dc)) {
    bi.dc_owed &= ~(uint64_t{1} << dc);
    --info->owed;
    --pending_count_;
    --owed_by_server_[server];
    ++credited_;
  }
  return Status::Ok();
}

Status ReplicaState::NoteDelivery(JobId job, int64_t block, ServerId src_server,
                                  ServerId dest_server) {
  const JobInfo* info = Find(job);
  if (info == nullptr) {
    return NotFoundError("NoteDelivery: no such job");
  }
  if (ServerHasBlock(job, block, dest_server)) {
    ++redundant_deliveries_;
    return Status::Ok();
  }
  BDS_RETURN_IF_ERROR(AddReplica(job, block, dest_server));
  ServerOriginStats& stats = origin_stats_[dest_server];
  ++stats.total;
  if (src_server >= 0 && src_server < topo_->num_servers() &&
      topo_->server(src_server).dc == info->job.source_dc) {
    ++stats.from_origin;
  }
  return Status::Ok();
}

void ReplicaState::RemoveServer(ServerId server) {
  failed_servers_.insert(server);
  held_by_server_.erase(server);  // Loses every replica below.
  DcId dc = (server >= 0 && server < topo_->num_servers()) ? topo_->server(server).dc
                                                           : kInvalidDc;
  for (auto& [id, info] : jobs_) {
    for (int64_t b = 0; b < static_cast<int64_t>(info.blocks.size()); ++b) {
      BlockInfo& bi = info.blocks[static_cast<size_t>(b)];
      auto it = std::find(bi.holders.begin(), bi.holders.end(), server);
      if (it == bi.holders.end()) {
        continue;
      }
      bi.holders.erase(it);
      StampChunk(info, b);  // Duplicate count (and possibly owed bits) change.
      if (dc == kInvalidDc) {
        continue;
      }
      // Recompute DC presence for the failed server's DC.
      bool still_present = false;
      for (ServerId h : bi.holders) {
        if (topo_->server(h).dc == dc) {
          still_present = true;
          break;
        }
      }
      if (!still_present) {
        bi.dc_present &= ~(uint64_t{1} << dc);
      }
      // If this DC is a destination and the assigned server lost the block,
      // the delivery is owed again.
      bool is_dest = std::find(info.job.dest_dcs.begin(), info.job.dest_dcs.end(), dc) !=
                     info.job.dest_dcs.end();
      if (is_dest && server == AssignedServer(id, b, dc) &&
          (bi.dc_owed & (uint64_t{1} << dc)) == 0) {
        bi.dc_owed |= uint64_t{1} << dc;
        ++info.owed;
        ++pending_count_;
        ++owed_by_server_[server];
      }
    }
  }
}

void ReplicaState::RestoreServer(ServerId server) { failed_servers_.erase(server); }

Status ReplicaState::RetireJob(JobId job) {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    return NotFoundError("RetireJob: no such job");
  }
  JobInfo& info = it->second;
  if (info.owed != 0) {
    return FailedPreconditionError("RetireJob: job still owes deliveries");
  }
  for (const BlockInfo& bi : info.blocks) {
    for (ServerId h : bi.holders) {
      auto held = held_by_server_.find(h);
      if (held != held_by_server_.end() && --held->second <= 0) {
        held_by_server_.erase(held);
      }
    }
  }
  retired_blocks_ += static_cast<int64_t>(info.blocks.size());
  ++retired_jobs_;
  job_ids_.erase(std::find(job_ids_.begin(), job_ids_.end(), job));
  jobs_.erase(it);
  return Status::Ok();
}

bool ReplicaState::ServerHasBlock(JobId job, int64_t block, ServerId server) const {
  const JobInfo* info = Find(job);
  if (info == nullptr || block < 0 || block >= static_cast<int64_t>(info->blocks.size())) {
    return false;
  }
  const auto& holders = info->blocks[static_cast<size_t>(block)].holders;
  return std::find(holders.begin(), holders.end(), server) != holders.end();
}

bool ReplicaState::DcHasBlock(JobId job, int64_t block, DcId dc) const {
  const JobInfo* info = Find(job);
  if (info == nullptr || block < 0 || block >= static_cast<int64_t>(info->blocks.size())) {
    return false;
  }
  return (info->blocks[static_cast<size_t>(block)].dc_present & (uint64_t{1} << dc)) != 0;
}

int ReplicaState::DuplicateCount(JobId job, int64_t block) const {
  const JobInfo* info = Find(job);
  if (info == nullptr || block < 0 || block >= static_cast<int64_t>(info->blocks.size())) {
    return 0;
  }
  return static_cast<int>(info->blocks[static_cast<size_t>(block)].holders.size());
}

const std::vector<ServerId>& ReplicaState::Holders(JobId job, int64_t block) const {
  static const std::vector<ServerId> kEmpty;
  const JobInfo* info = Find(job);
  if (info == nullptr || block < 0 || block >= static_cast<int64_t>(info->blocks.size())) {
    return kEmpty;
  }
  return info->blocks[static_cast<size_t>(block)].holders;
}

ServerId ReplicaState::AssignedServer(JobId job, int64_t block, DcId dc) const {
  return AssignedServerFor(topo_, job, block, dc);
}

int64_t ReplicaState::OwedByServer(ServerId server) const {
  auto it = owed_by_server_.find(server);
  return it == owed_by_server_.end() ? 0 : it->second;
}

int64_t ReplicaState::NumOwedServers() const {
  int64_t n = 0;
  for (const auto& [server, owed] : owed_by_server_) {
    if (owed > 0) {
      ++n;
    }
  }
  return n;
}

std::vector<ServerId> ReplicaState::AllDestinationServers() const {
  std::unordered_set<ServerId> seen;
  std::vector<ServerId> out;
  for (JobId id : job_ids_) {
    const JobInfo* info = Find(id);
    for (DcId d : info->job.dest_dcs) {
      for (ServerId s : topo_->ServersIn(d)) {
        if (seen.insert(s).second) {
          out.push_back(s);
        }
      }
    }
  }
  return out;
}

std::vector<PendingDelivery> ReplicaState::PendingDeliveries() const {
  std::vector<PendingDelivery> out;
  out.reserve(static_cast<size_t>(pending_count_));
  ForEachOwed([&](size_t, const MulticastJob& job, int64_t b, size_t, DcId d, int dups) {
    PendingDelivery p;
    p.job = job.id;
    p.block = b;
    p.dc = d;
    p.dest_server = AssignedServer(job.id, b, d);
    p.duplicates = dups;
    out.push_back(p);
  });
  return out;
}

bool ReplicaState::JobComplete(JobId job) const {
  const JobInfo* info = Find(job);
  return info != nullptr && info->owed == 0;
}

const MulticastJob* ReplicaState::FindJob(JobId job) const {
  const JobInfo* info = Find(job);
  return info == nullptr ? nullptr : &info->job;
}

}  // namespace bds
