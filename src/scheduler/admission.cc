#include "src/scheduler/admission.h"

namespace bds {

void AdmissionController::ObserveCycle(int64_t blocks_delivered, bool had_backlog) {
  if (!had_backlog) {
    return;
  }
  const double x = static_cast<double>(blocks_delivered);
  if (observed_cycles_ == 0) {
    service_rate_ = x;
  } else {
    service_rate_ += options_.service_rate_alpha * (x - service_rate_);
  }
  ++observed_cycles_;
}

bool AdmissionController::OverBudget(int64_t job_deliveries, int64_t backlog_deliveries) const {
  const int64_t after = backlog_deliveries + job_deliveries;
  if (options_.max_backlog_deliveries > 0 && after > options_.max_backlog_deliveries) {
    last_reason_ = "max_backlog_deliveries";
    return true;
  }
  if (observed_cycles_ < options_.bootstrap_cycles) {
    last_reason_ = "bootstrap_optimism";
    return false;  // No reliable rate estimate yet; stay optimistic.
  }
  if (service_rate_ <= 0.0) {
    // A formed estimate of zero means backlogged cycles are draining
    // nothing; any addition is unservable.
    last_reason_ = "zero_service_rate";
    return true;
  }
  if (static_cast<double>(after) / service_rate_ > options_.max_backlog_cycles) {
    last_reason_ = "max_backlog_cycles";
    return true;
  }
  last_reason_ = "under_budget";
  return false;
}

AdmissionDecision AdmissionController::Admit(int64_t job_deliveries,
                                             int64_t backlog_deliveries) {
  ++stats_.offered;
  if (!options_.enabled) {
    last_reason_ = "disabled";
    ++stats_.accepted;
    return AdmissionDecision::kAccept;
  }
  if (!OverBudget(job_deliveries, backlog_deliveries)) {
    ++stats_.accepted;
    return AdmissionDecision::kAccept;
  }
  if (options_.policy == AdmissionPolicy::kDefer) {
    return AdmissionDecision::kDefer;  // Caller queues it (or rejects on overflow).
  }
  ++stats_.rejected;
  return AdmissionDecision::kReject;
}

AdmissionDecision AdmissionController::ReofferDeferred(int64_t job_deliveries,
                                                       int64_t backlog_deliveries) const {
  if (!options_.enabled) {
    last_reason_ = "disabled";
    return AdmissionDecision::kAccept;
  }
  if (!OverBudget(job_deliveries, backlog_deliveries)) {
    return AdmissionDecision::kAccept;
  }
  return AdmissionDecision::kDefer;
}

}  // namespace bds
