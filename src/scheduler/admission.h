// Admission control for the long-running service mode.
//
// BDS as published assumes the offered load fits: every submitted transfer is
// eventually scheduled. Under sustained open-loop arrivals that assumption
// breaks — a backlog the network cannot drain grows without bound, and every
// job's completion time diverges. Following DCRoute's observation (PAPERS.md)
// that admission against residual capacity beats silently accumulating an
// unservable backlog, the controller estimates its service rate (deliveries
// drained per cycle, EWMA-smoothed) and rejects — or defers, policy knob —
// any job whose acceptance would push the backlog beyond a bounded number of
// cycles' worth of work.
//
// Everything here is driven by simulation-determined counts, so admission
// decisions are bit-identical across thread/shard counts.

#ifndef BDS_SRC_SCHEDULER_ADMISSION_H_
#define BDS_SRC_SCHEDULER_ADMISSION_H_

#include <cstdint>

namespace bds {

enum class AdmissionPolicy {
  kReject,  // Over-budget jobs are refused outright.
  kDefer,   // Over-budget jobs wait in a bounded FIFO and are re-offered
            // each cycle; the queue overflowing rejects.
};

enum class AdmissionDecision { kAccept, kReject, kDefer };

struct AdmissionOptions {
  bool enabled = false;
  AdmissionPolicy policy = AdmissionPolicy::kReject;
  // Accept while backlog / estimated service rate <= this many cycles.
  double max_backlog_cycles = 30.0;
  // Optional absolute bound on outstanding deliveries; <= 0 disables.
  int64_t max_backlog_deliveries = 0;
  // Bound on the defer queue (jobs); overflowing rejects.
  int64_t max_deferred_jobs = 256;
  // EWMA weight of the newest cycle's delivered count.
  double service_rate_alpha = 0.2;
  // Until this many backlogged cycles have been observed the rate estimate
  // is unreliable, so admission stays optimistic (bounded only by
  // max_backlog_deliveries).
  int64_t bootstrap_cycles = 8;
};

struct AdmissionStats {
  int64_t offered = 0;   // Jobs presented to Admit().
  int64_t accepted = 0;  // Includes deferred jobs admitted later.
  int64_t rejected = 0;  // Immediate rejections plus defer-queue overflow.
  int64_t deferred = 0;  // Jobs that entered the defer queue at least once.
};

class AdmissionController {
 public:
  AdmissionController() : AdmissionController(AdmissionOptions{}) {}
  explicit AdmissionController(const AdmissionOptions& options) : options_(options) {}

  // Feed one completed cycle's drained deliveries. Cycles with an empty
  // backlog are skipped: zero drained because nothing was owed says nothing
  // about capacity and would drag the estimate to zero.
  void ObserveCycle(int64_t blocks_delivered, bool had_backlog);

  // Decides whether a job adding `job_deliveries` owed (block, DC) pairs may
  // join a backlog of `backlog_deliveries` (pending + deferred demand).
  // Counts the offer; use Count* below to record what the caller did with a
  // kDefer verdict.
  AdmissionDecision Admit(int64_t job_deliveries, int64_t backlog_deliveries);

  // Re-evaluates a previously deferred job (no new "offered" count).
  AdmissionDecision ReofferDeferred(int64_t job_deliveries, int64_t backlog_deliveries) const;

  // Bookkeeping hooks for the owner of the defer queue.
  void CountAccepted() { ++stats_.accepted; }
  void CountRejected() { ++stats_.rejected; }
  void CountDeferred() { ++stats_.deferred; }

  bool enabled() const { return options_.enabled; }
  const AdmissionOptions& options() const { return options_; }
  const AdmissionStats& stats() const { return stats_; }
  double estimated_service_rate() const { return service_rate_; }
  int64_t observed_cycles() const { return observed_cycles_; }

  // Why the last Admit()/ReofferDeferred() verdict came out the way it did,
  // as a static string for the flight recorder: "disabled", "under_budget",
  // "bootstrap_optimism", "max_backlog_deliveries", "zero_service_rate", or
  // "max_backlog_cycles". Purely observational — never feeds back into a
  // decision.
  const char* last_reason() const { return last_reason_; }

 private:
  // True when backlog + job exceeds the configured bounds.
  bool OverBudget(int64_t job_deliveries, int64_t backlog_deliveries) const;

  AdmissionOptions options_;
  AdmissionStats stats_;
  double service_rate_ = 0.0;     // Deliveries per cycle, EWMA.
  int64_t observed_cycles_ = 0;   // Backlogged cycles folded into the EWMA.
  // Set by OverBudget/Admit (both reachable from const ReofferDeferred);
  // mutable because it annotates the verdict rather than changing state.
  mutable const char* last_reason_ = "disabled";
};

}  // namespace bds

#endif  // BDS_SRC_SCHEDULER_ADMISSION_H_
