// The BDS controller's per-cycle decision logic (§4) — the paper's core
// contribution. Decoupled into:
//
//   Scheduling (§4.3): generalized rarest-first selection of the block
//   deliveries to attempt this cycle, bounded by per-server upload/download
//   budgets (constraint (3) of §4.1), with balanced source selection.
//
//   Routing (§4.4): a max-throughput path-based multicommodity flow over the
//   selected deliveries, after merging blocks with the same (source,
//   destination) server pair into subtasks (§5.1). Solved with the
//   Garg–Könemann FPTAS by default; `use_exact_lp` switches to the exact
//   simplex ("standard LP"), and `merge_subtasks=false` disables merging —
//   together these reproduce the paper's Fig 13a/13b ablation.

#ifndef BDS_SRC_SCHEDULER_CONTROLLER_ALGORITHM_H_
#define BDS_SRC_SCHEDULER_CONTROLLER_ALGORITHM_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "src/common/parallel.h"
#include "src/common/types.h"
#include "src/lp/mcf.h"
#include "src/scheduler/decision.h"
#include "src/scheduler/degradation.h"
#include "src/scheduler/replica_state.h"
#include "src/topology/path_cache.h"
#include "src/topology/routing.h"
#include "src/topology/topology.h"

namespace bds {

// Key for deliveries already in flight (excluded from re-scheduling —
// the non-blocking update of §5.1).
struct DeliveryKey {
  JobId job = kInvalidJob;
  int64_t block = -1;
  DcId dc = kInvalidDc;

  bool operator==(const DeliveryKey& o) const {
    return job == o.job && block == o.block && dc == o.dc;
  }
};

struct DeliveryKeyHash {
  size_t operator()(const DeliveryKey& k) const {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    };
    mix(static_cast<uint64_t>(k.job));
    mix(static_cast<uint64_t>(k.block));
    mix(static_cast<uint64_t>(k.dc));
    return static_cast<size_t>(h);
  }
};

using DeliveryKeySet = std::unordered_set<DeliveryKey, DeliveryKeyHash>;

// Block-selection policy for the scheduling step. The paper's BDS uses
// generalized rarest-first (§4.3); the alternatives exist for the ablation
// bench showing why availability balancing matters (appendix theorem).
enum class SchedulingPolicy {
  kRarestFirst,  // Fewest replicas first, with speculative duplicate counts.
  kRandom,       // Uniformly random among pending deliveries.
  kSequential,   // Block order, destination-major (naive).
};

struct ControllerAlgorithmOptions {
  SimTime cycle_length = 3.0;  // Delta-T, the paper's default.
  SchedulingPolicy policy = SchedulingPolicy::kRarestFirst;
  double fptas_epsilon = 0.1;
  bool merge_subtasks = true;  // §5.1 block merging.
  bool use_exact_lp = false;   // Standard-LP mode (Fig 13a baseline).
  // Joint formulation: skip the scheduling step entirely and hand EVERY
  // outstanding delivery to the routing solver as its own commodity — the
  // undecoupled "standard routing formulation" of §3/§6.3.4 whose running
  // time explodes with block count. Combine with use_exact_lp and
  // merge_subtasks=false for the paper's Fig 13a baseline.
  bool schedule_all = false;
  int max_wan_routes = 3;      // Candidate WAN routes per server pair.
  // Fraction of a server's per-cycle byte budget the scheduler may commit.
  // Leaving headroom lets the (1 - eps)-approximate routing step satisfy
  // every scheduled demand in full, so transfers finish within the cycle
  // instead of straggling into the next one and blocking its budget.
  double budget_fraction = 0.9;
  // Optional hard cap on deliveries scheduled per cycle; 0 = capacity-driven.
  int64_t max_deliveries_per_cycle = 0;
  // Hot-path optimization knobs. All default on; the off positions exist
  // for the Fig 11a ablation bench and the parity tests — every combination
  // produces bit-identical decisions.
  bool use_incremental_fptas = true;  // false: SolveMcfFptasReference.
  bool use_path_cache = true;         // false: EnumerateServerPaths per subtask.
  // false: keep popping candidates until the failure-patience heuristic
  // trips, as the pre-optimization selection loop did. The early exit fires
  // once every possible source's upload budget is provably spent, which
  // cannot change the selected set (budgets only decrease within a cycle).
  bool use_sched_early_exit = true;
  // Worker threads for the per-subtask and per-candidate passes. 1 (the
  // default) runs everything on the calling thread; higher values fan the
  // independent work out over a small pool. Decisions are byte-identical
  // for every value (deterministic static partitioning, per-slot writes).
  int num_threads = 1;
  // Fleet-scale sharding (DESIGN.md "Sharded controller"). With K > 1 the
  // cycle's work is partitioned K ways: the candidate array is built in
  // exact per-shard slots (CountOwedInRange pricing) and carved/heapified
  // per contiguous shard with a K-way merge pop, and the routing FPTAS runs
  // per link-disjoint commodity group (SolveMcfFptasSharded) with one global
  // finalize as the merge under the bandwidth-separator budget. Decisions
  // are bit-identical to num_shards = 1 for ANY shard and thread count —
  // selection pops the same strict total order and the per-group push loops
  // share the global instance's constants (see the shard-parity suite).
  // Ignored by schedule_all / use_exact_lp, whose solvers have no shard
  // seam.
  int num_shards = 1;
  // Degradation-ladder knob positions (src/scheduler/degradation.h); only
  // consulted when SetDegradationRung raises the rung above kNormal.
  // kCoarseEpsilon multiplies fptas_epsilon by this factor (capped at 0.5):
  double degraded_epsilon_factor = 4.0;
  // kShedCandidates caps deliveries selected per cycle at this (combined
  // with max_deliveries_per_cycle by min when both are set):
  int64_t shed_deliveries_cap = 4096;
};

class ControllerAlgorithm {
 public:
  ControllerAlgorithm(const Topology* topo, const WanRoutingTable* routing,
                      ControllerAlgorithmOptions options);

  // Computes this cycle's transfers. `residual_capacities` is per LinkId,
  // already net of latency-sensitive traffic and in-flight bulk transfers
  // (see BandwidthSeparator); `in_flight` deliveries are skipped.
  CycleDecision Decide(int64_t cycle, const ReplicaState& state,
                       const std::vector<Rate>& residual_capacities,
                       const DeliveryKeySet& in_flight);

  // Drops the cached overlay-path skeletons. Call when the routing table's
  // route sets may have changed (rebuild, link fault); capacity-only changes
  // never require it.
  void InvalidatePathCache() { path_cache_.Invalidate(); }

  // Hit/miss/invalidation counters of the overlay path cache (see
  // ServerPathCache::Stats). Sharded and unsharded runs over the same cycle
  // sequence must observe identical miss and invalidation counts — asserted
  // by the path-cache shard test.
  ServerPathCache::Stats path_cache_stats() const { return path_cache_.stats(); }

  // Degradation ladder (set by the cycle-deadline watchdog before each
  // cycle). Rungs kCachedPaths..kShedCandidates cheapen this Decide() call:
  // single cached path per subtask, coarser FPTAS epsilon, shed selection
  // cap. kExtendDecisions is realized by the controller (it skips Decide()
  // entirely); the algorithm treats it like kShedCandidates if called.
  void SetDegradationRung(DegradationRung rung) { rung_ = rung; }
  DegradationRung degradation_rung() const { return rung_; }

  const ControllerAlgorithmOptions& options() const { return options_; }

 private:
  struct Selected {
    PendingDelivery delivery;
    Bytes bytes = 0.0;
    ServerId src_server = kInvalidServer;
  };

  // Scheduling step: rarest-first selection under capacity budgets.
  std::vector<Selected> ScheduleBlocks(const ReplicaState& state,
                                       const std::vector<Rate>& residual_capacities,
                                       const DeliveryKeySet& in_flight);

  // Routing step: merge into subtasks, build the MCF, allocate rates.
  void RouteBlocks(std::vector<Selected> selected, const std::vector<Rate>& residual_capacities,
                   CycleDecision& decision);

  const Topology* topo_;
  const WanRoutingTable* routing_;
  ControllerAlgorithmOptions options_;
  DegradationRung rung_ = DegradationRung::kNormal;
  ServerPathCache path_cache_;
  ParallelRunner pool_;

  // Per-cycle scratch reused across Decide() calls so the routing step stops
  // re-allocating its MCF instance and path buffers every cycle.
  McfInstance mcf_instance_;
  std::vector<std::vector<ServerPath>> subtask_paths_;
};

// Splits `num_blocks` atomic blocks across a subtask's paths proportionally
// to the allocated `path_flow` rates: floor allocation per path, remainder —
// and anything a zero-rate path would have received — credited to the
// highest-rate path. Returns one count per path summing to num_blocks, or
// all zeros when no path carries meaningful rate. Exposed for unit tests;
// RouteBlocks uses it per subtask.
std::vector<int64_t> SplitBlocksAcrossPaths(int64_t num_blocks,
                                            const std::vector<double>& path_flow);

}  // namespace bds

#endif  // BDS_SRC_SCHEDULER_CONTROLLER_ALGORITHM_H_
