// The BDS controller's per-cycle decision logic (§4) — the paper's core
// contribution. Decoupled into:
//
//   Scheduling (§4.3): generalized rarest-first selection of the block
//   deliveries to attempt this cycle, bounded by per-server upload/download
//   budgets (constraint (3) of §4.1), with balanced source selection.
//
//   Routing (§4.4): a max-throughput path-based multicommodity flow over the
//   selected deliveries, after merging blocks with the same (source,
//   destination) server pair into subtasks (§5.1). Solved with the
//   Garg–Könemann FPTAS by default; `use_exact_lp` switches to the exact
//   simplex ("standard LP"), and `merge_subtasks=false` disables merging —
//   together these reproduce the paper's Fig 13a/13b ablation.

#ifndef BDS_SRC_SCHEDULER_CONTROLLER_ALGORITHM_H_
#define BDS_SRC_SCHEDULER_CONTROLLER_ALGORITHM_H_

#include <map>
#include <memory>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "src/common/huge_alloc.h"
#include "src/common/parallel.h"
#include "src/common/types.h"
#include "src/lp/mcf.h"
#include "src/scheduler/decision.h"
#include "src/scheduler/degradation.h"
#include "src/scheduler/replica_state.h"
#include "src/topology/path_cache.h"
#include "src/topology/routing.h"
#include "src/topology/topology.h"

namespace bds {

// Key for deliveries already in flight (excluded from re-scheduling —
// the non-blocking update of §5.1).
struct DeliveryKey {
  JobId job = kInvalidJob;
  int64_t block = -1;
  DcId dc = kInvalidDc;

  bool operator==(const DeliveryKey& o) const {
    return job == o.job && block == o.block && dc == o.dc;
  }
};

struct DeliveryKeyHash {
  size_t operator()(const DeliveryKey& k) const {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    };
    mix(static_cast<uint64_t>(k.job));
    mix(static_cast<uint64_t>(k.block));
    mix(static_cast<uint64_t>(k.dc));
    return static_cast<size_t>(h);
  }
};

using DeliveryKeySet = std::unordered_set<DeliveryKey, DeliveryKeyHash>;

// Block-selection policy for the scheduling step. The paper's BDS uses
// generalized rarest-first (§4.3); the alternatives exist for the ablation
// bench showing why availability balancing matters (appendix theorem).
enum class SchedulingPolicy {
  kRarestFirst,  // Fewest replicas first, with speculative duplicate counts.
  kRandom,       // Uniformly random among pending deliveries.
  kSequential,   // Block order, destination-major (naive).
};

struct ControllerAlgorithmOptions {
  SimTime cycle_length = 3.0;  // Delta-T, the paper's default.
  SchedulingPolicy policy = SchedulingPolicy::kRarestFirst;
  double fptas_epsilon = 0.1;
  bool merge_subtasks = true;  // §5.1 block merging.
  bool use_exact_lp = false;   // Standard-LP mode (Fig 13a baseline).
  // Joint formulation: skip the scheduling step entirely and hand EVERY
  // outstanding delivery to the routing solver as its own commodity — the
  // undecoupled "standard routing formulation" of §3/§6.3.4 whose running
  // time explodes with block count. Combine with use_exact_lp and
  // merge_subtasks=false for the paper's Fig 13a baseline.
  bool schedule_all = false;
  int max_wan_routes = 3;      // Candidate WAN routes per server pair.
  // Fraction of a server's per-cycle byte budget the scheduler may commit.
  // Leaving headroom lets the (1 - eps)-approximate routing step satisfy
  // every scheduled demand in full, so transfers finish within the cycle
  // instead of straggling into the next one and blocking its budget.
  double budget_fraction = 0.9;
  // Optional hard cap on deliveries scheduled per cycle; 0 = capacity-driven.
  int64_t max_deliveries_per_cycle = 0;
  // Hot-path optimization knobs. All default on; the off positions exist
  // for the Fig 11a ablation bench and the parity tests — every combination
  // produces bit-identical decisions.
  bool use_incremental_fptas = true;  // false: SolveMcfFptasReference.
  bool use_path_cache = true;         // false: EnumerateServerPaths per subtask.
  // false: keep popping candidates until the failure-patience heuristic
  // trips, as the pre-optimization selection loop did. The early exit fires
  // once every possible source's upload budget is provably spent, which
  // cannot change the selected set (budgets only decrease within a cycle).
  bool use_sched_early_exit = true;
  // Worker threads for the per-subtask and per-candidate passes. 1 (the
  // default) runs everything on the calling thread; higher values fan the
  // independent work out over a small pool. Decisions are byte-identical
  // for every value (deterministic static partitioning, per-slot writes).
  int num_threads = 1;
  // Fleet-scale sharding (DESIGN.md "Sharded controller"). With K > 1 the
  // cycle's work is partitioned K ways: the candidate array is built in
  // exact per-shard slots (CountOwedInRange pricing) and carved/heapified
  // per contiguous shard with a K-way merge pop, and the routing FPTAS runs
  // per link-disjoint commodity group (SolveMcfFptasSharded) with one global
  // finalize as the merge under the bandwidth-separator budget. Decisions
  // are bit-identical to num_shards = 1 for ANY shard and thread count —
  // selection pops the same strict total order and the per-group push loops
  // share the global instance's constants (see the shard-parity suite).
  // Ignored by schedule_all / use_exact_lp, whose solvers have no shard
  // seam.
  int num_shards = 1;
  // Degradation-ladder knob positions (src/scheduler/degradation.h); only
  // consulted when SetDegradationRung raises the rung above kNormal.
  // kCoarseEpsilon multiplies fptas_epsilon by this factor (capped at 0.5):
  double degraded_epsilon_factor = 4.0;
  // kShedCandidates caps deliveries selected per cycle at this (combined
  // with max_deliveries_per_cycle by min when both are set):
  int64_t shed_deliveries_cap = 4096;
  // --- Cross-cycle incrementality (DESIGN.md §9.7) ---
  // Delta candidate build: keep the previous cycle's candidate slot array
  // and re-price only the (job, 64-block chunk) units ReplicaState marked
  // dirty since; clean units are memcpy'd with their packed job position
  // patched. Byte-identical to the from-scratch builders on every cycle
  // (cold or warm), so it is safe as the universal default. `false` falls
  // back to the always-from-scratch builders.
  bool incremental_candidates = true;
  // FPTAS warm start: seed each cycle's routing solve from the previous
  // cycle's converged per-commodity flows when the topology and path set
  // are unchanged. Relaxed parity: feasible, deterministic for any
  // thread/shard count, objective within (1 + fptas_epsilon) of the cold
  // solve — but NOT bitwise equal to it. Off by default.
  bool warm_start = false;
  // Forwarded to McfShardOptions::split_contended (num_shards > 1 only):
  // splits giant contended commodity groups for parallelism. Deterministic
  // but not bitwise-equal to the unsharded solve — gate it together with
  // warm_start under the relaxed-parity contract.
  bool split_contended = false;
  // Debug cross-check: after every incremental candidate build, rebuild
  // from scratch and BDS_CHECK the arrays are identical. O(pending) extra
  // work per cycle; test-suite only.
  bool debug_verify_incremental = false;
};

class ControllerAlgorithm {
 public:
  ControllerAlgorithm(const Topology* topo, const WanRoutingTable* routing,
                      ControllerAlgorithmOptions options);

  // Computes this cycle's transfers. `residual_capacities` is per LinkId,
  // already net of latency-sensitive traffic and in-flight bulk transfers
  // (see BandwidthSeparator); `in_flight` deliveries are skipped.
  CycleDecision Decide(int64_t cycle, const ReplicaState& state,
                       const std::vector<Rate>& residual_capacities,
                       const DeliveryKeySet& in_flight);

  // Drops the cached overlay-path skeletons. Call when the routing table's
  // route sets may have changed (rebuild, link fault); capacity-only changes
  // never require it. Also implicitly invalidates the FPTAS warm-start cache
  // (its validity check compares the cache's invalidation generation).
  void InvalidatePathCache() { path_cache_.Invalidate(); }

  // Drops the cross-cycle caches (candidate slots + FPTAS warm seeds). The
  // controller calls this on server failure and controller-replica failover;
  // the caches' own identity/continuity checks (state uid, cycle + 1, knob
  // values) cover everything else (invalidation matrix: DESIGN.md §9.7).
  void InvalidateCycleCache() {
    cand_cache_.valid = false;
    route_warm_.valid = false;
  }

  // Hit/miss/invalidation counters of the overlay path cache (see
  // ServerPathCache::Stats). Sharded and unsharded runs over the same cycle
  // sequence must observe identical miss and invalidation counts — asserted
  // by the path-cache shard test.
  ServerPathCache::Stats path_cache_stats() const { return path_cache_.stats(); }

  // Degradation ladder (set by the cycle-deadline watchdog before each
  // cycle). Rungs kCachedPaths..kShedCandidates cheapen this Decide() call:
  // single cached path per subtask, coarser FPTAS epsilon, shed selection
  // cap. kExtendDecisions is realized by the controller (it skips Decide()
  // entirely); the algorithm treats it like kShedCandidates if called.
  void SetDegradationRung(DegradationRung rung) { rung_ = rung; }
  DegradationRung degradation_rung() const { return rung_; }

  const ControllerAlgorithmOptions& options() const { return options_; }

 private:
  struct Selected {
    PendingDelivery delivery;
    Bytes bytes = 0.0;
    ServerId src_server = kInvalidServer;
  };

  // A schedulable delivery in packed 24-byte form (see ScheduleBlocks'
  // commentary): `key` packs (job position, block, dest-DC position) into
  // bit fields that strictly increase in PendingDeliveries() order, `salt`
  // is the deterministic pseudo-random tie-break, `eff_dup` the speculative
  // duplicate count. Ordering by (eff_dup, salt, key) has no ties.
  struct Candidate {
    int eff_dup;
    uint64_t salt;
    uint64_t key;
    bool operator>(const Candidate& o) const {
      if (eff_dup != o.eff_dup) {
        return eff_dup > o.eff_dup;
      }
      if (salt != o.salt) {
        return salt > o.salt;
      }
      return key > o.key;
    }
  };
  // Candidate arrays live in transparent-hugepage-backed storage: at the
  // fleet scale the build and carve stream hundreds of megabytes of slots,
  // and 4 KiB pages make the TLB the bottleneck. Falls back silently to
  // plain pages (and, below the size threshold, to plain operator new).
  using CandVec = HugeVector<Candidate>;

  // One kDirtyChunkBlocks-aligned slice of one job's candidate slots in the
  // previous cycle's array (the delta build's unit of reuse).
  struct CandidateUnit {
    JobId job = kInvalidJob;
    int64_t b0 = 0;        // First block of the chunk.
    uint32_t jp = 0;       // Job position at build time.
    uint32_t count = 0;    // Candidate slots in the chunk.
    uint64_t offset = 0;   // First slot index in `slots`.
  };

  // Previous cycle's candidate array plus the unit index needed to patch it
  // (DESIGN.md §9.7). Valid only against the exact ReplicaState object it
  // was built from (state uid), the next cycle (last_cycle + 1), and the
  // same policy; anything else falls back to an all-dirty (cold) build that
  // refills the cache.
  struct CandidateCache {
    bool valid = false;
    uint64_t state_uid = 0;
    uint64_t seen_epoch = 0;  // ReplicaState::dirty_epoch() after the build.
    int64_t last_cycle = 0;
    SchedulingPolicy policy = SchedulingPolicy::kRarestFirst;
    std::vector<CandidateUnit> units;
    CandVec slots;
    CandVec scratch;  // Double buffer for the patch pass.
  };

  // Previous cycle's converged path flows for the FPTAS warm start,
  // accumulated per (source DC, destination DC, job). Exact subtask (server
  // pair) identity rarely recurs across cycles — each cycle selects
  // different blocks, and the sharding rule scatters their endpoint servers
  // — but a job's DC pair is fixed, and path index i means the same WAN
  // route for every server pair of that DC pair. A commodity is seeded with
  // its key's flow split scaled to its own demand. Valid only for the next
  // cycle with an unchanged path set (path-cache invalidation generation)
  // and the same effective epsilon / route cap (covers degradation-rung
  // moves).
  struct RouteWarmCache {
    bool valid = false;
    int64_t last_cycle = 0;
    int64_t path_cache_invalidations = 0;
    double epsilon = 0.0;
    int route_cap = 0;
    std::map<std::tuple<DcId, DcId, JobId>, std::vector<double>> flows;
  };

  // Scheduling step: rarest-first selection under capacity budgets.
  std::vector<Selected> ScheduleBlocks(int64_t cycle, const ReplicaState& state,
                                       const std::vector<Rate>& residual_capacities,
                                       const DeliveryKeySet& in_flight, CycleDecision& decision);

  // Routing step: merge into subtasks, build the MCF, allocate rates.
  void RouteBlocks(int64_t cycle, std::vector<Selected> selected,
                   const std::vector<Rate>& residual_capacities, CycleDecision& decision);

  const Topology* topo_;
  const WanRoutingTable* routing_;
  ControllerAlgorithmOptions options_;
  DegradationRung rung_ = DegradationRung::kNormal;
  ServerPathCache path_cache_;
  ParallelRunner pool_;

  // Per-cycle scratch reused across Decide() calls so the routing step stops
  // re-allocating its MCF instance and path buffers every cycle.
  McfInstance mcf_instance_;
  std::vector<std::vector<ServerPath>> subtask_paths_;
  // Cross-cycle caches (DESIGN.md §9.7). cand_work_ is the selection loop's
  // working array, reused so the fleet-scale build stops re-allocating
  // hundreds of megabytes per cycle.
  CandVec cand_work_;
  CandidateCache cand_cache_;
  RouteWarmCache route_warm_;
};

// Splits `num_blocks` atomic blocks across a subtask's paths proportionally
// to the allocated `path_flow` rates: floor allocation per path, remainder —
// and anything a zero-rate path would have received — credited to the
// highest-rate path. Returns one count per path summing to num_blocks, or
// all zeros when no path carries meaningful rate. Exposed for unit tests;
// RouteBlocks uses it per subtask.
std::vector<int64_t> SplitBlocksAcrossPaths(int64_t num_blocks,
                                            const std::vector<double>& path_flow);

}  // namespace bds

#endif  // BDS_SRC_SCHEDULER_CONTROLLER_ALGORITHM_H_
