// Output of the controller's per-cycle decision logic: the 〈w, f〉 tuples of
// §4.1 in executable form — which blocks move, between which servers, along
// which path, at what rate.

#ifndef BDS_SRC_SCHEDULER_DECISION_H_
#define BDS_SRC_SCHEDULER_DECISION_H_

#include <cstring>
#include <vector>

#include "src/common/types.h"
#include "src/topology/path.h"

namespace bds {

// One scheduled transfer: `blocks` of `job` from src_server to dst_server
// along `path` at `rate`. Blocks sharing (src, dst) are merged into one
// subtask (§5.1), so a decision typically carries many blocks per entry.
struct TransferAssignment {
  JobId job = kInvalidJob;
  std::vector<int64_t> blocks;
  Bytes bytes = 0.0;  // Total payload of `blocks`.
  ServerId src_server = kInvalidServer;
  ServerId dst_server = kInvalidServer;
  ServerPath path;
  Rate rate = 0.0;
};

struct CycleDecision {
  int64_t cycle = 0;
  std::vector<TransferAssignment> transfers;

  // Controller-side instrumentation (Fig 11a / 13a).
  double scheduling_seconds = 0.0;
  double routing_seconds = 0.0;
  int64_t scheduled_blocks = 0;   // Block deliveries picked this cycle.
  int64_t merged_subtasks = 0;    // Commodities after merging.

  // Per-phase CPU time (CLOCK_PROCESS_CPUTIME_ID, so worker-thread time is
  // included): selection, MCF solve, and the merge/assembly tail (shard
  // merge + block-to-path splitting + transfer emission). The bench JSON
  // reports these so shard-merge overhead stays visible. Like the wall
  // timings above, they are EXCLUDED from Fingerprint().
  double select_cpu_seconds = 0.0;
  double solve_cpu_seconds = 0.0;
  double merge_cpu_seconds = 0.0;
  // Shard observability (also excluded from the fingerprint — the sharded
  // and unsharded paths must fingerprint identically): link-sharing
  // components found and per-shard groups solved; both 0 when the solve ran
  // unsharded.
  int num_shard_components = 0;
  int num_shard_groups = 0;
  // Cross-cycle incrementality observability (DESIGN.md §9.7); all excluded
  // from Fingerprint() — reuse is a performance property, never a decision
  // input. Units are (job, 64-block chunk) slices of the candidate array;
  // slots are individual candidates.
  int64_t cand_units_reused = 0;
  int64_t cand_units_repriced = 0;
  int64_t cand_slots_reused = 0;
  int64_t cand_slots_repriced = 0;
  // FPTAS warm start: whether a seed was applied this cycle, and how many
  // alpha phases it provably skipped.
  bool warm_solve = false;
  int64_t fptas_phases_skipped = 0;

  double total_seconds() const { return scheduling_seconds + routing_seconds; }

  // Order-sensitive digest of everything the agents would act on — the
  // transfers (blocks, endpoints, path, rate) plus the cycle counters.
  // Wall-clock timings are excluded. Used by the determinism tests: the
  // thread-pool and optimization knobs must not change this value.
  uint64_t Fingerprint() const {
    uint64_t h = 0x9E3779B97F4A7C15ULL;
    auto mix = [&h](uint64_t v) {
      h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
      h *= 0xBF58476D1CE4E5B9ULL;
      h ^= h >> 31;
    };
    auto mix_double = [&mix](double v) {
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      std::memcpy(&bits, &v, sizeof(bits));
      mix(bits);
    };
    mix(static_cast<uint64_t>(cycle));
    mix(static_cast<uint64_t>(scheduled_blocks));
    mix(static_cast<uint64_t>(merged_subtasks));
    mix(static_cast<uint64_t>(transfers.size()));
    for (const TransferAssignment& t : transfers) {
      mix(static_cast<uint64_t>(t.job));
      mix(static_cast<uint64_t>(t.blocks.size()));
      for (int64_t b : t.blocks) {
        mix(static_cast<uint64_t>(b));
      }
      mix_double(t.bytes);
      mix(static_cast<uint64_t>(t.src_server));
      mix(static_cast<uint64_t>(t.dst_server));
      mix(static_cast<uint64_t>(t.path.wan_route_index));
      for (LinkId l : t.path.links) {
        mix(static_cast<uint64_t>(l));
      }
      mix_double(t.rate);
    }
    return h;
  }
};

}  // namespace bds

#endif  // BDS_SRC_SCHEDULER_DECISION_H_
