// Output of the controller's per-cycle decision logic: the 〈w, f〉 tuples of
// §4.1 in executable form — which blocks move, between which servers, along
// which path, at what rate.

#ifndef BDS_SRC_SCHEDULER_DECISION_H_
#define BDS_SRC_SCHEDULER_DECISION_H_

#include <vector>

#include "src/common/types.h"
#include "src/topology/path.h"

namespace bds {

// One scheduled transfer: `blocks` of `job` from src_server to dst_server
// along `path` at `rate`. Blocks sharing (src, dst) are merged into one
// subtask (§5.1), so a decision typically carries many blocks per entry.
struct TransferAssignment {
  JobId job = kInvalidJob;
  std::vector<int64_t> blocks;
  Bytes bytes = 0.0;  // Total payload of `blocks`.
  ServerId src_server = kInvalidServer;
  ServerId dst_server = kInvalidServer;
  ServerPath path;
  Rate rate = 0.0;
};

struct CycleDecision {
  int64_t cycle = 0;
  std::vector<TransferAssignment> transfers;

  // Controller-side instrumentation (Fig 11a / 13a).
  double scheduling_seconds = 0.0;
  double routing_seconds = 0.0;
  int64_t scheduled_blocks = 0;   // Block deliveries picked this cycle.
  int64_t merged_subtasks = 0;    // Commodities after merging.

  double total_seconds() const { return scheduling_seconds + routing_seconds; }
};

}  // namespace bds

#endif  // BDS_SRC_SCHEDULER_DECISION_H_
