// Cycle-deadline watchdog: overload detection and the graceful-degradation
// ladder for the long-running service mode.
//
// BDS's guarantees hold only while the controller finishes each decision
// cycle inside cycle_length (3 s, §5); PR 6 measured the all-on sharded
// cycle at ~2.2 s CPU at 1e7 blocks, so sustained open-loop arrivals can
// push cycles over budget. The watchdog charges every cycle a CPU cost,
// models the overrun as decision *staleness* (decisions reach agents late,
// in simulated time), and steps the controller down the degradation ladder
// (src/scheduler/degradation.h) one rung per overrunning cycle; a run of
// calm cycles steps back up, with hysteresis so the ladder does not flap.
//
// Determinism: by default the charged cost is a *model* — a deterministic
// function of the cycle's decision counts (pending deliveries, selected
// blocks, merged subtasks) and the rung's knob positions, calibrated against
// the PR-6 per-phase CPU measurements. Counts are bit-identical across
// thread/shard counts, so ladder transitions and the staleness they inject
// are too — the same guarantee the PR 3/4/6 rewrites keep. Setting
// `use_measured_cost` charges the measured wall CPU instead, which makes the
// ladder react to the real machine but forfeits cross-run determinism; it is
// off everywhere determinism is asserted.

#ifndef BDS_SRC_CONTROL_OVERLOAD_H_
#define BDS_SRC_CONTROL_OVERLOAD_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/scheduler/degradation.h"

namespace bds {

// Modeled controller CPU seconds for one decision cycle. Linear in the
// cycle's work counts with an FPTAS term that scales with route count and
// 1/epsilon^2 (Garg–Könemann phase count). Defaults are calibrated so the
// PR-6 fleet point (1e7 pending, ~3e4 selected, ~2.7e4 subtasks, 3 routes,
// eps 0.1) prices at ~2.2 s — the measured all-on sharded cycle.
struct CycleCostModel {
  double base_seconds = 1e-4;             // Fixed per-cycle overhead.
  double per_pending_seconds = 1.3e-7;    // Candidate build, per owed delivery.
  double per_selected_seconds = 2.0e-6;   // Selection pops + transfer emission.
  double per_subtask_route_seconds = 1.1e-5;  // FPTAS push loops, per
                                              // commodity-path at eps_ref.
  double fptas_epsilon_ref = 0.1;         // Epsilon the route term is calibrated at.

  double Cost(int64_t pending, int64_t selected, int64_t subtasks, int routes_per_subtask,
              double epsilon) const;
};

struct OverloadOptions {
  bool enabled = false;
  SimTime cycle_length = 3.0;
  CycleCostModel cost;
  // Charge measured CPU seconds instead of the model. Breaks cross-run
  // determinism (see header comment); never combine with determinism checks.
  bool use_measured_cost = false;
  // Escalate when cost > overrun_threshold * cycle_length.
  double overrun_threshold = 1.0;
  // A cycle is "calm" when cost < recover_threshold * cycle_length ...
  double recover_threshold = 0.5;
  // ... and this many consecutive calm cycles step one rung back up.
  int recover_cycles = 5;
  // Cap on the staleness charged to one cycle's decisions (fraction of
  // cycle_length); matches the feedback-delay cap in the controller.
  double max_staleness_fraction = 0.9;
  // Knob positions the cost model needs to price the current rung.
  int max_wan_routes = 3;
  double fptas_epsilon = 0.1;
  double degraded_epsilon_factor = 4.0;
};

// One ladder movement, for the steady-state report and the determinism test
// (transition logs must be bit-identical across thread/shard counts).
struct RungTransition {
  int64_t cycle = 0;
  DegradationRung from = DegradationRung::kNormal;
  DegradationRung to = DegradationRung::kNormal;
  double modeled_cost = 0.0;

  bool operator==(const RungTransition& o) const {
    return cycle == o.cycle && from == o.from && to == o.to && modeled_cost == o.modeled_cost;
  }
};

class CycleWatchdog {
 public:
  CycleWatchdog() : CycleWatchdog(OverloadOptions{}) {}
  explicit CycleWatchdog(const OverloadOptions& options) : options_(options) {}

  // Prices the cycle that just ran at the current rung. `pending` is the
  // owed-delivery count handed to the scheduler, `selected` / `subtasks`
  // come from the cycle's decision. At kExtendDecisions only the base cost
  // is charged (scheduling and routing were skipped).
  double ModelCost(int64_t pending, int64_t selected, int64_t subtasks) const;

  // Simulated lateness to charge this cycle's decisions: how far past
  // cycle_length the cycle ran, capped at max_staleness_fraction.
  SimTime StalenessFor(double cost_seconds) const;

  // Folds one cycle's cost into the ladder state and returns the rung the
  // NEXT cycle should run at. Also accumulates overrun counters, per-rung
  // occupancy, and the transition log.
  DegradationRung Observe(int64_t cycle, double cost_seconds);

  bool enabled() const { return options_.enabled; }
  const OverloadOptions& options() const { return options_; }
  DegradationRung rung() const { return rung_; }
  int64_t overrun_cycles() const { return overrun_cycles_; }
  double worst_overrun_seconds() const { return worst_overrun_; }
  const std::array<int64_t, kNumDegradationRungs>& rung_cycles() const { return rung_cycles_; }
  const std::vector<RungTransition>& transitions() const { return transitions_; }

  // Order-sensitive digest of the transition log (cycle, from, to, cost).
  uint64_t TransitionDigest() const;

 private:
  OverloadOptions options_;
  DegradationRung rung_ = DegradationRung::kNormal;
  int calm_streak_ = 0;
  int64_t overrun_cycles_ = 0;
  double worst_overrun_ = 0.0;
  std::array<int64_t, kNumDegradationRungs> rung_cycles_{};
  std::vector<RungTransition> transitions_;
};

}  // namespace bds

#endif  // BDS_SRC_CONTROL_OVERLOAD_H_
