// Controller replication and leader election (§5.3 item 1).
//
// The deployment replicates the controller over three ZooKeeper-coordinated
// replicas; we model the behaviour that matters to the evaluation: a master
// exists while at least one replica is alive (after a failover delay when
// the current master dies), and the system signals "no controller" when all
// replicas are down — at which point agents fall back to the decentralized
// protocol (Fig 12a).

#ifndef BDS_SRC_CONTROL_REPLICATION_H_
#define BDS_SRC_CONTROL_REPLICATION_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace bds {

class ControllerReplicaSet {
 public:
  struct Options {
    int num_replicas = 3;
    // Time for the surviving replicas to elect a new master after the
    // current master dies (lease expiry + election).
    double failover_delay = 2.0;
  };

  explicit ControllerReplicaSet(Options options);
  ControllerReplicaSet() : ControllerReplicaSet(Options{}) {}

  // Marks replica `idx` failed/recovered as of time `t`.
  Status FailReplica(int idx, SimTime t);
  Status RecoverReplica(int idx, SimTime t);

  // Whether a master is serving at time `t` (monotonically queried).
  bool HasMaster(SimTime t);

  // Index of the current master, or -1.
  int MasterIndex(SimTime t);

  int num_replicas() const { return static_cast<int>(alive_.size()); }
  int64_t elections() const { return elections_; }

 private:
  void MaybeElect(SimTime t);

  Options options_;
  std::vector<bool> alive_;
  int master_ = 0;
  // When a pending election completes; <= t means no election in progress.
  SimTime master_ready_at_ = 0.0;
  int64_t elections_ = 0;
};

}  // namespace bds

#endif  // BDS_SRC_CONTROL_REPLICATION_H_
