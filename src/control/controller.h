// The BDS controller: the cycle loop of Fig 8 driving the whole system.
//
// Every Delta-T the controller (1) reads agent/network state, (2) runs the
// decoupled scheduling + routing algorithm, (3) pushes rate-pinned transfer
// decisions to agents, which the simulator executes. In-flight transfers are
// never interrupted by recomputation (non-blocking update, §5.1); their
// deliveries are excluded from rescheduling and their rates from the
// residual capacity handed to the LP.
//
// Fault tolerance (§5.3): server failures remove the agent's replicas and
// cancel its flows; when every controller replica is down, agents fall back
// to the decentralized engine until a master returns.
//
// Injected faults (src/fault): the controller drains the FaultInjector's
// link timeline every cycle (hard-down links kill crossing transfers, which
// are cancelled-and-credited and re-planned over surviving paths), schedules
// against a *view* ReplicaState that lags ground truth while agent status
// reports are lost, drops decision pushes per agent until the agent's
// retry/escalation forces them through, and verifies a per-block checksum on
// delivery — corrupted blocks are not credited and re-enter rarest-first.
// All faults are seeded and deterministic: one seed, one byte-identical run.

#ifndef BDS_SRC_CONTROL_CONTROLLER_H_
#define BDS_SRC_CONTROL_CONTROLLER_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/baselines/decentralized_engine.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/control/monitors.h"
#include "src/control/replication.h"
#include "src/fault/fault_injector.h"
#include "src/scheduler/bandwidth_separator.h"
#include "src/scheduler/controller_algorithm.h"
#include "src/scheduler/replica_state.h"
#include "src/simulator/network_simulator.h"
#include "src/telemetry/metrics.h"
#include "src/topology/routing.h"
#include "src/topology/topology.h"
#include "src/workload/background_traffic.h"
#include "src/workload/job.h"

namespace bds {

struct ControllerOptions {
  ControllerAlgorithmOptions algorithm;
  BandwidthSeparator::Options separation;
  LatencyModel::Options latency;
  DecentralizedEngine::Options fallback;
  ControllerReplicaSet::Options replication;
  DcId controller_dc = 0;
  // An in-flight transfer expected to need more than this many further
  // cycles (or starved to ~zero rate) is cancelled and re-planned; fully
  // delivered blocks are credited first. This is the per-cycle decision
  // refresh of §5.1 — without it a transfer the LP once allocated a tiny
  // rate could linger forever while its blocks stay locked. Generous by
  // default so healthy long transfers are left alone.
  double restall_cycles = 20.0;
  // Sample control-plane delays (Fig 11b/11c). Costs a little RNG work.
  bool measure_delays = true;
  // Charge the feedback-loop delay against the cycle: transfers start only
  // after status collection + algorithm execution + decision push. This is
  // what makes very short update cycles counter-productive (Fig 12c's knee
  // at ~3 s). Off by default so laptop-scale runs aren't dominated by it.
  bool model_decision_latency = false;
  // Check hard invariants every cycle (link rates within faulted capacity)
  // and record the worst violation in the report. Costs O(flows + links) per
  // cycle, so off by default; the chaos soak turns it on.
  bool validate_invariants = false;
  uint64_t seed = 1;
};

struct CycleStats {
  int64_t cycle = 0;
  SimTime start_time = 0.0;
  bool controller_up = true;
  int64_t scheduled_blocks = 0;
  int64_t merged_subtasks = 0;
  int64_t transfers_started = 0;
  int64_t blocks_delivered = 0;  // Deliveries completing within this cycle.
  double scheduling_seconds = 0.0;
  double routing_seconds = 0.0;
  double feedback_delay = 0.0;
};

struct RunReport {
  bool completed = false;
  SimTime completion_time = 0.0;
  int64_t deliveries = 0;
  std::vector<CycleStats> cycles;
  std::unordered_map<JobId, SimTime> job_completion;
  // Per destination server: when it finished receiving its shard.
  std::vector<std::pair<ServerId, SimTime>> server_completion;
  std::unordered_map<DcId, SimTime> dc_completion;
  std::unordered_map<ServerId, ReplicaState::ServerOriginStats> origin_stats;
  EmpiricalDistribution control_delays;   // One-way messages (Fig 11b).
  EmpiricalDistribution feedback_delays;  // Full loop (Fig 11c).
  FaultStats faults;                      // Injected-fault counters.
  // Worst (bulk_rate - usable_capacity) / nominal_capacity observed at any
  // cycle boundary; <= ~0 means no link ever exceeded its (possibly faulted)
  // capacity. Engaged only when ControllerOptions::validate_invariants was
  // on — nullopt means "not measured", which previous versions conflated
  // with a -1.0 sentinel that consumers could mistake for "no overshoot".
  std::optional<double> max_link_overshoot;
  // What the run changed in the telemetry registry (counters, gauges,
  // latency histograms) between Run() entry and exit. Empty unless
  // telemetry::Enabled() was set. Excluded from Fingerprint(): metrics carry
  // wall-clock-derived values and must never affect determinism checks.
  telemetry::MetricsSnapshot telemetry;

  std::vector<double> ServerCompletionMinutes() const;

  // Order-independent digest of every simulation-determined field (wall-clock
  // timings excluded). Two runs with the same seed and inputs must produce
  // equal fingerprints — the determinism guarantee the chaos soak checks.
  uint64_t Fingerprint() const;
};

class BdsController {
 public:
  BdsController(const Topology* topo, const WanRoutingTable* routing, ControllerOptions options);

  // Jobs may arrive at any simulated time (trace replay); arrival_time in
  // the past means "now".
  Status SubmitJob(const MulticastJob& job);

  // --- Failure script (applied as simulated time passes). ---
  // Rejects malformed scripts: unknown servers, failing an already-failed
  // server, recovering a server that was never failed (as of the scheduled
  // time), and inverted outage windows.
  Status ScheduleServerFailure(ServerId server, SimTime at);
  Status ScheduleServerRecovery(ServerId server, SimTime at);
  Status ScheduleControllerOutage(SimTime from, SimTime to);

  // Injected link / control-plane / data-plane faults; configure before
  // Run() (see src/fault/fault_injector.h).
  FaultInjector* mutable_fault_injector() { return &fault_; }
  const FaultInjector& fault_injector() const { return fault_; }

  // Attaches latency-sensitive traffic (not owned).
  void SetBackgroundTraffic(BackgroundTrafficModel* model);

  // Runs cycles until all submitted jobs complete or `deadline` passes.
  StatusOr<RunReport> Run(SimTime deadline = kTimeInfinity);

  NetworkSimulator* mutable_simulator() { return &sim_; }
  const NetworkSimulator& simulator() const { return sim_; }
  const ReplicaState& state() const { return state_; }

 private:
  struct CtrlTransfer {
    TransferAssignment assignment;
    DcId dest_dc = kInvalidDc;
    FlowId flow = kInvalidFlow;
  };
  struct ServerFailure {
    ServerId server;
    SimTime at;
    bool recovery = false;
  };
  struct Outage {
    SimTime from;
    SimTime to;
  };

  void RegisterArrivals(SimTime now);
  void ApplyFailures(SimTime now);
  // Drains due link-fault events: updates the simulator's capacity factors
  // and kills transfers crossing hard-down links (cancel-and-credit for
  // centralized ones, requeue for fallback downloads).
  void ApplyLinkFaults(SimTime now);
  // Replays the server failure/recovery script up to `at` to decide whether
  // a new event for `server` is consistent.
  Status ValidateFailureEvent(ServerId server, SimTime at, bool recovery) const;
  bool ControllerUp(SimTime now);
  // Flushes agent status reports into the controller's view state; reports
  // from DCs whose report was lost this cycle stay buffered (stale view).
  void CollectAgentReports();
  // Records a ground-truth delivery for the next status report of the
  // destination's DC (no-op unless stale reports are enabled).
  void MirrorDelivery(JobId job, int64_t block, ServerId src, ServerId dst);
  // Returns the simulated time consumed before decisions took effect
  // (> 0 only with model_decision_latency).
  SimTime RunCentralizedCycle(SimTime now, CycleStats& stats);
  // Cancels the transfer behind `tag`, credits whole delivered blocks, and
  // returns the rest to pending.
  void CancelAndCredit(int64_t tag);
  void OnFlowComplete(const FlowRecord& record);
  void RecordDelivery(JobId job, ServerId dest_server, SimTime now);

  const Topology* topo_;
  const WanRoutingTable* routing_;
  ControllerOptions options_;

  NetworkSimulator sim_;
  ReplicaState state_;
  FaultInjector fault_;
  // The controller's possibly-stale view of the replica state, fed by agent
  // status reports. Ground truth lives in state_; the two coincide (and
  // view_ stays null) unless report loss is enabled.
  std::unique_ptr<ReplicaState> view_;
  struct PendingReport {
    JobId job;
    int64_t block;
    ServerId src;
    ServerId dst;
  };
  std::unordered_map<DcId, std::vector<PendingReport>> unreported_;
  ControllerAlgorithm algorithm_;
  BandwidthSeparator separator_;
  AgentMonitor agent_monitor_;
  NetworkMonitor network_monitor_;
  ControllerReplicaSet replicas_;
  DecentralizedEngine fallback_;

  std::vector<MulticastJob> arriving_jobs_;  // Sorted by arrival time.
  size_t next_arrival_ = 0;
  int64_t jobs_submitted_ = 0;

  std::vector<ServerFailure> failures_;  // Sorted by time.
  size_t next_failure_ = 0;
  std::vector<Outage> outages_;
  bool fallback_was_active_ = false;

  std::unordered_map<int64_t, CtrlTransfer> transfers_;  // By flow tag.
  int64_t next_tag_ = 0;
  DeliveryKeySet in_flight_;

  // Completion bookkeeping.
  std::unordered_map<ServerId, SimTime> server_last_delivery_;
  std::unordered_map<JobId, SimTime> job_completion_;
  int64_t deliveries_ = 0;
  int64_t deliveries_this_cycle_ = 0;

  std::vector<DcId> active_agent_dcs_;  // DCs participating in current jobs.
};

}  // namespace bds

#endif  // BDS_SRC_CONTROL_CONTROLLER_H_
