// The BDS controller: the cycle loop of Fig 8 driving the whole system.
//
// Every Delta-T the controller (1) reads agent/network state, (2) runs the
// decoupled scheduling + routing algorithm, (3) pushes rate-pinned transfer
// decisions to agents, which the simulator executes. In-flight transfers are
// never interrupted by recomputation (non-blocking update, §5.1); their
// deliveries are excluded from rescheduling and their rates from the
// residual capacity handed to the LP.
//
// Fault tolerance (§5.3): server failures remove the agent's replicas and
// cancel its flows; when every controller replica is down, agents fall back
// to the decentralized engine until a master returns.

#ifndef BDS_SRC_CONTROL_CONTROLLER_H_
#define BDS_SRC_CONTROL_CONTROLLER_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/baselines/decentralized_engine.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/control/monitors.h"
#include "src/control/replication.h"
#include "src/scheduler/bandwidth_separator.h"
#include "src/scheduler/controller_algorithm.h"
#include "src/scheduler/replica_state.h"
#include "src/simulator/network_simulator.h"
#include "src/topology/routing.h"
#include "src/topology/topology.h"
#include "src/workload/background_traffic.h"
#include "src/workload/job.h"

namespace bds {

struct ControllerOptions {
  ControllerAlgorithmOptions algorithm;
  BandwidthSeparator::Options separation;
  LatencyModel::Options latency;
  DecentralizedEngine::Options fallback;
  ControllerReplicaSet::Options replication;
  DcId controller_dc = 0;
  // An in-flight transfer expected to need more than this many further
  // cycles (or starved to ~zero rate) is cancelled and re-planned; fully
  // delivered blocks are credited first. This is the per-cycle decision
  // refresh of §5.1 — without it a transfer the LP once allocated a tiny
  // rate could linger forever while its blocks stay locked. Generous by
  // default so healthy long transfers are left alone.
  double restall_cycles = 20.0;
  // Sample control-plane delays (Fig 11b/11c). Costs a little RNG work.
  bool measure_delays = true;
  // Charge the feedback-loop delay against the cycle: transfers start only
  // after status collection + algorithm execution + decision push. This is
  // what makes very short update cycles counter-productive (Fig 12c's knee
  // at ~3 s). Off by default so laptop-scale runs aren't dominated by it.
  bool model_decision_latency = false;
  uint64_t seed = 1;
};

struct CycleStats {
  int64_t cycle = 0;
  SimTime start_time = 0.0;
  bool controller_up = true;
  int64_t scheduled_blocks = 0;
  int64_t merged_subtasks = 0;
  int64_t transfers_started = 0;
  int64_t blocks_delivered = 0;  // Deliveries completing within this cycle.
  double scheduling_seconds = 0.0;
  double routing_seconds = 0.0;
  double feedback_delay = 0.0;
};

struct RunReport {
  bool completed = false;
  SimTime completion_time = 0.0;
  int64_t deliveries = 0;
  std::vector<CycleStats> cycles;
  std::unordered_map<JobId, SimTime> job_completion;
  // Per destination server: when it finished receiving its shard.
  std::vector<std::pair<ServerId, SimTime>> server_completion;
  std::unordered_map<DcId, SimTime> dc_completion;
  std::unordered_map<ServerId, ReplicaState::ServerOriginStats> origin_stats;
  EmpiricalDistribution control_delays;   // One-way messages (Fig 11b).
  EmpiricalDistribution feedback_delays;  // Full loop (Fig 11c).

  std::vector<double> ServerCompletionMinutes() const;
};

class BdsController {
 public:
  BdsController(const Topology* topo, const WanRoutingTable* routing, ControllerOptions options);

  // Jobs may arrive at any simulated time (trace replay); arrival_time in
  // the past means "now".
  Status SubmitJob(const MulticastJob& job);

  // --- Failure script (applied as simulated time passes). ---
  void ScheduleServerFailure(ServerId server, SimTime at);
  void ScheduleServerRecovery(ServerId server, SimTime at);
  void ScheduleControllerOutage(SimTime from, SimTime to);

  // Attaches latency-sensitive traffic (not owned).
  void SetBackgroundTraffic(BackgroundTrafficModel* model);

  // Runs cycles until all submitted jobs complete or `deadline` passes.
  StatusOr<RunReport> Run(SimTime deadline = kTimeInfinity);

  NetworkSimulator* mutable_simulator() { return &sim_; }
  const NetworkSimulator& simulator() const { return sim_; }
  const ReplicaState& state() const { return state_; }

 private:
  struct CtrlTransfer {
    TransferAssignment assignment;
    DcId dest_dc = kInvalidDc;
    FlowId flow = kInvalidFlow;
  };
  struct ServerFailure {
    ServerId server;
    SimTime at;
    bool recovery = false;
  };
  struct Outage {
    SimTime from;
    SimTime to;
  };

  void RegisterArrivals(SimTime now);
  void ApplyFailures(SimTime now);
  bool ControllerUp(SimTime now);
  // Returns the simulated time consumed before decisions took effect
  // (> 0 only with model_decision_latency).
  SimTime RunCentralizedCycle(SimTime now, CycleStats& stats);
  // Cancels the transfer behind `tag`, credits whole delivered blocks, and
  // returns the rest to pending.
  void CancelAndCredit(int64_t tag);
  void OnFlowComplete(const FlowRecord& record);
  void RecordDelivery(JobId job, ServerId dest_server, SimTime now);

  const Topology* topo_;
  const WanRoutingTable* routing_;
  ControllerOptions options_;

  NetworkSimulator sim_;
  ReplicaState state_;
  ControllerAlgorithm algorithm_;
  BandwidthSeparator separator_;
  AgentMonitor agent_monitor_;
  NetworkMonitor network_monitor_;
  ControllerReplicaSet replicas_;
  DecentralizedEngine fallback_;

  std::vector<MulticastJob> arriving_jobs_;  // Sorted by arrival time.
  size_t next_arrival_ = 0;
  int64_t jobs_submitted_ = 0;

  std::vector<ServerFailure> failures_;  // Sorted by time.
  size_t next_failure_ = 0;
  std::vector<Outage> outages_;
  bool fallback_was_active_ = false;

  std::unordered_map<int64_t, CtrlTransfer> transfers_;  // By flow tag.
  int64_t next_tag_ = 0;
  DeliveryKeySet in_flight_;

  // Completion bookkeeping.
  std::unordered_map<ServerId, SimTime> server_last_delivery_;
  std::unordered_map<JobId, SimTime> job_completion_;
  int64_t deliveries_ = 0;
  int64_t deliveries_this_cycle_ = 0;

  std::vector<DcId> active_agent_dcs_;  // DCs participating in current jobs.
};

}  // namespace bds

#endif  // BDS_SRC_CONTROL_CONTROLLER_H_
