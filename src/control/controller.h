// The BDS controller: the cycle loop of Fig 8 driving the whole system.
//
// Every Delta-T the controller (1) reads agent/network state, (2) runs the
// decoupled scheduling + routing algorithm, (3) pushes rate-pinned transfer
// decisions to agents, which the simulator executes. In-flight transfers are
// never interrupted by recomputation (non-blocking update, §5.1); their
// deliveries are excluded from rescheduling and their rates from the
// residual capacity handed to the LP.
//
// Fault tolerance (§5.3): server failures remove the agent's replicas and
// cancel its flows; when every controller replica is down, agents fall back
// to the decentralized engine until a master returns.
//
// Injected faults (src/fault): the controller drains the FaultInjector's
// link timeline every cycle (hard-down links kill crossing transfers, which
// are cancelled-and-credited and re-planned over surviving paths), schedules
// against a *view* ReplicaState that lags ground truth while agent status
// reports are lost, drops decision pushes per agent until the agent's
// retry/escalation forces them through, and verifies a per-block checksum on
// delivery — corrupted blocks are not credited and re-enter rarest-first.
// All faults are seeded and deterministic: one seed, one byte-identical run.

#ifndef BDS_SRC_CONTROL_CONTROLLER_H_
#define BDS_SRC_CONTROL_CONTROLLER_H_

#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/baselines/decentralized_engine.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/control/monitors.h"
#include "src/control/overload.h"
#include "src/control/replication.h"
#include "src/fault/fault_injector.h"
#include "src/scheduler/admission.h"
#include "src/scheduler/bandwidth_separator.h"
#include "src/scheduler/controller_algorithm.h"
#include "src/scheduler/replica_state.h"
#include "src/simulator/network_simulator.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/timeseries.h"
#include "src/topology/routing.h"
#include "src/topology/topology.h"
#include "src/workload/arrival_process.h"
#include "src/workload/background_traffic.h"
#include "src/workload/job.h"

namespace bds {

struct ControllerOptions {
  ControllerAlgorithmOptions algorithm;
  BandwidthSeparator::Options separation;
  LatencyModel::Options latency;
  DecentralizedEngine::Options fallback;
  ControllerReplicaSet::Options replication;
  DcId controller_dc = 0;
  // An in-flight transfer expected to need more than this many further
  // cycles (or starved to ~zero rate) is cancelled and re-planned; fully
  // delivered blocks are credited first. This is the per-cycle decision
  // refresh of §5.1 — without it a transfer the LP once allocated a tiny
  // rate could linger forever while its blocks stay locked. Generous by
  // default so healthy long transfers are left alone.
  double restall_cycles = 20.0;
  // Sample control-plane delays (Fig 11b/11c). Costs a little RNG work.
  bool measure_delays = true;
  // Charge the feedback-loop delay against the cycle: transfers start only
  // after status collection + algorithm execution + decision push. This is
  // what makes very short update cycles counter-productive (Fig 12c's knee
  // at ~3 s). Off by default so laptop-scale runs aren't dominated by it.
  bool model_decision_latency = false;
  // Check hard invariants every cycle (link rates within faulted capacity)
  // and record the worst violation in the report. Costs O(flows + links) per
  // cycle, so off by default; the chaos soak turns it on.
  bool validate_invariants = false;
  uint64_t seed = 1;
};

struct CycleStats {
  int64_t cycle = 0;
  SimTime start_time = 0.0;
  bool controller_up = true;
  int64_t scheduled_blocks = 0;
  int64_t merged_subtasks = 0;
  int64_t transfers_started = 0;
  int64_t blocks_delivered = 0;  // Deliveries completing within this cycle.
  double scheduling_seconds = 0.0;
  double routing_seconds = 0.0;
  double feedback_delay = 0.0;
  // Degradation rung this cycle ran at (DegradationRung as int) and the cost
  // the watchdog charged it. The rung is simulation-determined; the cost is
  // too unless use_measured_cost is on.
  int rung = 0;
  double modeled_cost_seconds = 0.0;
};

// Why Run() returned — a bare `completed` bool conflated "drained every job"
// with "gave up": a wedged run and a deadline-bounded steady-state run both
// reported completed=false.
enum class StopReason {
  kDrained,   // Every arrived job completed and no more arrivals are due.
  kDeadline,  // Simulated deadline passed with work still outstanding.
  kWedged,    // Nothing pending can ever complete (e.g. every holder failed).
  kAborted,   // Hard cycle cap hit — a wedge the detector could not prove.
};

const char* StopReasonName(StopReason reason);

struct RunReport {
  bool completed = false;
  StopReason stop_reason = StopReason::kDeadline;
  SimTime completion_time = 0.0;
  int64_t deliveries = 0;
  // Per-cycle stats. In bounded-memory service mode only the most recent
  // cycles are kept (ConfigureRetirement); total_cycles and cycles_digest
  // always cover the whole run, so the fingerprint does not depend on how
  // much history was retained.
  std::vector<CycleStats> cycles;
  int64_t total_cycles = 0;
  uint64_t cycles_digest = 0;
  std::unordered_map<JobId, SimTime> job_completion;
  // Per destination server: when it finished receiving its shard.
  std::vector<std::pair<ServerId, SimTime>> server_completion;
  std::unordered_map<DcId, SimTime> dc_completion;
  std::unordered_map<ServerId, ReplicaState::ServerOriginStats> origin_stats;
  EmpiricalDistribution control_delays;   // One-way messages (Fig 11b).
  EmpiricalDistribution feedback_delays;  // Full loop (Fig 11c).
  FaultStats faults;                      // Injected-fault counters.
  // Worst (bulk_rate - usable_capacity) / nominal_capacity observed at any
  // cycle boundary; <= ~0 means no link ever exceeded its (possibly faulted)
  // capacity. Engaged only when ControllerOptions::validate_invariants was
  // on — nullopt means "not measured", which previous versions conflated
  // with a -1.0 sentinel that consumers could mistake for "no overshoot".
  std::optional<double> max_link_overshoot;
  // What the run changed in the telemetry registry (counters, gauges,
  // latency histograms) between Run() entry and exit. Empty unless
  // telemetry::Enabled() was set. Excluded from Fingerprint(): metrics carry
  // wall-clock-derived values and must never affect determinism checks.
  telemetry::MetricsSnapshot telemetry;

  // Steady-state service accounting. jobs_completed_total and
  // completion_digest survive retirement (job_completion only holds
  // unretired jobs in bounded-memory mode). job_durations holds every
  // completed job's arrival-to-completion time; the percentile fields are
  // precomputed from it (excluded from Fingerprint, like control_delays —
  // the digest already covers every sample).
  int64_t jobs_completed_total = 0;
  uint64_t completion_digest = 0;
  int64_t retired_jobs = 0;
  int64_t retired_blocks = 0;
  EmpiricalDistribution job_durations;
  double completion_p50 = 0.0;
  double completion_p95 = 0.0;
  double completion_p99 = 0.0;
  // High-water marks sampled at cycle boundaries — the bounded-memory soak
  // asserts these plateau while retired counts keep growing.
  int64_t peak_live_pending = 0;
  int64_t peak_live_jobs = 0;
  int64_t peak_live_flows = 0;

  std::vector<double> ServerCompletionMinutes() const;

  // Order-independent digest of every simulation-determined field (wall-clock
  // timings excluded). Two runs with the same seed and inputs must produce
  // equal fingerprints — the determinism guarantee the chaos soak checks.
  uint64_t Fingerprint() const;
};

class BdsController {
 public:
  BdsController(const Topology* topo, const WanRoutingTable* routing, ControllerOptions options);

  // Jobs may arrive at any simulated time (trace replay); arrival_time in
  // the past means "now".
  Status SubmitJob(const MulticastJob& job);

  // --- Failure script (applied as simulated time passes). ---
  // Rejects malformed scripts: unknown servers, failing an already-failed
  // server, recovering a server that was never failed (as of the scheduled
  // time), and inverted outage windows.
  Status ScheduleServerFailure(ServerId server, SimTime at);
  Status ScheduleServerRecovery(ServerId server, SimTime at);
  Status ScheduleControllerOutage(SimTime from, SimTime to);
  // Individual controller-replica fail/recover events (the replica set
  // handles master election and failover delay; a headless window behaves
  // like a controller outage). Events apply in scheduled order.
  Status ScheduleReplicaFailure(int replica, SimTime at);
  Status ScheduleReplicaRecovery(int replica, SimTime at);

  // --- Long-running service mode. Configure before Run(). ---
  // Cycle-deadline watchdog + degradation ladder. Knobs the cost model needs
  // (cycle length, route count, epsilon) are taken from the algorithm
  // options, not from `options`, so pricing always matches what runs.
  void ConfigureOverload(const OverloadOptions& options);
  // Admission control over open-loop arrivals (script-submitted jobs are
  // always accepted — they model operator-initiated work).
  void ConfigureAdmission(const AdmissionOptions& options);
  // Bounded memory: retire completed jobs from the replica state, cap the
  // simulator's completed-flow history (`completed_flow_history`, -1 keeps
  // all) and the per-cycle stats kept in the report (`max_cycle_stats`,
  // 0 keeps all).
  void ConfigureRetirement(bool retire_completed, int64_t completed_flow_history,
                           int64_t max_cycle_stats);
  // Pulls jobs from `arrivals` (not owned; must outlive Run) as simulated
  // time passes, until NextArrivalTime() reaches `stop_time`.
  void SetArrivalProcess(ArrivalProcess* arrivals, SimTime stop_time);

  // SLO time-series sampler (src/telemetry/timeseries.h): fixed simulated-Δt
  // samples of service health plus the burn-rate alert detector. Pure
  // observation — fingerprints are bit-identical with it on or off. The
  // tracked links are the max_tracked_links highest-capacity WAN links
  // (deterministic tie-break by link id).
  Status ConfigureTimeseries(const telemetry::TimeseriesOptions& options);

  const CycleWatchdog& watchdog() const { return watchdog_; }
  const AdmissionController& admission() const { return admission_; }
  // Null until ConfigureTimeseries enables it.
  const telemetry::SloTimeseries* timeseries() const { return timeseries_.get(); }

  // Injected link / control-plane / data-plane faults; configure before
  // Run() (see src/fault/fault_injector.h).
  FaultInjector* mutable_fault_injector() { return &fault_; }
  const FaultInjector& fault_injector() const { return fault_; }

  // Attaches latency-sensitive traffic (not owned).
  void SetBackgroundTraffic(BackgroundTrafficModel* model);

  // Runs cycles until all submitted jobs complete or `deadline` passes.
  StatusOr<RunReport> Run(SimTime deadline = kTimeInfinity);

  NetworkSimulator* mutable_simulator() { return &sim_; }
  const NetworkSimulator& simulator() const { return sim_; }
  const ReplicaState& state() const { return state_; }

 private:
  struct CtrlTransfer {
    TransferAssignment assignment;
    DcId dest_dc = kInvalidDc;
    FlowId flow = kInvalidFlow;
  };
  struct ServerFailure {
    ServerId server;
    SimTime at;
    bool recovery = false;
  };
  struct Outage {
    SimTime from;
    SimTime to;
  };
  struct ReplicaEvent {
    int replica;
    SimTime at;
    bool recovery;
  };

  void RegisterArrivals(SimTime now);
  // Admission-gated pull from the open-loop arrival process plus the
  // deferred-job FIFO; returns whether any job was registered.
  bool RegisterOpenArrivals(SimTime now);
  void AdmitJobNow(const MulticastJob& job);
  void ApplyReplicaEvents(SimTime now);
  // Drops jobs recorded complete from the replica state(s); jobs a server
  // failure re-owed stay queued until they complete again.
  void RetireCompleted();
  int64_t JobDeliveries(const MulticastJob& job) const;
  void ApplyFailures(SimTime now);
  // Drains due link-fault events: updates the simulator's capacity factors
  // and kills transfers crossing hard-down links (cancel-and-credit for
  // centralized ones, requeue for fallback downloads).
  void ApplyLinkFaults(SimTime now);
  // Replays the server failure/recovery script up to `at` to decide whether
  // a new event for `server` is consistent.
  Status ValidateFailureEvent(ServerId server, SimTime at, bool recovery) const;
  bool ControllerUp(SimTime now);
  // Flushes agent status reports into the controller's view state; reports
  // from DCs whose report was lost this cycle stay buffered (stale view).
  void CollectAgentReports();
  // Records a ground-truth delivery for the next status report of the
  // destination's DC (no-op unless stale reports are enabled).
  void MirrorDelivery(JobId job, int64_t block, ServerId src, ServerId dst);
  // Returns the simulated time consumed before decisions took effect
  // (> 0 only with model_decision_latency).
  SimTime RunCentralizedCycle(SimTime now, CycleStats& stats);
  // Cancels the transfer behind `tag`, credits whole delivered blocks, and
  // returns the rest to pending. `reason` is a static string for the flight
  // recorder ("stalled", "link_down", ...).
  void CancelAndCredit(int64_t tag, const char* reason);
  void OnFlowComplete(const FlowRecord& record);
  void RecordDelivery(JobId job, ServerId dest_server, SimTime now);

  const Topology* topo_;
  const WanRoutingTable* routing_;
  ControllerOptions options_;

  NetworkSimulator sim_;
  ReplicaState state_;
  FaultInjector fault_;
  // The controller's possibly-stale view of the replica state, fed by agent
  // status reports. Ground truth lives in state_; the two coincide (and
  // view_ stays null) unless report loss is enabled.
  std::unique_ptr<ReplicaState> view_;
  struct PendingReport {
    JobId job;
    int64_t block;
    ServerId src;
    ServerId dst;
  };
  std::unordered_map<DcId, std::vector<PendingReport>> unreported_;
  ControllerAlgorithm algorithm_;
  BandwidthSeparator separator_;
  AgentMonitor agent_monitor_;
  NetworkMonitor network_monitor_;
  ControllerReplicaSet replicas_;
  DecentralizedEngine fallback_;

  std::vector<MulticastJob> arriving_jobs_;  // Sorted by arrival time.
  size_t next_arrival_ = 0;
  int64_t jobs_submitted_ = 0;

  std::vector<ServerFailure> failures_;  // Sorted by time.
  size_t next_failure_ = 0;
  std::vector<Outage> outages_;
  bool fallback_was_active_ = false;

  std::unordered_map<int64_t, CtrlTransfer> transfers_;  // By flow tag.
  int64_t next_tag_ = 0;
  DeliveryKeySet in_flight_;

  // Completion bookkeeping.
  std::unordered_map<ServerId, SimTime> server_last_delivery_;
  std::unordered_map<JobId, SimTime> job_completion_;
  int64_t deliveries_ = 0;
  int64_t deliveries_this_cycle_ = 0;

  std::vector<DcId> active_agent_dcs_;  // DCs participating in current jobs.

  // --- Long-running service mode. ---
  CycleWatchdog watchdog_;
  AdmissionController admission_;
  std::unique_ptr<telemetry::SloTimeseries> timeseries_;
  std::vector<LinkId> timeseries_links_;  // Tracked WAN links, fixed order.
  // Cumulative per-phase CPU handed to the sampler (wall-derived; excluded
  // from every fingerprint, like RunReport::telemetry).
  double ts_select_cpu_ = 0.0;
  double ts_solve_cpu_ = 0.0;
  double ts_merge_cpu_ = 0.0;
  ArrivalProcess* open_arrivals_ = nullptr;  // Not owned.
  SimTime arrivals_stop_ = 0.0;
  std::deque<MulticastJob> deferred_jobs_;
  int64_t deferred_deliveries_ = 0;

  std::vector<ReplicaEvent> replica_events_;  // Sorted by time.
  size_t next_replica_event_ = 0;

  bool retire_completed_ = false;
  int64_t max_cycle_stats_ = 0;          // 0 = keep every CycleStats.
  std::vector<JobId> retirable_;         // Completed, awaiting retirement.
  EmpiricalDistribution completion_durations_;
  uint64_t completion_digest_ = 0x9E3779B97F4A7C15ULL;
  uint64_t cycles_digest_ = 0x9E3779B97F4A7C15ULL;
  int64_t total_cycles_ = 0;
  int64_t jobs_completed_total_ = 0;
  int64_t peak_live_pending_ = 0;
  int64_t peak_live_jobs_ = 0;
  int64_t peak_live_flows_ = 0;
};

}  // namespace bds

#endif  // BDS_SRC_CONTROL_CONTROLLER_H_
