#include "src/control/replication.h"

#include "src/common/status.h"

namespace bds {

ControllerReplicaSet::ControllerReplicaSet(Options options) : options_(options) {
  BDS_CHECK(options_.num_replicas >= 1);
  BDS_CHECK(options_.failover_delay >= 0.0);
  alive_.assign(static_cast<size_t>(options_.num_replicas), true);
}

Status ControllerReplicaSet::FailReplica(int idx, SimTime t) {
  if (idx < 0 || idx >= num_replicas()) {
    return InvalidArgumentError("FailReplica: no such replica");
  }
  if (!alive_[static_cast<size_t>(idx)]) {
    return Status::Ok();  // Already down.
  }
  alive_[static_cast<size_t>(idx)] = false;
  if (idx == master_) {
    master_ = -1;
    master_ready_at_ = t + options_.failover_delay;
    MaybeElect(t);
  }
  return Status::Ok();
}

Status ControllerReplicaSet::RecoverReplica(int idx, SimTime t) {
  if (idx < 0 || idx >= num_replicas()) {
    return InvalidArgumentError("RecoverReplica: no such replica");
  }
  if (alive_[static_cast<size_t>(idx)]) {
    return Status::Ok();
  }
  alive_[static_cast<size_t>(idx)] = true;
  if (master_ < 0) {
    master_ready_at_ = t + options_.failover_delay;
    MaybeElect(t);
  }
  return Status::Ok();
}

void ControllerReplicaSet::MaybeElect(SimTime t) {
  (void)t;
  if (master_ >= 0) {
    return;
  }
  for (int i = 0; i < num_replicas(); ++i) {
    if (alive_[static_cast<size_t>(i)]) {
      master_ = i;
      ++elections_;
      return;
    }
  }
  // No live replica; stays headless until a recovery.
}

bool ControllerReplicaSet::HasMaster(SimTime t) { return MasterIndex(t) >= 0; }

int ControllerReplicaSet::MasterIndex(SimTime t) {
  MaybeElect(t);
  if (master_ < 0) {
    return -1;
  }
  if (t < master_ready_at_) {
    return -1;  // Election / lease takeover still in progress.
  }
  return master_;
}

}  // namespace bds
