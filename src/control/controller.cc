#include "src/control/controller.h"

#include <algorithm>
#include <cstring>

#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/telemetry.h"

namespace bds {

std::vector<double> RunReport::ServerCompletionMinutes() const {
  std::vector<double> out;
  out.reserve(server_completion.size());
  for (const auto& [server, t] : server_completion) {
    out.push_back(ToMinutes(t));
  }
  return out;
}

namespace {
// splitmix64-style stream mixing, shared by RunReport::Fingerprint and the
// incremental digests the controller maintains (cycles, completions).
uint64_t MixU64(uint64_t h, uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 31;
  return h;
}

uint64_t MixDoubleU64(uint64_t h, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return MixU64(h, bits);
}

struct Digest {
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  void Mix(uint64_t v) { h = MixU64(h, v); }
  void MixDouble(double v) { h = MixDoubleU64(h, v); }
};

// Simulation-determined cycle fields folded into RunReport::cycles_digest.
// Wall-clock-derived values (scheduling/routing seconds, the feedback delay,
// which folds the algorithm's measured runtime in, and modeled_cost_seconds
// when use_measured_cost is on) are excluded: they vary run to run without
// the simulation differing.
uint64_t MixCycle(uint64_t h, const CycleStats& c) {
  h = MixU64(h, static_cast<uint64_t>(c.cycle));
  h = MixDoubleU64(h, c.start_time);
  h = MixU64(h, c.controller_up ? 1 : 0);
  h = MixU64(h, static_cast<uint64_t>(c.scheduled_blocks));
  h = MixU64(h, static_cast<uint64_t>(c.merged_subtasks));
  h = MixU64(h, static_cast<uint64_t>(c.transfers_started));
  h = MixU64(h, static_cast<uint64_t>(c.blocks_delivered));
  h = MixU64(h, static_cast<uint64_t>(c.rung));
  return h;
}
}  // namespace

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kDrained:
      return "drained";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kWedged:
      return "wedged";
    case StopReason::kAborted:
      return "aborted";
  }
  return "unknown";
}

uint64_t RunReport::Fingerprint() const {
  Digest d;
  d.Mix(completed ? 1 : 0);
  d.Mix(static_cast<uint64_t>(stop_reason));
  d.MixDouble(completion_time);
  d.Mix(static_cast<uint64_t>(deliveries));
  // The per-cycle history may be truncated in bounded-memory mode, so the
  // fingerprint covers cycles through the incrementally-maintained digest
  // (same fields MixCycle lists) rather than the retained vector.
  d.Mix(static_cast<uint64_t>(total_cycles));
  d.Mix(cycles_digest);
  d.Mix(static_cast<uint64_t>(jobs_completed_total));
  d.Mix(completion_digest);
  d.Mix(static_cast<uint64_t>(retired_jobs));
  d.Mix(static_cast<uint64_t>(retired_blocks));
  d.Mix(static_cast<uint64_t>(peak_live_pending));
  d.Mix(static_cast<uint64_t>(peak_live_jobs));
  d.Mix(static_cast<uint64_t>(peak_live_flows));
  auto mix_sorted = [&d](const auto& map) {
    std::vector<std::pair<int64_t, double>> entries;
    entries.reserve(map.size());
    for (const auto& [k, v] : map) {
      entries.emplace_back(static_cast<int64_t>(k), v);
    }
    std::sort(entries.begin(), entries.end());
    for (const auto& [k, v] : entries) {
      d.Mix(static_cast<uint64_t>(k));
      d.MixDouble(v);
    }
  };
  mix_sorted(job_completion);
  mix_sorted(dc_completion);
  for (const auto& [server, t] : server_completion) {  // Already sorted.
    d.Mix(static_cast<uint64_t>(server));
    d.MixDouble(t);
  }
  {
    std::vector<std::pair<ServerId, ReplicaState::ServerOriginStats>> entries(
        origin_stats.begin(), origin_stats.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [server, s] : entries) {
      d.Mix(static_cast<uint64_t>(server));
      d.Mix(static_cast<uint64_t>(s.from_origin));
      d.Mix(static_cast<uint64_t>(s.total));
    }
  }
  d.Mix(static_cast<uint64_t>(faults.link_events));
  d.Mix(static_cast<uint64_t>(faults.flows_killed));
  d.Mix(static_cast<uint64_t>(faults.reports_lost));
  d.Mix(static_cast<uint64_t>(faults.reports_forced));
  d.Mix(static_cast<uint64_t>(faults.pushes_dropped));
  d.Mix(static_cast<uint64_t>(faults.pushes_escalated));
  d.Mix(static_cast<uint64_t>(faults.blocks_corrupted));
  // Mix presence separately from the value so "not measured" and a measured
  // 0.0 stay distinguishable. The telemetry snapshot is deliberately NOT
  // mixed: it contains wall-clock latency histograms.
  d.Mix(max_link_overshoot.has_value() ? 1 : 0);
  d.MixDouble(max_link_overshoot.value_or(0.0));
  return d.h;
}

BdsController::BdsController(const Topology* topo, const WanRoutingTable* routing,
                             ControllerOptions options)
    : topo_(topo),
      routing_(routing),
      options_(options),
      sim_(topo),
      state_(topo),
      fault_(options.seed ^ 0xFA017ULL),
      algorithm_(topo, routing, options.algorithm),
      separator_(topo, options.separation),
      agent_monitor_(topo, options.controller_dc, options.latency),
      network_monitor_(topo),
      replicas_(options.replication),
      fallback_(topo, routing, &sim_, &state_,
                [&options] {
                  DecentralizedEngine::Options o = options.fallback;
                  o.seed = options.seed ^ 0xFA11BACC;
                  return o;
                }()) {
  BDS_CHECK(topo != nullptr && routing != nullptr);
  sim_.SetCompletionCallback([this](const FlowRecord& r) { OnFlowComplete(r); });
  fallback_.SetDeliveryCallback([this](JobId job, int64_t block, ServerId src, ServerId dst) {
    MirrorDelivery(job, block, src, dst);
    RecordDelivery(job, dst, sim_.now());
  });
  fallback_.SetCorruptionHook(
      [this](JobId, int64_t) { return fault_.DrawBlockCorrupted(); });
  fallback_.Deactivate();
}

Status BdsController::SubmitJob(const MulticastJob& job) {
  BDS_RETURN_IF_ERROR(job.Validate(topo_->num_dcs()));
  arriving_jobs_.push_back(job);
  std::sort(arriving_jobs_.begin() + static_cast<long>(next_arrival_), arriving_jobs_.end(),
            [](const MulticastJob& a, const MulticastJob& b) {
              return a.arrival_time < b.arrival_time;
            });
  ++jobs_submitted_;
  return Status::Ok();
}

Status BdsController::ValidateFailureEvent(ServerId server, SimTime at, bool recovery) const {
  if (server < 0 || server >= topo_->num_servers()) {
    return InvalidArgumentError("failure script: no such server");
  }
  if (at < 0.0) {
    return InvalidArgumentError("failure script: event time is negative");
  }
  // Replay every already-scheduled event for this server up to `at` to find
  // whether it would be up or down when the new event fires.
  std::vector<std::pair<SimTime, bool>> events;  // (time, recovery)
  for (const ServerFailure& f : failures_) {
    if (f.server == server && f.at <= at + kFluidEpsilon) {
      events.emplace_back(f.at, f.recovery);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  bool down = false;
  for (const auto& [t, rec] : events) {
    down = !rec;
  }
  if (!recovery && down) {
    return FailedPreconditionError("failure script: server is already failed at that time");
  }
  if (recovery && !down) {
    return FailedPreconditionError(
        "failure script: recovery scheduled for a server that is not failed at that time");
  }
  return Status::Ok();
}

Status BdsController::ScheduleServerFailure(ServerId server, SimTime at) {
  BDS_RETURN_IF_ERROR(ValidateFailureEvent(server, at, /*recovery=*/false));
  failures_.push_back(ServerFailure{server, at, /*recovery=*/false});
  std::sort(failures_.begin() + static_cast<long>(next_failure_), failures_.end(),
            [](const ServerFailure& a, const ServerFailure& b) { return a.at < b.at; });
  return Status::Ok();
}

Status BdsController::ScheduleServerRecovery(ServerId server, SimTime at) {
  BDS_RETURN_IF_ERROR(ValidateFailureEvent(server, at, /*recovery=*/true));
  failures_.push_back(ServerFailure{server, at, /*recovery=*/true});
  std::sort(failures_.begin() + static_cast<long>(next_failure_), failures_.end(),
            [](const ServerFailure& a, const ServerFailure& b) { return a.at < b.at; });
  return Status::Ok();
}

Status BdsController::ScheduleControllerOutage(SimTime from, SimTime to) {
  if (from >= to) {
    return InvalidArgumentError("failure script: controller outage window is inverted");
  }
  if (from < 0.0) {
    return InvalidArgumentError("failure script: controller outage starts before t=0");
  }
  outages_.push_back(Outage{from, to});
  return Status::Ok();
}

Status BdsController::ScheduleReplicaFailure(int replica, SimTime at) {
  if (replica < 0 || replica >= replicas_.num_replicas()) {
    return InvalidArgumentError("failure script: no such controller replica");
  }
  if (at < 0.0) {
    return InvalidArgumentError("failure script: event time is negative");
  }
  replica_events_.push_back(ReplicaEvent{replica, at, /*recovery=*/false});
  std::sort(replica_events_.begin() + static_cast<long>(next_replica_event_),
            replica_events_.end(),
            [](const ReplicaEvent& a, const ReplicaEvent& b) { return a.at < b.at; });
  return Status::Ok();
}

Status BdsController::ScheduleReplicaRecovery(int replica, SimTime at) {
  if (replica < 0 || replica >= replicas_.num_replicas()) {
    return InvalidArgumentError("failure script: no such controller replica");
  }
  if (at < 0.0) {
    return InvalidArgumentError("failure script: event time is negative");
  }
  replica_events_.push_back(ReplicaEvent{replica, at, /*recovery=*/true});
  std::sort(replica_events_.begin() + static_cast<long>(next_replica_event_),
            replica_events_.end(),
            [](const ReplicaEvent& a, const ReplicaEvent& b) { return a.at < b.at; });
  return Status::Ok();
}

void BdsController::ApplyReplicaEvents(SimTime now) {
  while (next_replica_event_ < replica_events_.size() &&
         replica_events_[next_replica_event_].at <= now + kFluidEpsilon) {
    const ReplicaEvent& e = replica_events_[next_replica_event_];
    ++next_replica_event_;
    // Fail/recover are idempotent in the replica set, so a chaos plan that
    // fails an already-down replica is harmless.
    Status s = e.recovery ? replicas_.RecoverReplica(e.replica, e.at)
                          : replicas_.FailReplica(e.replica, e.at);
    BDS_CHECK_MSG(s.ok(), s.ToString().c_str());
    if (e.recovery) {
      BDS_TELEMETRY_COUNT("controller.replica_recoveries", 1);
    } else {
      // A failing-over controller replica rebuilds its view from scratch;
      // cross-cycle caches keyed on the previous master's state must not
      // survive the handoff.
      algorithm_.InvalidateCycleCache();
      BDS_TELEMETRY_COUNT("controller.replica_failures", 1);
    }
  }
}

void BdsController::ConfigureOverload(const OverloadOptions& options) {
  OverloadOptions o = options;
  // Pricing knobs must match what actually runs, so they come from the
  // algorithm options regardless of what the caller filled in.
  o.cycle_length = options_.algorithm.cycle_length;
  o.max_wan_routes = options_.algorithm.max_wan_routes;
  o.fptas_epsilon = options_.algorithm.fptas_epsilon;
  o.degraded_epsilon_factor = options_.algorithm.degraded_epsilon_factor;
  watchdog_ = CycleWatchdog(o);
}

void BdsController::ConfigureAdmission(const AdmissionOptions& options) {
  admission_ = AdmissionController(options);
}

Status BdsController::ConfigureTimeseries(const telemetry::TimeseriesOptions& options) {
  BDS_RETURN_IF_ERROR(telemetry::ValidateTimeseriesOptions(options));
  if (!options.enabled) {
    timeseries_.reset();
    timeseries_links_.clear();
    return Status::Ok();
  }
  timeseries_ = std::make_unique<telemetry::SloTimeseries>(options);
  // Track the highest-capacity WAN links (tie-break by id so the selection
  // is deterministic), reported in ascending-id order.
  std::vector<std::pair<Rate, LinkId>> wan;
  for (LinkId l = 0; l < topo_->num_links(); ++l) {
    if (topo_->link(l).type == LinkType::kWan) {
      wan.emplace_back(-topo_->link(l).capacity, l);
    }
  }
  std::sort(wan.begin(), wan.end());
  std::vector<LinkId> tracked;
  for (const auto& [neg_cap, l] : wan) {
    if (static_cast<int>(tracked.size()) >= options.max_tracked_links) {
      break;
    }
    tracked.push_back(l);
  }
  std::sort(tracked.begin(), tracked.end());
  timeseries_->SetTrackedLinks(tracked);
  timeseries_links_ = timeseries_->tracked_links();
  ts_select_cpu_ = 0.0;
  ts_solve_cpu_ = 0.0;
  ts_merge_cpu_ = 0.0;
  return Status::Ok();
}

void BdsController::ConfigureRetirement(bool retire_completed, int64_t completed_flow_history,
                                        int64_t max_cycle_stats) {
  retire_completed_ = retire_completed;
  max_cycle_stats_ = max_cycle_stats;
  sim_.set_completed_history_limit(completed_flow_history);
}

void BdsController::SetArrivalProcess(ArrivalProcess* arrivals, SimTime stop_time) {
  open_arrivals_ = arrivals;
  arrivals_stop_ = stop_time;
}

void BdsController::SetBackgroundTraffic(BackgroundTrafficModel* model) {
  network_monitor_.SetTrafficModel(model);
}

void BdsController::AdmitJobNow(const MulticastJob& job) {
  {
    telemetry::FlightRecorder& fr = telemetry::FlightRecorder::Global();
    if (fr.active()) {
      fr.Arrival(job.id, sim_.now(), job.source_dc, static_cast<int>(job.dest_dcs.size()),
                 job.num_blocks(), job.total_bytes);
    }
  }
  Status s = state_.AddJob(job);
  BDS_CHECK_MSG(s.ok(), s.ToString().c_str());
  if (view_ != nullptr) {
    // Job submission goes through the controller, so the view learns of
    // new jobs immediately — only delivery reports can go stale.
    Status vs = view_->AddJob(job);
    BDS_CHECK_MSG(vs.ok(), vs.ToString().c_str());
  }
  // Track participating DCs for feedback-delay sampling.
  auto note_dc = [this](DcId d) {
    if (std::find(active_agent_dcs_.begin(), active_agent_dcs_.end(), d) ==
        active_agent_dcs_.end()) {
      active_agent_dcs_.push_back(d);
    }
  };
  note_dc(job.source_dc);
  for (DcId d : job.dest_dcs) {
    note_dc(d);
  }
}

int64_t BdsController::JobDeliveries(const MulticastJob& job) const {
  return job.num_blocks() * static_cast<int64_t>(job.dest_dcs.size());
}

bool BdsController::RegisterOpenArrivals(SimTime now) {
  telemetry::FlightRecorder& fr = telemetry::FlightRecorder::Global();
  bool added = false;
  // Re-offer deferred jobs first, FIFO: stop at the first still-deferred so
  // admission order is preserved.
  while (!deferred_jobs_.empty()) {
    const int64_t jd = JobDeliveries(deferred_jobs_.front());
    // The front job's own demand is part of deferred_deliveries_; the
    // backlog it would join excludes it.
    const int64_t backlog = state_.num_pending() + deferred_deliveries_ - jd;
    if (admission_.ReofferDeferred(jd, backlog) != AdmissionDecision::kAccept) {
      break;
    }
    admission_.CountAccepted();
    if (fr.active()) {
      fr.AdmissionVerdict(deferred_jobs_.front().id, now, "accept", admission_.last_reason(),
                          backlog);
    }
    deferred_deliveries_ -= jd;
    MulticastJob job = std::move(deferred_jobs_.front());
    deferred_jobs_.pop_front();
    AdmitJobNow(job);
    added = true;
  }
  if (open_arrivals_ == nullptr) {
    return added;
  }
  while (open_arrivals_->NextArrivalTime() <= now + kFluidEpsilon &&
         open_arrivals_->NextArrivalTime() < arrivals_stop_) {
    MulticastJob job = open_arrivals_->Take();
    const int64_t jd = JobDeliveries(job);
    const int64_t backlog = state_.num_pending() + deferred_deliveries_;
    switch (admission_.Admit(jd, backlog)) {
      case AdmissionDecision::kAccept:
        if (fr.active()) {
          fr.AdmissionVerdict(job.id, now, "accept", admission_.last_reason(), backlog);
        }
        AdmitJobNow(job);
        added = true;
        break;
      case AdmissionDecision::kDefer:
        if (static_cast<int64_t>(deferred_jobs_.size()) <
            admission_.options().max_deferred_jobs) {
          admission_.CountDeferred();
          if (fr.active()) {
            fr.AdmissionVerdict(job.id, now, "defer", admission_.last_reason(), backlog);
          }
          deferred_deliveries_ += jd;
          deferred_jobs_.push_back(std::move(job));
        } else {
          admission_.CountRejected();
          if (fr.active()) {
            fr.AdmissionVerdict(job.id, now, "reject", "defer_overflow", backlog);
          }
          BDS_TELEMETRY_COUNT("controller.jobs_rejected", 1);
        }
        break;
      case AdmissionDecision::kReject:
        if (fr.active()) {
          fr.AdmissionVerdict(job.id, now, "reject", admission_.last_reason(), backlog);
        }
        BDS_TELEMETRY_COUNT("controller.jobs_rejected", 1);
        break;
    }
  }
  return added;
}

void BdsController::RegisterArrivals(SimTime now) {
  bool added = false;
  while (next_arrival_ < arriving_jobs_.size() &&
         arriving_jobs_[next_arrival_].arrival_time <= now + kFluidEpsilon) {
    AdmitJobNow(arriving_jobs_[next_arrival_]);
    ++next_arrival_;
    added = true;
  }
  // In bounded-memory mode the consumed script prefix is dead weight; shed
  // it once it is large enough to matter.
  if (retire_completed_ && next_arrival_ > 1024) {
    arriving_jobs_.erase(arriving_jobs_.begin(),
                         arriving_jobs_.begin() + static_cast<long>(next_arrival_));
    next_arrival_ = 0;
  }
  added |= RegisterOpenArrivals(now);
  if (added && fallback_.active()) {
    fallback_.Activate();  // Refresh queues with the new job's deliveries.
  }
}

void BdsController::ApplyFailures(SimTime now) {
  while (next_failure_ < failures_.size() && failures_[next_failure_].at <= now + kFluidEpsilon) {
    ServerId server = failures_[next_failure_].server;
    bool recovery = failures_[next_failure_].recovery;
    ++next_failure_;
    if (recovery) {
      state_.RestoreServer(server);
      if (view_ != nullptr) {
        view_->RestoreServer(server);
      }
      if (fallback_.active()) {
        fallback_.Activate();  // Pick up the restored server's owed shards.
      }
      continue;
    }
    state_.RemoveServer(server);
    // Server loss re-owes deliveries and shrinks holder sets mid-stream;
    // the dirty stamps handle the candidate side, but the FPTAS warm seeds
    // may reference flows toward the dead server — drop both caches.
    algorithm_.InvalidateCycleCache();
    if (view_ != nullptr) {
      // Failures are detected by the controller's own heartbeats, not agent
      // status reports, so the view mirrors them instantly. Buffered delivery
      // reports TO the failed server must die with it: flushing them later
      // would mark re-owed blocks present in the view and starve them.
      view_->RemoveServer(server);
      for (auto& [dc, pending] : unreported_) {
        pending.erase(std::remove_if(pending.begin(), pending.end(),
                                     [server](const PendingReport& r) { return r.dst == server; }),
                      pending.end());
      }
    }
    fallback_.HandleServerFailure(server);
    // Cancel centralized transfers touching the failed server; their
    // deliveries go back to pending via the replica state.
    std::vector<int64_t> doomed;
    for (const auto& [tag, t] : transfers_) {
      if (t.assignment.src_server == server || t.assignment.dst_server == server) {
        doomed.push_back(tag);
      }
    }
    std::sort(doomed.begin(), doomed.end());  // Map order is incidental.
    telemetry::FlightRecorder& fr = telemetry::FlightRecorder::Global();
    for (int64_t tag : doomed) {
      CtrlTransfer t = transfers_[tag];
      transfers_.erase(tag);
      if (fr.active()) {
        fr.FaultHit(t.assignment.job, now, "server_failure", static_cast<int64_t>(server));
        fr.Cancel(t.assignment.job, now, "server_failure", /*credited_blocks=*/0);
      }
      (void)sim_.CancelFlow(t.flow);
      for (int64_t b : t.assignment.blocks) {
        in_flight_.erase(DeliveryKey{t.assignment.job, b, t.dest_dc});
      }
    }
  }
}

bool BdsController::ControllerUp(SimTime now) {
  for (const Outage& o : outages_) {
    if (now >= o.from - kFluidEpsilon && now < o.to - kFluidEpsilon) {
      return false;
    }
  }
  return replicas_.HasMaster(now);
}

void BdsController::ApplyLinkFaults(SimTime now) {
  for (const LinkFaultEvent& e : fault_.TakeLinkEventsUpTo(now)) {
    Status s = sim_.SetLinkFaultFactor(e.link, e.factor);
    BDS_CHECK_MSG(s.ok(), s.ToString().c_str());
    telemetry::TraceInstant("fault.link", "fault",
                            {{"link", static_cast<double>(e.link)}, {"factor", e.factor}});
    // Conservative: any fault event may change which routes are usable, so
    // drop the cached overlay-path skeletons. Rebuild is a handful of small
    // copies per active DC pair — cheap next to re-planning the transfers.
    algorithm_.InvalidatePathCache();
    if (e.factor > 0.0) {
      continue;  // Degradations and recoveries just change capacity; the
                 // allocator throttles (or refills) crossing flows in place.
    }
    // Hard down: every transfer crossing the link dies now. Centralized
    // transfers are cancelled-and-credited so fully-arrived blocks survive;
    // their remaining blocks return to pending and the next cycle re-plans
    // them over surviving paths. Fallback downloads requeue immediately.
    std::vector<int64_t> doomed;
    for (const auto& [tag, t] : transfers_) {
      auto flow = sim_.FindFlow(t.flow);
      if (!flow) {
        continue;
      }
      if (flow->Crosses(e.link)) {
        doomed.push_back(tag);
      }
    }
    std::sort(doomed.begin(), doomed.end());  // Map order is incidental.
    telemetry::FlightRecorder& fr = telemetry::FlightRecorder::Global();
    for (int64_t tag : doomed) {
      if (fr.active()) {
        auto it = transfers_.find(tag);
        if (it != transfers_.end()) {
          fr.FaultHit(it->second.assignment.job, now, "link_down", static_cast<int64_t>(e.link));
        }
      }
      CancelAndCredit(tag, "link_down");
    }
    fault_.mutable_stats().flows_killed +=
        static_cast<int64_t>(doomed.size()) + fallback_.HandleLinkFault(e.link);
    BDS_TELEMETRY_COUNT("fault.flows_killed", static_cast<int64_t>(doomed.size()));
  }
}

void BdsController::CollectAgentReports() {
  if (view_ == nullptr) {
    return;
  }
  // Deterministic draw order: agents report in DC order. A lost report keeps
  // its DC's deliveries buffered, so the view keeps scheduling against the
  // last state that DC successfully reported.
  std::vector<DcId> dcs;
  dcs.reserve(unreported_.size());
  for (const auto& [dc, pending] : unreported_) {
    if (!pending.empty()) {
      dcs.push_back(dc);
    }
  }
  std::sort(dcs.begin(), dcs.end());
  for (DcId dc : dcs) {
    if (fault_.DrawReportLost(dc)) {
      continue;
    }
    std::vector<PendingReport>& pending = unreported_[dc];
    for (const PendingReport& r : pending) {
      (void)view_->NoteDelivery(r.job, r.block, r.src, r.dst);
    }
    pending.clear();
  }
}

void BdsController::MirrorDelivery(JobId job, int64_t block, ServerId src, ServerId dst) {
  if (view_ == nullptr) {
    return;
  }
  unreported_[topo_->server(dst).dc].push_back(PendingReport{job, block, src, dst});
}

void BdsController::CancelAndCredit(int64_t tag, const char* reason) {
  auto it = transfers_.find(tag);
  if (it == transfers_.end()) {
    return;
  }
  CtrlTransfer t = std::move(it->second);
  transfers_.erase(it);
  BDS_TELEMETRY_COUNT("controller.transfers_cancelled", 1);
  telemetry::FlightRecorder& fr = telemetry::FlightRecorder::Global();
  auto delivered = sim_.CancelFlow(t.flow);
  Bytes delivered_bytes = delivered.ok() ? *delivered : 0.0;
  Bytes per_block = t.assignment.bytes / static_cast<double>(t.assignment.blocks.size());
  int64_t full_blocks =
      per_block > 0.0
          ? static_cast<int64_t>(delivered_bytes / per_block + kFluidEpsilon)
          : 0;
  full_blocks = std::min(full_blocks, static_cast<int64_t>(t.assignment.blocks.size()));
  if (fr.active()) {
    fr.Cancel(t.assignment.job, sim_.now(), reason, full_blocks);
  }
  int64_t before = state_.total_credited();
  for (size_t i = 0; i < t.assignment.blocks.size(); ++i) {
    int64_t b = t.assignment.blocks[i];
    in_flight_.erase(DeliveryKey{t.assignment.job, b, t.dest_dc});
    if (static_cast<int64_t>(i) < full_blocks) {
      // Blocks are streamed in order within a merged transfer; the first
      // `full_blocks` have fully arrived — each is checksum-verified before
      // it is credited.
      if (fault_.DrawBlockCorrupted()) {
        if (fr.active()) {
          fr.FaultHit(t.assignment.job, sim_.now(), "block_corrupted", b);
        }
        continue;  // Not credited; stays pending and is rescheduled.
      }
      (void)state_.NoteDelivery(t.assignment.job, b, t.assignment.src_server,
                                t.assignment.dst_server);
      MirrorDelivery(t.assignment.job, b, t.assignment.src_server, t.assignment.dst_server);
    }
  }
  if (state_.total_credited() > before) {
    RecordDelivery(t.assignment.job, t.assignment.dst_server, sim_.now());
  }
}

SimTime BdsController::RunCentralizedCycle(SimTime now, CycleStats& stats) {
  stats.rung = static_cast<int>(watchdog_.rung());

  // Flush agent status reports (some may be lost, leaving the view stale).
  CollectAgentReports();

  // Last rung of the degradation ladder: skip scheduling and routing
  // entirely and let the previous cycle's decisions keep running (they are
  // rate-pinned, so extending them costs nothing). Only the base cost is
  // charged, which is what lets the ladder recover.
  if (watchdog_.enabled() && watchdog_.rung() == DegradationRung::kExtendDecisions) {
    const double cost = watchdog_.ModelCost(0, 0, 0);
    stats.modeled_cost_seconds = cost;
    algorithm_.SetDegradationRung(watchdog_.Observe(stats.cycle, cost));
    BDS_TELEMETRY_COUNT("controller.cycles_extended", 1);
    return 0.0;
  }

  // Decision refresh: re-plan transfers that will not finish in a
  // reasonable number of cycles at their current rate.
  const double horizon = options_.restall_cycles * options_.algorithm.cycle_length;
  std::vector<int64_t> stalled;
  for (const auto& [tag, t] : transfers_) {
    auto flow = sim_.FindFlow(t.flow);
    if (!flow) {
      stalled.push_back(tag);  // Flow vanished; clean up bookkeeping.
      continue;
    }
    if (flow->current_rate <= kFluidEpsilon ||
        flow->RemainingAt(sim_.now()) / flow->current_rate > horizon) {
      stalled.push_back(tag);
    }
  }
  for (int64_t tag : stalled) {
    CancelAndCredit(tag, "stalled");
  }

  // (1) + (3): agent states and network statistics.
  std::vector<Rate> online = network_monitor_.OnlineRates(now);
  // Also steer the simulator's background load so the data plane and the
  // monitor agree on what the latency-sensitive traffic consumes.
  for (LinkId l = 0; l < topo_->num_links(); ++l) {
    if (topo_->link(l).type == LinkType::kWan) {
      (void)sim_.SetBackgroundRate(l, online[static_cast<size_t>(l)]);
    }
  }
  // Residual capacities honour injected link faults: a degraded or dead
  // link's usable capacity shrinks by its fault factor before the safety
  // threshold applies, so the LP routes around it.
  std::vector<Rate> residual = separator_.ResidualCapacities(online, sim_.link_fault_factors());
  // Non-blocking update: in-flight transfers keep their bandwidth, but only
  // for the fraction of the coming cycle they will still be running (agents
  // report per-flow progress, so the controller knows the remaining time).
  for (const auto& [tag, t] : transfers_) {
    auto flow = sim_.FindFlow(t.flow);
    double fraction = 1.0;
    if (flow && flow->current_rate > 0.0) {
      double remaining_seconds = flow->RemainingAt(sim_.now()) / flow->current_rate;
      fraction = std::min(1.0, remaining_seconds / options_.algorithm.cycle_length);
    }
    for (LinkId l : t.assignment.path.links) {
      Rate& r = residual[static_cast<size_t>(l)];
      // WAN links subtract the full in-flight rate: the safety threshold and
      // the bulk cap are hard guarantees (§5.2), so overlapping a straggler
      // with a full new allocation must never push a WAN link over. Server
      // NICs only lose the fraction of the cycle the straggler still needs.
      double f = topo_->link(l).type == LinkType::kWan ? 1.0 : fraction;
      r = std::max(0.0, r - t.assignment.rate * f);
    }
  }

  // (4): the decision algorithm — runs on the controller's possibly-stale
  // view when report loss is enabled. A stale view only ever has MORE
  // pending deliveries than ground truth (reports lag, submissions do not),
  // so the worst case is a redundant transfer that NoteDelivery ignores.
  const ReplicaState& sched_state = view_ != nullptr ? *view_ : state_;
  const int64_t pending_before = sched_state.num_pending();
  CycleDecision decision = algorithm_.Decide(stats.cycle, sched_state, residual, in_flight_);
  BDS_TELEMETRY_COUNT("controller.blocks_scheduled", decision.scheduled_blocks);
  BDS_TELEMETRY_COUNT("controller.merged_subtasks", decision.merged_subtasks);
  // Cross-cycle incrementality observability (DESIGN.md §9.7): how much of
  // this cycle's candidate array was reused vs repriced, per cycle, in the
  // trace. The per-process totals land on the scheduler.cand_* counters.
  telemetry::TraceInstant(
      "scheduler.cand_reuse", "scheduler",
      {{"units_reused", static_cast<double>(decision.cand_units_reused)},
       {"units_repriced", static_cast<double>(decision.cand_units_repriced)},
       {"slots_reused", static_cast<double>(decision.cand_slots_reused)},
       {"phases_skipped", static_cast<double>(decision.fptas_phases_skipped)}});
  stats.scheduled_blocks = decision.scheduled_blocks;
  stats.merged_subtasks = decision.merged_subtasks;
  stats.scheduling_seconds = decision.scheduling_seconds;
  stats.routing_seconds = decision.routing_seconds;
  if (timeseries_ != nullptr) {
    // Cumulative wall-CPU per stage; the sampler diffs these itself.
    ts_select_cpu_ += decision.select_cpu_seconds;
    ts_solve_cpu_ += decision.solve_cpu_seconds;
    ts_merge_cpu_ += decision.merge_cpu_seconds;
  }
  if ((options_.measure_delays || options_.model_decision_latency) &&
      !active_agent_dcs_.empty()) {
    stats.feedback_delay =
        agent_monitor_.SampleFeedbackLoop(active_agent_dcs_, decision.total_seconds());
  }
  // Cycle-deadline watchdog: price the cycle (deterministic model by
  // default; measured CPU forfeits cross-run determinism) and convert any
  // overrun into decision staleness — the decisions reach agents late.
  double cycle_cost = 0.0;
  if (watchdog_.enabled()) {
    cycle_cost = watchdog_.options().use_measured_cost
                     ? decision.total_seconds()
                     : watchdog_.ModelCost(pending_before, decision.scheduled_blocks,
                                           decision.merged_subtasks);
    stats.modeled_cost_seconds = cycle_cost;
  }

  // The decisions only reach the agents after the feedback loop completes
  // (and, under overload, after the overrunning computation finishes);
  // in-flight transfers keep running meanwhile (non-blocking update).
  SimTime lead = 0.0;
  if (options_.model_decision_latency && stats.feedback_delay > 0.0) {
    lead = std::min(stats.feedback_delay, options_.algorithm.cycle_length * 0.9);
  }
  if (watchdog_.enabled()) {
    lead = std::max(lead, watchdog_.StalenessFor(cycle_cost));
  }
  if (lead > 0.0) {
    Status s = sim_.AdvanceBy(lead);
    BDS_CHECK_MSG(s.ok(), s.ToString().c_str());
  }

  // (5): push decisions — agents start rate-limited transfers. A dropped
  // push loses every assignment to that destination agent this cycle (one
  // draw per agent, consistent across its assignments); the blocks stay
  // pending and are rescheduled until the agent's retry/backoff escalates
  // out-of-band (§5.3) and the push is forced through.
  std::vector<std::pair<ServerId, bool>> push_plan;
  auto push_dropped = [&](ServerId dst) {
    for (const auto& [s, drop] : push_plan) {
      if (s == dst) {
        return drop;
      }
    }
    bool drop = fault_.DrawPushDropped(dst);
    push_plan.emplace_back(dst, drop);
    return drop;
  };
  // The cycle's flow starts go down as one churn batch: the simulator defers
  // incidence insertion and dirty marking until commit and then runs a
  // single reallocation pass over the union of dirty components.
  sim_.BeginBatch();
  telemetry::FlightRecorder& fr = telemetry::FlightRecorder::Global();
  const bool fr_on = fr.active();
  const char* rung_name = DegradationRungName(static_cast<DegradationRung>(stats.rung));
  for (TransferAssignment& a : decision.transfers) {
    if (push_dropped(a.dst_server)) {
      continue;
    }
    DcId dest_dc = topo_->server(a.dst_server).dc;
    int64_t tag = next_tag_++;
    auto flow = sim_.StartFlow(a.path.links, a.bytes, a.rate, tag, /*tag2=*/0);
    if (!flow.ok()) {
      continue;  // Skip unstartable transfers; they stay pending.
    }
    for (int64_t b : a.blocks) {
      in_flight_.insert(DeliveryKey{a.job, b, dest_dc});
    }
    if (fr_on) {
      fr.Schedule(a.job, sim_.now(), stats.cycle, rung_name, a.src_server, a.dst_server, a.rate,
                  static_cast<int64_t>(a.blocks.size()));
    }
    transfers_.emplace(tag, CtrlTransfer{std::move(a), dest_dc, *flow});
    ++stats.transfers_started;
  }
  sim_.CommitBatch();
  BDS_TELEMETRY_COUNT("controller.transfers_started", stats.transfers_started);
  if (watchdog_.enabled()) {
    // Fold the cycle into the ladder and set the rung the NEXT cycle runs at.
    algorithm_.SetDegradationRung(watchdog_.Observe(stats.cycle, cycle_cost));
  }
  return lead;
}

void BdsController::RecordDelivery(JobId job, ServerId dest_server, SimTime now) {
  ++deliveries_;
  ++deliveries_this_cycle_;
  server_last_delivery_[dest_server] = now;
  if (job_completion_.count(job) == 0 && state_.JobComplete(job)) {
    job_completion_[job] = now;
    ++jobs_completed_total_;
    const MulticastJob* mj = state_.FindJob(job);
    const double duration = now - (mj != nullptr ? mj->arrival_time : 0.0);
    {
      telemetry::FlightRecorder& fr = telemetry::FlightRecorder::Global();
      if (fr.active()) {
        fr.Completion(job, now, duration);
      }
      if (timeseries_ != nullptr) {
        timeseries_->ObserveCompletion(now, duration);
      }
    }
    completion_durations_.Add(duration);
    completion_digest_ = MixU64(completion_digest_, static_cast<uint64_t>(job));
    completion_digest_ = MixDoubleU64(completion_digest_, duration);
    BDS_TELEMETRY_HISTOGRAM("controller.job_completion_minutes", 0.0, 240.0, 96,
                            ToMinutes(duration));
    if (retire_completed_) {
      retirable_.push_back(job);
    }
  }
}

void BdsController::RetireCompleted() {
  if (retirable_.empty()) {
    return;
  }
  size_t keep = 0;
  for (JobId job : retirable_) {
    // A server failure can re-owe a recorded-complete job; retry once it
    // completes again. The stale view can also lag the job's completion —
    // retiring it from ground truth but not the view would leave the view
    // scheduling phantom deliveries forever, so wait for both to agree.
    if (!state_.JobComplete(job) || (view_ != nullptr && !view_->JobComplete(job))) {
      retirable_[keep++] = job;
      continue;
    }
    Status s = state_.RetireJob(job);
    BDS_CHECK_MSG(s.ok(), s.ToString().c_str());
    if (view_ != nullptr) {
      Status vs = view_->RetireJob(job);
      BDS_CHECK_MSG(vs.ok(), vs.ToString().c_str());
    }
    {
      telemetry::FlightRecorder& fr = telemetry::FlightRecorder::Global();
      if (fr.active()) {
        fr.Retire(job, sim_.now());
      }
    }
    job_completion_.erase(job);
  }
  retirable_.resize(keep);
}

void BdsController::OnFlowComplete(const FlowRecord& record) {
  if (fallback_.OnFlowComplete(record)) {
    return;  // Decentralized-engine flow; its callback updated our stats.
  }
  if (record.tag2 != 0) {
    return;  // Not ours (e.g. a client-injected flow).
  }
  auto it = transfers_.find(record.tag);
  if (it == transfers_.end()) {
    return;
  }
  CtrlTransfer t = std::move(it->second);
  transfers_.erase(it);
  int64_t before = state_.total_credited();
  telemetry::FlightRecorder& fr = telemetry::FlightRecorder::Global();
  for (int64_t b : t.assignment.blocks) {
    in_flight_.erase(DeliveryKey{t.assignment.job, b, t.dest_dc});
    if (fault_.DrawBlockCorrupted()) {
      if (fr.active()) {
        fr.FaultHit(t.assignment.job, sim_.now(), "block_corrupted", b);
      }
      continue;  // Failed checksum verification: stays pending, rescheduled.
    }
    (void)state_.NoteDelivery(t.assignment.job, b, t.assignment.src_server,
                              t.assignment.dst_server);
    MirrorDelivery(t.assignment.job, b, t.assignment.src_server, t.assignment.dst_server);
  }
  // Count the completion only when at least one block was newly credited:
  // a transfer the stale view scheduled redundantly delivers nothing new.
  if (state_.total_credited() > before) {
    RecordDelivery(t.assignment.job, t.assignment.dst_server, sim_.now());
  }
}

StatusOr<RunReport> BdsController::Run(SimTime deadline) {
  RunReport report;
  const SimTime dt = options_.algorithm.cycle_length;
  int64_t cycle = 0;
  // Hard stop: generous bound so that a wedged configuration cannot spin.
  const int64_t max_cycles = 10'000'000;

  // Scope the report's telemetry to this run: everything before Run() (other
  // runs in the same process, registration warm-up) is subtracted out.
  telemetry::MetricsSnapshot telemetry_at_entry;
  if (telemetry::Enabled()) {
    telemetry_at_entry = telemetry::MetricsRegistry::Global().Snapshot();
  }

  // Flow-rate changepoints for the flight recorder: the simulator calls the
  // observer from the single rate-assignment site, pre-filtered by relative
  // change, so the recorder only sees material reallocations of centralized
  // transfers. Observing never mutates simulation state.
  if (telemetry::FlightRecorder::Global().active()) {
    sim_.SetRateObserver(
        [this](int64_t tag, int64_t tag2, SimTime t, Rate old_rate, Rate new_rate) {
          if (!telemetry::FlightRecorder::Global().WantsRateEvents()) {
            return false;  // Budget spent: the simulator drops the observer.
          }
          if (tag2 != 0) {
            return true;  // Fallback/background flows are not journaled transfers.
          }
          auto it = transfers_.find(tag);
          if (it == transfers_.end()) {
            return true;
          }
          telemetry::FlightRecorder::Global().RateChange(it->second.assignment.job, t, old_rate,
                                                         new_rate);
          return true;
        },
        telemetry::FlightRecorder::Global().options().min_relative_rate_change);
  }

  if (fault_.stale_reports_enabled() && view_ == nullptr) {
    // Jobs submitted before Run() register inside the loop, so a view
    // created here sees every job. The view starts identical to ground
    // truth and lags only in deliveries whose reports were lost.
    view_ = std::make_unique<ReplicaState>(topo_);
  }

  StopReason stop = StopReason::kAborted;  // Overwritten by every break below.
  while (cycle < max_cycles) {
    SimTime now = sim_.now();
    if (now >= deadline - kFluidEpsilon) {
      stop = StopReason::kDeadline;
      break;
    }
    BDS_TIMED_SCOPE("controller.cycle");
    RegisterArrivals(now);
    ApplyFailures(now);
    ApplyReplicaEvents(now);
    ApplyLinkFaults(now);
    const bool had_backlog = state_.num_pending() > 0;

    CycleStats stats;
    stats.cycle = cycle;
    stats.start_time = now;
    stats.controller_up = ControllerUp(now);
    deliveries_this_cycle_ = 0;

    SimTime lead = 0.0;
    if (stats.controller_up) {
      if (fallback_was_active_) {
        fallback_.Deactivate();
        fallback_was_active_ = false;
      }
      lead = RunCentralizedCycle(now, stats);
    } else {
      if (!fallback_was_active_) {
        fallback_.Activate();
        fallback_was_active_ = true;
      } else {
        fallback_.Tick();  // Retry stalled receivers each cycle.
      }
    }

    BDS_RETURN_IF_ERROR(sim_.AdvanceBy(std::max(0.0, std::min(dt, deadline - now) - lead)));
    stats.blocks_delivered = deliveries_this_cycle_;
    admission_.ObserveCycle(deliveries_this_cycle_, had_backlog);
    if (timeseries_ != nullptr) {
      telemetry::SloSampleInput in;
      in.active_flows = static_cast<int64_t>(sim_.num_active_flows());
      in.pending_blocks = state_.num_pending();
      in.rung = stats.rung;
      const AdmissionStats& as = admission_.stats();
      in.offered = as.offered;
      in.accepted = as.accepted;
      in.rejected = as.rejected;
      in.deferred = as.deferred;
      in.select_cpu_seconds = ts_select_cpu_;
      in.solve_cpu_seconds = ts_solve_cpu_;
      in.merge_cpu_seconds = ts_merge_cpu_;
      in.link_utilization.reserve(timeseries_links_.size());
      for (LinkId l : timeseries_links_) {
        in.link_utilization.push_back(sim_.LinkUtilization(l));
      }
      timeseries_->SampleUpTo(sim_.now(), in);
    }
    if (options_.validate_invariants) {
      double overshoot = sim_.MaxCapacityViolation();
      report.max_link_overshoot =
          std::max(report.max_link_overshoot.value_or(overshoot), overshoot);
    }
    if (retire_completed_) {
      RetireCompleted();
    }
    peak_live_pending_ = std::max(peak_live_pending_, state_.num_pending());
    peak_live_jobs_ = std::max(peak_live_jobs_, state_.num_live_jobs());
    peak_live_flows_ =
        std::max(peak_live_flows_, static_cast<int64_t>(sim_.num_active_flows()));
    BDS_TELEMETRY_COUNT("controller.cycles", 1);
    BDS_TELEMETRY_COUNT("controller.blocks_delivered", stats.blocks_delivered);
    BDS_TELEMETRY_GAUGE("controller.live_pending", static_cast<double>(state_.num_pending()));
    BDS_TELEMETRY_GAUGE("controller.degradation_rung", static_cast<double>(stats.rung));
    telemetry::TraceInstant(
        "controller.cycle.stats", "controller",
        {{"cycle", static_cast<double>(stats.cycle)},
         {"scheduled_blocks", static_cast<double>(stats.scheduled_blocks)},
         {"transfers_started", static_cast<double>(stats.transfers_started)},
         {"blocks_delivered", static_cast<double>(stats.blocks_delivered)}});
    cycles_digest_ = MixCycle(cycles_digest_, stats);
    ++total_cycles_;
    report.cycles.push_back(stats);
    if (max_cycle_stats_ > 0 &&
        static_cast<int64_t>(report.cycles.size()) > max_cycle_stats_ + max_cycle_stats_ / 2) {
      report.cycles.erase(report.cycles.begin(),
                          report.cycles.end() - static_cast<long>(max_cycle_stats_));
    }
    ++cycle;

    const bool all_arrived =
        next_arrival_ >= arriving_jobs_.size() &&
        (open_arrivals_ == nullptr || open_arrivals_->NextArrivalTime() >= arrivals_stop_) &&
        deferred_jobs_.empty();
    if (all_arrived && state_.AllComplete()) {
      stop = StopReason::kDrained;
      break;
    }
    // Catch wedged runs: nothing pending can ever complete (e.g. every
    // holder failed). Stop rather than spin to the deadline. A pending link
    // recovery or probabilistic control-plane fault can still unwedge a
    // quiet cycle, so the detector defers to the deadline while either is
    // in play. A degraded cycle is never proof of wedge either: rungs above
    // kNormal deliberately restrict routing (one cached path, shed
    // candidates, or no decision at all), so a quiet cycle there may just
    // mean the restricted plan found nothing — wait for the ladder to
    // recover to kNormal before declaring the run dead.
    if (all_arrived && !state_.AllComplete() && sim_.num_active_flows() == 0 &&
        stats.controller_up && stats.transfers_started == 0 && stats.blocks_delivered == 0 &&
        watchdog_.rung() == DegradationRung::kNormal &&
        next_failure_ >= failures_.size() &&
        next_replica_event_ >= replica_events_.size() &&
        fault_.remaining_link_events() == 0 && !fault_.control_plane_active()) {
      bool outage_ahead = false;
      for (const Outage& o : outages_) {
        if (o.from > now) {
          outage_ahead = true;
        }
      }
      if (!outage_ahead) {
        stop = StopReason::kWedged;
        break;
      }
    }
  }

  const bool sources_drained =
      next_arrival_ >= arriving_jobs_.size() &&
      (open_arrivals_ == nullptr || open_arrivals_->NextArrivalTime() >= arrivals_stop_) &&
      deferred_jobs_.empty();
  report.completed = state_.AllComplete() && sources_drained;
  report.stop_reason = stop;
  report.total_cycles = total_cycles_;
  report.cycles_digest = cycles_digest_;
  report.jobs_completed_total = jobs_completed_total_;
  report.completion_digest = completion_digest_;
  report.retired_jobs = state_.retired_jobs();
  report.retired_blocks = state_.retired_blocks();
  report.peak_live_pending = peak_live_pending_;
  report.peak_live_jobs = peak_live_jobs_;
  report.peak_live_flows = peak_live_flows_;
  report.job_durations = completion_durations_;
  if (!completion_durations_.empty()) {
    report.completion_p50 = completion_durations_.Quantile(0.5);
    report.completion_p95 = completion_durations_.Quantile(0.95);
    report.completion_p99 = completion_durations_.Quantile(0.99);
  }
  report.deliveries = deliveries_;
  report.faults = fault_.stats();
  report.job_completion = job_completion_;
  report.origin_stats = state_.origin_stats();
  report.control_delays = agent_monitor_.one_way_delays();
  report.feedback_delays = agent_monitor_.feedback_delays();

  SimTime latest = 0.0;
  std::unordered_map<DcId, SimTime> dc_latest;
  for (ServerId s : state_.AllDestinationServers()) {
    auto it = server_last_delivery_.find(s);
    SimTime t = it == server_last_delivery_.end() ? 0.0 : it->second;
    if (state_.OwedByServer(s) == 0) {
      report.server_completion.emplace_back(s, t);
      DcId dc = topo_->server(s).dc;
      dc_latest[dc] = std::max(dc_latest[dc], t);
      latest = std::max(latest, t);
    }
  }
  std::sort(report.server_completion.begin(), report.server_completion.end());
  report.dc_completion = std::move(dc_latest);
  report.completion_time = report.completed ? latest : sim_.now();
  if (telemetry::Enabled()) {
    report.telemetry =
        telemetry::MetricsRegistry::Global().Snapshot().DiffSince(telemetry_at_entry);
  }
  return report;
}

}  // namespace bds
