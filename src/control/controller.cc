#include "src/control/controller.h"

#include <algorithm>
#include <cstring>

#include "src/telemetry/telemetry.h"

namespace bds {

std::vector<double> RunReport::ServerCompletionMinutes() const {
  std::vector<double> out;
  out.reserve(server_completion.size());
  for (const auto& [server, t] : server_completion) {
    out.push_back(ToMinutes(t));
  }
  return out;
}

namespace {
// splitmix64-style stream hasher for RunReport::Fingerprint.
struct Digest {
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  void Mix(uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 31;
  }
  void MixDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    Mix(bits);
  }
};
}  // namespace

uint64_t RunReport::Fingerprint() const {
  Digest d;
  d.Mix(completed ? 1 : 0);
  d.MixDouble(completion_time);
  d.Mix(static_cast<uint64_t>(deliveries));
  d.Mix(static_cast<uint64_t>(cycles.size()));
  for (const CycleStats& c : cycles) {
    // Wall-clock-derived values (scheduling/routing seconds, and the
    // feedback delay, which folds the algorithm's measured runtime in) are
    // excluded: they vary run to run without the simulation differing.
    d.Mix(static_cast<uint64_t>(c.cycle));
    d.MixDouble(c.start_time);
    d.Mix(c.controller_up ? 1 : 0);
    d.Mix(static_cast<uint64_t>(c.scheduled_blocks));
    d.Mix(static_cast<uint64_t>(c.merged_subtasks));
    d.Mix(static_cast<uint64_t>(c.transfers_started));
    d.Mix(static_cast<uint64_t>(c.blocks_delivered));
  }
  auto mix_sorted = [&d](const auto& map) {
    std::vector<std::pair<int64_t, double>> entries;
    entries.reserve(map.size());
    for (const auto& [k, v] : map) {
      entries.emplace_back(static_cast<int64_t>(k), v);
    }
    std::sort(entries.begin(), entries.end());
    for (const auto& [k, v] : entries) {
      d.Mix(static_cast<uint64_t>(k));
      d.MixDouble(v);
    }
  };
  mix_sorted(job_completion);
  mix_sorted(dc_completion);
  for (const auto& [server, t] : server_completion) {  // Already sorted.
    d.Mix(static_cast<uint64_t>(server));
    d.MixDouble(t);
  }
  {
    std::vector<std::pair<ServerId, ReplicaState::ServerOriginStats>> entries(
        origin_stats.begin(), origin_stats.end());
    std::sort(entries.begin(), entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [server, s] : entries) {
      d.Mix(static_cast<uint64_t>(server));
      d.Mix(static_cast<uint64_t>(s.from_origin));
      d.Mix(static_cast<uint64_t>(s.total));
    }
  }
  d.Mix(static_cast<uint64_t>(faults.link_events));
  d.Mix(static_cast<uint64_t>(faults.flows_killed));
  d.Mix(static_cast<uint64_t>(faults.reports_lost));
  d.Mix(static_cast<uint64_t>(faults.reports_forced));
  d.Mix(static_cast<uint64_t>(faults.pushes_dropped));
  d.Mix(static_cast<uint64_t>(faults.pushes_escalated));
  d.Mix(static_cast<uint64_t>(faults.blocks_corrupted));
  // Mix presence separately from the value so "not measured" and a measured
  // 0.0 stay distinguishable. The telemetry snapshot is deliberately NOT
  // mixed: it contains wall-clock latency histograms.
  d.Mix(max_link_overshoot.has_value() ? 1 : 0);
  d.MixDouble(max_link_overshoot.value_or(0.0));
  return d.h;
}

BdsController::BdsController(const Topology* topo, const WanRoutingTable* routing,
                             ControllerOptions options)
    : topo_(topo),
      routing_(routing),
      options_(options),
      sim_(topo),
      state_(topo),
      fault_(options.seed ^ 0xFA017ULL),
      algorithm_(topo, routing, options.algorithm),
      separator_(topo, options.separation),
      agent_monitor_(topo, options.controller_dc, options.latency),
      network_monitor_(topo),
      replicas_(options.replication),
      fallback_(topo, routing, &sim_, &state_,
                [&options] {
                  DecentralizedEngine::Options o = options.fallback;
                  o.seed = options.seed ^ 0xFA11BACC;
                  return o;
                }()) {
  BDS_CHECK(topo != nullptr && routing != nullptr);
  sim_.SetCompletionCallback([this](const FlowRecord& r) { OnFlowComplete(r); });
  fallback_.SetDeliveryCallback([this](JobId job, int64_t block, ServerId src, ServerId dst) {
    MirrorDelivery(job, block, src, dst);
    RecordDelivery(job, dst, sim_.now());
  });
  fallback_.SetCorruptionHook(
      [this](JobId, int64_t) { return fault_.DrawBlockCorrupted(); });
  fallback_.Deactivate();
}

Status BdsController::SubmitJob(const MulticastJob& job) {
  BDS_RETURN_IF_ERROR(job.Validate(topo_->num_dcs()));
  arriving_jobs_.push_back(job);
  std::sort(arriving_jobs_.begin() + static_cast<long>(next_arrival_), arriving_jobs_.end(),
            [](const MulticastJob& a, const MulticastJob& b) {
              return a.arrival_time < b.arrival_time;
            });
  ++jobs_submitted_;
  return Status::Ok();
}

Status BdsController::ValidateFailureEvent(ServerId server, SimTime at, bool recovery) const {
  if (server < 0 || server >= topo_->num_servers()) {
    return InvalidArgumentError("failure script: no such server");
  }
  if (at < 0.0) {
    return InvalidArgumentError("failure script: event time is negative");
  }
  // Replay every already-scheduled event for this server up to `at` to find
  // whether it would be up or down when the new event fires.
  std::vector<std::pair<SimTime, bool>> events;  // (time, recovery)
  for (const ServerFailure& f : failures_) {
    if (f.server == server && f.at <= at + kFluidEpsilon) {
      events.emplace_back(f.at, f.recovery);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  bool down = false;
  for (const auto& [t, rec] : events) {
    down = !rec;
  }
  if (!recovery && down) {
    return FailedPreconditionError("failure script: server is already failed at that time");
  }
  if (recovery && !down) {
    return FailedPreconditionError(
        "failure script: recovery scheduled for a server that is not failed at that time");
  }
  return Status::Ok();
}

Status BdsController::ScheduleServerFailure(ServerId server, SimTime at) {
  BDS_RETURN_IF_ERROR(ValidateFailureEvent(server, at, /*recovery=*/false));
  failures_.push_back(ServerFailure{server, at, /*recovery=*/false});
  std::sort(failures_.begin() + static_cast<long>(next_failure_), failures_.end(),
            [](const ServerFailure& a, const ServerFailure& b) { return a.at < b.at; });
  return Status::Ok();
}

Status BdsController::ScheduleServerRecovery(ServerId server, SimTime at) {
  BDS_RETURN_IF_ERROR(ValidateFailureEvent(server, at, /*recovery=*/true));
  failures_.push_back(ServerFailure{server, at, /*recovery=*/true});
  std::sort(failures_.begin() + static_cast<long>(next_failure_), failures_.end(),
            [](const ServerFailure& a, const ServerFailure& b) { return a.at < b.at; });
  return Status::Ok();
}

Status BdsController::ScheduleControllerOutage(SimTime from, SimTime to) {
  if (from >= to) {
    return InvalidArgumentError("failure script: controller outage window is inverted");
  }
  if (from < 0.0) {
    return InvalidArgumentError("failure script: controller outage starts before t=0");
  }
  outages_.push_back(Outage{from, to});
  return Status::Ok();
}

void BdsController::SetBackgroundTraffic(BackgroundTrafficModel* model) {
  network_monitor_.SetTrafficModel(model);
}

void BdsController::RegisterArrivals(SimTime now) {
  bool added = false;
  while (next_arrival_ < arriving_jobs_.size() &&
         arriving_jobs_[next_arrival_].arrival_time <= now + kFluidEpsilon) {
    const MulticastJob& job = arriving_jobs_[next_arrival_];
    Status s = state_.AddJob(job);
    BDS_CHECK_MSG(s.ok(), s.ToString().c_str());
    if (view_ != nullptr) {
      // Job submission goes through the controller, so the view learns of
      // new jobs immediately — only delivery reports can go stale.
      Status vs = view_->AddJob(job);
      BDS_CHECK_MSG(vs.ok(), vs.ToString().c_str());
    }
    // Track participating DCs for feedback-delay sampling.
    auto note_dc = [this](DcId d) {
      if (std::find(active_agent_dcs_.begin(), active_agent_dcs_.end(), d) ==
          active_agent_dcs_.end()) {
        active_agent_dcs_.push_back(d);
      }
    };
    note_dc(job.source_dc);
    for (DcId d : job.dest_dcs) {
      note_dc(d);
    }
    ++next_arrival_;
    added = true;
  }
  if (added && fallback_.active()) {
    fallback_.Activate();  // Refresh queues with the new job's deliveries.
  }
}

void BdsController::ApplyFailures(SimTime now) {
  while (next_failure_ < failures_.size() && failures_[next_failure_].at <= now + kFluidEpsilon) {
    ServerId server = failures_[next_failure_].server;
    bool recovery = failures_[next_failure_].recovery;
    ++next_failure_;
    if (recovery) {
      state_.RestoreServer(server);
      if (view_ != nullptr) {
        view_->RestoreServer(server);
      }
      if (fallback_.active()) {
        fallback_.Activate();  // Pick up the restored server's owed shards.
      }
      continue;
    }
    state_.RemoveServer(server);
    if (view_ != nullptr) {
      // Failures are detected by the controller's own heartbeats, not agent
      // status reports, so the view mirrors them instantly. Buffered delivery
      // reports TO the failed server must die with it: flushing them later
      // would mark re-owed blocks present in the view and starve them.
      view_->RemoveServer(server);
      for (auto& [dc, pending] : unreported_) {
        pending.erase(std::remove_if(pending.begin(), pending.end(),
                                     [server](const PendingReport& r) { return r.dst == server; }),
                      pending.end());
      }
    }
    fallback_.HandleServerFailure(server);
    // Cancel centralized transfers touching the failed server; their
    // deliveries go back to pending via the replica state.
    std::vector<int64_t> doomed;
    for (const auto& [tag, t] : transfers_) {
      if (t.assignment.src_server == server || t.assignment.dst_server == server) {
        doomed.push_back(tag);
      }
    }
    for (int64_t tag : doomed) {
      CtrlTransfer t = transfers_[tag];
      transfers_.erase(tag);
      (void)sim_.CancelFlow(t.flow);
      for (int64_t b : t.assignment.blocks) {
        in_flight_.erase(DeliveryKey{t.assignment.job, b, t.dest_dc});
      }
    }
  }
}

bool BdsController::ControllerUp(SimTime now) {
  for (const Outage& o : outages_) {
    if (now >= o.from - kFluidEpsilon && now < o.to - kFluidEpsilon) {
      return false;
    }
  }
  return replicas_.HasMaster(now);
}

void BdsController::ApplyLinkFaults(SimTime now) {
  for (const LinkFaultEvent& e : fault_.TakeLinkEventsUpTo(now)) {
    Status s = sim_.SetLinkFaultFactor(e.link, e.factor);
    BDS_CHECK_MSG(s.ok(), s.ToString().c_str());
    telemetry::TraceInstant("fault.link", "fault",
                            {{"link", static_cast<double>(e.link)}, {"factor", e.factor}});
    // Conservative: any fault event may change which routes are usable, so
    // drop the cached overlay-path skeletons. Rebuild is a handful of small
    // copies per active DC pair — cheap next to re-planning the transfers.
    algorithm_.InvalidatePathCache();
    if (e.factor > 0.0) {
      continue;  // Degradations and recoveries just change capacity; the
                 // allocator throttles (or refills) crossing flows in place.
    }
    // Hard down: every transfer crossing the link dies now. Centralized
    // transfers are cancelled-and-credited so fully-arrived blocks survive;
    // their remaining blocks return to pending and the next cycle re-plans
    // them over surviving paths. Fallback downloads requeue immediately.
    std::vector<int64_t> doomed;
    for (const auto& [tag, t] : transfers_) {
      const Flow* flow = sim_.FindFlow(t.flow);
      if (flow == nullptr) {
        continue;
      }
      if (std::find(flow->links.begin(), flow->links.end(), e.link) != flow->links.end()) {
        doomed.push_back(tag);
      }
    }
    std::sort(doomed.begin(), doomed.end());  // Map order is incidental.
    for (int64_t tag : doomed) {
      CancelAndCredit(tag);
    }
    fault_.mutable_stats().flows_killed +=
        static_cast<int64_t>(doomed.size()) + fallback_.HandleLinkFault(e.link);
    BDS_TELEMETRY_COUNT("fault.flows_killed", static_cast<int64_t>(doomed.size()));
  }
}

void BdsController::CollectAgentReports() {
  if (view_ == nullptr) {
    return;
  }
  // Deterministic draw order: agents report in DC order. A lost report keeps
  // its DC's deliveries buffered, so the view keeps scheduling against the
  // last state that DC successfully reported.
  std::vector<DcId> dcs;
  dcs.reserve(unreported_.size());
  for (const auto& [dc, pending] : unreported_) {
    if (!pending.empty()) {
      dcs.push_back(dc);
    }
  }
  std::sort(dcs.begin(), dcs.end());
  for (DcId dc : dcs) {
    if (fault_.DrawReportLost(dc)) {
      continue;
    }
    std::vector<PendingReport>& pending = unreported_[dc];
    for (const PendingReport& r : pending) {
      (void)view_->NoteDelivery(r.job, r.block, r.src, r.dst);
    }
    pending.clear();
  }
}

void BdsController::MirrorDelivery(JobId job, int64_t block, ServerId src, ServerId dst) {
  if (view_ == nullptr) {
    return;
  }
  unreported_[topo_->server(dst).dc].push_back(PendingReport{job, block, src, dst});
}

void BdsController::CancelAndCredit(int64_t tag) {
  auto it = transfers_.find(tag);
  if (it == transfers_.end()) {
    return;
  }
  CtrlTransfer t = std::move(it->second);
  transfers_.erase(it);
  BDS_TELEMETRY_COUNT("controller.transfers_cancelled", 1);
  auto delivered = sim_.CancelFlow(t.flow);
  Bytes delivered_bytes = delivered.ok() ? *delivered : 0.0;
  Bytes per_block = t.assignment.bytes / static_cast<double>(t.assignment.blocks.size());
  int64_t full_blocks =
      per_block > 0.0
          ? static_cast<int64_t>(delivered_bytes / per_block + kFluidEpsilon)
          : 0;
  full_blocks = std::min(full_blocks, static_cast<int64_t>(t.assignment.blocks.size()));
  int64_t before = state_.total_credited();
  for (size_t i = 0; i < t.assignment.blocks.size(); ++i) {
    int64_t b = t.assignment.blocks[i];
    in_flight_.erase(DeliveryKey{t.assignment.job, b, t.dest_dc});
    if (static_cast<int64_t>(i) < full_blocks) {
      // Blocks are streamed in order within a merged transfer; the first
      // `full_blocks` have fully arrived — each is checksum-verified before
      // it is credited.
      if (fault_.DrawBlockCorrupted()) {
        continue;  // Not credited; stays pending and is rescheduled.
      }
      (void)state_.NoteDelivery(t.assignment.job, b, t.assignment.src_server,
                                t.assignment.dst_server);
      MirrorDelivery(t.assignment.job, b, t.assignment.src_server, t.assignment.dst_server);
    }
  }
  if (state_.total_credited() > before) {
    RecordDelivery(t.assignment.job, t.assignment.dst_server, sim_.now());
  }
}

SimTime BdsController::RunCentralizedCycle(SimTime now, CycleStats& stats) {
  // Flush agent status reports (some may be lost, leaving the view stale).
  CollectAgentReports();

  // Decision refresh: re-plan transfers that will not finish in a
  // reasonable number of cycles at their current rate.
  const double horizon = options_.restall_cycles * options_.algorithm.cycle_length;
  std::vector<int64_t> stalled;
  for (const auto& [tag, t] : transfers_) {
    const Flow* flow = sim_.FindFlow(t.flow);
    if (flow == nullptr) {
      stalled.push_back(tag);  // Flow vanished; clean up bookkeeping.
      continue;
    }
    if (flow->current_rate <= kFluidEpsilon ||
        flow->RemainingAt(sim_.now()) / flow->current_rate > horizon) {
      stalled.push_back(tag);
    }
  }
  for (int64_t tag : stalled) {
    CancelAndCredit(tag);
  }

  // (1) + (3): agent states and network statistics.
  std::vector<Rate> online = network_monitor_.OnlineRates(now);
  // Also steer the simulator's background load so the data plane and the
  // monitor agree on what the latency-sensitive traffic consumes.
  for (LinkId l = 0; l < topo_->num_links(); ++l) {
    if (topo_->link(l).type == LinkType::kWan) {
      (void)sim_.SetBackgroundRate(l, online[static_cast<size_t>(l)]);
    }
  }
  // Residual capacities honour injected link faults: a degraded or dead
  // link's usable capacity shrinks by its fault factor before the safety
  // threshold applies, so the LP routes around it.
  std::vector<Rate> residual = separator_.ResidualCapacities(online, sim_.link_fault_factors());
  // Non-blocking update: in-flight transfers keep their bandwidth, but only
  // for the fraction of the coming cycle they will still be running (agents
  // report per-flow progress, so the controller knows the remaining time).
  for (const auto& [tag, t] : transfers_) {
    const Flow* flow = sim_.FindFlow(t.flow);
    double fraction = 1.0;
    if (flow != nullptr && flow->current_rate > 0.0) {
      double remaining_seconds = flow->RemainingAt(sim_.now()) / flow->current_rate;
      fraction = std::min(1.0, remaining_seconds / options_.algorithm.cycle_length);
    }
    for (LinkId l : t.assignment.path.links) {
      Rate& r = residual[static_cast<size_t>(l)];
      // WAN links subtract the full in-flight rate: the safety threshold and
      // the bulk cap are hard guarantees (§5.2), so overlapping a straggler
      // with a full new allocation must never push a WAN link over. Server
      // NICs only lose the fraction of the cycle the straggler still needs.
      double f = topo_->link(l).type == LinkType::kWan ? 1.0 : fraction;
      r = std::max(0.0, r - t.assignment.rate * f);
    }
  }

  // (4): the decision algorithm — runs on the controller's possibly-stale
  // view when report loss is enabled. A stale view only ever has MORE
  // pending deliveries than ground truth (reports lag, submissions do not),
  // so the worst case is a redundant transfer that NoteDelivery ignores.
  const ReplicaState& sched_state = view_ != nullptr ? *view_ : state_;
  CycleDecision decision = algorithm_.Decide(stats.cycle, sched_state, residual, in_flight_);
  BDS_TELEMETRY_COUNT("controller.blocks_scheduled", decision.scheduled_blocks);
  BDS_TELEMETRY_COUNT("controller.merged_subtasks", decision.merged_subtasks);
  stats.scheduled_blocks = decision.scheduled_blocks;
  stats.merged_subtasks = decision.merged_subtasks;
  stats.scheduling_seconds = decision.scheduling_seconds;
  stats.routing_seconds = decision.routing_seconds;
  if ((options_.measure_delays || options_.model_decision_latency) &&
      !active_agent_dcs_.empty()) {
    stats.feedback_delay =
        agent_monitor_.SampleFeedbackLoop(active_agent_dcs_, decision.total_seconds());
  }
  // The decisions only reach the agents after the feedback loop completes;
  // in-flight transfers keep running meanwhile (non-blocking update).
  SimTime lead = 0.0;
  if (options_.model_decision_latency && stats.feedback_delay > 0.0) {
    lead = std::min(stats.feedback_delay, options_.algorithm.cycle_length * 0.9);
    Status s = sim_.AdvanceBy(lead);
    BDS_CHECK_MSG(s.ok(), s.ToString().c_str());
  }

  // (5): push decisions — agents start rate-limited transfers. A dropped
  // push loses every assignment to that destination agent this cycle (one
  // draw per agent, consistent across its assignments); the blocks stay
  // pending and are rescheduled until the agent's retry/backoff escalates
  // out-of-band (§5.3) and the push is forced through.
  std::vector<std::pair<ServerId, bool>> push_plan;
  auto push_dropped = [&](ServerId dst) {
    for (const auto& [s, drop] : push_plan) {
      if (s == dst) {
        return drop;
      }
    }
    bool drop = fault_.DrawPushDropped(dst);
    push_plan.emplace_back(dst, drop);
    return drop;
  };
  for (TransferAssignment& a : decision.transfers) {
    if (push_dropped(a.dst_server)) {
      continue;
    }
    DcId dest_dc = topo_->server(a.dst_server).dc;
    int64_t tag = next_tag_++;
    auto flow = sim_.StartFlow(a.path.links, a.bytes, a.rate, tag, /*tag2=*/0);
    if (!flow.ok()) {
      continue;  // Skip unstartable transfers; they stay pending.
    }
    for (int64_t b : a.blocks) {
      in_flight_.insert(DeliveryKey{a.job, b, dest_dc});
    }
    transfers_.emplace(tag, CtrlTransfer{std::move(a), dest_dc, *flow});
    ++stats.transfers_started;
  }
  BDS_TELEMETRY_COUNT("controller.transfers_started", stats.transfers_started);
  return lead;
}

void BdsController::RecordDelivery(JobId job, ServerId dest_server, SimTime now) {
  ++deliveries_;
  ++deliveries_this_cycle_;
  server_last_delivery_[dest_server] = now;
  if (job_completion_.count(job) == 0 && state_.JobComplete(job)) {
    job_completion_[job] = now;
  }
}

void BdsController::OnFlowComplete(const FlowRecord& record) {
  if (fallback_.OnFlowComplete(record)) {
    return;  // Decentralized-engine flow; its callback updated our stats.
  }
  if (record.tag2 != 0) {
    return;  // Not ours (e.g. a client-injected flow).
  }
  auto it = transfers_.find(record.tag);
  if (it == transfers_.end()) {
    return;
  }
  CtrlTransfer t = std::move(it->second);
  transfers_.erase(it);
  int64_t before = state_.total_credited();
  for (int64_t b : t.assignment.blocks) {
    in_flight_.erase(DeliveryKey{t.assignment.job, b, t.dest_dc});
    if (fault_.DrawBlockCorrupted()) {
      continue;  // Failed checksum verification: stays pending, rescheduled.
    }
    (void)state_.NoteDelivery(t.assignment.job, b, t.assignment.src_server,
                              t.assignment.dst_server);
    MirrorDelivery(t.assignment.job, b, t.assignment.src_server, t.assignment.dst_server);
  }
  // Count the completion only when at least one block was newly credited:
  // a transfer the stale view scheduled redundantly delivers nothing new.
  if (state_.total_credited() > before) {
    RecordDelivery(t.assignment.job, t.assignment.dst_server, sim_.now());
  }
}

StatusOr<RunReport> BdsController::Run(SimTime deadline) {
  RunReport report;
  const SimTime dt = options_.algorithm.cycle_length;
  int64_t cycle = 0;
  // Hard stop: generous bound so that a wedged configuration cannot spin.
  const int64_t max_cycles = 10'000'000;

  // Scope the report's telemetry to this run: everything before Run() (other
  // runs in the same process, registration warm-up) is subtracted out.
  telemetry::MetricsSnapshot telemetry_at_entry;
  if (telemetry::Enabled()) {
    telemetry_at_entry = telemetry::MetricsRegistry::Global().Snapshot();
  }

  if (fault_.stale_reports_enabled() && view_ == nullptr) {
    // Jobs submitted before Run() register inside the loop, so a view
    // created here sees every job. The view starts identical to ground
    // truth and lags only in deliveries whose reports were lost.
    view_ = std::make_unique<ReplicaState>(topo_);
  }

  while (cycle < max_cycles) {
    SimTime now = sim_.now();
    if (now >= deadline - kFluidEpsilon) {
      break;
    }
    BDS_TIMED_SCOPE("controller.cycle");
    RegisterArrivals(now);
    ApplyFailures(now);
    ApplyLinkFaults(now);

    CycleStats stats;
    stats.cycle = cycle;
    stats.start_time = now;
    stats.controller_up = ControllerUp(now);
    deliveries_this_cycle_ = 0;

    SimTime lead = 0.0;
    if (stats.controller_up) {
      if (fallback_was_active_) {
        fallback_.Deactivate();
        fallback_was_active_ = false;
      }
      lead = RunCentralizedCycle(now, stats);
    } else {
      if (!fallback_was_active_) {
        fallback_.Activate();
        fallback_was_active_ = true;
      } else {
        fallback_.Tick();  // Retry stalled receivers each cycle.
      }
    }

    BDS_RETURN_IF_ERROR(sim_.AdvanceBy(std::max(0.0, std::min(dt, deadline - now) - lead)));
    stats.blocks_delivered = deliveries_this_cycle_;
    if (options_.validate_invariants) {
      double overshoot = sim_.MaxCapacityViolation();
      report.max_link_overshoot =
          std::max(report.max_link_overshoot.value_or(overshoot), overshoot);
    }
    BDS_TELEMETRY_COUNT("controller.cycles", 1);
    BDS_TELEMETRY_COUNT("controller.blocks_delivered", stats.blocks_delivered);
    telemetry::TraceInstant(
        "controller.cycle.stats", "controller",
        {{"cycle", static_cast<double>(stats.cycle)},
         {"scheduled_blocks", static_cast<double>(stats.scheduled_blocks)},
         {"transfers_started", static_cast<double>(stats.transfers_started)},
         {"blocks_delivered", static_cast<double>(stats.blocks_delivered)}});
    report.cycles.push_back(stats);
    ++cycle;

    bool all_arrived = next_arrival_ >= arriving_jobs_.size();
    if (all_arrived && state_.AllComplete()) {
      break;
    }
    // Catch wedged runs: nothing pending can ever complete (e.g. every
    // holder failed). Stop rather than spin to the deadline. A pending link
    // recovery or probabilistic control-plane fault can still unwedge a
    // quiet cycle, so the detector defers to the deadline while either is
    // in play.
    if (all_arrived && !state_.AllComplete() && sim_.num_active_flows() == 0 &&
        stats.controller_up && stats.transfers_started == 0 && stats.blocks_delivered == 0 &&
        next_failure_ >= failures_.size() && fault_.remaining_link_events() == 0 &&
        !fault_.control_plane_active()) {
      bool outage_ahead = false;
      for (const Outage& o : outages_) {
        if (o.from > now) {
          outage_ahead = true;
        }
      }
      if (!outage_ahead) {
        break;
      }
    }
  }

  report.completed = state_.AllComplete() && next_arrival_ >= arriving_jobs_.size();
  report.deliveries = deliveries_;
  report.faults = fault_.stats();
  report.job_completion = job_completion_;
  report.origin_stats = state_.origin_stats();
  report.control_delays = agent_monitor_.one_way_delays();
  report.feedback_delays = agent_monitor_.feedback_delays();

  SimTime latest = 0.0;
  std::unordered_map<DcId, SimTime> dc_latest;
  for (ServerId s : state_.AllDestinationServers()) {
    auto it = server_last_delivery_.find(s);
    SimTime t = it == server_last_delivery_.end() ? 0.0 : it->second;
    if (state_.OwedByServer(s) == 0) {
      report.server_completion.emplace_back(s, t);
      DcId dc = topo_->server(s).dc;
      dc_latest[dc] = std::max(dc_latest[dc], t);
      latest = std::max(latest, t);
    }
  }
  std::sort(report.server_completion.begin(), report.server_completion.end());
  report.dc_completion = std::move(dc_latest);
  report.completion_time = report.completed ? latest : sim_.now();
  if (telemetry::Enabled()) {
    report.telemetry =
        telemetry::MetricsRegistry::Global().Snapshot().DiffSince(telemetry_at_entry);
  }
  return report;
}

}  // namespace bds
