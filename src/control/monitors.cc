#include "src/control/monitors.h"

#include <algorithm>

#include "src/common/status.h"

namespace bds {

AgentMonitor::AgentMonitor(const Topology* topo, DcId controller_dc,
                           LatencyModel::Options latency_options)
    : topo_(topo), controller_dc_(controller_dc), latency_(topo, latency_options) {
  BDS_CHECK(topo != nullptr);
  BDS_CHECK(controller_dc >= 0 && controller_dc < topo->num_dcs());
}

double AgentMonitor::SampleStatusDelay(DcId agent_dc) {
  ++messages_;
  double d = latency_.SampleOneWay(agent_dc, controller_dc_);
  one_way_.Add(d);
  return d;
}

double AgentMonitor::SamplePushDelay(DcId agent_dc) {
  ++messages_;
  double d = latency_.SampleOneWay(controller_dc_, agent_dc);
  one_way_.Add(d);
  return d;
}

double AgentMonitor::SampleFeedbackLoop(const std::vector<DcId>& agent_dcs,
                                        double algorithm_seconds) {
  // The cycle cannot proceed until the slowest status arrives, and the last
  // agent acts once the slowest push lands.
  double worst_in = 0.0;
  double worst_out = 0.0;
  for (DcId d : agent_dcs) {
    worst_in = std::max(worst_in, SampleStatusDelay(d));
    worst_out = std::max(worst_out, SamplePushDelay(d));
  }
  double loop = worst_in + algorithm_seconds + worst_out;
  feedback_.Add(loop);
  return loop;
}

NetworkMonitor::NetworkMonitor(const Topology* topo) : topo_(topo) { BDS_CHECK(topo != nullptr); }

std::vector<Rate> NetworkMonitor::OnlineRates(SimTime t) {
  std::vector<Rate> rates(static_cast<size_t>(topo_->num_links()), 0.0);
  if (model_ == nullptr) {
    return rates;
  }
  for (LinkId l = 0; l < topo_->num_links(); ++l) {
    rates[static_cast<size_t>(l)] = model_->RateAt(l, t);
  }
  return rates;
}

}  // namespace bds
