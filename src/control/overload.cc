#include "src/control/overload.h"

#include <algorithm>
#include <cstring>

namespace bds {

double CycleCostModel::Cost(int64_t pending, int64_t selected, int64_t subtasks,
                            int routes_per_subtask, double epsilon) const {
  const double eps = std::max(epsilon, 1e-3);
  const double eps_scale = (fptas_epsilon_ref / eps) * (fptas_epsilon_ref / eps);
  return base_seconds + per_pending_seconds * static_cast<double>(pending) +
         per_selected_seconds * static_cast<double>(selected) +
         per_subtask_route_seconds * static_cast<double>(subtasks) *
             static_cast<double>(routes_per_subtask) * eps_scale;
}

double CycleWatchdog::ModelCost(int64_t pending, int64_t selected, int64_t subtasks) const {
  if (rung_ == DegradationRung::kExtendDecisions) {
    return options_.cost.base_seconds;  // Scheduling and routing were skipped.
  }
  const int routes =
      rung_ >= DegradationRung::kCachedPaths ? 1 : std::max(1, options_.max_wan_routes);
  double epsilon = options_.fptas_epsilon;
  if (rung_ >= DegradationRung::kCoarseEpsilon) {
    epsilon = std::min(0.5, epsilon * options_.degraded_epsilon_factor);
  }
  return options_.cost.Cost(pending, selected, subtasks, routes, epsilon);
}

SimTime CycleWatchdog::StalenessFor(double cost_seconds) const {
  const double over = cost_seconds - options_.cycle_length;
  if (over <= 0.0) {
    return 0.0;
  }
  return std::min(over, options_.max_staleness_fraction * options_.cycle_length);
}

DegradationRung CycleWatchdog::Observe(int64_t cycle, double cost_seconds) {
  ++rung_cycles_[static_cast<size_t>(rung_)];
  const double budget = options_.overrun_threshold * options_.cycle_length;
  if (cost_seconds > budget) {
    ++overrun_cycles_;
    worst_overrun_ = std::max(worst_overrun_, cost_seconds - options_.cycle_length);
    calm_streak_ = 0;
    if (rung_ < DegradationRung::kExtendDecisions) {
      const DegradationRung next = static_cast<DegradationRung>(static_cast<int>(rung_) + 1);
      transitions_.push_back(RungTransition{cycle, rung_, next, cost_seconds});
      rung_ = next;
    }
  } else if (cost_seconds < options_.recover_threshold * options_.cycle_length) {
    if (rung_ > DegradationRung::kNormal) {
      ++calm_streak_;
      if (calm_streak_ >= options_.recover_cycles) {
        const DegradationRung next = static_cast<DegradationRung>(static_cast<int>(rung_) - 1);
        transitions_.push_back(RungTransition{cycle, rung_, next, cost_seconds});
        rung_ = next;
        calm_streak_ = 0;
      }
    }
  } else {
    calm_streak_ = 0;  // Neither overrunning nor calm: hold the rung.
  }
  return rung_;
}

uint64_t CycleWatchdog::TransitionDigest() const {
  uint64_t h = 0x9E3779B97F4A7C15ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    h *= 0xBF58476D1CE4E5B9ULL;
    h ^= h >> 31;
  };
  mix(static_cast<uint64_t>(transitions_.size()));
  for (const RungTransition& t : transitions_) {
    mix(static_cast<uint64_t>(t.cycle));
    mix(static_cast<uint64_t>(t.from));
    mix(static_cast<uint64_t>(t.to));
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(t.modeled_cost));
    std::memcpy(&bits, &t.modeled_cost, sizeof(bits));
    mix(bits);
  }
  return h;
}

}  // namespace bds
