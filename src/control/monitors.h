// The two monitoring components of BDS's control plane (Fig 8):
//
//  * AgentMonitor — the messaging layer between the controller and per-server
//    agents. In the real system it moves HTTP POSTs; here it samples the
//    one-way/feedback delays those messages would see (Fig 11b/11c) and
//    counts messages.
//  * NetworkMonitor — reports the aggregate latency-sensitive rate per link,
//    which the BandwidthSeparator turns into residual bulk capacity (§5.2).

#ifndef BDS_SRC_CONTROL_MONITORS_H_
#define BDS_SRC_CONTROL_MONITORS_H_

#include <vector>

#include "src/common/stats.h"
#include "src/common/types.h"
#include "src/simulator/latency_model.h"
#include "src/topology/topology.h"
#include "src/workload/background_traffic.h"

namespace bds {

class AgentMonitor {
 public:
  AgentMonitor(const Topology* topo, DcId controller_dc, LatencyModel::Options latency_options);

  // One-way delay of a status report from an agent in `agent_dc` to the
  // controller. Recorded into the delay distribution.
  double SampleStatusDelay(DcId agent_dc);

  // One-way delay of a decision push from the controller to `agent_dc`.
  double SamplePushDelay(DcId agent_dc);

  // Full feedback loop (Fig 11c): slowest status report in, algorithm
  // execution, slowest push out. `agent_dcs` are the DCs with active agents.
  double SampleFeedbackLoop(const std::vector<DcId>& agent_dcs, double algorithm_seconds);

  const EmpiricalDistribution& one_way_delays() const { return one_way_; }
  const EmpiricalDistribution& feedback_delays() const { return feedback_; }
  int64_t messages_sent() const { return messages_; }

 private:
  const Topology* topo_;
  DcId controller_dc_;
  LatencyModel latency_;
  EmpiricalDistribution one_way_;
  EmpiricalDistribution feedback_;
  int64_t messages_ = 0;
};

class NetworkMonitor {
 public:
  explicit NetworkMonitor(const Topology* topo);

  // Attaches the latency-sensitive traffic model (nullptr = idle network).
  void SetTrafficModel(BackgroundTrafficModel* model) { model_ = model; }

  // Online rates for every link at time `t` (indexed by LinkId).
  std::vector<Rate> OnlineRates(SimTime t);

 private:
  const Topology* topo_;
  BackgroundTrafficModel* model_ = nullptr;
};

}  // namespace bds

#endif  // BDS_SRC_CONTROL_MONITORS_H_
