// Synthesizes inter-DC transfer traces matching the distributions Baidu's
// 7-day dataset exhibits in the paper:
//
//  * Table 1 — multicast is 91.13 % of inter-DC bytes overall; per-app
//    shares from 89.2 % (search indexing) to 99.1 % (DB sync-ups).
//  * Fig 2a — 90 % of multicast transfers reach >= 60 % of DCs; 70 % reach
//    >= 80 % of DCs.
//  * Fig 2b — 60 % of multicast transfers exceed 1 TB; 90 % exceed 50 GB.
//
// These published aggregates fully determine everything the evaluation uses
// from the trace, which is why a synthetic stand-in preserves the
// experiments' behaviour (see DESIGN.md substitution table).

#ifndef BDS_SRC_WORKLOAD_TRACE_GENERATOR_H_
#define BDS_SRC_WORKLOAD_TRACE_GENERATOR_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/workload/job.h"
#include "src/workload/trace.h"

namespace bds {

// One application class contributing traffic to the trace.
struct AppProfile {
  std::string name;
  double weight = 1.0;            // Relative record count.
  double multicast_share = 0.95;  // Target fraction of this app's bytes
                                  // that are multicast (Table 1).
};

// The paper's application mix (Table 1).
std::vector<AppProfile> BaiduAppMix();

struct TraceGeneratorOptions {
  int num_dcs = 30;
  int num_transfers = 1265;          // Multicast transfers in the window.
  double duration = 7.0 * 86400.0;   // Seconds (7 days).
  std::vector<AppProfile> app_mix;   // Defaults to BaiduAppMix() when empty.

  // Size CDF anchors (Fig 2b).
  Bytes min_size = GB(1.0);
  Bytes p10_size = GB(50.0);   // 10th percentile: 90 % are larger.
  Bytes p40_size = TB(1.0);    // 40th percentile: 60 % are larger.
  Bytes max_size = TB(50.0);

  // Destination-fraction CDF anchors (Fig 2a).
  double p10_dest_fraction = 0.6;  // 90 % of transfers reach more than this.
  double p30_dest_fraction = 0.8;  // 70 % reach more than this.

  uint64_t seed = 2018;
};

class TraceGenerator {
 public:
  explicit TraceGenerator(TraceGeneratorOptions options);

  // Generates the full trace: multicast transfers plus the point-to-point
  // transfers implied by each app's multicast byte share.
  StatusOr<Trace> Generate();

  // Draws one multicast size from the Fig 2b-calibrated distribution.
  Bytes SampleTransferSize();

  // Draws the number of destination DCs for a multicast transfer.
  int SampleDestCount();

 private:
  TraceGeneratorOptions options_;
  Rng rng_;
};

// Converts the multicast records of a trace into schedulable jobs (scaling
// sizes by `size_scale` so trace-driven simulation can run at laptop scale;
// 1.0 = paper scale).
std::vector<MulticastJob> JobsFromTrace(const Trace& trace, Bytes block_size,
                                        double size_scale = 1.0);

}  // namespace bds

#endif  // BDS_SRC_WORKLOAD_TRACE_GENERATOR_H_
