#include "src/workload/trace.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

namespace bds {

TraceStats Trace::ComputeStats(int num_dcs) const {
  TraceStats stats;
  stats.num_records = size();
  double total_bytes = 0.0;
  double multicast_bytes = 0.0;
  std::map<std::string, std::pair<double, double>> per_app;  // (multicast, total)
  for (const TraceRecord& r : records_) {
    total_bytes += r.bytes;
    auto& app = per_app[r.app_type];
    app.second += r.bytes;
    if (r.multicast) {
      ++stats.num_multicast;
      multicast_bytes += r.bytes;
      app.first += r.bytes;
      if (num_dcs > 1) {
        stats.dest_fraction.push_back(static_cast<double>(r.dest_dcs.size()) /
                                      static_cast<double>(num_dcs - 1));
      }
      stats.multicast_sizes.push_back(r.bytes);
    }
  }
  stats.multicast_byte_share = total_bytes > 0.0 ? multicast_bytes / total_bytes : 0.0;
  for (const auto& [app, pair] : per_app) {
    stats.per_app_multicast_share.emplace_back(
        app, pair.second > 0.0 ? pair.first / pair.second : 0.0);
  }
  return stats;
}

Status Trace::SaveCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return UnavailableError("SaveCsv: cannot open " + path);
  }
  out << "id,start,app,multicast,src,dests,bytes\n";
  for (const TraceRecord& r : records_) {
    out << r.id << ',' << r.start_time << ',' << r.app_type << ',' << (r.multicast ? 1 : 0)
        << ',' << r.source_dc << ',';
    for (size_t i = 0; i < r.dest_dcs.size(); ++i) {
      if (i > 0) {
        out << '|';
      }
      out << r.dest_dcs[i];
    }
    out << ',' << r.bytes << '\n';
  }
  return out.good() ? Status::Ok() : UnavailableError("SaveCsv: write failed");
}

StatusOr<Trace> Trace::LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return UnavailableError("LoadCsv: cannot open " + path);
  }
  Trace trace;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {  // Header.
      first = false;
      continue;
    }
    if (line.empty()) {
      continue;
    }
    std::istringstream ls(line);
    std::string field;
    TraceRecord r;
    auto next = [&](std::string& out_field) -> bool {
      return static_cast<bool>(std::getline(ls, out_field, ','));
    };
    std::string id_s, start_s, mc_s, src_s, dests_s, bytes_s;
    if (!next(id_s) || !next(start_s) || !next(r.app_type) || !next(mc_s) || !next(src_s) ||
        !next(dests_s) || !next(bytes_s)) {
      return InvalidArgumentError("LoadCsv: malformed line: " + line);
    }
    r.id = std::stoll(id_s);
    r.start_time = std::stod(start_s);
    r.multicast = mc_s == "1";
    r.source_dc = static_cast<DcId>(std::stol(src_s));
    std::istringstream ds(dests_s);
    std::string d;
    while (std::getline(ds, d, '|')) {
      if (!d.empty()) {
        r.dest_dcs.push_back(static_cast<DcId>(std::stol(d)));
      }
    }
    r.bytes = std::stod(bytes_s);
    trace.Add(std::move(r));
  }
  return trace;
}

}  // namespace bds
