#include "src/workload/arrival_process.h"

#include <algorithm>
#include <cmath>

namespace bds {

namespace {

TraceGeneratorOptions ShapeOptions(const ArrivalProcessOptions& options) {
  TraceGeneratorOptions t = options.trace;
  t.num_dcs = options.num_dcs;
  t.seed = options.seed ^ 0xA221BA1ULL;
  return t;
}

// Off-state rate multiplier keeping the long-run mean at 1:
//   burst_fraction * burst_factor + (1 - burst_fraction) * off = 1.
double OffFactor(const ArrivalProcessOptions& o) {
  const double f = o.burst_fraction;
  return std::max(0.0, (1.0 - f * o.burst_factor) / (1.0 - f));
}

}  // namespace

Status ValidateArrivalOptions(const ArrivalProcessOptions& options) {
  if (options.num_dcs < 2) {
    return InvalidArgumentError("ArrivalProcess: need at least 2 DCs");
  }
  if (options.jobs_per_hour <= 0.0) {
    return InvalidArgumentError("ArrivalProcess: jobs_per_hour must be positive");
  }
  if (options.block_size <= 0.0 || options.size_scale <= 0.0) {
    return InvalidArgumentError("ArrivalProcess: block size and size scale must be positive");
  }
  if (options.pattern == ArrivalPattern::kDiurnal &&
      (options.diurnal_amplitude < 0.0 || options.diurnal_amplitude > 1.0 ||
       options.diurnal_period <= 0.0)) {
    return InvalidArgumentError("ArrivalProcess: diurnal amplitude in [0,1], period > 0");
  }
  if (options.pattern == ArrivalPattern::kBursty &&
      (options.burst_factor < 1.0 || options.burst_fraction <= 0.0 ||
       options.burst_fraction >= 1.0 || options.mean_burst_seconds <= 0.0)) {
    return InvalidArgumentError(
        "ArrivalProcess: burst_factor >= 1, burst_fraction in (0,1), mean burst > 0");
  }
  return Status::Ok();
}

ArrivalProcess::ArrivalProcess(ArrivalProcessOptions options)
    : options_(std::move(options)),
      shape_(ShapeOptions(options_)),
      rng_(options_.seed),
      next_id_(options_.first_job_id) {
  Status s = ValidateArrivalOptions(options_);
  BDS_CHECK_MSG(s.ok(), s.ToString().c_str());
  base_rate_ = options_.jobs_per_hour / 3600.0;
  if (options_.pattern == ArrivalPattern::kBursty) {
    // Start in the off state, with the first toggle drawn like any other.
    burst_on_ = false;
    const double f = options_.burst_fraction;
    burst_until_ = rng_.Exponential(options_.mean_burst_seconds * (1.0 - f) / f);
  }
  DrawNextArrival();
}

double ArrivalProcess::RateAt(SimTime t) {
  switch (options_.pattern) {
    case ArrivalPattern::kPoisson:
      return base_rate_;
    case ArrivalPattern::kDiurnal:
      return base_rate_ *
             (1.0 + options_.diurnal_amplitude *
                        std::sin(2.0 * 3.14159265358979323846 * t / options_.diurnal_period));
    case ArrivalPattern::kBursty: {
      const double f = options_.burst_fraction;
      while (t >= burst_until_) {
        burst_on_ = !burst_on_;
        const double mean = burst_on_ ? options_.mean_burst_seconds
                                      : options_.mean_burst_seconds * (1.0 - f) / f;
        burst_until_ += rng_.Exponential(mean);
      }
      return base_rate_ * (burst_on_ ? options_.burst_factor : OffFactor(options_));
    }
  }
  return base_rate_;
}

double ArrivalProcess::PeakRate() const {
  switch (options_.pattern) {
    case ArrivalPattern::kPoisson:
      return base_rate_;
    case ArrivalPattern::kDiurnal:
      return base_rate_ * (1.0 + options_.diurnal_amplitude);
    case ArrivalPattern::kBursty:
      return base_rate_ * std::max(options_.burst_factor, OffFactor(options_));
  }
  return base_rate_;
}

void ArrivalProcess::DrawNextArrival() {
  // Thinning (Lewis–Shedler): candidates at the peak rate, accepted with
  // probability rate(t)/peak. Exact for every pattern here and keeps the
  // draw sequence a pure function of the seed.
  const double peak = PeakRate();
  SimTime t = next_time_;
  for (;;) {
    t += rng_.Exponential(1.0 / peak);
    const double rate = RateAt(t);
    if (rate >= peak || rng_.NextDouble() < rate / peak) {
      break;
    }
  }
  next_time_ = t;
}

MulticastJob ArrivalProcess::Take() {
  const SimTime at = next_time_;

  const Bytes bytes = std::max(options_.block_size,
                               shape_.SampleTransferSize() * options_.size_scale);
  const int dest_count = std::min(shape_.SampleDestCount(), options_.num_dcs - 1);
  const DcId source = static_cast<DcId>(rng_.UniformInt(0, options_.num_dcs - 1));
  std::vector<DcId> dests;
  dests.reserve(static_cast<size_t>(dest_count));
  for (int64_t pick : rng_.SampleWithoutReplacement(options_.num_dcs - 1, dest_count)) {
    // Map [0, num_dcs-2] onto all DCs except the source.
    DcId d = static_cast<DcId>(pick);
    if (d >= source) {
      d = static_cast<DcId>(d + 1);
    }
    dests.push_back(d);
  }

  auto job = MakeJob(next_id_, source, std::move(dests), bytes, options_.block_size, at,
                     "steady-state");
  BDS_CHECK_MSG(job.ok(), job.status().ToString().c_str());
  ++next_id_;
  ++generated_;
  DrawNextArrival();
  return std::move(job).value();
}

}  // namespace bds
