// Latency-sensitive background traffic model.
//
// The paper's Fig 6 shows a diurnal pattern of online traffic on inter-DC
// links and a bulk transfer that pushed total utilization past the 80 %
// safety threshold, inflating online latency ~30x. We model per-link online
// traffic as a diurnal sinusoid plus noise and occasional bursts; BDS's
// NetworkMonitor reads it to compute the residual available to bulk data
// (§5.2), and the interference bench reproduces Fig 6/10.

#ifndef BDS_SRC_WORKLOAD_BACKGROUND_TRAFFIC_H_
#define BDS_SRC_WORKLOAD_BACKGROUND_TRAFFIC_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"
#include "src/topology/topology.h"

namespace bds {

class BackgroundTrafficModel {
 public:
  struct Options {
    // Mean online utilization of a WAN link (fraction of capacity).
    double mean_utilization = 0.35;
    // Peak-to-mean diurnal swing (fraction of capacity).
    double diurnal_amplitude = 0.15;
    // Stddev of per-sample noise (fraction of capacity).
    double noise = 0.03;
    double period = 86400.0;  // One day.
    uint64_t seed = 99;
  };

  BackgroundTrafficModel(const Topology* topo, Options options);
  explicit BackgroundTrafficModel(const Topology* topo) : BackgroundTrafficModel(topo, Options{}) {}

  // Online (latency-sensitive) rate on `link` at time `t`. Zero for server
  // NIC links — online traffic contends on the WAN.
  Rate RateAt(LinkId link, SimTime t);

  // Models the latency inflation online flows experience at a given total
  // link utilization: ~1x below the safety threshold, super-linear beyond
  // (matching the paper's reported 30x at sustained ~95 %+).
  static double LatencyInflation(double utilization, double safety_threshold = 0.8);

 private:
  const Topology* topo_;
  Options options_;
  std::vector<double> phase_;      // Per-link diurnal phase.
  std::vector<double> amplitude_;  // Per-link amplitude scale.
  Rng noise_rng_;
};

}  // namespace bds

#endif  // BDS_SRC_WORKLOAD_BACKGROUND_TRAFFIC_H_
