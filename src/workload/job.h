// Multicast transfer jobs: one bulk file replicated from a source DC to a
// set of destination DCs, split into fixed-size blocks (§4.1, default 2 MB).

#ifndef BDS_SRC_WORKLOAD_JOB_H_
#define BDS_SRC_WORKLOAD_JOB_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace bds {

struct MulticastJob {
  JobId id = kInvalidJob;
  std::string app_type;
  DcId source_dc = kInvalidDc;
  std::vector<DcId> dest_dcs;
  Bytes total_bytes = 0.0;
  Bytes block_size = MB(2.0);
  SimTime arrival_time = 0.0;

  // Number of blocks, rounding the last partial block up.
  int64_t num_blocks() const;

  // Size of the idx-th block (the last one may be smaller).
  Bytes BlockSizeOf(int64_t idx) const;

  // Validation used by every entry point that accepts a job.
  Status Validate(int num_dcs) const;
};

// Builds a job, assigning `id`. Destinations must not contain the source.
StatusOr<MulticastJob> MakeJob(JobId id, DcId source_dc, std::vector<DcId> dest_dcs,
                               Bytes total_bytes, Bytes block_size = MB(2.0),
                               SimTime arrival_time = 0.0, std::string app_type = "generic");

}  // namespace bds

#endif  // BDS_SRC_WORKLOAD_JOB_H_
