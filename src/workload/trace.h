// Inter-DC transfer traces.
//
// A trace is the list of transfers (multicast and point-to-point) observed
// over a measurement window — the synthetic stand-in for the 7-day Baidu
// dataset of §2 (1265 multicast transfers among 30+ DCs). Records carry
// enough to reproduce Table 1 and Figure 2, and to drive trace-driven
// simulation (§6.1).

#ifndef BDS_SRC_WORKLOAD_TRACE_H_
#define BDS_SRC_WORKLOAD_TRACE_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace bds {

struct TraceRecord {
  int64_t id = 0;
  SimTime start_time = 0.0;  // Seconds from trace start.
  std::string app_type;
  bool multicast = false;  // false = point-to-point transfer.
  DcId source_dc = kInvalidDc;
  std::vector<DcId> dest_dcs;  // Size 1 for point-to-point.
  Bytes bytes = 0.0;
};

struct TraceStats {
  // Fraction of total bytes belonging to multicast transfers, overall and
  // per app type (Table 1).
  double multicast_byte_share = 0.0;
  std::vector<std::pair<std::string, double>> per_app_multicast_share;

  // Destination-fraction samples for multicast records (Fig 2a): for each
  // record, |dest_dcs| / (num_dcs - 1).
  std::vector<double> dest_fraction;

  // Sizes of multicast transfers in bytes (Fig 2b).
  std::vector<double> multicast_sizes;

  int64_t num_records = 0;
  int64_t num_multicast = 0;
};

class Trace {
 public:
  void Add(TraceRecord record) { records_.push_back(std::move(record)); }

  const std::vector<TraceRecord>& records() const { return records_; }
  int64_t size() const { return static_cast<int64_t>(records_.size()); }

  // Aggregates the paper's Table 1 / Figure 2 quantities.
  TraceStats ComputeStats(int num_dcs) const;

  // CSV round trip: "id,start,app,multicast,src,dst1|dst2|...,bytes".
  Status SaveCsv(const std::string& path) const;
  static StatusOr<Trace> LoadCsv(const std::string& path);

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace bds

#endif  // BDS_SRC_WORKLOAD_TRACE_H_
