#include "src/workload/job.h"

#include <algorithm>
#include <cmath>

namespace bds {

int64_t MulticastJob::num_blocks() const {
  if (total_bytes <= 0.0 || block_size <= 0.0) {
    return 0;
  }
  return static_cast<int64_t>(std::ceil(total_bytes / block_size - 1e-12));
}

Bytes MulticastJob::BlockSizeOf(int64_t idx) const {
  int64_t n = num_blocks();
  BDS_CHECK(idx >= 0 && idx < n);
  if (idx + 1 < n) {
    return block_size;
  }
  Bytes last = total_bytes - block_size * static_cast<double>(n - 1);
  return last > 0.0 ? last : block_size;
}

Status MulticastJob::Validate(int num_dcs) const {
  if (source_dc < 0 || source_dc >= num_dcs) {
    return InvalidArgumentError("job: bad source DC");
  }
  if (dest_dcs.empty()) {
    return InvalidArgumentError("job: no destination DCs");
  }
  for (DcId d : dest_dcs) {
    if (d < 0 || d >= num_dcs) {
      return InvalidArgumentError("job: bad destination DC");
    }
    if (d == source_dc) {
      return InvalidArgumentError("job: destination equals source");
    }
  }
  // Destinations must be unique.
  std::vector<DcId> sorted = dest_dcs;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    return InvalidArgumentError("job: duplicate destination DC");
  }
  if (total_bytes <= 0.0) {
    return InvalidArgumentError("job: size must be positive");
  }
  if (block_size <= 0.0) {
    return InvalidArgumentError("job: block size must be positive");
  }
  return Status::Ok();
}

StatusOr<MulticastJob> MakeJob(JobId id, DcId source_dc, std::vector<DcId> dest_dcs,
                               Bytes total_bytes, Bytes block_size, SimTime arrival_time,
                               std::string app_type) {
  MulticastJob job;
  job.id = id;
  job.app_type = std::move(app_type);
  job.source_dc = source_dc;
  job.dest_dcs = std::move(dest_dcs);
  job.total_bytes = total_bytes;
  job.block_size = block_size;
  job.arrival_time = arrival_time;
  // Validate everything except DC-range (the caller knows the topology);
  // range re-checked by consumers via Validate(num_dcs).
  if (job.dest_dcs.empty()) {
    return InvalidArgumentError("MakeJob: no destinations");
  }
  for (DcId d : job.dest_dcs) {
    if (d == source_dc) {
      return InvalidArgumentError("MakeJob: destination equals source");
    }
  }
  if (total_bytes <= 0.0 || block_size <= 0.0) {
    return InvalidArgumentError("MakeJob: sizes must be positive");
  }
  return job;
}

}  // namespace bds
