#include "src/workload/trace_generator.h"

#include <algorithm>
#include <cmath>

namespace bds {

std::vector<AppProfile> BaiduAppMix() {
  // Table 1 of the paper. Weights approximate each application's share of
  // the transfer count (not published; byte shares are what matter).
  return {
      {"blog-articles", 0.25, 0.910},
      {"search-indexing", 0.25, 0.892},
      {"offline-file-sharing", 0.20, 0.9818},
      {"forum-posts", 0.15, 0.9808},
      {"db-syncups", 0.15, 0.991},
  };
}

TraceGenerator::TraceGenerator(TraceGeneratorOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  if (options_.app_mix.empty()) {
    options_.app_mix = BaiduAppMix();
  }
}

Bytes TraceGenerator::SampleTransferSize() {
  // Piecewise log-uniform honoring the Fig 2b anchors:
  //   10 % in [min, p10), 30 % in [p10, p40), 60 % in [p40, max].
  double u = rng_.NextDouble();
  double lo;
  double hi;
  if (u < 0.10) {
    lo = options_.min_size;
    hi = options_.p10_size;
  } else if (u < 0.40) {
    lo = options_.p10_size;
    hi = options_.p40_size;
  } else {
    lo = options_.p40_size;
    hi = options_.max_size;
  }
  return std::exp(rng_.Uniform(std::log(lo), std::log(hi)));
}

int TraceGenerator::SampleDestCount() {
  // Piecewise uniform over destination fractions honoring Fig 2a:
  //   10 % in [0.1, p10), 20 % in [p10, p30), 70 % in [p30, 1.0].
  double u = rng_.NextDouble();
  double f;
  if (u < 0.10) {
    f = rng_.Uniform(0.1, options_.p10_dest_fraction);
  } else if (u < 0.30) {
    f = rng_.Uniform(options_.p10_dest_fraction, options_.p30_dest_fraction);
  } else {
    f = rng_.Uniform(options_.p30_dest_fraction, 1.0);
  }
  int max_dests = options_.num_dcs - 1;
  // Ceil keeps the CDF anchors one-sided: a draw just above an anchor
  // fraction must still count as "reaching at least that fraction of DCs".
  int count = static_cast<int>(std::ceil(f * max_dests - 1e-9));
  return std::clamp(count, 1, max_dests);
}

StatusOr<Trace> TraceGenerator::Generate() {
  if (options_.num_dcs < 2) {
    return InvalidArgumentError("TraceGenerator: need at least 2 DCs");
  }
  if (options_.num_transfers < 1) {
    return InvalidArgumentError("TraceGenerator: need at least 1 transfer");
  }
  double total_weight = 0.0;
  for (const AppProfile& app : options_.app_mix) {
    if (app.multicast_share <= 0.0 || app.multicast_share > 1.0) {
      return InvalidArgumentError("TraceGenerator: bad multicast share for " + app.name);
    }
    total_weight += app.weight;
  }
  if (total_weight <= 0.0) {
    return InvalidArgumentError("TraceGenerator: app mix has zero weight");
  }

  Trace trace;
  int64_t next_id = 0;
  for (int i = 0; i < options_.num_transfers; ++i) {
    // Pick the app by weight.
    double pick = rng_.Uniform(0.0, total_weight);
    const AppProfile* app = &options_.app_mix.back();
    for (const AppProfile& a : options_.app_mix) {
      if (pick < a.weight) {
        app = &a;
        break;
      }
      pick -= a.weight;
    }

    TraceRecord r;
    r.id = next_id++;
    r.start_time = rng_.Uniform(0.0, options_.duration);
    r.app_type = app->name;
    r.multicast = true;
    r.source_dc = static_cast<DcId>(rng_.UniformInt(0, options_.num_dcs - 1));
    int dest_count = SampleDestCount();
    for (int64_t pick_idx : rng_.SampleWithoutReplacement(options_.num_dcs - 1, dest_count)) {
      // Map [0, num_dcs-2] onto all DCs except the source.
      DcId d = static_cast<DcId>(pick_idx);
      if (d >= r.source_dc) {
        d = static_cast<DcId>(d + 1);
      }
      r.dest_dcs.push_back(d);
    }
    r.bytes = SampleTransferSize();

    // Emit the point-to-point bytes that keep this app at its Table 1
    // multicast share: p2p_bytes = multicast_bytes * (1 - share) / share.
    double p2p_bytes = r.bytes * (1.0 - app->multicast_share) / app->multicast_share;
    trace.Add(r);
    if (p2p_bytes > 0.0) {
      TraceRecord p2p;
      p2p.id = next_id++;
      p2p.start_time = rng_.Uniform(0.0, options_.duration);
      p2p.app_type = app->name;
      p2p.multicast = false;
      p2p.source_dc = static_cast<DcId>(rng_.UniformInt(0, options_.num_dcs - 1));
      DcId dst;
      do {
        dst = static_cast<DcId>(rng_.UniformInt(0, options_.num_dcs - 1));
      } while (dst == p2p.source_dc);
      p2p.dest_dcs.push_back(dst);
      p2p.bytes = p2p_bytes;
      trace.Add(std::move(p2p));
    }
  }

  // Chronological order, as a real measurement window would be stored.
  Trace sorted;
  std::vector<TraceRecord> records = trace.records();
  std::sort(records.begin(), records.end(),
            [](const TraceRecord& a, const TraceRecord& b) { return a.start_time < b.start_time; });
  for (auto& r : records) {
    sorted.Add(std::move(r));
  }
  return sorted;
}

std::vector<MulticastJob> JobsFromTrace(const Trace& trace, Bytes block_size, double size_scale) {
  std::vector<MulticastJob> jobs;
  JobId id = 0;
  for (const TraceRecord& r : trace.records()) {
    if (!r.multicast) {
      continue;
    }
    auto job = MakeJob(id, r.source_dc, r.dest_dcs, r.bytes * size_scale, block_size,
                       r.start_time, r.app_type);
    if (job.ok()) {
      jobs.push_back(std::move(job).value());
      ++id;
    }
  }
  return jobs;
}

}  // namespace bds
