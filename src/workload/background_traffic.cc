#include "src/workload/background_traffic.h"

#include <algorithm>
#include <cmath>

#include "src/common/status.h"

namespace bds {

BackgroundTrafficModel::BackgroundTrafficModel(const Topology* topo, Options options)
    : topo_(topo), options_(options), noise_rng_(options.seed ^ 0xABCDEF) {
  BDS_CHECK(topo != nullptr);
  Rng rng(options.seed);
  phase_.reserve(static_cast<size_t>(topo->num_links()));
  amplitude_.reserve(static_cast<size_t>(topo->num_links()));
  for (int l = 0; l < topo->num_links(); ++l) {
    phase_.push_back(rng.Uniform(0.0, options.period));
    amplitude_.push_back(rng.Uniform(0.7, 1.3));
  }
}

Rate BackgroundTrafficModel::RateAt(LinkId link, SimTime t) {
  BDS_CHECK(link >= 0 && link < topo_->num_links());
  const Link& l = topo_->link(link);
  if (l.type != LinkType::kWan) {
    return 0.0;
  }
  double diurnal =
      options_.diurnal_amplitude * amplitude_[static_cast<size_t>(link)] *
      std::sin(2.0 * M_PI * (t + phase_[static_cast<size_t>(link)]) / options_.period);
  double noise = noise_rng_.Normal(0.0, options_.noise);
  double util = std::clamp(options_.mean_utilization + diurnal + noise, 0.0, 0.98);
  return util * l.capacity;
}

double BackgroundTrafficModel::LatencyInflation(double utilization, double safety_threshold) {
  if (utilization <= safety_threshold) {
    return 1.0;
  }
  // Queueing-style blow-up: inflation ~ (1 - threshold) / (1 - utilization),
  // clamped. At u = 0.8 -> 1x, u = 0.95 -> 4x, u = 0.993 -> ~30x.
  double u = std::min(utilization, 0.999);
  return std::min(200.0, (1.0 - safety_threshold) / (1.0 - u));
}

}  // namespace bds
