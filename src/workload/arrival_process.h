// Open-loop job arrivals for the long-running service mode.
//
// Instead of pre-materializing a batch (generate → drain → report), an
// ArrivalProcess draws an unbounded stream of multicast jobs whose *shapes*
// (transfer size, destination-DC count) follow the Fig-2-calibrated
// distributions of TraceGenerator and whose *timing* follows one of three
// arrival patterns:
//
//   kPoisson  homogeneous Poisson at `jobs_per_hour`.
//   kDiurnal  non-homogeneous Poisson, rate modulated by a daily sinusoid
//             (the inter-DC traffic shape of §2.1 / Fig 10).
//   kBursty   two-state on/off modulated Poisson: burst periods at
//             `burst_factor` x the base rate, quiet periods scaled so the
//             long-run mean stays `jobs_per_hour`.
//
// Non-homogeneous draws use thinning against the pattern's peak rate, so
// every pattern consumes randomness from one seeded Rng in arrival order —
// one seed, one byte-identical job stream, independent of who consumes it.

#ifndef BDS_SRC_WORKLOAD_ARRIVAL_PROCESS_H_
#define BDS_SRC_WORKLOAD_ARRIVAL_PROCESS_H_

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/workload/job.h"
#include "src/workload/trace_generator.h"

namespace bds {

enum class ArrivalPattern { kPoisson, kDiurnal, kBursty };

struct ArrivalProcessOptions {
  ArrivalPattern pattern = ArrivalPattern::kPoisson;
  double jobs_per_hour = 60.0;  // Long-run mean arrival rate.

  // kDiurnal: rate(t) = mean * (1 + amplitude * sin(2*pi*t / period)).
  double diurnal_amplitude = 0.5;
  SimTime diurnal_period = 86400.0;

  // kBursty: on-state rate is burst_factor * mean; the process spends
  // `burst_fraction` of time on. Off-state rate is derived so the long-run
  // mean stays `jobs_per_hour` (clamped at zero when burst_factor is large).
  double burst_factor = 4.0;
  double burst_fraction = 0.2;
  SimTime mean_burst_seconds = 600.0;

  // Job shape. `trace.num_dcs` and `trace.seed` are overridden from the
  // fields below; the size/destination CDF anchors are honoured as-is.
  TraceGeneratorOptions trace;
  int num_dcs = 0;  // Required: the deployment's DC count.
  Bytes block_size = MB(2.0);
  double size_scale = 1.0;  // Scales drawn sizes (laptop-scale runs).

  JobId first_job_id = 0;  // Ids are assigned sequentially from here.
  uint64_t seed = 2026;
};

Status ValidateArrivalOptions(const ArrivalProcessOptions& options);

class ArrivalProcess {
 public:
  // Requires ValidateArrivalOptions(options).ok(); checked fatally.
  explicit ArrivalProcess(ArrivalProcessOptions options);

  // Arrival time of the next job (monotone non-decreasing across Take()s).
  SimTime NextArrivalTime() const { return next_time_; }

  // Consumes and returns the next job; draws the one after.
  MulticastJob Take();

  int64_t generated() const { return generated_; }
  JobId next_job_id() const { return next_id_; }
  const ArrivalProcessOptions& options() const { return options_; }

 private:
  // Instantaneous rate (jobs/second) at simulated time t. For kBursty the
  // on/off state machine is advanced to t first (t must be non-decreasing).
  double RateAt(SimTime t);
  double PeakRate() const;
  void DrawNextArrival();

  ArrivalProcessOptions options_;
  TraceGenerator shape_;  // Size / destination-count sampler.
  Rng rng_;               // Arrival timing + source/destination draws.
  double base_rate_ = 0.0;  // Jobs per second.

  SimTime next_time_ = 0.0;
  JobId next_id_ = 0;
  int64_t generated_ = 0;

  // kBursty state machine.
  bool burst_on_ = false;
  SimTime burst_until_ = 0.0;
};

}  // namespace bds

#endif  // BDS_SRC_WORKLOAD_ARRIVAL_PROCESS_H_
