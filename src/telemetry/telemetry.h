// Umbrella header for the telemetry subsystem: the metrics registry, the
// trace recorder, scoped timers, and the update macros instrumentation sites
// should use.
//
// Cost model the macros guarantee:
//  - telemetry disabled (the default): one relaxed atomic load and a branch
//    per call site. No registration, no shard access, no clock read.
//  - telemetry enabled: handle resolution happens once per call site (cached
//    in a function-local static); each hit is a per-thread shard store.
//
// Hot inner loops should not even pay the branch per iteration: accumulate
// into plain locals and publish once per call with BDS_TELEMETRY_COUNT.

#ifndef BDS_SRC_TELEMETRY_TELEMETRY_H_
#define BDS_SRC_TELEMETRY_TELEMETRY_H_

#include <chrono>

#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace bds {
namespace telemetry {

// Times a scope on a steady clock; on destruction records the elapsed
// milliseconds into a latency histogram and, when the trace recorder is
// active, emits a Chrome "X" (complete) span. Construct via BDS_TIMED_SCOPE.
class ScopedTimer {
 public:
  ScopedTimer(const char* name, HistogramHandle handle)
      : name_(name), handle_(handle), active_(Enabled()) {
    if (active_) {
      start_ = std::chrono::steady_clock::now();
    }
  }

  ~ScopedTimer() {
    if (!active_) {
      return;
    }
    auto elapsed = std::chrono::steady_clock::now() - start_;
    int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count();
    MetricsRegistry::Global().HistogramRecord(handle_, static_cast<double>(ns) / 1e6);
    TraceRecorder& recorder = TraceRecorder::Global();
    if (recorder.active()) {
      recorder.Complete(name_, "timer", recorder.NowNs() - ns, ns);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* name_;
  HistogramHandle handle_;
  bool active_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace telemetry
}  // namespace bds

#define BDS_TELEMETRY_CONCAT_(a, b) a##b
#define BDS_TELEMETRY_CONCAT(a, b) BDS_TELEMETRY_CONCAT_(a, b)

// Adds `delta` to the named counter. `name` must be a string literal (the
// handle is resolved once and cached; re-evaluating the name is pointless).
#define BDS_TELEMETRY_COUNT(name, delta)                                              \
  do {                                                                                \
    if (::bds::telemetry::Enabled()) {                                                \
      static const ::bds::telemetry::CounterHandle bds_telemetry_handle =             \
          ::bds::telemetry::MetricsRegistry::Global().RegisterCounter(name);          \
      ::bds::telemetry::MetricsRegistry::Global().CounterAdd(bds_telemetry_handle,    \
                                                             (delta));               \
    }                                                                                 \
  } while (0)

// Sets the named gauge to `value` (last writer wins).
#define BDS_TELEMETRY_GAUGE(name, value)                                              \
  do {                                                                                \
    if (::bds::telemetry::Enabled()) {                                                \
      static const ::bds::telemetry::GaugeHandle bds_telemetry_handle =               \
          ::bds::telemetry::MetricsRegistry::Global().RegisterGauge(name);            \
      ::bds::telemetry::MetricsRegistry::Global().GaugeSet(bds_telemetry_handle,      \
                                                           (value));                 \
    }                                                                                 \
  } while (0)

// Records `value` into the named histogram with the given fixed-bucket
// layout ([lo, hi), `bins` buckets; out-of-range clamps to the edge bins).
#define BDS_TELEMETRY_HISTOGRAM(name, lo, hi, bins, value)                            \
  do {                                                                                \
    if (::bds::telemetry::Enabled()) {                                                \
      static const ::bds::telemetry::HistogramHandle bds_telemetry_handle =           \
          ::bds::telemetry::MetricsRegistry::Global().RegisterHistogram(name, (lo),   \
                                                                        (hi), (bins)); \
      ::bds::telemetry::MetricsRegistry::Global().HistogramRecord(bds_telemetry_handle, \
                                                                  (value));           \
    }                                                                                 \
  } while (0)

// Publishes a locally-accumulated histogram (see HistogramRecordBulk): the
// caller owns the bin array and the count/sum/max scalars and calls this once
// per drive call, not per sample. Layout args must match the accumulation.
#define BDS_TELEMETRY_HISTOGRAM_BULK(name, lo, hi, bins, bin_counts, count, sum, max_seen) \
  do {                                                                                \
    if (::bds::telemetry::Enabled()) {                                                \
      static const ::bds::telemetry::HistogramHandle bds_telemetry_handle =           \
          ::bds::telemetry::MetricsRegistry::Global().RegisterHistogram(name, (lo),   \
                                                                        (hi), (bins)); \
      ::bds::telemetry::MetricsRegistry::Global().HistogramRecordBulk(                \
          bds_telemetry_handle, (bin_counts), (bins), (count), (sum), (max_seen));    \
    }                                                                                 \
  } while (0)

// Times the rest of the enclosing scope into the latency histogram `name`
// (milliseconds) and emits a trace span when recording. `name` must be a
// string literal.
#define BDS_TIMED_SCOPE(name)                                                         \
  static const ::bds::telemetry::HistogramHandle BDS_TELEMETRY_CONCAT(                \
      bds_timed_scope_handle_, __LINE__) =                                            \
      ::bds::telemetry::MetricsRegistry::Global().RegisterTimer(name);                \
  ::bds::telemetry::ScopedTimer BDS_TELEMETRY_CONCAT(bds_timed_scope_, __LINE__)(     \
      name, BDS_TELEMETRY_CONCAT(bds_timed_scope_handle_, __LINE__))

#endif  // BDS_SRC_TELEMETRY_TELEMETRY_H_
