#include "src/telemetry/metrics.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "src/common/status.h"

namespace bds {
namespace telemetry {

namespace {
std::atomic<bool> g_enabled{false};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) { g_enabled.store(enabled, std::memory_order_relaxed); }

// ---------------------------------------------------------------------------
// Registry internals.

// One thread's private block of metric storage. The owning thread is the
// only writer (relaxed stores); Snapshot() readers do relaxed loads. Atomics
// make the cross-thread reads well-defined without any locking on the update
// path.
struct MetricsRegistry::Shard {
  std::atomic<int64_t> counters[kMaxCounters];
  struct HistShard {
    std::atomic<int64_t> bins[kMaxBins];
    std::atomic<int64_t> count;
    std::atomic<double> sum;
    std::atomic<double> max;
  };
  HistShard hists[kMaxHistograms];

  Shard() {
    for (auto& c : counters) {
      c.store(0, std::memory_order_relaxed);
    }
    ZeroHists();
  }

  void ZeroCounters() {
    for (auto& c : counters) {
      c.store(0, std::memory_order_relaxed);
    }
  }

  void ZeroHists() {
    for (auto& h : hists) {
      for (auto& b : h.bins) {
        b.store(0, std::memory_order_relaxed);
      }
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0.0, std::memory_order_relaxed);
      h.max.store(0.0, std::memory_order_relaxed);
    }
  }
};

struct MetricsRegistry::Impl {
  mutable std::mutex mu;

  // Registration state (guarded by mu).
  std::unordered_map<std::string, int> counter_ids;
  std::unordered_map<std::string, int> gauge_ids;
  std::unordered_map<std::string, int> hist_ids;
  std::vector<std::string> counter_names;
  std::vector<std::string> gauge_names;
  std::vector<std::string> hist_names;

  struct HistParams {
    double lo = 0.0;
    double hi = 1.0;
    int bins = 1;
  };
  // Indexed by handle id; written once at registration, read lock-free on
  // the record path (the handle's publication synchronizes the write).
  HistParams hist_params[kMaxHistograms];

  // Gauges: rare last-writer-wins sets, one central array.
  std::atomic<double> gauges[kMaxGauges];

  // Live per-thread shards and the folded totals of exited threads
  // (guarded by mu).
  std::vector<Shard*> live_shards;
  int64_t retired_counters[kMaxCounters] = {};
  int64_t retired_bins[kMaxHistograms][kMaxBins] = {};
  int64_t retired_hist_count[kMaxHistograms] = {};
  double retired_hist_sum[kMaxHistograms] = {};
  double retired_hist_max[kMaxHistograms] = {};
  int64_t retired_threads = 0;

  Impl() {
    for (auto& g : gauges) {
      g.store(0.0, std::memory_order_relaxed);
    }
  }

  void FoldShardLocked(const Shard& shard) {
    for (int i = 0; i < kMaxCounters; ++i) {
      retired_counters[i] += shard.counters[i].load(std::memory_order_relaxed);
    }
    for (int h = 0; h < kMaxHistograms; ++h) {
      const Shard::HistShard& hs = shard.hists[h];
      if (hs.count.load(std::memory_order_relaxed) == 0) {
        continue;
      }
      for (int b = 0; b < kMaxBins; ++b) {
        retired_bins[h][b] += hs.bins[b].load(std::memory_order_relaxed);
      }
      retired_hist_count[h] += hs.count.load(std::memory_order_relaxed);
      retired_hist_sum[h] += hs.sum.load(std::memory_order_relaxed);
      retired_hist_max[h] = std::max(retired_hist_max[h], hs.max.load(std::memory_order_relaxed));
    }
  }
};

namespace {

// Ties a shard's lifetime to its thread: folds the totals into the registry
// when the thread exits so no samples are lost.
struct ShardOwner {
  MetricsRegistry::Shard* shard = nullptr;
  MetricsRegistry::Impl* impl = nullptr;

  ~ShardOwner();
};

thread_local ShardOwner t_shard_owner;

}  // namespace

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: worker threads may outlive main and still fold their
  // shards into the registry from ShardOwner destructors.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Shard* MetricsRegistry::ShardForThisThread() {
  ShardOwner& owner = t_shard_owner;
  if (owner.shard == nullptr) {
    owner.shard = new Shard();
    owner.impl = impl_;
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->live_shards.push_back(owner.shard);
  }
  return owner.shard;
}

namespace {

ShardOwner::~ShardOwner() {
  if (shard == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> lock(impl->mu);
  impl->FoldShardLocked(*shard);
  auto& live = impl->live_shards;
  live.erase(std::remove(live.begin(), live.end(), shard), live.end());
  ++impl->retired_threads;
  delete shard;
}

}  // namespace

CounterHandle MetricsRegistry::RegisterCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->counter_ids.find(std::string(name));
  if (it != impl_->counter_ids.end()) {
    return CounterHandle{it->second};
  }
  if (static_cast<int>(impl_->counter_names.size()) >= kMaxCounters) {
    return CounterHandle{};  // Capacity exhausted: no-op handle.
  }
  int id = static_cast<int>(impl_->counter_names.size());
  impl_->counter_names.emplace_back(name);
  impl_->counter_ids.emplace(std::string(name), id);
  return CounterHandle{id};
}

GaugeHandle MetricsRegistry::RegisterGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->gauge_ids.find(std::string(name));
  if (it != impl_->gauge_ids.end()) {
    return GaugeHandle{it->second};
  }
  if (static_cast<int>(impl_->gauge_names.size()) >= kMaxGauges) {
    return GaugeHandle{};
  }
  int id = static_cast<int>(impl_->gauge_names.size());
  impl_->gauge_names.emplace_back(name);
  impl_->gauge_ids.emplace(std::string(name), id);
  return GaugeHandle{id};
}

HistogramHandle MetricsRegistry::RegisterHistogram(std::string_view name, double lo, double hi,
                                                   int bins) {
  BDS_CHECK(hi > lo && bins > 0);
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto it = impl_->hist_ids.find(std::string(name));
  if (it != impl_->hist_ids.end()) {
    return HistogramHandle{it->second};  // First registration's layout wins.
  }
  if (static_cast<int>(impl_->hist_names.size()) >= kMaxHistograms) {
    return HistogramHandle{};
  }
  int id = static_cast<int>(impl_->hist_names.size());
  impl_->hist_names.emplace_back(name);
  impl_->hist_ids.emplace(std::string(name), id);
  impl_->hist_params[id] = {lo, hi, std::min(bins, kMaxBins)};
  return HistogramHandle{id};
}

HistogramHandle MetricsRegistry::RegisterTimer(std::string_view name) {
  // Milliseconds; runs we time are well under a second per scope, and the
  // sum/max fields keep exact totals for anything that clamps.
  return RegisterHistogram(name, 0.0, 1000.0, 100);
}

void MetricsRegistry::CounterAdd(CounterHandle h, int64_t delta) {
  if (!h.valid()) {
    return;
  }
  std::atomic<int64_t>& cell = ShardForThisThread()->counters[h.id];
  // Single writer per shard: load+store beats a lock-prefixed RMW.
  cell.store(cell.load(std::memory_order_relaxed) + delta, std::memory_order_relaxed);
}

void MetricsRegistry::GaugeSet(GaugeHandle h, double value) {
  if (!h.valid()) {
    return;
  }
  impl_->gauges[h.id].store(value, std::memory_order_relaxed);
}

void MetricsRegistry::HistogramRecord(HistogramHandle h, double value) {
  if (!h.valid()) {
    return;
  }
  const Impl::HistParams& p = impl_->hist_params[h.id];
  int bin = static_cast<int>((value - p.lo) / (p.hi - p.lo) * static_cast<double>(p.bins));
  bin = std::clamp(bin, 0, p.bins - 1);
  Shard::HistShard& hs = ShardForThisThread()->hists[h.id];
  std::atomic<int64_t>& cell = hs.bins[bin];
  cell.store(cell.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  hs.count.store(hs.count.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  hs.sum.store(hs.sum.load(std::memory_order_relaxed) + value, std::memory_order_relaxed);
  if (value > hs.max.load(std::memory_order_relaxed)) {
    hs.max.store(value, std::memory_order_relaxed);
  }
}

void MetricsRegistry::HistogramRecordBulk(HistogramHandle h, const int64_t* bin_counts,
                                          int num_bins, int64_t count, double sum,
                                          double max_seen) {
  if (!h.valid() || count <= 0) {
    return;
  }
  const Impl::HistParams& p = impl_->hist_params[h.id];
  Shard::HistShard& hs = ShardForThisThread()->hists[h.id];
  const int n = num_bins < p.bins ? num_bins : p.bins;
  for (int i = 0; i < n; ++i) {
    if (bin_counts[i] != 0) {
      std::atomic<int64_t>& cell = hs.bins[i];
      cell.store(cell.load(std::memory_order_relaxed) + bin_counts[i],
                 std::memory_order_relaxed);
    }
  }
  hs.count.store(hs.count.load(std::memory_order_relaxed) + count,
                 std::memory_order_relaxed);
  hs.sum.store(hs.sum.load(std::memory_order_relaxed) + sum, std::memory_order_relaxed);
  if (max_seen > hs.max.load(std::memory_order_relaxed)) {
    hs.max.store(max_seen, std::memory_order_relaxed);
  }
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mu);

  int n_counters = static_cast<int>(impl_->counter_names.size());
  snap.counters.reserve(static_cast<size_t>(n_counters));
  for (int i = 0; i < n_counters; ++i) {
    int64_t value = impl_->retired_counters[i];
    for (const Shard* shard : impl_->live_shards) {
      value += shard->counters[i].load(std::memory_order_relaxed);
    }
    snap.counters.push_back({impl_->counter_names[i], value});
  }

  int n_gauges = static_cast<int>(impl_->gauge_names.size());
  snap.gauges.reserve(static_cast<size_t>(n_gauges));
  for (int i = 0; i < n_gauges; ++i) {
    snap.gauges.push_back({impl_->gauge_names[i], impl_->gauges[i].load(std::memory_order_relaxed)});
  }

  int n_hists = static_cast<int>(impl_->hist_names.size());
  snap.histograms.reserve(static_cast<size_t>(n_hists));
  for (int i = 0; i < n_hists; ++i) {
    const Impl::HistParams& p = impl_->hist_params[i];
    MetricsSnapshot::HistogramEntry entry{impl_->hist_names[i], Histogram(p.lo, p.hi, p.bins),
                                          impl_->retired_hist_sum[i], impl_->retired_hist_max[i]};
    for (int b = 0; b < p.bins; ++b) {
      entry.hist.AddCount(b, impl_->retired_bins[i][b]);
    }
    for (const Shard* shard : impl_->live_shards) {
      const Shard::HistShard& hs = shard->hists[i];
      if (hs.count.load(std::memory_order_relaxed) == 0) {
        continue;
      }
      // Materialize the shard's bins and pool them in via Histogram::Merge.
      Histogram shard_hist(p.lo, p.hi, p.bins);
      for (int b = 0; b < p.bins; ++b) {
        shard_hist.AddCount(b, hs.bins[b].load(std::memory_order_relaxed));
      }
      entry.hist.Merge(shard_hist);
      entry.sum += hs.sum.load(std::memory_order_relaxed);
      entry.max = std::max(entry.max, hs.max.load(std::memory_order_relaxed));
    }
    snap.histograms.push_back(std::move(entry));
  }
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& c : impl_->retired_counters) {
    c = 0;
  }
  for (auto& row : impl_->retired_bins) {
    for (auto& b : row) {
      b = 0;
    }
  }
  for (auto& c : impl_->retired_hist_count) {
    c = 0;
  }
  for (auto& s : impl_->retired_hist_sum) {
    s = 0.0;
  }
  for (auto& m : impl_->retired_hist_max) {
    m = 0.0;
  }
  for (auto& g : impl_->gauges) {
    g.store(0.0, std::memory_order_relaxed);
  }
  for (Shard* shard : impl_->live_shards) {
    shard->ZeroCounters();
    shard->ZeroHists();
  }
}

int64_t MetricsRegistry::retired_threads() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->retired_threads;
}

// ---------------------------------------------------------------------------
// MetricsSnapshot.

MetricsSnapshot MetricsSnapshot::DiffSince(const MetricsSnapshot& earlier) const {
  MetricsSnapshot out = *this;
  for (auto& counter : out.counters) {
    if (const CounterEntry* was = earlier.FindCounter(counter.name)) {
      counter.value -= was->value;
    }
  }
  for (auto& entry : out.histograms) {
    const HistogramEntry* was = earlier.FindHistogram(entry.name);
    if (was == nullptr || was->hist.bins() != entry.hist.bins() ||
        was->hist.lo() != entry.hist.lo() || was->hist.hi() != entry.hist.hi()) {
      continue;
    }
    for (int b = 0; b < entry.hist.bins(); ++b) {
      entry.hist.AddCount(b, -was->hist.BinCount(b));
    }
    entry.sum -= was->sum;
  }
  return out;
}

const MetricsSnapshot::CounterEntry* MetricsSnapshot::FindCounter(std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) {
      return &c;
    }
  }
  return nullptr;
}

const MetricsSnapshot::GaugeEntry* MetricsSnapshot::FindGauge(std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) {
      return &g;
    }
  }
  return nullptr;
}

const MetricsSnapshot::HistogramEntry* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) {
      return &h;
    }
  }
  return nullptr;
}

int64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  const CounterEntry* c = FindCounter(name);
  return c != nullptr ? c->value : 0;
}

std::string MetricsSnapshot::ToString() const {
  std::ostringstream os;
  for (const auto& c : counters) {
    if (c.value != 0) {
      os << c.name << " = " << c.value << "\n";
    }
  }
  for (const auto& g : gauges) {
    if (g.value != 0.0) {
      os << g.name << " = " << g.value << "\n";
    }
  }
  for (const auto& h : histograms) {
    if (h.hist.total() > 0) {
      double mean = h.sum / static_cast<double>(h.hist.total());
      os << h.name << ": n=" << h.hist.total() << " mean=" << mean << " max=" << h.max << "\n";
    }
  }
  return os.str();
}

namespace {

void AppendJsonString(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

void AppendJsonDouble(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream os;
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& c : counters) {
    if (!first) {
      os << ",";
    }
    first = false;
    AppendJsonString(os, c.name);
    os << ":" << c.value;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& g : gauges) {
    if (!first) {
      os << ",";
    }
    first = false;
    AppendJsonString(os, g.name);
    os << ":";
    AppendJsonDouble(os, g.value);
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) {
      os << ",";
    }
    first = false;
    AppendJsonString(os, h.name);
    os << ":{\"count\":" << h.hist.total() << ",\"sum\":";
    AppendJsonDouble(os, h.sum);
    os << ",\"max\":";
    AppendJsonDouble(os, h.max);
    os << ",\"lo\":";
    AppendJsonDouble(os, h.hist.lo());
    os << ",\"hi\":";
    AppendJsonDouble(os, h.hist.hi());
    os << ",\"bins\":[";
    for (int b = 0; b < h.hist.bins(); ++b) {
      if (b > 0) {
        os << ",";
      }
      os << h.hist.BinCount(b);
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

}  // namespace telemetry
}  // namespace bds
