#include "src/telemetry/trace.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <vector>

namespace bds {
namespace telemetry {

namespace {

// Small dense thread ids for trace output (the OS tid is noisy and varies
// run to run; a dense id makes traces from repeated runs comparable).
std::atomic<int> g_next_tid{0};
int ThisThreadTraceId() {
  thread_local int tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendJsonString(std::ostringstream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << *s;
    }
  }
  os << '"';
}

void AppendJsonDouble(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return UnavailableError("cannot open for writing: " + path);
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int close_err = std::fclose(f);
  if (written != contents.size() || close_err != 0) {
    return UnavailableError("short write: " + path);
  }
  return Status::Ok();
}

}  // namespace

struct TraceRecorder::Impl {
  struct Event {
    const char* name;
    const char* category;
    char phase;  // 'i' instant, 'X' complete.
    int tid;
    int64_t ts_ns;
    int64_t dur_ns;
    int nargs;
    TraceArg args[kMaxArgs];
  };

  // The mutex guards control-plane operations only (Start / Clear / export).
  // The append path is lock-free: one relaxed claim on `next` either lands
  // the event in a pre-sized slot or counts as a drop — the recorder sits on
  // the simulator's per-event path, where a mutex pair per instant is
  // measurable. Exports and size/dropped reads are exact once writer threads
  // are quiescent (joined or stopped), the same contract metric snapshots
  // already carry.
  mutable std::mutex mu;
  std::vector<Event> ring;  // Pre-sized to `capacity` by Start().
  int64_t capacity = 0;
  std::atomic<int64_t> next{0};  // Slots claimed; anything past capacity dropped.
  std::atomic<int64_t> origin_ns{0};

  void Append(const Event& event) {
    int64_t idx = next.fetch_add(1, std::memory_order_relaxed);
    if (idx >= capacity) {
      return;
    }
    ring[static_cast<size_t>(idx)] = event;
  }

  // Claims a drop slot if the ring is already full, so callers can skip the
  // clock read and event construction for an event that cannot land. The
  // load-then-add is racy only against other drops: Append's own bound check
  // is what guarantees no slot is written twice.
  bool DropIfFull() {
    if (next.load(std::memory_order_relaxed) >= capacity) {
      next.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  int64_t buffered() const {
    int64_t n = next.load(std::memory_order_relaxed);
    return n < capacity ? n : capacity;
  }

  int64_t num_dropped() const {
    int64_t n = next.load(std::memory_order_relaxed) - capacity;
    return n > 0 ? n : 0;
  }
};

TraceRecorder::TraceRecorder() : impl_(new Impl) {}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // Leaked on purpose.
  return *recorder;
}

void TraceRecorder::Start(size_t capacity) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->ring.assign(capacity, Impl::Event{});
    impl_->capacity = static_cast<int64_t>(capacity);
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->origin_ns.store(SteadyNowNs(), std::memory_order_relaxed);
  }
  active_.store(true, std::memory_order_relaxed);
  SetEnabled(true);
}

void TraceRecorder::Stop() { active_.store(false, std::memory_order_relaxed); }

int64_t TraceRecorder::NowNs() const {
  return SteadyNowNs() - impl_->origin_ns.load(std::memory_order_relaxed);
}

void TraceRecorder::Instant(const char* name, const char* category,
                            std::initializer_list<TraceArg> args) {
  // Check for a full ring before reading the clock: once the ring fills, a
  // long run's remaining instants would otherwise each pay a steady_clock
  // read just to be dropped.
  if (!active() || impl_->DropIfFull()) {
    return;
  }
  Complete(name, category, NowNs(), /*dur_ns=*/0, args);
}

void TraceRecorder::Complete(const char* name, const char* category, int64_t ts_ns,
                             int64_t dur_ns, std::initializer_list<TraceArg> args) {
  if (!active() || impl_->DropIfFull()) {
    return;
  }
  Impl::Event event;
  event.name = name;
  event.category = category;
  event.phase = dur_ns > 0 ? 'X' : 'i';
  event.tid = ThisThreadTraceId();
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.nargs = 0;
  for (const TraceArg& arg : args) {
    if (event.nargs >= kMaxArgs) {
      break;
    }
    event.args[event.nargs++] = arg;
  }
  impl_->Append(event);
}

size_t TraceRecorder::size() const { return static_cast<size_t>(impl_->buffered()); }

size_t TraceRecorder::dropped() const {
  return static_cast<size_t>(impl_->num_dropped());
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->next.store(0, std::memory_order_relaxed);
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ostringstream os;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    os << "{\"traceEvents\":[";
    const int64_t n = impl_->buffered();
    for (int64_t i = 0; i < n; ++i) {
      const Impl::Event& event = impl_->ring[static_cast<size_t>(i)];
      if (i > 0) {
        os << ",\n";
      }
      os << "{\"name\":";
      AppendJsonString(os, event.name);
      os << ",\"cat\":";
      AppendJsonString(os, event.category);
      os << ",\"ph\":\"" << event.phase << "\"";
      os << ",\"pid\":1,\"tid\":" << event.tid;
      // Chrome traces use microseconds.
      os << ",\"ts\":";
      AppendJsonDouble(os, static_cast<double>(event.ts_ns) / 1e3);
      if (event.phase == 'X') {
        os << ",\"dur\":";
        AppendJsonDouble(os, static_cast<double>(event.dur_ns) / 1e3);
      } else {
        os << ",\"s\":\"t\"";  // Instant scope: thread.
      }
      if (event.nargs > 0) {
        os << ",\"args\":{";
        for (int i = 0; i < event.nargs; ++i) {
          if (i > 0) {
            os << ",";
          }
          AppendJsonString(os, event.args[i].key);
          os << ":";
          AppendJsonDouble(os, event.args[i].value);
        }
        os << "}";
      }
      os << "}";
    }
    os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":"
       << impl_->num_dropped() << "}}";
  }
  return WriteFile(path, os.str());
}

Status TraceRecorder::WriteRunSummary(const std::string& path,
                                      const MetricsSnapshot& snapshot) const {
  std::ostringstream os;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    os << "{\"kind\":\"meta\",\"trace_events\":" << impl_->buffered()
       << ",\"dropped_events\":" << impl_->num_dropped() << "}\n";
  }
  for (const auto& c : snapshot.counters) {
    os << "{\"kind\":\"counter\",\"name\":";
    AppendJsonString(os, c.name.c_str());
    os << ",\"value\":" << c.value << "}\n";
  }
  for (const auto& g : snapshot.gauges) {
    os << "{\"kind\":\"gauge\",\"name\":";
    AppendJsonString(os, g.name.c_str());
    os << ",\"value\":";
    AppendJsonDouble(os, g.value);
    os << "}\n";
  }
  for (const auto& h : snapshot.histograms) {
    os << "{\"kind\":\"histogram\",\"name\":";
    AppendJsonString(os, h.name.c_str());
    os << ",\"count\":" << h.hist.total() << ",\"sum\":";
    AppendJsonDouble(os, h.sum);
    os << ",\"max\":";
    AppendJsonDouble(os, h.max);
    os << "}\n";
  }
  return WriteFile(path, os.str());
}

}  // namespace telemetry
}  // namespace bds
