#include "src/telemetry/trace.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <vector>

namespace bds {
namespace telemetry {

namespace {

// Small dense thread ids for trace output (the OS tid is noisy and varies
// run to run; a dense id makes traces from repeated runs comparable).
std::atomic<int> g_next_tid{0};
int ThisThreadTraceId() {
  thread_local int tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendJsonString(std::ostringstream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << *s;
    }
  }
  os << '"';
}

void AppendJsonDouble(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return UnavailableError("cannot open for writing: " + path);
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int close_err = std::fclose(f);
  if (written != contents.size() || close_err != 0) {
    return UnavailableError("short write: " + path);
  }
  return Status::Ok();
}

}  // namespace

struct TraceRecorder::Impl {
  struct Event {
    const char* name;
    const char* category;
    char phase;  // 'i' instant, 'X' complete.
    int tid;
    int64_t ts_ns;
    int64_t dur_ns;
    int nargs;
    TraceArg args[kMaxArgs];
  };

  mutable std::mutex mu;
  std::vector<Event> ring;  // Bounded by `capacity`; append-only until full.
  size_t capacity = 0;
  size_t dropped = 0;
  int64_t origin_ns = 0;

  void Append(const Event& event) {
    std::lock_guard<std::mutex> lock(mu);
    if (ring.size() >= capacity) {
      ++dropped;
      return;
    }
    ring.push_back(event);
  }
};

TraceRecorder::TraceRecorder() : impl_(new Impl) {}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();  // Leaked on purpose.
  return *recorder;
}

void TraceRecorder::Start(size_t capacity) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->ring.clear();
    impl_->ring.reserve(capacity);
    impl_->capacity = capacity;
    impl_->dropped = 0;
    impl_->origin_ns = SteadyNowNs();
  }
  active_.store(true, std::memory_order_relaxed);
  SetEnabled(true);
}

void TraceRecorder::Stop() { active_.store(false, std::memory_order_relaxed); }

int64_t TraceRecorder::NowNs() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return SteadyNowNs() - impl_->origin_ns;
}

void TraceRecorder::Instant(const char* name, const char* category,
                            std::initializer_list<TraceArg> args) {
  Complete(name, category, NowNs(), /*dur_ns=*/0, args);
}

void TraceRecorder::Complete(const char* name, const char* category, int64_t ts_ns,
                             int64_t dur_ns, std::initializer_list<TraceArg> args) {
  if (!active()) {
    return;
  }
  Impl::Event event;
  event.name = name;
  event.category = category;
  event.phase = dur_ns > 0 ? 'X' : 'i';
  event.tid = ThisThreadTraceId();
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns;
  event.nargs = 0;
  for (const TraceArg& arg : args) {
    if (event.nargs >= kMaxArgs) {
      break;
    }
    event.args[event.nargs++] = arg;
  }
  impl_->Append(event);
}

size_t TraceRecorder::size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->ring.size();
}

size_t TraceRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->dropped;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->ring.clear();
  impl_->dropped = 0;
}

Status TraceRecorder::WriteChromeTrace(const std::string& path) const {
  std::ostringstream os;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const Impl::Event& event : impl_->ring) {
      if (!first) {
        os << ",\n";
      }
      first = false;
      os << "{\"name\":";
      AppendJsonString(os, event.name);
      os << ",\"cat\":";
      AppendJsonString(os, event.category);
      os << ",\"ph\":\"" << event.phase << "\"";
      os << ",\"pid\":1,\"tid\":" << event.tid;
      // Chrome traces use microseconds.
      os << ",\"ts\":";
      AppendJsonDouble(os, static_cast<double>(event.ts_ns) / 1e3);
      if (event.phase == 'X') {
        os << ",\"dur\":";
        AppendJsonDouble(os, static_cast<double>(event.dur_ns) / 1e3);
      } else {
        os << ",\"s\":\"t\"";  // Instant scope: thread.
      }
      if (event.nargs > 0) {
        os << ",\"args\":{";
        for (int i = 0; i < event.nargs; ++i) {
          if (i > 0) {
            os << ",";
          }
          AppendJsonString(os, event.args[i].key);
          os << ":";
          AppendJsonDouble(os, event.args[i].value);
        }
        os << "}";
      }
      os << "}";
    }
    os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"dropped_events\":" << impl_->dropped
       << "}}";
  }
  return WriteFile(path, os.str());
}

Status TraceRecorder::WriteRunSummary(const std::string& path,
                                      const MetricsSnapshot& snapshot) const {
  std::ostringstream os;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    os << "{\"kind\":\"meta\",\"trace_events\":" << impl_->ring.size()
       << ",\"dropped_events\":" << impl_->dropped << "}\n";
  }
  for (const auto& c : snapshot.counters) {
    os << "{\"kind\":\"counter\",\"name\":";
    AppendJsonString(os, c.name.c_str());
    os << ",\"value\":" << c.value << "}\n";
  }
  for (const auto& g : snapshot.gauges) {
    os << "{\"kind\":\"gauge\",\"name\":";
    AppendJsonString(os, g.name.c_str());
    os << ",\"value\":";
    AppendJsonDouble(os, g.value);
    os << "}\n";
  }
  for (const auto& h : snapshot.histograms) {
    os << "{\"kind\":\"histogram\",\"name\":";
    AppendJsonString(os, h.name.c_str());
    os << ",\"count\":" << h.hist.total() << ",\"sum\":";
    AppendJsonDouble(os, h.sum);
    os << ",\"max\":";
    AppendJsonDouble(os, h.max);
    os << "}\n";
  }
  return WriteFile(path, os.str());
}

}  // namespace telemetry
}  // namespace bds
