// Simulated-time SLO time-series: a fixed-Δt sampler on the simulator clock
// recording service health (active flows, pending blocks, degradation rung,
// admission accept/defer/reject rates, cycle CPU, completion-time EWMA,
// per-tracked-link utilization) into fixed-width ring series, plus a
// burn-rate detector over the job-completion SLO.
//
// Burn-rate semantics (the standard multi-window form): a completed job is
// "good" when its arrival-to-completion duration is <= slo_minutes. Each
// sample folds the completions since the previous sample into good/bad ring
// series; the burn of a window is (bad fraction over the window) divided by
// the error budget (1 - objective). An alert fires when BOTH the fast and
// the slow window burn above burn_threshold — the fast window gives latency,
// the slow window suppresses one-sample blips — and clears only after
// clear_samples consecutive samples with both burns below burn_threshold *
// clear_factor (hysteresis, so a hovering burn does not flap).
//
// Determinism contract: sampling only observes — the sampler never draws RNG
// or feeds back into decisions, and nothing here enters any Fingerprint().
// CPU-seconds series carry wall-clock-derived values, which is fine for the
// same reason RunReport::telemetry is fingerprint-excluded. Everything else
// (and in particular every alert) is simulation-determined.

#ifndef BDS_SRC_TELEMETRY_TIMESERIES_H_
#define BDS_SRC_TELEMETRY_TIMESERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace bds {
namespace telemetry {

// Fixed-capacity ring of doubles. Push never fails; once full the oldest
// value is overwritten and counted in dropped(). at(0) is the oldest retained
// value; first_index() is its index in the full pushed stream, so a consumer
// can recover absolute sample times from (t0, dt, first_index).
class RingSeries {
 public:
  RingSeries() = default;
  explicit RingSeries(size_t capacity) : capacity_(capacity) { buf_.reserve(capacity); }

  void Push(double v);

  size_t capacity() const { return capacity_; }
  size_t size() const { return buf_.size(); }
  int64_t total_pushed() const { return total_; }
  int64_t dropped() const { return total_ - static_cast<int64_t>(buf_.size()); }
  int64_t first_index() const { return dropped(); }
  double at(size_t i) const;       // i in [0, size()), oldest first.
  double Latest() const;           // 0.0 when empty.
  // Sum of the newest `n` values (n clamped to size()).
  double TailSum(size_t n) const;

 private:
  std::vector<double> buf_;
  size_t capacity_ = 0;
  size_t head_ = 0;  // Slot the NEXT push overwrites once full.
  int64_t total_ = 0;
};

// One burn-rate alert episode.
struct SloAlert {
  SimTime fired_at = 0.0;
  SimTime cleared_at = -1.0;  // -1 = still active when the run ended.
  int64_t fired_sample = 0;   // Sample index (full stream) at fire time.
  double burn_fast = 0.0;     // Fast/slow window burns at fire time.
  double burn_slow = 0.0;

  bool active() const { return cleared_at < 0.0; }
};

struct TimeseriesOptions {
  bool enabled = false;
  SimTime sample_dt = 60.0;  // Simulated seconds between samples.
  size_t capacity = 4096;    // Ring width per series.
  int max_tracked_links = 4; // WAN links tracked for utilization.

  // SLO: completion duration <= slo_minutes is "good"; the service objective
  // is that at least `objective` of completions are good.
  double slo_minutes = 30.0;
  double objective = 0.99;
  SimTime fast_window = 300.0;   // 5 simulated minutes.
  SimTime slow_window = 3600.0;  // 1 simulated hour.
  double burn_threshold = 2.0;
  double clear_factor = 0.5;
  int clear_samples = 3;

  // When non-empty, RunSteadyState writes the bds-slo-v1 JSONL here.
  std::string jsonl_path;
};

Status ValidateTimeseriesOptions(const TimeseriesOptions& options);

// Snapshot of the quantities sampled each Δt; the owner (the controller)
// fills it at cycle boundaries. Counter fields are CUMULATIVE — the sampler
// differences them itself, so per-sample rates stay correct even when one
// cycle spans several Δt boundaries (each boundary then sees a zero delta).
struct SloSampleInput {
  int64_t active_flows = 0;
  int64_t pending_blocks = 0;
  int rung = 0;
  int64_t offered = 0;
  int64_t accepted = 0;
  int64_t rejected = 0;
  int64_t deferred = 0;
  double select_cpu_seconds = 0.0;
  double solve_cpu_seconds = 0.0;
  double merge_cpu_seconds = 0.0;
  std::vector<double> link_utilization;  // One per tracked link, in order.
};

class SloTimeseries {
 public:
  SloTimeseries() : SloTimeseries(TimeseriesOptions{}) {}
  explicit SloTimeseries(const TimeseriesOptions& options);

  bool enabled() const { return options_.enabled; }
  const TimeseriesOptions& options() const { return options_; }

  // Names the tracked links (for series naming / export). Call once, before
  // the first sample; sizes the per-link utilization series.
  void SetTrackedLinks(const std::vector<LinkId>& links);
  const std::vector<LinkId>& tracked_links() const { return tracked_links_; }

  // Folds one completed job into the SLO counts and the completion EWMA.
  void ObserveCompletion(SimTime now, double duration_seconds);

  // Emits one sample per Δt boundary in (last sampled, now], all carrying the
  // current values of `in` (piecewise-constant between cycle boundaries).
  void SampleUpTo(SimTime now, const SloSampleInput& in);

  int64_t samples() const { return samples_; }
  double completion_ewma_seconds() const { return completion_ewma_; }
  double burn_fast() const { return burn_fast_; }  // As of the last sample.
  double burn_slow() const { return burn_slow_; }
  const std::vector<SloAlert>& alerts() const { return alerts_; }
  int64_t alerts_fired() const { return static_cast<int64_t>(alerts_.size()); }

  // Named series access (nullptr when the name is unknown). Names:
  // active_flows, pending_blocks, rung, offered, accepted, rejected,
  // deferred, select_cpu, solve_cpu, merge_cpu, completion_ewma_s, slo_good,
  // slo_bad, burn_fast, burn_slow, link_util_<id>.
  const RingSeries* series(const std::string& name) const;
  const std::vector<std::pair<std::string, RingSeries>>& all_series() const {
    return series_;
  }

  // JSONL: one bds-slo-v1 meta line, one line per series, one per alert.
  Status WriteJsonl(const std::string& path) const;

 private:
  void Fold(size_t index, double v) { series_[index].second.Push(v); }

  TimeseriesOptions options_;
  std::vector<LinkId> tracked_links_;
  std::vector<std::pair<std::string, RingSeries>> series_;
  size_t first_link_series_ = 0;  // Index of the first link_util_* series.

  SimTime next_sample_time_ = 0.0;
  int64_t samples_ = 0;

  // Completions folded since the last sample.
  int64_t good_since_sample_ = 0;
  int64_t bad_since_sample_ = 0;
  double completion_ewma_ = 0.0;
  bool ewma_seeded_ = false;

  // Previous cumulative counter values (for per-sample deltas).
  SloSampleInput prev_;

  // Burn-rate detector state.
  size_t fast_samples_ = 1;
  size_t slow_samples_ = 1;
  double burn_fast_ = 0.0;
  double burn_slow_ = 0.0;
  int calm_streak_ = 0;
  std::vector<SloAlert> alerts_;
  bool alert_active_ = false;
};

}  // namespace telemetry
}  // namespace bds

#endif  // BDS_SRC_TELEMETRY_TIMESERIES_H_
