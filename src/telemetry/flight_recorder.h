// Per-transfer flight recorder: a bounded lifecycle journal for every job the
// controller touches — arrival, admission verdict (with the reject/defer
// reason), per-cycle schedule events (endpoints, rate, degradation rung),
// sampled flow-rate changepoints, fault hits, cancellations, completion and
// retirement — exported as JSONL for tools/bds_explain.py.
//
// Retention is reservoir-style and deterministic: the journal table is capped
// at max_transfers, and when it is full the *fastest-completing uninteresting*
// journal is evicted first, so what survives a long soak is exactly what an
// operator asks about — the slowest (p99) transfers, rejected jobs, and
// transfers that a fault touched. Per-journal events are capped too; drops
// are counted, never silent.
//
// Determinism contract (same as trace.h): the recorder only observes. Event
// payloads are simulation-determined values; recording never draws RNG or
// changes control flow, and nothing here enters RunReport::Fingerprint().
// When inactive every call site costs one relaxed atomic load and a branch.

#ifndef BDS_SRC_TELEMETRY_FLIGHT_RECORDER_H_
#define BDS_SRC_TELEMETRY_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace bds {
namespace telemetry {

enum class FlightEventKind {
  kArrival,
  kAdmission,
  kSchedule,
  kRateChange,
  kFaultHit,
  kCancel,
  kCompletion,
  kRetire,
};

const char* FlightEventKindName(FlightEventKind kind);

// One journal entry. `detail` / `detail2` must be string literals (stored by
// pointer, like TraceArg keys); the numeric payload is interpreted per kind —
// see FlightRecorder::WriteJsonl for the field names each kind exports.
struct FlightEvent {
  FlightEventKind kind = FlightEventKind::kArrival;
  SimTime time = 0.0;
  int64_t cycle = -1;        // Controller cycle; -1 when not cycle-scoped.
  const char* detail = "";   // Verdict / rung name / fault kind / reason.
  const char* detail2 = "";  // Admission reason.
  double v0 = 0.0;
  double v1 = 0.0;
  double v2 = 0.0;
  double v3 = 0.0;
};

struct FlightJournal {
  JobId job = kInvalidJob;
  bool rejected = false;       // Admission refused the job.
  bool fault_touched = false;  // A link/server fault or corruption hit it.
  bool completed = false;
  double duration_seconds = 0.0;  // Arrival to completion; valid iff completed.
  int64_t dropped_events = 0;     // Events lost to the per-journal cap.
  std::vector<FlightEvent> events;

  bool interesting() const { return rejected || fault_touched; }
};

struct FlightRecorderOptions {
  size_t max_transfers = 1024;          // Journal-table cap.
  size_t max_events_per_transfer = 128; // Per-journal event cap.
  // Global budget for rate-changepoint events (they are the only event class
  // driven from the simulator hot path). This is the recorder's hot-path CPU
  // ceiling: every attempt — recorded, journal-cap-dropped, or unmatched —
  // consumes budget, and once it is spent WantsRateEvents() goes false and
  // the simulator's rate observer uninstalls itself, so the remainder of the
  // run pays nothing. 16Ki locked appends is ~3 ms; the telemetry_overhead
  // bench gate (<= 1.03x) is what sizes this default.
  int64_t max_rate_events = 16384;
  // The simulator only reports a changepoint when the new rate differs from
  // the flow's last *reported* rate by more than this fraction of the larger
  // of the two; 0-to-nonzero transitions always report, and slow drift
  // reports once it accumulates past the band. Must be in (0, 1).
  double min_relative_rate_change = 0.25;
};

class FlightRecorder {
 public:
  static FlightRecorder& Global();

  // Starts recording into a fresh journal table. Does NOT flip the metrics
  // registry: the recorder is an independent subsystem.
  void Start(const FlightRecorderOptions& options = {});
  void Stop();  // Journals stay buffered for export.
  bool active() const { return active_.load(std::memory_order_relaxed); }
  const FlightRecorderOptions& options() const { return options_; }

  // True while recording with rate-changepoint budget remaining. Rate
  // observers check this before any per-changepoint work (tag filtering, the
  // transfer-map lookup), so once the budget is spent a changepoint costs
  // one relaxed load — the budget would otherwise only short-circuit inside
  // RateChange, after the lookup.
  bool WantsRateEvents() const {
    return active() && rate_budget_.load(std::memory_order_relaxed) > 0;
  }

  // --- Lifecycle events. Callers must check active() first (the inline
  // wrappers below do); every method re-checks, so a race with Stop() is
  // merely a late event, never a crash. ---
  void Arrival(JobId job, SimTime t, int source_dc, int num_dests, int64_t num_blocks,
               double bytes);
  void AdmissionVerdict(JobId job, SimTime t, const char* verdict, const char* reason,
                        int64_t backlog_deliveries);
  void Schedule(JobId job, SimTime t, int64_t cycle, const char* rung, ServerId src,
                ServerId dst, double rate, int64_t num_blocks);
  void RateChange(JobId job, SimTime t, double old_rate, double new_rate);
  void FaultHit(JobId job, SimTime t, const char* fault_kind, int64_t subject);
  void Cancel(JobId job, SimTime t, const char* reason, int64_t credited_blocks);
  void Completion(JobId job, SimTime t, double duration_seconds);
  void Retire(JobId job, SimTime t);

  // --- Introspection / export. ---
  size_t num_transfers() const;
  int64_t num_events() const;
  int64_t dropped_events() const;      // Per-journal cap hits.
  int64_t dropped_transfers() const;   // New journals refused (table full of live work).
  int64_t evicted_transfers() const;   // Journals evicted to make room.
  int64_t rate_events_dropped() const; // Changepoints past the global budget.
  // Journals sorted by job id (a copy; safe to use after Stop()).
  std::vector<FlightJournal> Journals() const;
  // JSONL: one bds-flight-v1 meta line, then one line per journal (sorted by
  // job id) with the nested event list.
  Status WriteJsonl(const std::string& path) const;

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

 private:
  FlightRecorder();
  ~FlightRecorder() = delete;  // Global() object is never destroyed.

  struct Impl;

  std::atomic<bool> active_{false};
  std::atomic<int64_t> rate_budget_{0};
  std::atomic<int64_t> rate_dropped_{0};
  FlightRecorderOptions options_;
  Impl* impl_;
};

}  // namespace telemetry
}  // namespace bds

#endif  // BDS_SRC_TELEMETRY_FLIGHT_RECORDER_H_
