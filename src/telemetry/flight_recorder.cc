#include "src/telemetry/flight_recorder.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <set>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace bds {
namespace telemetry {

namespace {

void AppendJsonString(std::ostringstream& os, const char* s) {
  os << '"';
  for (; *s != '\0'; ++s) {
    switch (*s) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << *s;
    }
  }
  os << '"';
}

void AppendJsonDouble(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return UnavailableError("cannot open for writing: " + path);
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int close_err = std::fclose(f);
  if (written != contents.size() || close_err != 0) {
    return UnavailableError("short write: " + path);
  }
  return Status::Ok();
}

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kArrival:
      return "arrival";
    case FlightEventKind::kAdmission:
      return "admission";
    case FlightEventKind::kSchedule:
      return "schedule";
    case FlightEventKind::kRateChange:
      return "rate_change";
    case FlightEventKind::kFaultHit:
      return "fault";
    case FlightEventKind::kCancel:
      return "cancel";
    case FlightEventKind::kCompletion:
      return "completion";
    case FlightEventKind::kRetire:
      return "retire";
  }
  return "unknown";
}

struct FlightRecorder::Impl {
  mutable std::mutex mu;
  std::unordered_map<JobId, FlightJournal> journals;
  // Completed, uninteresting journals ordered by (duration, job): begin() is
  // the fastest completion — the first to evict, so the slow tail survives.
  std::set<std::pair<double, JobId>> evictable;
  int64_t events = 0;
  int64_t dropped_events = 0;
  int64_t dropped_transfers = 0;
  int64_t evicted_transfers = 0;

  // Returns the journal for `job`, creating it (evicting if needed) when
  // absent. nullptr when the table is full of un-evictable (live or
  // interesting) journals — the caller counts the drop.
  FlightJournal* FindOrCreate(JobId job, const FlightRecorderOptions& options) {
    auto it = journals.find(job);
    if (it != journals.end()) {
      return &it->second;
    }
    if (journals.size() >= options.max_transfers) {
      // Evict the fastest completed uninteresting journal; skip (and drop)
      // stale entries whose journal became interesting after completion.
      bool evicted = false;
      while (!evictable.empty()) {
        auto e = *evictable.begin();
        evictable.erase(evictable.begin());
        auto jt = journals.find(e.second);
        if (jt == journals.end() || jt->second.interesting()) {
          continue;
        }
        events -= static_cast<int64_t>(jt->second.events.size());
        journals.erase(jt);
        ++evicted_transfers;
        evicted = true;
        break;
      }
      if (!evicted) {
        ++dropped_transfers;
        return nullptr;
      }
    }
    FlightJournal& j = journals[job];
    j.job = job;
    return &j;
  }

  void Append(FlightJournal* j, const FlightEvent& event,
              const FlightRecorderOptions& options) {
    if (j == nullptr) {
      return;
    }
    if (j->events.size() >= options.max_events_per_transfer) {
      ++j->dropped_events;
      ++dropped_events;
      return;
    }
    j->events.push_back(event);
    ++events;
  }

  void MarkInteresting(FlightJournal* j) {
    if (j == nullptr || j->fault_touched) {
      return;
    }
    j->fault_touched = true;
    if (j->completed) {
      evictable.erase({j->duration_seconds, j->job});
    }
  }
};

FlightRecorder::FlightRecorder() : impl_(new Impl) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* recorder = new FlightRecorder();  // Leaked on purpose.
  return *recorder;
}

void FlightRecorder::Start(const FlightRecorderOptions& options) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->journals.clear();
    impl_->evictable.clear();
    impl_->events = 0;
    impl_->dropped_events = 0;
    impl_->dropped_transfers = 0;
    impl_->evicted_transfers = 0;
  }
  options_ = options;
  rate_budget_.store(options.max_rate_events, std::memory_order_relaxed);
  rate_dropped_.store(0, std::memory_order_relaxed);
  active_.store(true, std::memory_order_relaxed);
}

void FlightRecorder::Stop() { active_.store(false, std::memory_order_relaxed); }

void FlightRecorder::Arrival(JobId job, SimTime t, int source_dc, int num_dests,
                             int64_t num_blocks, double bytes) {
  if (!active()) {
    return;
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  FlightEvent e;
  e.kind = FlightEventKind::kArrival;
  e.time = t;
  e.v0 = static_cast<double>(source_dc);
  e.v1 = static_cast<double>(num_dests);
  e.v2 = static_cast<double>(num_blocks);
  e.v3 = bytes;
  impl_->Append(impl_->FindOrCreate(job, options_), e, options_);
}

void FlightRecorder::AdmissionVerdict(JobId job, SimTime t, const char* verdict,
                                      const char* reason, int64_t backlog_deliveries) {
  if (!active()) {
    return;
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  FlightJournal* j = impl_->FindOrCreate(job, options_);
  FlightEvent e;
  e.kind = FlightEventKind::kAdmission;
  e.time = t;
  e.detail = verdict;
  e.detail2 = reason;
  e.v0 = static_cast<double>(backlog_deliveries);
  impl_->Append(j, e, options_);
  if (j != nullptr && std::strcmp(verdict, "reject") == 0) {
    j->rejected = true;
    if (j->completed) {
      impl_->evictable.erase({j->duration_seconds, j->job});
    }
  }
}

void FlightRecorder::Schedule(JobId job, SimTime t, int64_t cycle, const char* rung,
                              ServerId src, ServerId dst, double rate, int64_t num_blocks) {
  if (!active()) {
    return;
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  FlightEvent e;
  e.kind = FlightEventKind::kSchedule;
  e.time = t;
  e.cycle = cycle;
  e.detail = rung;
  e.v0 = static_cast<double>(src);
  e.v1 = static_cast<double>(dst);
  e.v2 = rate;
  e.v3 = static_cast<double>(num_blocks);
  impl_->Append(impl_->FindOrCreate(job, options_), e, options_);
}

void FlightRecorder::RateChange(JobId job, SimTime t, double old_rate, double new_rate) {
  if (!active()) {
    return;
  }
  // Hot-path guard: once the global changepoint budget is spent, the cost per
  // change is two relaxed atomic ops — no lock, no map lookup.
  if (rate_budget_.fetch_sub(1, std::memory_order_relaxed) <= 0) {
    rate_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  // Changepoints never create journals: a flow whose job was not journaled
  // (table full, or a non-controller flow in a bench) is not worth a slot.
  auto it = impl_->journals.find(job);
  if (it == impl_->journals.end()) {
    return;
  }
  FlightEvent e;
  e.kind = FlightEventKind::kRateChange;
  e.time = t;
  e.v0 = old_rate;
  e.v1 = new_rate;
  impl_->Append(&it->second, e, options_);
}

void FlightRecorder::FaultHit(JobId job, SimTime t, const char* fault_kind, int64_t subject) {
  if (!active()) {
    return;
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  FlightJournal* j = impl_->FindOrCreate(job, options_);
  FlightEvent e;
  e.kind = FlightEventKind::kFaultHit;
  e.time = t;
  e.detail = fault_kind;
  e.v0 = static_cast<double>(subject);
  impl_->Append(j, e, options_);
  impl_->MarkInteresting(j);
}

void FlightRecorder::Cancel(JobId job, SimTime t, const char* reason,
                            int64_t credited_blocks) {
  if (!active()) {
    return;
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  FlightEvent e;
  e.kind = FlightEventKind::kCancel;
  e.time = t;
  e.detail = reason;
  e.v0 = static_cast<double>(credited_blocks);
  impl_->Append(impl_->FindOrCreate(job, options_), e, options_);
}

void FlightRecorder::Completion(JobId job, SimTime t, double duration_seconds) {
  if (!active()) {
    return;
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  FlightJournal* j = impl_->FindOrCreate(job, options_);
  FlightEvent e;
  e.kind = FlightEventKind::kCompletion;
  e.time = t;
  e.v0 = duration_seconds;
  impl_->Append(j, e, options_);
  if (j != nullptr && !j->completed) {
    j->completed = true;
    j->duration_seconds = duration_seconds;
    if (!j->interesting()) {
      impl_->evictable.insert({duration_seconds, job});
    }
  }
}

void FlightRecorder::Retire(JobId job, SimTime t) {
  if (!active()) {
    return;
  }
  std::lock_guard<std::mutex> lock(impl_->mu);
  // Retirement never creates a journal; it only annotates an existing one.
  auto it = impl_->journals.find(job);
  if (it == impl_->journals.end()) {
    return;
  }
  FlightEvent e;
  e.kind = FlightEventKind::kRetire;
  e.time = t;
  impl_->Append(&it->second, e, options_);
}

size_t FlightRecorder::num_transfers() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->journals.size();
}

int64_t FlightRecorder::num_events() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->events;
}

int64_t FlightRecorder::dropped_events() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->dropped_events;
}

int64_t FlightRecorder::dropped_transfers() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->dropped_transfers;
}

int64_t FlightRecorder::evicted_transfers() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->evicted_transfers;
}

int64_t FlightRecorder::rate_events_dropped() const {
  return rate_dropped_.load(std::memory_order_relaxed);
}

std::vector<FlightJournal> FlightRecorder::Journals() const {
  std::vector<FlightJournal> out;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    out.reserve(impl_->journals.size());
    for (const auto& [job, j] : impl_->journals) {
      out.push_back(j);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightJournal& a, const FlightJournal& b) { return a.job < b.job; });
  return out;
}

Status FlightRecorder::WriteJsonl(const std::string& path) const {
  std::vector<FlightJournal> journals = Journals();
  std::ostringstream os;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    os << "{\"kind\":\"meta\",\"schema\":\"bds-flight-v1\",\"transfers\":"
       << impl_->journals.size() << ",\"events\":" << impl_->events
       << ",\"dropped_events\":" << impl_->dropped_events
       << ",\"dropped_transfers\":" << impl_->dropped_transfers
       << ",\"evicted_transfers\":" << impl_->evicted_transfers
       << ",\"rate_events_dropped\":" << rate_events_dropped()
       // Once the budget is spent the rate observer uninstalls itself, so
       // later changepoints are not even counted; this flag is the honest
       // "rate coverage is truncated" signal, not rate_events_dropped.
       << ",\"rate_budget_exhausted\":"
       << (rate_budget_.load(std::memory_order_relaxed) <= 0 ? "true" : "false") << "}\n";
  }
  for (const FlightJournal& j : journals) {
    os << "{\"kind\":\"transfer\",\"job\":" << j.job
       << ",\"rejected\":" << (j.rejected ? "true" : "false")
       << ",\"fault_touched\":" << (j.fault_touched ? "true" : "false")
       << ",\"completed\":" << (j.completed ? "true" : "false") << ",\"duration_s\":";
    AppendJsonDouble(os, j.duration_seconds);
    os << ",\"dropped_events\":" << j.dropped_events << ",\"events\":[";
    bool first = true;
    for (const FlightEvent& e : j.events) {
      if (!first) {
        os << ",";
      }
      first = false;
      os << "{\"e\":";
      AppendJsonString(os, FlightEventKindName(e.kind));
      os << ",\"t\":";
      AppendJsonDouble(os, e.time);
      switch (e.kind) {
        case FlightEventKind::kArrival:
          os << ",\"src_dc\":" << static_cast<int64_t>(e.v0)
             << ",\"dests\":" << static_cast<int64_t>(e.v1)
             << ",\"blocks\":" << static_cast<int64_t>(e.v2) << ",\"bytes\":";
          AppendJsonDouble(os, e.v3);
          break;
        case FlightEventKind::kAdmission:
          os << ",\"verdict\":";
          AppendJsonString(os, e.detail);
          os << ",\"reason\":";
          AppendJsonString(os, e.detail2);
          os << ",\"backlog\":" << static_cast<int64_t>(e.v0);
          break;
        case FlightEventKind::kSchedule:
          os << ",\"cycle\":" << e.cycle << ",\"rung\":";
          AppendJsonString(os, e.detail);
          os << ",\"src\":" << static_cast<int64_t>(e.v0)
             << ",\"dst\":" << static_cast<int64_t>(e.v1) << ",\"rate\":";
          AppendJsonDouble(os, e.v2);
          os << ",\"blocks\":" << static_cast<int64_t>(e.v3);
          break;
        case FlightEventKind::kRateChange:
          os << ",\"old_rate\":";
          AppendJsonDouble(os, e.v0);
          os << ",\"new_rate\":";
          AppendJsonDouble(os, e.v1);
          break;
        case FlightEventKind::kFaultHit:
          os << ",\"fault\":";
          AppendJsonString(os, e.detail);
          os << ",\"subject\":" << static_cast<int64_t>(e.v0);
          break;
        case FlightEventKind::kCancel:
          os << ",\"reason\":";
          AppendJsonString(os, e.detail);
          os << ",\"credited\":" << static_cast<int64_t>(e.v0);
          break;
        case FlightEventKind::kCompletion:
          os << ",\"duration_s\":";
          AppendJsonDouble(os, e.v0);
          break;
        case FlightEventKind::kRetire:
          break;
      }
      os << "}";
    }
    os << "]}\n";
  }
  return WriteFile(path, os.str());
}

}  // namespace telemetry
}  // namespace bds
