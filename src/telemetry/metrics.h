// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms with handle-based updates.
//
// Design (see DESIGN.md "Observability"):
//  - Registration resolves a name to a dense integer handle once, under a
//    mutex. Hot-path updates use only the handle — no map lookup, no lock.
//  - Counters and histograms are sharded per thread: each thread owns a
//    fixed-capacity block of atomics that only it writes (relaxed stores);
//    Snapshot() merges all live shards plus the retired totals of exited
//    threads. This makes updates race-free under ParallelRunner without any
//    contended cache line.
//  - Gauges are last-writer-wins and rare, so they live in one central
//    atomic array.
//  - The registry only observes. It never draws RNG values or changes
//    control flow, so enabling it cannot perturb a deterministic run.
//
// Use the BDS_TELEMETRY_* macros in telemetry.h rather than calling the
// registry directly: they cache the handle in a function-local static and
// gate everything behind telemetry::Enabled(), so the disabled cost is one
// relaxed atomic load and a branch.

#ifndef BDS_SRC_TELEMETRY_METRICS_H_
#define BDS_SRC_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/stats.h"

namespace bds {
namespace telemetry {

// Process-wide enable gate. Everything telemetry-related is compiled in but
// branch-gated on this flag; it defaults to off.
bool Enabled();
void SetEnabled(bool enabled);

// Typed handles. A default-constructed handle (id < 0) is a valid no-op
// target, which is also what registration returns when the registry's fixed
// capacity is exhausted.
struct CounterHandle {
  int id = -1;
  bool valid() const { return id >= 0; }
};
struct GaugeHandle {
  int id = -1;
  bool valid() const { return id >= 0; }
};
struct HistogramHandle {
  int id = -1;
  bool valid() const { return id >= 0; }
};

// A point-in-time copy of every registered metric. Plain data: safe to keep,
// diff, and print after the registry has moved on.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    int64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct HistogramEntry {
    std::string name;
    Histogram hist;
    double sum = 0.0;  // Sum of recorded values (pre-clamp), e.g. total ms.
    double max = 0.0;  // Max recorded value (pre-clamp). Not diffable.
  };

  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;

  // This snapshot minus an earlier one: counters and histogram bin counts
  // subtract by name; gauges and histogram `max` keep their current values
  // (a gauge is a level, not a flow, and a max cannot be un-merged).
  // Metrics registered after `earlier` was taken pass through unchanged.
  MetricsSnapshot DiffSince(const MetricsSnapshot& earlier) const;

  const CounterEntry* FindCounter(std::string_view name) const;
  const GaugeEntry* FindGauge(std::string_view name) const;
  const HistogramEntry* FindHistogram(std::string_view name) const;
  int64_t CounterValue(std::string_view name) const;  // 0 when absent.

  bool empty() const { return counters.empty() && gauges.empty() && histograms.empty(); }

  std::string ToString() const;  // Human-readable table.
  std::string ToJson() const;    // One JSON object, stable key order.
};

class MetricsRegistry {
 public:
  // Fixed shard capacities. Registration past these limits returns an
  // invalid (no-op) handle; update sites keep working, the metric is just
  // not recorded. Sized with ~4x headroom over current usage.
  static constexpr int kMaxCounters = 256;
  static constexpr int kMaxGauges = 64;
  static constexpr int kMaxHistograms = 96;
  static constexpr int kMaxBins = 128;

  static MetricsRegistry& Global();

  // Idempotent by name: re-registering returns the original handle (for
  // histograms, the original bucket layout wins). Thread-safe.
  CounterHandle RegisterCounter(std::string_view name);
  GaugeHandle RegisterGauge(std::string_view name);
  HistogramHandle RegisterHistogram(std::string_view name, double lo, double hi, int bins);
  // A latency histogram in milliseconds with the standard timer layout
  // ([0, 1000) ms, 100 bins); BDS_TIMED_SCOPE feeds one of these.
  HistogramHandle RegisterTimer(std::string_view name);

  // Hot-path updates. Invalid handles are ignored. Thread-safe: each thread
  // writes its own shard.
  void CounterAdd(CounterHandle h, int64_t delta);
  void GaugeSet(GaugeHandle h, double value);
  void HistogramRecord(HistogramHandle h, double value);
  // Folds a locally-accumulated histogram into the thread's shard in one
  // call: bin_counts[0..num_bins) are per-bin increments (bins past the
  // histogram's layout are ignored), count/sum/max_seen update the summary
  // fields. This is the histogram analogue of the accumulate-then-publish
  // counter pattern (telemetry.h): a hot loop records into a plain local
  // array — the caller computes bins with the same clamp as HistogramRecord
  // — and publishes once per drive call instead of paying the shard walk
  // per sample.
  void HistogramRecordBulk(HistogramHandle h, const int64_t* bin_counts, int num_bins,
                           int64_t count, double sum, double max_seen);

  // Merges every live shard and all retired-thread totals into a snapshot.
  // Safe to call concurrently with updates (relaxed reads: the snapshot is a
  // consistent-enough point-in-time view once writer threads are quiescent,
  // which is when callers take snapshots).
  MetricsSnapshot Snapshot() const;

  // Zeroes all counter/histogram shards and gauges. Registered names and
  // handles survive — only values reset. Callers must ensure no concurrent
  // updates (tests and run setup only).
  void Reset();

  // Number of threads whose shards have been folded into retired totals.
  int64_t retired_threads() const;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Implementation detail, public only so the per-thread shard owner in the
  // .cc can name them.
  struct Shard;
  struct Impl;

 private:
  MetricsRegistry();
  ~MetricsRegistry() = delete;  // Global() object is never destroyed.

  Shard* ShardForThisThread();

  Impl* impl_;
};

}  // namespace telemetry
}  // namespace bds

#endif  // BDS_SRC_TELEMETRY_METRICS_H_
