// In-memory trace recorder: structured events in a bounded ring buffer,
// exported as Chrome `trace_event` JSON (load into chrome://tracing or
// https://ui.perfetto.dev) plus a JSONL run summary.
//
// Events are cheap (a lock-free slot claim + a few stores; no mutex on the
// append path) but not free, so instrumentation emits them at decision
// granularity — one per cycle, per solver call, per fault — never per
// hot-loop iteration. When the ring fills, new events are dropped and
// counted; exports carry the drop count so a truncated trace is never
// mistaken for a complete one.
//
// Determinism contract: the recorder only observes. Timestamps come from a
// steady clock and go only into trace output, never into simulation state or
// RunReport::Fingerprint().

#ifndef BDS_SRC_TELEMETRY_TRACE_H_
#define BDS_SRC_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "src/common/status.h"
#include "src/telemetry/metrics.h"

namespace bds {
namespace telemetry {

// One named numeric argument on a trace event. The key must be a string
// literal (or otherwise outlive the recorder): events store the pointer.
struct TraceArg {
  const char* key;
  double value;
};

class TraceRecorder {
 public:
  // 16Ki events (~1.3 MB). Sized by the telemetry_overhead gate: the ring is
  // streamed cold during a drain, so its footprint is cache it steals from
  // the simulator — at decision granularity 16Ki slots still cover thousands
  // of cycles before the drop counter starts, and a run that needs more can
  // pass an explicit capacity to Start().
  static constexpr size_t kDefaultCapacity = size_t{1} << 14;
  static constexpr int kMaxArgs = 4;

  static TraceRecorder& Global();

  // Starts recording into a fresh ring of `capacity` events and resets the
  // clock origin. Also flips telemetry::SetEnabled(true) so BDS_TRACE_*
  // call sites light up.
  void Start(size_t capacity = kDefaultCapacity);
  // Stops recording (events stay buffered for export). Leaves the metrics
  // registry enabled-state untouched.
  void Stop();
  bool active() const { return active_.load(std::memory_order_relaxed); }

  // Nanoseconds since Start() on a steady clock.
  int64_t NowNs() const;

  // A zero-duration instant event ("i" phase).
  void Instant(const char* name, const char* category,
               std::initializer_list<TraceArg> args = {});
  // A complete span ("X" phase): [ts_ns, ts_ns + dur_ns).
  void Complete(const char* name, const char* category, int64_t ts_ns, int64_t dur_ns,
                std::initializer_list<TraceArg> args = {});

  size_t size() const;     // Events currently buffered.
  size_t dropped() const;  // Events rejected since Start() because the ring was full.
  void Clear();            // Drops buffered events, keeps recording state.

  // Chrome trace_event JSON: {"traceEvents": [...], "displayTimeUnit": "ms",
  // "otherData": {"dropped_events": N}}. Timestamps in microseconds.
  Status WriteChromeTrace(const std::string& path) const;
  // JSONL run summary: one meta line, then one line per counter, gauge, and
  // histogram in `snapshot`.
  Status WriteRunSummary(const std::string& path, const MetricsSnapshot& snapshot) const;

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

 private:
  TraceRecorder();
  ~TraceRecorder() = delete;  // Global() object is never destroyed.

  struct Impl;

  std::atomic<bool> active_{false};
  Impl* impl_;
};

// Emits an instant event iff the recorder is active. Usable from any thread.
inline void TraceInstant(const char* name, const char* category,
                         std::initializer_list<TraceArg> args = {}) {
  TraceRecorder& recorder = TraceRecorder::Global();
  if (recorder.active()) {
    recorder.Instant(name, category, args);
  }
}

}  // namespace telemetry
}  // namespace bds

#endif  // BDS_SRC_TELEMETRY_TRACE_H_
