#include "src/telemetry/timeseries.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace bds {
namespace telemetry {

namespace {

constexpr double kEwmaAlpha = 0.2;

void AppendJsonDouble(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return UnavailableError("cannot open for writing: " + path);
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  int close_err = std::fclose(f);
  if (written != contents.size() || close_err != 0) {
    return UnavailableError("short write: " + path);
  }
  return Status::Ok();
}

// Fixed series layout; link_util_* series follow these.
enum SeriesIndex {
  kActiveFlows = 0,
  kPendingBlocks,
  kRung,
  kOffered,
  kAccepted,
  kRejected,
  kDeferred,
  kSelectCpu,
  kSolveCpu,
  kMergeCpu,
  kCompletionEwma,
  kSloGood,
  kSloBad,
  kBurnFast,
  kBurnSlow,
  kNumFixedSeries,
};

const char* kFixedSeriesNames[kNumFixedSeries] = {
    "active_flows", "pending_blocks", "rung",      "offered",          "accepted",
    "rejected",     "deferred",       "select_cpu", "solve_cpu",       "merge_cpu",
    "completion_ewma_s", "slo_good",  "slo_bad",   "burn_fast",        "burn_slow",
};

}  // namespace

void RingSeries::Push(double v) {
  ++total_;
  if (buf_.size() < capacity_) {
    buf_.push_back(v);
    return;
  }
  if (capacity_ == 0) {
    return;  // Degenerate ring: everything pushed is dropped.
  }
  buf_[head_] = v;
  head_ = (head_ + 1) % capacity_;
}

double RingSeries::at(size_t i) const {
  // Until the ring wraps head_ is 0 and at(i) == buf_[i]; afterwards head_
  // points at the oldest retained value.
  return buf_[(head_ + i) % buf_.size()];
}

double RingSeries::Latest() const {
  if (buf_.empty()) {
    return 0.0;
  }
  return at(buf_.size() - 1);
}

double RingSeries::TailSum(size_t n) const {
  n = std::min(n, buf_.size());
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    sum += at(buf_.size() - 1 - i);
  }
  return sum;
}

Status ValidateTimeseriesOptions(const TimeseriesOptions& options) {
  if (!options.enabled) {
    return Status::Ok();
  }
  if (options.sample_dt <= 0.0) {
    return InvalidArgumentError("timeseries: sample_dt must be positive");
  }
  if (options.capacity == 0) {
    return InvalidArgumentError("timeseries: capacity must be positive");
  }
  if (options.slo_minutes <= 0.0) {
    return InvalidArgumentError("timeseries: slo_minutes must be positive");
  }
  if (options.objective <= 0.0 || options.objective >= 1.0) {
    return InvalidArgumentError("timeseries: objective must be in (0, 1)");
  }
  if (options.fast_window <= 0.0 || options.slow_window < options.fast_window) {
    return InvalidArgumentError("timeseries: need 0 < fast_window <= slow_window");
  }
  if (options.slow_window / options.sample_dt >
      static_cast<double>(options.capacity)) {
    return InvalidArgumentError("timeseries: slow_window exceeds ring capacity");
  }
  if (options.burn_threshold <= 0.0 || options.clear_factor <= 0.0 ||
      options.clear_factor > 1.0 || options.clear_samples < 1) {
    return InvalidArgumentError("timeseries: bad alert thresholds");
  }
  return Status::Ok();
}

SloTimeseries::SloTimeseries(const TimeseriesOptions& options) : options_(options) {
  series_.reserve(kNumFixedSeries);
  for (int i = 0; i < kNumFixedSeries; ++i) {
    series_.emplace_back(kFixedSeriesNames[i], RingSeries(options_.capacity));
  }
  first_link_series_ = series_.size();
  next_sample_time_ = options_.sample_dt;
  fast_samples_ = static_cast<size_t>(
      std::max(1.0, std::round(options_.fast_window / options_.sample_dt)));
  slow_samples_ = static_cast<size_t>(
      std::max(1.0, std::round(options_.slow_window / options_.sample_dt)));
}

void SloTimeseries::SetTrackedLinks(const std::vector<LinkId>& links) {
  series_.resize(first_link_series_);
  tracked_links_.clear();
  for (LinkId l : links) {
    if (static_cast<int>(tracked_links_.size()) >= options_.max_tracked_links) {
      break;
    }
    tracked_links_.push_back(l);
    series_.emplace_back("link_util_" + std::to_string(l), RingSeries(options_.capacity));
  }
}

void SloTimeseries::ObserveCompletion(SimTime now, double duration_seconds) {
  (void)now;
  if (duration_seconds <= options_.slo_minutes * 60.0) {
    ++good_since_sample_;
  } else {
    ++bad_since_sample_;
  }
  if (!ewma_seeded_) {
    completion_ewma_ = duration_seconds;
    ewma_seeded_ = true;
  } else {
    completion_ewma_ += kEwmaAlpha * (duration_seconds - completion_ewma_);
  }
}

void SloTimeseries::SampleUpTo(SimTime now, const SloSampleInput& in) {
  if (!options_.enabled) {
    return;
  }
  while (next_sample_time_ <= now + kFluidEpsilon) {
    const SimTime t = next_sample_time_;
    next_sample_time_ += options_.sample_dt;

    Fold(kActiveFlows, static_cast<double>(in.active_flows));
    Fold(kPendingBlocks, static_cast<double>(in.pending_blocks));
    Fold(kRung, static_cast<double>(in.rung));
    // Counter deltas: with several boundaries inside one cycle, the first
    // boundary takes the whole delta and the rest see zero.
    Fold(kOffered, static_cast<double>(in.offered - prev_.offered));
    Fold(kAccepted, static_cast<double>(in.accepted - prev_.accepted));
    Fold(kRejected, static_cast<double>(in.rejected - prev_.rejected));
    Fold(kDeferred, static_cast<double>(in.deferred - prev_.deferred));
    Fold(kSelectCpu, in.select_cpu_seconds - prev_.select_cpu_seconds);
    Fold(kSolveCpu, in.solve_cpu_seconds - prev_.solve_cpu_seconds);
    Fold(kMergeCpu, in.merge_cpu_seconds - prev_.merge_cpu_seconds);
    Fold(kCompletionEwma, completion_ewma_);
    Fold(kSloGood, static_cast<double>(good_since_sample_));
    Fold(kSloBad, static_cast<double>(bad_since_sample_));
    prev_ = in;
    prev_.link_utilization.clear();  // Utilization is a gauge, not a counter.
    good_since_sample_ = 0;
    bad_since_sample_ = 0;
    for (size_t i = 0; i < tracked_links_.size(); ++i) {
      Fold(first_link_series_ + i,
           i < in.link_utilization.size() ? in.link_utilization[i] : 0.0);
    }

    // Burn rates over the fast and slow windows. No completions in a window
    // means no evidence of burn (0), not division by zero.
    const double budget = 1.0 - options_.objective;
    auto window_burn = [&](size_t n) {
      const double good = series_[kSloGood].second.TailSum(n);
      const double bad = series_[kSloBad].second.TailSum(n);
      const double total = good + bad;
      if (total <= 0.0) {
        return 0.0;
      }
      return (bad / total) / budget;
    };
    burn_fast_ = window_burn(fast_samples_);
    burn_slow_ = window_burn(slow_samples_);
    Fold(kBurnFast, burn_fast_);
    Fold(kBurnSlow, burn_slow_);

    if (!alert_active_) {
      if (burn_fast_ > options_.burn_threshold && burn_slow_ > options_.burn_threshold) {
        SloAlert a;
        a.fired_at = t;
        a.fired_sample = samples_;
        a.burn_fast = burn_fast_;
        a.burn_slow = burn_slow_;
        alerts_.push_back(a);
        alert_active_ = true;
        calm_streak_ = 0;
      }
    } else {
      const double clear_level = options_.burn_threshold * options_.clear_factor;
      if (burn_fast_ < clear_level && burn_slow_ < clear_level) {
        if (++calm_streak_ >= options_.clear_samples) {
          alerts_.back().cleared_at = t;
          alert_active_ = false;
          calm_streak_ = 0;
        }
      } else {
        calm_streak_ = 0;
      }
    }
    ++samples_;
  }
}

const RingSeries* SloTimeseries::series(const std::string& name) const {
  for (const auto& [n, s] : series_) {
    if (n == name) {
      return &s;
    }
  }
  return nullptr;
}

Status SloTimeseries::WriteJsonl(const std::string& path) const {
  std::ostringstream os;
  os << "{\"kind\":\"meta\",\"schema\":\"bds-slo-v1\",\"dt\":";
  AppendJsonDouble(os, options_.sample_dt);
  os << ",\"samples\":" << samples_ << ",\"capacity\":" << options_.capacity
     << ",\"slo_minutes\":";
  AppendJsonDouble(os, options_.slo_minutes);
  os << ",\"objective\":";
  AppendJsonDouble(os, options_.objective);
  os << ",\"burn_threshold\":";
  AppendJsonDouble(os, options_.burn_threshold);
  os << ",\"fast_window\":";
  AppendJsonDouble(os, options_.fast_window);
  os << ",\"slow_window\":";
  AppendJsonDouble(os, options_.slow_window);
  os << ",\"alerts\":" << alerts_.size() << "}\n";
  for (const auto& [name, s] : series_) {
    os << "{\"kind\":\"series\",\"name\":\"" << name
       << "\",\"first_index\":" << s.first_index() << ",\"dropped\":" << s.dropped()
       << ",\"values\":[";
    for (size_t i = 0; i < s.size(); ++i) {
      if (i > 0) {
        os << ",";
      }
      AppendJsonDouble(os, s.at(i));
    }
    os << "]}\n";
  }
  for (const SloAlert& a : alerts_) {
    os << "{\"kind\":\"alert\",\"fired_at\":";
    AppendJsonDouble(os, a.fired_at);
    os << ",\"cleared_at\":";
    AppendJsonDouble(os, a.cleared_at);
    os << ",\"fired_sample\":" << a.fired_sample << ",\"burn_fast\":";
    AppendJsonDouble(os, a.burn_fast);
    os << ",\"burn_slow\":";
    AppendJsonDouble(os, a.burn_slow);
    os << "}\n";
  }
  return WriteFile(path, os.str());
}

}  // namespace telemetry
}  // namespace bds
