// Declarative chaos schedules: one seed → one reproducible combination of
// link, control-plane, and data-plane faults drawn over a fixed horizon.
//
// The generator only installs *recoverable* faults — every link fault window
// closes before the horizon ends and every probabilistic fault is bounded by
// the injector's escalation rules — so a chaos run must still complete; the
// soak test asserts exactly that across many seeds.

#ifndef BDS_SRC_FAULT_CHAOS_H_
#define BDS_SRC_FAULT_CHAOS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/fault/fault_injector.h"
#include "src/topology/topology.h"

namespace bds {

struct ChaosOptions {
  // Faults are drawn with start times in [0, horizon); every window closes
  // by `horizon` so the run can recover and finish.
  SimTime horizon = 60.0;
  // How many faults of each kind to draw (counts are drawn in [0, max]).
  int max_link_downs = 2;
  int max_link_degradations = 2;
  int max_link_flaps = 1;
  // Upper bounds for the probabilistic faults (actual values drawn per seed).
  double report_loss_prob_max = 0.5;
  double push_drop_prob_max = 0.5;
  double corruption_prob_max = 0.05;
  // Also draw one full controller outage window (agents fall back, §5.3).
  bool include_controller_outage = true;
  // Individual controller-replica fail/recover windows (0 disables, keeping
  // the RNG draw sequence of older plans unchanged). Each event fails one
  // replica in [0, controller_replicas) and recovers it before the horizon;
  // the replica set handles failover, so these exercise master elections —
  // and a headless window if every replica happens to be down at once.
  int max_replica_failures = 0;
  int controller_replicas = 3;
};

// What a seed drew. `controller_outages` must be applied by the caller (the
// injector has no controller handle); everything else is already installed.
struct ChaosPlan {
  std::vector<std::pair<SimTime, SimTime>> controller_outages;
  // Per-replica fail/recover events; applied by the caller via
  // BdsController::ScheduleReplicaFailure/Recovery (like the outages, the
  // injector has no controller handle).
  struct ReplicaFailureEvent {
    int replica = 0;
    SimTime fail_at = 0.0;
    SimTime recover_at = 0.0;
  };
  std::vector<ReplicaFailureEvent> replica_failures;
  ControlPlaneFaultOptions control_plane;
  DataPlaneFaultOptions data_plane;
  int link_downs = 0;
  int link_degradations = 0;
  int link_flaps = 0;
  std::string description;  // One line, for bench tables and test logs.
};

// Draws a deterministic chaos combination from `seed` and installs the link
// and probabilistic faults on `injector`. Only WAN links are faulted (NIC
// faults are the existing server-failure script's job).
StatusOr<ChaosPlan> InstallRandomChaos(const Topology& topo, uint64_t seed,
                                       const ChaosOptions& options, FaultInjector* injector);

}  // namespace bds

#endif  // BDS_SRC_FAULT_CHAOS_H_
