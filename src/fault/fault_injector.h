// Seeded, deterministic fault injection for the whole BDS stack (§5.3).
//
// The injector owns three orthogonal fault surfaces:
//
//  * Link faults — a validated timeline of per-link capacity factors: hard
//    down (factor 0), degradation (0 < factor < 1), and flapping (a periodic
//    down/up square wave expanded into plain events at schedule time). The
//    controller drains due events every cycle, applies them to the
//    simulator, and kills transfers crossing dead links.
//  * Control-plane faults — per-agent-DC status reports that are lost (the
//    controller then schedules against a stale replica view until the next
//    report lands) and per-agent decision pushes that are dropped (the agent
//    retries next cycle; after `push_retry_cycles` consecutive losses it
//    escalates out-of-band and the push is forced through, §5.3).
//  * Data-plane corruption — a per-block probability that a delivered block
//    fails checksum verification and is not credited, re-entering
//    rarest-first scheduling.
//
// Every probabilistic draw comes from one seeded Rng and is skipped entirely
// when its probability is zero, so a fault-free injector leaves the host
// system's random streams untouched: seed → byte-identical run, with or
// without faults enabled.

#ifndef BDS_SRC_FAULT_FAULT_INJECTOR_H_
#define BDS_SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/topology/topology.h"

namespace bds {

// One point on a link's capacity timeline: at time `at`, the link's usable
// capacity becomes `factor` times its nominal capacity. Later events on the
// same link override earlier ones.
struct LinkFaultEvent {
  SimTime at = 0.0;
  LinkId link = kInvalidLink;
  double factor = 1.0;  // 0 = hard down, 1 = healthy.
};

struct ControlPlaneFaultOptions {
  // Probability (per agent DC, per cycle) that the DC's status report is
  // lost; the controller keeps scheduling against its last known view.
  double report_loss_prob = 0.0;
  // After this many consecutive lost reports an agent reconciles
  // out-of-band (TCP retransmit / next ZooKeeper session), so staleness is
  // bounded even at loss probability 1.
  int report_timeout_cycles = 5;
  // Probability (per destination agent, per cycle) that the decision push
  // to that agent is dropped; its transfers simply do not start this cycle
  // and the blocks are rescheduled.
  double push_drop_prob = 0.0;
  // Consecutive dropped pushes before the agent escalates (§5.3) and the
  // decision is forced through out-of-band.
  int push_retry_cycles = 3;
};

struct DataPlaneFaultOptions {
  // Probability that a delivered block fails checksum verification at the
  // destination and is not credited.
  double corruption_prob = 0.0;
};

// Counters across all fault surfaces; folded into RunReport.
struct FaultStats {
  int64_t link_events = 0;       // Link fault events applied.
  int64_t flows_killed = 0;      // Transfers killed by a hard link-down.
  int64_t reports_lost = 0;      // Agent status reports dropped.
  int64_t reports_forced = 0;    // Reports forced through after timeout.
  int64_t pushes_dropped = 0;    // Decision pushes dropped.
  int64_t pushes_escalated = 0;  // Pushes forced through after retries.
  int64_t blocks_corrupted = 0;  // Blocks failing checksum verification.
};

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 1) : rng_(seed) {}

  // --- Schedule construction (validated; call before Run). ---

  // Link is unusable during [from, to); capacity restores at `to`.
  Status AddLinkDown(const Topology& topo, LinkId link, SimTime from, SimTime to);

  // Link runs at `factor` (in (0, 1)) of nominal capacity during [from, to).
  Status AddLinkDegradation(const Topology& topo, LinkId link, SimTime from, SimTime to,
                            double factor);

  // Link flaps during [from, to): down for `duty` of every `period` seconds,
  // up for the rest; fully restored at `to`.
  Status AddLinkFlapping(const Topology& topo, LinkId link, SimTime from, SimTime to,
                         SimTime period, double duty = 0.5);

  Status SetControlPlaneFaults(const ControlPlaneFaultOptions& options);
  Status SetDataPlaneFaults(const DataPlaneFaultOptions& options);

  const ControlPlaneFaultOptions& control_plane() const { return control_; }
  const DataPlaneFaultOptions& data_plane() const { return data_; }

  // True when stale/lossy status reports are enabled — the controller then
  // maintains a separate view ReplicaState.
  bool stale_reports_enabled() const { return control_.report_loss_prob > 0.0; }

  // --- Runtime (driven by the controller each cycle). ---

  // Pops every event with at <= now, in (time, insertion) order.
  std::vector<LinkFaultEvent> TakeLinkEventsUpTo(SimTime now);

  // Draws whether the status report from `dc` is lost this cycle, honouring
  // the report timeout; never consumes randomness when the probability is 0.
  bool DrawReportLost(DcId dc);

  // Draws whether the decision push to agent `server` is dropped this
  // cycle, honouring the retry-escalation bound.
  bool DrawPushDropped(ServerId server);

  // Resets the consecutive-drop counter for `server` (its push succeeded).
  void NotePushDelivered(ServerId server);

  // Draws whether one delivered block is corrupted.
  bool DrawBlockCorrupted();

  const FaultStats& stats() const { return stats_; }
  FaultStats& mutable_stats() { return stats_; }

  // Scheduled events not yet consumed — a wedge detector must not stop a
  // run that a pending link recovery could still unwedge.
  size_t remaining_link_events() const { return timeline_.size() - next_event_; }

  // Whether probabilistic control-plane faults are on; they can mask
  // progress for a few cycles, so wedge detection defers to the deadline.
  bool control_plane_active() const {
    return control_.report_loss_prob > 0.0 || control_.push_drop_prob > 0.0;
  }

 private:
  Status ValidateLink(const Topology& topo, LinkId link, SimTime from, SimTime to) const;
  void PushEvent(SimTime at, LinkId link, double factor);

  Rng rng_;
  ControlPlaneFaultOptions control_;
  DataPlaneFaultOptions data_;
  FaultStats stats_;

  struct OrderedEvent {
    LinkFaultEvent event;
    int64_t seq = 0;  // Tie-break so equal-time events apply in schedule order.
  };
  std::vector<OrderedEvent> timeline_;
  int64_t next_seq_ = 0;
  size_t next_event_ = 0;
  bool sorted_ = true;

  std::unordered_map<DcId, int> report_misses_;
  std::unordered_map<ServerId, int> push_misses_;
};

}  // namespace bds

#endif  // BDS_SRC_FAULT_FAULT_INJECTOR_H_
