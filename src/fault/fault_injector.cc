#include "src/fault/fault_injector.h"

#include <algorithm>

#include "src/telemetry/telemetry.h"

namespace bds {

Status FaultInjector::ValidateLink(const Topology& topo, LinkId link, SimTime from,
                                   SimTime to) const {
  if (link < 0 || link >= topo.num_links()) {
    return InvalidArgumentError("FaultInjector: no such link");
  }
  if (from < 0.0) {
    return InvalidArgumentError("FaultInjector: fault window starts before t=0");
  }
  if (from >= to) {
    return InvalidArgumentError("FaultInjector: fault window is empty (from >= to)");
  }
  if (next_event_ > 0) {
    return FailedPreconditionError("FaultInjector: schedule is frozen once events were consumed");
  }
  return Status::Ok();
}

void FaultInjector::PushEvent(SimTime at, LinkId link, double factor) {
  timeline_.push_back(OrderedEvent{LinkFaultEvent{at, link, factor}, next_seq_++});
  sorted_ = false;
}

Status FaultInjector::AddLinkDown(const Topology& topo, LinkId link, SimTime from, SimTime to) {
  BDS_RETURN_IF_ERROR(ValidateLink(topo, link, from, to));
  PushEvent(from, link, 0.0);
  PushEvent(to, link, 1.0);
  return Status::Ok();
}

Status FaultInjector::AddLinkDegradation(const Topology& topo, LinkId link, SimTime from,
                                         SimTime to, double factor) {
  BDS_RETURN_IF_ERROR(ValidateLink(topo, link, from, to));
  if (factor <= 0.0 || factor >= 1.0) {
    return InvalidArgumentError("FaultInjector: degradation factor must be in (0, 1)");
  }
  PushEvent(from, link, factor);
  PushEvent(to, link, 1.0);
  return Status::Ok();
}

Status FaultInjector::AddLinkFlapping(const Topology& topo, LinkId link, SimTime from, SimTime to,
                                      SimTime period, double duty) {
  BDS_RETURN_IF_ERROR(ValidateLink(topo, link, from, to));
  if (period <= 0.0) {
    return InvalidArgumentError("FaultInjector: flap period must be positive");
  }
  if (duty <= 0.0 || duty >= 1.0) {
    return InvalidArgumentError("FaultInjector: flap duty cycle must be in (0, 1)");
  }
  // Expand the square wave into plain down/up events; determinism comes for
  // free because expansion happens once, at schedule time.
  for (SimTime t = from; t < to; t += period) {
    PushEvent(t, link, 0.0);
    SimTime up = std::min(t + period * duty, to);
    if (up < to) {
      PushEvent(up, link, 1.0);
    }
  }
  PushEvent(to, link, 1.0);
  return Status::Ok();
}

Status FaultInjector::SetControlPlaneFaults(const ControlPlaneFaultOptions& options) {
  if (options.report_loss_prob < 0.0 || options.report_loss_prob > 1.0 ||
      options.push_drop_prob < 0.0 || options.push_drop_prob > 1.0) {
    return InvalidArgumentError("FaultInjector: probabilities must be in [0, 1]");
  }
  if (options.report_timeout_cycles < 1 || options.push_retry_cycles < 1) {
    return InvalidArgumentError("FaultInjector: timeout/retry cycle counts must be >= 1");
  }
  control_ = options;
  return Status::Ok();
}

Status FaultInjector::SetDataPlaneFaults(const DataPlaneFaultOptions& options) {
  if (options.corruption_prob < 0.0 || options.corruption_prob > 1.0) {
    return InvalidArgumentError("FaultInjector: corruption_prob must be in [0, 1]");
  }
  data_ = options;
  return Status::Ok();
}

std::vector<LinkFaultEvent> FaultInjector::TakeLinkEventsUpTo(SimTime now) {
  if (!sorted_) {
    std::sort(timeline_.begin(), timeline_.end(),
              [](const OrderedEvent& a, const OrderedEvent& b) {
                if (a.event.at != b.event.at) {
                  return a.event.at < b.event.at;
                }
                return a.seq < b.seq;
              });
    sorted_ = true;
  }
  std::vector<LinkFaultEvent> due;
  while (next_event_ < timeline_.size() &&
         timeline_[next_event_].event.at <= now + kFluidEpsilon) {
    due.push_back(timeline_[next_event_].event);
    ++next_event_;
  }
  stats_.link_events += static_cast<int64_t>(due.size());
  BDS_TELEMETRY_COUNT("fault.link_events", static_cast<int64_t>(due.size()));
  return due;
}

bool FaultInjector::DrawReportLost(DcId dc) {
  if (control_.report_loss_prob <= 0.0) {
    return false;
  }
  int& misses = report_misses_[dc];
  if (!rng_.Bernoulli(control_.report_loss_prob)) {
    misses = 0;
    return false;
  }
  if (misses + 1 >= control_.report_timeout_cycles) {
    // Out-of-band reconciliation: staleness is bounded even at loss prob 1.
    ++stats_.reports_forced;
    BDS_TELEMETRY_COUNT("fault.reports_forced", 1);
    misses = 0;
    return false;
  }
  ++misses;
  ++stats_.reports_lost;
  BDS_TELEMETRY_COUNT("fault.reports_lost", 1);
  return true;
}

bool FaultInjector::DrawPushDropped(ServerId server) {
  if (control_.push_drop_prob <= 0.0) {
    return false;
  }
  int& misses = push_misses_[server];
  if (!rng_.Bernoulli(control_.push_drop_prob)) {
    misses = 0;
    return false;
  }
  if (misses + 1 >= control_.push_retry_cycles) {
    // The agent's retry/backoff ran out; it escalates to the §5.3 fallback
    // path and pulls the decision out-of-band — the push goes through.
    ++stats_.pushes_escalated;
    BDS_TELEMETRY_COUNT("fault.pushes_escalated", 1);
    misses = 0;
    return false;
  }
  ++misses;
  ++stats_.pushes_dropped;
  BDS_TELEMETRY_COUNT("fault.pushes_dropped", 1);
  return true;
}

void FaultInjector::NotePushDelivered(ServerId server) {
  if (control_.push_drop_prob > 0.0) {
    push_misses_[server] = 0;
  }
}

bool FaultInjector::DrawBlockCorrupted() {
  if (data_.corruption_prob <= 0.0) {
    return false;
  }
  if (rng_.Bernoulli(data_.corruption_prob)) {
    ++stats_.blocks_corrupted;
    BDS_TELEMETRY_COUNT("fault.blocks_corrupted", 1);
    return true;
  }
  return false;
}

}  // namespace bds
