#include "src/fault/chaos.h"

#include <algorithm>
#include <cstdio>

#include "src/common/rng.h"

namespace bds {

namespace {

// A window [from, to) fully inside [0, horizon), at least `min_len` long.
std::pair<SimTime, SimTime> DrawWindow(Rng& rng, SimTime horizon, SimTime min_len) {
  SimTime from = rng.Uniform(0.0, horizon * 0.7);
  SimTime len = rng.Uniform(min_len, std::max(min_len * 2.0, horizon * 0.3));
  SimTime to = std::min(from + len, horizon);
  if (to - from < min_len) {
    from = std::max(0.0, to - min_len);
  }
  return {from, to};
}

}  // namespace

StatusOr<ChaosPlan> InstallRandomChaos(const Topology& topo, uint64_t seed,
                                       const ChaosOptions& options, FaultInjector* injector) {
  BDS_CHECK(injector != nullptr);
  if (options.horizon <= 0.0) {
    return InvalidArgumentError("InstallRandomChaos: horizon must be positive");
  }
  std::vector<LinkId> wan;
  for (const Link& l : topo.links()) {
    if (l.type == LinkType::kWan) {
      wan.push_back(l.id);
    }
  }
  if (wan.empty()) {
    return FailedPreconditionError("InstallRandomChaos: topology has no WAN links");
  }

  Rng rng(seed ^ 0xC7A05ULL);
  ChaosPlan plan;

  // Each fault picks its own WAN link; a link may be hit twice — later
  // events simply override earlier ones, which is the documented timeline
  // semantics and still deterministic.
  plan.link_downs = static_cast<int>(rng.UniformInt(0, options.max_link_downs));
  for (int i = 0; i < plan.link_downs; ++i) {
    LinkId link = wan[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(wan.size()) - 1))];
    auto [from, to] = DrawWindow(rng, options.horizon, /*min_len=*/2.0);
    BDS_RETURN_IF_ERROR(injector->AddLinkDown(topo, link, from, to));
  }

  plan.link_degradations = static_cast<int>(rng.UniformInt(0, options.max_link_degradations));
  for (int i = 0; i < plan.link_degradations; ++i) {
    LinkId link = wan[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(wan.size()) - 1))];
    auto [from, to] = DrawWindow(rng, options.horizon, /*min_len=*/2.0);
    double factor = rng.Uniform(0.1, 0.8);
    BDS_RETURN_IF_ERROR(injector->AddLinkDegradation(topo, link, from, to, factor));
  }

  plan.link_flaps = static_cast<int>(rng.UniformInt(0, options.max_link_flaps));
  for (int i = 0; i < plan.link_flaps; ++i) {
    LinkId link = wan[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(wan.size()) - 1))];
    auto [from, to] = DrawWindow(rng, options.horizon, /*min_len=*/4.0);
    SimTime period = rng.Uniform(2.0, 6.0);
    double duty = rng.Uniform(0.25, 0.75);
    BDS_RETURN_IF_ERROR(injector->AddLinkFlapping(topo, link, from, to, period, duty));
  }

  plan.control_plane.report_loss_prob = rng.Uniform(0.0, options.report_loss_prob_max);
  plan.control_plane.push_drop_prob = rng.Uniform(0.0, options.push_drop_prob_max);
  BDS_RETURN_IF_ERROR(injector->SetControlPlaneFaults(plan.control_plane));

  plan.data_plane.corruption_prob = rng.Uniform(0.0, options.corruption_prob_max);
  BDS_RETURN_IF_ERROR(injector->SetDataPlaneFaults(plan.data_plane));

  if (options.include_controller_outage) {
    auto [from, to] = DrawWindow(rng, options.horizon, /*min_len=*/3.0);
    plan.controller_outages.emplace_back(from, to);
  }

  // Replica events draw AFTER everything else and only when enabled, so
  // plans generated with max_replica_failures = 0 keep the exact RNG
  // sequence (and therefore faults) older seeds produced.
  if (options.max_replica_failures > 0 && options.controller_replicas > 0) {
    int n = static_cast<int>(rng.UniformInt(0, options.max_replica_failures));
    for (int i = 0; i < n; ++i) {
      int replica =
          static_cast<int>(rng.UniformInt(0, options.controller_replicas - 1));
      auto [from, to] = DrawWindow(rng, options.horizon, /*min_len=*/3.0);
      plan.replica_failures.push_back(ChaosPlan::ReplicaFailureEvent{replica, from, to});
    }
  }

  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "downs=%d degr=%d flaps=%d outages=%d replica_fails=%d report_loss=%.2f "
                "push_drop=%.2f corrupt=%.3f",
                plan.link_downs, plan.link_degradations, plan.link_flaps,
                static_cast<int>(plan.controller_outages.size()),
                static_cast<int>(plan.replica_failures.size()),
                plan.control_plane.report_loss_prob, plan.control_plane.push_drop_prob,
                plan.data_plane.corruption_prob);
  plan.description = buf;
  return plan;
}

}  // namespace bds
