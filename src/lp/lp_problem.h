// Linear program representation.
//
//   maximize   c^T x
//   subject to A x (<= | = | >=) b,   x >= 0,   x <= upper (optional)
//
// Rows are stored sparsely; the simplex solver densifies internally. This is
// the "standard LP" machinery the paper benchmarks BDS against (MATLAB
// linprog in §6.3.4) — deliberately general and exact, not fast.

#ifndef BDS_SRC_LP_LP_PROBLEM_H_
#define BDS_SRC_LP_LP_PROBLEM_H_

#include <string>
#include <vector>

#include "src/common/status.h"

namespace bds {

enum class Relation {
  kLessEqual,
  kEqual,
  kGreaterEqual,
};

struct LpTerm {
  int variable = 0;
  double coefficient = 0.0;
};

struct LpConstraint {
  std::vector<LpTerm> terms;
  Relation relation = Relation::kLessEqual;
  double rhs = 0.0;
};

class LpProblem {
 public:
  // Adds a variable with the given objective coefficient and optional upper
  // bound (negative = unbounded above). Returns its index.
  int AddVariable(double objective, double upper_bound = -1.0);

  // Adds a constraint; terms may repeat variables (coefficients add up).
  void AddConstraint(std::vector<LpTerm> terms, Relation relation, double rhs);

  int num_variables() const { return static_cast<int>(objective_.size()); }
  int num_constraints() const { return static_cast<int>(constraints_.size()); }

  const std::vector<double>& objective() const { return objective_; }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  const std::vector<LpConstraint>& constraints() const { return constraints_; }

 private:
  std::vector<double> objective_;
  std::vector<double> upper_bounds_;  // < 0 means no explicit bound.
  std::vector<LpConstraint> constraints_;
};

enum class LpOutcome {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

struct LpSolution {
  LpOutcome outcome = LpOutcome::kInfeasible;
  double objective_value = 0.0;
  std::vector<double> values;
  int64_t iterations = 0;

  bool optimal() const { return outcome == LpOutcome::kOptimal; }
};

}  // namespace bds

#endif  // BDS_SRC_LP_LP_PROBLEM_H_
