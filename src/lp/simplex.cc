#include "src/lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/status.h"

namespace bds {

namespace {

// Full-tableau simplex state. Columns: structural variables first, then
// slacks/surpluses, then artificials; the last column is the RHS.
struct Tableau {
  int rows = 0;
  int cols = 0;  // Excluding RHS.
  std::vector<std::vector<double>> a;  // rows x (cols + 1)
  std::vector<double> reduced;         // cols + 1; last entry = objective value.
  std::vector<int> basis;              // Basic variable of each row.
};

void Pivot(Tableau& t, int prow, int pcol) {
  double pivot = t.a[prow][pcol];
  double inv = 1.0 / pivot;
  for (int j = 0; j <= t.cols; ++j) {
    t.a[prow][j] *= inv;
  }
  t.a[prow][pcol] = 1.0;  // Kill accumulated rounding error on the pivot.
  for (int i = 0; i < t.rows; ++i) {
    if (i == prow) {
      continue;
    }
    double factor = t.a[i][pcol];
    if (factor == 0.0) {
      continue;
    }
    for (int j = 0; j <= t.cols; ++j) {
      t.a[i][j] -= factor * t.a[prow][j];
    }
    t.a[i][pcol] = 0.0;
  }
  double rfactor = t.reduced[pcol];
  if (rfactor != 0.0) {
    for (int j = 0; j <= t.cols; ++j) {
      t.reduced[j] -= rfactor * t.a[prow][j];
    }
    t.reduced[pcol] = 0.0;
  }
  t.basis[prow] = pcol;
}

// Maximizes the objective encoded in t.reduced. Returns the outcome;
// accumulates pivot count into *iterations.
LpOutcome RunPhase(Tableau& t, const SimplexOptions& options, int64_t* iterations) {
  const double eps = options.tolerance;
  // Bland's rule (anti-cycling) kicks in for the last stretch of the budget.
  const int64_t bland_after = options.max_iterations * 9 / 10;
  for (;;) {
    if (*iterations >= options.max_iterations) {
      return LpOutcome::kIterationLimit;
    }
    bool bland = *iterations >= bland_after;

    // Entering variable: positive reduced cost (improves a maximization).
    int pcol = -1;
    if (bland) {
      for (int j = 0; j < t.cols; ++j) {
        if (t.reduced[j] > eps) {
          pcol = j;
          break;
        }
      }
    } else {
      double best = eps;
      for (int j = 0; j < t.cols; ++j) {
        if (t.reduced[j] > best) {
          best = t.reduced[j];
          pcol = j;
        }
      }
    }
    if (pcol < 0) {
      return LpOutcome::kOptimal;
    }

    // Leaving variable: minimum ratio test.
    int prow = -1;
    double best_ratio = 0.0;
    for (int i = 0; i < t.rows; ++i) {
      if (t.a[i][pcol] > eps) {
        double ratio = t.a[i][t.cols] / t.a[i][pcol];
        if (prow < 0 || ratio < best_ratio - eps ||
            (ratio < best_ratio + eps && t.basis[i] < t.basis[prow])) {
          prow = i;
          best_ratio = ratio;
        }
      }
    }
    if (prow < 0) {
      return LpOutcome::kUnbounded;
    }
    Pivot(t, prow, pcol);
    ++*iterations;
  }
}

}  // namespace

LpSolution SolveSimplex(const LpProblem& problem, const SimplexOptions& options) {
  LpSolution solution;
  const int n = problem.num_variables();
  const double eps = options.tolerance;

  // Collect rows: user constraints plus upper-bound rows.
  struct Row {
    std::vector<double> coeffs;  // Dense over structural variables.
    Relation rel;
    double rhs;
  };
  std::vector<Row> rows;
  rows.reserve(static_cast<size_t>(problem.num_constraints()));
  for (const LpConstraint& c : problem.constraints()) {
    Row row;
    row.coeffs.assign(static_cast<size_t>(n), 0.0);
    for (const LpTerm& term : c.terms) {
      BDS_CHECK(term.variable >= 0 && term.variable < n);
      row.coeffs[static_cast<size_t>(term.variable)] += term.coefficient;
    }
    row.rel = c.relation;
    row.rhs = c.rhs;
    rows.push_back(std::move(row));
  }
  for (int j = 0; j < n; ++j) {
    double ub = problem.upper_bounds()[static_cast<size_t>(j)];
    if (ub >= 0.0) {
      Row row;
      row.coeffs.assign(static_cast<size_t>(n), 0.0);
      row.coeffs[static_cast<size_t>(j)] = 1.0;
      row.rel = Relation::kLessEqual;
      row.rhs = ub;
      rows.push_back(std::move(row));
    }
  }

  // Normalize to rhs >= 0.
  for (Row& row : rows) {
    if (row.rhs < 0.0) {
      for (double& c : row.coeffs) {
        c = -c;
      }
      row.rhs = -row.rhs;
      if (row.rel == Relation::kLessEqual) {
        row.rel = Relation::kGreaterEqual;
      } else if (row.rel == Relation::kGreaterEqual) {
        row.rel = Relation::kLessEqual;
      }
    }
  }

  const int m = static_cast<int>(rows.size());
  // Count auxiliary columns.
  int num_slack = 0;
  int num_artificial = 0;
  for (const Row& row : rows) {
    if (row.rel != Relation::kEqual) {
      ++num_slack;
    }
    if (row.rel != Relation::kLessEqual) {
      ++num_artificial;
    }
  }

  Tableau t;
  t.rows = m;
  t.cols = n + num_slack + num_artificial;
  t.a.assign(static_cast<size_t>(m), std::vector<double>(static_cast<size_t>(t.cols) + 1, 0.0));
  t.basis.assign(static_cast<size_t>(m), -1);

  int slack_at = n;
  int artificial_at = n + num_slack;
  const int first_artificial = artificial_at;
  for (int i = 0; i < m; ++i) {
    const Row& row = rows[static_cast<size_t>(i)];
    for (int j = 0; j < n; ++j) {
      t.a[static_cast<size_t>(i)][static_cast<size_t>(j)] = row.coeffs[static_cast<size_t>(j)];
    }
    t.a[static_cast<size_t>(i)][static_cast<size_t>(t.cols)] = row.rhs;
    switch (row.rel) {
      case Relation::kLessEqual:
        t.a[static_cast<size_t>(i)][static_cast<size_t>(slack_at)] = 1.0;
        t.basis[static_cast<size_t>(i)] = slack_at++;
        break;
      case Relation::kGreaterEqual:
        t.a[static_cast<size_t>(i)][static_cast<size_t>(slack_at)] = -1.0;
        ++slack_at;
        t.a[static_cast<size_t>(i)][static_cast<size_t>(artificial_at)] = 1.0;
        t.basis[static_cast<size_t>(i)] = artificial_at++;
        break;
      case Relation::kEqual:
        t.a[static_cast<size_t>(i)][static_cast<size_t>(artificial_at)] = 1.0;
        t.basis[static_cast<size_t>(i)] = artificial_at++;
        break;
    }
  }

  int64_t iterations = 0;

  // --- Phase 1: drive artificials to zero (maximize -sum of artificials). ---
  if (num_artificial > 0) {
    t.reduced.assign(static_cast<size_t>(t.cols) + 1, 0.0);
    for (int j = first_artificial; j < t.cols; ++j) {
      t.reduced[static_cast<size_t>(j)] = -1.0;
    }
    // Canonicalize: reduced costs of basic variables must be zero.
    for (int i = 0; i < m; ++i) {
      if (t.basis[static_cast<size_t>(i)] >= first_artificial) {
        for (int j = 0; j <= t.cols; ++j) {
          t.reduced[static_cast<size_t>(j)] += t.a[static_cast<size_t>(i)][static_cast<size_t>(j)];
        }
      }
    }
    LpOutcome phase1 = RunPhase(t, options, &iterations);
    solution.iterations = iterations;
    if (phase1 == LpOutcome::kIterationLimit) {
      solution.outcome = LpOutcome::kIterationLimit;
      return solution;
    }
    // The tableau cell reduced[cols] holds the negated phase-1 objective,
    // i.e. +sum of artificials; positive residual means infeasible.
    if (t.reduced[static_cast<size_t>(t.cols)] > 1e-6) {
      solution.outcome = LpOutcome::kInfeasible;
      return solution;
    }
    // Pivot out any artificial still (degenerately) basic.
    for (int i = 0; i < m; ++i) {
      if (t.basis[static_cast<size_t>(i)] >= first_artificial) {
        int pcol = -1;
        for (int j = 0; j < first_artificial; ++j) {
          if (std::fabs(t.a[static_cast<size_t>(i)][static_cast<size_t>(j)]) > eps) {
            pcol = j;
            break;
          }
        }
        if (pcol >= 0) {
          Pivot(t, i, pcol);
        }
        // Else: the row is redundant (all-zero over real columns); leave it.
      }
    }
  }

  // --- Phase 2: original objective. ---
  t.reduced.assign(static_cast<size_t>(t.cols) + 1, 0.0);
  for (int j = 0; j < n; ++j) {
    t.reduced[static_cast<size_t>(j)] = problem.objective()[static_cast<size_t>(j)];
  }
  // Zero out artificial columns so they never re-enter.
  for (int i = 0; i < m; ++i) {
    for (int j = first_artificial; j < t.cols; ++j) {
      t.a[static_cast<size_t>(i)][static_cast<size_t>(j)] = 0.0;
    }
  }
  // Canonicalize reduced costs against the current basis.
  for (int i = 0; i < m; ++i) {
    int b = t.basis[static_cast<size_t>(i)];
    double coef = t.reduced[static_cast<size_t>(b)];
    if (coef != 0.0) {
      for (int j = 0; j <= t.cols; ++j) {
        t.reduced[static_cast<size_t>(j)] -= coef * t.a[static_cast<size_t>(i)][static_cast<size_t>(j)];
      }
      t.reduced[static_cast<size_t>(b)] = 0.0;
    }
  }

  LpOutcome phase2 = RunPhase(t, options, &iterations);
  solution.iterations = iterations;
  if (phase2 == LpOutcome::kUnbounded) {
    solution.outcome = LpOutcome::kUnbounded;
    return solution;
  }
  if (phase2 == LpOutcome::kIterationLimit) {
    solution.outcome = LpOutcome::kIterationLimit;
    return solution;
  }

  solution.outcome = LpOutcome::kOptimal;
  solution.values.assign(static_cast<size_t>(n), 0.0);
  for (int i = 0; i < m; ++i) {
    int b = t.basis[static_cast<size_t>(i)];
    if (b < n) {
      solution.values[static_cast<size_t>(b)] = t.a[static_cast<size_t>(i)][static_cast<size_t>(t.cols)];
    }
  }
  // reduced[cols] holds -(objective gain); recompute directly for clarity.
  double obj = 0.0;
  for (int j = 0; j < n; ++j) {
    obj += problem.objective()[static_cast<size_t>(j)] * solution.values[static_cast<size_t>(j)];
  }
  solution.objective_value = obj;
  return solution;
}

}  // namespace bds
