#include "src/lp/lp_problem.h"

namespace bds {

int LpProblem::AddVariable(double objective, double upper_bound) {
  objective_.push_back(objective);
  upper_bounds_.push_back(upper_bound);
  return static_cast<int>(objective_.size()) - 1;
}

void LpProblem::AddConstraint(std::vector<LpTerm> terms, Relation relation, double rhs) {
  constraints_.push_back(LpConstraint{std::move(terms), relation, rhs});
}

}  // namespace bds
