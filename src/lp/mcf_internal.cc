#include "src/lp/mcf_internal.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "src/common/status.h"
#include "src/common/types.h"

namespace bds {
namespace mcf_internal {

FlatMcf FlattenMcf(const McfInstance& instance) {
  FlatMcf flat;
  flat.cap = instance.capacities;
  for (int c = 0; c < instance.num_commodities(); ++c) {
    const McfCommodity& com = instance.commodities[static_cast<size_t>(c)];
    int demand_edge = -1;
    if (com.demand >= 0.0) {
      demand_edge = static_cast<int>(flat.cap.size());
      flat.cap.push_back(com.demand);
    }
    for (size_t p = 0; p < com.paths.size(); ++p) {
      FlatPath fp;
      fp.commodity = c;
      fp.path_index = static_cast<int>(p);
      const std::vector<int>& links = com.paths[p].links;
      fp.links.reserve(links.size() + (demand_edge >= 0 ? 1 : 0));
      fp.links.insert(fp.links.end(), links.begin(), links.end());
      if (demand_edge >= 0) {
        fp.links.push_back(demand_edge);
      }
      // Paths through a zero-capacity edge can carry nothing.
      bool dead = false;
      for (int l : fp.links) {
        if (flat.cap[static_cast<size_t>(l)] <= 0.0) {
          dead = true;
          break;
        }
      }
      if (!dead && !fp.links.empty()) {
        flat.paths.push_back(std::move(fp));
      }
    }
  }
  flat.commodity_paths.resize(static_cast<size_t>(instance.num_commodities()));
  for (size_t i = 0; i < flat.paths.size(); ++i) {
    flat.commodity_paths[static_cast<size_t>(flat.paths[i].commodity)].push_back(
        static_cast<int>(i));
    flat.max_len = std::max(flat.max_len, flat.paths[i].links.size());
  }
  return flat;
}

double FptasDelta(const FlatMcf& flat, double epsilon) {
  return (1.0 + epsilon) *
         std::pow((1.0 + epsilon) * static_cast<double>(flat.num_edges()), -1.0 / epsilon);
}

int64_t MaxPushes(const FlatMcf& flat, double epsilon, double delta) {
  return static_cast<int64_t>(4.0 * static_cast<double>(flat.num_edges()) *
                              std::log((1.0 + epsilon) / delta) / std::log(1.0 + epsilon)) +
         1024;
}

McfResult MakeEmptyFptasResult(const McfInstance& instance) {
  McfResult result;
  result.flow.resize(static_cast<size_t>(instance.num_commodities()));
  for (int c = 0; c < instance.num_commodities(); ++c) {
    result.flow[static_cast<size_t>(c)].assign(
        instance.commodities[static_cast<size_t>(c)].paths.size(), 0.0);
  }
  return result;
}

void FinalizeFptas(const FlatMcf& flat, double epsilon, double delta,
                   std::vector<double>& raw_flow, McfResult& result) {
  const size_t num_edges = flat.num_edges();
  const std::vector<double>& cap = flat.cap;
  const std::vector<FlatPath>& paths = flat.paths;

  const double scale = std::log((1.0 + epsilon) / delta) / std::log(1.0 + epsilon);
  BDS_CHECK(scale > 0.0);
  for (double& f : raw_flow) {
    f /= scale;
  }
  std::vector<double> load(num_edges, 0.0);
  for (size_t i = 0; i < paths.size(); ++i) {
    for (int l : paths[i].links) {
      load[static_cast<size_t>(l)] += raw_flow[i];
    }
  }
  double worst = 1.0;
  for (size_t l = 0; l < num_edges; ++l) {
    if (cap[l] > 0.0) {
      worst = std::max(worst, load[l] / cap[l]);
    }
  }
  for (size_t i = 0; i < paths.size(); ++i) {
    raw_flow[i] /= worst;
  }
  for (size_t l = 0; l < num_edges; ++l) {
    load[l] /= worst;
  }

  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < paths.size(); ++i) {
      double slack = std::numeric_limits<double>::infinity();
      for (int l : paths[i].links) {
        slack = std::min(slack, cap[static_cast<size_t>(l)] - load[static_cast<size_t>(l)]);
      }
      if (slack > kFluidEpsilon) {
        raw_flow[i] += slack;
        for (int l : paths[i].links) {
          load[static_cast<size_t>(l)] += slack;
        }
      }
    }
  }

  for (size_t i = 0; i < paths.size(); ++i) {
    result.flow[static_cast<size_t>(paths[i].commodity)][static_cast<size_t>(paths[i].path_index)] =
        raw_flow[i];
    result.total_flow += raw_flow[i];
  }
}

FptasWorkspace::FptasWorkspace(const FlatMcf& flat, double epsilon) {
  const std::vector<double>& cap = flat.cap;
  const std::vector<FlatPath>& paths = flat.paths;
  num_edges = flat.num_edges();
  num_paths = paths.size();
  num_commodities = flat.commodity_paths.size();

  path_off.assign(num_paths + 1, 0);
  size_t total_links = 0;
  for (size_t i = 0; i < num_paths; ++i) {
    total_links += paths[i].links.size();
    path_off[i + 1] = static_cast<int32_t>(total_links);
  }
  path_links.resize(total_links);
  path_factor.resize(total_links);
  path_bneck.resize(num_paths);
  for (size_t i = 0; i < num_paths; ++i) {
    double bottleneck = std::numeric_limits<double>::infinity();
    for (int l : paths[i].links) {
      bottleneck = std::min(bottleneck, cap[static_cast<size_t>(l)]);
    }
    path_bneck[i] = bottleneck;
    size_t j = static_cast<size_t>(path_off[i]);
    for (int l : paths[i].links) {
      path_links[j] = l;
      path_factor[j] = 1.0 + epsilon * bottleneck / cap[static_cast<size_t>(l)];
      ++j;
    }
  }
  cp_off.assign(num_commodities + 1, 0);
  cp_ids.reserve(num_paths);
  for (size_t c = 0; c < num_commodities; ++c) {
    for (int pi : flat.commodity_paths[c]) {
      cp_ids.push_back(pi);
    }
    cp_off[c + 1] = static_cast<int32_t>(cp_ids.size());
  }

  // Shared-structure detection (see SolveMcfFptas's commentary in mcf.cc):
  // every commodity RouteBlocks emits shares one uplink (first link), one
  // downlink (second-to-last) and its private demand edge (last link) across
  // all of its paths.
  com_first.assign(num_commodities, -1);
  com_penult.assign(num_commodities, -1);
  com_last.assign(num_commodities, -1);
  std::vector<uint8_t> com_structured(num_commodities, 0);
  for (size_t c = 0; c < num_commodities; ++c) {
    bool ok = cp_off[c] != cp_off[c + 1];
    int32_t first = -1, penult = -1, last = -1;
    for (int32_t idx = cp_off[c]; ok && idx < cp_off[c + 1]; ++idx) {
      const int32_t pi = cp_ids[static_cast<size_t>(idx)];
      const int32_t b = path_off[pi], e = path_off[pi + 1];
      if (e - b < 3) {
        ok = false;
        break;
      }
      if (idx == cp_off[c]) {
        first = path_links[static_cast<size_t>(b)];
        penult = path_links[static_cast<size_t>(e - 2)];
        last = path_links[static_cast<size_t>(e - 1)];
      } else if (path_links[static_cast<size_t>(b)] != first ||
                 path_links[static_cast<size_t>(e - 2)] != penult ||
                 path_links[static_cast<size_t>(e - 1)] != last) {
        ok = false;
      }
    }
    if (ok) {
      com_structured[c] = 1;
      com_first[c] = first;
      com_penult[c] = penult;
      com_last[c] = last;
    }
  }
  // Middle segment (everything between the shared first link and shared
  // last two) in CSR form; empty ranges for unstructured commodities' paths.
  mid_off.assign(num_paths + 1, 0);
  mid_links.reserve(total_links);
  for (size_t i = 0; i < num_paths; ++i) {
    if (com_structured[static_cast<size_t>(paths[i].commodity)]) {
      for (int32_t j = path_off[i] + 1; j < path_off[i + 1] - 2; ++j) {
        mid_links.push_back(path_links[static_cast<size_t>(j)]);
      }
    }
    mid_off[i + 1] = static_cast<int32_t>(mid_links.size());
  }

  // Fully unrolled scan kinds for the controller's dominant commodity shapes
  // (kFast3/kFast1): middles padded to exactly two slots with the sentinel
  // edge (index num_edges, length pinned to 0.0 — adding 0.0 to a positive
  // partial sum is bitwise a no-op under round-to-nearest).
  const int32_t sentinel = static_cast<int32_t>(num_edges);
  com_kind.assign(num_commodities, kGeneric);
  fm_base.assign(num_commodities, -1);
  fast_mids.reserve(2 * num_paths);
  for (size_t c = 0; c < num_commodities; ++c) {
    if (!com_structured[c]) {
      continue;
    }
    com_kind[c] = kStructured;
    const int32_t pcount = cp_off[c + 1] - cp_off[c];
    if (pcount != 3 && pcount != 1) {
      continue;
    }
    bool small = true;
    for (int32_t idx = cp_off[c]; idx < cp_off[c + 1]; ++idx) {
      const int32_t pi = cp_ids[static_cast<size_t>(idx)];
      if (mid_off[pi + 1] - mid_off[pi] > 2) {
        small = false;
        break;
      }
    }
    if (!small) {
      continue;
    }
    com_kind[c] = pcount == 3 ? kFast3 : kFast1;
    fm_base[c] = static_cast<int32_t>(fast_mids.size());
    for (int32_t idx = cp_off[c]; idx < cp_off[c + 1]; ++idx) {
      const int32_t pi = cp_ids[static_cast<size_t>(idx)];
      for (int32_t j = mid_off[pi]; j < mid_off[pi + 1]; ++j) {
        fast_mids.push_back(mid_links[static_cast<size_t>(j)]);
      }
      for (int32_t pad = mid_off[pi + 1] - mid_off[pi]; pad < 2; ++pad) {
        fast_mids.push_back(sentinel);
      }
    }
  }
  // Padded push rows for the fast kinds: every fast path's links as exactly
  // five (link, factor) slots with sentinel slots carrying factor 1.0
  // (0.0 * 1.0 == +0.0, bitwise).
  push5_ids.assign(5 * num_paths, sentinel);
  push5_fac.assign(5 * num_paths, 1.0);
  for (size_t c = 0; c < num_commodities; ++c) {
    if (com_kind[c] != kFast3 && com_kind[c] != kFast1) {
      continue;
    }
    for (int32_t idx = cp_off[c]; idx < cp_off[c + 1]; ++idx) {
      const int32_t pi = cp_ids[static_cast<size_t>(idx)];
      int32_t* ids = push5_ids.data() + 5 * static_cast<size_t>(pi);
      double* fac = push5_fac.data() + 5 * static_cast<size_t>(pi);
      int slot = 0;
      for (int32_t j = path_off[pi]; j < path_off[pi + 1]; ++j, ++slot) {
        // Real width is 3..5; middles shorter than 2 leave sentinel slots in
        // positions 1..2 (already initialized above).
        const int real = path_off[pi + 1] - path_off[pi];
        const int pos = j - path_off[pi];
        const int out = pos == 0 ? 0 : pos >= real - 2 ? pos + (5 - real) : pos;
        ids[out] = path_links[static_cast<size_t>(j)];
        fac[out] = path_factor[static_cast<size_t>(j)];
      }
    }
  }
}

FptasLoopStats RunFptasPushLoop(const FlatMcf& flat, const FptasWorkspace& ws,
                                double epsilon, double delta, int64_t max_pushes,
                                const std::vector<int32_t>& commodities,
                                std::vector<double>& length,
                                std::vector<double>& raw_flow,
                                const FptasLoopControl* control) {
  BDS_CHECK(length.size() == ws.num_edges + 1);
  BDS_CHECK(raw_flow.size() == ws.num_paths);
  FptasLoopStats stats;

  const auto& path_off = ws.path_off;
  const auto& path_links = ws.path_links;
  const auto& path_factor = ws.path_factor;
  const auto& path_bneck = ws.path_bneck;
  const auto& cp_off = ws.cp_off;
  const auto& cp_ids = ws.cp_ids;
  constexpr uint8_t kFast3 = FptasWorkspace::kFast3;
  constexpr uint8_t kFast1 = FptasWorkspace::kFast1;
  constexpr uint8_t kStructured = FptasWorkspace::kStructured;

  // cached_min is indexed by global commodity id so the loop body reads
  // exactly like the unsharded solver's. 0.0 understates any real length and
  // forces a first fresh scan; a warm start seeds the exact minima of the
  // seeded lengths instead (still a valid lower bound — lengths only grow).
  std::vector<double> cached_min;
  if (control != nullptr && control->cached_min_seed != nullptr) {
    BDS_CHECK(control->cached_min_seed->size() == ws.num_commodities);
    cached_min = *control->cached_min_seed;
  } else {
    cached_min.assign(ws.num_commodities, 0.0);
  }
  std::vector<int32_t> active;
  active.reserve(commodities.size());
  for (int32_t c : commodities) {
    if (cp_off[static_cast<size_t>(c)] != cp_off[static_cast<size_t>(c) + 1]) {
      active.push_back(c);
    }
  }

  // Cross-group advisory budget (see FptasLoopControl): report every
  // kSharedReport pushes; once the shared total covers the global budget,
  // cut off exactly like the local cap (the caller discards and reruns).
  std::atomic<int64_t>* shared_pushes =
      control != nullptr ? control->shared_pushes : nullptr;
  const int64_t shared_max = control != nullptr ? control->shared_max_pushes : 0;
  constexpr int64_t kSharedReport = 1024;
  int64_t unreported = 0;
  auto shared_cutoff = [&]() -> bool {  // True: abort this loop.
    if (shared_pushes == nullptr || unreported < kSharedReport) {
      return false;
    }
    const int64_t total =
        shared_pushes->fetch_add(unreported, std::memory_order_relaxed) + unreported;
    unreported = 0;
    return total >= shared_max;
  };

  int64_t pushes = 0;
  double alpha = control != nullptr && control->alpha_start > 0.0
                     ? control->alpha_start
                     : delta * static_cast<double>(flat.max_len);
  while (alpha < 1.0 && pushes < max_pushes && !active.empty()) {
    ++stats.phases;
    const double threshold = std::min(1.0, alpha * (1.0 + epsilon));
    size_t out = 0;
    for (size_t k = 0; k < active.size(); ++k) {
      const int32_t c = active[k];
      if (cached_min[static_cast<size_t>(c)] >= threshold) {
        // Provably nothing to push: the cached minimum understates the
        // current one. Retire the commodity if even thresholds of 1 are
        // out of reach.
        ++stats.bound_skips;
        if (cached_min[static_cast<size_t>(c)] < 1.0) {
          active[out++] = c;
        }
        continue;
      }
      bool retired = false;
      const uint8_t kind = ws.com_kind[static_cast<size_t>(c)];
      const size_t cs = static_cast<size_t>(c);
      // Shared push + post-push bound check for the structured kinds (see
      // the commentary in mcf.cc's solver entry point).
      auto push_path = [&](int32_t best) {
        raw_flow[static_cast<size_t>(best)] += path_bneck[static_cast<size_t>(best)];
        for (int32_t j = path_off[best]; j < path_off[best + 1]; ++j) {
          length[static_cast<size_t>(path_links[static_cast<size_t>(j)])] *=
              path_factor[static_cast<size_t>(j)];
        }
      };
      if (kind == kFast3) {
        const double* L = length.data();
        const int32_t f0 = ws.com_first[cs], f1 = ws.com_penult[cs], f2 = ws.com_last[cs];
        const int32_t* fm = ws.fast_mids.data() + ws.fm_base[cs];
        const int32_t p0 = cp_ids[static_cast<size_t>(cp_off[c])];
        const int32_t p1 = cp_ids[static_cast<size_t>(cp_off[c]) + 1];
        const int32_t p2 = cp_ids[static_cast<size_t>(cp_off[c]) + 2];
        for (;;) {
          const double h0 = L[f0], h1 = L[f1], h2 = L[f2];
          double s0 = h0 + L[fm[0]];
          double s1 = h0 + L[fm[2]];
          double s2 = h0 + L[fm[4]];
          s0 += L[fm[1]];
          s1 += L[fm[3]];
          s2 += L[fm[5]];
          s0 += h1;
          s1 += h1;
          s2 += h1;
          s0 += h2;
          s1 += h2;
          s2 += h2;
          double m = s0;
          int32_t best = p0;
          if (s1 < m) {
            m = s1;
            best = p1;
          }
          if (s2 < m) {
            m = s2;
            best = p2;
          }
          if (m >= threshold) {
            cached_min[cs] = m;
            retired = m >= 1.0;
            break;
          }
          raw_flow[static_cast<size_t>(best)] += path_bneck[static_cast<size_t>(best)];
          {
            double* Lw = length.data();
            const int32_t* qi = ws.push5_ids.data() + 5 * static_cast<size_t>(best);
            const double* qf = ws.push5_fac.data() + 5 * static_cast<size_t>(best);
            Lw[qi[0]] *= qf[0];
            Lw[qi[1]] *= qf[1];
            Lw[qi[2]] *= qf[2];
            Lw[qi[3]] *= qf[3];
            Lw[qi[4]] *= qf[4];
          }
          ++unreported;
          if (++pushes >= max_pushes || shared_cutoff()) {
            pushes = std::max(pushes, max_pushes);
            break;
          }
          const double lb = L[f2];
          if (lb >= threshold) {
            cached_min[cs] = lb;
            retired = lb >= 1.0;
            ++stats.bound_skips;
            break;
          }
        }
      } else if (kind == kFast1) {
        const double* L = length.data();
        const int32_t f0 = ws.com_first[cs], f1 = ws.com_penult[cs], f2 = ws.com_last[cs];
        const int32_t* fm = ws.fast_mids.data() + ws.fm_base[cs];
        const int32_t p0 = cp_ids[static_cast<size_t>(cp_off[c])];
        for (;;) {
          double s0 = L[f0] + L[fm[0]];
          s0 += L[fm[1]];
          s0 += L[f1];
          s0 += L[f2];
          if (s0 >= threshold) {
            cached_min[cs] = s0;
            retired = s0 >= 1.0;
            break;
          }
          raw_flow[static_cast<size_t>(p0)] += path_bneck[static_cast<size_t>(p0)];
          {
            double* Lw = length.data();
            const int32_t* qi = ws.push5_ids.data() + 5 * static_cast<size_t>(p0);
            const double* qf = ws.push5_fac.data() + 5 * static_cast<size_t>(p0);
            Lw[qi[0]] *= qf[0];
            Lw[qi[1]] *= qf[1];
            Lw[qi[2]] *= qf[2];
            Lw[qi[3]] *= qf[3];
            Lw[qi[4]] *= qf[4];
          }
          ++unreported;
          if (++pushes >= max_pushes || shared_cutoff()) {
            pushes = std::max(pushes, max_pushes);
            break;
          }
          const double lb = L[f2];
          if (lb >= threshold) {
            cached_min[cs] = lb;
            retired = lb >= 1.0;
            ++stats.bound_skips;
            break;
          }
        }
      } else {
        const bool structured = kind == kStructured;
        for (;;) {
          // Fresh scan of the commodity's paths, in path then link order —
          // the exact operation sequence (and so the exact doubles) of the
          // reference's rescan. Strict < keeps the first-wins tie-break.
          double m = std::numeric_limits<double>::infinity();
          int32_t best = -1;
          if (structured) {
            const double h0 = length[static_cast<size_t>(ws.com_first[cs])];
            const double h1 = length[static_cast<size_t>(ws.com_penult[cs])];
            const double h2 = length[static_cast<size_t>(ws.com_last[cs])];
            for (int32_t idx = cp_off[c]; idx < cp_off[c + 1]; ++idx) {
              const int32_t pi = cp_ids[static_cast<size_t>(idx)];
              double s = h0;
              for (int32_t j = ws.mid_off[pi]; j < ws.mid_off[pi + 1]; ++j) {
                s += length[static_cast<size_t>(ws.mid_links[static_cast<size_t>(j)])];
              }
              s += h1;
              s += h2;
              if (s < m) {
                m = s;
                best = pi;
              }
            }
          } else {
            for (int32_t idx = cp_off[c]; idx < cp_off[c + 1]; ++idx) {
              const int32_t pi = cp_ids[static_cast<size_t>(idx)];
              double s = 0.0;
              for (int32_t j = path_off[pi]; j < path_off[pi + 1]; ++j) {
                s += length[static_cast<size_t>(path_links[static_cast<size_t>(j)])];
              }
              if (s < m) {
                m = s;
                best = pi;
              }
            }
          }
          if (m >= threshold) {
            cached_min[cs] = m;
            retired = m >= 1.0;
            break;
          }
          push_path(best);
          ++unreported;
          if (++pushes >= max_pushes || shared_cutoff()) {
            pushes = std::max(pushes, max_pushes);
            break;
          }
          if (structured) {
            const double lb = length[static_cast<size_t>(ws.com_last[cs])];
            if (lb >= threshold) {
              cached_min[cs] = lb;
              retired = lb >= 1.0;
              ++stats.bound_skips;
              break;
            }
          }
        }
      }
      if (!retired) {
        active[out++] = c;
      }
      if (pushes >= max_pushes) {
        for (size_t k2 = k + 1; k2 < active.size(); ++k2) {
          active[out++] = active[k2];
        }
        break;
      }
    }
    active.resize(out);
    alpha *= 1.0 + epsilon;
  }

  if (shared_pushes != nullptr && unreported > 0) {
    shared_pushes->fetch_add(unreported, std::memory_order_relaxed);
  }
  stats.pushes = pushes;
  stats.commodities_retired = static_cast<int64_t>(commodities.size() - active.size());
  return stats;
}

FptasWarmState SeedFptasWarmState(const McfInstance& instance, const FlatMcf& flat,
                                  const FptasWorkspace& ws, double epsilon, double delta,
                                  const McfWarmSeed& warm) {
  FptasWarmState state;
  state.raw_flow.assign(ws.num_paths, 0.0);
  state.length.assign(ws.num_edges + 1, 0.0);
  state.cached_min.assign(ws.num_commodities, 0.0);

  // Per-commodity clamp factor: seeds were feasible against LAST cycle's
  // demands; if this cycle's demand shrank, scale the commodity's carried
  // flow down proportionally so the seeded raw flow never overloads the new
  // demand edge (an overload would survive into FinalizeFptas's global
  // normalization and depress every other commodity's flow).
  std::vector<double> clamp(ws.num_commodities, 1.0);
  std::vector<uint8_t> seeded(ws.num_commodities, 0);
  for (size_t c = 0; c < ws.num_commodities && c < warm.flows.size(); ++c) {
    const std::vector<double>& f = warm.flows[c];
    if (f.empty()) {
      continue;
    }
    double sum = 0.0;
    for (double v : f) {
      sum += v;
    }
    if (sum <= 0.0) {
      continue;
    }
    seeded[c] = 1;
    ++state.seeded_commodities;
    const double demand = instance.commodities[c].demand;
    if (demand >= 0.0 && sum > demand) {
      clamp[c] = demand / sum;
    }
  }

  // Raw seed: finalized flow times the theoretical scale (FinalizeFptas
  // divides by it), so a fully-seeded edge lands exactly where a converged
  // multiplicative-weights run would leave it. Feasibility of the seed
  // guarantees raw load <= scale * cap on every edge.
  const double scale = std::log((1.0 + epsilon) / delta) / std::log(1.0 + epsilon);
  for (size_t i = 0; i < flat.paths.size(); ++i) {
    const FlatPath& p = flat.paths[i];
    const size_t c = static_cast<size_t>(p.commodity);
    if (c >= warm.flows.size() || !seeded[c]) {
      continue;
    }
    const std::vector<double>& f = warm.flows[c];
    const size_t pi = static_cast<size_t>(p.path_index);
    if (pi < f.size() && f[pi] > 0.0) {
      state.raw_flow[i] = f[pi] * clamp[c] * scale;
    }
  }

  // Length reconstruction: a push of path i multiplies edge e by
  // factor(i,e) = 1 + eps * bneck_i / cap_e and adds bneck_i to the path's
  // raw flow, so raw_i corresponds to raw_i / bneck_i (fractional) pushes:
  // length[e] = delta/cap[e] * exp(sum_i (raw_i/bneck_i) * ln factor(i,e)).
  // Demand edges get no special-casing — they are edges like any other.
  std::vector<double> log_boost(ws.num_edges, 0.0);
  for (size_t i = 0; i < ws.num_paths; ++i) {
    if (state.raw_flow[i] <= 0.0) {
      continue;
    }
    const double n = state.raw_flow[i] / ws.path_bneck[i];
    for (int32_t j = ws.path_off[i]; j < ws.path_off[i + 1]; ++j) {
      log_boost[static_cast<size_t>(ws.path_links[static_cast<size_t>(j)])] +=
          n * std::log(ws.path_factor[static_cast<size_t>(j)]);
    }
  }
  for (size_t l = 0; l < ws.num_edges; ++l) {
    state.length[l] = delta / flat.cap[l] * std::exp(log_boost[l]);
  }

  // Per-commodity minima under the seeded lengths — fresh CSR scans in the
  // exact link order the push loop uses (the fast kinds' sentinel padding
  // only inserts bitwise no-op adds of 0.0), so seeding cached_min with
  // these values skips scans whose outcome is already proved. The global
  // minimum drives the alpha-ladder fast-forward and is computed over ALL
  // commodities so warm sharded solves share one entry point.
  double m_min = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < ws.num_commodities; ++c) {
    if (ws.cp_off[c] == ws.cp_off[c + 1]) {
      continue;
    }
    double m = std::numeric_limits<double>::infinity();
    for (int32_t idx = ws.cp_off[c]; idx < ws.cp_off[c + 1]; ++idx) {
      const int32_t pi = ws.cp_ids[static_cast<size_t>(idx)];
      double s = 0.0;
      for (int32_t j = ws.path_off[pi]; j < ws.path_off[pi + 1]; ++j) {
        s += state.length[static_cast<size_t>(ws.path_links[static_cast<size_t>(j)])];
      }
      m = std::min(m, s);
    }
    state.cached_min[c] = m;
    m_min = std::min(m_min, m);
  }

  // Alpha fast-forward by iterated multiplication — the loop's own ladder
  // arithmetic, bit for bit. A phase with threshold alpha*(1+eps) <= m_min
  // cannot push (every path length >= m_min and nothing moves until a push
  // happens), so skipping it is provably a no-op.
  double alpha = delta * static_cast<double>(flat.max_len);
  if (m_min < std::numeric_limits<double>::infinity()) {
    while (alpha < 1.0 && alpha * (1.0 + epsilon) <= m_min) {
      alpha *= 1.0 + epsilon;
      ++state.phases_skipped;
    }
  }
  state.alpha_start = alpha;
  return state;
}

}  // namespace mcf_internal
}  // namespace bds
