// Path-based multicommodity flow.
//
// BDS's routing step (§4.4) maximizes the total volume sent per cycle across
// explicitly enumerated overlay paths, subject to link capacities and
// per-commodity demands (a block only has ρ(b) bytes to send). Two solvers:
//
//  * SolveMcfSimplex — exact LP, used as ground truth and as the slow
//    baseline;
//  * SolveMcfFptas   — the Garg–Könemann / Fleischer width-independent FPTAS
//    the paper adopts ([17,18] in §4.4), returning a (1-eps)-optimal flow in
//    time independent of the number of commodities.

#ifndef BDS_SRC_LP_MCF_H_
#define BDS_SRC_LP_MCF_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/lp/simplex.h"

namespace bds {

struct McfPath {
  // Indices into McfInstance::capacities.
  std::vector<int> links;
};

struct McfCommodity {
  // Upper bound on this commodity's total flow; < 0 means uncapped.
  double demand = -1.0;
  std::vector<McfPath> paths;
};

struct McfInstance {
  std::vector<double> capacities;
  std::vector<McfCommodity> commodities;

  int num_links() const { return static_cast<int>(capacities.size()); }
  int num_commodities() const { return static_cast<int>(commodities.size()); }
  int num_paths() const;
};

struct McfResult {
  bool ok = false;
  double total_flow = 0.0;
  // flow[c][p] = flow on commodity c's p-th path.
  std::vector<std::vector<double>> flow;

  // Total flow of one commodity.
  double CommodityFlow(int c) const;
};

// Exact solution via the dense simplex. Exponentially slower than the FPTAS
// as instances grow; intended for verification and Fig 13a's baseline curve.
McfResult SolveMcfSimplex(const McfInstance& instance, const SimplexOptions& options = {});

// Garg–Könemann FPTAS: total flow >= (1 - epsilon) * optimum, capacities and
// demands respected exactly. epsilon in (0, 0.5].
//
// The default solver runs Fleischer's phase structure over a flat CSR form
// with incrementally maintained lower bounds: path links, per-link weight
// factors, and bottleneck capacities are precomputed once; commodities whose
// paths share endpoint links (the controller's universal shape) get
// branch-free unrolled scans and a post-push last-link bound that skips the
// confirmation rescan; a per-commodity cached minimum retires or skips
// commodities whole phases at a time. The push sequence — and therefore
// every per-path flow — is bit-identical to SolveMcfFptasReference (see the
// parity property tests).
McfResult SolveMcfFptas(const McfInstance& instance, double epsilon = 0.1);

// Warm-start seed for the FPTAS solvers: a previous solve's *finalized*
// per-commodity path flows, re-mapped by the caller onto the CURRENT
// instance's commodity and path indexing. flows[c] empty (or the whole
// vector shorter than c) means "no seed for commodity c"; flows larger than
// a commodity's current demand are clamped proportionally by the seeder.
//
// Warm solves obey the relaxed-parity contract (DESIGN.md §9.7): the result
// is feasible, deterministic for any thread count (and, without
// split_contended, bitwise-invariant to the shard count), and the objective
// stays within (1 + epsilon) of the cold solve's — but it is NOT bitwise
// equal to the cold solve.
struct McfWarmSeed {
  std::vector<std::vector<double>> flows;

  bool empty() const { return flows.empty(); }
};

// Observability of a warm solve; never part of decision fingerprints.
struct McfWarmInfo {
  bool used = false;                // A non-empty seed was applied.
  int64_t seeded_commodities = 0;   // Commodities with a carried flow.
  int64_t phases_skipped = 0;       // Alpha phases provably without pushes.
};

// Warm-start overload: seeds the multiplicative-weights state (raw flow,
// edge lengths, per-commodity minima) from `warm` and fast-forwards the
// alpha ladder past phases that provably push nothing. warm == nullptr or an
// empty seed degenerates to the cold solver above, bit for bit.
McfResult SolveMcfFptas(const McfInstance& instance, double epsilon,
                        const McfWarmSeed* warm, McfWarmInfo* warm_info = nullptr);

// The original straightforward Fleischer loop (full rescan of a commodity's
// path lengths per push, every commodity visited every phase). Retained as
// the ground truth the incremental solver must match exactly; used by the
// parity property tests and the bench ablation.
McfResult SolveMcfFptasReference(const McfInstance& instance, double epsilon = 0.1);

// Validation helper shared by tests: largest relative link-capacity
// violation of `result` against `instance` (0 = fully feasible).
double MaxCapacityViolation(const McfInstance& instance, const McfResult& result);

}  // namespace bds

#endif  // BDS_SRC_LP_MCF_H_
