// Sharded Fleischer FPTAS: per-shard push loops + deterministic merge under
// the global capacity budget.
//
// The controller's MCF couples commodities only through shared link lengths,
// so commodities whose path link sets never overlap evolve completely
// independently inside the multiplicative-weights loop. The sharded solver
// exploits exactly that seam:
//
//  1. Flatten the instance ONCE (global FlatMcf) — every derived constant
//     (delta, the alpha phase ladder, the push budget, the finalize scale)
//     is the global instance's, shared by every shard.
//  2. Union-find link-sharing components over the flattened paths; a
//     commodity's paths (and its demand edge) always land in one component.
//  3. Deterministically pack components into at most `num_shards` groups
//     (largest-weight-first onto the lightest group, ties by lowest group),
//     each group's commodity list kept in ascending id order.
//  4. Run mcf_internal::RunFptasPushLoop per group on the ParallelRunner,
//     each group against its own private copy of the length vector, all
//     groups accumulating into one position-addressed raw-flow array.
//  5. Merge with one global FinalizeFptas: rescale + normalize the combined
//     raw flow by the worst edge utilization (the per-link budget split —
//     proportional, hence order-independent) and run the two bounded greedy
//     augmentation rounds in global path order (the rebalance of under-used
//     links).
//
// Because groups are link-disjoint, step 4's pushes are bit-identical to the
// unsharded loop's (RunFptasPushLoop's parity contract) and step 5 consumes
// a bitwise-equal raw-flow array — so the returned result equals
// SolveMcfFptas's bit for bit, for ANY shard count and thread count. The one
// documented exception: the per-group push budget is counted per group, so a
// run wedged against MaxPushes (never observed outside adversarial inputs)
// may cut off at a different push than the global counter would.
//
// When the instance is one giant component (heavily contended links
// everywhere), link-disjoint decomposition yields a single group and the
// solve is effectively unsharded. Options::split_contended trades the parity
// guarantee for parallelism there: oversized groups are split into
// contiguous commodity ranges that each run against the full budget, and the
// merge normalization enforces feasibility of the combined flow. Still fully
// deterministic — just no longer bitwise-equal to the unsharded path — and
// off by default.

#ifndef BDS_SRC_LP_MCF_SHARD_H_
#define BDS_SRC_LP_MCF_SHARD_H_

#include <cstdint>

#include "src/common/parallel.h"
#include "src/lp/mcf.h"

namespace bds {

struct McfShardOptions {
  int num_shards = 1;
  // Split link-sharing components larger than (total weight / num_shards)
  // into contiguous commodity ranges to recover parallelism on contended
  // instances. Deterministic but NOT bitwise-equal to the unsharded solver;
  // the merge normalization keeps the combined flow feasible.
  bool split_contended = false;
  // Test seam: replaces the MaxPushes-derived push budget when > 0, forcing
  // the wedge path on small instances. 0 = the real budget.
  int64_t max_pushes_override = 0;
};

struct McfShardStats {
  int num_components = 0;    // Link-sharing components found.
  int num_groups = 0;        // Groups actually solved (<= num_shards).
  int largest_group_paths = 0;
  bool split_mode_used = false;
  // The summed group pushes reached the global budget, so the sharded run
  // was discarded and redone as one serial loop (bitwise equal to the
  // unsharded solver's wedged run).
  bool wedge_rerun = false;
  int64_t pushes = 0;        // Summed over groups (final run if rerun).
  int64_t seeded_commodities = 0;  // Warm start: commodities with a seed.
  int64_t phases_skipped = 0;      // Warm start: alpha phases fast-forwarded.
  double solve_seconds = 0.0;  // CPU time in the per-group push loops.
  double merge_seconds = 0.0;  // CPU time in the global finalize/merge.
};

// Drop-in replacement for SolveMcfFptas(instance, epsilon): same result, bit
// for bit, when options.split_contended is false (see file commentary).
// `pool` may be null (serial). `stats` is optional.
//
// `warm` (optional) seeds every group's multiplicative-weights state from a
// previous solve's finalized flows (see McfWarmSeed in mcf.h). The seed and
// the alpha-ladder entry are computed ONCE from the global instance, so a
// warm solve without split_contended remains bitwise-invariant to the shard
// count — though not bitwise-equal to the cold solve (relaxed parity,
// DESIGN.md §9.7).
McfResult SolveMcfFptasSharded(const McfInstance& instance, double epsilon,
                               const McfShardOptions& options, ParallelRunner* pool,
                               McfShardStats* stats = nullptr,
                               const McfWarmSeed* warm = nullptr,
                               McfWarmInfo* warm_info = nullptr);

}  // namespace bds

#endif  // BDS_SRC_LP_MCF_SHARD_H_
