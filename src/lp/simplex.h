// Dense two-phase primal simplex.
//
// Exact (up to floating point) LP solver used (a) to verify the FPTAS on
// small instances, and (b) as the paper's "standard LP" baseline whose
// running time blows up with problem size (Fig 13a). Dantzig pricing with a
// switch to Bland's rule near the iteration cap for anti-cycling.

#ifndef BDS_SRC_LP_SIMPLEX_H_
#define BDS_SRC_LP_SIMPLEX_H_

#include <cstdint>

#include "src/lp/lp_problem.h"

namespace bds {

struct SimplexOptions {
  int64_t max_iterations = 1'000'000;  // Paper's linprog cap (§6.3.4) is 1e6.
  double tolerance = 1e-9;
};

// Solves `problem`; x >= 0 is implicit, upper bounds become extra rows.
LpSolution SolveSimplex(const LpProblem& problem, const SimplexOptions& options = {});

}  // namespace bds

#endif  // BDS_SRC_LP_SIMPLEX_H_
